package kvcc_test

import (
	"fmt"
	"sort"

	"kvcc"
	"kvcc/graph"
)

// Build the paper's Fig. 2 shape: two K5 cliques sharing two vertices.
// With k = 3 the shared pair is a qualified vertex cut, so the cliques are
// reported as two overlapping 3-VCCs.
func ExampleEnumerate() {
	b := graph.NewBuilder(8)
	cliques := [][]int64{
		{0, 1, 2, 3, 4},
		{3, 4, 5, 6, 7},
	}
	for _, c := range cliques {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				b.AddEdge(c[i], c[j])
			}
		}
	}
	g := b.Build()

	res, err := kvcc.Enumerate(g, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("3-VCCs:", len(res.Components))
	for _, comp := range res.Components {
		labels := append([]int64(nil), comp.Labels()...)
		sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
		fmt.Println(labels)
	}
	fmt.Println("overlap:", res.OverlapMatrix()[0][1], "vertices")
	// Output:
	// 3-VCCs: 2
	// [0 1 2 3 4]
	// [3 4 5 6 7]
	// overlap: 2 vertices
}

// Vertex connectivity queries follow the paper's definitions: κ(C6) = 2,
// and the returned witness cut disconnects the cycle.
func ExampleVertexConnectivity() {
	var edges [][2]int
	for i := 0; i < 6; i++ {
		edges = append(edges, [2]int{i, (i + 1) % 6})
	}
	g := graph.FromEdges(6, edges)
	fmt.Println("κ =", kvcc.VertexConnectivity(g))
	fmt.Println("cut size =", len(kvcc.MinimumVertexCut(g)))
	// Output:
	// κ = 2
	// cut size = 2
}

// EnumerateContaining answers the paper's case-study question — "which
// k-VCCs contain this vertex?" — without enumerating unrelated regions.
func ExampleEnumerateContaining() {
	b := graph.NewBuilder(10)
	for _, c := range [][]int64{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				b.AddEdge(c[i], c[j])
			}
		}
	}
	b.AddEdge(4, 5) // weak link between the cliques
	g := b.Build()

	res, err := kvcc.EnumerateContaining(g, 3, []int64{7})
	if err != nil {
		panic(err)
	}
	fmt.Println("components containing 7:", len(res.Components))
	fmt.Println("size:", res.Components[0].NumVertices())
	// Output:
	// components containing 7: 1
	// size: 5
}
