module kvcc

go 1.24
