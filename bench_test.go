package kvcc_test

// One benchmark per table and figure of the paper's evaluation (Section 6).
// These regenerate the experiments at a bench-friendly scale; the full-size
// runs live in cmd/experiments. Run with:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics follow the quantity each figure plots:
// components (Fig. 11), peak bytes (Fig. 12), pruned fraction (Table 2).

import (
	"fmt"
	"testing"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
	"kvcc/internal/dataset"
	"kvcc/metrics"
)

// benchScale keeps every benchmark iteration in the tens-of-milliseconds
// range so the full suite completes quickly.
const benchScale = 0.15

var datasetCache = map[string]*graph.Graph{}

func benchDataset(b *testing.B, name string) *graph.Graph {
	b.Helper()
	if g, ok := datasetCache[name]; ok {
		return g
	}
	g, err := dataset.Load(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	datasetCache[name] = g
	return g
}

// BenchmarkTable1NetworkStats regenerates Table 1: dataset construction
// and the four reported statistics.
func BenchmarkTable1NetworkStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := dataset.Table1(benchScale)
		if len(rows) != 7 {
			b.Fatal("expected 7 datasets")
		}
	}
}

// benchEffectiveness regenerates one Fig. 7-9 cell: the three models'
// average quality metrics on one dataset/k pair.
func benchEffectiveness(b *testing.B, name string, k int, pick func(metrics.Averages) float64) {
	g := benchDataset(b, name)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		cores := kvcc.KCoreComponents(g, k)
		eccs := kvcc.KECC(g, k)
		res, err := kvcc.Enumerate(g, k)
		if err != nil {
			b.Fatal(err)
		}
		sink = pick(metrics.Average(cores)) + pick(metrics.Average(eccs)) +
			pick(metrics.Average(res.Components))
	}
	_ = sink
}

// BenchmarkFig7Diameter regenerates a Fig. 7 data point (average diameter
// of k-CC / k-ECC / k-VCC).
func BenchmarkFig7Diameter(b *testing.B) {
	for _, tc := range []struct {
		name string
		k    int
	}{{"Youtube", 7}, {"DBLP", 16}} {
		b.Run(fmt.Sprintf("%s/k=%d", tc.name, tc.k), func(b *testing.B) {
			benchEffectiveness(b, tc.name, tc.k, func(a metrics.Averages) float64 { return a.AvgDiameter })
		})
	}
}

// BenchmarkFig8EdgeDensity regenerates a Fig. 8 data point.
func BenchmarkFig8EdgeDensity(b *testing.B) {
	b.Run("Google/k=19", func(b *testing.B) {
		benchEffectiveness(b, "Google", 19, func(a metrics.Averages) float64 { return a.AvgDensity })
	})
}

// BenchmarkFig9Clustering regenerates a Fig. 9 data point.
func BenchmarkFig9Clustering(b *testing.B) {
	b.Run("Cnr/k=18", func(b *testing.B) {
		benchEffectiveness(b, "Cnr", 18, func(a metrics.Averages) float64 { return a.AvgClustering })
	})
}

// BenchmarkFig10ProcessingTime regenerates Fig. 10: enumeration time of
// the four algorithm variants per dataset and k. The ns/op of each
// sub-benchmark is the figure's y-value.
func BenchmarkFig10ProcessingTime(b *testing.B) {
	algos := []kvcc.Algorithm{kvcc.VCCE, kvcc.VCCEN, kvcc.VCCEG, kvcc.VCCEStar}
	for _, name := range []string{"Stanford", "DBLP", "Google", "Cit"} {
		for _, k := range []int{20, 30} {
			for _, algo := range algos {
				b.Run(fmt.Sprintf("%s/k=%d/%v", name, k, algo), func(b *testing.B) {
					g := benchDataset(b, name)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := kvcc.Enumerate(g, k, kvcc.WithAlgorithm(algo)); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkEngineABFig10 is the enumeration-level flow-engine A/B on the
// Fig. 10 datasets: the same runs with the engine forced to Dinic, forced
// to LocalVC, and left on auto. All engines produce identical results, so
// ns/op differences are pure engine cost. k = 20 sits outside the
// FlowAuto window (auto resolves to Dinic — the two must track each
// other); k = 5 sits inside it on large components (auto resolves to
// LocalVC). The localvc-fallback-frac metric reports what fraction of
// local attempts fell back to Dinic.
func BenchmarkEngineABFig10(b *testing.B) {
	engines := []struct {
		name string
		e    kvcc.FlowEngine
	}{
		{"dinic", kvcc.FlowDinic},
		{"localvc", kvcc.FlowLocalVC},
		{"auto", kvcc.FlowAuto},
	}
	for _, name := range []string{"Stanford", "DBLP"} {
		for _, k := range []int{5, 20} {
			for _, eng := range engines {
				b.Run(fmt.Sprintf("%s/k=%d/%s", name, k, eng.name), func(b *testing.B) {
					g := benchDataset(b, name)
					b.ResetTimer()
					var attempts, fallbacks float64
					for i := 0; i < b.N; i++ {
						res, err := kvcc.Enumerate(g, k, kvcc.WithFlowEngine(eng.e))
						if err != nil {
							b.Fatal(err)
						}
						attempts += float64(res.Stats.LocalCutAttempts)
						fallbacks += float64(res.Stats.LocalCutFallbacks)
					}
					if attempts > 0 {
						b.ReportMetric(fallbacks/attempts, "localvc-fallback-frac")
					}
				})
			}
		}
	}
}

// BenchmarkTable2SweepRules regenerates Table 2: the sweep-rule pruning
// proportions of VCCE*, reported as the pruned-fraction custom metric.
func BenchmarkTable2SweepRules(b *testing.B) {
	for _, name := range []string{"DBLP", "Cnr"} {
		b.Run(name, func(b *testing.B) {
			g := benchDataset(b, name)
			b.ResetTimer()
			var pruned, total float64
			for i := 0; i < b.N; i++ {
				res, err := kvcc.Enumerate(g, 25, kvcc.WithAlgorithm(kvcc.VCCEStar))
				if err != nil {
					b.Fatal(err)
				}
				s := res.Stats
				pruned += float64(s.SweptNS1 + s.SweptNS2 + s.SweptGS)
				total += float64(s.SweptNS1 + s.SweptNS2 + s.SweptGS + s.TestedNonPrune)
			}
			if total > 0 {
				b.ReportMetric(pruned/total, "pruned-frac")
			}
		})
	}
}

// BenchmarkFig11VCCCount regenerates Fig. 11: the number of k-VCCs,
// reported as the components custom metric.
func BenchmarkFig11VCCCount(b *testing.B) {
	for _, k := range []int{20, 30, 40} {
		b.Run(fmt.Sprintf("Google/k=%d", k), func(b *testing.B) {
			g := benchDataset(b, "Google")
			b.ResetTimer()
			count := 0
			for i := 0; i < b.N; i++ {
				res, err := kvcc.Enumerate(g, k)
				if err != nil {
					b.Fatal(err)
				}
				count = len(res.Components)
			}
			b.ReportMetric(float64(count), "components")
		})
	}
}

// BenchmarkFig12Memory regenerates Fig. 12: the peak structural bytes held
// by VCCE*, reported as the peak-bytes custom metric.
func BenchmarkFig12Memory(b *testing.B) {
	for _, k := range []int{20, 30, 40} {
		b.Run(fmt.Sprintf("Cit/k=%d", k), func(b *testing.B) {
			g := benchDataset(b, "Cit")
			b.ResetTimer()
			var peak int64
			for i := 0; i < b.N; i++ {
				res, err := kvcc.Enumerate(g, k)
				if err != nil {
					b.Fatal(err)
				}
				peak = res.Stats.PeakBytes
			}
			b.ReportMetric(float64(peak), "peak-bytes")
		})
	}
}

// BenchmarkFig13Scalability regenerates Fig. 13: enumeration time on
// vertex and edge samples of increasing size.
func BenchmarkFig13Scalability(b *testing.B) {
	g := benchDataset(b, "Google")
	for _, mode := range []string{"V", "E"} {
		for _, frac := range []float64{0.2, 0.6, 1.0} {
			var sample *graph.Graph
			if frac >= 1.0 {
				sample = g
			} else if mode == "V" {
				sample = gen.SampleVertices(g, frac, 7)
			} else {
				sample = gen.SampleEdges(g, frac, 7)
			}
			b.Run(fmt.Sprintf("vary%s/%.0f%%", mode, frac*100), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := kvcc.Enumerate(sample, 20); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig14CaseStudy regenerates the Fig. 14 case study: 4-VCCs vs
// the single 4-ECC in a collaboration ego network.
func BenchmarkFig14CaseStudy(b *testing.B) {
	net := gen.CollaborationEgoNet(gen.EgoNetConfig{
		Groups: 7, GroupMin: 7, GroupMax: 12, IntraProb: 0.85,
		SharedAuthors: 1, Bridges: 2, Seed: 14,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := kvcc.Enumerate(net.Graph, 4)
		if err != nil {
			b.Fatal(err)
		}
		if eccs := kvcc.KECC(net.Graph, 4); len(eccs) != 1 {
			b.Fatalf("expected one 4-ECC, got %d", len(eccs))
		}
		if len(res.ComponentsContaining(net.Hub)) < 2 {
			b.Fatal("expected multiple 4-VCCs around the hub")
		}
	}
}

// BenchmarkAblationSweepRules quantifies each optimization's contribution
// (the design choices called out in docs/DESIGN.md): LOC-CUT tests remaining
// after each pruning stage.
func BenchmarkAblationSweepRules(b *testing.B) {
	g := benchDataset(b, "Stanford")
	for _, algo := range []kvcc.Algorithm{kvcc.VCCE, kvcc.VCCEN, kvcc.VCCEG, kvcc.VCCEStar} {
		b.Run(algo.String(), func(b *testing.B) {
			var tests int64
			for i := 0; i < b.N; i++ {
				res, err := kvcc.Enumerate(g, 20, kvcc.WithAlgorithm(algo))
				if err != nil {
					b.Fatal(err)
				}
				tests = res.Stats.LocCutTests
			}
			b.ReportMetric(float64(tests), "loc-cut-tests")
		})
	}
}

// BenchmarkAblationParallelism measures the worker-pool option.
func BenchmarkAblationParallelism(b *testing.B) {
	g := benchDataset(b, "Cit")
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kvcc.Enumerate(g, 20, kvcc.WithParallelism(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
