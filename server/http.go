package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// API routes served by Handler. The Client uses the same constants.
const (
	PathEnumerate      = "/api/v1/enumerate"
	PathEnumerateBatch = "/api/v1/enumerate-batch"
	PathContaining     = "/api/v1/components-containing"
	PathOverlap        = "/api/v1/overlap"
	PathHierarchy      = "/api/v1/hierarchy"
	PathCohesion       = "/api/v1/cohesion"
	PathStats          = "/api/v1/stats"
	PathGraphs         = "/api/v1/graphs"
	PathHealth         = "/healthz"
)

// GraphEditsPath returns the edits endpoint for one named graph:
// POST /api/v1/graphs/{name}/edits.
func GraphEditsPath(name string) string {
	return PathGraphs + "/" + url.PathEscape(name) + "/edits"
}

// GraphPath returns the per-graph resource path used by
// DELETE /api/v1/graphs/{name}.
func GraphPath(name string) string {
	return PathGraphs + "/" + url.PathEscape(name)
}

// GraphProfilePath returns the profile endpoint for one named graph:
// GET /api/v1/graphs/{name}/profile.
func GraphProfilePath(name string) string {
	return PathGraphs + "/" + url.PathEscape(name) + "/profile"
}

// Handler returns the HTTP API of the server:
//
//	POST /api/v1/enumerate              EnumerateRequest       -> EnumerateResponse
//	POST /api/v1/enumerate-batch        BatchEnumerateRequest  -> BatchEnumerateResponse
//	POST /api/v1/components-containing  ContainingRequest      -> ContainingResponse
//	POST /api/v1/overlap                OverlapRequest         -> OverlapResponse
//	POST /api/v1/hierarchy              HierarchyRequest       -> HierarchyResponse
//	POST /api/v1/cohesion               CohesionRequest        -> CohesionResponse
//	POST   /api/v1/graphs/{name}/edits  EditsRequest           -> EditsResponse
//	GET    /api/v1/graphs/{name}/profile?vertices=a,b&timeout_ms=n -> ProfileResponse
//	DELETE /api/v1/graphs/{name}        -> RemoveGraphResponse
//	GET  /api/v1/stats                  -> StatsResponse
//	GET  /api/v1/graphs                 -> []GraphInfo
//	GET  /healthz                       -> "ok"
//
// Errors use JSON bodies {"error": "..."} with status 400 for invalid
// parameters, 404 for unknown graphs, 413 for oversized request bodies,
// 499 for requests whose client disconnected first, 504 for request
// timeouts, and 500 otherwise.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathEnumerate, func(w http.ResponseWriter, r *http.Request) {
		var req EnumerateRequest
		if !decodeJSON(w, r, &req, maxRequestBytes) {
			return
		}
		resp, err := s.Enumerate(r.Context(), req)
		respond(w, resp, err)
	})
	mux.HandleFunc("POST "+PathEnumerateBatch, func(w http.ResponseWriter, r *http.Request) {
		var req BatchEnumerateRequest
		if !decodeJSON(w, r, &req, maxRequestBytes) {
			return
		}
		resp, err := s.EnumerateBatch(r.Context(), req)
		respond(w, resp, err)
	})
	mux.HandleFunc("POST "+PathHierarchy, func(w http.ResponseWriter, r *http.Request) {
		var req HierarchyRequest
		if !decodeJSON(w, r, &req, maxRequestBytes) {
			return
		}
		resp, err := s.Hierarchy(r.Context(), req)
		respond(w, resp, err)
	})
	mux.HandleFunc("POST "+PathCohesion, func(w http.ResponseWriter, r *http.Request) {
		var req CohesionRequest
		if !decodeJSON(w, r, &req, maxRequestBytes) {
			return
		}
		resp, err := s.Cohesion(r.Context(), req)
		respond(w, resp, err)
	})
	mux.HandleFunc("POST "+PathContaining, func(w http.ResponseWriter, r *http.Request) {
		var req ContainingRequest
		if !decodeJSON(w, r, &req, maxRequestBytes) {
			return
		}
		resp, err := s.ComponentsContaining(r.Context(), req)
		respond(w, resp, err)
	})
	mux.HandleFunc("POST "+PathOverlap, func(w http.ResponseWriter, r *http.Request) {
		var req OverlapRequest
		if !decodeJSON(w, r, &req, maxRequestBytes) {
			return
		}
		resp, err := s.Overlap(r.Context(), req)
		respond(w, resp, err)
	})
	mux.HandleFunc("GET "+PathStats, func(w http.ResponseWriter, r *http.Request) {
		respond(w, s.Stats(), nil)
	})
	mux.HandleFunc("GET "+PathGraphs, func(w http.ResponseWriter, r *http.Request) {
		respond(w, s.Graphs(), nil)
	})
	mux.HandleFunc("POST "+PathGraphs+"/{name}/edits", func(w http.ResponseWriter, r *http.Request) {
		var req EditsRequest
		if !decodeJSON(w, r, &req, maxEditsRequestBytes) {
			return
		}
		name := r.PathValue("name")
		if req.Graph != "" && req.Graph != name {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("body graph %q does not match path graph %q", req.Graph, name))
			return
		}
		req.Graph = name
		resp, err := s.Edits(r.Context(), req)
		respond(w, resp, err)
	})
	mux.HandleFunc("GET "+PathGraphs+"/{name}/profile", func(w http.ResponseWriter, r *http.Request) {
		req := ProfileRequest{Graph: r.PathValue("name")}
		q := r.URL.Query()
		if raw := q.Get("vertices"); raw != "" {
			vs, err := parseVertexList(raw)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			req.Vertices = vs
		}
		if raw := q.Get("timeout_ms"); raw != "" {
			ms, err := strconv.ParseInt(raw, 10, 64)
			if err != nil || ms < 0 {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("invalid timeout_ms %q", raw))
				return
			}
			req.TimeoutMillis = ms
		}
		resp, err := s.Profile(r.Context(), req)
		respond(w, resp, err)
	})
	mux.HandleFunc("DELETE "+PathGraphs+"/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if !s.RemoveGraph(name) {
			writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownGraph, name))
			return
		}
		respond(w, RemoveGraphResponse{Graph: name, Removed: true}, nil)
	})
	mux.HandleFunc("GET "+PathHealth, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// A draining server reports unhealthy so load balancers stop
		// routing to it while in-flight requests finish.
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// Tenant attribution wraps every route: the X-API-Key header (when
	// present) becomes the identity per-tenant quotas charge requests to.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if key := r.Header.Get("X-API-Key"); key != "" {
			r = r.WithContext(WithTenant(r.Context(), key))
		}
		mux.ServeHTTP(w, r)
	})
}

// maxRequestBytes caps query request bodies; those request types are a
// handful of small fields, so 1 MiB is generous while keeping one client
// from buffering arbitrary amounts of memory server-side.
//
// The edits route needs its own cap: a legal batch holds maxEditBatch
// edges, and one edge costs up to 46 bytes of JSON ("[l,l]," with two
// full-width int64 literals) — far past 1 MiB. Size the cap from the
// batch limit (rounded up to 64 bytes per edit for whitespace and field
// framing) so every batch the server would accept also fits the body cap,
// and only bodies that would be rejected anyway get cut off early.
const (
	maxRequestBytes      = 1 << 20
	maxEditsRequestBytes = 64*maxEditBatch + maxRequestBytes
)

// parseVertexList parses the comma-separated vertex labels of the profile
// endpoint's "vertices" query parameter.
func parseVertexList(raw string) ([]int64, error) {
	parts := strings.Split(raw, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid vertex %q in vertices list", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		// MaxBytesReader tripping is its own condition — the request was
		// well-formed but too large — and gets the status that says so.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %v", err))
		return false
	}
	return true
}

func respond(w http.ResponseWriter, body any, err error) {
	if err != nil {
		// A shed request carries the server's backoff hint as a standard
		// Retry-After header (whole seconds, rounded up) so any HTTP
		// client — not just this package's — can honor it.
		var oe *OverloadError
		if errors.As(err, &oe) && oe.RetryAfter > 0 {
			secs := int((oe.RetryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// statusClientClosedRequest is the (nginx-coined) status for a request
// whose client went away before the response: not a timeout the server
// hit, so 504 would misattribute it, and there is no standard code.
const statusClientClosedRequest = 499

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		// Shed by admission control: 429 asks the client to back off and
		// retry here; a draining server answers 503 — it is going away,
		// and the retry belongs on another replica.
		var oe *OverloadError
		if errors.As(err, &oe) && oe.Draining {
			return http.StatusServiceUnavailable
		}
		return http.StatusTooManyRequests
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
