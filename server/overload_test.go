package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestOverloadBurstShedsWithRetryAfter floods a deliberately tiny server
// with a burst an order of magnitude past its capacity and asserts the
// overload contract end to end: some requests are admitted and answered,
// the rest shed with 429 + Retry-After, admitted results for the same
// query are identical, nothing deadlocks, and the goroutine count stays
// bounded by capacity + queue rather than by the burst. Run under -race
// in CI, this is also the admission layer's concurrency test.
func TestOverloadBurstShedsWithRetryAfter(t *testing.T) {
	slowEnumerations(t, 40*time.Millisecond)
	s := testServer(Config{
		MaxInflight:      1,
		MaxInflightCheap: 2,
		AdmissionQueue:   2,
		QueueTimeout:     2 * time.Second,
		ShedLatency:      -1, // deterministic: only queue-full sheds
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	baseline := runtime.NumGoroutine()

	const burst = 40 // 10x the cheap-class capacity + queue
	type outcome struct {
		status     int
		retryAfter string
		body       []byte
		k          int
	}
	outcomes := make([]outcome, burst)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			k := 2 + i%3
			payload, _ := json.Marshal(EnumerateRequest{Graph: "fig2", K: k})
			resp, err := http.Post(ts.URL+PathEnumerate, "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			outcomes[i] = outcome{
				status:     resp.StatusCode,
				retryAfter: resp.Header.Get("Retry-After"),
				body:       body,
				k:          k,
			}
		}(i)
	}
	close(start)
	wg.Wait()

	served, shed := 0, 0
	componentsByK := make(map[int]string)
	for i, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			served++
			var er EnumerateResponse
			if err := json.Unmarshal(o.body, &er); err != nil {
				t.Fatalf("request %d: bad 200 body: %v", i, err)
			}
			comps, _ := json.Marshal(er.Components)
			if prev, ok := componentsByK[o.k]; ok && prev != string(comps) {
				t.Fatalf("k=%d answered differently across admitted requests:\n%s\nvs\n%s", o.k, prev, comps)
			}
			componentsByK[o.k] = string(comps)
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter == "" || o.retryAfter == "0" {
				t.Fatalf("request %d: 429 without a Retry-After hint", i)
			}
		default:
			t.Fatalf("request %d: unexpected status %d: %s", i, o.status, o.body)
		}
	}
	if served == 0 || shed == 0 {
		t.Fatalf("burst split served=%d shed=%d, want both > 0", served, shed)
	}

	stats := s.Stats()
	if stats.Admission == nil {
		t.Fatal("StatsResponse.Admission missing")
	}
	if stats.Admission.Shed == 0 || stats.Admission.ShedQueueFull == 0 {
		t.Fatalf("admission stats = %+v, want shed counters > 0", stats.Admission)
	}
	if stats.Admission.Admitted == 0 {
		t.Fatalf("admission stats = %+v, want admitted > 0", stats.Admission)
	}

	// Bounded goroutines: after the burst settles, we must be near the
	// baseline again — a leak of one goroutine per shed request would show
	// up as ~burst extra.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+10 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+10 {
		t.Fatalf("goroutines after burst = %d, baseline %d: leak", got, baseline)
	}
}

// TestDegradedServesPreviousGeneration: when the remaining deadline budget
// cannot fit the estimated enumeration cost, the server answers from the
// previous generation's cached result, marked degraded, instead of
// starting work it will abandon.
func TestDegradedServesPreviousGeneration(t *testing.T) {
	slowEnumerations(t, 60*time.Millisecond)
	s := testServer(Config{})
	ctx := context.Background()

	first, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if first.Degraded {
		t.Fatal("fresh result claims degraded")
	}

	// The edit invalidates k=3 (both endpoints sit in a K5, so every
	// level up to 4 is affected), parking the old result as a seed.
	if _, err := s.Edits(ctx, EditsRequest{Graph: "fig2", Inserts: [][2]int64{{0, 5}}}); err != nil {
		t.Fatal(err)
	}

	// A 5ms budget cannot fit the ~60ms estimate the first query taught
	// the cost model, so the pre-flight budget check degrades immediately.
	resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3, TimeoutMillis: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatalf("under-budget query was not degraded: %+v", resp)
	}
	a, _ := json.Marshal(first.Components)
	b, _ := json.Marshal(resp.Components)
	if !bytes.Equal(a, b) {
		t.Fatalf("degraded response differs from the previous generation:\n%s\nvs\n%s", a, b)
	}
	if got := s.Stats().Admission.Degraded; got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}

	// With a healthy budget the same query recomputes against the edited
	// graph (the new K5∪{edge} structure changes nothing at k=3's
	// component count, but the response must not be marked degraded).
	fresh, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Degraded || fresh.Cached {
		t.Fatalf("healthy-budget query = degraded %v cached %v, want fresh compute", fresh.Degraded, fresh.Cached)
	}
}

// TestDegradedFallbackOnShed: the flight leader losing the expensive-
// permit race falls back to the previous generation rather than failing
// the request.
func TestDegradedFallbackOnShed(t *testing.T) {
	s := testServer(Config{
		MaxInflight:    1,
		AdmissionQueue: 1,
		QueueTimeout:   30 * time.Millisecond,
		ShedLatency:    -1,
	})
	ctx := context.Background()
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Edits(ctx, EditsRequest{Graph: "fig2", Inserts: [][2]int64{{0, 5}}}); err != nil {
		t.Fatal(err)
	}

	// Hold the only expensive permit so the flight leader sheds at the
	// queue deadline.
	release, err := s.adm.acquire(context.Background(), classExpensive)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatalf("shed flight without degraded fallback: %v", err)
	}
	if !resp.Degraded {
		t.Fatalf("response not marked degraded: %+v", resp)
	}

	// A query with no previous generation to fall back on surfaces the
	// overload itself.
	_, err = s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 4, Measure: "kecc"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed flight with no fallback: err = %v, want ErrOverloaded", err)
	}
}

func TestTimeoutClampAndValidation(t *testing.T) {
	s := testServer(Config{
		RequestTimeout: 5 * time.Second,
		MaxTimeout:     50 * time.Millisecond,
	})
	ctx := context.Background()

	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3, TimeoutMillis: -7}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative timeout_ms: err = %v, want ErrBadRequest", err)
	}
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3, TimeoutMillis: 3_600_000}); err != nil {
		t.Fatalf("clamped request must still serve: %v", err)
	}
	if got := s.Stats().Admission.TimeoutsClamped; got != 1 {
		t.Fatalf("timeoutsClamped = %d, want 1", got)
	}
	// Within the ceiling: no clamp.
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3, TimeoutMillis: 20}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Admission.TimeoutsClamped; got != 1 {
		t.Fatalf("timeoutsClamped after in-range timeout = %d, want still 1", got)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s := testServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}

	resp, err = http.Get(ts.URL + PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}

	payload, _ := json.Marshal(EnumerateRequest{Graph: "fig2", K: 3})
	resp, err = http.Post(ts.URL+PathEnumerate, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("enumerate while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining rejection has no Retry-After")
	}
	if got := s.Stats().Admission.ShedDraining; got == 0 {
		t.Fatal("shedDraining counter not ticked")
	}
}

func TestQuotaOverHTTPPerAPIKey(t *testing.T) {
	s := testServer(Config{QuotaRPS: 0.001, QuotaBurst: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do := func(key string) int {
		payload, _ := json.Marshal(EnumerateRequest{Graph: "fig2", K: 3})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+PathEnumerate, bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Fatal("quota rejection without Retry-After")
		}
		return resp.StatusCode
	}

	for i := 0; i < 2; i++ {
		if got := do("tenant-a"); got != http.StatusOK {
			t.Fatalf("tenant-a request %d = %d, want 200", i, got)
		}
	}
	if got := do("tenant-a"); got != http.StatusTooManyRequests {
		t.Fatalf("tenant-a over burst = %d, want 429", got)
	}
	// A different key has its own bucket; so does the anonymous per-graph
	// fallback.
	if got := do("tenant-b"); got != http.StatusOK {
		t.Fatalf("tenant-b = %d, want 200", got)
	}
	if got := do(""); got != http.StatusOK {
		t.Fatalf("anonymous = %d, want 200", got)
	}
	if got := s.Stats().Admission.QuotaRejections; got != 1 {
		t.Fatalf("quotaRejections = %d, want 1", got)
	}
}

func TestEditsIdempotencyKey(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()
	graft := [][2]int64{{100, 101}, {100, 102}, {101, 102}}

	first, err := s.Edits(ctx, EditsRequest{Graph: "fig2", Inserts: graft, IdempotencyKey: "batch-1"})
	if err != nil {
		t.Fatal(err)
	}
	if first.Replayed || first.AppliedInserts != 3 {
		t.Fatalf("first keyed batch = %+v, want 3 applied, not replayed", first)
	}

	retry, err := s.Edits(ctx, EditsRequest{Graph: "fig2", Inserts: graft, IdempotencyKey: "batch-1"})
	if err != nil {
		t.Fatal(err)
	}
	if !retry.Replayed {
		t.Fatalf("retried keyed batch was re-applied: %+v", retry)
	}
	if retry.Version != first.Version || retry.AppliedInserts != first.AppliedInserts {
		t.Fatalf("replay = %+v, want the original response %+v", retry, first)
	}
	if got := s.Stats().Admission.IdempotentReplays; got != 1 {
		t.Fatalf("idempotentReplays = %d, want 1", got)
	}

	// A different key applies normally (and is a no-op graph-wise, since
	// the edges already exist — versions must not move).
	second, err := s.Edits(ctx, EditsRequest{Graph: "fig2", Inserts: graft, IdempotencyKey: "batch-2"})
	if err != nil {
		t.Fatal(err)
	}
	if second.Replayed || second.AppliedInserts != 0 || second.Version != first.Version {
		t.Fatalf("fresh key on existing edges = %+v, want 0 applied at version %d", second, first.Version)
	}
}

func TestIdempotencyKeySurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, CheckpointEvery: 64}
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())
	graft := [][2]int64{{100, 101}, {100, 102}, {101, 102}}
	first, err := a.Edits(context.Background(), EditsRequest{Graph: "fig2", Inserts: graft, IdempotencyKey: "batch-1"})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Persisted {
		t.Fatalf("keyed batch not persisted: %+v", first)
	}
	// No Close: the first server "dies" holding only what it fsync'd.

	b, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	retry, err := b.Edits(context.Background(), EditsRequest{Graph: "fig2", Inserts: graft, IdempotencyKey: "batch-1"})
	if err != nil {
		t.Fatal(err)
	}
	if !retry.Replayed {
		t.Fatalf("pre-crash key re-applied after recovery: %+v", retry)
	}
	if retry.Version != first.Version {
		t.Fatalf("replayed version %d, want %d", retry.Version, first.Version)
	}
	// The recovered graph must not have been double-edited.
	infos := b.Graphs()
	if len(infos) != 1 || infos[0].Version != first.Version {
		t.Fatalf("recovered graph %+v, want version %d", infos, first.Version)
	}
}

// TestEditBacklogSheds: edits are the scarcest class — a writer storm
// bounded-queues behind the single permit and then sheds instead of
// piling up on the edit mutex.
func TestEditBacklogSheds(t *testing.T) {
	s := testServer(Config{
		AdmissionQueue: 1,
		QueueTimeout:   40 * time.Millisecond,
	})
	ctx := context.Background()

	// Hold the edit permit hostage.
	release, err := s.adm.acquire(ctx, classEdit)
	if err != nil {
		t.Fatal(err)
	}

	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			_, err := s.Edits(ctx, EditsRequest{Graph: "fig2",
				Inserts: [][2]int64{{int64(1000 + i), int64(2000 + i)}}})
			results <- err
		}(i)
	}
	sheds := 0
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("edit under backlog: err = %v, want ErrOverloaded", err)
			}
			sheds++
		}
	}
	// One waiter fits the queue (then times out, since the permit never
	// frees); the others shed queue-full. All three fail here.
	if sheds != 3 {
		t.Fatalf("%d of 3 edits shed, want 3 (permit was never released)", sheds)
	}
	release()

	// With the permit back, edits flow again.
	if _, err := s.Edits(ctx, EditsRequest{Graph: "fig2", Inserts: [][2]int64{{5000, 5001}}}); err != nil {
		t.Fatalf("edit after release: %v", err)
	}
}

// TestStatsAdmissionShape asserts the always-on admission fields surface
// in /api/v1/stats with sane values even on an idle server.
func TestStatsAdmissionShape(t *testing.T) {
	s := testServer(Config{MaxInflight: 3, MaxInflightCheap: 7, AdmissionQueue: 5})
	st := s.Stats().Admission
	if st == nil {
		t.Fatal("no admission stats")
	}
	if st.MaxInflight != 3 || st.MaxInflightCheap != 7 || st.QueueDepth != 5 {
		t.Fatalf("admission config echo = %+v", st)
	}
	if st.InflightExpensive != 0 || st.QueuedNow != 0 || st.Draining {
		t.Fatalf("idle server reports activity: %+v", st)
	}
	if st.FailpointTrips != 0 {
		t.Fatalf("failpoint trips on a failpoint-free build: %d", st.FailpointTrips)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(s.Stats()); err != nil {
		t.Fatalf("stats must serialize: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"admission"`)) {
		t.Fatal("stats JSON lacks the admission block")
	}
}
