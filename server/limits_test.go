package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kvcc"
)

// TestSeedEvictionOrder: the seed table evicts strictly least-recently
// stored, and re-storing an existing key refreshes its recency.
func TestSeedEvictionOrder(t *testing.T) {
	s := New(Config{CacheSize: 3})
	key := func(k int) prevKey { return prevKey{graph: "g", k: k, algo: kvcc.VCCE} }
	res := func() *kvcc.Result { return &kvcc.Result{} }

	a, b, c, d := res(), res(), res(), res()
	s.putSeed(key(2), a)
	s.putSeed(key(3), b)
	s.putSeed(key(4), c)
	s.putSeed(key(2), a) // refresh A: B is now the oldest
	s.putSeed(key(5), d) // over capacity: exactly one eviction

	if got := s.peekSeed(key(3)); got != nil {
		t.Fatal("B was refreshed-over yet survived; eviction is not LRU")
	}
	for _, tc := range []struct {
		k    int
		want *kvcc.Result
	}{{2, a}, {4, c}, {5, d}} {
		if got := s.peekSeed(key(tc.k)); got != tc.want {
			t.Fatalf("seed k=%d: got %p, want %p", tc.k, got, tc.want)
		}
	}

	// consumeSeed only removes the exact peeked value; a newer seed for
	// the same key survives a stale consume.
	newer := res()
	s.putSeed(key(2), newer)
	s.consumeSeed(key(2), a) // stale: a was replaced
	if got := s.peekSeed(key(2)); got != newer {
		t.Fatal("stale consume removed a newer seed")
	}
	s.consumeSeed(key(2), newer)
	if got := s.peekSeed(key(2)); got != nil {
		t.Fatal("consume of the current seed left it in place")
	}
}

// TestClientCancelStatusAndStats: a caller hanging up mid-enumeration is
// not a server fault — it maps to 499 on the wire and stays out of the
// error counter.
func TestClientCancelStatusAndStats(t *testing.T) {
	s := testServer(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel, then hold the flight open: the waiting caller must take the
	// ctx.Done arm of its select, never the (still pending) completion.
	release := make(chan struct{})
	testHookEnumerateStarted = func() { cancel(); <-release }
	t.Cleanup(func() { testHookEnumerateStarted = nil })
	defer close(release)

	_, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("enumerate after hangup: %v, want context.Canceled", err)
	}
	if got := statusFor(err); got != statusClientClosedRequest {
		t.Fatalf("statusFor(Canceled) = %d, want %d", got, statusClientClosedRequest)
	}
	if stats := s.Stats(); stats.Enumerations.Errors != 0 {
		t.Fatalf("client cancel counted as %d server errors", stats.Enumerations.Errors)
	}
	if got := statusFor(context.DeadlineExceeded); got != http.StatusGatewayTimeout {
		t.Fatalf("statusFor(DeadlineExceeded) = %d, want 504", got)
	}
}

// TestHTTPOversizedBodyRejected: a query body over the 1 MiB cap draws
// 413, not a json decode 400.
func TestHTTPOversizedBodyRejected(t *testing.T) {
	s := testServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"graph":"` + strings.Repeat("x", maxRequestBytes) + `"}`
	resp, err := http.Post(ts.URL+PathEnumerate, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestHTTPMaxSizeEditBatchAccepted: a maximal legal batch — maxEditBatch
// inserts with wide labels, well past the old 1 MiB body cap — must be
// accepted, because the edits route sizes its cap from maxEditBatch.
func TestHTTPMaxSizeEditBatchAccepted(t *testing.T) {
	if testing.Short() {
		t.Skip("applies a 65536-edge batch")
	}
	s := testServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inserts := make([][2]int64, maxEditBatch)
	base := int64(1) << 40
	for i := range inserts {
		inserts[i] = [2]int64{base + int64(i), base + int64(i) + 1}
	}
	payload, err := json.Marshal(EditsRequest{Inserts: inserts})
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) <= maxRequestBytes {
		t.Fatalf("batch JSON is %d bytes; test needs it past the %d-byte query cap", len(payload), maxRequestBytes)
	}
	if len(payload) > maxEditsRequestBytes {
		t.Fatalf("maximal legal batch is %d bytes, over the edits cap %d — cap is mis-sized", len(payload), maxEditsRequestBytes)
	}

	resp, err := http.Post(ts.URL+PathGraphs+"/fig2/edits", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 for a maximal legal batch", resp.StatusCode)
	}
	var er EditsResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.AppliedInserts != maxEditBatch {
		t.Fatalf("applied %d inserts, want %d", er.AppliedInserts, maxEditBatch)
	}
}

// TestHTTPOversizedEditBatchRejected: the edits cap is finite — a body
// past maxEditsRequestBytes still draws 413.
func TestHTTPOversizedEditBatchRejected(t *testing.T) {
	s := testServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sb strings.Builder
	sb.WriteString(`{"inserts":[`)
	for sb.Len() <= maxEditsRequestBytes {
		fmt.Fprintf(&sb, "[1,2],")
	}
	sb.WriteString("[1,2]]}")
	resp, err := http.Post(ts.URL+PathGraphs+"/fig2/edits", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}
