package server

import (
	"context"
	"testing"

	"kvcc/cohesion"
	"kvcc/gen"
	"kvcc/graph"
)

// benchGraph is a planted-community graph sized so the cold enumeration
// does real work: the cached path should beat it by orders of magnitude.
func benchGraph() *graph.Graph {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 12, MinSize: 40, MaxSize: 60, IntraProb: 0.4,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 10,
		NoiseVertices: 500, NoiseDegree: 4, Seed: 7,
	})
	return g
}

// BenchmarkEnumerateCold measures the uncached path: every iteration runs
// the full KVCC-ENUM algorithm (the cache is bypassed by a fresh server).
func BenchmarkEnumerateCold(b *testing.B) {
	g := benchGraph()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Config{})
		s.AddGraph("bench", g)
		b.StartTimer()
		if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "bench", K: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnyKIndexServed measures serving a rotating k from a ready
// hierarchy index: every iteration asks for a different k, so the LRU
// cache never helps — only the index does. Compare against
// BenchmarkAnyKCold, where the same rotating-k workload recomputes every
// query (a one-entry cache cannot hold more than the last k).
func BenchmarkAnyKIndexServed(b *testing.B) {
	s := New(Config{BuildIndex: true})
	s.AddGraph("bench", benchGraph())
	ctx := context.Background()
	hier, err := s.Hierarchy(ctx, HierarchyRequest{Graph: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	if hier.MaxK < 3 {
		b.Fatalf("bench graph too shallow: max k = %d", hier.MaxK)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 2 + i%hier.MaxK
		resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "bench", K: k})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.IndexServed {
			b.Fatalf("k=%d missed the index", k)
		}
	}
}

func BenchmarkAnyKCold(b *testing.B) {
	s := New(Config{CacheSize: 1})
	g := benchGraph()
	s.AddGraph("bench", g)
	ctx := context.Background()
	tree, err := s.indexFor(ctx, "bench", cohesion.KVCC) // depth probe only; the server stays index-less
	if err != nil {
		b.Fatal(err)
	}
	maxK := tree.tree.MaxK
	s.invalidateIndex("bench")
	if maxK < 3 {
		b.Fatalf("bench graph too shallow: max k = %d", maxK)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 2 + i%maxK
		resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "bench", K: k})
		if err != nil {
			b.Fatal(err)
		}
		if resp.IndexServed || resp.Cached {
			b.Fatalf("k=%d was not recomputed", k)
		}
	}
}

// BenchmarkEnumerateCached measures the hit path: one enumeration primes
// the cache, then every iteration is a lookup plus wire conversion.
func BenchmarkEnumerateCached(b *testing.B) {
	s := New(Config{})
	s.AddGraph("bench", benchGraph())
	ctx := context.Background()
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "bench", K: 5}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "bench", K: 5})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("iteration missed the cache")
		}
	}
}

// BenchmarkProfileGraphLevel measures the cold graph-level profile (core
// decomposition + component BFS + triangle pass) by invalidating the
// per-generation cache every iteration.
func BenchmarkProfileGraphLevel(b *testing.B) {
	s := New(Config{})
	s.AddGraph("bench", benchGraph())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.dropProfile("bench")
		b.StartTimer()
		resp, err := s.Profile(ctx, ProfileRequest{Graph: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if resp.Cached {
			b.Fatal("iteration hit the profile cache")
		}
	}
}

// BenchmarkProfileCached measures the served profile path: cache lookup
// plus response assembly.
func BenchmarkProfileCached(b *testing.B) {
	s := New(Config{})
	s.AddGraph("bench", benchGraph())
	ctx := context.Background()
	if _, err := s.Profile(ctx, ProfileRequest{Graph: "bench"}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Profile(ctx, ProfileRequest{Graph: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("iteration missed the profile cache")
		}
	}
}

// BenchmarkMeasureEnumerateCold times the uncached serving path of the
// two non-default measures on the same workload as BenchmarkEnumerateCold,
// making the relative cost of the three engines visible in one run.
func BenchmarkMeasureEnumerateCold(b *testing.B) {
	g := benchGraph()
	ctx := context.Background()
	for _, measure := range []string{"kecc", "kcore"} {
		b.Run(measure, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := New(Config{})
				s.AddGraph("bench", g)
				b.StartTimer()
				if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "bench", K: 5, Measure: measure}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMeasureIndexServed is BenchmarkAnyKIndexServed for the kecc
// index: rotating k served from the eagerly built per-measure index.
func BenchmarkMeasureIndexServed(b *testing.B) {
	s := New(Config{BuildIndex: true, IndexMeasures: []string{"kecc"}})
	s.AddGraph("bench", benchGraph())
	ctx := context.Background()
	hier, err := s.Hierarchy(ctx, HierarchyRequest{Graph: "bench", Measure: "kecc"})
	if err != nil {
		b.Fatal(err)
	}
	if hier.MaxK < 3 {
		b.Fatalf("bench graph too shallow: max k = %d", hier.MaxK)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 2 + i%hier.MaxK
		resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "bench", K: k, Measure: "kecc"})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.IndexServed {
			b.Fatalf("k=%d missed the kecc index", k)
		}
	}
}
