//go:build failpoint

package server

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"kvcc/internal/failpoint"
)

// Server-level chaos battery (build with -tags failpoint): faults are
// injected under the serving path — WAL appends, checkpoints, the
// enumeration itself — and the assertions are the serving contract:
// every acknowledged edit survives a kill, replay protection holds
// across recovery, degraded persistence heals itself, and injected
// faults are visible in Stats.

// armServerFailpoints activates a spec and restores a clean slate after
// the test, so later tests observe zero trips.
func armServerFailpoints(t *testing.T, spec string) {
	t.Helper()
	if err := failpoint.ActivateSpec(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.Reset)
}

// TestChaosEditsSurviveWALFaults applies a stream of keyed edits while
// WAL fsyncs fail probabilistically. Every response must still report
// Persisted=true — the checkpoint fallback recovers durability — and a
// recovered server must serve the exact acknowledged state, including
// the replay table.
func TestChaosEditsSurviveWALFaults(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), CheckpointEvery: 64}
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())

	failpoint.SeedAll(7)
	armServerFailpoints(t, "store/wal-sync=error(0.3)")

	ctx := context.Background()
	var last *EditsResponse
	var lastReq EditsRequest
	for i := 0; i < 20; i++ {
		req := EditsRequest{
			Graph:          "fig2",
			Inserts:        [][2]int64{{int64(1000 + 2*i), int64(1001 + 2*i)}},
			IdempotencyKey: fmt.Sprintf("chaos-%d", i),
		}
		resp, err := a.Edits(ctx, req)
		if err != nil {
			t.Fatalf("edit %d failed: %v", i, err)
		}
		if !resp.Persisted {
			t.Fatalf("edit %d acknowledged unpersisted under wal-sync faults: %+v", i, resp)
		}
		last, lastReq = resp, req
	}
	if failpoint.TotalTrips() == 0 {
		t.Fatal("failpoint never fired: the test exercised nothing")
	}
	trips := failpoint.TotalTrips()
	failpoint.Reset()
	// Kill: no Close. Only what was fsync'd survives.

	b, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery after %d injected WAL faults: %v", trips, err)
	}
	defer b.Close()
	infos := b.Graphs()
	if len(infos) != 1 || infos[0].Version != last.Version {
		t.Fatalf("recovered %+v, want version %d", infos, last.Version)
	}

	// Replay protection survived the kill.
	retry, err := b.Edits(ctx, lastReq)
	if err != nil {
		t.Fatal(err)
	}
	if !retry.Replayed || retry.Version != last.Version {
		t.Fatalf("pre-kill key re-applied: %+v, want replay of version %d", retry, last.Version)
	}

	// Byte-identity of the served state: the recovered server and the
	// never-killed in-memory one answer identically.
	want, err := a.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Components, want.Components) {
		t.Fatalf("recovered server diverges:\ngot  %v\nwant %v", got.Components, want.Components)
	}
}

// TestChaosDoubleFaultDegradesThenHeals drives the worst case: the WAL
// append AND the fallback checkpoint both fail. The edit must still be
// served (persistence degrades, never blocks), honestly reported as
// unpersisted — and the next edit after the fault clears must re-sync
// the store's version chain via the fallback checkpoint, so a later kill
// loses nothing.
func TestChaosDoubleFaultDegradesThenHeals(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), CheckpointEvery: 64}
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())
	ctx := context.Background()

	armServerFailpoints(t, "store/wal-sync=error;store/snapshot-write=error")
	first, err := a.Edits(ctx, EditsRequest{Graph: "fig2", Inserts: [][2]int64{{100, 101}}})
	if err != nil {
		t.Fatalf("edit under double fault must still serve: %v", err)
	}
	if first.Persisted {
		t.Fatal("edit claimed persisted while both WAL and checkpoint were failing")
	}
	if ps := a.Stats().Persistence; ps == nil || ps.Errors == 0 {
		t.Fatalf("double fault left no trace in persistence stats: %+v", ps)
	}
	failpoint.Reset()

	// The store is now behind the served version (chain gap). The next
	// edit's append is refused by the chain guard and must heal through
	// the fallback checkpoint.
	second, err := a.Edits(ctx, EditsRequest{Graph: "fig2", Inserts: [][2]int64{{102, 103}}})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Persisted {
		t.Fatalf("post-fault edit did not heal durability: %+v", second)
	}
	// Kill and recover: the healing checkpoint carried the full graph,
	// including the batch that was lost to the double fault.
	b, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery after heal: %v", err)
	}
	defer b.Close()
	infos := b.Graphs()
	if len(infos) != 1 || infos[0].Version != second.Version {
		t.Fatalf("recovered %+v, want version %d", infos, second.Version)
	}
	if infos[0].Edges != second.Edges {
		t.Fatalf("recovered %d edges, want %d (double-fault batch lost)", infos[0].Edges, second.Edges)
	}
}

// TestChaosKillRecoverCyclesServer runs several kill-and-recover cycles
// with WAL faults firing throughout, comparing the recovered server
// against a fault-free in-memory reference fed the same edits: versions
// and enumeration results must stay identical cycle after cycle.
func TestChaosKillRecoverCyclesServer(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), CheckpointEvery: 3}
	ref := New(Config{})
	ref.AddGraph("fig2", twoCliques())
	durable, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	durable.AddGraph("fig2", twoCliques())

	ctx := context.Background()
	t.Cleanup(failpoint.Reset)
	label := int64(5000)
	for cycle := 0; cycle < 4; cycle++ {
		failpoint.SeedAll(uint64(100 + cycle))
		if err := failpoint.ActivateSpec("store/wal-sync=error(0.3)"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			ins := [][2]int64{{label, label + 1}, {label + 1, label + 2}}
			label += 3
			want, err := ref.Edits(ctx, EditsRequest{Graph: "fig2", Inserts: ins})
			if err != nil {
				t.Fatal(err)
			}
			got, err := durable.Edits(ctx, EditsRequest{Graph: "fig2", Inserts: ins})
			if err != nil {
				t.Fatalf("cycle %d edit %d: %v", cycle, i, err)
			}
			if !got.Persisted {
				t.Fatalf("cycle %d edit %d acknowledged unpersisted: %+v", cycle, i, got)
			}
			if got.Version != want.Version {
				t.Fatalf("cycle %d edit %d: version %d diverges from reference %d",
					cycle, i, got.Version, want.Version)
			}
		}
		failpoint.Reset()

		// Kill and recover.
		recovered, err := Open(cfg)
		if err != nil {
			t.Fatalf("cycle %d recovery: %v", cycle, err)
		}
		wantInfo, gotInfo := ref.Graphs()[0], recovered.Graphs()[0]
		if gotInfo.Version != wantInfo.Version || gotInfo.Edges != wantInfo.Edges {
			t.Fatalf("cycle %d: recovered version %d edges %d, reference %d/%d",
				cycle, gotInfo.Version, gotInfo.Edges, wantInfo.Version, wantInfo.Edges)
		}
		want, err := ref.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
		if err != nil {
			t.Fatal(err)
		}
		got, err := recovered.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Components, want.Components) {
			t.Fatalf("cycle %d: recovered enumeration diverges:\ngot  %v\nwant %v",
				cycle, got.Components, want.Components)
		}
		durable = recovered
	}
}

// TestChaosEnumerateFaultSurfaces: an injected enumeration failure must
// surface to the caller as an error (not a silently wrong or empty
// result) and be visible in the stats' failpoint counters.
func TestChaosEnumerateFaultSurfaces(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()
	armServerFailpoints(t, "server/enumerate=error")

	_, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err == nil {
		t.Fatal("enumeration with an injected fault returned a result")
	}
	if !failpoint.IsInjected(err) {
		t.Fatalf("fault lost its identity on the way out: %v", err)
	}
	st := s.Stats()
	if st.Admission == nil || st.Admission.FailpointTrips == 0 {
		t.Fatalf("injected fault invisible in stats: %+v", st.Admission)
	}
	if st.Admission.Failpoints["server/enumerate"] == 0 {
		t.Fatalf("per-point counter missing: %+v", st.Admission.Failpoints)
	}

	// Disarming restores clean service.
	failpoint.Deactivate("server/enumerate")
	res, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatalf("enumerate after disarm: %v", err)
	}
	if len(res.Components) != 2 {
		t.Fatalf("disarmed enumerate returned %d components, want 2", len(res.Components))
	}
}
