// Package server turns the one-shot k-VCC enumeration library into a
// long-running query service. A Server holds a registry of immutable
// named graphs, an LRU cache of enumeration results keyed by
// (graph, k, algorithm), and a singleflight layer that collapses
// concurrent identical requests into one computation. On top of that it
// exposes an HTTP/JSON API (see Handler) with per-request timeouts; the
// Client type in this package speaks the same wire format.
//
// The cache is sound because an enumeration is a pure function of its
// key: graphs are never mutated after registration, and the four
// algorithm variants (Section 6.2 of the paper) produce identical
// component sets — they differ only in pruning work. A repeated query is
// therefore served from memory without re-running the algorithm, and the
// derived endpoints (components-containing, overlap) are cheap
// post-processing over the same cached result.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"kvcc"
	"kvcc/graph"
	"kvcc/graphio"
)

// Errors mapped to HTTP statuses by the handlers; the Client surfaces the
// same conditions from response bodies.
var (
	// ErrUnknownGraph reports a request naming a graph the server has not
	// loaded.
	ErrUnknownGraph = errors.New("server: unknown graph")
	// ErrBadRequest reports an invalid parameter (k < 2, unknown
	// algorithm, k above the configured limit).
	ErrBadRequest = errors.New("server: bad request")
)

// Config tunes a Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// CacheSize is the maximum number of cached enumeration results
	// (default 64). Each entry retains its component subgraphs, so the
	// memory cost scales with result size, not input size.
	CacheSize int
	// RequestTimeout bounds how long a request waits for its result
	// (default 30s). Clients may lower it per request but never raise it
	// above this ceiling.
	RequestTimeout time.Duration
	// ComputeTimeout bounds one background enumeration (default 5m). It
	// is deliberately independent of RequestTimeout: a request that gives
	// up does not cancel the computation, which keeps running to fill the
	// cache.
	ComputeTimeout time.Duration
	// MaxK rejects requests with k above this value (default 0: no
	// limit). Useful as a guardrail on public deployments.
	MaxK int
	// Parallelism is passed through to kvcc.WithParallelism for every
	// enumeration (default 1: deterministic serial execution).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ComputeTimeout <= 0 {
		c.ComputeTimeout = 5 * time.Minute
	}
	return c
}

// Server is the enumeration service. Create one with New, register graphs
// with AddGraph or LoadGraphFile, then either serve HTTP via Handler or
// call the request methods directly.
type Server struct {
	cfg    Config
	cache  *resultCache
	flight *flightGroup
	start  time.Time

	mu      sync.Mutex
	graphs  map[string]graphEntry
	nextGen uint64

	statsMu sync.Mutex
	enum    EnumStats
}

// graphEntry pairs a registered graph with the generation of the AddGraph
// call that installed it; the generation is part of every cache and
// flight key (see cacheKey), which keeps an in-flight enumeration on a
// replaced graph from serving or caching results under the new graph.
type graphEntry struct {
	g   *graph.Graph
	gen uint64
}

// testHookEnumerateStarted, when non-nil, runs at the start of every
// flight-leader enumeration (after the cache double-check). Tests use it
// to hold an enumeration open so concurrent requests demonstrably pile up.
var testHookEnumerateStarted func()

// New returns a Server with no graphs loaded.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:    cfg,
		cache:  newResultCache(cfg.CacheSize),
		flight: newFlightGroup(),
		start:  time.Now(),
		graphs: make(map[string]graphEntry),
	}
}

// AddGraph registers g under name, replacing any previous graph with that
// name and invalidating its cached results. The server treats g as
// immutable from this point on; callers must not modify it.
func (s *Server) AddGraph(name string, g *graph.Graph) {
	s.mu.Lock()
	_, replaced := s.graphs[name]
	s.nextGen++
	s.graphs[name] = graphEntry{g: g, gen: s.nextGen}
	s.mu.Unlock()
	if replaced {
		s.cache.invalidateGraph(name)
	}
}

// LoadGraphFile reads a SNAP-style edge list via graphio and registers it
// under name.
func (s *Server) LoadGraphFile(name, path string) error {
	g, err := graphio.ReadEdgeListFile(path)
	if err != nil {
		return fmt.Errorf("server: load %q: %w", name, err)
	}
	s.AddGraph(name, g)
	return nil
}

// Graphs lists the registered graphs sorted by name.
func (s *Server) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for name, e := range s.graphs {
		out = append(out, GraphInfo{Name: name, Vertices: e.g.NumVertices(), Edges: e.g.NumEdges()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Server) lookup(name string) (graphEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.graphs[name]
	if !ok {
		return graphEntry{}, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	return e, nil
}

// requestContext derives the context that bounds one request's wait:
// the client's override (capped at the server ceiling) or the default.
func (s *Server) requestContext(ctx context.Context, timeoutMillis int64) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if timeoutMillis > 0 {
		if d := time.Duration(timeoutMillis) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return context.WithTimeout(ctx, timeout)
}

// result is the heart of the server: cache lookup, then singleflight
// around the actual enumeration. It reports whether the result came from
// the cache and whether this caller piggybacked on an in-flight
// computation.
func (s *Server) result(ctx context.Context, graphName string, k int, algo kvcc.Algorithm) (res *kvcc.Result, cached, deduped bool, err error) {
	if k < 2 {
		return nil, false, false, fmt.Errorf("%w: k must be >= 2, got %d", ErrBadRequest, k)
	}
	if s.cfg.MaxK > 0 && k > s.cfg.MaxK {
		return nil, false, false, fmt.Errorf("%w: k %d exceeds server limit %d", ErrBadRequest, k, s.cfg.MaxK)
	}
	entry, err := s.lookup(graphName)
	if err != nil {
		return nil, false, false, err
	}

	key := cacheKey{graph: graphName, gen: entry.gen, k: k, algo: algo}
	if res, ok := s.cache.get(key); ok {
		return res, true, false, nil
	}

	// Double-check inside the flight: this caller may have missed the
	// cache above and then won the flight race only after a previous
	// leader already stored the result. lateHit is only written by this
	// caller's own closure, and flight.do's completion channel orders the
	// write before the read.
	var lateHit bool
	res, deduped, err = s.flight.do(ctx, key, func() (*kvcc.Result, error) {
		if r, ok := s.cache.getIfPresent(key); ok {
			lateHit = true
			return r, nil
		}
		return s.enumerate(key, entry.g)
	})
	if err != nil {
		return nil, false, false, err
	}
	if lateHit {
		return res, true, false, nil
	}
	return res, false, deduped, nil
}

// enumerate runs one cache-filling enumeration as the flight leader, on a
// context detached from any request, and records latency metrics.
func (s *Server) enumerate(key cacheKey, g *graph.Graph) (*kvcc.Result, error) {
	if testHookEnumerateStarted != nil {
		testHookEnumerateStarted()
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ComputeTimeout)
	defer cancel()

	s.statsMu.Lock()
	s.enum.Started++
	s.statsMu.Unlock()

	begin := time.Now()
	res, err := kvcc.EnumerateContext(ctx, g, key.k,
		kvcc.WithAlgorithm(key.algo), kvcc.WithParallelism(s.cfg.Parallelism))
	elapsed := time.Since(begin)

	s.statsMu.Lock()
	if err != nil {
		s.enum.Errors++
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	s.enum.TotalMS += ms
	if ms > s.enum.MaxMS {
		s.enum.MaxMS = ms
	}
	s.statsMu.Unlock()

	if err != nil {
		return nil, err
	}
	// Only cache if the graph generation is still current: a result
	// computed on a graph that was replaced mid-flight would otherwise sit
	// unreachable in the LRU (lookups always use the current generation),
	// wasting a slot until eviction.
	s.mu.Lock()
	cur, ok := s.graphs[key.graph]
	s.mu.Unlock()
	if ok && cur.gen == key.gen {
		s.cache.put(key, res)
	}
	return res, nil
}

// Enumerate serves one enumerate request. It is the method behind
// POST /api/v1/enumerate and is equally usable in-process.
func (s *Server) Enumerate(ctx context.Context, req EnumerateRequest) (*EnumerateResponse, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	ctx, cancel := s.requestContext(ctx, req.TimeoutMillis)
	defer cancel()

	begin := time.Now()
	res, cached, deduped, err := s.result(ctx, req.Graph, req.K, algo)
	if err != nil {
		return nil, err
	}
	resp := &EnumerateResponse{
		Graph:      req.Graph,
		K:          req.K,
		Algorithm:  algo.String(),
		Cached:     cached,
		Deduped:    deduped,
		ElapsedMS:  float64(time.Since(begin)) / float64(time.Millisecond),
		Components: wireComponents(res.Components, req.IncludeMetrics),
		Stats:      res.Stats,
	}
	if req.IncludeMetrics {
		avg := averageComponents(res.Components)
		resp.Metrics = &avg
	}
	return resp, nil
}

// ComponentsContaining serves one components-containing request: the
// indices (and bodies) of the cached components holding one vertex label.
func (s *Server) ComponentsContaining(ctx context.Context, req ContainingRequest) (*ContainingResponse, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	ctx, cancel := s.requestContext(ctx, req.TimeoutMillis)
	defer cancel()

	res, cached, _, err := s.result(ctx, req.Graph, req.K, algo)
	if err != nil {
		return nil, err
	}
	indices := res.ComponentsContaining(req.Vertex)
	comps := make([]Component, len(indices))
	for i, idx := range indices {
		comps[i] = wireComponent(res.Components[idx], false)
	}
	return &ContainingResponse{
		Graph:      req.Graph,
		K:          req.K,
		Algorithm:  algo.String(),
		Cached:     cached,
		Vertex:     req.Vertex,
		Indices:    indices,
		Components: comps,
	}, nil
}

// Overlap serves one overlap request: the pairwise overlap matrix of the
// cached components.
func (s *Server) Overlap(ctx context.Context, req OverlapRequest) (*OverlapResponse, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	ctx, cancel := s.requestContext(ctx, req.TimeoutMillis)
	defer cancel()

	res, cached, _, err := s.result(ctx, req.Graph, req.K, algo)
	if err != nil {
		return nil, err
	}
	return &OverlapResponse{
		Graph:     req.Graph,
		K:         req.K,
		Algorithm: algo.String(),
		Cached:    cached,
		Matrix:    res.OverlapMatrix(),
	}, nil
}

// Stats returns the operational snapshot behind GET /api/v1/stats.
func (s *Server) Stats() *StatsResponse {
	s.statsMu.Lock()
	enum := s.enum
	s.statsMu.Unlock()
	enum.Deduped = s.flight.dedupedCount()
	return &StatsResponse{
		Graphs:       s.Graphs(),
		Cache:        s.cache.stats(),
		Enumerations: enum,
		UptimeMS:     float64(time.Since(s.start)) / float64(time.Millisecond),
	}
}
