// Package server turns the one-shot k-VCC enumeration library into a
// long-running query service. A Server holds a registry of immutable
// named graphs, a per-graph hierarchy index (the full k-VCC cohesion
// tree, built once in the background), an LRU cache of enumeration
// results keyed by (graph, k, algorithm), and a singleflight layer that
// collapses concurrent identical requests into one computation. On top of
// that it exposes an HTTP/JSON API (see Handler) with per-request
// timeouts; the Client type in this package speaks the same wire format.
//
// Requests descend a serving ladder: a ready hierarchy index answers any
// covered k instantly; otherwise the cache answers repeats; otherwise one
// flight leader runs the enumeration while identical requests wait. Every
// rung is sound because an enumeration is a pure function of its key:
// graphs are never mutated after registration, the four algorithm
// variants (Section 6.2 of the paper) produce identical component sets —
// they differ only in pruning work — and a finished hierarchy level holds
// exactly the k-VCCs of the graph in the same canonical order a direct
// enumeration returns. Replacing a graph bumps its generation, which
// simultaneously invalidates the cache entries and the index for the old
// graph. The derived endpoints (components-containing, overlap, cohesion,
// batch enumerate) are cheap post-processing over the same results.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"kvcc"
	"kvcc/graph"
	"kvcc/graphio"
)

// Errors mapped to HTTP statuses by the handlers; the Client surfaces the
// same conditions from response bodies.
var (
	// ErrUnknownGraph reports a request naming a graph the server has not
	// loaded.
	ErrUnknownGraph = errors.New("server: unknown graph")
	// ErrBadRequest reports an invalid parameter (k < 2, unknown
	// algorithm, k above the configured limit).
	ErrBadRequest = errors.New("server: bad request")
)

// Config tunes a Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// CacheSize is the maximum number of cached enumeration results
	// (default 64). Each entry retains its component subgraphs, so the
	// memory cost scales with result size, not input size.
	CacheSize int
	// RequestTimeout bounds how long a request waits for its result
	// (default 30s). Clients may lower it per request but never raise it
	// above this ceiling.
	RequestTimeout time.Duration
	// ComputeTimeout bounds one background enumeration (default 5m). It
	// is deliberately independent of RequestTimeout: a request that gives
	// up does not cancel the computation, which keeps running to fill the
	// cache.
	ComputeTimeout time.Duration
	// MaxK rejects requests with k above this value (default 0: no
	// limit). Useful as a guardrail on public deployments.
	MaxK int
	// Parallelism is passed through to kvcc.WithParallelism for every
	// enumeration (default 1: deterministic serial execution).
	Parallelism int
	// BuildIndex starts a background hierarchy-index build for every
	// graph as it is registered. Once a graph's index is ready, enumerate
	// and components-containing queries for any covered k are served from
	// the tree without touching the cache or running an enumeration; until
	// then they fall back to the cache/singleflight path. The hierarchy
	// and cohesion endpoints build the index on demand regardless of this
	// flag — BuildIndex only controls eager builds at registration time.
	BuildIndex bool
	// IndexMaxK truncates index builds at this level (0 = build the full
	// hierarchy until a level is empty). A truncated index serves only
	// k <= IndexMaxK; deeper queries fall back to direct enumeration.
	IndexMaxK int
	// IndexBuildTimeout bounds one hierarchy-index build (default 10m).
	// It is independent of ComputeTimeout because an index build covers
	// every level, not one k.
	IndexBuildTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ComputeTimeout <= 0 {
		c.ComputeTimeout = 5 * time.Minute
	}
	if c.IndexBuildTimeout <= 0 {
		c.IndexBuildTimeout = 10 * time.Minute
	}
	return c
}

// Server is the enumeration service. Create one with New, register graphs
// with AddGraph or LoadGraphFile, then either serve HTTP via Handler or
// call the request methods directly.
type Server struct {
	cfg    Config
	cache  *resultCache
	flight *flightGroup
	start  time.Time

	mu      sync.Mutex
	graphs  map[string]graphEntry
	nextGen uint64

	indexMu sync.Mutex
	indexes map[string]*graphIndex

	statsMu sync.Mutex
	enum    EnumStats
}

// graphEntry pairs a registered graph with the generation of the AddGraph
// call that installed it; the generation is part of every cache and
// flight key (see cacheKey), which keeps an in-flight enumeration on a
// replaced graph from serving or caching results under the new graph.
type graphEntry struct {
	g   *graph.Graph
	gen uint64
}

// testHookEnumerateStarted, when non-nil, runs at the start of every
// flight-leader enumeration (after the cache double-check). Tests use it
// to hold an enumeration open so concurrent requests demonstrably pile up.
var testHookEnumerateStarted func()

// New returns a Server with no graphs loaded.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheSize),
		flight:  newFlightGroup(),
		start:   time.Now(),
		graphs:  make(map[string]graphEntry),
		indexes: make(map[string]*graphIndex),
	}
}

// AddGraph registers g under name, replacing any previous graph with that
// name and invalidating its cached results and hierarchy index. The
// server treats g as immutable from this point on; callers must not
// modify it. With Config.BuildIndex set, a background hierarchy-index
// build starts immediately.
func (s *Server) AddGraph(name string, g *graph.Graph) {
	s.mu.Lock()
	_, replaced := s.graphs[name]
	s.nextGen++
	entry := graphEntry{g: g, gen: s.nextGen}
	s.graphs[name] = entry
	s.mu.Unlock()
	if replaced {
		s.cache.invalidateGraph(name)
	}
	if s.cfg.BuildIndex {
		s.resetIndex(name, entry)
	} else {
		s.retireIndex(name, entry.gen)
	}
}

// LoadGraphFile reads a SNAP-style edge list and registers the graph
// under name. Regular files go through graphio's two-pass streaming
// loader — the file is scanned twice and the CSR arrays are filled in
// place, so multi-million-edge files load with bounded memory; pipes and
// other non-seekable paths fall back to the one-pass reader.
func (s *Server) LoadGraphFile(name, path string) error {
	g, err := graphio.ReadEdgeListFile(path)
	if err != nil {
		return fmt.Errorf("server: load %q: %w", name, err)
	}
	s.AddGraph(name, g)
	return nil
}

// Graphs lists the registered graphs sorted by name.
func (s *Server) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for name, e := range s.graphs {
		out = append(out, GraphInfo{Name: name, Vertices: e.g.NumVertices(), Edges: e.g.NumEdges()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Server) lookup(name string) (graphEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.graphs[name]
	if !ok {
		return graphEntry{}, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	return e, nil
}

// requestContext derives the context that bounds one request's wait:
// the client's override (capped at the server ceiling) or the default.
func (s *Server) requestContext(ctx context.Context, timeoutMillis int64) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if timeoutMillis > 0 {
		if d := time.Duration(timeoutMillis) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return context.WithTimeout(ctx, timeout)
}

// resultSource identifies which rung of the serving ladder answered a
// request: the hierarchy index, the result cache, an in-flight
// enumeration this caller joined, or a fresh enumeration it led.
type resultSource int

const (
	srcComputed resultSource = iota
	srcCache
	srcDeduped
	srcIndex
)

// result is the heart of the server: a serving ladder of hierarchy index,
// cache lookup, then singleflight around the actual enumeration. The
// index rung is sound because a finished hierarchy level holds exactly
// the k-VCCs a direct enumeration returns, in the same canonical order,
// for any algorithm variant (all four are exact); the generation check
// keeps a replaced graph's index from ever answering.
func (s *Server) result(ctx context.Context, graphName string, k int, algo kvcc.Algorithm) (res *kvcc.Result, src resultSource, err error) {
	if k < 2 {
		return nil, srcComputed, fmt.Errorf("%w: k must be >= 2, got %d", ErrBadRequest, k)
	}
	if s.cfg.MaxK > 0 && k > s.cfg.MaxK {
		return nil, srcComputed, fmt.Errorf("%w: k %d exceeds server limit %d", ErrBadRequest, k, s.cfg.MaxK)
	}
	entry, err := s.lookup(graphName)
	if err != nil {
		return nil, srcComputed, err
	}

	if ix := s.readyIndex(graphName, entry.gen); ix != nil && ix.tree.Covers(k) {
		s.statsMu.Lock()
		s.enum.IndexServed++
		s.statsMu.Unlock()
		// The per-level Result is memoized on the index so its lazy label
		// index (behind components-containing/overlap) builds once, not
		// once per request.
		return ix.levelResult(k), srcIndex, nil
	}

	key := cacheKey{graph: graphName, gen: entry.gen, k: k, algo: algo}
	if res, ok := s.cache.get(key); ok {
		return res, srcCache, nil
	}

	// Double-check inside the flight: this caller may have missed the
	// cache above and then won the flight race only after a previous
	// leader already stored the result. lateHit is only written by this
	// caller's own closure, and flight.do's completion channel orders the
	// write before the read.
	var lateHit bool
	res, deduped, err := s.flight.do(ctx, key, func() (*kvcc.Result, error) {
		if r, ok := s.cache.getIfPresent(key); ok {
			lateHit = true
			return r, nil
		}
		return s.enumerate(key, entry.g)
	})
	if err != nil {
		return nil, srcComputed, err
	}
	if lateHit {
		return res, srcCache, nil
	}
	if deduped {
		return res, srcDeduped, nil
	}
	return res, srcComputed, nil
}

// enumerate runs one cache-filling enumeration as the flight leader, on a
// context detached from any request, and records latency metrics.
func (s *Server) enumerate(key cacheKey, g *graph.Graph) (*kvcc.Result, error) {
	if testHookEnumerateStarted != nil {
		testHookEnumerateStarted()
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ComputeTimeout)
	defer cancel()

	s.statsMu.Lock()
	s.enum.Started++
	s.statsMu.Unlock()

	begin := time.Now()
	res, err := kvcc.EnumerateContext(ctx, g, key.k,
		kvcc.WithAlgorithm(key.algo), kvcc.WithParallelism(s.cfg.Parallelism))
	elapsed := time.Since(begin)

	s.statsMu.Lock()
	if err != nil {
		s.enum.Errors++
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	s.enum.TotalMS += ms
	if ms > s.enum.MaxMS {
		s.enum.MaxMS = ms
	}
	s.statsMu.Unlock()

	if err != nil {
		return nil, err
	}
	// Only cache if the graph generation is still current: a result
	// computed on a graph that was replaced mid-flight would otherwise sit
	// unreachable in the LRU (lookups always use the current generation),
	// wasting a slot until eviction.
	s.mu.Lock()
	cur, ok := s.graphs[key.graph]
	s.mu.Unlock()
	if ok && cur.gen == key.gen {
		s.cache.put(key, res)
	}
	return res, nil
}

// Enumerate serves one enumerate request. It is the method behind
// POST /api/v1/enumerate and is equally usable in-process.
func (s *Server) Enumerate(ctx context.Context, req EnumerateRequest) (*EnumerateResponse, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	ctx, cancel := s.requestContext(ctx, req.TimeoutMillis)
	defer cancel()

	begin := time.Now()
	res, src, err := s.result(ctx, req.Graph, req.K, algo)
	if err != nil {
		return nil, err
	}
	resp := buildEnumerateResponse(req.Graph, req.K, algo, res, src, begin, req.IncludeMetrics)
	return &resp, nil
}

// buildEnumerateResponse assembles the wire response for one (graph, k)
// result; Enumerate and EnumerateBatch share it so the two endpoints can
// never diverge field by field.
func buildEnumerateResponse(graphName string, k int, algo kvcc.Algorithm, res *kvcc.Result, src resultSource, begin time.Time, includeMetrics bool) EnumerateResponse {
	resp := EnumerateResponse{
		Graph:       graphName,
		K:           k,
		Algorithm:   algo.String(),
		Cached:      src == srcCache,
		Deduped:     src == srcDeduped,
		IndexServed: src == srcIndex,
		ElapsedMS:   float64(time.Since(begin)) / float64(time.Millisecond),
		Components:  wireComponents(res.Components, includeMetrics),
		Stats:       res.Stats,
	}
	if includeMetrics {
		avg := averageComponents(res.Components)
		resp.Metrics = &avg
	}
	return resp
}

// ComponentsContaining serves one components-containing request: the
// indices (and bodies) of the cached components holding one vertex label.
func (s *Server) ComponentsContaining(ctx context.Context, req ContainingRequest) (*ContainingResponse, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	ctx, cancel := s.requestContext(ctx, req.TimeoutMillis)
	defer cancel()

	res, src, err := s.result(ctx, req.Graph, req.K, algo)
	if err != nil {
		return nil, err
	}
	indices := res.ComponentsContaining(req.Vertex)
	comps := make([]Component, len(indices))
	for i, idx := range indices {
		comps[i] = wireComponent(res.Components[idx], false)
	}
	return &ContainingResponse{
		Graph:       req.Graph,
		K:           req.K,
		Algorithm:   algo.String(),
		Cached:      src == srcCache,
		IndexServed: src == srcIndex,
		Vertex:      req.Vertex,
		Indices:     indices,
		Components:  comps,
	}, nil
}

// Overlap serves one overlap request: the pairwise overlap matrix of the
// cached components.
func (s *Server) Overlap(ctx context.Context, req OverlapRequest) (*OverlapResponse, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	ctx, cancel := s.requestContext(ctx, req.TimeoutMillis)
	defer cancel()

	res, src, err := s.result(ctx, req.Graph, req.K, algo)
	if err != nil {
		return nil, err
	}
	return &OverlapResponse{
		Graph:       req.Graph,
		K:           req.K,
		Algorithm:   algo.String(),
		Cached:      src == srcCache,
		IndexServed: src == srcIndex,
		Matrix:      res.OverlapMatrix(),
	}, nil
}

// Stats returns the operational snapshot behind GET /api/v1/stats.
func (s *Server) Stats() *StatsResponse {
	s.statsMu.Lock()
	enum := s.enum
	s.statsMu.Unlock()
	enum.Deduped = s.flight.dedupedCount()
	return &StatsResponse{
		Graphs:       s.Graphs(),
		Cache:        s.cache.stats(),
		Enumerations: enum,
		Indexes:      s.indexInfos(),
		UptimeMS:     float64(time.Since(s.start)) / float64(time.Millisecond),
	}
}
