// Package server turns the one-shot k-VCC enumeration library into a
// long-running query service. A Server holds a registry of named,
// versioned graphs (each an immutable snapshot fronted by a mutation
// overlay), a per-graph hierarchy index (the full k-VCC cohesion tree,
// built in the background), an LRU cache of enumeration results keyed by
// (graph, generation, measure, k, algorithm), and a singleflight layer that
// collapses concurrent identical requests into one computation. On top of
// that it exposes an HTTP/JSON API (see Handler) with per-request
// timeouts; the Client type in this package speaks the same wire format.
//
// Requests descend a serving ladder: a ready hierarchy index answers any
// covered k instantly; otherwise the cache answers repeats; otherwise one
// flight leader runs the enumeration while identical requests wait. Every
// rung is sound because an enumeration is a pure function of its key: a
// registered snapshot is never mutated in place, the four algorithm
// variants (Section 6.2 of the paper) produce identical component sets —
// they differ only in pruning work — and a finished hierarchy level holds
// exactly the k-VCCs of the graph in the same canonical order a direct
// enumeration returns. Replacing a graph bumps its generation, which
// simultaneously invalidates the cache entries and the index for the old
// graph; an edit batch (Edits) installs a new snapshot under a new
// generation but migrates the cache entries the batch provably did not
// affect and seeds incremental recomputation for the ones it did.
// RemoveGraph completes the lifecycle. The derived endpoints
// (components-containing, overlap, cohesion, batch enumerate) are cheap
// post-processing over the same results.
package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"kvcc"
	"kvcc/cohesion"
	"kvcc/graph"
	"kvcc/graphio"
	"kvcc/internal/failpoint"
	"kvcc/internal/residency"
	"kvcc/store"
)

// Errors mapped to HTTP statuses by the handlers; the Client surfaces the
// same conditions from response bodies.
var (
	// ErrUnknownGraph reports a request naming a graph the server has not
	// loaded.
	ErrUnknownGraph = errors.New("server: unknown graph")
	// ErrBadRequest reports an invalid parameter (k < 2, unknown
	// algorithm, k above the configured limit).
	ErrBadRequest = errors.New("server: bad request")
)

// Config tunes a Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// CacheSize is the maximum number of cached enumeration results
	// (default 64). Each entry retains its component subgraphs, so the
	// memory cost scales with result size, not input size.
	CacheSize int
	// RequestTimeout bounds how long a request waits for its result
	// (default 30s). Clients may lower it per request but never raise it
	// above this ceiling.
	RequestTimeout time.Duration
	// ComputeTimeout bounds one background enumeration (default 5m). It
	// is deliberately independent of RequestTimeout: a request that gives
	// up does not cancel the computation, which keeps running to fill the
	// cache.
	ComputeTimeout time.Duration
	// MaxK rejects requests with k above this value (default 0: no
	// limit). Useful as a guardrail on public deployments.
	MaxK int
	// Parallelism is passed through to kvcc.WithParallelism for every
	// enumeration (default 1: deterministic serial execution).
	Parallelism int
	// BuildIndex starts a background hierarchy-index build for every
	// graph as it is registered. Once a graph's index is ready, enumerate
	// and components-containing queries for any covered k are served from
	// the tree without touching the cache or running an enumeration; until
	// then they fall back to the cache/singleflight path. The hierarchy
	// and cohesion endpoints build the index on demand regardless of this
	// flag — BuildIndex only controls eager builds at registration time.
	BuildIndex bool
	// IndexMaxK truncates index builds at this level (0 = build the full
	// hierarchy until a level is empty). A truncated index serves only
	// k <= IndexMaxK; deeper queries fall back to direct enumeration.
	IndexMaxK int
	// IndexMeasures names the cohesion measures BuildIndex builds eagerly
	// for every registered graph ("kvcc", "kecc", "kcore"; default: kvcc
	// only). Measures not listed are still indexed on demand by the
	// hierarchy, cohesion and profile endpoints. Unknown names are
	// ignored — validate up front with kvcc.ParseMeasure where an error
	// is wanted (kvccd rejects bad names at startup).
	IndexMeasures []string
	// IndexBuildTimeout bounds one hierarchy-index build (default 10m).
	// It is independent of ComputeTimeout because an index build covers
	// every level, not one k.
	IndexBuildTimeout time.Duration
	// FlowEngine names the max-flow engine used by every enumeration and
	// index build: "auto" (default, also the empty string), "dinic",
	// "ek"/"edmonds-karp", or "local"/"localvc". All engines return
	// identical results. Unknown names fall back to auto — validate
	// up front with ParseFlowEngine where an error is wanted (kvccd
	// rejects bad names at startup).
	FlowEngine string
	// Seed seeds the randomized LocalVC engine for every enumeration
	// (0 = fixed default; results never depend on the seed).
	Seed uint64
	// DataDir enables durability: every registered graph gets an on-disk
	// store (mmap-able CSR snapshot + write-ahead log of edit batches +
	// persisted hierarchy index) in a subdirectory, and Open recovers the
	// whole registry from it after a restart. Empty (the default) keeps
	// the server purely in-memory.
	DataDir string
	// CheckpointEvery folds the WAL into a fresh snapshot after this many
	// durably logged edit batches (default 32). Negative disables
	// checkpointing beyond the initial registration snapshot, leaving the
	// WAL to grow; 0 selects the default.
	CheckpointEvery int
	// MaxInflight caps concurrently running expensive work — cold
	// enumerations that miss both the index and the cache (default
	// max(2, GOMAXPROCS)). Arrivals past the cap queue (bounded, see
	// AdmissionQueue) and are shed with an OverloadError once the queue
	// or its deadline overflows.
	MaxInflight int
	// MaxInflightCheap caps concurrent request goroutines of any kind —
	// cache/index reads, stats, derived post-processing (default 1024).
	// Its job is bounding goroutines and memory under a request flood,
	// not scheduling: cheap requests almost never queue.
	MaxInflightCheap int
	// AdmissionQueue bounds how many requests may wait for a permit in
	// each cost class (default 4×MaxInflight). The queue is the burst
	// absorber; past it, requests are shed immediately with 429.
	AdmissionQueue int
	// QueueTimeout bounds how long an admitted-to-queue request waits for
	// a permit before being shed (default 2s). Keeping it well below
	// RequestTimeout means a shed request still has budget to act on the
	// Retry-After hint.
	QueueTimeout time.Duration
	// ShedLatency is the adaptive-shedding trip point: when the p95 queue
	// wait of the expensive class exceeds it, new arrivals that would
	// queue are shed up front instead (default QueueTimeout/2; negative
	// disables the breaker). The no-wait fast path stays open, so the
	// breaker closes itself as soon as capacity frees up.
	ShedLatency time.Duration
	// QuotaRPS enables per-tenant token-bucket quotas at this sustained
	// request rate (default 0: no quotas). The tenant is the request's
	// X-API-Key when present, else a per-graph bucket.
	QuotaRPS float64
	// QuotaBurst is the token-bucket burst size (default 2×QuotaRPS+1;
	// only meaningful with QuotaRPS set).
	QuotaBurst int
	// MaxTimeout is the ceiling a client's timeout_ms is clamped to
	// (default RequestTimeout). Absurd values are clamped, not rejected —
	// the request proceeds under the ceiling and the clamp is counted in
	// AdmissionStats.TimeoutsClamped; negative timeout_ms is rejected.
	MaxTimeout time.Duration
	// PagingPolicy controls madvise on snapshot mappings when DataDir is
	// set: store.PagingAuto (zero value) forwards enumeration access
	// hints to the kernel and spills checkpoints straight to disk;
	// store.PagingOff disables all advice (the A/B baseline). Parse flag
	// values with store.ParsePagingPolicy.
	PagingPolicy store.PagingPolicy
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ComputeTimeout <= 0 {
		c.ComputeTimeout = 5 * time.Minute
	}
	if c.IndexBuildTimeout <= 0 {
		c.IndexBuildTimeout = 10 * time.Minute
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 32
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
		if c.MaxInflight < 2 {
			c.MaxInflight = 2
		}
	}
	if c.MaxInflightCheap <= 0 {
		c.MaxInflightCheap = 1024
	}
	if c.AdmissionQueue <= 0 {
		c.AdmissionQueue = 4 * c.MaxInflight
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.ShedLatency == 0 {
		c.ShedLatency = c.QueueTimeout / 2
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = c.RequestTimeout
	}
	return c
}

// Server is the enumeration service. Create one with New, register graphs
// with AddGraph or LoadGraphFile, then either serve HTTP via Handler or
// call the request methods directly.
type Server struct {
	cfg    Config
	cache  *resultCache
	flight *flightGroup
	adm    *admission
	start  time.Time
	engine kvcc.FlowEngine // parsed from cfg.FlowEngine at New

	// indexMeasures is cfg.IndexMeasures parsed and deduplicated at New:
	// the measures every eager (BuildIndex) and repair build covers.
	indexMeasures []cohesion.Measure

	mu      sync.Mutex
	graphs  map[string]graphEntry
	nextGen uint64

	// editMu serializes registry mutations (Edits, AddGraph, RemoveGraph)
	// against each other; queries never take it. Each graph's Delta is
	// only touched under editMu, so overlay mutation needs no lock of its
	// own, and an edit batch can never interleave with a replacement or
	// removal of the graph it is updating.
	editMu sync.Mutex

	// prevMu guards prev, the one-shot incremental seeds: the last Result
	// computed for a (graph, k, algo) whose cache entry an edit dropped.
	// The next flight-leader enumeration for that key consumes the seed
	// and recomputes only the k-core components the edits touched. The
	// table is bounded by the cache capacity — seeds for keys that are
	// never queried again are evicted oldest-first (see putSeed), so an
	// edit-heavy workload cannot grow retained memory past what the
	// cache itself was sized for. seedOrder keeps the entries in
	// recency order (front = newest) so eviction is O(1), not a scan.
	prevMu    sync.Mutex
	prev      map[prevKey]*list.Element // values are *seedRecord
	seedOrder *list.List

	indexMu sync.Mutex
	indexes map[indexKey]*graphIndex

	statsMu      sync.Mutex
	enum         EnumStats
	measureStats map[cohesion.Measure]*MeasureCounters

	// profileMu guards the per-graph cache of graph-level profiles (see
	// profile.go); entries are validated against the graph generation.
	profileMu sync.Mutex
	profiles  map[string]*graphProfile

	// storeMu guards the per-graph durability stores and the persistence
	// counters (see persist.go). Nil-able independent of cfg: with no
	// DataDir the map simply stays empty.
	storeMu sync.Mutex
	stores  map[string]*store.Store
	persist PersistStats

	// idemMu guards idem, the per-graph idempotency-key replay tables
	// (see idempotency.go). Leaf lock: never held while taking another.
	idemMu sync.Mutex
	idem   map[string]*idemTable
}

// graphEntry pairs a registered graph with the generation of the AddGraph
// or Edits call that installed it; the generation is part of every cache
// and flight key (see cacheKey), which keeps an in-flight enumeration on
// a replaced graph from serving or caching results under the new graph.
// The delta is the graph's mutation overlay (the current g is always its
// compacted snapshot), created lazily by the first Edits call so
// read-only graphs carry no edit bookkeeping; version is the overlay's
// monotonic version stamp (1 until first edit) and modified the
// wall-clock time of the last installing call, both surfaced through
// GraphInfo so clients can detect staleness. cores caches the core
// number of every vertex of g, the input to the affected-level
// computation of the next edit batch (filled lazily on first edit).
type graphEntry struct {
	g        *graph.Graph
	gen      uint64
	version  uint64
	modified time.Time
	delta    *graph.Delta
	cores    []int
}

// prevKey addresses one incremental seed.
type prevKey struct {
	graph string
	k     int
	algo  kvcc.Algorithm
}

// seedRecord is one stored seed, threaded on seedOrder for eviction.
type seedRecord struct {
	key prevKey
	res *kvcc.Result
}

// putSeed stores res as the incremental seed for key, evicting the
// oldest seeds when the table would exceed the cache capacity (the seeds
// are dropped cache entries, so the cache's own size is the natural
// bound on what edits may retain). Recency lives on seedOrder, so both
// the store and the eviction are O(1) — an edit batch dropping many
// cache entries no longer pays a full-table scan per seed.
func (s *Server) putSeed(key prevKey, res *kvcc.Result) {
	s.prevMu.Lock()
	defer s.prevMu.Unlock()
	if el, ok := s.prev[key]; ok {
		el.Value.(*seedRecord).res = res
		s.seedOrder.MoveToFront(el)
	} else {
		s.prev[key] = s.seedOrder.PushFront(&seedRecord{key: key, res: res})
	}
	for len(s.prev) > s.cfg.CacheSize {
		back := s.seedOrder.Back()
		s.seedOrder.Remove(back)
		delete(s.prev, back.Value.(*seedRecord).key)
	}
}

// peekSeed returns the stored seed for key without consuming it.
func (s *Server) peekSeed(key prevKey) *kvcc.Result {
	s.prevMu.Lock()
	defer s.prevMu.Unlock()
	if el, ok := s.prev[key]; ok {
		return el.Value.(*seedRecord).res
	}
	return nil
}

// consumeSeed removes the seed for key, but only if it is still the one
// the caller peeked — a newer seed installed by a later edit batch must
// survive for the first enumeration on that batch's snapshot.
func (s *Server) consumeSeed(key prevKey, res *kvcc.Result) {
	s.prevMu.Lock()
	defer s.prevMu.Unlock()
	if el, ok := s.prev[key]; ok && el.Value.(*seedRecord).res == res {
		s.seedOrder.Remove(el)
		delete(s.prev, key)
	}
}

// testHookEnumerateStarted, when non-nil, runs at the start of every
// flight-leader enumeration (after the cache double-check). Tests use it
// to hold an enumeration open so concurrent requests demonstrably pile up.
var testHookEnumerateStarted func()

// New returns a Server with no graphs loaded.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// An unknown engine name degrades to auto rather than failing: New
	// has no error return, and auto is correct for every input. Callers
	// that want strict validation run ParseFlowEngine first, as kvccd
	// does for its -engine flag.
	engine, err := ParseFlowEngine(cfg.FlowEngine)
	if err != nil {
		engine = kvcc.FlowAuto
	}
	// Unknown measure names degrade by being skipped for the same reason
	// unknown engines degrade to auto; an empty (or all-unknown) list
	// selects the kvcc default, preserving pre-measure behavior exactly.
	var measures []cohesion.Measure
	seen := map[cohesion.Measure]bool{}
	for _, name := range cfg.IndexMeasures {
		m, err := kvcc.ParseMeasure(name)
		if err != nil || seen[m] {
			continue
		}
		seen[m] = true
		measures = append(measures, m)
	}
	if len(measures) == 0 {
		measures = []cohesion.Measure{cohesion.KVCC}
	}
	return &Server{
		cfg:           cfg,
		cache:         newResultCache(cfg.CacheSize),
		flight:        newFlightGroup(),
		adm:           newAdmission(cfg),
		start:         time.Now(),
		engine:        engine,
		indexMeasures: measures,
		graphs:        make(map[string]graphEntry),
		prev:          make(map[prevKey]*list.Element),
		seedOrder:     list.New(),
		indexes:       make(map[indexKey]*graphIndex),
		measureStats:  make(map[cohesion.Measure]*MeasureCounters),
		stores:        make(map[string]*store.Store),
		idem:          make(map[string]*idemTable),
	}
}

// BeginDrain flips the server into graceful-shutdown mode: every new
// admission is refused with a draining OverloadError (HTTP 503) while
// requests already in flight run to completion. Irreversible by design —
// a draining server is on its way out.
func (s *Server) BeginDrain() { s.adm.beginDrain() }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.adm.isDraining() }

// admit runs one request through the admission ladder: the per-tenant
// quota first, then a cost-class permit held (via the returned release)
// for the request's lifetime.
func (s *Server) admit(ctx context.Context, cls costClass, graphName string) (release func(), err error) {
	if err := s.adm.checkQuota(tenantFrom(ctx, graphName)); err != nil {
		return nil, err
	}
	return s.adm.acquire(ctx, cls)
}

// countMeasure ticks one per-measure serving-ladder counter.
func (s *Server) countMeasure(m cohesion.Measure, tick func(*MeasureCounters)) {
	s.statsMu.Lock()
	c := s.measureStats[m]
	if c == nil {
		c = &MeasureCounters{}
		s.measureStats[m] = c
	}
	tick(c)
	s.statsMu.Unlock()
}

// AddGraph registers g under name, replacing any previous graph with that
// name and invalidating its cached results and hierarchy index. The
// server treats g as immutable from this point on; callers must not
// modify it. With Config.BuildIndex set, a background hierarchy-index
// build starts immediately.
func (s *Server) AddGraph(name string, g *graph.Graph) {
	// Serialize with in-flight edit batches: an Edits call must finish
	// installing its seeds and index state before a replacement tears
	// them down (and vice versa). The mutation overlay is created lazily
	// by the first Edits call, so registration costs no edit bookkeeping.
	s.editMu.Lock()
	defer s.editMu.Unlock()
	s.mu.Lock()
	_, replaced := s.graphs[name]
	s.nextGen++
	entry := graphEntry{
		g:        g,
		gen:      s.nextGen,
		version:  1,
		modified: time.Now(),
	}
	s.graphs[name] = entry
	s.mu.Unlock()
	if replaced {
		s.cache.invalidateGraph(name)
		s.dropSeeds(name)
		s.dropIdem(name)
	}
	if s.cfg.BuildIndex {
		s.resetIndex(name, entry)
	} else {
		s.retireIndex(name, entry.gen)
	}
	s.persistNewGraph(name, g)
}

// RemoveGraph unregisters the named graph, drops its cached results and
// incremental seeds, and cancels (and discards) any background hierarchy
// index build. It reports whether the graph was registered. A long-running
// daemon that cycles datasets uses this to keep its memory bounded;
// requests already in flight finish against the snapshot they hold but
// can no longer cache results (their generation is retired with the
// entry).
func (s *Server) RemoveGraph(name string) bool {
	// Serialize with Edits for the same reason as AddGraph: without this,
	// an in-flight edit could re-seed s.prev or restart an index build
	// after this removal swept them, resurrecting state for an
	// unregistered graph.
	s.editMu.Lock()
	defer s.editMu.Unlock()
	s.mu.Lock()
	_, ok := s.graphs[name]
	delete(s.graphs, name)
	s.mu.Unlock()
	if !ok {
		return false
	}
	s.cache.invalidateGraph(name)
	s.dropSeeds(name)
	s.dropIdem(name)
	s.invalidateIndex(name)
	s.dropProfile(name)
	s.dropStore(name)
	return true
}

// dropSeeds discards every incremental seed held for the named graph.
func (s *Server) dropSeeds(name string) {
	s.prevMu.Lock()
	for key, el := range s.prev {
		if key.graph == name {
			s.seedOrder.Remove(el)
			delete(s.prev, key)
		}
	}
	s.prevMu.Unlock()
}

// LoadGraphFile reads a SNAP-style edge list and registers the graph
// under name. Regular files go through graphio's two-pass streaming
// loader — the file is scanned twice and the CSR arrays are filled in
// place, so multi-million-edge files load with bounded memory; pipes and
// other non-seekable paths fall back to the one-pass reader.
func (s *Server) LoadGraphFile(name, path string) error {
	g, err := graphio.ReadEdgeListFile(path)
	if err != nil {
		return fmt.Errorf("server: load %q: %w", name, err)
	}
	s.AddGraph(name, g)
	return nil
}

// Graphs lists the registered graphs sorted by name.
func (s *Server) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for name, e := range s.graphs {
		out = append(out, GraphInfo{
			Name:       name,
			Vertices:   e.g.NumVertices(),
			Edges:      e.g.NumEdges(),
			Version:    e.version,
			ModifiedAt: e.modified,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Server) lookup(name string) (graphEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.graphs[name]
	if !ok {
		return graphEntry{}, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	return e, nil
}

// requestContext derives the context that bounds one request's wait: the
// client's override or the default, never past Config.MaxTimeout. An
// over-the-ceiling override is clamped (and counted) rather than
// rejected; a negative one is a malformed request and rejected outright.
func (s *Server) requestContext(ctx context.Context, timeoutMillis int64) (context.Context, context.CancelFunc, error) {
	if timeoutMillis < 0 {
		return nil, nil, fmt.Errorf("%w: negative timeout_ms %d", ErrBadRequest, timeoutMillis)
	}
	timeout := s.cfg.RequestTimeout
	if timeoutMillis > 0 {
		timeout = time.Duration(timeoutMillis) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
			s.adm.countClamped()
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, cancel, nil
}

// resultSource identifies which rung of the serving ladder answered a
// request: the hierarchy index, the result cache, an in-flight
// enumeration this caller joined, or a fresh enumeration it led.
type resultSource int

const (
	srcComputed resultSource = iota
	srcCache
	srcDeduped
	srcIndex
	// srcDegraded marks a previous-generation result served because fresh
	// compute could not fit the request's deadline budget or was shed by
	// admission control. Degraded results are never cached.
	srcDegraded
)

// result is the heart of the server: a serving ladder of hierarchy index,
// cache lookup, then singleflight around the actual enumeration, shared
// by every cohesion measure. The index rung is sound because a finished
// hierarchy level holds exactly the measure's components a direct
// enumeration returns, in the same canonical order, for any algorithm
// variant (all four k-VCC variants are exact); the generation check
// keeps a replaced graph's index from ever answering.
func (s *Server) result(ctx context.Context, graphName string, k int, m cohesion.Measure, algo kvcc.Algorithm) (res *kvcc.Result, src resultSource, err error) {
	if k < 2 {
		return nil, srcComputed, fmt.Errorf("%w: k must be >= 2, got %d", ErrBadRequest, k)
	}
	if s.cfg.MaxK > 0 && k > s.cfg.MaxK {
		return nil, srcComputed, fmt.Errorf("%w: k %d exceeds server limit %d", ErrBadRequest, k, s.cfg.MaxK)
	}
	entry, err := s.lookup(graphName)
	if err != nil {
		return nil, srcComputed, err
	}

	if ix := s.readyIndex(graphName, entry.gen, m); ix != nil && ix.tree.Covers(k) {
		s.statsMu.Lock()
		s.enum.IndexServed++
		s.statsMu.Unlock()
		s.countMeasure(m, func(c *MeasureCounters) { c.IndexServed++ })
		// The per-level Result is memoized on the index so its lazy label
		// index (behind components-containing/overlap) builds once, not
		// once per request.
		return ix.levelResult(k), srcIndex, nil
	}

	key := cacheKey{graph: graphName, gen: entry.gen, measure: m, k: k, algo: algo}
	if res, ok := s.cache.get(key); ok {
		s.countMeasure(m, func(c *MeasureCounters) { c.CacheHits++ })
		return res, srcCache, nil
	}

	// Deadline budget: when the remaining budget provably cannot fit a
	// fresh enumeration (per-key EWMA cost estimate), skip the doomed
	// compute and serve the previous generation's result marked degraded
	// instead of timing out with nothing.
	if res := s.degradedFor(ctx, key); res != nil {
		s.adm.countDegraded()
		return res, srcDegraded, nil
	}

	// Double-check inside the flight: this caller may have missed the
	// cache above and then won the flight race only after a previous
	// leader already stored the result. lateHit is only written by this
	// caller's own closure, and flight.do's completion channel orders the
	// write before the read.
	var lateHit bool
	res, deduped, err := s.flight.do(ctx, key, func() (*kvcc.Result, error) {
		if r, ok := s.cache.getIfPresent(key); ok {
			lateHit = true
			return r, nil
		}
		// The expensive permit is taken by the flight leader, on a context
		// detached from any request (the leader outlives its requesters by
		// design); the wait is bounded by QueueTimeout alone. A shed here
		// propagates to every deduped waiter, each of which falls back to
		// its own degraded rung below.
		release, aerr := s.adm.acquire(context.Background(), classExpensive)
		if aerr != nil {
			return nil, aerr
		}
		defer release()
		return s.enumerate(key, entry.g)
	})
	if err != nil {
		// Graceful degradation: a shed or out-of-deadline request can
		// still be answered — one generation stale, and saying so — when
		// an edit left the previous generation's result behind.
		if errors.Is(err, ErrOverloaded) || errors.Is(err, context.DeadlineExceeded) {
			if res := s.previousResult(key); res != nil {
				s.adm.countDegraded()
				return res, srcDegraded, nil
			}
		}
		return nil, srcComputed, err
	}
	if lateHit {
		s.countMeasure(m, func(c *MeasureCounters) { c.CacheHits++ })
		return res, srcCache, nil
	}
	if deduped {
		return res, srcDeduped, nil
	}
	return res, srcComputed, nil
}

// estimateKey addresses the per-query EWMA cost estimate: enumeration
// cost varies by graph, measure and k, so all three are in the key.
func estimateKey(key cacheKey) string {
	return key.graph + "/" + key.measure.String() + "/" + strconv.Itoa(key.k)
}

// previousResult returns the previous-generation result for key's query,
// if an edit batch retained one (the incremental-seed table holds exactly
// the last Result computed before the current generation invalidated it).
// Only the kvcc measure retains seeds; nil otherwise.
func (s *Server) previousResult(key cacheKey) *kvcc.Result {
	if key.measure != kvcc.MeasureKVCC {
		return nil
	}
	return s.peekSeed(prevKey{graph: key.graph, k: key.k, algo: key.algo})
}

// degradedFor decides up front whether fresh compute fits the request's
// deadline budget: with a cost estimate on record and less remaining
// budget than it predicts, the previous-generation result (if any) is the
// best answer the deadline allows.
func (s *Server) degradedFor(ctx context.Context, key cacheKey) *kvcc.Result {
	dl, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	est, ok := s.adm.estimateMS(estimateKey(key))
	if !ok || float64(time.Until(dl))/float64(time.Millisecond) >= est {
		return nil
	}
	return s.previousResult(key)
}

// enumerate runs one cache-filling enumeration as the flight leader, on a
// context detached from any request, and records latency metrics.
func (s *Server) enumerate(key cacheKey, g *graph.Graph) (*kvcc.Result, error) {
	if testHookEnumerateStarted != nil {
		testHookEnumerateStarted()
	}
	if err := failpoint.Eval("server/enumerate"); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ComputeTimeout)
	defer cancel()

	s.statsMu.Lock()
	s.enum.Started++
	s.statsMu.Unlock()
	s.countMeasure(key.measure, func(c *MeasureCounters) { c.Enumerations++ })

	// Consume the incremental seed, if an edit batch left one: the
	// enumeration then reuses every k-core component the edits did not
	// touch. Seeds are one-shot — consumed on success below — so the
	// retained Result's memory is bounded by what was cached at edit time.
	// Seeds exist only for the kvcc measure (the incremental path is
	// k-VCC-specific); the other measures always enumerate from scratch.
	var seed *kvcc.Result
	seedKey := prevKey{graph: key.graph, k: key.k, algo: key.algo}
	if key.measure == kvcc.MeasureKVCC {
		seed = s.peekSeed(seedKey)
	}

	begin := time.Now()
	// Bracket the computation with the process's major-fault counter: the
	// delta is the pages this query pulled from disk — its beyond-RAM
	// cost — reported as Stats.ColdPages. Attribution is approximate
	// under concurrency (overlapping queries' faults are counted too) and
	// zero where the platform has no counters.
	majBefore, _, haveFaults := residency.Faults()
	var res *kvcc.Result
	var err error
	if key.measure == kvcc.MeasureKVCC {
		res, err = kvcc.EnumerateIncrementalContext(ctx, g, key.k, seed,
			kvcc.WithAlgorithm(key.algo), kvcc.WithParallelism(s.cfg.Parallelism),
			kvcc.WithFlowEngine(s.engine), kvcc.WithSeed(s.cfg.Seed))
	} else {
		res, err = kvcc.EnumerateMeasureContext(ctx, g, key.k, key.measure,
			kvcc.WithParallelism(s.cfg.Parallelism),
			kvcc.WithFlowEngine(s.engine), kvcc.WithSeed(s.cfg.Seed))
	}
	elapsed := time.Since(begin)
	if haveFaults && res != nil {
		if majAfter, _, ok := residency.Faults(); ok {
			res.Stats.ColdPages = majAfter - majBefore
		}
	}

	s.statsMu.Lock()
	// A canceled enumeration is the caller's choice (a disconnected
	// client, a withdrawn request), not a server failure — only genuine
	// errors (timeouts included) count toward Errors.
	if err != nil && !errors.Is(err, context.Canceled) {
		s.enum.Errors++
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	s.enum.TotalMS += ms
	if ms > s.enum.MaxMS {
		s.enum.MaxMS = ms
	}
	s.statsMu.Unlock()
	// Feed the admission layer's cost model: the estimate drives budget
	// pre-checks and Retry-After hints. Timed-out runs count too — they
	// are exactly the evidence that this key cannot fit small budgets.
	s.adm.noteServiceMS(estimateKey(key), ms)

	if err != nil {
		return nil, err
	}
	// Only cache if the graph generation is still current: a result
	// computed on a graph that was replaced mid-flight would otherwise sit
	// unreachable in the LRU (lookups always use the current generation),
	// wasting a slot until eviction.
	s.mu.Lock()
	cur, ok := s.graphs[key.graph]
	s.mu.Unlock()
	if ok && cur.gen == key.gen {
		s.cache.put(key, res)
		// Consume the seed only when this leader computed on the current
		// generation: a leader pinned to a retired generation (its lookup
		// raced the edit) may reuse the seed's components, but must leave
		// the seed in place for the first current-generation enumeration.
		if seed != nil {
			s.statsMu.Lock()
			s.enum.IncrementalRuns++
			s.enum.ComponentsReused += res.Stats.ComponentsReused
			s.statsMu.Unlock()
			s.consumeSeed(seedKey, seed)
		}
	}
	return res, nil
}

// Enumerate serves one enumerate request. It is the method behind
// POST /api/v1/enumerate and is equally usable in-process.
func (s *Server) Enumerate(ctx context.Context, req EnumerateRequest) (*EnumerateResponse, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	m, err := parseMeasure(req.Measure, req.Algorithm)
	if err != nil {
		return nil, err
	}
	ctx, cancel, err := s.requestContext(ctx, req.TimeoutMillis)
	if err != nil {
		return nil, err
	}
	defer cancel()
	release, err := s.admit(ctx, classCheap, req.Graph)
	if err != nil {
		return nil, err
	}
	defer release()

	begin := time.Now()
	res, src, err := s.result(ctx, req.Graph, req.K, m, algo)
	if err != nil {
		return nil, err
	}
	resp := buildEnumerateResponse(req.Graph, req.K, m, algo, res, src, begin, req.IncludeMetrics)
	return &resp, nil
}

// buildEnumerateResponse assembles the wire response for one (graph, k)
// result; Enumerate and EnumerateBatch share it so the two endpoints can
// never diverge field by field.
func buildEnumerateResponse(graphName string, k int, m cohesion.Measure, algo kvcc.Algorithm, res *kvcc.Result, src resultSource, begin time.Time, includeMetrics bool) EnumerateResponse {
	resp := EnumerateResponse{
		Graph:       graphName,
		K:           k,
		Measure:     wireMeasure(m),
		Algorithm:   wireAlgorithm(m, algo),
		Cached:      src == srcCache,
		Deduped:     src == srcDeduped,
		IndexServed: src == srcIndex,
		Degraded:    src == srcDegraded,
		ElapsedMS:   float64(time.Since(begin)) / float64(time.Millisecond),
		Components:  wireComponents(res.Components, includeMetrics),
		Stats:       res.Stats,
	}
	if includeMetrics {
		avg := averageComponents(res.Components)
		resp.Metrics = &avg
	}
	return resp
}

// ComponentsContaining serves one components-containing request: the
// indices (and bodies) of the cached components holding one vertex label.
func (s *Server) ComponentsContaining(ctx context.Context, req ContainingRequest) (*ContainingResponse, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	m, err := parseMeasure(req.Measure, req.Algorithm)
	if err != nil {
		return nil, err
	}
	ctx, cancel, err := s.requestContext(ctx, req.TimeoutMillis)
	if err != nil {
		return nil, err
	}
	defer cancel()
	release, err := s.admit(ctx, classCheap, req.Graph)
	if err != nil {
		return nil, err
	}
	defer release()

	res, src, err := s.result(ctx, req.Graph, req.K, m, algo)
	if err != nil {
		return nil, err
	}
	indices := res.ComponentsContaining(req.Vertex)
	comps := make([]Component, len(indices))
	for i, idx := range indices {
		comps[i] = wireComponent(res.Components[idx], false)
	}
	return &ContainingResponse{
		Graph:       req.Graph,
		K:           req.K,
		Measure:     wireMeasure(m),
		Algorithm:   wireAlgorithm(m, algo),
		Cached:      src == srcCache,
		IndexServed: src == srcIndex,
		Degraded:    src == srcDegraded,
		Vertex:      req.Vertex,
		Indices:     indices,
		Components:  comps,
	}, nil
}

// Overlap serves one overlap request: the pairwise overlap matrix of the
// cached components.
func (s *Server) Overlap(ctx context.Context, req OverlapRequest) (*OverlapResponse, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	m, err := parseMeasure(req.Measure, req.Algorithm)
	if err != nil {
		return nil, err
	}
	ctx, cancel, err := s.requestContext(ctx, req.TimeoutMillis)
	if err != nil {
		return nil, err
	}
	defer cancel()
	release, err := s.admit(ctx, classCheap, req.Graph)
	if err != nil {
		return nil, err
	}
	defer release()

	res, src, err := s.result(ctx, req.Graph, req.K, m, algo)
	if err != nil {
		return nil, err
	}
	return &OverlapResponse{
		Graph:       req.Graph,
		K:           req.K,
		Measure:     wireMeasure(m),
		Algorithm:   wireAlgorithm(m, algo),
		Cached:      src == srcCache,
		IndexServed: src == srcIndex,
		Degraded:    src == srcDegraded,
		Matrix:      res.OverlapMatrix(),
	}, nil
}

// Stats returns the operational snapshot behind GET /api/v1/stats.
func (s *Server) Stats() *StatsResponse {
	s.statsMu.Lock()
	enum := s.enum
	if len(s.measureStats) > 0 {
		// Materialize a fresh map per call: the response may outlive this
		// snapshot and must not alias the live counters.
		enum.Measures = make(map[string]MeasureCounters, len(s.measureStats))
		for m, c := range s.measureStats {
			enum.Measures[m.String()] = *c
		}
	}
	s.statsMu.Unlock()
	enum.Deduped = s.flight.dedupedCount()
	adm := s.adm.snapshot()
	adm.FailpointTrips = failpoint.TotalTrips()
	adm.Failpoints = failpoint.Snapshot()
	return &StatsResponse{
		Graphs:       s.Graphs(),
		Cache:        s.cache.stats(),
		Enumerations: enum,
		Indexes:      s.indexInfos(),
		Persistence:  s.persistStats(),
		Admission:    adm,
		Paging:       s.pagingStats(),
		UptimeMS:     float64(time.Since(s.start)) / float64(time.Millisecond),
	}
}
