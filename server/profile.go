package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"context"

	"kvcc/cohesion"
	"kvcc/graph"
	"kvcc/internal/kcore"
	"kvcc/metrics"
)

// Graph profiling: GET /api/v1/graphs/{name}/profile answers "what does
// this graph look like, and what k is worth asking about?" before any
// enumeration is run. The graph-level portion — degeneracy, core-number
// histogram, degree and component-size distributions, clustering — is a
// pure function of the snapshot, so it is computed once per (graph,
// generation) and cached; the optional per-vertex portion reads the three
// cohesion hierarchies (core(u) from the kcore tree, λ(u) from kecc,
// κ(u) from kvcc), building them on demand like the cohesion endpoint.

// ProfileRequest asks for a graph's structural profile. The HTTP handler
// fills it from the URL: the graph from the path, Vertices from the
// comma-separated "vertices" query parameter, TimeoutMillis from
// "timeout_ms".
type ProfileRequest struct {
	Graph string `json:"graph"`
	// Vertices optionally asks for the per-vertex cohesion profile
	// (core, λ, κ) of up to 1024 vertex labels. Each triple satisfies
	// core ≥ λ ≥ κ: the k-core contains the k-ECC contains the k-VCC.
	Vertices      []int64 `json:"vertices,omitempty"`
	TimeoutMillis int64   `json:"timeout_ms,omitempty"`
}

// DegreeProfile summarizes the degree distribution.
type DegreeProfile struct {
	Min  int     `json:"min"`
	P50  int     `json:"p50"`
	P90  int     `json:"p90"`
	P99  int     `json:"p99"`
	Max  int     `json:"max"`
	Mean float64 `json:"mean"`
}

// ComponentsProfile summarizes the connected components of the graph.
// LargestSizes lists component sizes in descending order until at least
// 90% of all vertices are covered — on most real graphs that is a single
// giant component, and a long list is itself the finding.
type ComponentsProfile struct {
	Count int `json:"count"`
	// LargestSizes covers >= 90% of the vertices; CoveredFraction is the
	// exact fraction those components hold.
	LargestSizes    []int   `json:"largest_sizes"`
	CoveredFraction float64 `json:"covered_fraction"`
	P50             int     `json:"p50"`
	P90             int     `json:"p90"`
	Max             int     `json:"max"`
}

// ClusteringProfile summarizes triadic closure.
type ClusteringProfile struct {
	// GlobalCoefficient is the transitivity ratio 3·triangles/wedges.
	GlobalCoefficient float64 `json:"global_coefficient"`
	Triangles         int     `json:"triangles"`
}

// RecommendedK is the k range the core-number histogram suggests probing:
// below Min the components are near-trivial (k prunes almost nothing),
// above Max (the degeneracy) every level is empty, and Suggested is the
// deepest k whose k-core is still large enough to host interesting
// components. Derived deterministically from the histogram alone.
type RecommendedK struct {
	Min       int `json:"min"`
	Max       int `json:"max"`
	Suggested int `json:"suggested"`
}

// VertexProfile is one vertex's cohesion triple. Core is its core number,
// Lambda the deepest k with a k-ECC containing it, Kappa the deepest k
// with a k-VCC containing it; Whitney's inequality guarantees
// Core >= Lambda >= Kappa. A hierarchy truncated by IndexMaxK caps the
// reported values at that depth.
type VertexProfile struct {
	Vertex int64 `json:"vertex"`
	Core   int   `json:"core"`
	Lambda int   `json:"lambda"`
	Kappa  int   `json:"kappa"`
}

// ProfileResponse is the structural profile of one graph.
type ProfileResponse struct {
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// Degeneracy is the maximum core number — the exact upper bound on
	// any k with a non-empty k-core, k-ECC or k-VCC level.
	Degeneracy int `json:"degeneracy"`
	// CoreHistogram[c] counts the vertices with core number exactly c
	// (index 0 = isolated vertices, last index = degeneracy).
	CoreHistogram []int             `json:"core_histogram"`
	Degrees       DegreeProfile     `json:"degrees"`
	Components    ComponentsProfile `json:"components"`
	Clustering    ClusteringProfile `json:"clustering"`
	RecommendedK  RecommendedK      `json:"recommended_k"`
	PerVertex     []VertexProfile   `json:"per_vertex,omitempty"`
	// Cached reports that the graph-level profile was served from the
	// per-generation cache rather than recomputed.
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// graphProfile is one cached graph-level profile, valid for one
// generation of one graph.
type graphProfile struct {
	gen  uint64
	data ProfileResponse // per-request fields (PerVertex, Cached, ElapsedMS) left zero
}

// profileFor returns the graph-level profile for entry, computing and
// caching it on first request per generation.
func (s *Server) profileFor(name string, entry graphEntry) (ProfileResponse, bool) {
	s.profileMu.Lock()
	if p := s.profiles[name]; p != nil && p.gen == entry.gen {
		data := p.data
		s.profileMu.Unlock()
		return data, true
	}
	s.profileMu.Unlock()

	data := computeProfile(name, entry.g)

	s.profileMu.Lock()
	// Last writer wins; both computed the same pure function of the
	// snapshot, so overwriting is harmless. A newer generation's profile
	// is never displaced by this older one.
	if p := s.profiles[name]; p == nil || p.gen <= entry.gen {
		if s.profiles == nil {
			s.profiles = make(map[string]*graphProfile)
		}
		s.profiles[name] = &graphProfile{gen: entry.gen, data: data}
	}
	s.profileMu.Unlock()
	return data, false
}

// dropProfile forgets the cached profile of a removed graph (replaced
// graphs are handled by the generation check in profileFor).
func (s *Server) dropProfile(name string) {
	s.profileMu.Lock()
	delete(s.profiles, name)
	s.profileMu.Unlock()
}

// Profile serves one graph-profile request. It is the method behind
// GET /api/v1/graphs/{name}/profile.
func (s *Server) Profile(ctx context.Context, req ProfileRequest) (*ProfileResponse, error) {
	if len(req.Vertices) > maxCohesionVertices {
		return nil, fmt.Errorf("%w: at most %d vertices per profile request, got %d",
			ErrBadRequest, maxCohesionVertices, len(req.Vertices))
	}
	begin := time.Now()
	entry, err := s.lookup(req.Graph)
	if err != nil {
		return nil, err
	}
	ctx, cancel, err := s.requestContext(ctx, req.TimeoutMillis)
	if err != nil {
		return nil, err
	}
	defer cancel()
	release, err := s.admit(ctx, classCheap, req.Graph)
	if err != nil {
		return nil, err
	}
	defer release()

	data, cached := s.profileFor(req.Graph, entry)
	resp := data // copy; the cached value stays pristine
	resp.Cached = cached

	if len(req.Vertices) > 0 {
		pv, err := s.perVertexProfiles(ctx, req.Graph, req.Vertices)
		if err != nil {
			return nil, err
		}
		resp.PerVertex = pv
	}

	s.statsMu.Lock()
	s.enum.Profiles++
	s.statsMu.Unlock()
	resp.ElapsedMS = float64(time.Since(begin)) / float64(time.Millisecond)
	return &resp, nil
}

// perVertexProfiles reads the three cohesion hierarchies — built on
// demand, like the cohesion endpoint — and assembles one (core, λ, κ)
// triple per requested label. The three indexFor calls run concurrently:
// each build is independent and the first profile request would otherwise
// pay them back to back.
func (s *Server) perVertexProfiles(ctx context.Context, name string, vertices []int64) ([]VertexProfile, error) {
	measures := [3]cohesion.Measure{cohesion.KCore, cohesion.KECC, cohesion.KVCC}
	var trees [3]*graphIndex
	var errs [3]error
	var wg sync.WaitGroup
	for i, m := range measures {
		wg.Add(1)
		go func() {
			defer wg.Done()
			trees[i], errs[i] = s.indexFor(ctx, name, m)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]VertexProfile, 0, len(vertices))
	for _, v := range vertices {
		out = append(out, VertexProfile{
			Vertex: v,
			Core:   trees[0].tree.Cohesion(v),
			Lambda: trees[1].tree.Cohesion(v),
			Kappa:  trees[2].tree.Cohesion(v),
		})
	}
	return out, nil
}

// computeProfile derives the graph-level profile: one core decomposition,
// one BFS over the components, one triangle pass. Everything below is a
// deterministic pure function of the snapshot.
func computeProfile(name string, g *graph.Graph) ProfileResponse {
	n := g.NumVertices()
	resp := ProfileResponse{
		Graph:    name,
		Vertices: n,
		Edges:    g.NumEdges(),
	}

	cores := kcore.CoreNumbers(g)
	degeneracy := 0
	for _, c := range cores {
		if c > degeneracy {
			degeneracy = c
		}
	}
	resp.Degeneracy = degeneracy
	resp.CoreHistogram = make([]int, degeneracy+1)
	for _, c := range cores {
		resp.CoreHistogram[c]++
	}

	resp.Degrees = degreeProfile(g)
	resp.Components = componentsProfile(g)
	resp.Clustering = ClusteringProfile{
		GlobalCoefficient: metrics.ClusteringCoefficient(g),
		Triangles:         metrics.TriangleCount(g),
	}
	resp.RecommendedK = recommendK(resp.CoreHistogram, n)
	return resp
}

// percentile returns the nearest-rank q-th percentile of sorted
// (ascending) values; zero for an empty slice.
func percentile(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func degreeProfile(g *graph.Graph) DegreeProfile {
	n := g.NumVertices()
	if n == 0 {
		return DegreeProfile{}
	}
	degs := make([]int, n)
	total := 0
	for v := 0; v < n; v++ {
		degs[v] = g.Degree(v)
		total += degs[v]
	}
	sort.Ints(degs)
	return DegreeProfile{
		Min:  degs[0],
		P50:  percentile(degs, 0.50),
		P90:  percentile(degs, 0.90),
		P99:  percentile(degs, 0.99),
		Max:  degs[n-1],
		Mean: float64(total) / float64(n),
	}
}

// componentsProfile BFS-labels the connected components and summarizes
// their sizes, listing the largest ones until 90% of the vertices are
// covered.
func componentsProfile(g *graph.Graph) ComponentsProfile {
	n := g.NumVertices()
	if n == 0 {
		return ComponentsProfile{}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int
	queue := make([]int, 0, 64)
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := len(sizes)
		comp[start] = id
		queue = append(queue[:0], start)
		size := 0
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
		sizes = append(sizes, size)
	}

	sorted := append([]int(nil), sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	covered := 0
	var largest []int
	for _, sz := range sorted {
		largest = append(largest, sz)
		covered += sz
		if float64(covered) >= 0.9*float64(n) {
			break
		}
	}
	asc := append([]int(nil), sorted...)
	sort.Ints(asc)
	return ComponentsProfile{
		Count:           len(sizes),
		LargestSizes:    largest,
		CoveredFraction: float64(covered) / float64(n),
		P50:             percentile(asc, 0.50),
		P90:             percentile(asc, 0.90),
		Max:             sorted[0],
	}
}

// recommendK turns the core histogram into a probing range. coreSizes(k)
// — the k-core's vertex count — is the histogram's suffix sum. Min is the
// smallest k >= 2 whose core already prunes at least 10% of the graph
// (below that, enumeration mostly re-reports the whole graph); Max is the
// degeneracy; Suggested is the deepest k whose k-core keeps at least
// max(2(k+1), 5% of n) vertices — big enough for more than one component
// of the minimum size k+1 — clamped into [Min, Max].
func recommendK(hist []int, n int) RecommendedK {
	degeneracy := len(hist) - 1
	if n == 0 || degeneracy < 2 {
		return RecommendedK{Min: 2, Max: degeneracy, Suggested: degeneracy}
	}
	coreSize := make([]int, degeneracy+1)
	coreSize[degeneracy] = hist[degeneracy]
	for c := degeneracy - 1; c >= 0; c-- {
		coreSize[c] = coreSize[c+1] + hist[c]
	}

	rec := RecommendedK{Min: 2, Max: degeneracy}
	for k := 2; k <= degeneracy; k++ {
		if float64(coreSize[k]) <= 0.9*float64(n) {
			rec.Min = k
			break
		}
	}
	rec.Suggested = rec.Min
	for k := degeneracy; k >= 2; k-- {
		want := 2 * (k + 1)
		if pct := n / 20; pct > want {
			want = pct
		}
		if coreSize[k] >= want {
			rec.Suggested = k
			break
		}
	}
	if rec.Suggested < rec.Min {
		rec.Suggested = rec.Min
	}
	if rec.Suggested > rec.Max {
		rec.Suggested = rec.Max
	}
	return rec
}
