package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control: the overload boundary of the server. Every request
// passes through here before it can spend server resources, descending an
// admission ladder that mirrors the serving ladder:
//
//  1. drain check — a server shutting down refuses new work with 503;
//  2. per-tenant token bucket — one hot client cannot starve the rest;
//  3. cost-classed concurrency limit — cheap requests (cache/index reads,
//     stats, derived post-processing) share a wide limiter whose only job
//     is bounding goroutines, while expensive work (cold enumerations)
//     and edits each get a narrow limiter sized to the hardware;
//  4. bounded queue with a queue deadline — a contended class admits a
//     bounded number of waiters for a bounded time, then sheds with 429 +
//     Retry-After rather than queuing unboundedly;
//  5. adaptive breaker — when the p95 queue wait of the expensive class
//     exceeds Config.ShedLatency, new arrivals are shed before queueing
//     (the fast path stays open, so the breaker self-heals as soon as
//     permits free up).
//
// A shed expensive request is not necessarily an error: the serving path
// may still answer it from a previous-generation cached result marked
// degraded (see Server.result).

// ErrOverloaded is the sentinel matched by errors.Is for every admission
// rejection: queue full, queue deadline, adaptive shed, quota exceeded,
// or draining. The concrete *OverloadError carries the retry hint.
var ErrOverloaded = errors.New("server: overloaded")

// OverloadError reports an admission rejection. The HTTP layer maps it to
// 429 Too Many Requests (503 Service Unavailable while draining) and
// emits RetryAfter as a Retry-After header; the Client honors it when
// backing off.
type OverloadError struct {
	// Reason is the admission rung that rejected the request: "queue-full",
	// "queue-timeout", "queue-latency", "quota" or "draining".
	Reason string
	// RetryAfter is the server's backoff hint (rounded up to whole seconds
	// on the wire; zero means "no hint").
	RetryAfter time.Duration
	// Draining marks a rejection due to graceful shutdown: the server is
	// going away, so the right status is 503 and the right client move is
	// another replica, not a retry here.
	Draining bool
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: overloaded (%s): retry after %s", e.Reason, e.RetryAfter.Round(time.Second))
}

// Is makes errors.Is(err, ErrOverloaded) match every *OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// costClass buckets requests by the resources they can consume. The class
// is decided by what the request is about to do, not by its endpoint: a
// query request holds a cheap permit for its whole lifetime (bounding
// total concurrent request goroutines), and only the flight leader that
// actually runs a cold enumeration additionally takes an expensive
// permit. Edits take the edit permit, which also bounds the pile-up of
// writers behind the edit mutex.
type costClass uint8

const (
	classCheap costClass = iota
	classExpensive
	classEdit
	numCostClasses
)

func (c costClass) String() string {
	switch c {
	case classCheap:
		return "cheap"
	case classExpensive:
		return "expensive"
	case classEdit:
		return "edit"
	}
	return "unknown"
}

// classLimiter is one cost class's concurrency limiter: a channel
// semaphore of cap permits plus a bounded count of queued waiters.
type classLimiter struct {
	permits  chan struct{}
	cap      int
	maxQueue int64
	queued   atomic.Int64
}

func newClassLimiter(capacity int, maxQueue int) *classLimiter {
	l := &classLimiter{
		permits:  make(chan struct{}, capacity),
		cap:      capacity,
		maxQueue: int64(maxQueue),
	}
	for i := 0; i < capacity; i++ {
		l.permits <- struct{}{}
	}
	return l
}

// inflight returns the number of permits currently held.
func (l *classLimiter) inflight() int { return l.cap - len(l.permits) }

// admissionCounters is the mutable half of AdmissionStats, guarded by
// admission.mu.
type admissionCounters struct {
	admitted          int64
	queued            int64
	shedQueueFull     int64
	shedQueueTimeout  int64
	shedLatency       int64
	shedDraining      int64
	quotaRejections   int64
	degraded          int64
	timeoutsClamped   int64
	idempotentReplays int64
}

// admission is the server's overload boundary. One instance per Server.
type admission struct {
	classes      [numCostClasses]*classLimiter
	queueTimeout time.Duration
	shedLatency  time.Duration // <=0: adaptive breaker disabled
	quotas       *quotaTable   // nil: quotas disabled

	draining atomic.Bool

	mu sync.Mutex
	c  admissionCounters
	// waits is a ring of recent expensive-class queue waits in
	// milliseconds (fast-path admissions record 0, which is what lets the
	// breaker close again once contention clears).
	waits   [admissionWaitWindow]float64
	waitPos int
	waitLen int
	// serviceMS is an EWMA of enumeration latency across all graphs — the
	// input to Retry-After hints. estimates refines it per (graph,
	// measure) for budget checks.
	serviceMS float64
	estimates map[string]float64
}

// admissionWaitWindow sizes the queue-wait percentile window. 256 recent
// samples: small enough to sort on demand, long enough that one outlier
// cannot trip the breaker.
const admissionWaitWindow = 256

func newAdmission(cfg Config) *admission {
	a := &admission{
		queueTimeout: cfg.QueueTimeout,
		shedLatency:  cfg.ShedLatency,
		estimates:    make(map[string]float64),
	}
	a.classes[classCheap] = newClassLimiter(cfg.MaxInflightCheap, cfg.AdmissionQueue)
	a.classes[classExpensive] = newClassLimiter(cfg.MaxInflight, cfg.AdmissionQueue)
	// Edits serialize on the server's edit mutex anyway; the permit bounds
	// how many writers may pile up behind it before new ones are shed.
	a.classes[classEdit] = newClassLimiter(1, cfg.AdmissionQueue)
	if cfg.QuotaRPS > 0 {
		burst := cfg.QuotaBurst
		if burst <= 0 {
			burst = int(2*cfg.QuotaRPS) + 1
		}
		a.quotas = newQuotaTable(cfg.QuotaRPS, burst)
	}
	return a
}

// beginDrain flips the server into drain mode: every subsequent acquire
// is refused with a draining OverloadError (HTTP 503) while in-flight
// requests run to completion.
func (a *admission) beginDrain() { a.draining.Store(true) }

func (a *admission) isDraining() bool { return a.draining.Load() }

// checkQuota charges one request to the tenant's token bucket, shedding
// with a quota OverloadError when the bucket is empty.
func (a *admission) checkQuota(tenant string) error {
	if a.quotas == nil {
		return nil
	}
	ok, retryAfter := a.quotas.allow(tenant)
	if ok {
		return nil
	}
	a.mu.Lock()
	a.c.quotaRejections++
	a.mu.Unlock()
	return &OverloadError{Reason: "quota", RetryAfter: retryAfter}
}

// acquire admits one request into the given cost class, returning the
// release function the caller must defer. The ladder: drain check, fast
// path (free permit), adaptive breaker, bounded queue with the queue
// deadline (and the request's own deadline, whichever is sooner).
func (a *admission) acquire(ctx context.Context, cls costClass) (release func(), err error) {
	if a.draining.Load() {
		a.mu.Lock()
		a.c.shedDraining++
		a.mu.Unlock()
		return nil, &OverloadError{Reason: "draining", RetryAfter: time.Second, Draining: true}
	}
	l := a.classes[cls]
	release = func() { l.permits <- struct{}{} }

	select {
	case <-l.permits:
		a.mu.Lock()
		a.c.admitted++
		a.mu.Unlock()
		if cls == classExpensive {
			a.noteWait(0)
		}
		return release, nil
	default:
	}

	// Contended. The adaptive breaker sheds expensive arrivals before they
	// queue when recent queue waits already blow the latency target — but
	// only arrivals that would queue: the fast path above stays open, so
	// recovering capacity immediately re-admits traffic and feeds the
	// window the zero waits that close the breaker.
	if cls == classExpensive && a.shedLatency > 0 {
		if p95 := a.queueWaitQuantile(0.95); p95 > float64(a.shedLatency)/float64(time.Millisecond) {
			a.mu.Lock()
			a.c.shedLatency++
			a.mu.Unlock()
			return nil, &OverloadError{Reason: "queue-latency", RetryAfter: a.retryAfterHint(cls)}
		}
	}

	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		a.mu.Lock()
		a.c.shedQueueFull++
		a.mu.Unlock()
		return nil, &OverloadError{Reason: "queue-full", RetryAfter: a.retryAfterHint(cls)}
	}
	defer l.queued.Add(-1)

	a.mu.Lock()
	a.c.queued++
	a.mu.Unlock()

	timer := time.NewTimer(a.queueTimeout)
	defer timer.Stop()
	begin := time.Now()
	select {
	case <-l.permits:
		if cls == classExpensive {
			a.noteWait(float64(time.Since(begin)) / float64(time.Millisecond))
		}
		a.mu.Lock()
		a.c.admitted++
		a.mu.Unlock()
		return release, nil
	case <-timer.C:
		// A queue-deadline shed is itself a latency sample: the wait was
		// real even though no permit arrived, and the breaker must see it.
		if cls == classExpensive {
			a.noteWait(float64(a.queueTimeout) / float64(time.Millisecond))
		}
		a.mu.Lock()
		a.c.shedQueueTimeout++
		a.mu.Unlock()
		return nil, &OverloadError{Reason: "queue-timeout", RetryAfter: a.retryAfterHint(cls)}
	case <-ctx.Done():
		// The request's own budget expired while queued: not a shed the
		// client should retry-after, but its deadline (504/499) — still
		// recorded as queue pressure.
		if cls == classExpensive {
			a.noteWait(float64(time.Since(begin)) / float64(time.Millisecond))
		}
		a.mu.Lock()
		a.c.shedQueueTimeout++
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// noteWait records one expensive-class queue wait (ms) in the percentile
// window.
func (a *admission) noteWait(ms float64) {
	a.mu.Lock()
	a.waits[a.waitPos] = ms
	a.waitPos = (a.waitPos + 1) % admissionWaitWindow
	if a.waitLen < admissionWaitWindow {
		a.waitLen++
	}
	a.mu.Unlock()
}

// queueWaitQuantile returns the q-quantile of the recent expensive-class
// queue waits, in milliseconds (0 with no samples).
func (a *admission) queueWaitQuantile(q float64) float64 {
	a.mu.Lock()
	n := a.waitLen
	buf := make([]float64, n)
	copy(buf, a.waits[:n])
	a.mu.Unlock()
	return quantile(buf, q)
}

// quantile sorts buf in place and returns its q-quantile by
// nearest-rank; 0 for an empty slice.
func quantile(buf []float64, q float64) float64 {
	if len(buf) == 0 {
		return 0
	}
	sort.Float64s(buf)
	idx := int(q * float64(len(buf)))
	if idx >= len(buf) {
		idx = len(buf) - 1
	}
	return buf[idx]
}

// noteServiceMS feeds one completed enumeration's latency into the
// Retry-After EWMA and the per-key budget estimate.
func (a *admission) noteServiceMS(key string, ms float64) {
	const alpha = 0.3
	a.mu.Lock()
	if a.serviceMS == 0 {
		a.serviceMS = ms
	} else {
		a.serviceMS += alpha * (ms - a.serviceMS)
	}
	if prev, ok := a.estimates[key]; ok {
		a.estimates[key] = prev + alpha*(ms-prev)
	} else {
		if len(a.estimates) >= maxEstimateKeys {
			// A pathological key churn (many graphs, many measures) must
			// not grow the table without bound; dropping it only costs
			// budget-check precision until it refills.
			a.estimates = make(map[string]float64)
		}
		a.estimates[key] = ms
	}
	a.mu.Unlock()
}

// maxEstimateKeys bounds the per-(graph, measure) estimate table.
const maxEstimateKeys = 4096

// estimateMS returns the EWMA cost estimate for key (per-key if seen,
// else the global service average), and whether any estimate exists.
func (a *admission) estimateMS(key string) (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if est, ok := a.estimates[key]; ok {
		return est, true
	}
	if a.serviceMS > 0 {
		return a.serviceMS, true
	}
	return 0, false
}

// retryAfterHint estimates how long a shed client should wait before a
// retry has a chance: the backlog ahead of it times the average service
// time, spread over the class's parallelism, clamped to [1s, 30s].
func (a *admission) retryAfterHint(cls costClass) time.Duration {
	l := a.classes[cls]
	a.mu.Lock()
	svc := a.serviceMS
	a.mu.Unlock()
	if svc <= 0 {
		return time.Second
	}
	backlog := float64(l.queued.Load()+1) / float64(l.cap)
	d := time.Duration(svc*backlog) * time.Millisecond
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// countDegraded ticks the degraded-response counter.
func (a *admission) countDegraded() {
	a.mu.Lock()
	a.c.degraded++
	a.mu.Unlock()
}

// countClamped ticks the timeout-clamp counter.
func (a *admission) countClamped() {
	a.mu.Lock()
	a.c.timeoutsClamped++
	a.mu.Unlock()
}

// countReplay ticks the idempotency-replay counter.
func (a *admission) countReplay() {
	a.mu.Lock()
	a.c.idempotentReplays++
	a.mu.Unlock()
}

// snapshot renders the admission state for /api/v1/stats.
func (a *admission) snapshot() *AdmissionStats {
	a.mu.Lock()
	c := a.c
	n := a.waitLen
	buf := make([]float64, n)
	copy(buf, a.waits[:n])
	a.mu.Unlock()
	sort.Float64s(buf)
	pick := func(q float64) float64 {
		if len(buf) == 0 {
			return 0
		}
		idx := int(q * float64(len(buf)))
		if idx >= len(buf) {
			idx = len(buf) - 1
		}
		return buf[idx]
	}
	exp := a.classes[classExpensive]
	return &AdmissionStats{
		Draining:          a.draining.Load(),
		MaxInflight:       exp.cap,
		MaxInflightCheap:  a.classes[classCheap].cap,
		QueueDepth:        int(exp.maxQueue),
		InflightExpensive: exp.inflight(),
		QueuedNow:         int(exp.queued.Load()),
		Admitted:          c.admitted,
		Queued:            c.queued,
		Shed:              c.shedQueueFull + c.shedQueueTimeout + c.shedLatency + c.shedDraining,
		ShedQueueFull:     c.shedQueueFull,
		ShedQueueTimeout:  c.shedQueueTimeout,
		ShedLatency:       c.shedLatency,
		ShedDraining:      c.shedDraining,
		QuotaRejections:   c.quotaRejections,
		QueueWaitP50MS:    pick(0.50),
		QueueWaitP95MS:    pick(0.95),
		QueueWaitP99MS:    pick(0.99),
		Degraded:          c.degraded,
		TimeoutsClamped:   c.timeoutsClamped,
		IdempotentReplays: c.idempotentReplays,
	}
}

// quotaTable is the per-tenant token-bucket table. Buckets refill
// continuously at rps tokens per second up to burst; a request costs one
// token. The table is bounded: when it outgrows maxQuotaTenants, buckets
// that have fully refilled (i.e. idle tenants) are evicted — evicting an
// idle bucket is lossless because a fresh bucket starts full.
type quotaTable struct {
	mu      sync.Mutex
	rps     float64
	burst   float64
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

const maxQuotaTenants = 8192

func newQuotaTable(rps float64, burst int) *quotaTable {
	return &quotaTable{rps: rps, burst: float64(burst), buckets: make(map[string]*tokenBucket)}
}

// allow charges one token to the tenant, reporting whether it fit and —
// when it did not — how long until a token accrues.
func (q *quotaTable) allow(tenant string) (ok bool, retryAfter time.Duration) {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		if len(q.buckets) >= maxQuotaTenants {
			q.evictIdleLocked(now)
		}
		b = &tokenBucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * q.rps
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.rps
	d := time.Duration(need * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return false, d
}

// evictIdleLocked drops buckets that have fully refilled — tenants idle
// long enough that forgetting them changes nothing.
func (q *quotaTable) evictIdleLocked(now time.Time) {
	full := time.Duration(q.burst / q.rps * float64(time.Second))
	for tenant, b := range q.buckets {
		if now.Sub(b.last) >= full {
			delete(q.buckets, tenant)
		}
	}
}

// Tenant attribution: the HTTP layer stamps the request context with the
// X-API-Key header when present; in-process callers may use WithTenant.
// Requests with no tenant identity fall back to a per-graph bucket, so an
// anonymous hot spot on one graph cannot starve the others.

type tenantCtxKey struct{}

// WithTenant returns a context carrying the tenant identity quotas charge
// requests to.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// tenantFrom extracts the request's tenant: the explicit identity when
// set, otherwise a per-graph fallback.
func tenantFrom(ctx context.Context, graphName string) string {
	if t, ok := ctx.Value(tenantCtxKey{}).(string); ok && t != "" {
		return t
	}
	return "graph:" + graphName
}
