package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"kvcc"
	"kvcc/cohesion"
	"kvcc/hierarchy"
)

// indexKey addresses one hierarchy index: every registered graph can hold
// one tree per cohesion measure, built independently. The zero measure is
// kvcc, so single-measure deployments key exactly as they always did.
type indexKey struct {
	graph   string
	measure cohesion.Measure
}

// graphIndex is one hierarchy-index build for one (graph, measure,
// generation) triple. The build runs in a background goroutine; ready is
// closed when it finishes, after which tree/err/buildMS are immutable. A
// replaced graph cancels its index builds via cancel, so a stale build
// can never serve queries: lookups always match the generation first.
type graphIndex struct {
	graph   string
	measure cohesion.Measure
	gen     uint64
	maxK    int // Options.MaxK the build uses (0 = full depth)
	ready   chan struct{}
	cancel  context.CancelFunc

	// Written once before ready is closed.
	tree    *hierarchy.Tree
	err     error
	buildMS float64

	// levelRes memoizes the kvcc.Result materialized for each served
	// level, so per-Result lazy state (the label→components inverted
	// index behind ComponentsContaining/OverlapMatrix) amortizes across
	// requests instead of being rebuilt per call. Only touched after
	// ready closes with err == nil; the tree is immutable by then.
	resMu    sync.Mutex
	levelRes map[int]*kvcc.Result
}

// levelResult returns the (memoized) Result for level k of a finished
// build. Callers must have checked done(), err == nil and tree.Covers(k).
func (ix *graphIndex) levelResult(k int) *kvcc.Result {
	ix.resMu.Lock()
	defer ix.resMu.Unlock()
	if r, ok := ix.levelRes[k]; ok {
		return r
	}
	if ix.levelRes == nil {
		ix.levelRes = make(map[int]*kvcc.Result)
	}
	r := resultFromIndex(ix.tree, k)
	ix.levelRes[k] = r
	return r
}

// done reports whether the build has finished, without blocking.
func (ix *graphIndex) done() bool {
	select {
	case <-ix.ready:
		return true
	default:
		return false
	}
}

// invalidateIndex unconditionally cancels and drops every measure's index
// for name.
func (s *Server) invalidateIndex(name string) {
	s.indexMu.Lock()
	var ixs []*graphIndex
	for key, ix := range s.indexes {
		if key.graph == name {
			ixs = append(ixs, ix)
			delete(s.indexes, key)
		}
	}
	s.indexMu.Unlock()
	for _, ix := range ixs {
		ix.cancel()
	}
}

// retireIndex drops the indexes for name (all measures) that belong to a
// generation older than gen. The generation guard makes concurrent
// AddGraph calls commute: the call that lost the registry race (its
// generation is older) can neither cancel the winner's builds nor
// install its own over them (see resetIndex).
func (s *Server) retireIndex(name string, gen uint64) {
	s.indexMu.Lock()
	var ixs []*graphIndex
	for key, ix := range s.indexes {
		if key.graph == name && ix.gen < gen {
			ixs = append(ixs, ix)
			delete(s.indexes, key)
		}
	}
	s.indexMu.Unlock()
	for _, ix := range ixs {
		ix.cancel()
	}
}

// resetIndex retires any older-generation builds and starts one per
// configured index measure for e, unless a build of e's generation or
// newer is already installed for that measure.
func (s *Server) resetIndex(name string, e graphEntry) {
	s.retireIndex(name, e.gen)
	s.indexMu.Lock()
	for _, m := range s.indexMeasures {
		if cur := s.indexes[indexKey{graph: name, measure: m}]; cur == nil || cur.gen < e.gen {
			s.startIndexBuildLocked(name, e, m)
		}
	}
	s.indexMu.Unlock()
}

// startIndexBuildLocked launches the background hierarchy build of one
// measure for one graph entry and installs it in the index table,
// cancelling any build it displaces (once evicted from the table a build
// is unreachable by retireIndex, so this is its only cancellation point).
// Callers hold indexMu.
func (s *Server) startIndexBuildLocked(name string, e graphEntry, m cohesion.Measure) *graphIndex {
	key := indexKey{graph: name, measure: m}
	if old := s.indexes[key]; old != nil {
		old.cancel()
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.IndexBuildTimeout)
	ix := &graphIndex{
		graph:   name,
		measure: m,
		gen:     e.gen,
		maxK:    s.cfg.IndexMaxK,
		ready:   make(chan struct{}),
		cancel:  cancel,
	}
	s.indexes[key] = ix
	go func() {
		defer cancel()
		begin := time.Now()
		tree, err := hierarchy.BuildContext(ctx, e.g, hierarchy.Options{
			MaxK:        ix.maxK,
			Measure:     m,
			Parallelism: s.cfg.Parallelism,
			FlowEngine:  s.engine, // kvcc.FlowEngine aliases core.FlowEngine
			Seed:        s.cfg.Seed,
		})
		ix.buildMS = float64(time.Since(begin)) / float64(time.Millisecond)
		ix.tree, ix.err = tree, err
		close(ix.ready)
		// Persist after ready closes so queries start using the index
		// immediately; the save is advisory (it only speeds up the next
		// restart) and checks the generation itself.
		s.persistIndex(ix)
	}()
	return ix
}

// installReadyIndex registers an already-finished tree (loaded from a
// graph's durable store at recovery) as the graph's index for the tree's
// measure: a graphIndex born ready, with nothing to cancel. The usual
// generation guard applies, so a racing build for a newer generation is
// never displaced.
func (s *Server) installReadyIndex(name string, e graphEntry, tree *hierarchy.Tree, buildMS float64) {
	ix := &graphIndex{
		graph:   name,
		measure: tree.Measure,
		gen:     e.gen,
		maxK:    s.cfg.IndexMaxK,
		ready:   make(chan struct{}),
		cancel:  func() {},
		tree:    tree,
		buildMS: buildMS,
	}
	close(ix.ready)
	key := indexKey{graph: name, measure: tree.Measure}
	s.indexMu.Lock()
	if cur := s.indexes[key]; cur == nil || cur.gen < e.gen {
		if cur != nil {
			cur.cancel()
		}
		s.indexes[key] = ix
	}
	s.indexMu.Unlock()
}

// readyIndex returns the finished index build for (name, gen, measure),
// or nil when no matching build has completed successfully. Non-blocking:
// the enumerate fast path uses it to opportunistically serve from the
// index while a build in progress falls back to the cache/singleflight
// path.
func (s *Server) readyIndex(name string, gen uint64, m cohesion.Measure) *graphIndex {
	s.indexMu.Lock()
	ix := s.indexes[indexKey{graph: name, measure: m}]
	s.indexMu.Unlock()
	if ix == nil || ix.gen != gen || !ix.done() || ix.err != nil {
		return nil
	}
	return ix
}

// indexFor returns the finished index for the named graph, starting a
// build on demand if none matches the current generation, and waiting for
// completion within ctx. This is the blocking path behind the hierarchy
// and cohesion endpoints, which exist only in terms of the index. A build
// that completed with an error (e.g. it hit IndexBuildTimeout) is not
// cached: the next request starts a fresh build rather than replaying the
// stale failure forever. An index of a newer generation than this
// caller's lookup is used as-is — newer is the current graph.
func (s *Server) indexFor(ctx context.Context, name string, m cohesion.Measure) (*graphIndex, error) {
	entry, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	s.indexMu.Lock()
	ix := s.indexes[indexKey{graph: name, measure: m}]
	if ix == nil || ix.gen < entry.gen || (ix.gen == entry.gen && ix.done() && ix.err != nil) {
		ix = s.startIndexBuildLocked(name, entry, m)
	}
	s.indexMu.Unlock()
	select {
	case <-ix.ready:
		if ix.err != nil {
			return nil, fmt.Errorf("server: index build for %q: %w", name, ix.err)
		}
		return ix, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// resultFromIndex materializes a kvcc.Result for level k of a finished
// hierarchy. Components come out in the exact canonical order (and with
// the exact vertex sets) a direct enumeration would produce; Stats reports
// the work the index build spent producing that level, which is the only
// honest attribution for a query that ran no enumeration at all.
func resultFromIndex(tree *hierarchy.Tree, k int) *kvcc.Result {
	res := &kvcc.Result{K: k, Components: tree.LevelComponents(k)}
	for _, lvl := range tree.Stats.PerLevel {
		if lvl.K == k {
			res.Stats = lvl.Core
			break
		}
	}
	return res
}

// Hierarchy serves one hierarchy request: a per-level summary of the
// graph's full cohesion tree, building the index on demand when it is not
// already (being) built.
func (s *Server) Hierarchy(ctx context.Context, req HierarchyRequest) (*HierarchyResponse, error) {
	m, err := parseMeasure(req.Measure, "")
	if err != nil {
		return nil, err
	}
	ctx, cancel, err := s.requestContext(ctx, req.TimeoutMillis)
	if err != nil {
		return nil, err
	}
	defer cancel()
	release, err := s.admit(ctx, classCheap, req.Graph)
	if err != nil {
		return nil, err
	}
	defer release()
	ix, err := s.indexFor(ctx, req.Graph, m)
	if err != nil {
		return nil, err
	}
	tree := ix.tree
	resp := &HierarchyResponse{
		Graph:    req.Graph,
		Measure:  wireMeasure(m),
		MaxK:     tree.MaxK,
		Size:     tree.Size(),
		Complete: tree.Covers(tree.MaxK + 1),
		BuildMS:  ix.buildMS,
		Stats:    tree.Stats,
	}
	for k := 1; k <= tree.MaxK; k++ {
		level := tree.LevelComponents(k)
		vertices := 0
		for _, c := range level {
			vertices += c.NumVertices()
		}
		lvl := HierarchyLevel{K: k, Components: len(level), Vertices: vertices}
		if req.IncludeComponents {
			lvl.ComponentSets = wireComponents(level, false)
		}
		resp.Levels = append(resp.Levels, lvl)
	}
	return resp, nil
}

// Cohesion serves one cohesion request: for each queried vertex label, the
// deepest k at which a k-VCC contains it, plus the nesting chain of
// components down to that level.
func (s *Server) Cohesion(ctx context.Context, req CohesionRequest) (*CohesionResponse, error) {
	if len(req.Vertices) == 0 {
		return nil, fmt.Errorf("%w: cohesion request needs at least one vertex", ErrBadRequest)
	}
	if len(req.Vertices) > maxCohesionVertices {
		return nil, fmt.Errorf("%w: at most %d vertices per cohesion request, got %d",
			ErrBadRequest, maxCohesionVertices, len(req.Vertices))
	}
	m, err := parseMeasure(req.Measure, "")
	if err != nil {
		return nil, err
	}
	ctx, cancel, err := s.requestContext(ctx, req.TimeoutMillis)
	if err != nil {
		return nil, err
	}
	defer cancel()
	release, err := s.admit(ctx, classCheap, req.Graph)
	if err != nil {
		return nil, err
	}
	defer release()
	ix, err := s.indexFor(ctx, req.Graph, m)
	if err != nil {
		return nil, err
	}
	resp := &CohesionResponse{Graph: req.Graph, Measure: wireMeasure(m)}
	for _, v := range req.Vertices {
		vc := VertexCohesion{Vertex: v, Cohesion: ix.tree.Cohesion(v)}
		for _, n := range ix.tree.Path(v) {
			vc.Path = append(vc.Path, PathStep{
				K:           n.K,
				NumVertices: n.Component.NumVertices(),
				NumEdges:    n.Component.NumEdges(),
			})
		}
		resp.Results = append(resp.Results, vc)
	}
	return resp, nil
}

// EnumerateBatch serves one multi-k enumerate request under a single
// deadline. Each k goes through the same serving ladder as a standalone
// enumerate (index, then cache, then singleflight enumeration), so a batch
// against an indexed graph is answered entirely from the tree.
func (s *Server) EnumerateBatch(ctx context.Context, req BatchEnumerateRequest) (*BatchEnumerateResponse, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	m, err := parseMeasure(req.Measure, req.Algorithm)
	if err != nil {
		return nil, err
	}
	if len(req.Ks) == 0 {
		return nil, fmt.Errorf("%w: batch request needs at least one k", ErrBadRequest)
	}
	if len(req.Ks) > maxBatchKs {
		return nil, fmt.Errorf("%w: at most %d values of k per batch, got %d",
			ErrBadRequest, maxBatchKs, len(req.Ks))
	}
	ctx, cancel, err := s.requestContext(ctx, req.TimeoutMillis)
	if err != nil {
		return nil, err
	}
	defer cancel()
	release, err := s.admit(ctx, classCheap, req.Graph)
	if err != nil {
		return nil, err
	}
	defer release()

	resp := &BatchEnumerateResponse{
		Graph:     req.Graph,
		Measure:   wireMeasure(m),
		Algorithm: wireAlgorithm(m, algo),
	}
	for _, k := range req.Ks {
		begin := time.Now()
		res, src, err := s.result(ctx, req.Graph, k, m, algo)
		if err != nil {
			return nil, fmt.Errorf("k=%d: %w", k, err)
		}
		resp.Results = append(resp.Results,
			buildEnumerateResponse(req.Graph, k, m, algo, res, src, begin, req.IncludeMetrics))
	}
	return resp, nil
}

// Request-size guardrails for the index endpoints.
const (
	maxCohesionVertices = 1024
	maxBatchKs          = 64
)

// indexInfos snapshots the state of every index build for Stats.
func (s *Server) indexInfos() []IndexInfo {
	s.indexMu.Lock()
	defer s.indexMu.Unlock()
	out := make([]IndexInfo, 0, len(s.indexes))
	for key, ix := range s.indexes {
		info := IndexInfo{Graph: key.graph, Measure: wireMeasure(key.measure), MaxK: ix.maxK}
		switch {
		case !ix.done():
			info.State = "building"
		case ix.err != nil:
			info.State = "failed"
		default:
			info.State = "ready"
			info.Size = ix.tree.Size()
			info.TreeMaxK = ix.tree.MaxK
			info.Complete = ix.tree.Covers(ix.tree.MaxK + 1)
			info.BuildMS = ix.buildMS
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		return out[i].Measure < out[j].Measure
	})
	return out
}
