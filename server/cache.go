package server

import (
	"container/list"
	"sync"

	"kvcc"
	"kvcc/cohesion"
)

// cacheKey identifies one enumeration: a named graph at a specific
// registration generation, the cohesion measure, the connectivity
// parameter, and the algorithm variant. Two requests with the same key are
// guaranteed the same result because every loaded graph is immutable and
// all four variants are exact (they differ only in pruning). The
// generation ties the key to one AddGraph call, so an enumeration still in
// flight when its graph is replaced can never serve (or cache) results
// under the new graph's name. The measure's zero value is cohesion.KVCC,
// so every key minted before the measure field existed keeps its identity.
type cacheKey struct {
	graph   string
	gen     uint64
	measure cohesion.Measure
	k       int
	algo    kvcc.Algorithm
}

// resultCache is a thread-safe LRU cache of enumeration results. Entries
// are counted, not sized: a *kvcc.Result shares subgraph storage with the
// enumeration that produced it, so entry count is the knob the operator
// reasons about.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[cacheKey]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key cacheKey
	res *kvcc.Result
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached result for key, promoting it to most recently
// used, and records a hit or miss.
func (c *resultCache) get(key cacheKey) (*kvcc.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// getIfPresent returns the cached result, promoting it and counting a hit
// when present, but — unlike get — not counting a miss when absent. Used
// by the flight leader's double-check: a caller that misses the cache and
// then wins the flight race after another leader already finished must
// not recompute, and should be accounted as the cache hit it effectively
// is (its earlier miss was already counted by get).
func (c *resultCache) getIfPresent(key cacheKey) (*kvcc.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *resultCache) put(key cacheKey, res *kvcc.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// droppedEntry is one cache entry removed by migrate, returned to the
// caller so the result can seed an incremental recomputation.
type droppedEntry struct {
	key cacheKey
	res *kvcc.Result
}

// migrate re-keys the named graph's entries from oldGen to newGen,
// dropping the ones whose k the affected predicate flags (and any stray
// entries from even older generations). It returns the number of entries
// kept and the dropped entries with their results. This is the
// version-scoped invalidation behind Edits: an entry at an unaffected k
// is provably identical on the new snapshot, so it keeps serving — with
// its LRU position intact — while affected entries leave and seed the
// incremental path.
func (c *resultCache) migrate(name string, oldGen, newGen uint64, affected func(k int) bool) (kept int, dropped []droppedEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	type move struct {
		el  *list.Element
		old cacheKey
	}
	var moves []move
	for key, el := range c.entries {
		if key.graph != name || key.gen > oldGen {
			// Entries newer than the migrated generation were computed on
			// the just-installed snapshot (a fast flight leader can beat
			// this migration); they are already current.
			continue
		}
		if key.gen == oldGen && !affected(key.k) {
			moves = append(moves, move{el: el, old: key})
			continue
		}
		entry := el.Value.(*cacheEntry)
		if key.gen == oldGen {
			dropped = append(dropped, droppedEntry{key: key, res: entry.res})
		}
		c.ll.Remove(el)
		delete(c.entries, key)
	}
	for _, m := range moves {
		entry := m.el.Value.(*cacheEntry)
		delete(c.entries, m.old)
		entry.key.gen = newGen
		if _, occupied := c.entries[entry.key]; occupied {
			// A fast flight leader already cached a fresh result under the
			// new generation; keep it and retire the old element (an
			// overwrite would orphan the leader's list element, and its
			// eventual eviction would delete the live map entry).
			c.ll.Remove(m.el)
			continue
		}
		c.entries[entry.key] = m.el
		kept++
	}
	return kept, dropped
}

// invalidateGraph drops every entry computed on the named graph. Called
// when a graph is replaced at runtime.
func (c *resultCache) invalidateGraph(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.entries {
		if key.graph == name {
			c.ll.Remove(el)
			delete(c.entries, key)
		}
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
