package server

// Idempotency keys make Edits safe to retry: a client stamps each batch
// with a unique key, and a batch whose key the server has already applied
// is answered from the replay table — marked Replayed — instead of being
// applied a second time. Without the key, a retry of an acknowledged-but-
// lost response could interleave with other writers and re-apply edits
// the graph has since moved past.
//
// The table is per graph and bounded: the oldest keys fall off once a
// graph has seen maxIdemKeys keyed batches. An evicted key makes a very
// late retry re-apply rather than replay — the window is deliberately
// sized far past any sane client retry horizon. Keys survive restarts
// through the WAL (each logged batch carries its key) and, across
// checkpoints, through the store's idempotency retention file; a key
// recovered that way replays with a minimal response (version and
// Replayed only — the original counts died with the process).

// idemTable is one graph's bounded key → response map, insertion-ordered
// for eviction.
type idemTable struct {
	entries map[string]*EditsResponse
	order   []string
}

// maxIdemKeys bounds one graph's replay table.
const maxIdemKeys = 1024

// lookupIdem returns the replay response for a previously applied key:
// a copy of the stored response with Replayed set.
func (s *Server) lookupIdem(graphName, key string) (*EditsResponse, bool) {
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	t := s.idem[graphName]
	if t == nil {
		return nil, false
	}
	stored, ok := t.entries[key]
	if !ok {
		return nil, false
	}
	cp := *stored
	cp.Replayed = true
	return &cp, true
}

// storeIdem records one applied keyed batch's response for future
// replays, evicting the oldest keys past the bound.
func (s *Server) storeIdem(graphName, key string, resp *EditsResponse) {
	cp := *resp
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	t := s.idem[graphName]
	if t == nil {
		t = &idemTable{entries: make(map[string]*EditsResponse)}
		s.idem[graphName] = t
	}
	if _, dup := t.entries[key]; !dup {
		t.order = append(t.order, key)
	}
	t.entries[key] = &cp
	for len(t.order) > maxIdemKeys {
		delete(t.entries, t.order[0])
		t.order = t.order[1:]
	}
}

// dropIdem forgets a graph's replay table when the graph is removed or
// replaced wholesale — the keys belong to the retired lineage.
func (s *Server) dropIdem(graphName string) {
	s.idemMu.Lock()
	delete(s.idem, graphName)
	s.idemMu.Unlock()
}
