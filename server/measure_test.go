package server

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestMeasureEnumerateBasics serves all three measures for the fig2 graph
// and checks the wire contract: non-default measures are named in the
// response and carry no algorithm, the default measure keeps its
// algorithm, and the results realize the nesting property (the two 4-VCC
// cliques both sit inside the single 4-ECC, which equals the 4-core).
func TestMeasureEnumerateBasics(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()

	kv, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if kv.Measure != "" || kv.Algorithm == "" {
		t.Fatalf("kvcc response: measure=%q algorithm=%q, want empty measure and a named algorithm",
			kv.Measure, kv.Algorithm)
	}
	if len(kv.Components) != 2 {
		t.Fatalf("4-VCCs: got %d components, want 2", len(kv.Components))
	}

	ke, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 4, Measure: "kecc"})
	if err != nil {
		t.Fatal(err)
	}
	if ke.Measure != "kecc" || ke.Algorithm != "" {
		t.Fatalf("kecc response: measure=%q algorithm=%q", ke.Measure, ke.Algorithm)
	}
	if len(ke.Components) != 1 || ke.Components[0].NumVertices != 8 {
		t.Fatalf("4-ECCs: %+v, want one 8-vertex component", ke.Components)
	}

	kc, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 4, Measure: "kcore"})
	if err != nil {
		t.Fatal(err)
	}
	if kc.Measure != "kcore" || kc.Algorithm != "" {
		t.Fatalf("kcore response: measure=%q algorithm=%q", kc.Measure, kc.Algorithm)
	}
	if len(kc.Components) != 1 || kc.Components[0].NumVertices != 8 {
		t.Fatalf("4-core components: %+v, want one 8-vertex component", kc.Components)
	}

	// Nesting: every 4-VCC vertex is in the single 4-ECC.
	in := make(map[int64]bool)
	for _, v := range ke.Components[0].Vertices {
		in[v] = true
	}
	for _, c := range kv.Components {
		for _, v := range c.Vertices {
			if !in[v] {
				t.Fatalf("4-VCC vertex %d outside the 4-ECC", v)
			}
		}
	}

	// An explicit algorithm is a kvcc-only knob.
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 4, Measure: "kecc", Algorithm: "star"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("kecc with explicit algorithm: err = %v, want ErrBadRequest", err)
	}
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 4, Measure: "bogus"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown measure: err = %v, want ErrBadRequest", err)
	}
}

// TestKVCCWireBytesHaveNoMeasure pins the byte-compatibility promise: a
// request that does not name a measure produces JSON with no "measure"
// key anywhere, i.e. exactly the pre-measure wire format.
func TestKVCCWireBytesHaveNoMeasure(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()

	enum, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3, IncludeMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := s.ComponentsContaining(ctx, ContainingRequest{Graph: "fig2", K: 3, Vertex: 3})
	if err != nil {
		t.Fatal(err)
	}
	over, err := s.Overlap(ctx, OverlapRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]any{"enumerate": enum, "containing": cont, "overlap": over} {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(raw), `"measure"`) {
			t.Fatalf("%s response for a measure-less request leaks a measure field: %s", name, raw)
		}
	}
}

// TestMeasureIndexServedByteEqualsEnumerated mirrors the kvcc
// byte-equality test for the two new measures: with all three indexes
// built eagerly, an index-served kecc/kcore answer must be byte-identical
// to what a plain server's enumeration path returns.
func TestMeasureIndexServedByteEqualsEnumerated(t *testing.T) {
	g := indexTestGraph()
	indexed := New(Config{BuildIndex: true, IndexMeasures: []string{"kvcc", "kecc", "kcore"}})
	indexed.AddGraph("g", g)
	plain := New(Config{})
	plain.AddGraph("g", g)
	ctx := context.Background()

	for _, measure := range []string{"kecc", "kcore"} {
		hier, err := indexed.Hierarchy(ctx, HierarchyRequest{Graph: "g", Measure: measure})
		if err != nil {
			t.Fatalf("%s hierarchy wait: %v", measure, err)
		}
		if !hier.Complete {
			t.Fatalf("%s full-depth build must report complete", measure)
		}
		if hier.Measure != measure {
			t.Fatalf("hierarchy response measure = %q, want %q", hier.Measure, measure)
		}
		for k := 2; k <= hier.MaxK+1; k++ {
			a, err := indexed.Enumerate(ctx, EnumerateRequest{Graph: "g", K: k, Measure: measure, IncludeMetrics: true})
			if err != nil {
				t.Fatalf("indexed %s enumerate k=%d: %v", measure, k, err)
			}
			if !a.IndexServed {
				t.Fatalf("%s k=%d not index-served with a ready complete index", measure, k)
			}
			b, err := plain.Enumerate(ctx, EnumerateRequest{Graph: "g", K: k, Measure: measure, IncludeMetrics: true})
			if err != nil {
				t.Fatalf("plain %s enumerate k=%d: %v", measure, k, err)
			}
			if b.IndexServed || b.Cached {
				t.Fatalf("%s k=%d: plain server served from index/cache on first query", measure, k)
			}
			aj, _ := json.Marshal(a.Components)
			bj, _ := json.Marshal(b.Components)
			if string(aj) != string(bj) {
				t.Fatalf("%s k=%d: index-served components differ from enumerated:\n%s\nvs\n%s", measure, k, aj, bj)
			}
			am, _ := json.Marshal(a.Metrics)
			bm, _ := json.Marshal(b.Metrics)
			if string(am) != string(bm) {
				t.Fatalf("%s k=%d: metrics differ: %s vs %s", measure, k, am, bm)
			}
		}
	}

	// All three indexes must be visible, one per measure, all ready.
	infos := indexed.Stats().Indexes
	if len(infos) != 3 {
		t.Fatalf("stats list %d indexes, want 3: %+v", len(infos), infos)
	}
	seen := map[string]bool{}
	for _, info := range infos {
		if info.State != "ready" {
			t.Fatalf("index %+v not ready", info)
		}
		name := info.Measure
		if name == "" {
			name = "kvcc"
		}
		seen[name] = true
	}
	for _, m := range []string{"kvcc", "kecc", "kcore"} {
		if !seen[m] {
			t.Fatalf("no %s index in stats: %+v", m, infos)
		}
	}
}

// TestMeasureBatchAndCache sends a kecc batch and checks the repeat is
// cache-served, sharing nothing with the kvcc cache entries at the same k.
func TestMeasureBatchAndCache(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()

	batch, err := s.EnumerateBatch(ctx, BatchEnumerateRequest{Graph: "fig2", Ks: []int{2, 3, 4}, Measure: "kcore"})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Measure != "kcore" || len(batch.Results) != 3 {
		t.Fatalf("batch: measure=%q results=%d", batch.Measure, len(batch.Results))
	}
	for _, r := range batch.Results {
		if len(r.Components) != 1 || r.Components[0].NumVertices != 8 {
			t.Fatalf("kcore batch k=%d: %+v, want one 8-vertex component", r.K, r.Components)
		}
	}

	// Same k under a different measure must not alias the kcore entry:
	// the kvcc result at k=3 has two components, not one.
	kv, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if kv.Cached || len(kv.Components) != 2 {
		t.Fatalf("kvcc after kcore at k=3: cached=%v components=%d, want fresh result with 2", kv.Cached, len(kv.Components))
	}

	repeat, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3, Measure: "kcore"})
	if err != nil {
		t.Fatal(err)
	}
	if !repeat.Cached {
		t.Fatal("kcore repeat at k=3 not cache-served")
	}
}

// TestStatsMeasureCounters checks the per-measure serving-ladder split.
func TestStatsMeasureCounters(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()

	mustEnum := func(req EnumerateRequest) {
		t.Helper()
		if _, err := s.Enumerate(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	mustEnum(EnumerateRequest{Graph: "fig2", K: 3})
	mustEnum(EnumerateRequest{Graph: "fig2", K: 3, Measure: "kecc"})
	mustEnum(EnumerateRequest{Graph: "fig2", K: 3, Measure: "kecc"})
	mustEnum(EnumerateRequest{Graph: "fig2", K: 3, Measure: "kcore"})

	m := s.Stats().Enumerations.Measures
	if got := m["kvcc"]; got.Enumerations != 1 || got.CacheHits != 0 {
		t.Fatalf("kvcc counters = %+v", got)
	}
	if got := m["kecc"]; got.Enumerations != 1 || got.CacheHits != 1 {
		t.Fatalf("kecc counters = %+v", got)
	}
	if got := m["kcore"]; got.Enumerations != 1 {
		t.Fatalf("kcore counters = %+v", got)
	}
}
