package server

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"time"

	"kvcc/cohesion"
	"kvcc/graph"
	"kvcc/store"
)

// Persistence glue: with Config.DataDir set, every registered graph owns a
// store.Store (snapshot + WAL + persisted index) in a subdirectory named by
// the URL-escaped graph name. The serving path stays in charge — stores are
// written through, never read during normal operation — and recovery at
// Open rebuilds the registry from disk so a restarted daemon serves the
// exact graphs (and versions) it acknowledged before going down.
//
// Durability contract: an edit batch is fsync'd to the WAL before the new
// generation is installed, so any response a client saw is recoverable;
// AddGraph checkpoints the initial snapshot before returning. Persistence
// errors after that never fail serving — they are recorded in PersistStats
// (and reflected in EditsResponse.Persisted) for the operator.

// Open is New plus recovery: with cfg.DataDir set it opens every graph
// store under the directory, registers the recovered graphs (snapshot plus
// replayed WAL tail) at their pre-crash versions, and loads any persisted
// hierarchy index that still matches. Crash damage — a torn WAL tail, a
// leftover temp file — is repaired silently; damage a crash cannot explain
// (checksum mismatches in a snapshot, WAL records that do not chain) fails
// Open, because serving a silently wrong graph is worse than not starting.
//
// With an empty DataDir, Open is exactly New.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if !s.persistEnabled() {
		return s, nil
	}
	s.persist.Enabled = true
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	dirents, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return nil, err
	}
	for _, de := range dirents {
		if !de.IsDir() {
			continue
		}
		name, err := url.PathUnescape(de.Name())
		if err != nil {
			s.notePersistError("recover "+de.Name(), err)
			continue
		}
		st, err := store.Open(filepath.Join(s.cfg.DataDir, de.Name()), s.storeOptions())
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("server: recover %q: %w", name, err)
		}
		s.storeMu.Lock()
		s.stores[name] = st
		s.storeMu.Unlock()

		g, version, ok := st.Graph()
		if !ok {
			// A store that crashed before its first checkpoint has no graph
			// to serve; keep the directory so a re-registration reuses it.
			continue
		}
		s.mu.Lock()
		s.nextGen++
		entry := graphEntry{g: g, gen: s.nextGen, version: version, modified: time.Now()}
		s.graphs[name] = entry
		s.mu.Unlock()

		replayed, torn := st.Replayed()
		s.storeMu.Lock()
		s.persist.RecoveredGraphs++
		s.persist.ReplayedBatches += replayed
		if torn {
			s.persist.TornTails++
		}
		s.storeMu.Unlock()

		// Re-arm replay protection: every idempotency key the store knows
		// was applied (from the WAL and the retention file) seeds the
		// graph's replay table with a minimal response — version and
		// Replayed only, since the original edit counts died with the old
		// process. A retry of a pre-crash batch then replays instead of
		// re-applying on top of state that already includes it.
		for key, ver := range st.IdempotencyKeys() {
			s.storeIdem(name, key, &EditsResponse{Graph: name, Version: ver})
		}

		s.recoverIndex(name, entry, st)
	}
	return s, nil
}

// Close stops background index builds (waiting for them to drain) and
// releases every store, including the snapshot mappings recovered graphs
// are served from. Call it only once the server has stopped serving: any
// request still holding a recovered graph loses its memory. A server
// without persistence has nothing to release beyond the index goroutines.
func (s *Server) Close() error {
	s.indexMu.Lock()
	ixs := make([]*graphIndex, 0, len(s.indexes))
	for _, ix := range s.indexes {
		ixs = append(ixs, ix)
	}
	s.indexes = make(map[indexKey]*graphIndex)
	s.indexMu.Unlock()
	for _, ix := range ixs {
		ix.cancel()
		<-ix.ready
	}

	s.storeMu.Lock()
	stores := s.stores
	s.stores = make(map[string]*store.Store)
	s.storeMu.Unlock()
	var first error
	for _, st := range stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Server) persistEnabled() bool { return s.cfg.DataDir != "" }

// storeOptions is the store configuration every graph store opens with.
func (s *Server) storeOptions() store.Options {
	return store.Options{PagingPolicy: s.cfg.PagingPolicy}
}

// graphDir maps a graph name onto its store directory. Escaping makes any
// name filesystem-safe and the mapping invertible for recovery.
func (s *Server) graphDir(name string) string {
	return filepath.Join(s.cfg.DataDir, url.PathEscape(name))
}

// storeFor returns the named graph's store, opening (creating) it on first
// use. A nil return means persistence is off or the store is unusable (the
// error is recorded).
func (s *Server) storeFor(name string) *store.Store {
	if !s.persistEnabled() {
		return nil
	}
	s.storeMu.Lock()
	st := s.stores[name]
	s.storeMu.Unlock()
	if st != nil {
		return st
	}
	st, err := store.Open(s.graphDir(name), s.storeOptions())
	if err != nil {
		s.notePersistError("open store for "+name, err)
		return nil
	}
	s.storeMu.Lock()
	s.stores[name] = st
	s.storeMu.Unlock()
	return st
}

// persistNewGraph checkpoints a freshly registered graph as its store's
// initial snapshot and discards any persisted index of the graph it
// replaced. Runs under editMu (from AddGraph), so it cannot interleave
// with an edit batch's Append on the same store.
func (s *Server) persistNewGraph(name string, g *graph.Graph) {
	st := s.storeFor(name)
	if st == nil {
		return
	}
	if err := st.DropIndex(); err != nil {
		s.notePersistError("drop index for "+name, err)
	}
	if err := st.Checkpoint(g, 1); err != nil {
		s.notePersistError("checkpoint "+name, err)
		return
	}
	s.storeMu.Lock()
	s.persist.Checkpoints++
	s.storeMu.Unlock()
}

// persistEdits durably logs one edit batch, reporting whether the batch is
// on disk. Called before the new generation is installed: a batch the
// client will see acknowledged must already be recoverable.
//
// A failed WAL append does not immediately give up on durability: the
// post-batch snapshot g is checkpointed instead, which both recovers this
// batch's durability and re-syncs the store's version chain so the next
// append is acceptable again (store.Append refuses out-of-chain batches).
// Only when the checkpoint also fails is the batch reported unpersisted.
func (s *Server) persistEdits(name string, b store.Batch, g *graph.Graph) bool {
	st := s.storeFor(name)
	if st == nil {
		return false
	}
	if err := st.Append(b); err != nil {
		s.notePersistError("wal append for "+name, err)
		if cerr := st.Checkpoint(g, b.NewVersion); cerr != nil {
			s.notePersistError("recovery checkpoint for "+name, cerr)
			return false
		}
		s.storeMu.Lock()
		s.persist.Checkpoints++
		s.storeMu.Unlock()
		return true
	}
	s.storeMu.Lock()
	s.persist.WALAppends++
	s.storeMu.Unlock()
	return true
}

// spillCompact implements the zero-heap checkpoint path of Edits: when
// this batch will hit the checkpoint threshold anyway, the overlay is
// folded straight into a new snapshot file (store.CompactToStore) and
// the re-mapped graph comes back as the next serving snapshot — the
// compacted CSR never exists on the heap, and the WAL record for the
// batch is superseded by the snapshot itself. Returns (nil, false) when
// the threshold is not reached or the spill failed; the caller then
// compacts on the heap and logs the batch as usual.
func (s *Server) spillCompact(name string, delta *graph.Delta, key string) (*graph.Graph, bool) {
	if !s.persistEnabled() || s.cfg.CheckpointEvery < 0 {
		return nil, false
	}
	st := s.storeFor(name)
	if st == nil || st.Pending()+1 < s.cfg.CheckpointEvery {
		return nil, false
	}
	g, err := st.CompactToStore(delta, key)
	if err != nil {
		s.notePersistError("spill compact for "+name, err)
		return nil, false
	}
	s.storeMu.Lock()
	s.persist.Checkpoints++
	s.persist.SpillCompactions++
	s.storeMu.Unlock()
	return g, true
}

// maybeCheckpoint folds the WAL into a fresh snapshot once enough batches
// accumulated. g is the already-compacted current snapshot, so the only
// extra cost is the sequential write.
func (s *Server) maybeCheckpoint(name string, g *graph.Graph, version uint64) {
	if !s.persistEnabled() || s.cfg.CheckpointEvery < 0 {
		return
	}
	st := s.storeFor(name)
	if st == nil || st.Pending() < s.cfg.CheckpointEvery {
		return
	}
	if err := st.Checkpoint(g, version); err != nil {
		s.notePersistError("checkpoint "+name, err)
		return
	}
	s.storeMu.Lock()
	s.persist.Checkpoints++
	s.storeMu.Unlock()
}

// dropStore removes a removed graph's on-disk state. The snapshot mapping
// (if any) deliberately stays alive — in-flight requests may still read
// the recovered graph — and is released at process exit.
func (s *Server) dropStore(name string) {
	if !s.persistEnabled() {
		return
	}
	s.storeMu.Lock()
	st := s.stores[name]
	delete(s.stores, name)
	s.storeMu.Unlock()
	if st == nil {
		return
	}
	if err := st.Destroy(); err != nil {
		s.notePersistError("destroy store for "+name, err)
	}
}

// recoverIndex installs the persisted hierarchy indexes (one per measure)
// for a just-recovered graph, for each measure whose file exists, matches
// the recovered version exactly, and was built with the same depth cap
// the server would use now. Measures the disk could not supply fall back
// to the configured background build via resetIndex, which skips the
// measures already installed at this generation.
func (s *Server) recoverIndex(name string, e graphEntry, st *store.Store) {
	for _, m := range cohesion.Measures() {
		tree, buildMS, ok, err := st.LoadIndex(m)
		if err != nil {
			s.notePersistError("index load for "+name, err)
			continue
		}
		if !ok || tree.BuiltMaxK != s.cfg.IndexMaxK {
			continue
		}
		s.installReadyIndex(name, e, tree, buildMS)
		s.storeMu.Lock()
		s.persist.IndexLoads++
		s.storeMu.Unlock()
	}
	if s.cfg.BuildIndex {
		s.resetIndex(name, e)
	}
}

// persistIndex saves a finished index build if its graph generation is
// still the installed one. The saved file is stamped with the overlay
// version, so a save racing a concurrent edit is harmless: recovery only
// loads an index whose stamp equals the recovered version.
func (s *Server) persistIndex(ix *graphIndex) {
	if !s.persistEnabled() || ix.err != nil || ix.tree == nil {
		return
	}
	s.mu.Lock()
	entry, ok := s.graphs[ix.graph]
	s.mu.Unlock()
	if !ok || entry.gen != ix.gen {
		return
	}
	s.storeMu.Lock()
	st := s.stores[ix.graph]
	s.storeMu.Unlock()
	if st == nil {
		return
	}
	if err := st.SaveIndex(ix.tree, entry.version, ix.buildMS); err != nil {
		s.notePersistError("index save for "+ix.graph, err)
		return
	}
	s.storeMu.Lock()
	s.persist.IndexSaves++
	s.storeMu.Unlock()
}

// notePersistError records a non-fatal persistence failure for Stats.
func (s *Server) notePersistError(op string, err error) {
	s.storeMu.Lock()
	s.persist.Errors++
	s.persist.LastError = op + ": " + err.Error()
	s.storeMu.Unlock()
}

// persistStats snapshots the persistence counters (nil when disabled).
func (s *Server) persistStats() *PersistStats {
	if !s.persistEnabled() {
		return nil
	}
	s.storeMu.Lock()
	ps := s.persist
	ps.Graphs = len(s.stores)
	s.storeMu.Unlock()
	return &ps
}

// pagingStats rolls the per-store paging figures up into one server-wide
// view (nil when persistence is disabled): counters and sizes sum,
// SnapshotOpenMS takes the slowest last open.
func (s *Server) pagingStats() *PagingStats {
	if !s.persistEnabled() {
		return nil
	}
	s.storeMu.Lock()
	stores := make([]*store.Store, 0, len(s.stores))
	for _, st := range s.stores {
		stores = append(stores, st)
	}
	s.storeMu.Unlock()
	agg := &PagingStats{Policy: s.cfg.PagingPolicy.String()}
	for _, st := range stores {
		ps := st.PagingStats()
		agg.SequentialHints += ps.SequentialHints
		agg.WillNeedHints += ps.WillNeedHints
		agg.Releases += ps.Releases
		agg.Evictions += ps.Evictions
		agg.MappedBytes += ps.MappedBytes
		agg.ResidentPages += ps.ResidentPages
		agg.TotalPages += ps.TotalPages
		agg.RetiredMappings += ps.RetiredMappings
		if ps.SnapshotOpenMS > agg.SnapshotOpenMS {
			agg.SnapshotOpenMS = ps.SnapshotOpenMS
		}
	}
	return agg
}
