package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kvcc/graph"
)

// twoCliques builds two K5s sharing two vertices: two 3-VCCs overlapping
// in {3, 4} (the paper's Fig. 2 shape).
func twoCliques() *graph.Graph {
	b := graph.NewBuilder(8)
	for _, c := range [][]int64{{0, 1, 2, 3, 4}, {3, 4, 5, 6, 7}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				b.AddEdge(c[i], c[j])
			}
		}
	}
	return b.Build()
}

// slowEnumerations holds every flight-leader enumeration open for d so
// tests can deterministically observe concurrent requests piling up.
func slowEnumerations(t *testing.T, d time.Duration) {
	t.Helper()
	testHookEnumerateStarted = func() { time.Sleep(d) }
	t.Cleanup(func() { testHookEnumerateStarted = nil })
}

func testServer(cfg Config) *Server {
	s := New(cfg)
	s.AddGraph("fig2", twoCliques())
	return s
}

func TestEnumerateAndCacheHit(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()

	first, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first query claimed to be cached")
	}
	if len(first.Components) != 2 {
		t.Fatalf("got %d components, want 2", len(first.Components))
	}
	want := []int64{0, 1, 2, 3, 4}
	got := first.Components[0].Vertices
	if len(got) != len(want) {
		t.Fatalf("component 0 = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("component 0 = %v, want %v", got, want)
		}
	}

	second, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeated query was not served from cache")
	}

	stats := s.Stats()
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want hits=1 misses=1", stats.Cache)
	}
	if stats.Enumerations.Started != 1 {
		t.Fatalf("enumerations started = %d, want 1 (cache hit must not re-run the algorithm)",
			stats.Enumerations.Started)
	}
}

func TestEnumerateIncludeMetrics(t *testing.T) {
	s := testServer(Config{})
	resp, err := s.Enumerate(context.Background(), EnumerateRequest{
		Graph: "fig2", K: 3, IncludeMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Metrics == nil || resp.Metrics.Count != 2 {
		t.Fatalf("avg metrics = %+v, want count 2", resp.Metrics)
	}
	for i, c := range resp.Components {
		if c.Metrics == nil {
			t.Fatalf("component %d has no metrics", i)
		}
		// Each side is a K5: diameter 1, density 1.
		if c.Metrics.Diameter != 1 || c.Metrics.Density != 1 {
			t.Fatalf("component %d metrics = %+v, want diameter 1 density 1", i, c.Metrics)
		}
	}
}

// TestConcurrentDedup fires identical queries at once and checks the
// singleflight layer collapsed them into a single enumeration.
func TestConcurrentDedup(t *testing.T) {
	slowEnumerations(t, 100*time.Millisecond)
	s := testServer(Config{})

	const callers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := s.Enumerate(context.Background(), EnumerateRequest{Graph: "fig2", K: 3})
			if err == nil && len(resp.Components) == 0 {
				err = errors.New("no components")
			}
			errs[i] = err
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}

	stats := s.Stats()
	if stats.Enumerations.Started != 1 {
		t.Fatalf("enumerations started = %d, want 1 (concurrent identical requests must dedup)",
			stats.Enumerations.Started)
	}
	if got := stats.Cache.Hits + stats.Enumerations.Deduped; got != callers-1 {
		t.Fatalf("hits (%d) + deduped (%d) = %d, want %d",
			stats.Cache.Hits, stats.Enumerations.Deduped, got, callers-1)
	}
}

func TestBadRequests(t *testing.T) {
	s := testServer(Config{MaxK: 10})
	ctx := context.Background()
	cases := []struct {
		name string
		req  EnumerateRequest
		want error
	}{
		{"unknown graph", EnumerateRequest{Graph: "nope", K: 3}, ErrUnknownGraph},
		{"k too small", EnumerateRequest{Graph: "fig2", K: 1}, ErrBadRequest},
		{"k over limit", EnumerateRequest{Graph: "fig2", K: 11}, ErrBadRequest},
		{"bad algorithm", EnumerateRequest{Graph: "fig2", K: 3, Algorithm: "nope"}, ErrBadRequest},
	}
	for _, tc := range cases {
		if _, err := s.Enumerate(ctx, tc.req); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestAlgorithmVariantsAgree(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()
	var sizes []int
	for _, algo := range []string{"basic", "ns", "gs", "star", "VCCE*"} {
		resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		sizes = append(sizes, len(resp.Components))
	}
	for i, n := range sizes {
		if n != 2 {
			t.Fatalf("variant %d found %d components, want 2", i, n)
		}
	}
	// "star" and "VCCE*" are the same key: 4 distinct variants, 5 calls.
	if misses := s.Stats().Cache.Misses; misses != 4 {
		t.Fatalf("cache misses = %d, want 4 (one per distinct algorithm)", misses)
	}
}

func TestComponentsContaining(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()

	// Vertex 3 sits in the overlap of the two 3-VCCs.
	resp, err := s.ComponentsContaining(ctx, ContainingRequest{Graph: "fig2", K: 3, Vertex: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Indices) != 2 || len(resp.Components) != 2 {
		t.Fatalf("vertex 3: indices %v, want 2 components", resp.Indices)
	}
	// Vertex 0 is only in the first clique.
	resp, err = s.ComponentsContaining(ctx, ContainingRequest{Graph: "fig2", K: 3, Vertex: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Indices) != 1 {
		t.Fatalf("vertex 0: indices %v, want 1 component", resp.Indices)
	}
	if !resp.Cached {
		t.Fatal("second containing query should reuse the cached enumeration")
	}
}

func TestOverlap(t *testing.T) {
	s := testServer(Config{})
	resp, err := s.Overlap(context.Background(), OverlapRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := resp.Matrix
	if len(m) != 2 {
		t.Fatalf("matrix %v, want 2x2", m)
	}
	if m[0][1] != 2 || m[1][0] != 2 {
		t.Fatalf("overlap = %d, want 2 shared vertices", m[0][1])
	}
	if m[0][0] != 5 || m[1][1] != 5 {
		t.Fatalf("diagonal = %d/%d, want component sizes 5/5", m[0][0], m[1][1])
	}
}

func TestAddGraphReplaceInvalidatesCache(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3}); err != nil {
		t.Fatal(err)
	}

	// Replace with a single K5: one 3-VCC. A stale cache would report 2.
	b := graph.NewBuilder(5)
	for i := int64(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	s.AddGraph("fig2", b.Build())

	resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached || len(resp.Components) != 1 {
		t.Fatalf("after replace: cached=%v components=%d, want fresh single component",
			resp.Cached, len(resp.Components))
	}
}

// TestReplaceMidFlightServesNewGraph pins down the generation-keyed
// cache: an enumeration still in flight when its graph is replaced must
// not serve (or cache) old-graph results under the new graph's name.
func TestReplaceMidFlightServesNewGraph(t *testing.T) {
	slowEnumerations(t, 150*time.Millisecond)
	s := testServer(Config{})
	ctx := context.Background()

	inFlight := make(chan struct{}, 1)
	go func() {
		s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3}) // old graph: 2 components
		inFlight <- struct{}{}
	}()
	time.Sleep(50 * time.Millisecond) // leader is now inside the slow hook

	// Replace with a single K5 (one 3-VCC) while the old flight runs.
	b := graph.NewBuilder(5)
	for i := int64(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	s.AddGraph("fig2", b.Build())

	resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Components) != 1 {
		t.Fatalf("query after replace got %d components (old graph?), want 1", len(resp.Components))
	}
	<-inFlight // let the old flight finish and cache under its old generation

	after, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Components) != 1 {
		t.Fatalf("old flight poisoned the cache: %d components, want 1", len(after.Components))
	}
	if !after.Cached {
		t.Fatal("new-graph result was not cached")
	}
	if size := s.Stats().Cache.Size; size != 1 {
		t.Fatalf("cache holds %d entries, want 1 (stale-generation result must not occupy a slot)", size)
	}
}

// TestRequestTimeoutDoesNotCancelCompute verifies the detached-compute
// contract: a request that times out still leaves the enumeration running,
// and its result lands in the cache for later requests.
func TestRequestTimeoutDoesNotCancelCompute(t *testing.T) {
	slowEnumerations(t, 100*time.Millisecond)
	s := testServer(Config{})
	ctx := context.Background()

	_, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3, TimeoutMillis: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}

	// The flight keeps running in the background; poll until it lands.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
		if err == nil {
			if !resp.Cached && !resp.Deduped {
				t.Fatalf("follow-up ran a fresh enumeration (cached=%v deduped=%v)",
					resp.Cached, resp.Deduped)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background enumeration never completed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if started := s.Stats().Enumerations.Started; started != 1 {
		t.Fatalf("enumerations started = %d, want 1", started)
	}
}

// TestHTTPEndToEnd drives the full stack — client, wire format, handlers —
// against a live test server.
func TestHTTPEndToEnd(t *testing.T) {
	s := testServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}
	graphs, err := client.Graphs(ctx)
	if err != nil || len(graphs) != 1 || graphs[0].Name != "fig2" {
		t.Fatalf("graphs = %v, err = %v", graphs, err)
	}

	first, err := client.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || len(first.Components) != 2 || first.Algorithm != "VCCE*" {
		t.Fatalf("first = %+v", first)
	}
	if first.Stats.GlobalCutCalls == 0 {
		t.Fatal("stats did not survive the wire")
	}

	second, err := client.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat over HTTP was not a cache hit")
	}

	containing, err := client.ComponentsContaining(ctx, ContainingRequest{Graph: "fig2", K: 3, Vertex: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(containing.Indices) != 2 {
		t.Fatalf("containing = %+v, want 2 components", containing)
	}

	overlap, err := client.Overlap(ctx, OverlapRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if overlap.Matrix[0][1] != 2 {
		t.Fatalf("overlap = %v", overlap.Matrix)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits < 1 || stats.Enumerations.Started != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := testServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	_, err := client.Enumerate(ctx, EnumerateRequest{Graph: "nope", K: 3})
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown graph err = %v, want 404", err)
	}
	_, err = client.Enumerate(ctx, EnumerateRequest{Graph: "fig2", K: 0})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad k err = %v, want 400", err)
	}
}

// TestLoadGraphFile exercises the streaming file-ingestion path behind
// kvccd's -graph flag: a SNAP-style file (comments, tabs, duplicates,
// self-loops) must register and serve identically to an AddGraph of the
// same structure, and a malformed file must fail with a line-numbered
// error rather than a panic.
func TestLoadGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "twocliques.txt")
	var sb strings.Builder
	sb.WriteString("# two K5s sharing {3,4}\n")
	g := twoCliques()
	for _, e := range g.Edges(nil) {
		fmt.Fprintf(&sb, "%d\t%d\n", g.Label(e[0]), g.Label(e[1]))
	}
	sb.WriteString("3 3\n")  // self-loop, dropped
	sb.WriteString("0\t1\n") // duplicate, dropped
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(Config{})
	if err := s.LoadGraphFile("file", path); err != nil {
		t.Fatal(err)
	}
	s.AddGraph("mem", twoCliques())

	ctx := context.Background()
	fromFile, err := s.Enumerate(ctx, EnumerateRequest{Graph: "file", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	fromMem, err := s.Enumerate(ctx, EnumerateRequest{Graph: "mem", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(fromFile.Components) != len(fromMem.Components) {
		t.Fatalf("file-served %d components, mem-served %d",
			len(fromFile.Components), len(fromMem.Components))
	}
	for i := range fromFile.Components {
		a, b := fromFile.Components[i].Vertices, fromMem.Components[i].Vertices
		if len(a) != len(b) {
			t.Fatalf("component %d sizes differ", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("component %d differs: %v vs %v", i, a, b)
			}
		}
	}

	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("1 2\nnot numbers\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadGraphFile("bad", bad); err == nil {
		t.Fatal("malformed file must fail to load")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should cite the bad line: %v", err)
	}
}
