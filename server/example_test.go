package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"kvcc/graph"
	"kvcc/server"
)

// Serve the paper's Fig. 2 shape — two K5s sharing two vertices — and
// query it through the HTTP client. The repeated query is answered from
// the result cache without re-running the enumeration.
func Example_client() {
	b := graph.NewBuilder(8)
	for _, c := range [][]int64{{0, 1, 2, 3, 4}, {3, 4, 5, 6, 7}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				b.AddEdge(c[i], c[j])
			}
		}
	}
	srv := server.New(server.Config{})
	srv.AddGraph("fig2", b.Build())

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := server.NewClient(ts.URL)
	ctx := context.Background()

	first, _ := client.Enumerate(ctx, server.EnumerateRequest{Graph: "fig2", K: 3})
	fmt.Printf("3-VCCs: %d (cached=%v)\n", len(first.Components), first.Cached)
	for _, c := range first.Components {
		fmt.Println(c.Vertices)
	}

	second, _ := client.Enumerate(ctx, server.EnumerateRequest{Graph: "fig2", K: 3})
	fmt.Printf("repeat: cached=%v\n", second.Cached)

	containing, _ := client.ComponentsContaining(ctx, server.ContainingRequest{
		Graph: "fig2", K: 3, Vertex: 4,
	})
	fmt.Printf("vertex 4 in components: %v\n", containing.Indices)

	stats, _ := client.Stats(ctx)
	fmt.Printf("enumerations run: %d\n", stats.Enumerations.Started)
	// Output:
	// 3-VCCs: 2 (cached=false)
	// [0 1 2 3 4]
	// [3 4 5 6 7]
	// repeat: cached=true
	// vertex 4 in components: [0 1]
	// enumerations run: 1
}
