package server

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kvcc/internal/difftest"
)

// persistCfg is the durable baseline: a data dir, no background index
// builds (tests that want them opt in), checkpointing far enough out that
// edit batches stay in the WAL and recovery exercises replay.
func persistCfg(t *testing.T) Config {
	t.Helper()
	return Config{DataDir: t.TempDir(), CheckpointEvery: 1024}
}

// enumerateJSON captures one enumerate response with its wall-clock
// field normalized away; everything else — components, stats counters,
// serving flags — is deterministic and must survive a restart bytewise.
func enumerateJSON(t *testing.T, s *Server, graphName string, k int) []byte {
	t.Helper()
	resp, err := s.Enumerate(context.Background(), EnumerateRequest{Graph: graphName, K: k})
	if err != nil {
		t.Fatalf("enumerate %s k=%d: %v", graphName, k, err)
	}
	resp.ElapsedMS = 0
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// hierarchyJSON captures one hierarchy response with build timings
// normalized away.
func hierarchyJSON(t *testing.T, s *Server, graphName string) []byte {
	t.Helper()
	resp, err := s.Hierarchy(context.Background(), HierarchyRequest{Graph: graphName, IncludeComponents: true})
	if err != nil {
		t.Fatalf("hierarchy %s: %v", graphName, err)
	}
	resp.BuildMS = 0
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRecoveryByteIdenticalOverCorpus is the headline guarantee: for
// every corpus graph, register + edit + kill (no shutdown), and the
// recovered server must produce byte-identical enumerate responses
// without ever seeing the original input. Hierarchy is deliberately not
// called here — it would build and persist an index whose asynchronous
// save lands or not depending on timing; index recovery gets its own
// deterministic test below.
func TestRecoveryByteIdenticalOverCorpus(t *testing.T) {
	for _, tc := range difftest.Corpus() {
		t.Run(tc.Name, func(t *testing.T) {
			cfg := persistCfg(t)
			a, err := Open(cfg)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			a.AddGraph(tc.Name, tc.G)
			// One effective batch so recovery includes WAL replay, not
			// just the registration snapshot.
			edit, err := a.Edits(context.Background(), EditsRequest{
				Graph:   tc.Name,
				Inserts: [][2]int64{{1 << 40, 1<<40 + 1}, {1<<40 + 1, 1<<40 + 2}, {1 << 40, 1<<40 + 2}},
			})
			if err != nil {
				t.Fatalf("edits: %v", err)
			}
			if !edit.Persisted {
				t.Fatal("edit batch was not durably logged")
			}

			maxK := tc.MaxK
			if maxK > 4 {
				maxK = 4
			}
			before := make(map[int][]byte)
			for k := 2; k <= maxK; k++ {
				before[k] = enumerateJSON(t, a, tc.Name, k)
			}
			// Crash: no Close. Everything the client saw acknowledged is
			// already fsync'd.

			b, err := Open(cfg)
			if err != nil {
				t.Fatalf("recovery Open: %v", err)
			}
			defer b.Close()
			infos := b.Graphs()
			if len(infos) != 1 || infos[0].Name != tc.Name || infos[0].Version != edit.Version {
				t.Fatalf("recovered %+v, want %q at version %d", infos, tc.Name, edit.Version)
			}
			ps := b.Stats().Persistence
			if ps == nil || ps.RecoveredGraphs != 1 || ps.ReplayedBatches != 1 {
				t.Fatalf("persistence stats after recovery: %+v", ps)
			}
			for k := 2; k <= maxK; k++ {
				if got := enumerateJSON(t, b, tc.Name, k); !bytes.Equal(got, before[k]) {
					t.Errorf("k=%d: recovered response differs\nbefore: %s\nafter:  %s", k, before[k], got)
				}
			}
		})
	}
}

// TestRecoveryTornWALTail appends garbage (a partial record) to a graph's
// WAL and recovers: the tail is dropped and reported, the clean prefix
// replays, serving is unaffected.
func TestRecoveryTornWALTail(t *testing.T) {
	cfg := persistCfg(t)
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())
	edit, err := a.Edits(context.Background(), EditsRequest{
		Graph:   "fig2",
		Inserts: [][2]int64{{100, 101}, {101, 102}},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := enumerateJSON(t, a, "fig2", 3)

	walPath := filepath.Join(cfg.DataDir, "fig2", "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("KVWA torn mid-append")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	defer b.Close()
	ps := b.Stats().Persistence
	if ps.TornTails != 1 || ps.ReplayedBatches != 1 {
		t.Fatalf("persistence stats: %+v, want one torn tail and one replayed batch", ps)
	}
	if b.Graphs()[0].Version != edit.Version {
		t.Fatalf("recovered version %d, want %d", b.Graphs()[0].Version, edit.Version)
	}
	if got := enumerateJSON(t, b, "fig2", 3); !bytes.Equal(got, before) {
		t.Fatal("recovered response differs after torn-tail repair")
	}
}

// TestRecoveryCorruptSnapshotFails: a flipped byte in the snapshot header
// is damage a crash cannot cause, and recovery must refuse to serve it.
func TestRecoveryCorruptSnapshotFails(t *testing.T) {
	cfg := persistCfg(t)
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())
	a.Close()

	snapPath := filepath.Join(cfg.DataDir, "fig2", "snapshot.kvcc")
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[17] ^= 0xff // inside the vertex-count field, breaking the header CRC
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open served a snapshot with a corrupt header")
	}
}

// TestRecoveryContinuesVersionSequence: edits applied after recovery must
// chain onto the recovered version (not restart at 1), both in responses
// and in the durable log — proven by a second recovery.
func TestRecoveryContinuesVersionSequence(t *testing.T) {
	cfg := persistCfg(t)
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())
	e1, err := a.Edits(context.Background(), EditsRequest{Graph: "fig2", Inserts: [][2]int64{{200, 201}}})
	if err != nil {
		t.Fatal(err)
	}

	b, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := b.Edits(context.Background(), EditsRequest{Graph: "fig2", Inserts: [][2]int64{{201, 202}}})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version <= e1.Version {
		t.Fatalf("post-recovery edit produced version %d, want > %d", e2.Version, e1.Version)
	}

	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Graphs()[0].Version; got != e2.Version {
		t.Fatalf("second recovery at version %d, want %d", got, e2.Version)
	}
	if ps := c.Stats().Persistence; ps.ReplayedBatches != 2 {
		t.Fatalf("second recovery replayed %d batches, want 2", ps.ReplayedBatches)
	}
}

// TestCheckpointBoundsReplay: once CheckpointEvery batches accumulate,
// the WAL folds into the snapshot and the next recovery replays nothing.
func TestCheckpointBoundsReplay(t *testing.T) {
	cfg := persistCfg(t)
	cfg.CheckpointEvery = 2
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())
	var version uint64
	for i := int64(0); i < 2; i++ {
		e, err := a.Edits(context.Background(), EditsRequest{
			Graph:   "fig2",
			Inserts: [][2]int64{{300 + i, 301 + i}},
		})
		if err != nil {
			t.Fatal(err)
		}
		version = e.Version
	}
	if ps := a.Stats().Persistence; ps.Checkpoints != 2 { // registration + policy
		t.Fatalf("checkpoints = %d, want 2", ps.Checkpoints)
	}

	b, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ps := b.Stats().Persistence
	if ps.ReplayedBatches != 0 {
		t.Fatalf("recovery replayed %d batches past a checkpoint", ps.ReplayedBatches)
	}
	if got := b.Graphs()[0].Version; got != version {
		t.Fatalf("recovered version %d, want %d", got, version)
	}
}

// TestPersistedIndexRecovery: a finished background index build is saved,
// and the next startup serves index-backed queries immediately — no
// rebuild, no enumeration.
func TestPersistedIndexRecovery(t *testing.T) {
	cfg := persistCfg(t)
	cfg.BuildIndex = true
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())
	// Wait for the build to finish AND for the (asynchronous, post-ready)
	// save to land.
	if _, err := a.Hierarchy(context.Background(), HierarchyRequest{Graph: "fig2"}); err != nil {
		t.Fatal(err)
	}
	waitIndexSave(t, a)
	// Both sides of the comparison are index-served: A's query hits the
	// tree it just built, B's hits the tree it loaded from disk.
	want := enumerateJSON(t, a, "fig2", 3)
	wantHier := hierarchyJSON(t, a, "fig2")

	b, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if ps := b.Stats().Persistence; ps.IndexLoads != 1 {
		t.Fatalf("index loads = %d, want 1", ps.IndexLoads)
	}
	resp, err := b.Enumerate(context.Background(), EnumerateRequest{Graph: "fig2", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.IndexServed {
		t.Fatal("recovered index did not serve the query")
	}
	if stats := b.Stats(); stats.Enumerations.Started != 0 {
		t.Fatalf("recovery ran %d enumerations despite a loaded index", stats.Enumerations.Started)
	}
	if got := enumerateJSON(t, b, "fig2", 3); !bytes.Equal(got, want) {
		t.Fatal("index-served recovered response differs")
	}
	if got := hierarchyJSON(t, b, "fig2"); !bytes.Equal(got, wantHier) {
		t.Fatal("recovered hierarchy response differs")
	}
}

// waitIndexSave blocks until the server has durably saved at least one
// index. The save runs asynchronously after the build signals ready, so
// tests that crash-and-recover must wait for it explicitly.
func waitIndexSave(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Persistence.IndexSaves == 0 {
		if time.Now().After(deadline) {
			t.Fatal("index save never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStaleIndexIgnored: an index persisted at one version must not serve
// a graph recovered at another (WAL records past the save), nor one built
// with a different depth cap.
func TestStaleIndexIgnored(t *testing.T) {
	cfg := persistCfg(t)
	cfg.BuildIndex = true
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())
	if _, err := a.Hierarchy(context.Background(), HierarchyRequest{Graph: "fig2"}); err != nil {
		t.Fatal(err)
	}
	waitIndexSave(t, a)
	// Move the graph past the saved index's version stamp (a triangle of
	// new vertices, so the change is visible at k=2), then crash. The
	// repair build's own save may or may not land first — the invariant
	// is that recovery never installs an index stamped with the wrong
	// version.
	edit, err := a.Edits(context.Background(), EditsRequest{
		Graph:   "fig2",
		Inserts: [][2]int64{{400, 401}, {401, 402}, {400, 402}},
	})
	if err != nil {
		t.Fatal(err)
	}

	b, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.Graphs()[0].Version; got != edit.Version {
		t.Fatalf("recovered version %d, want %d", got, edit.Version)
	}
	// A query touching the new vertices proves the served state includes
	// the edit, whichever way the save/crash race went.
	resp, err := b.ComponentsContaining(context.Background(), ContainingRequest{Graph: "fig2", K: 2, Vertex: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Components) != 1 {
		t.Fatalf("vertex 400 in %d 2-VCCs after recovery, want 1", len(resp.Components))
	}
}

// TestIndexDepthCapMismatchIgnored: an index saved with one IndexMaxK is
// not loaded by a server configured with another.
func TestIndexDepthCapMismatchIgnored(t *testing.T) {
	cfg := persistCfg(t)
	cfg.BuildIndex = true
	cfg.IndexMaxK = 0
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())
	if _, err := a.Hierarchy(context.Background(), HierarchyRequest{Graph: "fig2"}); err != nil {
		t.Fatal(err)
	}
	waitIndexSave(t, a)

	cfg2 := cfg
	cfg2.BuildIndex = false
	cfg2.IndexMaxK = 2
	b, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if ps := b.Stats().Persistence; ps.IndexLoads != 0 {
		t.Fatalf("index with BuiltMaxK=0 loaded into an IndexMaxK=2 server (%d loads)", ps.IndexLoads)
	}
}

// TestRemoveGraphDestroysStore: removal deletes the on-disk state, so the
// graph stays gone across a restart.
func TestRemoveGraphDestroysStore(t *testing.T) {
	cfg := persistCfg(t)
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddGraph("fig2", twoCliques())
	if !a.RemoveGraph("fig2") {
		t.Fatal("RemoveGraph reported missing graph")
	}
	if _, err := os.Stat(filepath.Join(cfg.DataDir, "fig2")); !os.IsNotExist(err) {
		t.Fatal("store directory survived RemoveGraph")
	}

	b, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := len(b.Graphs()); got != 0 {
		t.Fatalf("removed graph resurrected: %d graphs recovered", got)
	}
}
