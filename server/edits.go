package server

import (
	"context"
	"fmt"
	"time"

	"kvcc"
	"kvcc/graph"
	"kvcc/internal/kcore"
	"kvcc/store"
)

// maxEditBatch bounds one edit request; a client with more edits splits
// them into consecutive batches (each batch is applied atomically).
const maxEditBatch = 65536

// Edits applies a batch of edge insertions and deletions to a registered
// graph. It is the method behind POST /api/v1/graphs/{name}/edits.
//
// The update is version-scoped end to end:
//
//   - the graph's Delta overlay records the effective edits and bumps its
//     version stamp; the compacted snapshot is installed under a fresh
//     generation, so in-flight enumerations of the old snapshot can
//     neither serve nor cache under the new one;
//   - the affected connectivity levels are derived from the core-number
//     diff (a level k can only change if the edit touched the k-core
//     subgraph: every k-VCC lives inside it, so an edit outside changes
//     nothing at that k);
//   - cached results at unaffected k migrate to the new generation and
//     keep serving without recomputation; affected entries are dropped,
//     and each dropped Result is retained as a one-shot incremental seed
//     so the next enumeration at that k recomputes only the k-core
//     components the edits touched;
//   - the hierarchy index (which spans every level) is retired, and —
//     when the server builds indexes — a background repair build of the
//     new snapshot is scheduled immediately.
//
// Concurrent Edits calls serialize; queries are never blocked by an edit
// and keep answering from the snapshot current at their start.
func (s *Server) Edits(ctx context.Context, req EditsRequest) (*EditsResponse, error) {
	if len(req.Inserts)+len(req.Deletes) > maxEditBatch {
		return nil, fmt.Errorf("%w: at most %d edits per batch, got %d",
			ErrBadRequest, maxEditBatch, len(req.Inserts)+len(req.Deletes))
	}
	begin := time.Now()
	// Edits are the scarcest cost class: a single permit serializes them
	// with backpressure (waiters queue bounded, then shed) instead of
	// letting an edit storm pile up on editMu unbounded.
	release, err := s.admit(ctx, classEdit, req.Graph)
	if err != nil {
		return nil, err
	}
	defer release()
	s.editMu.Lock()
	defer s.editMu.Unlock()

	entry, err := s.lookup(req.Graph)
	if err != nil {
		return nil, err
	}

	// A keyed batch the server has already applied is answered from the
	// replay table — never applied twice. The check sits under editMu so a
	// retry racing its original observes the stored response, not a
	// half-applied batch.
	if req.IdempotencyKey != "" {
		if replay, ok := s.lookupIdem(req.Graph, req.IdempotencyKey); ok {
			s.adm.countReplay()
			return replay, nil
		}
	}

	// Materialize the graph's overlay on first edit: registration keeps
	// entries overlay-free so read-only graphs never pay the O(n) label
	// index. editMu makes the lazy install race-free — no other registry
	// mutation can interleave. The overlay starts at the entry's current
	// version, not 1: a graph recovered from its durable store continues
	// the version sequence its WAL records, so replay stays exact.
	delta := entry.delta
	if delta == nil {
		delta = graph.NewDeltaAt(entry.g, entry.version)
		s.mu.Lock()
		cur := s.graphs[req.Graph]
		cur.delta = delta
		s.graphs[req.Graph] = cur
		s.mu.Unlock()
		entry.delta = delta
	}

	// Apply the batch to the overlay, remembering the vertex ids of every
	// effective edit (labels are stable, so ids resolved after the fact
	// match the edit).
	var edited [][2]int
	applied := func(lu, lv int64) {
		edited = append(edited, [2]int{delta.IndexOfLabel(lu), delta.IndexOfLabel(lv)})
	}
	insApplied, delApplied := 0, 0
	for _, e := range req.Inserts {
		if delta.InsertEdge(e[0], e[1]) {
			insApplied++
			applied(e[0], e[1])
		}
	}
	for _, e := range req.Deletes {
		if delta.DeleteEdge(e[0], e[1]) {
			delApplied++
			applied(e[0], e[1])
		}
	}

	resp := &EditsResponse{
		Graph:          req.Graph,
		AppliedInserts: insApplied,
		AppliedDeletes: delApplied,
		NoopEdits:      len(req.Inserts) + len(req.Deletes) - insApplied - delApplied,
	}
	if delta.Version() == entry.version {
		// Nothing changed: same version, same generation, caches intact.
		resp.Version = entry.version
		resp.Vertices = entry.g.NumVertices()
		resp.Edges = entry.g.NumEdges()
		resp.IndexRepair = "none"
		resp.ElapsedMS = float64(time.Since(begin)) / float64(time.Millisecond)
		if req.IdempotencyKey != "" {
			s.storeIdem(req.Graph, req.IdempotencyKey, resp)
		}
		return resp, nil
	}

	// Materialize the new snapshot and diff core numbers to find the
	// affected connectivity levels.
	oldCores := entry.cores
	if oldCores == nil {
		oldCores = kcore.CoreNumbers(entry.g)
	}

	// When this batch reaches the checkpoint threshold anyway, spill the
	// overlay straight to a new on-disk snapshot and serve the re-mapped
	// result: the compacted CSR never exists on the heap, and the
	// snapshot (fsync'd and renamed before anything becomes visible) is
	// itself the batch's durability point — no WAL record needed. Off
	// that path, compact on the heap and WAL-log the batch as before.
	g2, spilled := s.spillCompact(req.Graph, delta, req.IdempotencyKey)
	if !spilled {
		g2 = delta.Compact()
	}
	newCores := kcore.CoreNumbers(g2)
	aff := affectedLevels(oldCores, newCores, edited)

	// Durability point: the raw batch is fsync'd to the graph's WAL
	// before the new generation becomes visible, so any state a client
	// can observe after this call is recoverable. Replay re-applies the
	// raw lists through the same overlay code, which is deterministic —
	// it must land on exactly delta.Version(). A persistence failure
	// degrades, never blocks: the edit still installs, the response
	// reports Persisted=false, and Stats records the error.
	if spilled {
		resp.Persisted = true
	} else {
		resp.Persisted = s.persistEdits(req.Graph, store.Batch{
			PrevVersion: entry.version,
			NewVersion:  delta.Version(),
			Inserts:     req.Inserts,
			Deletes:     req.Deletes,
			Key:         req.IdempotencyKey,
		}, g2)
	}

	// Install the new snapshot under a fresh generation. Every registry
	// mutation (Edits, AddGraph, RemoveGraph) serializes on editMu, so
	// the entry looked up above is still the installed one.
	s.mu.Lock()
	s.nextGen++
	newEntry := graphEntry{
		g:        g2,
		gen:      s.nextGen,
		version:  delta.Version(),
		modified: time.Now(),
		delta:    delta,
		cores:    newCores,
	}
	s.graphs[req.Graph] = newEntry
	s.mu.Unlock()

	// Version-scoped cache invalidation: unaffected (graph, k) entries
	// migrate to the new generation; affected ones are dropped but seed
	// the next (incremental) enumeration at their k.
	kept, dropped := s.cache.migrate(req.Graph, entry.gen, newEntry.gen, aff.affected)
	for _, d := range dropped {
		// Only kvcc results can seed the incremental path; dropped entries
		// of the other measures are simply recomputed from scratch.
		if d.key.measure != kvcc.MeasureKVCC {
			continue
		}
		s.putSeed(prevKey{graph: d.key.graph, k: d.key.k, algo: d.key.algo}, d.res)
	}

	// The hierarchy index spans every level, and an effective edit always
	// touches level 1, so the old index is retired unconditionally; with
	// BuildIndex set, the background repair build starts immediately.
	if s.cfg.BuildIndex {
		s.resetIndex(req.Graph, newEntry)
		resp.IndexRepair = "scheduled"
	} else {
		s.retireIndex(req.Graph, newEntry.gen)
		resp.IndexRepair = "dropped"
	}

	// Checkpoint policy: after enough logged batches, fold the WAL into a
	// fresh snapshot. g2 is already the compacted current snapshot, so
	// the checkpoint costs only the sequential file write. A spill
	// already was the checkpoint.
	if !spilled {
		s.maybeCheckpoint(req.Graph, g2, newEntry.version)
	}

	s.statsMu.Lock()
	s.enum.Edits++
	s.statsMu.Unlock()

	resp.Version = newEntry.version
	resp.Vertices = g2.NumVertices()
	resp.Edges = g2.NumEdges()
	resp.AffectedMaxK = aff.maxLevel()
	resp.CacheKept = kept
	resp.CacheInvalidated = len(dropped)
	resp.ElapsedMS = float64(time.Since(begin)) / float64(time.Millisecond)
	if req.IdempotencyKey != "" {
		s.storeIdem(req.Graph, req.IdempotencyKey, resp)
	}
	return resp, nil
}

// affectedSet is the set of connectivity levels an edit batch may have
// changed, in the two shapes the core-number diff produces: a prefix
// 1..edgeMax (an edited edge inside the new or old k-core subgraph
// affects every level up to the smaller endpoint core number) and spans
// (lo, hi] for vertices whose core number moved (the levels where the
// vertex entered or left the k-core).
type affectedSet struct {
	edgeMax int
	spans   [][2]int
}

// affected reports whether level k may have changed. Unlisted levels are
// guaranteed unchanged: the k-core subgraph at those levels is identical
// before and after the batch, and the k-VCCs of a graph are a function of
// exactly that subgraph.
func (a affectedSet) affected(k int) bool {
	if k <= a.edgeMax {
		return true
	}
	for _, s := range a.spans {
		if k > s[0] && k <= s[1] {
			return true
		}
	}
	return false
}

// maxLevel returns the highest affected level (0 when nothing beyond the
// trivial level could have changed).
func (a affectedSet) maxLevel() int {
	max := a.edgeMax
	for _, s := range a.spans {
		if s[1] > max {
			max = s[1]
		}
	}
	return max
}

// affectedLevels diffs the core numbers of the old and new snapshots and
// combines them with the edited edges' endpoint ids. coreOf treats
// vertices beyond the old snapshot (created by this batch) as core 0.
func affectedLevels(oldCores, newCores []int, edited [][2]int) affectedSet {
	coreOld := func(v int) int {
		if v < len(oldCores) {
			return oldCores[v]
		}
		return 0
	}
	coreNew := func(v int) int {
		if v < len(newCores) {
			return newCores[v]
		}
		return 0
	}
	var a affectedSet
	for _, e := range edited {
		u, v := e[0], e[1]
		if u < 0 || v < 0 {
			continue
		}
		if m := min(coreOld(u), coreOld(v)); m > a.edgeMax {
			a.edgeMax = m
		}
		if m := min(coreNew(u), coreNew(v)); m > a.edgeMax {
			a.edgeMax = m
		}
	}
	for v := 0; v < len(newCores); v++ {
		o, n := coreOld(v), newCores[v]
		if o == n {
			continue
		}
		lo, hi := o, n
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi <= a.edgeMax {
			continue // already covered by the prefix
		}
		a.spans = append(a.spans, [2]int{lo, hi})
		if len(a.spans) > 64 {
			// Degenerate batch touching everything: collapse to one span.
			loAll, hiAll := a.spans[0][0], a.spans[0][1]
			for _, s := range a.spans {
				if s[0] < loAll {
					loAll = s[0]
				}
				if s[1] > hiAll {
					hiAll = s[1]
				}
			}
			a.spans = [][2]int{{loAll, hiAll}}
		}
	}
	return a
}
