package server

import (
	"testing"

	"kvcc"
)

func key(graph string, k int) cacheKey {
	return cacheKey{graph: graph, k: k, algo: kvcc.VCCEStar}
}

func result(k int) *kvcc.Result { return &kvcc.Result{K: k} }

func TestCacheHitMissCounters(t *testing.T) {
	c := newResultCache(4)
	if _, ok := c.get(key("g", 3)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(key("g", 3), result(3))
	if _, ok := c.get(key("g", 3)); !ok {
		t.Fatal("cached entry not found")
	}
	s := c.stats()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 size=1", s)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newResultCache(2)
	c.put(key("g", 2), result(2))
	c.put(key("g", 3), result(3))
	// Touch k=2 so k=3 is the least recently used.
	if _, ok := c.get(key("g", 2)); !ok {
		t.Fatal("k=2 missing before eviction")
	}
	c.put(key("g", 4), result(4))

	if _, ok := c.get(key("g", 3)); ok {
		t.Fatal("LRU entry k=3 survived eviction")
	}
	if _, ok := c.get(key("g", 2)); !ok {
		t.Fatal("recently used entry k=2 was evicted")
	}
	if s := c.stats(); s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats = %+v, want evictions=1 size=2", s)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := newResultCache(2)
	c.put(key("g", 2), result(2))
	c.put(key("g", 2), result(2))
	if s := c.stats(); s.Size != 1 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want size=1 evictions=0", s)
	}
}

func TestCacheInvalidateGraph(t *testing.T) {
	c := newResultCache(8)
	c.put(key("a", 2), result(2))
	c.put(key("a", 3), result(3))
	c.put(key("b", 2), result(2))
	c.invalidateGraph("a")

	if _, ok := c.get(key("a", 2)); ok {
		t.Fatal("invalidated entry a/2 still present")
	}
	if _, ok := c.get(key("a", 3)); ok {
		t.Fatal("invalidated entry a/3 still present")
	}
	if _, ok := c.get(key("b", 2)); !ok {
		t.Fatal("unrelated graph b was invalidated")
	}
}

func TestCacheKeyDistinguishesAlgorithms(t *testing.T) {
	c := newResultCache(8)
	c.put(cacheKey{graph: "g", k: 3, algo: kvcc.VCCE}, result(3))
	if _, ok := c.get(cacheKey{graph: "g", k: 3, algo: kvcc.VCCEStar}); ok {
		t.Fatal("different algorithm hit the same cache entry")
	}
}
