package server

import (
	"fmt"
	"sort"

	"kvcc"
	"kvcc/graph"
	"kvcc/metrics"
)

// The wire types below are shared by the HTTP handlers and the Go Client,
// so a round trip through JSON is lossless by construction.

// EnumerateRequest asks for all k-VCCs of a named graph.
type EnumerateRequest struct {
	// Graph names a graph loaded into the server.
	Graph string `json:"graph"`
	// K is the connectivity parameter (>= 2 for a meaningful k-VCC).
	K int `json:"k"`
	// Algorithm selects the enumeration variant: "basic" (VCCE), "ns"
	// (VCCE-N), "gs" (VCCE-G) or "star" (VCCE*, the default when empty).
	// The paper's own names are accepted too.
	Algorithm string `json:"algorithm,omitempty"`
	// TimeoutMillis bounds how long this request waits, overriding the
	// server's default request timeout when positive. It does not cancel
	// the underlying enumeration, which keeps running to populate the
	// cache for later requests.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// IncludeMetrics adds per-result quality measures (diameter, density,
	// clustering — the paper's Section 6.1 effectiveness metrics) to the
	// response. Diameter is exact and costs O(n·m) per component.
	IncludeMetrics bool `json:"include_metrics,omitempty"`
}

// Component is one k-VCC on the wire: its sorted vertex labels plus sizes.
type Component struct {
	Vertices    []int64          `json:"vertices"`
	NumVertices int              `json:"num_vertices"`
	NumEdges    int              `json:"num_edges"`
	Metrics     *metrics.Summary `json:"metrics,omitempty"`
}

// EnumerateResponse is the result of one enumerate call.
type EnumerateResponse struct {
	Graph      string            `json:"graph"`
	K          int               `json:"k"`
	Algorithm  string            `json:"algorithm"`
	Cached     bool              `json:"cached"`
	Deduped    bool              `json:"deduped,omitempty"`
	ElapsedMS  float64           `json:"elapsed_ms"`
	Components []Component       `json:"components"`
	Stats      kvcc.Stats        `json:"stats"`
	Metrics    *metrics.Averages `json:"avg_metrics,omitempty"`
}

// ContainingRequest asks which k-VCCs contain one vertex label.
type ContainingRequest struct {
	Graph         string `json:"graph"`
	K             int    `json:"k"`
	Algorithm     string `json:"algorithm,omitempty"`
	TimeoutMillis int64  `json:"timeout_ms,omitempty"`
	// Vertex is the label of the vertex to look up (labels are the ids
	// from the input edge list).
	Vertex int64 `json:"vertex"`
}

// ContainingResponse lists the matching components. Indices refer to the
// component order of EnumerateResponse for the same (graph, k, algorithm).
type ContainingResponse struct {
	Graph      string      `json:"graph"`
	K          int         `json:"k"`
	Algorithm  string      `json:"algorithm"`
	Cached     bool        `json:"cached"`
	Vertex     int64       `json:"vertex"`
	Indices    []int       `json:"indices"`
	Components []Component `json:"components"`
}

// OverlapRequest asks for the pairwise overlap matrix of the k-VCCs.
type OverlapRequest struct {
	Graph         string `json:"graph"`
	K             int    `json:"k"`
	Algorithm     string `json:"algorithm,omitempty"`
	TimeoutMillis int64  `json:"timeout_ms,omitempty"`
}

// OverlapResponse carries the symmetric overlap matrix: entry [i][j] is
// the number of shared vertices between components i and j, and [i][i] is
// the size of component i. Property 1 of the paper guarantees every
// off-diagonal entry is below k.
type OverlapResponse struct {
	Graph     string  `json:"graph"`
	K         int     `json:"k"`
	Algorithm string  `json:"algorithm"`
	Cached    bool    `json:"cached"`
	Matrix    [][]int `json:"matrix"`
}

// GraphInfo describes one graph loaded into the server.
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

// StatsResponse is the server's operational snapshot.
type StatsResponse struct {
	Graphs       []GraphInfo `json:"graphs"`
	Cache        CacheStats  `json:"cache"`
	Enumerations EnumStats   `json:"enumerations"`
	UptimeMS     float64     `json:"uptime_ms"`
}

// EnumStats aggregates the enumeration work the server has performed.
type EnumStats struct {
	// Started counts enumerations actually run (cache misses that became
	// flight leaders).
	Started int64 `json:"started"`
	// Errors counts enumerations that finished with an error.
	Errors int64 `json:"errors"`
	// Deduped counts requests that joined an in-flight enumeration
	// instead of starting their own.
	Deduped int64 `json:"deduped"`
	// TotalMS and MaxMS aggregate the wall-clock latency of completed
	// enumerations (cache hits excluded; they are served in microseconds).
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// errorResponse is the uniform error body for non-2xx statuses.
type errorResponse struct {
	Error string `json:"error"`
}

// parseAlgorithm maps the wire names onto the algorithm variants. The
// short CLI spellings and the paper's names are both accepted; the empty
// string selects the default VCCE*.
func parseAlgorithm(name string) (kvcc.Algorithm, error) {
	switch name {
	case "", "star", "VCCE*":
		return kvcc.VCCEStar, nil
	case "basic", "VCCE":
		return kvcc.VCCE, nil
	case "ns", "VCCE-N":
		return kvcc.VCCEN, nil
	case "gs", "VCCE-G":
		return kvcc.VCCEG, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want basic | ns | gs | star)", name)
}

// wireComponent converts one component subgraph to its wire form.
func wireComponent(c *graph.Graph, withMetrics bool) Component {
	labels := append([]int64(nil), c.Labels()...)
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	out := Component{
		Vertices:    labels,
		NumVertices: c.NumVertices(),
		NumEdges:    c.NumEdges(),
	}
	if withMetrics {
		s := metrics.Summarize(c)
		out.Metrics = &s
	}
	return out
}

func wireComponents(comps []*graph.Graph, withMetrics bool) []Component {
	out := make([]Component, len(comps))
	for i, c := range comps {
		out[i] = wireComponent(c, withMetrics)
	}
	return out
}

// averageComponents computes the paper's per-component quality averages
// (Figs. 7-9) for one result set.
func averageComponents(comps []*graph.Graph) metrics.Averages {
	return metrics.Average(comps)
}
