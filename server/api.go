package server

import (
	"fmt"
	"sort"
	"time"

	"kvcc"
	"kvcc/graph"
	"kvcc/hierarchy"
	"kvcc/metrics"
)

// The wire types below are shared by the HTTP handlers and the Go Client,
// so a round trip through JSON is lossless by construction.

// EnumerateRequest asks for all level-k components of a named graph under
// one cohesion measure (k-VCCs by default).
type EnumerateRequest struct {
	// Graph names a graph loaded into the server.
	Graph string `json:"graph"`
	// K is the connectivity parameter (>= 2 for a meaningful component).
	K int `json:"k"`
	// Measure selects the cohesion measure: "kvcc" (the default when
	// empty), "kecc" or "kcore". Every measure is served through the same
	// index → cache → singleflight ladder.
	Measure string `json:"measure,omitempty"`
	// Algorithm selects the k-VCC enumeration variant: "basic" (VCCE),
	// "ns" (VCCE-N), "gs" (VCCE-G) or "star" (VCCE*, the default when
	// empty). The paper's own names are accepted too. Only valid with the
	// kvcc measure — the other engines have no variants.
	Algorithm string `json:"algorithm,omitempty"`
	// TimeoutMillis bounds how long this request waits, overriding the
	// server's default request timeout when positive. It does not cancel
	// the underlying enumeration, which keeps running to populate the
	// cache for later requests.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// IncludeMetrics adds per-result quality measures (diameter, density,
	// clustering — the paper's Section 6.1 effectiveness metrics) to the
	// response. Diameter is exact and costs O(n·m) per component.
	IncludeMetrics bool `json:"include_metrics,omitempty"`
}

// Component is one k-VCC on the wire: its sorted vertex labels plus sizes.
type Component struct {
	Vertices    []int64          `json:"vertices"`
	NumVertices int              `json:"num_vertices"`
	NumEdges    int              `json:"num_edges"`
	Metrics     *metrics.Summary `json:"metrics,omitempty"`
}

// EnumerateResponse is the result of one enumerate call. When IndexServed
// is set the components came from the hierarchy index and Stats reports
// the work the index build spent on that level (the query itself ran no
// enumeration); otherwise Stats describes the enumeration that produced
// the (possibly cached) result.
type EnumerateResponse struct {
	Graph string `json:"graph"`
	K     int    `json:"k"`
	// Measure is set for non-default measures only, so k-VCC responses
	// are byte-identical to the pre-measure wire format.
	Measure     string `json:"measure,omitempty"`
	Algorithm   string `json:"algorithm,omitempty"`
	Cached      bool   `json:"cached"`
	Deduped     bool   `json:"deduped,omitempty"`
	IndexServed bool   `json:"index_served,omitempty"`
	// Degraded marks a previous-generation result served because fresh
	// compute could not fit the request's deadline budget (or was shed
	// under overload): correct for the graph as it was one edit batch
	// ago, stale for the current one.
	Degraded   bool              `json:"degraded,omitempty"`
	ElapsedMS  float64           `json:"elapsed_ms"`
	Components []Component       `json:"components"`
	Stats      kvcc.Stats        `json:"stats"`
	Metrics    *metrics.Averages `json:"avg_metrics,omitempty"`
}

// ContainingRequest asks which level-k components contain one vertex
// label (at most one for the disjoint kecc/kcore measures).
type ContainingRequest struct {
	Graph         string `json:"graph"`
	K             int    `json:"k"`
	Measure       string `json:"measure,omitempty"`
	Algorithm     string `json:"algorithm,omitempty"`
	TimeoutMillis int64  `json:"timeout_ms,omitempty"`
	// Vertex is the label of the vertex to look up (labels are the ids
	// from the input edge list).
	Vertex int64 `json:"vertex"`
}

// ContainingResponse lists the matching components. Indices refer to the
// component order of EnumerateResponse for the same (graph, k, algorithm);
// index-served and enumerated results use the same canonical order, so the
// indices are stable across serving paths.
type ContainingResponse struct {
	Graph       string      `json:"graph"`
	K           int         `json:"k"`
	Measure     string      `json:"measure,omitempty"`
	Algorithm   string      `json:"algorithm,omitempty"`
	Cached      bool        `json:"cached"`
	IndexServed bool        `json:"index_served,omitempty"`
	Degraded    bool        `json:"degraded,omitempty"`
	Vertex      int64       `json:"vertex"`
	Indices     []int       `json:"indices"`
	Components  []Component `json:"components"`
}

// OverlapRequest asks for the pairwise overlap matrix of the level-k
// components (diagonal for the disjoint kecc/kcore measures).
type OverlapRequest struct {
	Graph         string `json:"graph"`
	K             int    `json:"k"`
	Measure       string `json:"measure,omitempty"`
	Algorithm     string `json:"algorithm,omitempty"`
	TimeoutMillis int64  `json:"timeout_ms,omitempty"`
}

// OverlapResponse carries the symmetric overlap matrix: entry [i][j] is
// the number of shared vertices between components i and j, and [i][i] is
// the size of component i. Property 1 of the paper guarantees every
// off-diagonal entry is below k.
type OverlapResponse struct {
	Graph       string  `json:"graph"`
	K           int     `json:"k"`
	Measure     string  `json:"measure,omitempty"`
	Algorithm   string  `json:"algorithm,omitempty"`
	Cached      bool    `json:"cached"`
	IndexServed bool    `json:"index_served,omitempty"`
	Degraded    bool    `json:"degraded,omitempty"`
	Matrix      [][]int `json:"matrix"`
}

// HierarchyRequest asks for the per-level summary of a graph's cohesion
// hierarchy. The request blocks (within its timeout) until the graph's
// index build finishes, starting one on demand if necessary.
type HierarchyRequest struct {
	Graph string `json:"graph"`
	// Measure selects which cohesion hierarchy to summarize ("kvcc" when
	// empty).
	Measure       string `json:"measure,omitempty"`
	TimeoutMillis int64  `json:"timeout_ms,omitempty"`
	// IncludeComponents adds the full vertex sets of every level to the
	// response. Off by default: a deep hierarchy repeats most of the graph
	// once per level.
	IncludeComponents bool `json:"include_components,omitempty"`
}

// HierarchyLevel summarizes one level of the hierarchy.
type HierarchyLevel struct {
	K          int `json:"k"`
	Components int `json:"components"`
	// Vertices is the total vertex count across the level's components;
	// a vertex in several k-VCCs is counted once per component.
	Vertices      int         `json:"vertices"`
	ComponentSets []Component `json:"component_sets,omitempty"`
}

// HierarchyResponse summarizes a finished hierarchy index.
type HierarchyResponse struct {
	Graph   string `json:"graph"`
	Measure string `json:"measure,omitempty"`
	// MaxK is the deepest level with at least one component.
	MaxK int `json:"max_k"`
	// Size is the total number of components across all levels.
	Size int `json:"size"`
	// Complete reports that the tree was built to exhaustion, so Level(k)
	// is exact for every k (a MaxK-truncated index reports false).
	Complete bool             `json:"complete"`
	BuildMS  float64          `json:"build_ms"`
	Levels   []HierarchyLevel `json:"levels"`
	// Stats describes the enumeration work of the index build.
	Stats hierarchy.Stats `json:"build_stats"`
}

// CohesionRequest asks for the structural cohesion of up to 1024 vertex
// labels: the deepest k at which some k-VCC contains each vertex.
type CohesionRequest struct {
	Graph string `json:"graph"`
	// Measure selects which hierarchy answers ("kvcc" when empty): the
	// kcore measure reports core numbers, kecc per-vertex λ, kvcc
	// per-vertex κ (structural cohesion).
	Measure       string  `json:"measure,omitempty"`
	Vertices      []int64 `json:"vertices"`
	TimeoutMillis int64   `json:"timeout_ms,omitempty"`
}

// PathStep is one component on a vertex's nesting chain.
type PathStep struct {
	K           int `json:"k"`
	NumVertices int `json:"num_vertices"`
	NumEdges    int `json:"num_edges"`
}

// VertexCohesion is the answer for one queried vertex. Path holds the
// chain of components containing the vertex from level 1 down to its
// cohesion level; it is empty when the vertex is in no component.
type VertexCohesion struct {
	Vertex   int64      `json:"vertex"`
	Cohesion int        `json:"cohesion"`
	Path     []PathStep `json:"path,omitempty"`
}

// CohesionResponse lists per-vertex cohesion results in request order.
type CohesionResponse struct {
	Graph   string           `json:"graph"`
	Measure string           `json:"measure,omitempty"`
	Results []VertexCohesion `json:"results"`
}

// BatchEnumerateRequest asks for the k-VCCs of one graph at up to 64
// values of k under a single deadline.
type BatchEnumerateRequest struct {
	Graph          string `json:"graph"`
	Ks             []int  `json:"ks"`
	Measure        string `json:"measure,omitempty"`
	Algorithm      string `json:"algorithm,omitempty"`
	TimeoutMillis  int64  `json:"timeout_ms,omitempty"`
	IncludeMetrics bool   `json:"include_metrics,omitempty"`
}

// BatchEnumerateResponse carries one EnumerateResponse per requested k,
// in request order.
type BatchEnumerateResponse struct {
	Graph     string              `json:"graph"`
	Measure   string              `json:"measure,omitempty"`
	Algorithm string              `json:"algorithm,omitempty"`
	Results   []EnumerateResponse `json:"results"`
}

// IndexInfo describes the state of one graph's hierarchy index build.
type IndexInfo struct {
	Graph string `json:"graph"`
	// Measure names the cohesion measure the index covers; absent for the
	// default kvcc measure.
	Measure string `json:"measure,omitempty"`
	// State is "building", "ready" or "failed".
	State string `json:"state"`
	// MaxK is the configured build cap (0 = full depth).
	MaxK int `json:"max_k,omitempty"`
	// TreeMaxK, Size, Complete and BuildMS describe a ready index.
	TreeMaxK int     `json:"tree_max_k,omitempty"`
	Size     int     `json:"size,omitempty"`
	Complete bool    `json:"complete,omitempty"`
	BuildMS  float64 `json:"build_ms,omitempty"`
}

// GraphInfo describes one graph loaded into the server. Version is the
// graph's mutation-overlay version stamp (1 for a freshly registered
// graph, bumped by every effective edit) and ModifiedAt the time of the
// registration or edit batch that installed the current snapshot;
// together they let clients detect staleness after edits.
type GraphInfo struct {
	Name       string    `json:"name"`
	Vertices   int       `json:"vertices"`
	Edges      int       `json:"edges"`
	Version    uint64    `json:"version"`
	ModifiedAt time.Time `json:"modified_at"`
}

// EditsRequest applies a batch of edge edits to a named graph. Edges are
// addressed by vertex label ([from, to]; order irrelevant); inserts
// create vertices on first mention. Graph is taken from the URL path by
// the HTTP handler — a non-empty body value must match it.
type EditsRequest struct {
	Graph   string     `json:"graph,omitempty"`
	Inserts [][2]int64 `json:"inserts,omitempty"`
	Deletes [][2]int64 `json:"deletes,omitempty"`
	// IdempotencyKey, when non-empty, makes the batch safe to retry: a
	// batch whose key the server has already applied is answered from the
	// replay table (Replayed=true in the response) instead of being
	// applied again. Keys are durably logged with the batch, so the
	// at-most-once guarantee holds across crashes and restarts.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// EditsResponse reports one applied edit batch: the new version and graph
// size, how many edits took effect (NoopEdits were already present /
// already absent), the highest connectivity level the batch may have
// changed, and what happened to the derived state — cache entries at
// unaffected k kept serving, affected entries were invalidated (and seed
// the next incremental enumeration), and the hierarchy index repair was
// scheduled, dropped, or not needed.
type EditsResponse struct {
	Graph            string `json:"graph"`
	Version          uint64 `json:"version"`
	Vertices         int    `json:"vertices"`
	Edges            int    `json:"edges"`
	AppliedInserts   int    `json:"applied_inserts"`
	AppliedDeletes   int    `json:"applied_deletes"`
	NoopEdits        int    `json:"noop_edits,omitempty"`
	AffectedMaxK     int    `json:"affected_max_k"`
	CacheKept        int    `json:"cache_kept"`
	CacheInvalidated int    `json:"cache_invalidated"`
	IndexRepair      string `json:"index_repair"`
	// Persisted reports that the batch was fsync'd to the graph's
	// write-ahead log before this response was built, i.e. it survives a
	// crash. Absent when the server runs without a data directory (or the
	// append failed — see StatsResponse.Persistence for the error).
	Persisted bool `json:"persisted,omitempty"`
	// Replayed reports that this batch's idempotency key was already
	// applied: the response replays the original outcome (after a restart
	// only Version survives; the counts died with the process) and the
	// graph was not touched again.
	Replayed  bool    `json:"replayed,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// RemoveGraphResponse acknowledges DELETE /api/v1/graphs/{name}.
type RemoveGraphResponse struct {
	Graph   string `json:"graph"`
	Removed bool   `json:"removed"`
}

// StatsResponse is the server's operational snapshot.
type StatsResponse struct {
	Graphs       []GraphInfo     `json:"graphs"`
	Cache        CacheStats      `json:"cache"`
	Enumerations EnumStats       `json:"enumerations"`
	Indexes      []IndexInfo     `json:"indexes,omitempty"`
	Persistence  *PersistStats   `json:"persistence,omitempty"`
	Admission    *AdmissionStats `json:"admission,omitempty"`
	// Paging aggregates madvise/residency accounting across every
	// graph's snapshot mapping (present only with persistence enabled);
	// see store.PagingStats for the per-store fields being summed.
	Paging   *PagingStats `json:"paging,omitempty"`
	UptimeMS float64      `json:"uptime_ms"`
}

// PagingStats is the server-wide roll-up of store paging activity:
// counters and mapping sizes sum across stores, residency sums across
// live mappings, and SnapshotOpenMS is the maximum last-open cost among
// them (the startup-latency figure of merit).
type PagingStats struct {
	Policy          string  `json:"policy"`
	SequentialHints int64   `json:"sequential_hints"`
	WillNeedHints   int64   `json:"willneed_hints"`
	Releases        int64   `json:"releases"`
	Evictions       int64   `json:"evictions"`
	MappedBytes     int64   `json:"mapped_bytes"`
	ResidentPages   int     `json:"resident_pages,omitempty"`
	TotalPages      int     `json:"total_pages,omitempty"`
	SnapshotOpenMS  float64 `json:"snapshot_open_ms"`
	RetiredMappings int     `json:"retired_mappings,omitempty"`
}

// AdmissionStats describes the server's overload boundary: configured
// capacity, current pressure, and what the admission ladder has done so
// far. Shed is the sum of the per-reason shed counters.
type AdmissionStats struct {
	// Draining is set after BeginDrain: the server refuses new admissions
	// with 503 while in-flight work finishes.
	Draining bool `json:"draining,omitempty"`
	// MaxInflight / MaxInflightCheap / QueueDepth echo the configured
	// capacities; InflightExpensive and QueuedNow are the expensive
	// class's instantaneous occupancy.
	MaxInflight       int `json:"max_inflight"`
	MaxInflightCheap  int `json:"max_inflight_cheap"`
	QueueDepth        int `json:"queue_depth"`
	InflightExpensive int `json:"inflight_expensive"`
	QueuedNow         int `json:"queued_now"`
	// Admitted counts granted permits; Queued the admissions that had to
	// wait for one.
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	// Shed totals rejected admissions, split by the rung that rejected:
	// bounded queue overflow, queue deadline, the adaptive p95 breaker,
	// and drain mode. QuotaRejections are counted separately — a
	// throttled tenant is not server overload.
	Shed             int64 `json:"shed"`
	ShedQueueFull    int64 `json:"shed_queue_full,omitempty"`
	ShedQueueTimeout int64 `json:"shed_queue_timeout,omitempty"`
	ShedLatency      int64 `json:"shed_latency,omitempty"`
	ShedDraining     int64 `json:"shed_draining,omitempty"`
	QuotaRejections  int64 `json:"quota_rejections,omitempty"`
	// Queue-wait percentiles over the recent expensive-class admissions,
	// in milliseconds (fast-path admissions count as 0).
	QueueWaitP50MS float64 `json:"queue_wait_p50_ms"`
	QueueWaitP95MS float64 `json:"queue_wait_p95_ms"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
	// Degraded counts responses served from a previous generation under
	// deadline or overload pressure; TimeoutsClamped the requests whose
	// timeout_ms hit the MaxTimeout ceiling; IdempotentReplays the Edits
	// batches answered from the replay table.
	Degraded          int64 `json:"degraded,omitempty"`
	TimeoutsClamped   int64 `json:"timeouts_clamped,omitempty"`
	IdempotentReplays int64 `json:"idempotent_replays,omitempty"`
	// FailpointTrips totals injected faults (chaos builds only; always 0
	// in production binaries), split per point in Failpoints.
	FailpointTrips int64            `json:"failpoint_trips,omitempty"`
	Failpoints     map[string]int64 `json:"failpoints,omitempty"`
}

// PersistStats describes the durability layer of a server running with a
// data directory (absent from stats otherwise). RecoveredGraphs,
// ReplayedBatches and TornTails describe the recovery this process
// performed at startup; the counters below them accumulate over its
// lifetime. Errors counts non-fatal persistence failures — serving
// continues in memory — with LastError holding the most recent one.
type PersistStats struct {
	Enabled         bool   `json:"enabled"`
	Graphs          int    `json:"graphs"`
	RecoveredGraphs int    `json:"recovered_graphs"`
	ReplayedBatches int    `json:"replayed_batches"`
	TornTails       int    `json:"torn_tails,omitempty"`
	WALAppends      int64  `json:"wal_appends"`
	Checkpoints     int64  `json:"checkpoints"`
	// SpillCompactions counts checkpoints taken through the zero-heap
	// streaming path (store.CompactToStore): the overlay was folded
	// straight into a new snapshot file and the graph re-mapped, instead
	// of compacting on the heap first. A subset of Checkpoints.
	SpillCompactions int64 `json:"spill_compactions,omitempty"`
	IndexSaves      int64  `json:"index_saves,omitempty"`
	IndexLoads      int64  `json:"index_loads,omitempty"`
	Errors          int64  `json:"errors,omitempty"`
	LastError       string `json:"last_error,omitempty"`
}

// EnumStats aggregates the enumeration work the server has performed.
type EnumStats struct {
	// Started counts enumerations actually run (cache misses that became
	// flight leaders).
	Started int64 `json:"started"`
	// Errors counts enumerations that finished with an error.
	Errors int64 `json:"errors"`
	// Deduped counts requests that joined an in-flight enumeration
	// instead of starting their own.
	Deduped int64 `json:"deduped"`
	// IndexServed counts queries answered from a ready hierarchy index
	// (no cache entry and no enumeration involved).
	IndexServed int64 `json:"index_served"`
	// Edits counts effective edit batches applied to registered graphs.
	Edits int64 `json:"edits,omitempty"`
	// IncrementalRuns counts enumerations that started from an
	// incremental seed left by an edit batch; ComponentsReused totals the
	// k-core components those runs served verbatim from the seed instead
	// of recomputing.
	IncrementalRuns  int64 `json:"incremental_runs,omitempty"`
	ComponentsReused int64 `json:"components_reused,omitempty"`
	// TotalMS and MaxMS aggregate the wall-clock latency of completed
	// enumerations (cache hits excluded; they are served in microseconds).
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
	// Profiles counts graph-profile requests served.
	Profiles int64 `json:"profiles,omitempty"`
	// Measures splits the serving-ladder traffic by cohesion measure, so
	// the kvcc/kecc/kcore mix is observable. Only measures with traffic
	// appear.
	Measures map[string]MeasureCounters `json:"measures,omitempty"`
}

// MeasureCounters is the per-measure slice of the serving-ladder traffic.
type MeasureCounters struct {
	// Enumerations counts flight-leader enumerations run for the measure.
	Enumerations int64 `json:"enumerations"`
	// CacheHits counts requests answered from the result cache.
	CacheHits int64 `json:"cache_hits"`
	// IndexServed counts requests answered from a ready hierarchy index.
	IndexServed int64 `json:"index_served"`
}

// errorResponse is the uniform error body for non-2xx statuses.
type errorResponse struct {
	Error string `json:"error"`
}

// parseAlgorithm maps the wire names onto the algorithm variants. The
// short CLI spellings and the paper's names are both accepted; the empty
// string selects the default VCCE*.
func parseAlgorithm(name string) (kvcc.Algorithm, error) {
	switch name {
	case "", "star", "VCCE*":
		return kvcc.VCCEStar, nil
	case "basic", "VCCE":
		return kvcc.VCCE, nil
	case "ns", "VCCE-N":
		return kvcc.VCCEN, nil
	case "gs", "VCCE-G":
		return kvcc.VCCEG, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want basic | ns | gs | star)", name)
}

// parseMeasure wraps cohesion's measure parsing in the server's
// bad-request error, and rejects the algorithm field for measures that
// have no variants (accepting it would silently ignore a parameter the
// client believes is honored).
func parseMeasure(measure, algorithm string) (kvcc.Measure, error) {
	m, err := kvcc.ParseMeasure(measure)
	if err != nil {
		return m, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if m != kvcc.MeasureKVCC && algorithm != "" {
		return m, fmt.Errorf("%w: algorithm %q applies only to the kvcc measure", ErrBadRequest, algorithm)
	}
	return m, nil
}

// wireMeasure renders a measure for a response: non-default measures by
// name, kvcc as the empty string so default responses stay byte-identical
// to the pre-measure wire format.
func wireMeasure(m kvcc.Measure) string {
	if m == kvcc.MeasureKVCC {
		return ""
	}
	return m.String()
}

// wireAlgorithm renders the algorithm for a response: the kvcc measure
// names the variant that ran (never empty), every other measure has no
// variants and omits the field.
func wireAlgorithm(m kvcc.Measure, algo kvcc.Algorithm) string {
	if m != kvcc.MeasureKVCC {
		return ""
	}
	return algo.String()
}

// ParseFlowEngine maps engine names onto the flow engines, mirroring
// parseAlgorithm's spellings: short CLI names and common aliases are both
// accepted; the empty string selects the default auto heuristic. Exported
// so front-ends (kvccd's -engine flag) can reject bad names up front —
// Config.FlowEngine itself degrades unknown names to auto.
func ParseFlowEngine(name string) (kvcc.FlowEngine, error) {
	switch name {
	case "", "auto":
		return kvcc.FlowAuto, nil
	case "dinic":
		return kvcc.FlowDinic, nil
	case "ek", "edmonds-karp":
		return kvcc.FlowEdmondsKarp, nil
	case "local", "localvc":
		return kvcc.FlowLocalVC, nil
	}
	return 0, fmt.Errorf("unknown flow engine %q (want auto | dinic | ek | local)", name)
}

// wireComponent converts one component subgraph to its wire form.
func wireComponent(c *graph.Graph, withMetrics bool) Component {
	labels := append([]int64(nil), c.Labels()...)
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	out := Component{
		Vertices:    labels,
		NumVertices: c.NumVertices(),
		NumEdges:    c.NumEdges(),
	}
	if withMetrics {
		s := metrics.Summarize(c)
		out.Metrics = &s
	}
	return out
}

func wireComponents(comps []*graph.Graph, withMetrics bool) []Component {
	out := make([]Component, len(comps))
	for i, c := range comps {
		out[i] = wireComponent(c, withMetrics)
	}
	return out
}

// averageComponents computes the paper's per-component quality averages
// (Figs. 7-9) for one result set.
func averageComponents(comps []*graph.Graph) metrics.Averages {
	return metrics.Average(comps)
}
