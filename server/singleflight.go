package server

import (
	"context"
	"sync"

	"kvcc"
)

// flightGroup deduplicates concurrent enumerations of the same cacheKey.
// The first caller becomes the leader and runs the computation; everyone
// else who arrives before it finishes waits on the same call.
//
// The leader runs detached from any single request's context: an
// enumeration is expensive and its result is cacheable, so one impatient
// client hanging up should not waste the work for the clients still
// waiting (or for the cache). Each waiter instead bounds its own wait with
// its own context and may return early while the computation continues.
type flightGroup struct {
	mu     sync.Mutex
	flight map[cacheKey]*flightCall

	deduped int64 // callers who joined an existing flight
}

type flightCall struct {
	done chan struct{}
	res  *kvcc.Result
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flight: make(map[cacheKey]*flightCall)}
}

// do returns the result of fn for key, running fn at most once per flight.
// The context bounds only this caller's wait, never the computation; when
// the context expires the caller gets ctx.Err() while the flight finishes
// in the background. The shared flag reports whether this caller joined a
// flight started by someone else.
func (g *flightGroup) do(ctx context.Context, key cacheKey, fn func() (*kvcc.Result, error)) (res *kvcc.Result, shared bool, err error) {
	g.mu.Lock()
	if call, ok := g.flight[key]; ok {
		g.deduped++
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.res, true, call.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.flight[key] = call
	g.mu.Unlock()

	go func() {
		call.res, call.err = fn()
		g.mu.Lock()
		delete(g.flight, key)
		g.mu.Unlock()
		close(call.done)
	}()

	select {
	case <-call.done:
		return call.res, false, call.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

func (g *flightGroup) dedupedCount() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deduped
}
