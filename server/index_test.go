package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kvcc/gen"
	"kvcc/graph"
)

// indexTestGraph is a planted-community graph with enough structure that
// levels 2..6 are all non-trivial.
func indexTestGraph() *graph.Graph {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 5, MinSize: 8, MaxSize: 12, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 3,
		NoiseVertices: 40, NoiseDegree: 2, Seed: 21,
	})
	return g
}

// waitForIndex blocks until the named graph's index is ready (building on
// demand if necessary) and fails the test on error.
func waitForIndex(t *testing.T, s *Server, name string) *HierarchyResponse {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resp, err := s.Hierarchy(ctx, HierarchyRequest{Graph: name})
	if err != nil {
		t.Fatalf("hierarchy wait: %v", err)
	}
	return resp
}

// An index-served response must be byte-for-byte identical — components,
// indices, metrics — to what the cache/enumeration path returns for the
// same query. Two servers over the same graph provide the two paths.
func TestIndexServedByteEqualsCacheServed(t *testing.T) {
	g := indexTestGraph()
	indexed := New(Config{BuildIndex: true})
	indexed.AddGraph("g", g)
	plain := New(Config{})
	plain.AddGraph("g", g)
	ctx := context.Background()

	hier := waitForIndex(t, indexed, "g")
	if !hier.Complete {
		t.Fatal("full-depth build must report complete")
	}

	for k := 2; k <= hier.MaxK+1; k++ {
		a, err := indexed.Enumerate(ctx, EnumerateRequest{Graph: "g", K: k, IncludeMetrics: true})
		if err != nil {
			t.Fatalf("indexed enumerate k=%d: %v", k, err)
		}
		if !a.IndexServed {
			t.Fatalf("k=%d not index-served with a ready complete index", k)
		}
		if _, err := plain.Enumerate(ctx, EnumerateRequest{Graph: "g", K: k, IncludeMetrics: true}); err != nil {
			t.Fatalf("plain enumerate k=%d: %v", k, err)
		}
		b, err := plain.Enumerate(ctx, EnumerateRequest{Graph: "g", K: k, IncludeMetrics: true})
		if err != nil {
			t.Fatalf("plain enumerate (repeat) k=%d: %v", k, err)
		}
		if !b.Cached {
			t.Fatalf("k=%d repeat not cache-served", k)
		}
		aj, _ := json.Marshal(a.Components)
		bj, _ := json.Marshal(b.Components)
		if string(aj) != string(bj) {
			t.Fatalf("k=%d: index-served components differ from cache-served:\n%s\nvs\n%s", k, aj, bj)
		}
		am, _ := json.Marshal(a.Metrics)
		bm, _ := json.Marshal(b.Metrics)
		if string(am) != string(bm) {
			t.Fatalf("k=%d: metrics differ: %s vs %s", k, am, bm)
		}
	}

	// Containing lookups must agree on indices and bodies too.
	for _, v := range []int64{0, 5, 11} {
		a, err := indexed.ComponentsContaining(ctx, ContainingRequest{Graph: "g", K: 3, Vertex: v})
		if err != nil {
			t.Fatal(err)
		}
		if !a.IndexServed {
			t.Fatal("containing lookup not index-served")
		}
		b, err := plain.ComponentsContaining(ctx, ContainingRequest{Graph: "g", K: 3, Vertex: v})
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal([]any{a.Indices, a.Components})
		bj, _ := json.Marshal([]any{b.Indices, b.Components})
		if string(aj) != string(bj) {
			t.Fatalf("vertex %d: containing results differ:\n%s\nvs\n%s", v, aj, bj)
		}
	}
}

// Replacing a graph must atomically retire its index: queries between the
// replacement and the new build's completion fall back to enumeration of
// the NEW graph, and the rebuilt index serves the new structure.
func TestIndexGenerationInvalidation(t *testing.T) {
	s := New(Config{BuildIndex: true})
	s.AddGraph("g", twoCliques()) // two K5s sharing 2: 3-VCCs at k=3
	ctx := context.Background()

	if hier := waitForIndex(t, s, "g"); hier.MaxK != 4 {
		t.Fatalf("two K5s sharing 2 vertices: MaxK = %d, want 4", hier.MaxK)
	}
	first, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !first.IndexServed || len(first.Components) != 2 {
		t.Fatalf("expected 2 index-served components, got %d (indexServed=%v)",
			len(first.Components), first.IndexServed)
	}

	// Replace with one K6: a single component at every k <= 5.
	b := graph.NewBuilder(6)
	for i := int64(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	s.AddGraph("g", b.Build())

	// Immediately after the swap the old index must be unreachable: the
	// result must describe the K6 whichever rung serves it.
	mid, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Components) != 1 || mid.Components[0].NumVertices != 6 {
		t.Fatalf("post-replacement k=3 result describes the old graph: %+v", mid.Components)
	}

	if hier := waitForIndex(t, s, "g"); hier.MaxK != 5 {
		t.Fatalf("K6 hierarchy MaxK = %d, want 5", hier.MaxK)
	}
	after, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !after.IndexServed || len(after.Components) != 1 {
		t.Fatalf("rebuilt index did not serve k=5: %+v", after)
	}

	infos := s.Stats().Indexes
	if len(infos) != 1 || infos[0].State != "ready" || infos[0].TreeMaxK != 5 {
		t.Fatalf("index stats = %+v, want one ready index with tree max k 5", infos)
	}
}

// Concurrent queries, on-demand index waits, and graph replacements must
// be race-free (run under -race in CI) and every enumerate answer must
// describe the current graph content, which is identical across
// generations here.
func TestConcurrentIndexBuildAndQueries(t *testing.T) {
	s := New(Config{BuildIndex: true, Parallelism: 2})
	s.AddGraph("g", twoCliques())
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch (w + i) % 3 {
				case 0:
					resp, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 3})
					if err != nil {
						errs <- err
						continue
					}
					if len(resp.Components) != 2 {
						errs <- fmt.Errorf("k=3: got %d components, want 2", len(resp.Components))
					}
				case 1:
					resp, err := s.Cohesion(ctx, CohesionRequest{Graph: "g", Vertices: []int64{3}})
					// A replacement may cancel the build this call waits
					// on; that surfaces as an index-build error, which is
					// an acceptable outcome for a query racing the swap.
					if err != nil {
						if !strings.Contains(err.Error(), "index build") {
							errs <- err
						}
						continue
					}
					if got := resp.Results[0].Cohesion; got != 4 {
						errs <- fmt.Errorf("cohesion(3) = %d, want 4", got)
					}
				case 2:
					resp, err := s.ComponentsContaining(ctx, ContainingRequest{Graph: "g", K: 3, Vertex: 0})
					if err != nil {
						errs <- err
						continue
					}
					if len(resp.Indices) != 1 {
						errs <- fmt.Errorf("vertex 0 in %d components, want 1", len(resp.Indices))
					}
				}
			}
		}()
	}
	// Replacements race the queries: same content, new generation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			s.AddGraph("g", twoCliques())
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// A build that completed with an error must not be replayed forever: the
// next hierarchy/cohesion request starts a fresh build.
func TestFailedIndexBuildRetries(t *testing.T) {
	s := New(Config{})
	s.AddGraph("g", twoCliques())
	entry, err := s.lookup("g")
	if err != nil {
		t.Fatal(err)
	}
	failed := &graphIndex{
		graph:  "g",
		gen:    entry.gen,
		ready:  make(chan struct{}),
		cancel: func() {},
		err:    context.DeadlineExceeded,
	}
	close(failed.ready)
	s.indexMu.Lock()
	s.indexes[indexKey{graph: "g"}] = failed
	s.indexMu.Unlock()

	hier := waitForIndex(t, s, "g") // must retry, not replay the stale failure
	if hier.MaxK != 4 {
		t.Fatalf("retried build: MaxK = %d, want 4", hier.MaxK)
	}
}

// The hierarchy and cohesion endpoints build the index on demand even
// when BuildIndex is off, and validate their inputs.
func TestIndexOnDemandAndValidation(t *testing.T) {
	s := testServer(Config{}) // BuildIndex off
	ctx := context.Background()

	hier := waitForIndex(t, s, "fig2")
	if hier.MaxK != 4 || len(hier.Levels) != 4 {
		t.Fatalf("on-demand hierarchy: MaxK=%d levels=%d", hier.MaxK, len(hier.Levels))
	}
	resp, err := s.Cohesion(ctx, CohesionRequest{Graph: "fig2", Vertices: []int64{3, 0, 99}})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 3 is in both K5s (cohesion 4); vertex 0 in one; 99 absent.
	if resp.Results[0].Cohesion != 4 || resp.Results[1].Cohesion != 4 || resp.Results[2].Cohesion != 0 {
		t.Fatalf("cohesion results = %+v", resp.Results)
	}
	if len(resp.Results[2].Path) != 0 {
		t.Fatal("absent vertex must have an empty path")
	}
	if len(resp.Results[0].Path) != 4 {
		t.Fatalf("vertex 3 path has %d steps, want 4", len(resp.Results[0].Path))
	}

	if _, err := s.Cohesion(ctx, CohesionRequest{Graph: "fig2"}); err == nil {
		t.Fatal("empty vertex list must be rejected")
	}
	if _, err := s.Cohesion(ctx, CohesionRequest{Graph: "missing", Vertices: []int64{1}}); err == nil {
		t.Fatal("unknown graph must be rejected")
	}
	if _, err := s.EnumerateBatch(ctx, BatchEnumerateRequest{Graph: "fig2"}); err == nil {
		t.Fatal("empty k list must be rejected")
	}
	tooMany := make([]int, maxBatchKs+1)
	for i := range tooMany {
		tooMany[i] = i + 2
	}
	if _, err := s.EnumerateBatch(ctx, BatchEnumerateRequest{Graph: "fig2", Ks: tooMany}); err == nil {
		t.Fatal("oversized batch must be rejected")
	}
	if _, err := s.EnumerateBatch(ctx, BatchEnumerateRequest{Graph: "fig2", Ks: []int{1}}); err == nil {
		t.Fatal("k=1 in a batch must be rejected")
	}
}

// The new endpoints round-trip through HTTP and the Go client.
func TestIndexEndpointsHTTP(t *testing.T) {
	s := New(Config{BuildIndex: true})
	s.AddGraph("g", indexTestGraph())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	hier, err := c.Hierarchy(ctx, HierarchyRequest{Graph: "g", IncludeComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	if hier.MaxK < 3 || len(hier.Levels) != hier.MaxK {
		t.Fatalf("hierarchy: MaxK=%d levels=%d", hier.MaxK, len(hier.Levels))
	}
	for _, lvl := range hier.Levels {
		if len(lvl.ComponentSets) != lvl.Components {
			t.Fatalf("level %d: %d component sets, %d components", lvl.K, len(lvl.ComponentSets), lvl.Components)
		}
	}

	batch, err := c.EnumerateBatch(ctx, BatchEnumerateRequest{Graph: "g", Ks: []int{2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("batch returned %d results", len(batch.Results))
	}
	for i, k := range []int{2, 3, 4} {
		if batch.Results[i].K != k || !batch.Results[i].IndexServed {
			t.Fatalf("batch result %d: k=%d indexServed=%v", i, batch.Results[i].K, batch.Results[i].IndexServed)
		}
		if len(batch.Results[i].Components) != len(hier.Levels[k-1].ComponentSets) {
			t.Fatalf("batch k=%d has %d components, hierarchy says %d",
				k, len(batch.Results[i].Components), len(hier.Levels[k-1].ComponentSets))
		}
	}

	coh, err := c.Cohesion(ctx, CohesionRequest{Graph: "g", Vertices: []int64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(coh.Results) != 2 || coh.Results[0].Vertex != 0 {
		t.Fatalf("cohesion results = %+v", coh.Results)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Indexes) != 1 || stats.Indexes[0].State != "ready" {
		t.Fatalf("stats indexes = %+v", stats.Indexes)
	}
	if stats.Enumerations.IndexServed < 3 {
		t.Fatalf("index-served count = %d, want >= 3", stats.Enumerations.IndexServed)
	}
}
