package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Client is a minimal Go client for the kvccd HTTP API. It is used by the
// kvccd self-test mode, the integration tests, and the serving example;
// external consumers can use it as-is.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:7474".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Per-request deadlines
	// come from the context passed to each call.
	HTTPClient *http.Client
}

// NewClient returns a Client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Enumerate requests all k-VCCs of a named graph.
func (c *Client) Enumerate(ctx context.Context, req EnumerateRequest) (*EnumerateResponse, error) {
	var resp EnumerateResponse
	if err := c.post(ctx, PathEnumerate, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ComponentsContaining requests the k-VCCs holding one vertex label.
func (c *Client) ComponentsContaining(ctx context.Context, req ContainingRequest) (*ContainingResponse, error) {
	var resp ContainingResponse
	if err := c.post(ctx, PathContaining, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Overlap requests the pairwise component overlap matrix.
func (c *Client) Overlap(ctx context.Context, req OverlapRequest) (*OverlapResponse, error) {
	var resp OverlapResponse
	if err := c.post(ctx, PathOverlap, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// EnumerateBatch requests the k-VCCs at several values of k in one call.
func (c *Client) EnumerateBatch(ctx context.Context, req BatchEnumerateRequest) (*BatchEnumerateResponse, error) {
	var resp BatchEnumerateResponse
	if err := c.post(ctx, PathEnumerateBatch, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Hierarchy requests the per-level summary of a graph's cohesion
// hierarchy, waiting (within the request timeout) for the server's index
// build to finish.
func (c *Client) Hierarchy(ctx context.Context, req HierarchyRequest) (*HierarchyResponse, error) {
	var resp HierarchyResponse
	if err := c.post(ctx, PathHierarchy, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Cohesion requests the structural cohesion (and nesting chain) of one or
// more vertex labels.
func (c *Client) Cohesion(ctx context.Context, req CohesionRequest) (*CohesionResponse, error) {
	var resp CohesionResponse
	if err := c.post(ctx, PathCohesion, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Edits applies a batch of edge insertions and deletions to a named
// graph. The server applies the batch atomically, bumps the graph's
// version, keeps serving cached results at connectivity levels the batch
// provably did not touch, and schedules a background hierarchy-index
// repair; the response details exactly that split.
func (c *Client) Edits(ctx context.Context, req EditsRequest) (*EditsResponse, error) {
	if req.Graph == "" {
		return nil, fmt.Errorf("server: edits request needs a graph name")
	}
	var resp EditsResponse
	if err := c.post(ctx, GraphEditsPath(req.Graph), req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Profile fetches a graph's structural profile (degeneracy, core
// histogram, degree/component distributions, recommended k range), with
// the per-vertex (core, λ, κ) triples when req.Vertices is non-empty.
func (c *Client) Profile(ctx context.Context, req ProfileRequest) (*ProfileResponse, error) {
	if req.Graph == "" {
		return nil, fmt.Errorf("server: profile request needs a graph name")
	}
	path := GraphProfilePath(req.Graph)
	q := url.Values{}
	if len(req.Vertices) > 0 {
		parts := make([]string, len(req.Vertices))
		for i, v := range req.Vertices {
			parts[i] = strconv.FormatInt(v, 10)
		}
		q.Set("vertices", strings.Join(parts, ","))
	}
	if req.TimeoutMillis > 0 {
		q.Set("timeout_ms", strconv.FormatInt(req.TimeoutMillis, 10))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var resp ProfileResponse
	if err := c.get(ctx, path, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RemoveGraph unregisters a named graph, dropping its cached results and
// cancelling any background index build on the server.
func (c *Client) RemoveGraph(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+GraphPath(name), nil)
	if err != nil {
		return err
	}
	var resp RemoveGraphResponse
	return c.do(req, &resp)
}

// Stats fetches the server's operational snapshot.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get(ctx, PathStats, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Graphs lists the graphs loaded into the server.
func (c *Client) Graphs(ctx context.Context) ([]GraphInfo, error) {
	var resp []GraphInfo
	if err := c.get(ctx, PathGraphs, &resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Health reports whether the server answers its health check.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+PathHealth, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: health check: status %s", resp.Status)
	}
	return nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) post(ctx context.Context, path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, dst)
}

func (c *Client) get(ctx context.Context, path string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, dst)
}

func (c *Client) do(req *http.Request, dst any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("server: %s %s: status %s", req.Method, req.URL.Path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}
