package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal Go client for the kvccd HTTP API. It is used by the
// kvccd self-test mode, the integration tests, and the serving example;
// external consumers can use it as-is.
//
// Resilience is opt-in and safe by construction: with Retry set, only
// idempotent calls are ever retried — every read, and Edits only when the
// request carries an IdempotencyKey (the server's replay table then makes
// the retry at-most-once). RemoveGraph is never retried: a retry of a
// success observes 404 and would misreport. Backoff is exponential with
// jitter and honors the server's Retry-After hint on shed (429/503)
// responses.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:7474".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Per-request deadlines
	// come from the context passed to each call.
	HTTPClient *http.Client
	// APIKey, when set, is sent as the X-API-Key header — the identity
	// the server's per-tenant quotas charge requests to.
	APIKey string
	// Retry enables automatic retries of idempotent calls. Nil keeps the
	// historical single-attempt behavior.
	Retry *RetryPolicy
	// HedgeDelay, when positive, arms hedged reads: an idempotent call
	// still unanswered after this long launches one duplicate request,
	// and the first response wins. Hedging trades duplicate server work
	// for tail latency; leave zero unless the workload needs it.
	HedgeDelay time.Duration
}

// RetryPolicy shapes the client's backoff between retry attempts.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values below 2 disable retries. Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Default 5s.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// delay computes the backoff before retry number attempt (1-based),
// jittered to desynchronize a thundering herd, and never shorter than the
// server's own Retry-After hint when the previous failure carried one.
func (p RetryPolicy) delay(attempt int, lastErr error) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	d = time.Duration(float64(d) * (0.5 + rand.Float64())) // [0.5d, 1.5d)
	var ae *APIError
	if errors.As(lastErr, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	return d
}

// APIError is the error the client returns for any non-200 API response.
// Status distinguishes "back off and retry" (429, Retry-After set) from
// hard failures, so callers can branch without string matching.
type APIError struct {
	Status     int           // HTTP status code
	StatusText string        // full status line text, e.g. "429 Too Many Requests"
	Message    string        // the server's JSON error body, when it sent one
	RetryAfter time.Duration // parsed Retry-After hint; 0 when absent
	method     string
	path       string
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %s: %s", e.StatusText, e.Message)
	}
	return fmt.Sprintf("server: %s %s: status %s", e.method, e.path, e.StatusText)
}

// NewClient returns a Client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Enumerate requests all k-VCCs of a named graph.
func (c *Client) Enumerate(ctx context.Context, req EnumerateRequest) (*EnumerateResponse, error) {
	var resp EnumerateResponse
	if err := c.post(ctx, PathEnumerate, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ComponentsContaining requests the k-VCCs holding one vertex label.
func (c *Client) ComponentsContaining(ctx context.Context, req ContainingRequest) (*ContainingResponse, error) {
	var resp ContainingResponse
	if err := c.post(ctx, PathContaining, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Overlap requests the pairwise component overlap matrix.
func (c *Client) Overlap(ctx context.Context, req OverlapRequest) (*OverlapResponse, error) {
	var resp OverlapResponse
	if err := c.post(ctx, PathOverlap, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// EnumerateBatch requests the k-VCCs at several values of k in one call.
func (c *Client) EnumerateBatch(ctx context.Context, req BatchEnumerateRequest) (*BatchEnumerateResponse, error) {
	var resp BatchEnumerateResponse
	if err := c.post(ctx, PathEnumerateBatch, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Hierarchy requests the per-level summary of a graph's cohesion
// hierarchy, waiting (within the request timeout) for the server's index
// build to finish.
func (c *Client) Hierarchy(ctx context.Context, req HierarchyRequest) (*HierarchyResponse, error) {
	var resp HierarchyResponse
	if err := c.post(ctx, PathHierarchy, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Cohesion requests the structural cohesion (and nesting chain) of one or
// more vertex labels.
func (c *Client) Cohesion(ctx context.Context, req CohesionRequest) (*CohesionResponse, error) {
	var resp CohesionResponse
	if err := c.post(ctx, PathCohesion, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Edits applies a batch of edge insertions and deletions to a named
// graph. The server applies the batch atomically, bumps the graph's
// version, keeps serving cached results at connectivity levels the batch
// provably did not touch, and schedules a background hierarchy-index
// repair; the response details exactly that split.
func (c *Client) Edits(ctx context.Context, req EditsRequest) (*EditsResponse, error) {
	if req.Graph == "" {
		return nil, fmt.Errorf("server: edits request needs a graph name")
	}
	// A keyed batch is safe to retry — the server's replay table applies
	// it at most once. An unkeyed batch is not: a retry of an
	// acknowledged-but-lost response could re-apply edits.
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp EditsResponse
	if err := c.call(ctx, http.MethodPost, GraphEditsPath(req.Graph), payload,
		req.IdempotencyKey != "", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Profile fetches a graph's structural profile (degeneracy, core
// histogram, degree/component distributions, recommended k range), with
// the per-vertex (core, λ, κ) triples when req.Vertices is non-empty.
func (c *Client) Profile(ctx context.Context, req ProfileRequest) (*ProfileResponse, error) {
	if req.Graph == "" {
		return nil, fmt.Errorf("server: profile request needs a graph name")
	}
	path := GraphProfilePath(req.Graph)
	q := url.Values{}
	if len(req.Vertices) > 0 {
		parts := make([]string, len(req.Vertices))
		for i, v := range req.Vertices {
			parts[i] = strconv.FormatInt(v, 10)
		}
		q.Set("vertices", strings.Join(parts, ","))
	}
	if req.TimeoutMillis > 0 {
		q.Set("timeout_ms", strconv.FormatInt(req.TimeoutMillis, 10))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var resp ProfileResponse
	if err := c.get(ctx, path, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RemoveGraph unregisters a named graph, dropping its cached results and
// cancelling any background index build on the server.
func (c *Client) RemoveGraph(ctx context.Context, name string) error {
	// Never retried: a retry of a successful removal sees 404 and would
	// report failure for an operation that in fact succeeded.
	var resp RemoveGraphResponse
	return c.call(ctx, http.MethodDelete, GraphPath(name), nil, false, &resp)
}

// Stats fetches the server's operational snapshot.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get(ctx, PathStats, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Graphs lists the graphs loaded into the server.
func (c *Client) Graphs(ctx context.Context) ([]GraphInfo, error) {
	var resp []GraphInfo
	if err := c.get(ctx, PathGraphs, &resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Health reports whether the server answers its health check.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+PathHealth, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: health check: status %s", resp.Status)
	}
	return nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// post issues one idempotent read-style POST. All the query endpoints go
// through here; Edits builds its call directly because its idempotence
// depends on the request.
func (c *Client) post(ctx context.Context, path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.call(ctx, http.MethodPost, path, payload, true, dst)
}

func (c *Client) get(ctx context.Context, path string, dst any) error {
	return c.call(ctx, http.MethodGet, path, nil, true, dst)
}

// call runs one API exchange under the client's resilience policy: hedged
// (idempotent calls, when armed) and retried with jittered exponential
// backoff that honors the server's Retry-After hint. Non-idempotent calls
// get exactly one attempt regardless of policy.
func (c *Client) call(ctx context.Context, method, path string, payload []byte, idempotent bool, dst any) error {
	attempts := 1
	var pol RetryPolicy
	if c.Retry != nil && idempotent {
		pol = c.Retry.withDefaults()
		attempts = pol.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(pol.delay(attempt, lastErr))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return lastErr
			}
		}
		data, err := c.exchangeHedged(ctx, method, path, payload, idempotent)
		if err == nil {
			if dst == nil {
				return nil
			}
			return json.Unmarshal(data, dst)
		}
		lastErr = err
		if !retryableError(err) {
			return err
		}
	}
	return lastErr
}

// retryableError reports whether a failed attempt is worth repeating:
// transport-level failures (connection refused, reset — the request may
// never have arrived) and explicit back-off responses. Context
// cancellation and every other API status are final.
func retryableError(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
			return true
		}
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// exchangeHedged wraps exchange with tail-latency hedging: if the primary
// request is still unanswered after HedgeDelay, launch one duplicate and
// take whichever responds first (the loser is cancelled). Responses are
// raw bytes here precisely so two racing attempts never decode into the
// caller's dst concurrently.
func (c *Client) exchangeHedged(ctx context.Context, method, path string, payload []byte, idempotent bool) ([]byte, error) {
	if c.HedgeDelay <= 0 || !idempotent {
		return c.exchange(ctx, method, path, payload)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // releases the loser
	type result struct {
		data []byte
		err  error
	}
	results := make(chan result, 2) // buffered: the loser must not block
	launch := func() {
		go func() {
			data, err := c.exchange(hctx, method, path, payload)
			results <- result{data, err}
		}()
	}
	launch()
	launched := 1
	hedge := time.NewTimer(c.HedgeDelay)
	defer hedge.Stop()
	var firstErr error
	for done := 0; done < launched; {
		select {
		case r := <-results:
			done++
			if r.err == nil {
				return r.data, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-hedge.C:
			launch()
			launched++
		}
	}
	return nil, firstErr
}

// exchange performs one HTTP round trip and maps any non-200 response to
// an *APIError carrying the status, the server's error message, and the
// Retry-After hint.
func (c *Client) exchange(ctx context.Context, method, path string, payload []byte) ([]byte, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ae := &APIError{
			Status:     resp.StatusCode,
			StatusText: resp.Status,
			method:     req.Method,
			path:       req.URL.Path,
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
		var e errorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			ae.Message = e.Error
		}
		return nil, ae
	}
	return io.ReadAll(resp.Body)
}
