package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// admissionConfig builds a tiny, fully deterministic admission ladder:
// one expensive permit, a queue of one, and a short queue deadline.
func admissionConfig() Config {
	return Config{
		MaxInflight:    1,
		AdmissionQueue: 1,
		QueueTimeout:   50 * time.Millisecond,
		ShedLatency:    -1, // breaker off unless a test arms it
	}.withDefaults()
}

func TestAdmissionFastPathAndRelease(t *testing.T) {
	a := newAdmission(admissionConfig())
	release, err := a.acquire(context.Background(), classExpensive)
	if err != nil {
		t.Fatalf("acquire on an idle limiter: %v", err)
	}
	if got := a.classes[classExpensive].inflight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	release()
	if got := a.classes[classExpensive].inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	st := a.snapshot()
	if st.Admitted != 1 || st.Shed != 0 {
		t.Fatalf("snapshot = %+v, want admitted=1 shed=0", st)
	}
}

func TestAdmissionQueueFullShed(t *testing.T) {
	a := newAdmission(admissionConfig())
	holder, err := a.acquire(context.Background(), classExpensive)
	if err != nil {
		t.Fatal(err)
	}
	defer holder()

	// Fill the single queue slot with a waiter that will sit until the
	// queue deadline.
	waiterErr := make(chan error, 1)
	go func() {
		_, err := a.acquire(context.Background(), classExpensive)
		waiterErr <- err
	}()
	// Wait until the waiter is actually queued.
	deadline := time.Now().Add(time.Second)
	for a.classes[classExpensive].queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	_, err = a.acquire(context.Background(), classExpensive)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire with a full queue: err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue-full" {
		t.Fatalf("err = %v, want reason queue-full", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("queue-full shed carries no Retry-After hint: %+v", oe)
	}

	// The queued waiter must itself shed at the queue deadline.
	if err := <-waiterErr; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued waiter: err = %v, want ErrOverloaded (queue-timeout)", err)
	}
	st := a.snapshot()
	if st.ShedQueueFull != 1 || st.ShedQueueTimeout != 1 {
		t.Fatalf("snapshot = %+v, want shedQueueFull=1 shedQueueTimeout=1", st)
	}
}

func TestAdmissionQueuedRequestHonorsContext(t *testing.T) {
	a := newAdmission(admissionConfig())
	holder, err := a.acquire(context.Background(), classExpensive)
	if err != nil {
		t.Fatal(err)
	}
	defer holder()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = a.acquire(ctx, classExpensive)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire past its own deadline: err = %v, want DeadlineExceeded", err)
	}
}

func TestAdmissionDrainSheds(t *testing.T) {
	a := newAdmission(admissionConfig())
	a.beginDrain()
	_, err := a.acquire(context.Background(), classCheap)
	var oe *OverloadError
	if !errors.As(err, &oe) || !oe.Draining {
		t.Fatalf("acquire while draining: err = %v, want draining OverloadError", err)
	}
	if !a.snapshot().Draining {
		t.Fatal("snapshot does not report draining")
	}
}

func TestAdmissionAdaptiveBreaker(t *testing.T) {
	cfg := admissionConfig()
	cfg.ShedLatency = 10 * time.Millisecond
	a := newAdmission(cfg)

	// Saturate the wait window with samples far above the target.
	for i := 0; i < admissionWaitWindow; i++ {
		a.noteWait(100)
	}
	holder, err := a.acquire(context.Background(), classExpensive)
	if err != nil {
		t.Fatalf("fast path must stay open regardless of the breaker: %v", err)
	}
	_, err = a.acquire(context.Background(), classExpensive)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue-latency" {
		t.Fatalf("contended acquire with p95 above target: err = %v, want queue-latency", err)
	}

	// Recovery: freeing the permit re-opens the fast path, whose zero-wait
	// samples eventually close the breaker.
	holder()
	for i := 0; i < admissionWaitWindow; i++ {
		r, err := a.acquire(context.Background(), classExpensive)
		if err != nil {
			t.Fatalf("fast-path acquire %d during recovery: %v", i, err)
		}
		r()
	}
	if p95 := a.queueWaitQuantile(0.95); p95 > float64(cfg.ShedLatency)/float64(time.Millisecond) {
		t.Fatalf("breaker did not self-heal: p95 = %.1fms", p95)
	}
}

func TestAdmissionQuota(t *testing.T) {
	cfg := admissionConfig()
	cfg.QuotaRPS = 0.001 // effectively no refill within the test
	cfg.QuotaBurst = 2
	a := newAdmission(cfg)

	for i := 0; i < 2; i++ {
		if err := a.checkQuota("tenant-a"); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	err := a.checkQuota("tenant-a")
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "quota" {
		t.Fatalf("over-quota request: err = %v, want quota OverloadError", err)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("quota rejection Retry-After = %s, want >= 1s", oe.RetryAfter)
	}
	// Another tenant's bucket is untouched.
	if err := a.checkQuota("tenant-b"); err != nil {
		t.Fatalf("independent tenant: %v", err)
	}
	if got := a.snapshot().QuotaRejections; got != 1 {
		t.Fatalf("quotaRejections = %d, want 1", got)
	}
}

func TestTenantFallsBackToGraph(t *testing.T) {
	ctx := context.Background()
	if got := tenantFrom(ctx, "g1"); got != "graph:g1" {
		t.Fatalf("anonymous tenant = %q, want graph:g1", got)
	}
	if got := tenantFrom(WithTenant(ctx, "key-1"), "g1"); got != "key-1" {
		t.Fatalf("keyed tenant = %q, want key-1", got)
	}
}

func TestRetryAfterHintClamped(t *testing.T) {
	a := newAdmission(admissionConfig())
	if got := a.retryAfterHint(classExpensive); got != time.Second {
		t.Fatalf("hint with no service history = %s, want 1s floor", got)
	}
	a.noteServiceMS("g/kvcc/3", 10*60*1000) // 10 minutes per enumeration
	if got := a.retryAfterHint(classExpensive); got != 30*time.Second {
		t.Fatalf("hint with huge backlog = %s, want 30s ceiling", got)
	}
}

func TestEstimateFallsBackToGlobalEWMA(t *testing.T) {
	a := newAdmission(admissionConfig())
	if _, ok := a.estimateMS("g/kvcc/3"); ok {
		t.Fatal("estimate exists before any service samples")
	}
	a.noteServiceMS("g/kvcc/3", 50)
	if est, ok := a.estimateMS("g/kvcc/3"); !ok || est != 50 {
		t.Fatalf("per-key estimate = %.1f/%v, want 50/true", est, ok)
	}
	if est, ok := a.estimateMS("other/kvcc/4"); !ok || est != 50 {
		t.Fatalf("global fallback estimate = %.1f/%v, want 50/true", est, ok)
	}
}

// FuzzAdmission drives random acquire/release/drain sequences through the
// admission ladder and asserts its safety invariants: permits never go
// negative or exceed capacity, queue counters return to zero, and every
// admission hands back a usable release.
func FuzzAdmission(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0xff, 0x80, 0x40})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xfe, 0xfd})
	f.Fuzz(func(t *testing.T, ops []byte) {
		cfg := Config{
			MaxInflight:      2,
			MaxInflightCheap: 2,
			AdmissionQueue:   2,
			QueueTimeout:     time.Millisecond,
			ShedLatency:      500 * time.Microsecond,
			QuotaRPS:         1000,
			QuotaBurst:       4,
		}.withDefaults()
		a := newAdmission(cfg)
		var releases []func()
		ctx := context.Background()
		for _, op := range ops {
			switch op % 5 {
			case 0, 1, 2:
				cls := costClass(op % 5)
				release, err := a.acquire(ctx, cls)
				if err == nil {
					releases = append(releases, release)
				} else if !errors.Is(err, ErrOverloaded) {
					t.Fatalf("acquire(%v): unexpected error kind %v", cls, err)
				}
			case 3:
				if len(releases) > 0 {
					releases[len(releases)-1]()
					releases = releases[:len(releases)-1]
				}
			case 4:
				_ = a.checkQuota(string(rune('a' + op%7)))
			}
			for cls := costClass(0); cls < numCostClasses; cls++ {
				l := a.classes[cls]
				if inf := l.inflight(); inf < 0 || inf > l.cap {
					t.Fatalf("class %v inflight %d out of [0,%d]", cls, inf, l.cap)
				}
				if q := l.queued.Load(); q < 0 || q > l.maxQueue {
					t.Fatalf("class %v queued %d out of [0,%d]", cls, q, l.maxQueue)
				}
			}
		}
		for _, release := range releases {
			release()
		}
		for cls := costClass(0); cls < numCostClasses; cls++ {
			l := a.classes[cls]
			if inf := l.inflight(); inf != 0 {
				t.Fatalf("class %v still holds %d permits after full release", cls, inf)
			}
		}
		// The snapshot must always be renderable.
		if st := a.snapshot(); st == nil {
			t.Fatal("nil snapshot")
		}
	})
}
