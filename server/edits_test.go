package server

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"kvcc"
	"kvcc/graph"
)

// cliqueAndCycle builds a K6 (labels 0..5) plus a disjoint 4-cycle
// (labels 10..13): the clique is a k-VCC up to k=5, the cycle only at
// k=2, so edits inside the cycle must leave deep levels untouched.
func cliqueAndCycle() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := int64(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	b.AddEdge(10, 11)
	b.AddEdge(11, 12)
	b.AddEdge(12, 13)
	b.AddEdge(13, 10)
	return b.Build()
}

func TestEditsVersionScopedInvalidation(t *testing.T) {
	s := New(Config{})
	s.AddGraph("g", cliqueAndCycle())
	ctx := context.Background()

	// Warm the cache at k=2 (clique + cycle) and k=4 (clique only).
	k2, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(k2.Components) != 2 {
		t.Fatalf("k=2: %d components, want 2", len(k2.Components))
	}
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 4}); err != nil {
		t.Fatal(err)
	}

	// Break the cycle: affects k<=2, provably not k=4.
	resp, err := s.Edits(ctx, EditsRequest{Graph: "g", Deletes: [][2]int64{{10, 11}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.AppliedDeletes != 1 || resp.Version != 2 {
		t.Fatalf("edit response = %+v, want 1 applied delete at version 2", resp)
	}
	if resp.AffectedMaxK != 2 {
		t.Fatalf("AffectedMaxK = %d, want 2", resp.AffectedMaxK)
	}
	if resp.CacheKept != 1 || resp.CacheInvalidated != 1 {
		t.Fatalf("cache kept/invalidated = %d/%d, want 1/1", resp.CacheKept, resp.CacheInvalidated)
	}

	// The k=4 entry migrated: still served from cache, no recomputation.
	k4, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !k4.Cached {
		t.Fatal("k=4 result was invalidated by an edit that could not affect it")
	}

	// The k=2 entry dropped, but its result seeds an incremental run that
	// reuses the untouched clique component outright.
	k2b, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if k2b.Cached {
		t.Fatal("k=2 was served from a stale cache entry")
	}
	if len(k2b.Components) != 1 {
		t.Fatalf("k=2 after cycle break: %d components, want 1", len(k2b.Components))
	}
	if k2b.Stats.ComponentsReused != 1 || k2b.Stats.ComponentsRecomputed != 0 {
		t.Fatalf("reused/recomputed = %d/%d, want 1/0 (the clique is untouched)",
			k2b.Stats.ComponentsReused, k2b.Stats.ComponentsRecomputed)
	}

	st := s.Stats()
	if st.Enumerations.Edits != 1 {
		t.Fatalf("EnumStats.Edits = %d, want 1", st.Enumerations.Edits)
	}
	if st.Enumerations.IncrementalRuns != 1 || st.Enumerations.ComponentsReused != 1 {
		t.Fatalf("incremental stats = %d runs / %d reused, want 1/1",
			st.Enumerations.IncrementalRuns, st.Enumerations.ComponentsReused)
	}
}

func TestEditsNoopBatch(t *testing.T) {
	s := New(Config{})
	s.AddGraph("g", cliqueAndCycle())
	ctx := context.Background()
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 3}); err != nil {
		t.Fatal(err)
	}
	// Insert an existing edge, delete an absent one: nothing changes.
	resp, err := s.Edits(ctx, EditsRequest{
		Graph:   "g",
		Inserts: [][2]int64{{0, 1}},
		Deletes: [][2]int64{{0, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.AppliedInserts != 0 || resp.AppliedDeletes != 0 || resp.NoopEdits != 2 {
		t.Fatalf("noop batch reported %+v", resp)
	}
	if resp.Version != 1 || resp.IndexRepair != "none" {
		t.Fatalf("noop batch moved state: %+v", resp)
	}
	second, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("noop batch invalidated the cache")
	}
}

func TestEditsUnknownGraph(t *testing.T) {
	s := New(Config{})
	_, err := s.Edits(context.Background(), EditsRequest{Graph: "nope", Inserts: [][2]int64{{1, 2}}})
	if !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("err = %v, want ErrUnknownGraph", err)
	}
}

// TestEditsIncrementalEqualsCold replays random edit scripts through the
// server and diffs every queried level against a from-scratch
// enumeration of an identically edited local graph.
func TestEditsIncrementalEqualsCold(t *testing.T) {
	base := twoCliques()
	s := New(Config{})
	s.AddGraph("g", base)
	shadow := graph.NewDelta(base)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))

	for round := 0; round < 8; round++ {
		var ins, del [][2]int64
		for j := 0; j < 4; j++ {
			a, b := rng.Int63n(12), rng.Int63n(12)
			if rng.Intn(2) == 0 {
				ins = append(ins, [2]int64{a, b})
			} else {
				del = append(del, [2]int64{a, b})
			}
		}
		if _, err := s.Edits(ctx, EditsRequest{Graph: "g", Inserts: ins, Deletes: del}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, e := range ins {
			shadow.InsertEdge(e[0], e[1])
		}
		for _, e := range del {
			shadow.DeleteEdge(e[0], e[1])
		}
		want := shadow.Compact()
		for k := 2; k <= 4; k++ {
			got, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: k})
			if err != nil {
				t.Fatalf("round %d k=%d: %v", round, k, err)
			}
			cold, err := kvcc.Enumerate(want, k)
			if err != nil {
				t.Fatalf("round %d k=%d cold: %v", round, k, err)
			}
			coldWire := wireComponents(cold.Components, false)
			if len(got.Components) != len(coldWire) {
				t.Fatalf("round %d k=%d: %d components, cold has %d",
					round, k, len(got.Components), len(coldWire))
			}
			for i := range coldWire {
				if !reflect.DeepEqual(got.Components[i].Vertices, coldWire[i].Vertices) {
					t.Fatalf("round %d k=%d component %d:\n  got  %v\n  want %v",
						round, k, i, got.Components[i].Vertices, coldWire[i].Vertices)
				}
			}
		}
	}
}

func TestRemoveGraph(t *testing.T) {
	s := New(Config{BuildIndex: true})
	s.AddGraph("g", twoCliques())
	ctx := context.Background()
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 3}); err != nil {
		t.Fatal(err)
	}
	if !s.RemoveGraph("g") {
		t.Fatal("RemoveGraph returned false for a registered graph")
	}
	if s.RemoveGraph("g") {
		t.Fatal("RemoveGraph returned true for an absent graph")
	}
	if infos := s.Graphs(); len(infos) != 0 {
		t.Fatalf("graphs after removal: %v", infos)
	}
	if _, err := s.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 3}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("enumerate after removal: %v, want ErrUnknownGraph", err)
	}
	if st := s.Stats(); st.Cache.Size != 0 || len(st.Indexes) != 0 {
		t.Fatalf("removal left cache size %d, %d indexes", st.Cache.Size, len(st.Indexes))
	}
}

func TestGraphInfoVersionAndModified(t *testing.T) {
	s := New(Config{})
	s.AddGraph("g", twoCliques())
	infos := s.Graphs()
	if len(infos) != 1 {
		t.Fatalf("graphs = %v", infos)
	}
	if infos[0].Version != 1 || infos[0].ModifiedAt.IsZero() {
		t.Fatalf("fresh graph info = %+v, want version 1 and a modified time", infos[0])
	}
	before := infos[0].ModifiedAt
	if _, err := s.Edits(context.Background(), EditsRequest{Graph: "g", Inserts: [][2]int64{{0, 7}}}); err != nil {
		t.Fatal(err)
	}
	infos = s.Graphs()
	if infos[0].Version <= 1 {
		t.Fatalf("version after edit = %d, want > 1", infos[0].Version)
	}
	if infos[0].ModifiedAt.Before(before) {
		t.Fatalf("modified time went backwards: %v -> %v", before, infos[0].ModifiedAt)
	}
}

// TestEditsHTTPRoundTrip drives the edits and remove endpoints through
// the HTTP handler and Go client.
func TestEditsHTTPRoundTrip(t *testing.T) {
	s := New(Config{})
	s.AddGraph("g", cliqueAndCycle())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	resp, err := c.Edits(ctx, EditsRequest{Graph: "g", Deletes: [][2]int64{{10, 11}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.AppliedDeletes != 1 || resp.Version != 2 {
		t.Fatalf("edit over HTTP = %+v", resp)
	}
	infos, err := c.Graphs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Version != 2 {
		t.Fatalf("graphs over HTTP = %+v, want version 2", infos)
	}
	enum, err := c.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(enum.Components) != 1 {
		t.Fatalf("k=2 after edit: %d components, want 1", len(enum.Components))
	}
	if err := c.RemoveGraph(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveGraph(ctx, "g"); err == nil {
		t.Fatal("removing an absent graph must fail")
	}
	if _, err := c.Enumerate(ctx, EnumerateRequest{Graph: "g", K: 2}); err == nil {
		t.Fatal("enumerate after removal must fail")
	}
}

// TestConcurrentEditsAndQueries hammers the edits path against enumerate
// and components-containing queries on the same graph. Under -race (the
// CI server matrix) this is the data-race guard for the server's dynamic
// layer: edits serialize on editMu and install snapshots under s.mu,
// while queries only ever see immutable (graph, generation) pairs.
func TestConcurrentEditsAndQueries(t *testing.T) {
	s := New(Config{})
	s.AddGraph("g", cliqueAndCycle())
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 40; i++ {
			var ins, del [][2]int64
			for j := 0; j < 2; j++ {
				a, b := rng.Int63n(16), rng.Int63n(16)
				if rng.Intn(2) == 0 {
					ins = append(ins, [2]int64{a, b})
				} else {
					del = append(del, [2]int64{a, b})
				}
			}
			if _, err := s.Edits(context.Background(), EditsRequest{Graph: "g", Inserts: ins, Deletes: del}); err != nil {
				t.Errorf("edits: %v", err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := 2 + rng.Intn(3)
				if _, err := s.Enumerate(context.Background(), EnumerateRequest{Graph: "g", K: k}); err != nil {
					t.Errorf("enumerate: %v", err)
					return
				}
				if _, err := s.ComponentsContaining(context.Background(), ContainingRequest{
					Graph: "g", K: k, Vertex: rng.Int63n(16),
				}); err != nil {
					t.Errorf("containing: %v", err)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
}
