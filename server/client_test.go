package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler answers failures times with status, then succeeds with the
// given body.
func flakyHandler(failures int32, status int, retryAfter string, body any) (http.Handler, *atomic.Int32) {
	var calls atomic.Int32
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= failures {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(errorResponse{Error: "synthetic overload"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	}), &calls
}

func fastRetry() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestClientRetriesIdempotentReads(t *testing.T) {
	h, calls := flakyHandler(2, http.StatusTooManyRequests, "", &StatsResponse{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = fastRetry()
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("read failed despite retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + success)", got)
	}
}

func TestClientDoesNotRetryHardFailures(t *testing.T) {
	h, calls := flakyHandler(10, http.StatusBadRequest, "", nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = fastRetry()
	_, err := c.Stats(context.Background())
	if err == nil {
		t.Fatal("400 response did not surface as an error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls for a 400, want 1 (no retries)", got)
	}
}

func TestClientAPIErrorCarriesRetryAfter(t *testing.T) {
	h, _ := flakyHandler(10, http.StatusTooManyRequests, "2", nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL) // no retry policy: single attempt
	_, err := c.Stats(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *APIError", err, err)
	}
	if ae.Status != http.StatusTooManyRequests || ae.RetryAfter != 2*time.Second {
		t.Fatalf("APIError = %+v, want 429 with RetryAfter 2s", ae)
	}
	if ae.Message == "" {
		t.Fatalf("APIError lost the server's message: %+v", ae)
	}
}

func TestClientEditsRetryOnlyWithKey(t *testing.T) {
	edit := EditsRequest{Graph: "g", Inserts: [][2]int64{{1, 2}}}

	// Unkeyed: exactly one attempt, even with a retry policy armed.
	h, calls := flakyHandler(10, http.StatusServiceUnavailable, "", nil)
	ts := httptest.NewServer(h)
	c := NewClient(ts.URL)
	c.Retry = fastRetry()
	if _, err := c.Edits(context.Background(), edit); err == nil {
		t.Fatal("edit against a 503-only server succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("unkeyed edit: server saw %d calls, want 1", got)
	}
	ts.Close()

	// Keyed: the replay table makes retries safe, so they happen.
	h, calls = flakyHandler(2, http.StatusServiceUnavailable, "", &EditsResponse{Graph: "g", Version: 2})
	ts = httptest.NewServer(h)
	defer ts.Close()
	c = NewClient(ts.URL)
	c.Retry = fastRetry()
	keyed := edit
	keyed.IdempotencyKey = "k-1"
	resp, err := c.Edits(context.Background(), keyed)
	if err != nil {
		t.Fatalf("keyed edit failed despite retries: %v", err)
	}
	if resp.Version != 2 {
		t.Fatalf("keyed edit response = %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("keyed edit: server saw %d calls, want 3", got)
	}
}

func TestClientRemoveGraphNeverRetries(t *testing.T) {
	h, calls := flakyHandler(10, http.StatusServiceUnavailable, "", nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = fastRetry()
	if err := c.RemoveGraph(context.Background(), "g"); err == nil {
		t.Fatal("remove against a 503-only server succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("remove: server saw %d calls, want 1", got)
	}
}

func TestClientSendsAPIKey(t *testing.T) {
	var gotKey atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotKey.Store(r.Header.Get("X-API-Key"))
		json.NewEncoder(w).Encode(&StatsResponse{})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.APIKey = "tenant-42"
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := gotKey.Load(); got != "tenant-42" {
		t.Fatalf("server saw X-API-Key %q, want tenant-42", got)
	}
}

func TestClientHedgedRead(t *testing.T) {
	// The first request stalls; the hedge (second request) answers
	// immediately. The client must return the hedge's answer well before
	// the stalled primary would have finished.
	var calls atomic.Int32
	block := make(chan struct{})
	defer close(block)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select {
			case <-block:
			case <-r.Context().Done():
			}
			return
		}
		json.NewEncoder(w).Encode(&StatsResponse{Graphs: []GraphInfo{{Name: "hedge"}}})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.HedgeDelay = 10 * time.Millisecond
	begin := time.Now()
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Graphs) != 1 || stats.Graphs[0].Name != "hedge" {
		t.Fatalf("hedged read returned %+v", stats)
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("hedged read took %s: hedge never fired", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (primary + hedge)", got)
	}
}

func TestClientHedgeNotUsedForNonIdempotent(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond)
		json.NewEncoder(w).Encode(&EditsResponse{Graph: "g", Version: 2})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.HedgeDelay = time.Millisecond
	if _, err := c.Edits(context.Background(), EditsRequest{Graph: "g"}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("unkeyed edit hedged: server saw %d calls, want 1", got)
	}
}

// TestClientRetryHonorsRetryAfterFloor: the backoff never undercuts the
// server's hint.
func TestClientRetryDelayHonorsHint(t *testing.T) {
	p := fastRetry().withDefaults()
	hinted := &APIError{Status: 429, RetryAfter: 80 * time.Millisecond}
	for attempt := 1; attempt < p.MaxAttempts; attempt++ {
		if d := p.delay(attempt, hinted); d < hinted.RetryAfter {
			t.Fatalf("attempt %d delay %s undercuts the 80ms hint", attempt, d)
		}
	}
	// Without a hint, the jittered exponential stays within [base/2, 1.5*max].
	for attempt := 1; attempt < 10; attempt++ {
		d := p.delay(attempt, errors.New("transport"))
		if d < p.BaseDelay/2 || d > p.MaxDelay*3/2 {
			t.Fatalf("attempt %d delay %s outside jitter bounds", attempt, d)
		}
	}
}

// TestClientEndToEndResilience drives a real server through a client with
// retries armed while the server sheds: every call eventually lands.
func TestClientEndToEndResilience(t *testing.T) {
	slowEnumerations(t, 20*time.Millisecond)
	s := testServer(Config{
		MaxInflight:      1,
		MaxInflightCheap: 1,
		AdmissionQueue:   1,
		QueueTimeout:     10 * time.Millisecond,
		ShedLatency:      -1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 20, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}

	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := c.Enumerate(context.Background(), EnumerateRequest{Graph: "fig2", K: 3})
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("request %d never landed despite retries: %v", i, err)
		}
	}
}
