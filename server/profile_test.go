package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"kvcc/graph"
)

// TestProfileGraphLevel pins the whole graph-level profile of the fig2
// graph (two K5s sharing two vertices), where every number is checkable
// by hand: 8 vertices, 19 edges, degeneracy 4, one connected component,
// 20 triangles, degrees {4×6, 7×2}.
func TestProfileGraphLevel(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()

	p, err := s.Profile(ctx, ProfileRequest{Graph: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph != "fig2" || p.Vertices != 8 || p.Edges != 19 {
		t.Fatalf("profile head = %q %d vertices %d edges, want fig2/8/19", p.Graph, p.Vertices, p.Edges)
	}
	if p.Degeneracy != 4 {
		t.Fatalf("degeneracy = %d, want 4", p.Degeneracy)
	}
	if want := []int{0, 0, 0, 0, 8}; !reflect.DeepEqual(p.CoreHistogram, want) {
		t.Fatalf("core histogram = %v, want %v", p.CoreHistogram, want)
	}
	if p.Degrees.Min != 4 || p.Degrees.Max != 7 || p.Degrees.Mean != 38.0/8 {
		t.Fatalf("degrees = %+v, want min 4 max 7 mean 4.75", p.Degrees)
	}
	if p.Components.Count != 1 || p.Components.Max != 8 || p.Components.CoveredFraction != 1 {
		t.Fatalf("components = %+v, want one 8-vertex component fully covered", p.Components)
	}
	if !reflect.DeepEqual(p.Components.LargestSizes, []int{8}) {
		t.Fatalf("largest sizes = %v, want [8]", p.Components.LargestSizes)
	}
	if p.Clustering.Triangles != 20 {
		t.Fatalf("triangles = %d, want 20", p.Clustering.Triangles)
	}
	// Every K5's density makes k=3 the deepest level whose core keeps
	// 2(k+1) vertices; the degeneracy caps the range at 4.
	if p.RecommendedK.Min != 2 || p.RecommendedK.Max != 4 || p.RecommendedK.Suggested != 3 {
		t.Fatalf("recommended k = %+v, want {2, 4, 3}", p.RecommendedK)
	}
	if p.Cached || len(p.PerVertex) != 0 {
		t.Fatalf("first profile: cached=%v perVertex=%d", p.Cached, len(p.PerVertex))
	}

	// The second call is served from the per-generation cache with the
	// same numbers.
	second, err := s.Profile(ctx, ProfileRequest{Graph: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat profile not cache-served")
	}
	if second.Degeneracy != p.Degeneracy || !reflect.DeepEqual(second.CoreHistogram, p.CoreHistogram) {
		t.Fatal("cached profile differs from computed profile")
	}

	if got := s.Stats().Enumerations.Profiles; got != 2 {
		t.Fatalf("profile counter = %d, want 2", got)
	}

	// Replacing the graph invalidates the cached profile.
	s.AddGraph("fig2", indexTestGraph())
	third, err := s.Profile(ctx, ProfileRequest{Graph: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached || third.Vertices == 8 {
		t.Fatalf("post-replacement profile: cached=%v vertices=%d, want fresh profile of the new graph",
			third.Cached, third.Vertices)
	}
}

// TestProfilePerVertex checks the (core, λ, κ) triples against fig2's
// known structure — every vertex sits in a K5, so core = λ = κ = 4 — and
// the Whitney ordering core >= λ >= κ in general, with absent vertices
// reported as all-zero.
func TestProfilePerVertex(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()

	p, err := s.Profile(ctx, ProfileRequest{Graph: "fig2", Vertices: []int64{0, 3, 99}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.PerVertex) != 3 {
		t.Fatalf("got %d per-vertex entries, want 3", len(p.PerVertex))
	}
	for _, pv := range p.PerVertex[:2] {
		if pv.Core != 4 || pv.Lambda != 4 || pv.Kappa != 4 {
			t.Fatalf("vertex %d profile = %+v, want core=λ=κ=4", pv.Vertex, pv)
		}
	}
	if absent := p.PerVertex[2]; absent.Vertex != 99 || absent.Core != 0 || absent.Lambda != 0 || absent.Kappa != 0 {
		t.Fatalf("absent vertex profile = %+v, want all zero", absent)
	}

	// On a graph where the measures genuinely differ the triples must
	// still be ordered core >= λ >= κ, and the profile must agree with
	// the enumerations: in the gadget, vertex 0 is in the (global)
	// 3-ECC but in no 3-connected subgraph, so λ = 3 while κ = 2.
	s.AddGraph("gadget", lambdaKappaGadget())
	gp, err := s.Profile(ctx, ProfileRequest{Graph: "gadget", Vertices: []int64{0, 1, 2, 3, 4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	for _, pv := range gp.PerVertex {
		if pv.Core < pv.Lambda || pv.Lambda < pv.Kappa {
			t.Fatalf("vertex %d violates core >= λ >= κ: %+v", pv.Vertex, pv)
		}
	}
	if v := gp.PerVertex[0]; v.Core != 3 || v.Lambda != 3 || v.Kappa != 2 {
		t.Fatalf("gadget vertex 0 profile = %+v, want core=3 λ=3 κ=2", v)
	}
	if v := gp.PerVertex[4]; v.Core != 3 || v.Lambda != 3 || v.Kappa != 3 {
		t.Fatalf("gadget vertex 4 profile = %+v, want core=3 λ=3 κ=3", v)
	}
}

// lambdaKappaGadget builds the smallest natural graph this suite has
// where a vertex's λ exceeds its κ: a K5 on {2..6} missing the 2–3 edge,
// with vertices 0 and 1 each attached to {2, 3} and to each other. The
// graph is 3-edge-connected (every cut has >= 3 edges), so its single
// 3-ECC holds every vertex; but any 3-connected subgraph containing
// vertex 0 would need all of {1, 2, 3}, and removing {2, 3} always
// separates {0, 1} — so vertex 0 tops out at the 2-VCC level.
func lambdaKappaGadget() *graph.Graph {
	b := graph.NewBuilder(7)
	core5 := []int64{2, 3, 4, 5, 6}
	for i := 0; i < len(core5); i++ {
		for j := i + 1; j < len(core5); j++ {
			if core5[i] == 2 && core5[j] == 3 {
				continue
			}
			b.AddEdge(core5[i], core5[j])
		}
	}
	for _, e := range [][2]int64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// TestProfileValidation covers the request-side error paths.
func TestProfileValidation(t *testing.T) {
	s := testServer(Config{})
	ctx := context.Background()

	if _, err := s.Profile(ctx, ProfileRequest{Graph: "missing"}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: err = %v, want ErrUnknownGraph", err)
	}
	tooMany := make([]int64, maxCohesionVertices+1)
	if _, err := s.Profile(ctx, ProfileRequest{Graph: "fig2", Vertices: tooMany}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized vertex list: err = %v, want ErrBadRequest", err)
	}
}

// TestProfileHTTP drives the endpoint through the real handler and the
// Go client, including the query-parameter error paths.
func TestProfileHTTP(t *testing.T) {
	s := testServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	p, err := c.Profile(ctx, ProfileRequest{Graph: "fig2", Vertices: []int64{3}, TimeoutMillis: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if p.Degeneracy != 4 || len(p.PerVertex) != 1 || p.PerVertex[0].Kappa != 4 {
		t.Fatalf("profile over HTTP = %+v", p)
	}

	for _, bad := range []string{
		ts.URL + GraphProfilePath("fig2") + "?vertices=1,foo",
		ts.URL + GraphProfilePath("fig2") + "?timeout_ms=-1",
		ts.URL + GraphProfilePath("fig2") + "?timeout_ms=abc",
	} {
		resp, err := http.Get(bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + GraphProfilePath("missing"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing graph: status %d, want 404", resp.StatusCode)
	}
}
