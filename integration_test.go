package kvcc_test

import (
	"testing"

	"kvcc"
	"kvcc/internal/dataset"
)

// Full-dataset integration: enumerate every stand-in at a moderate scale
// and validate every structural guarantee of every result. Guarded by
// -short because it runs the whole pipeline end to end.
func TestDatasetEnumerationValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test; run without -short")
	}
	for _, name := range dataset.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := dataset.MustLoad(name, 0.1)
			for _, k := range []int{8, 20} {
				res, err := kvcc.Enumerate(g, k)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if err := kvcc.Validate(g, res); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if res.Stats.CutFallbacks != 0 {
					t.Fatalf("k=%d: certificate fallback fired %d times",
						k, res.Stats.CutFallbacks)
				}
			}
		})
	}
}

// The four variants agree on every dataset stand-in (component count and
// sizes), complementing the exact-equality checks on smaller graphs.
func TestDatasetVariantsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test; run without -short")
	}
	for _, name := range []string{"DBLP", "Cnr"} {
		g := dataset.MustLoad(name, 0.1)
		const k = 15
		var sizes []int
		for _, algo := range []kvcc.Algorithm{kvcc.VCCE, kvcc.VCCEN, kvcc.VCCEG, kvcc.VCCEStar} {
			res, err := kvcc.Enumerate(g, k, kvcc.WithAlgorithm(algo))
			if err != nil {
				t.Fatal(err)
			}
			var cur []int
			for _, c := range res.Components {
				cur = append(cur, c.NumVertices())
			}
			if sizes == nil {
				sizes = cur
				continue
			}
			if len(cur) != len(sizes) {
				t.Fatalf("%s %v: %d components, want %d", name, algo, len(cur), len(sizes))
			}
			for i := range cur {
				if cur[i] != sizes[i] {
					t.Fatalf("%s %v: component %d size %d, want %d",
						name, algo, i, cur[i], sizes[i])
				}
			}
		}
	}
}
