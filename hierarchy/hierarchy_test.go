package hierarchy

import (
	"context"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"kvcc/gen"
	"kvcc/graph"
	"kvcc/internal/core"
)

// twoK4sSharedVertex: two K4s joined at one vertex. Level 1: everything;
// levels 2-3: the two K4s; level 4+: empty.
func twoK4sSharedVertex() *graph.Graph {
	var edges [][2]int
	for _, c := range [][]int{{0, 1, 2, 3}, {3, 4, 5, 6}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				edges = append(edges, [2]int{c[i], c[j]})
			}
		}
	}
	return graph.FromEdges(7, edges)
}

func TestBuildKnownShape(t *testing.T) {
	tree, err := Build(twoK4sSharedVertex(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.MaxK != 3 {
		t.Fatalf("MaxK = %d, want 3 (K4 is 3-connected)", tree.MaxK)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Component.NumVertices() != 7 {
		t.Fatalf("roots = %d", len(tree.Roots))
	}
	l2 := tree.Level(2)
	if len(l2) != 2 || l2[0].Component.NumVertices() != 4 {
		t.Fatalf("level 2 = %d nodes", len(l2))
	}
	l3 := tree.Level(3)
	if len(l3) != 2 {
		t.Fatalf("level 3 = %d nodes", len(l3))
	}
	if len(tree.Level(4)) != 0 {
		t.Fatal("level 4 must be empty")
	}
	if tree.Size() != 5 {
		t.Fatalf("size = %d, want 5", tree.Size())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("nil graph must error")
	}
	if _, err := Build(twoK4sSharedVertex(), Options{MaxK: -1}); err == nil {
		t.Fatal("negative MaxK must error")
	}
}

func TestBuildMaxKStops(t *testing.T) {
	tree, err := Build(twoK4sSharedVertex(), Options{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.MaxK != 2 {
		t.Fatalf("MaxK = %d, want 2", tree.MaxK)
	}
	if len(tree.Level(3)) != 0 {
		t.Fatal("level 3 must be absent with MaxK 2")
	}
}

func TestCohesionAndPath(t *testing.T) {
	g := twoK4sSharedVertex()
	tree, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every K4 member has cohesion 3; an absent label has 0.
	for _, l := range []int64{0, 3, 6} {
		if c := tree.Cohesion(l); c != 3 {
			t.Fatalf("cohesion(%d) = %d, want 3", l, c)
		}
	}
	if c := tree.Cohesion(99); c != 0 {
		t.Fatalf("cohesion(absent) = %d", c)
	}
	path := tree.Path(0)
	if len(path) != 3 {
		t.Fatalf("path = %d nodes, want 3 (k=1,2,3)", len(path))
	}
	for i, n := range path {
		if n.K != i+1 {
			t.Fatalf("path level %d has K=%d", i, n.K)
		}
	}
}

// Level k of the hierarchy must equal a direct k-VCC enumeration of the
// whole graph — the strongest cross-check of the nested construction.
func TestLevelsMatchDirectEnumeration(t *testing.T) {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 6, MinSize: 8, MaxSize: 14, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 4,
		NoiseVertices: 60, NoiseDegree: 2, Seed: 9,
	})
	tree, err := Build(g, Options{MaxK: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 8; k++ {
		direct, _, err := core.Enumerate(g, k, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		level := tree.Level(k)
		if len(level) != len(direct) {
			t.Fatalf("k=%d: hierarchy has %d components, direct %d",
				k, len(level), len(direct))
		}
		want := map[string]bool{}
		for _, c := range direct {
			want[signature(c)] = true
		}
		for _, n := range level {
			if !want[signature(n.Component)] {
				t.Fatalf("k=%d: hierarchy component not in direct enumeration", k)
			}
		}
	}
}

func signature(g *graph.Graph) string {
	labels := append([]int64(nil), g.Labels()...)
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(",")
		sb.WriteString(strconv.FormatInt(l, 10))
	}
	return sb.String()
}

func TestChildrenNestInParents(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var edges [][2]int
	n := 60
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{rng.Intn(i), i})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	g := graph.FromEdges(n, edges)
	tree, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(node *Node)
	walk = func(node *Node) {
		parent := map[int64]bool{}
		for _, l := range node.Component.Labels() {
			parent[l] = true
		}
		for _, c := range node.Children {
			if c.K != node.K+1 {
				t.Fatalf("child level %d under parent level %d", c.K, node.K)
			}
			for _, l := range c.Component.Labels() {
				if !parent[l] {
					t.Fatalf("child vertex %d not in parent", l)
				}
			}
			walk(c)
		}
	}
	for _, r := range tree.Roots {
		walk(r)
	}
}

// The incremental build must do strictly less enumeration work than the
// per-level-from-scratch baseline, which passes the full graph to every
// level: baseline work = levels x |V| enumerated vertices.
func TestIncrementalBuildEnumeratesFewerVertices(t *testing.T) {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 6, MinSize: 8, MaxSize: 14, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 4,
		NoiseVertices: 60, NoiseDegree: 2, Seed: 9,
	})
	tree, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := int64(tree.Stats.Levels) * int64(g.NumVertices())
	if tree.Stats.EnumeratedVertices >= baseline {
		t.Fatalf("incremental build enumerated %d vertices, baseline %d (levels=%d, n=%d)",
			tree.Stats.EnumeratedVertices, baseline, tree.Stats.Levels, g.NumVertices())
	}
	// The per-level breakdown must sum to the total and match Level sizes.
	var sum int64
	for _, lvl := range tree.Stats.PerLevel {
		sum += lvl.EnumeratedVertices
		if lvl.K <= tree.MaxK && lvl.Components != len(tree.Level(lvl.K)) {
			t.Fatalf("level %d stats report %d components, tree has %d",
				lvl.K, lvl.Components, len(tree.Level(lvl.K)))
		}
	}
	if sum != tree.Stats.EnumeratedVertices {
		t.Fatalf("per-level sum %d != total %d", sum, tree.Stats.EnumeratedVertices)
	}
}

// Parallel sibling enumeration must produce the identical tree.
func TestParallelBuildMatchesSerial(t *testing.T) {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 8, MinSize: 8, MaxSize: 16, IntraProb: 0.8,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 6,
		NoiseVertices: 80, NoiseDegree: 2, Seed: 17,
	})
	serial, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Build(g, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.MaxK != parallel.MaxK || serial.Size() != parallel.Size() {
		t.Fatalf("serial MaxK=%d size=%d, parallel MaxK=%d size=%d",
			serial.MaxK, serial.Size(), parallel.MaxK, parallel.Size())
	}
	for k := 1; k <= serial.MaxK; k++ {
		a, b := serial.Level(k), parallel.Level(k)
		if len(a) != len(b) {
			t.Fatalf("k=%d: serial %d components, parallel %d", k, len(a), len(b))
		}
		for i := range a {
			if signature(a[i].Component) != signature(b[i].Component) {
				t.Fatalf("k=%d component %d differs between serial and parallel", k, i)
			}
		}
	}
}

func TestBuildContextCancel(t *testing.T) {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 6, MinSize: 10, MaxSize: 16, IntraProb: 0.8,
		ChainOverlap: 2, ChainEvery: 2, Seed: 3,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, g, Options{}); err == nil {
		t.Fatal("cancelled build must return an error")
	}
}

// LevelComponents must be exactly what a direct enumeration returns,
// including the canonical order — the property the server's index-served
// responses rely on for byte-equality with cache-served ones.
func TestLevelComponentsCanonicalOrder(t *testing.T) {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 5, MinSize: 8, MaxSize: 12, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 3,
		NoiseVertices: 40, NoiseDegree: 2, Seed: 21,
	})
	tree, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= tree.MaxK+1; k++ {
		direct, _, err := core.Enumerate(g, k, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		level := tree.LevelComponents(k)
		if len(level) != len(direct) {
			t.Fatalf("k=%d: index %d components, direct %d", k, len(level), len(direct))
		}
		for i := range level {
			if signature(level[i]) != signature(direct[i]) {
				t.Fatalf("k=%d: component %d out of canonical order", k, i)
			}
		}
	}
}

func TestCovers(t *testing.T) {
	g := twoK4sSharedVertex()
	full, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 4, 100} {
		if !full.Covers(k) {
			t.Fatalf("complete tree must cover k=%d", k)
		}
	}
	if full.Covers(0) {
		t.Fatal("k=0 is never covered")
	}
	truncated, err := Build(g, Options{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !truncated.Covers(2) || truncated.Covers(3) {
		t.Fatalf("MaxK=2 tree: Covers(2)=%v Covers(3)=%v, want true/false",
			truncated.Covers(2), truncated.Covers(3))
	}
	// MaxK above the natural depth still yields a complete tree.
	deep, err := Build(g, Options{MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !deep.Covers(10) || !deep.Covers(50) {
		t.Fatal("tree that exhausted below MaxK must cover every k")
	}
}

// A K4 and a larger 5-cycle sharing one vertex: at level 2 the cycle is
// the bigger component, but only the K4 branch reaches level 3. Path must
// follow the branch that reaches the vertex's cohesion level, not greedily
// descend into the largest component per level (regression: the greedy
// walk returned a 2-step path for a cohesion-3 vertex).
func TestPathReachesCohesionLevel(t *testing.T) {
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, // 5-cycle through 0
		{0, 5}, {0, 6}, {0, 7}, {5, 6}, {5, 7}, {6, 7}, // K4 {0,5,6,7}
	}
	tree, err := Build(graph.FromEdges(8, edges), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c := tree.Cohesion(0); c != 3 {
		t.Fatalf("cohesion(0) = %d, want 3", c)
	}
	path := tree.Path(0)
	if len(path) != 3 {
		t.Fatalf("path(0) has %d steps, want 3", len(path))
	}
	for i, n := range path {
		if n.K != i+1 {
			t.Fatalf("path step %d has K=%d", i, n.K)
		}
		if i > 0 && n.Parent != path[i-1] {
			t.Fatalf("path step %d not a child of step %d", i, i-1)
		}
	}
	if path[2].Component.NumVertices() != 4 {
		t.Fatalf("deepest step has %d vertices, want the K4", path[2].Component.NumVertices())
	}
}

func TestWriteOutline(t *testing.T) {
	tree, err := Build(twoK4sSharedVertex(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tree.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1-VCC: 7 vertices") {
		t.Fatalf("missing root line:\n%s", out)
	}
	if strings.Count(out, "3-VCC") != 2 {
		t.Fatalf("expected two 3-VCC lines:\n%s", out)
	}
}

func TestEmptyGraph(t *testing.T) {
	tree, err := Build(graph.FromEdges(0, nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Roots) != 0 || tree.MaxK != 0 || tree.Size() != 0 {
		t.Fatalf("empty graph tree: %+v", tree)
	}
}
