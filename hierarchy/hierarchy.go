package hierarchy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"kvcc/cohesion"
	"kvcc/graph"
	"kvcc/internal/core"
)

// Node is one component of the hierarchy: a k-VCC at level K and the
// (K+1)-VCCs nested inside it.
type Node struct {
	// K is the connectivity level (the component is a K-VCC).
	K int
	// Component is the subgraph, with vertex labels from the input graph.
	Component *graph.Graph
	// Children are the (K+1)-VCCs contained in this component, in the
	// canonical enumeration order (largest first, ties by labels).
	Children []*Node
	// Parent is the (K-1)-VCC this component nests in (nil for roots).
	Parent *Node
}

// Tree is the full hierarchy: an index of every k-VCC for every k.
//
// A Tree is immutable once Build returns; all query methods are safe for
// concurrent use.
type Tree struct {
	// Roots are the 1-VCCs: connected components with at least two
	// vertices, in canonical order.
	Roots []*Node
	// MaxK is the deepest level with at least one component.
	MaxK int
	// BuiltMaxK is the Options.MaxK the tree was built with (0 = the tree
	// is complete: it was built until a level came up empty, so Level(k)
	// is exact for every k).
	BuiltMaxK int
	// Measure is the cohesion measure the tree indexes. The zero value is
	// cohesion.KVCC, so trees built (or persisted) before the measure
	// existed read back as k-VCC hierarchies.
	Measure cohesion.Measure
	// Stats describes the enumeration work performed by Build.
	Stats Stats

	// levels[k-1] holds the level-k nodes in canonical order; byLabel maps
	// a vertex label to every node containing it, shallowest level first.
	levels  [][]*Node
	byLabel map[int64][]*Node
}

// LevelStats describes the enumeration work at one level of the build.
type LevelStats struct {
	// K is the level the work produced.
	K int `json:"k"`
	// Components is the number of K-VCCs found.
	Components int `json:"components"`
	// EnumeratedVertices is the total vertex count of the subgraphs
	// enumerated to produce this level. For the incremental build this is
	// the total size of the (K-1)-VCCs, not the size of the input graph.
	EnumeratedVertices int64 `json:"enumerated_vertices"`
	// Core aggregates the core enumeration counters for this level.
	Core core.Stats `json:"core"`
}

// Stats describes the total work performed by Build. The headline number
// is EnumeratedVertices: the incremental build enumerates level k+1 only
// inside each level-k component (nesting property, Lemma 1 of the paper),
// so the total is strictly below the per-level-from-scratch baseline of
// levels x |V| whenever the hierarchy narrows.
type Stats struct {
	// Levels is the number of levels enumeration ran at, including the
	// final level that came up empty (when the build ran to exhaustion).
	Levels int `json:"levels"`
	// EnumeratedVertices sums, over every core.Enumerate call the build
	// made, the vertex count of the subgraph passed in.
	EnumeratedVertices int64 `json:"enumerated_vertices"`
	// PerLevel breaks the work down by level.
	PerLevel []LevelStats `json:"per_level"`
	// Core aggregates the core enumeration counters across all levels.
	Core core.Stats `json:"core"`
}

// Options configures Build.
type Options struct {
	// MaxK stops the hierarchy at this level (0 = continue until a level
	// is empty; termination is guaranteed because κ of any component is
	// bounded by its degeneracy).
	MaxK int
	// Measure selects the cohesion measure the hierarchy indexes (default
	// cohesion.KVCC). The incremental nested build is valid for every
	// measure: k-cores, k-ECCs and k-VCCs all nest level-over-level, so
	// level k+1 is always found inside the level-k components.
	Measure cohesion.Measure
	// Algorithm selects the enumeration variant (default VCCEStar).
	Algorithm core.Algorithm
	// Parallelism enumerates sibling components of one level with this
	// many workers (values below 2 select the deterministic serial loop;
	// the result is identical either way because siblings are
	// independent subproblems and each level is re-canonicalized).
	Parallelism int
	// FlowEngine selects the max-flow engine behind the per-level
	// enumerations (default core.FlowAuto). All engines return identical
	// results, so this is purely a performance knob.
	FlowEngine core.FlowEngine
	// Seed seeds the randomized LocalVC engine (0 = fixed default).
	// Seeds never change results, only the engine's work profile.
	Seed uint64
}

// Build computes the cohesion hierarchy of g in one incremental pass:
// level 1 is enumerated from g, and every level k+1 is enumerated only
// inside each level-k component's subgraph. By the nesting property every
// (k+1)-VCC lies inside some k-VCC, so the result is identical to
// enumerating each level from scratch while touching far fewer vertices.
func Build(g *graph.Graph, opts Options) (*Tree, error) {
	return BuildContext(context.Background(), g, opts)
}

// BuildContext is Build with cancellation: the per-level enumerations
// check ctx and the build returns ctx.Err() once the running level
// finishes cancelling.
func BuildContext(ctx context.Context, g *graph.Graph, opts Options) (*Tree, error) {
	if g == nil {
		return nil, errors.New("hierarchy: nil graph")
	}
	if opts.MaxK < 0 {
		return nil, fmt.Errorf("hierarchy: negative MaxK %d", opts.MaxK)
	}
	coreOpts := core.Options{
		Algorithm:  opts.Algorithm,
		FlowEngine: opts.FlowEngine,
		Seed:       opts.Seed,
	}

	tree := &Tree{BuiltMaxK: opts.MaxK, Measure: opts.Measure}
	frontier := []*Node{{Component: g}} // pseudo-parent for level 1
	for k := 1; len(frontier) > 0 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		next, lvl, err := buildLevel(ctx, frontier, k, opts.Measure, coreOpts, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		tree.Stats.Levels++
		tree.Stats.EnumeratedVertices += lvl.EnumeratedVertices
		tree.Stats.PerLevel = append(tree.Stats.PerLevel, lvl)
		tree.Stats.Core.Add(&lvl.Core)
		if len(next) == 0 {
			break
		}
		tree.MaxK = k
		if k == 1 {
			tree.Roots = next
		}
		tree.levels = append(tree.levels, next)
		frontier = next
	}
	tree.buildLabelIndex()
	return tree, nil
}

// buildLevel enumerates the level-k components of the chosen measure
// inside every frontier component, optionally in parallel across siblings,
// and returns the new level in canonical order with parent/child links
// installed.
func buildLevel(ctx context.Context, frontier []*Node, k int, m cohesion.Measure, coreOpts core.Options, workers int) ([]*Node, LevelStats, error) {
	lvl := LevelStats{K: k}
	type result struct {
		comps []*graph.Graph
		stats *core.Stats
		err   error
	}
	results := make([]result, len(frontier))

	if workers >= 2 && len(frontier) > 1 {
		if workers > len(frontier) {
			workers = len(frontier)
		}
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					comps, st, err := cohesion.EnumerateContext(ctx, frontier[i].Component, k, m, coreOpts)
					results[i] = result{comps, st, err}
				}
			}()
		}
		for i := range frontier {
			work <- i
		}
		close(work)
		wg.Wait()
	} else {
		for i, parent := range frontier {
			comps, st, err := cohesion.EnumerateContext(ctx, parent.Component, k, m, coreOpts)
			results[i] = result{comps, st, err}
			if err != nil {
				break
			}
		}
	}

	var level []*Node
	for i, parent := range frontier {
		r := results[i]
		if r.err != nil {
			return nil, lvl, r.err
		}
		if r.stats == nil {
			continue // serial loop stopped early on a prior error
		}
		lvl.EnumeratedVertices += int64(parent.Component.NumVertices())
		lvl.Core.Add(r.stats)
		for _, c := range r.comps {
			child := &Node{K: k, Component: c}
			if k > 1 { // level 1's pseudo-parent is not part of the tree
				child.Parent = parent
				parent.Children = append(parent.Children, child)
			}
			level = append(level, child)
		}
	}
	sortNodes(level)
	lvl.Components = len(level)
	return level, lvl, nil
}

// sortNodes puts nodes in the canonical component order of
// core.SortComponents: largest first, ties by sorted label sequence.
func sortNodes(nodes []*Node) {
	keys := make([][]int64, len(nodes))
	for i, n := range nodes {
		keys[i] = core.SortedLabels(n.Component)
	}
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return core.LabelsLess(keys[order[i]], keys[order[j]])
	})
	sorted := make([]*Node, len(nodes))
	for i, idx := range order {
		sorted[i] = nodes[idx]
	}
	copy(nodes, sorted)
}

// buildLabelIndex materializes the label → nodes map that makes Cohesion
// and Path O(nodes containing the label) instead of O(V x levels).
func (t *Tree) buildLabelIndex() {
	t.byLabel = make(map[int64][]*Node)
	for _, level := range t.levels {
		for _, n := range level {
			for _, l := range n.Component.Labels() {
				t.byLabel[l] = append(t.byLabel[l], n)
			}
		}
	}
}

// Level returns all components at level k in canonical order (largest
// first, ties by labels) — the same order core.Enumerate returns. The
// returned slice is freshly allocated; the nodes are shared with the tree.
func (t *Tree) Level(k int) []*Node {
	if k < 1 || k > len(t.levels) {
		return nil
	}
	return append([]*Node(nil), t.levels[k-1]...)
}

// LevelComponents returns the component subgraphs at level k in canonical
// order; the result is exactly what core.Enumerate(g, k) would return.
// Beyond the built depth it returns nil, which is exact when the tree is
// complete (BuiltMaxK 0): levels past MaxK are empty.
func (t *Tree) LevelComponents(k int) []*graph.Graph {
	if k < 1 || k > len(t.levels) {
		return nil
	}
	comps := make([]*graph.Graph, len(t.levels[k-1]))
	for i, n := range t.levels[k-1] {
		comps[i] = n.Component
	}
	return comps
}

// Covers reports whether Level(k) is exact: either k is within the built
// depth, or the tree is complete so every deeper level is known empty. A
// tree truncated by MaxK cannot answer for levels beyond it.
func (t *Tree) Covers(k int) bool {
	if k < 1 {
		return false
	}
	if k <= t.MaxK {
		return true
	}
	return t.BuiltMaxK == 0 || t.MaxK < t.BuiltMaxK
}

// Cohesion returns the structural cohesion of a vertex: the deepest level
// k at which some k-VCC contains the label, or 0 if the vertex is in no
// component (isolated or absent). It is a single map lookup.
func (t *Tree) Cohesion(label int64) int {
	nodes := t.byLabel[label]
	if len(nodes) == 0 {
		return 0
	}
	return nodes[len(nodes)-1].K // byLabel is ordered shallowest first
}

// Path returns the chain of components containing the label, one per
// level, from level 1 down to the vertex's cohesion level — the chain
// always reaches that level. When the vertex sits in several k-VCCs at
// its cohesion level the first (largest) one is chosen and the chain is
// that component's ancestor line. (A greedy top-down walk would not do:
// descending into the largest component at every level can strand the
// path in a branch whose sub-hierarchy ends above the vertex's true
// cohesion.)
func (t *Tree) Path(label int64) []*Node {
	nodes := t.byLabel[label]
	if len(nodes) == 0 {
		return nil
	}
	// byLabel is ordered shallowest level first and canonically within a
	// level, so the first node at the deepest level is the canonical pick.
	deepest := nodes[len(nodes)-1]
	for i := len(nodes) - 2; i >= 0 && nodes[i].K == deepest.K; i-- {
		deepest = nodes[i]
	}
	path := make([]*Node, deepest.K)
	for n := deepest; n != nil; n = n.Parent {
		path[n.K-1] = n
	}
	return path
}

// Size returns the total number of components in the hierarchy.
func (t *Tree) Size() int {
	count := 0
	for _, level := range t.levels {
		count += len(level)
	}
	return count
}

// Write renders the hierarchy as an indented outline.
func (t *Tree) Write(w io.Writer) error {
	var walk func(n *Node, depth int) error
	walk = func(n *Node, depth int) error {
		_, err := fmt.Fprintf(w, "%s%d-VCC: %d vertices, %d edges\n",
			strings.Repeat("  ", depth), n.K,
			n.Component.NumVertices(), n.Component.NumEdges())
		if err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range t.Roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}
