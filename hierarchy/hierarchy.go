package hierarchy

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"kvcc/graph"
	"kvcc/internal/core"
)

// Node is one component of the hierarchy: a k-VCC at level K and the
// (K+1)-VCCs nested inside it.
type Node struct {
	// K is the connectivity level (the component is a K-VCC).
	K int
	// Component is the subgraph, with vertex labels from the input graph.
	Component *graph.Graph
	// Children are the (K+1)-VCCs contained in this component, largest
	// first.
	Children []*Node
}

// Tree is the full hierarchy.
type Tree struct {
	// Roots are the 1-VCCs: connected components with at least two
	// vertices.
	Roots []*Node
	// MaxK is the deepest level with at least one component.
	MaxK int
}

// Options configures Build.
type Options struct {
	// MaxK stops the hierarchy at this level (0 = continue until a level
	// is empty; termination is guaranteed because κ of any component is
	// bounded by its degeneracy).
	MaxK int
	// Algorithm selects the enumeration variant (default VCCEStar).
	Algorithm core.Algorithm
}

// Build computes the cohesion hierarchy of g.
func Build(g *graph.Graph, opts Options) (*Tree, error) {
	if g == nil {
		return nil, errors.New("hierarchy: nil graph")
	}
	if opts.MaxK < 0 {
		return nil, fmt.Errorf("hierarchy: negative MaxK %d", opts.MaxK)
	}
	coreOpts := core.Options{Algorithm: opts.Algorithm}

	level1, _, err := core.Enumerate(g, 1, coreOpts)
	if err != nil {
		return nil, err
	}
	tree := &Tree{}
	for _, c := range level1 {
		tree.Roots = append(tree.Roots, &Node{K: 1, Component: c})
	}
	if len(tree.Roots) > 0 {
		tree.MaxK = 1
	}
	frontier := tree.Roots
	for k := 2; len(frontier) > 0 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		var next []*Node
		for _, parent := range frontier {
			comps, _, err := core.Enumerate(parent.Component, k, coreOpts)
			if err != nil {
				return nil, err
			}
			for _, c := range comps {
				child := &Node{K: k, Component: c}
				parent.Children = append(parent.Children, child)
				next = append(next, child)
			}
		}
		if len(next) > 0 {
			tree.MaxK = k
		}
		frontier = next
	}
	return tree, nil
}

// Level returns all components at level k, largest first.
func (t *Tree) Level(k int) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.K == k {
			out = append(out, n)
			return // deeper nodes have higher K
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Component.NumVertices() > out[j].Component.NumVertices()
	})
	return out
}

// Cohesion returns the structural cohesion of a vertex: the deepest level
// k at which some k-VCC contains the label, or 0 if the vertex is in no
// component (isolated or absent).
func (t *Tree) Cohesion(label int64) int {
	best := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if !contains(n.Component, label) {
			return
		}
		if n.K > best {
			best = n.K
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return best
}

// Path returns the chain of components containing the label, one per
// level, from level 1 down to the vertex's cohesion level. Vertices in
// multiple k-VCCs at some level contribute the first (largest) one.
func (t *Tree) Path(label int64) []*Node {
	var path []*Node
	nodes := t.Roots
	for len(nodes) > 0 {
		var found *Node
		for _, n := range nodes {
			if contains(n.Component, label) {
				found = n
				break
			}
		}
		if found == nil {
			break
		}
		path = append(path, found)
		nodes = found.Children
	}
	return path
}

// Size returns the total number of components in the hierarchy.
func (t *Tree) Size() int {
	count := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		count++
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return count
}

// Write renders the hierarchy as an indented outline.
func (t *Tree) Write(w io.Writer) error {
	var walk func(n *Node, depth int) error
	walk = func(n *Node, depth int) error {
		_, err := fmt.Fprintf(w, "%s%d-VCC: %d vertices, %d edges\n",
			strings.Repeat("  ", depth), n.K,
			n.Component.NumVertices(), n.Component.NumEdges())
		if err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range t.Roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}

func contains(g *graph.Graph, label int64) bool {
	for _, l := range g.Labels() {
		if l == label {
			return true
		}
	}
	return false
}
