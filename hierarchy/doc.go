// Package hierarchy builds the structural cohesion hierarchy of a graph:
// the nesting tree of k-VCCs for k = 1, 2, 3, ... (Moody & White's
// hierarchical conception of social cohesion, reference [20] of the
// paper). Level k of the tree holds exactly the k-VCCs of the graph; each
// (k+1)-VCC is nested inside exactly one k-VCC, because two distinct
// k-VCCs overlap in fewer than k vertices (Property 1, Section 3) while a
// (k+1)-VCC has more than k+1 vertices.
//
// That same fact makes the construction efficient: level k+1 is computed
// by enumerating (k+1)-VCCs inside each level-k component independently
// (each call going through the same KVCC-ENUM pipeline as the kvcc
// package), optionally in parallel across siblings, so the work shrinks
// as the hierarchy deepens — Tree.Stats records exactly how much. Build
// stops at the first level with no components or at Options.MaxK.
//
// The finished Tree is an immutable serving index: Level(k) returns the
// k-VCCs in the same canonical order a direct enumeration would, and
// Cohesion/Path answer per-vertex queries from a label map in O(1)-ish
// time. The kvccd server builds one Tree per graph in the background and
// serves any-k enumeration, cohesion and batch queries from it.
package hierarchy
