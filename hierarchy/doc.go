// Package hierarchy builds the structural cohesion hierarchy of a graph:
// the nesting tree of k-VCCs for k = 1, 2, 3, ... (Moody & White's
// hierarchical conception of social cohesion, reference [20] of the
// paper). Level k of the tree holds exactly the k-VCCs of the graph; each
// (k+1)-VCC is nested inside exactly one k-VCC, because two distinct
// k-VCCs overlap in fewer than k vertices (Property 1, Section 3) while a
// (k+1)-VCC has more than k+1 vertices.
//
// That same fact makes the construction efficient: level k+1 is computed
// by enumerating (k+1)-VCCs inside each level-k component independently
// (each call going through the same KVCC-ENUM pipeline as the kvcc
// package), so the work shrinks as the hierarchy deepens. Build stops at
// the first level with no components or at Options.MaxK.
//
// The resulting Tree answers the case-study questions of Section 6.3:
// how cohesion nests, which vertices sit in the deepest cores, and how a
// community decomposes as k grows.
package hierarchy
