package hierarchy

import (
	"testing"

	"kvcc/graph"
	"kvcc/internal/core"
)

// fuzzGraph decodes a byte string into a small graph: the first byte picks
// the vertex count (2..13), every following pair of bytes is one edge.
// Self-loops and duplicates are dropped by the builder, so every input is
// valid.
func fuzzGraph(data []byte) *graph.Graph {
	if len(data) == 0 {
		return graph.FromEdges(2, nil)
	}
	n := 2 + int(data[0])%12
	var edges [][2]int
	for i := 1; i+1 < len(data); i += 2 {
		edges = append(edges, [2]int{int(data[i]) % n, int(data[i+1]) % n})
	}
	return graph.FromEdges(n, edges)
}

// FuzzHierarchyConsistency cross-checks the incremental hierarchy build
// against direct per-k enumeration on arbitrary small graphs: per-level
// label-set equality, structural nesting, and Cohesion/Path agreement with
// the enumerations.
func FuzzHierarchyConsistency(f *testing.F) {
	f.Add([]byte{7, 0, 1, 1, 2, 2, 0, 2, 3, 3, 4, 4, 2})       // triangles sharing vertices
	f.Add([]byte{5, 0, 1, 0, 2, 0, 3, 0, 4, 1, 2, 3, 4})       // star plus chords
	f.Add([]byte{9, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 0}) // cycle
	f.Add([]byte{4, 0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3})       // K4
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		tree, err := Build(g, Options{})
		if err != nil {
			t.Fatalf("build: %v", err)
		}

		// Per-level label-set equality with direct enumeration, one level
		// past MaxK to confirm the tree is complete.
		for k := 1; k <= tree.MaxK+1; k++ {
			direct, _, err := core.Enumerate(g, k, core.Options{})
			if err != nil {
				t.Fatalf("enumerate k=%d: %v", k, err)
			}
			level := tree.LevelComponents(k)
			if len(level) != len(direct) {
				t.Fatalf("k=%d: tree has %d components, direct %d", k, len(level), len(direct))
			}
			for i := range level {
				a, b := core.SortedLabels(level[i]), core.SortedLabels(direct[i])
				if len(a) != len(b) {
					t.Fatalf("k=%d component %d: size %d vs %d", k, i, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("k=%d component %d: label mismatch", k, i)
					}
				}
			}
		}

		// Structural nesting: every child is a (K+1)-VCC whose vertices all
		// lie in its parent.
		var walk func(n *Node)
		walk = func(n *Node) {
			parent := map[int64]bool{}
			for _, l := range n.Component.Labels() {
				parent[l] = true
			}
			for _, c := range n.Children {
				if c.K != n.K+1 {
					t.Fatalf("child level %d under parent level %d", c.K, n.K)
				}
				if c.Parent != n {
					t.Fatal("child's Parent pointer does not match")
				}
				for _, l := range c.Component.Labels() {
					if !parent[l] {
						t.Fatalf("child vertex %d not in parent", l)
					}
				}
				walk(c)
			}
		}
		for _, r := range tree.Roots {
			walk(r)
		}

		// Cohesion must equal the deepest level whose enumeration contains
		// the label, and Path must be the chain 1..Cohesion with every step
		// containing the label and chained by Parent links.
		for v := 0; v < g.NumVertices(); v++ {
			label := g.Label(v)
			want := 0
			for k := 1; k <= tree.MaxK; k++ {
				for _, c := range tree.LevelComponents(k) {
					if containsLabel(c, label) {
						want = k
						break
					}
				}
			}
			if got := tree.Cohesion(label); got != want {
				t.Fatalf("cohesion(%d) = %d, want %d", label, got, want)
			}
			path := tree.Path(label)
			if len(path) != want {
				t.Fatalf("path(%d) has %d steps, cohesion is %d", label, len(path), want)
			}
			for i, n := range path {
				if n.K != i+1 {
					t.Fatalf("path(%d) step %d has K=%d", label, i, n.K)
				}
				if !containsLabel(n.Component, label) {
					t.Fatalf("path(%d) step %d does not contain the label", label, i)
				}
				if i > 0 && n.Parent != path[i-1] {
					t.Fatalf("path(%d) step %d is not a child of step %d", label, i, i-1)
				}
			}
		}
	})
}

func containsLabel(g *graph.Graph, label int64) bool {
	for _, l := range g.Labels() {
		if l == label {
			return true
		}
	}
	return false
}
