package hierarchy_test

import (
	"fmt"

	"kvcc/graph"
	"kvcc/hierarchy"
)

// Two K4s joined at a single vertex: one 1-VCC splits into two 3-connected
// blocks at levels 2 and 3; the shared vertex has cohesion 3.
func ExampleBuild() {
	var edges [][2]int
	for _, c := range [][]int{{0, 1, 2, 3}, {3, 4, 5, 6}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				edges = append(edges, [2]int{c[i], c[j]})
			}
		}
	}
	g := graph.FromEdges(7, edges)

	tree, err := hierarchy.Build(g, hierarchy.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("levels:", tree.MaxK)
	fmt.Println("level 2 components:", len(tree.Level(2)))
	fmt.Println("cohesion of the hinge vertex:", tree.Cohesion(3))
	// Output:
	// levels: 3
	// level 2 components: 2
	// cohesion of the hinge vertex: 3
}
