package hierarchy

import (
	"testing"

	"kvcc/gen"
	"kvcc/graph"
	"kvcc/internal/core"
)

func benchGraph() *graph.Graph {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 12, MinSize: 12, MaxSize: 24, IntraProb: 0.75,
		ChainOverlap: 3, ChainEvery: 2, BridgeEdges: 8,
		NoiseVertices: 400, NoiseDegree: 3, Seed: 42,
	})
	return g
}

// BenchmarkBuildIncremental measures the one-pass hierarchy construction;
// BenchmarkBuildPerLevelScratch is the baseline it replaces (one full-graph
// enumeration per level). The incremental build should win because deeper
// levels run on ever-smaller subgraphs.
func BenchmarkBuildIncremental(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPerLevelScratch(b *testing.B) {
	g := benchGraph()
	tree, err := Build(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	levels := tree.Stats.Levels
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 1; k <= levels; k++ {
			if _, _, err := core.Enumerate(g, k, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCohesion guards the O(V x levels) -> O(1) label-scan fix: one
// lookup must stay in the tens-of-nanoseconds range regardless of tree
// size. Before the label index this walked every component's label slice.
func BenchmarkCohesion(b *testing.B) {
	g := benchGraph()
	tree, err := Build(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	labels := g.Labels()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Cohesion(labels[i%len(labels)])
	}
}

func BenchmarkPath(b *testing.B) {
	g := benchGraph()
	tree, err := Build(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	labels := g.Labels()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Path(labels[i%len(labels)])
	}
}

// BenchmarkAnyKFromTree vs BenchmarkAnyKColdEnumeration: serving an
// arbitrary level from a prebuilt tree against re-running the enumeration
// for that k — the speedup the server's hierarchy index banks on.
func BenchmarkAnyKFromTree(b *testing.B) {
	g := benchGraph()
	tree, err := Build(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 2 + i%tree.MaxK
		if tree.LevelComponents(k) == nil && tree.Covers(k) && k <= tree.MaxK {
			b.Fatal("missing level")
		}
	}
}

func BenchmarkAnyKColdEnumeration(b *testing.B) {
	g := benchGraph()
	tree, err := Build(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 2 + i%tree.MaxK
		if _, _, err := core.Enumerate(g, k, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
