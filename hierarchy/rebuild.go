package hierarchy

// FromLevels reassembles a Tree from externally reconstructed nodes —
// the deserialization entry point for the snapshot store's persisted
// index. levels[k-1] must hold the level-k nodes in canonical order with
// Parent pointers already wired (Children lists are rebuilt here, so
// callers only restore the upward links); builtMaxK and stats restore
// the build-time metadata a served index reports.
//
// The reassembled tree is indistinguishable from the Build output it was
// flattened from: the same canonical level orders, the same label index,
// the same Covers/Cohesion/Path answers.
func FromLevels(levels [][]*Node, builtMaxK int, stats Stats) *Tree {
	t := &Tree{
		BuiltMaxK: builtMaxK,
		Stats:     stats,
		levels:    levels,
		MaxK:      len(levels),
	}
	if len(levels) > 0 {
		t.Roots = levels[0]
	}
	for _, level := range levels {
		for _, n := range level {
			if n.Parent != nil {
				n.Parent.Children = append(n.Parent.Children, n)
			}
		}
	}
	t.buildLabelIndex()
	return t
}
