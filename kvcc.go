package kvcc

import (
	"context"
	"sort"
	"sync"

	"kvcc/cohesion"
	"kvcc/graph"
	"kvcc/hierarchy"
	"kvcc/internal/core"
	"kvcc/internal/incr"
	"kvcc/internal/kcore"
	"kvcc/internal/kecc"
)

// Measure selects the cohesion measure an enumeration or hierarchy build
// runs under. The zero value is MeasureKVCC.
type Measure = cohesion.Measure

// Cohesion measures, weakest to strongest: every k-VCC lies in a k-ECC,
// every k-ECC in a connected component of the k-core.
const (
	// MeasureKVCC enumerates k-vertex connected components (default).
	MeasureKVCC = cohesion.KVCC
	// MeasureKECC enumerates k-edge connected components.
	MeasureKECC = cohesion.KECC
	// MeasureKCore enumerates connected components of the k-core.
	MeasureKCore = cohesion.KCore
)

// ParseMeasure maps a wire name ("kvcc", "kecc", "kcore"; empty = kvcc)
// to a Measure.
func ParseMeasure(name string) (Measure, error) { return cohesion.ParseMeasure(name) }

// Algorithm selects one of the paper's four enumeration variants.
type Algorithm = core.Algorithm

// Algorithm variants (Section 6.2 of the paper).
const (
	// VCCE is the basic cut-based algorithm (Algorithm 2).
	VCCE = core.VCCE
	// VCCEN adds neighbor sweep (Section 5.1).
	VCCEN = core.VCCEN
	// VCCEG adds group sweep (Section 5.2).
	VCCEG = core.VCCEG
	// VCCEStar enables both sweeps (GLOBAL-CUT*, Algorithm 3). Default.
	VCCEStar = core.VCCEStar
)

// Stats reports the work performed during one enumeration.
type Stats = core.Stats

// FlowEngine selects the max-flow engine behind the LOC-CUT queries.
// Every engine returns identical enumeration results; the choice (and the
// LocalVC seed) only changes how the work is performed.
type FlowEngine = core.FlowEngine

// Flow engines.
const (
	// FlowAuto picks per component: LocalVC for small k on large
	// components, Dinic otherwise. Default.
	FlowAuto = core.FlowAuto
	// FlowDinic forces the blocking-flow engine.
	FlowDinic = core.FlowDinic
	// FlowEdmondsKarp forces the shortest-augmenting-path engine.
	FlowEdmondsKarp = core.FlowEdmondsKarp
	// FlowLocalVC forces the randomized local cut engine (deterministic
	// Dinic fallback on budget overrun).
	FlowLocalVC = core.FlowLocalVC
)

// Option configures Enumerate.
type Option func(*core.Options)

// WithAlgorithm selects the enumeration variant (default VCCEStar).
func WithAlgorithm(a Algorithm) Option {
	return func(o *core.Options) { o.Algorithm = a }
}

// WithParallelism processes independent partitioned subgraphs with the
// given number of workers (default 1: deterministic serial execution; the
// result set is identical either way).
func WithParallelism(workers int) Option {
	return func(o *core.Options) { o.Parallelism = workers }
}

// WithSSVDegreeCap skips the strong side-vertex test for vertices whose
// degree exceeds the cap. This bounds the quadratic neighborhood test on
// hub vertices and is a sound under-approximation (less pruning, same
// result). 0 disables the cap.
func WithSSVDegreeCap(cap int) Option {
	return func(o *core.Options) { o.SSVDegreeCap = cap }
}

// WithFlowEngine selects the max-flow engine behind the LOC-CUT queries
// (default FlowAuto). Purely a performance knob: results are identical
// across engines.
func WithFlowEngine(e FlowEngine) Option {
	return func(o *core.Options) { o.FlowEngine = e }
}

// WithSeed seeds the randomized LocalVC engine (0 selects a fixed
// default, so runs are reproducible with or without this option). The
// seed never changes results — LocalVC is exact — only which queries
// exhaust their local budget and fall back to Dinic.
func WithSeed(seed uint64) Option {
	return func(o *core.Options) { o.Seed = seed }
}

// Result is the output of Enumerate.
type Result struct {
	// K is the connectivity parameter the enumeration ran with.
	K int
	// Components are the k-VCCs, largest first. Vertex labels refer to the
	// input graph; overlapping components repeat labels.
	Components []*graph.Graph
	// Stats describes the work performed. For an incrementally maintained
	// result (Dynamic, EnumerateIncremental) it covers only the components
	// actually recomputed — reused components tick Stats.ComponentsReused
	// and cost nothing.
	Stats Stats
	// Version is the graph version the result was computed at: the Delta
	// version stamp for results produced by a Dynamic handle, 0 for plain
	// Enumerate calls on static graphs.
	Version uint64

	// store holds the per-component results keyed by structural
	// fingerprint. Both the cold path (EnumerateContext) and the
	// incremental path (Dynamic.ApplyEdits, EnumerateIncrementalContext)
	// populate it, and the incremental path consults the previous
	// result's store to skip every component untouched by an edit. A
	// Result assembled literally (e.g. from a hierarchy index level) has
	// no store; incremental runs against it simply recompute everything.
	store *incr.Store

	// byLabel is the label → component-indices inverted index, built
	// lazily on first membership query. Results are cached and shared
	// across concurrent server requests, so the build is guarded by a
	// sync.Once rather than recomputed (or worse, linearly scanned) per
	// request.
	indexOnce sync.Once
	byLabel   map[int64][]int
}

// labelIndex returns the inverted index from vertex label to the indices
// of the components containing it, building it on first use. Safe for
// concurrent callers.
func (r *Result) labelIndex() map[int64][]int {
	r.indexOnce.Do(func() {
		idx := make(map[int64][]int)
		for i, c := range r.Components {
			for _, l := range c.Labels() {
				if list := idx[l]; len(list) > 0 && list[len(list)-1] == i {
					continue // defensive: a component lists each label once
				}
				idx[l] = append(idx[l], i)
			}
		}
		r.byLabel = idx
	})
	return r.byLabel
}

// Enumerate computes all k-vertex connected components of g.
func Enumerate(g *graph.Graph, k int, opts ...Option) (*Result, error) {
	return EnumerateContext(context.Background(), g, k, opts...)
}

// EnumerateContext is Enumerate with cancellation: the recursion checks
// ctx between partition steps and returns ctx.Err() once it is done.
//
// Internally the enumeration runs per k-core connected component (the
// k-VCCs of a graph are the disjoint union of the k-VCCs of those
// components) and the Result retains the per-component breakdown, so a
// later EnumerateIncrementalContext against this Result pays only for the
// components an edit actually touched.
func EnumerateContext(ctx context.Context, g *graph.Graph, k int, opts ...Option) (*Result, error) {
	options := core.Options{Algorithm: core.VCCEStar}
	for _, opt := range opts {
		opt(&options)
	}
	return enumerateWithStore(ctx, g, k, options, nil)
}

// EnumerateMeasure computes all level-k components of g under the given
// cohesion measure. See EnumerateMeasureContext.
func EnumerateMeasure(g *graph.Graph, k int, m Measure, opts ...Option) (*Result, error) {
	return EnumerateMeasureContext(context.Background(), g, k, m, opts...)
}

// EnumerateMeasureContext is the measure-parametric enumeration entry
// point: MeasureKVCC takes the exact same path as EnumerateContext
// (including the per-component store that powers incremental updates),
// while MeasureKECC and MeasureKCore run their engines under the shared
// component contract — canonical ordering, ctx cancellation, Stats. The
// non-k-VCC measures produce disjoint components, so the Result's overlap
// matrix is diagonal and ComponentsContaining returns at most one index.
func EnumerateMeasureContext(ctx context.Context, g *graph.Graph, k int, m Measure, opts ...Option) (*Result, error) {
	if m == cohesion.KVCC {
		return EnumerateContext(ctx, g, k, opts...)
	}
	options := core.Options{Algorithm: core.VCCEStar}
	for _, opt := range opts {
		opt(&options)
	}
	comps, stats, err := cohesion.EnumerateContext(ctx, g, k, m, options)
	if err != nil {
		return nil, err
	}
	return &Result{K: k, Components: comps, Stats: *stats}, nil
}

// enumerateWithStore is the shared engine behind the cold and incremental
// paths: a per-component run that reuses matching components of prev (nil
// for cold) and assembles the flattened canonical Result.
func enumerateWithStore(ctx context.Context, g *graph.Graph, k int, options core.Options, prev *incr.Store) (*Result, error) {
	store, stats, err := incr.Run(ctx, g, k, options, prev)
	if err != nil {
		return nil, err
	}
	return &Result{K: k, Components: store.Flatten(), Stats: *stats, store: store}, nil
}

// BuildHierarchy computes the full cohesion hierarchy of g — every k-VCC
// for every k — in one incremental pass: level k+1 is enumerated only
// inside each level-k component (the paper's nesting property), so the
// whole family costs far less than one enumeration per k. The resulting
// tree answers Level, Cohesion and Path queries for any k without further
// enumeration. WithAlgorithm, WithParallelism, WithFlowEngine, and
// WithSeed apply; parallelism fans out across sibling components of each
// level.
func BuildHierarchy(g *graph.Graph, opts ...Option) (*hierarchy.Tree, error) {
	return BuildHierarchyContext(context.Background(), g, opts...)
}

// BuildHierarchyContext is BuildHierarchy with cancellation.
func BuildHierarchyContext(ctx context.Context, g *graph.Graph, opts ...Option) (*hierarchy.Tree, error) {
	return BuildMeasureHierarchyContext(ctx, g, cohesion.KVCC, opts...)
}

// BuildMeasureHierarchy builds the hierarchy of g under the given
// cohesion measure. See BuildMeasureHierarchyContext.
func BuildMeasureHierarchy(g *graph.Graph, m Measure, opts ...Option) (*hierarchy.Tree, error) {
	return BuildMeasureHierarchyContext(context.Background(), g, m, opts...)
}

// BuildMeasureHierarchyContext builds the measure-m hierarchy: the nested
// incremental build applies to every measure because k-cores, k-ECCs and
// k-VCCs all nest level-over-level.
func BuildMeasureHierarchyContext(ctx context.Context, g *graph.Graph, m Measure, opts ...Option) (*hierarchy.Tree, error) {
	options := core.Options{Algorithm: core.VCCEStar}
	for _, opt := range opts {
		opt(&options)
	}
	return hierarchy.BuildContext(ctx, g, hierarchy.Options{
		Measure:     m,
		Algorithm:   options.Algorithm,
		Parallelism: options.Parallelism,
		FlowEngine:  options.FlowEngine,
		Seed:        options.Seed,
	})
}

// ComponentsContaining returns the indices of the components that contain
// the vertex with the given label. By Theorem 6 a vertex belongs to fewer
// than n/2 components; in practice overlap is below k per pair
// (Property 1). Lookups hit the lazily built inverted index, so the
// serving path costs O(answer), not O(components · vertices).
func (r *Result) ComponentsContaining(label int64) []int {
	list := r.labelIndex()[label]
	if len(list) == 0 {
		return nil
	}
	return append([]int(nil), list...)
}

// OverlapMatrix returns the pairwise overlap sizes between components.
// Property 1 guarantees every off-diagonal entry is below k. The matrix is
// assembled from the inverted label index — each shared vertex contributes
// to the pairs of components containing it — so the cost is
// O(vertices · overlap²) rather than O(components² · vertices).
func (r *Result) OverlapMatrix() [][]int {
	n := len(r.Components)
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	for _, comps := range r.labelIndex() {
		for x, a := range comps {
			m[a][a]++
			for _, b := range comps[x+1:] {
				m[a][b]++
				m[b][a]++
			}
		}
	}
	return m
}

// VertexLabels returns the union of all component vertex labels, sorted.
func (r *Result) VertexLabels() []int64 {
	set := map[int64]bool{}
	for _, c := range r.Components {
		for _, l := range c.Labels() {
			set[l] = true
		}
	}
	out := make([]int64, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KCore returns the subgraph induced by all vertices of core number >= k
// (the union of the k-cores of g).
func KCore(g *graph.Graph, k int) *graph.Graph {
	reduced, _ := kcore.Reduce(g, k)
	return reduced
}

// KCoreComponents returns the connected components of the k-core, the
// "k-CC" baseline of the paper's effectiveness figures.
func KCoreComponents(g *graph.Graph, k int) []*graph.Graph {
	return kcore.Components(g, k)
}

// CoreNumbers returns the core number of every vertex of g.
func CoreNumbers(g *graph.Graph) []int {
	return kcore.CoreNumbers(g)
}

// KECC returns all k-edge connected components of g, the comparison model
// used in the paper's effectiveness evaluation.
func KECC(g *graph.Graph, k int) []*graph.Graph {
	return kecc.Enumerate(g, k)
}

// EdgeConnectivity returns λ(g), the global edge connectivity.
func EdgeConnectivity(g *graph.Graph) int {
	return kecc.EdgeConnectivity(g)
}
