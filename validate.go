package kvcc

import (
	"fmt"

	"kvcc/graph"
	"kvcc/internal/flow"
)

// Validate checks a Result against the input graph and the paper's
// structural guarantees, returning the first violation found (nil if the
// result is consistent). It is intended for downstream users who want a
// defense-in-depth check after enumeration, and for tests; the cost is a
// connectivity verification per component plus pairwise overlap counting.
//
// Checked properties:
//
//   - every component has more than k vertices (Definition 2),
//   - every component is an induced, k-vertex connected subgraph of g,
//   - components are pairwise distinct with overlap < k (Property 1,
//     Lemma 3),
//   - the number of components is below n/2 (Theorem 6).
func Validate(g *graph.Graph, res *Result) error {
	if res == nil {
		return fmt.Errorf("kvcc: nil result")
	}
	k := res.K
	if k < 1 {
		return fmt.Errorf("kvcc: result has invalid k = %d", k)
	}
	if int64(len(res.Components)) > int64(g.NumVertices())/2 {
		return fmt.Errorf("kvcc: %d components exceeds the n/2 bound (Theorem 6)", len(res.Components))
	}
	idx := g.LabelIndex()
	sets := make([]map[int64]bool, len(res.Components))
	for ci, c := range res.Components {
		if c.NumVertices() <= k {
			return fmt.Errorf("kvcc: component %d has %d <= k vertices", ci, c.NumVertices())
		}
		sets[ci] = make(map[int64]bool, c.NumVertices())
		// Induced subgraph check: labels exist in g, component edges exist
		// in g, and no g-edge between component vertices is missing.
		orig := make([]int, c.NumVertices())
		for v := 0; v < c.NumVertices(); v++ {
			l := c.Label(v)
			if sets[ci][l] {
				return fmt.Errorf("kvcc: component %d repeats label %d", ci, l)
			}
			sets[ci][l] = true
			ov, ok := idx[l]
			if !ok {
				return fmt.Errorf("kvcc: component %d has label %d absent from the input", ci, l)
			}
			orig[v] = ov
		}
		for u := 0; u < c.NumVertices(); u++ {
			for _, v := range c.Neighbors(u) {
				if u < v && !g.HasEdge(orig[u], orig[v]) {
					return fmt.Errorf("kvcc: component %d edge (%d,%d) not in the input",
						ci, c.Label(u), c.Label(v))
				}
			}
		}
		for i := 0; i < len(orig); i++ {
			for j := i + 1; j < len(orig); j++ {
				if g.HasEdge(orig[i], orig[j]) && !c.HasEdge(i, j) {
					return fmt.Errorf("kvcc: component %d misses induced edge (%d,%d)",
						ci, c.Label(i), c.Label(j))
				}
			}
		}
		if kappa, _ := flow.GlobalVertexConnectivity(c, k); kappa < k {
			return fmt.Errorf("kvcc: component %d has connectivity %d < k", ci, kappa)
		}
	}
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			shared := 0
			for l := range sets[j] {
				if sets[i][l] {
					shared++
				}
			}
			if shared >= k {
				return fmt.Errorf("kvcc: components %d and %d overlap in %d >= k vertices (Property 1)",
					i, j, shared)
			}
			if shared == len(sets[i]) || shared == len(sets[j]) {
				return fmt.Errorf("kvcc: components %d and %d are nested (Lemma 3)", i, j)
			}
		}
	}
	return nil
}
