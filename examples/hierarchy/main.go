// Hierarchy: sweep k from 2 upwards on one graph and watch the k-VCC
// decomposition refine: components shrink, split, and disappear as the
// connectivity requirement tightens, while every k-VCC stays nested inside
// a (k-1)-VCC. Also checks the paper's Theorem 2 diameter bound
// diam <= (n-2)/κ + 1 on every component.
package main

import (
	"fmt"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
	"kvcc/metrics"
)

func main() {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 15, MinSize: 10, MaxSize: 30, IntraProb: 0.8,
		ChainOverlap: 3, ChainEvery: 3, BridgeEdges: 10,
		NoiseVertices: 500, NoiseDegree: 3, Seed: 77,
	})
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("%4s %8s %10s %10s %12s %14s\n",
		"k", "#k-VCC", "avg size", "max size", "avg diam", "diam bound ok")

	var prev *kvcc.Result
	for k := 2; k <= 16; k += 2 {
		res, err := kvcc.Enumerate(g, k)
		if err != nil {
			panic(err)
		}
		avg := metrics.Average(res.Components)
		maxSize := 0
		boundOK := true
		for _, c := range res.Components {
			if c.NumVertices() > maxSize {
				maxSize = c.NumVertices()
			}
			// Theorem 2: diam(G_i) <= (|V|-2)/κ + 1 with κ >= k.
			bound := (c.NumVertices()-2)/k + 1
			if d := metrics.Diameter(c); d > bound {
				boundOK = false
			}
		}
		fmt.Printf("%4d %8d %10.1f %10d %12.2f %14v\n",
			k, len(res.Components), avg.AvgSize, maxSize, avg.AvgDiameter, boundOK)

		if prev != nil {
			nested := 0
			for _, c := range res.Components {
				if isNested(c.Labels(), prev.Components) {
					nested++
				}
			}
			if nested != len(res.Components) {
				fmt.Printf("     WARNING: %d/%d components not nested in previous level\n",
					nested, len(res.Components))
			}
		}
		prev = res
	}
	fmt.Println("\nEvery k-VCC is nested inside a (k-2)-VCC of the previous level,")
	fmt.Println("forming a connectivity hierarchy usable for multi-resolution clustering.")
}

func isNested(labels []int64, parents []*graph.Graph) bool {
	for _, p := range parents {
		set := map[int64]bool{}
		for _, l := range p.Labels() {
			set[l] = true
		}
		all := true
		for _, l := range labels {
			if !set[l] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
