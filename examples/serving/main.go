// Serving walkthrough: run the kvccd enumeration service in-process,
// query it through the Go client, and watch the result cache turn an
// expensive enumeration into a sub-millisecond lookup.
//
// The same flow works against a standalone daemon:
//
//	go run ./cmd/kvccd -demo -addr :7474
//	curl -s localhost:7474/api/v1/enumerate \
//	     -d '{"graph":"demo","k":5}' | head
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"kvcc/gen"
	"kvcc/server"
)

func main() {
	// A planted-community graph: eight dense blocks chained by 2-vertex
	// overlaps, plus noise. k = 5 recovers the blocks; the 2-vertex
	// overlaps survive in the results because k-VCCs may share up to k-1
	// vertices (Property 1 of the paper).
	g, communities := gen.Planted(gen.PlantedConfig{
		Communities: 8, MinSize: 12, MaxSize: 20, IntraProb: 0.7,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 6,
		NoiseVertices: 120, NoiseDegree: 3, Seed: 1,
	})
	fmt.Printf("graph: %d vertices, %d edges, %d planted communities\n\n",
		g.NumVertices(), g.NumEdges(), len(communities))

	// Start the service on an ephemeral port, exactly as cmd/kvccd does.
	srv := server.New(server.Config{CacheSize: 32})
	srv.AddGraph("demo", g)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	go httpServer.Serve(ln)
	defer httpServer.Close()

	client := server.NewClient("http://" + ln.Addr().String())
	ctx := context.Background()

	// First query: a cache miss that runs the full KVCC-ENUM pipeline.
	start := time.Now()
	first, err := client.Enumerate(ctx, server.EnumerateRequest{Graph: "demo", K: 5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cold query:   %d components in %v (cached=%v)\n",
		len(first.Components), time.Since(start).Round(time.Microsecond), first.Cached)

	// Repeat query: served from the LRU cache without re-enumerating.
	start = time.Now()
	second, err := client.Enumerate(ctx, server.EnumerateRequest{Graph: "demo", K: 5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("warm query:   %d components in %v (cached=%v)\n\n",
		len(second.Components), time.Since(start).Round(time.Microsecond), second.Cached)

	// The derived endpoints reuse the same cached result. A vertex on a
	// chain overlap belongs to two components at once.
	overlap, err := client.Overlap(ctx, server.OverlapRequest{Graph: "demo", K: 5})
	if err != nil {
		panic(err)
	}
	shared := int64(-1)
	for i := range overlap.Matrix {
		for j := range overlap.Matrix {
			if i != j && overlap.Matrix[i][j] > 0 && shared < 0 {
				fmt.Printf("components %d and %d share %d vertices (< k, per Property 1)\n",
					i, j, overlap.Matrix[i][j])
				for _, v := range first.Components[i].Vertices {
					for _, w := range first.Components[j].Vertices {
						if v == w {
							shared = v
						}
					}
				}
			}
		}
	}
	if shared >= 0 {
		containing, err := client.ComponentsContaining(ctx,
			server.ContainingRequest{Graph: "demo", K: 5, Vertex: shared})
		if err != nil {
			panic(err)
		}
		fmt.Printf("vertex %d is in components %v\n\n", shared, containing.Indices)
	}

	// Operational stats: one enumeration amortized over every query.
	stats, err := client.Stats(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("server ran %d enumeration(s) for %d queries: cache hits=%d misses=%d\n",
		stats.Enumerations.Started,
		stats.Cache.Hits+stats.Cache.Misses,
		stats.Cache.Hits, stats.Cache.Misses)
}
