// Dynamic graphs: maintain k-VCCs across edits instead of recomputing
// from scratch. The walkthrough builds three separate communities, opens
// a kvcc.Dynamic handle, then (1) densifies the bridge between two of
// them until they merge into one k-VCC, (2) deletes edges until the
// merged component splits again, and (3) grafts a brand-new community
// onto fresh vertices — printing after each batch how many k-core
// components the update reused verbatim versus recomputed.
package main

import (
	"context"
	"fmt"
	"sort"

	"kvcc"
	"kvcc/graph"
)

const k = 4

func main() {
	g := threeCommunities()
	fmt.Printf("base graph: %d vertices, %d edges, k = %d\n", g.NumVertices(), g.NumEdges(), k)

	d, err := kvcc.NewDynamic(g, k)
	if err != nil {
		panic(err)
	}
	show("initial enumeration", d.Result())

	// 1. Insert a dense weave between community A (0..5) and B (10..15).
	// Once at least k independent paths exist the two merge into one
	// 4-VCC; community C (20..25) is untouched and served verbatim.
	weave := [][2]int64{{0, 10}, {1, 11}, {2, 12}, {3, 13}, {4, 14}, {5, 15}}
	res, err := d.ApplyEdits(context.Background(), weave, nil)
	if err != nil {
		panic(err)
	}
	show("after weaving A-B together", res)

	// 2. Cut the weave again: the merged component splits back apart.
	res, err = d.ApplyEdits(context.Background(), nil, weave)
	if err != nil {
		panic(err)
	}
	show("after cutting the weave", res)

	// 3. Graft a brand-new K5 onto labels that never existed: inserts
	// create vertices on first mention.
	var clique [][2]int64
	for i := int64(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			clique = append(clique, [2]int64{100 + i, 100 + j})
		}
	}
	res, err = d.ApplyEdits(context.Background(), clique, nil)
	if err != nil {
		panic(err)
	}
	show("after grafting a new K5", res)

	fmt.Printf("final graph version: %d\n", d.Version())
}

func show(when string, res *kvcc.Result) {
	fmt.Printf("\n%s (version %d): %d components "+
		"(%d k-core components reused, %d recomputed)\n",
		when, res.Version, len(res.Components),
		res.Stats.ComponentsReused, res.Stats.ComponentsRecomputed)
	for i, c := range res.Components {
		labels := append([]int64(nil), c.Labels()...)
		sort.Slice(labels, func(a, b int) bool { return labels[a] < labels[b] })
		fmt.Printf("  %d-VCC %d: %v\n", k, i, labels)
	}
}

// threeCommunities builds three disjoint near-cliques on labels 0..5,
// 10..15 and 20..25 (each missing one internal edge so they are exactly
// 4-connected, not 5-connected).
func threeCommunities() *graph.Graph {
	b := graph.NewBuilder(18)
	for _, base := range []int64{0, 10, 20} {
		for i := int64(0); i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				if i == 0 && j == 1 {
					continue // drop one edge: exactly 4-connected
				}
				b.AddEdge(base+i, base+j)
			}
		}
	}
	return b.Build()
}
