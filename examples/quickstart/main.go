// Quickstart: build the paper's Figure 1 graph and compare the three
// cohesive subgraph models on it. The k-VCC model separates the four
// planted blocks; k-ECC and k-core merge blocks that share only a vertex,
// an edge, or a couple of loose edges (the free-rider effect).
package main

import (
	"fmt"
	"sort"

	"kvcc"
	"kvcc/graph"
)

func main() {
	g := figure1()
	const k = 4
	fmt.Printf("Figure 1 graph: %d vertices, %d edges, k = %d\n\n",
		g.NumVertices(), g.NumEdges(), k)

	res, err := kvcc.Enumerate(g, k)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d-VCCs (%d):\n", k, len(res.Components))
	for i, c := range res.Components {
		fmt.Printf("  VCC %d: %v\n", i, sortedLabels(c))
	}

	eccs := kvcc.KECC(g, k)
	fmt.Printf("\n%d-ECCs (%d):\n", k, len(eccs))
	for i, c := range eccs {
		fmt.Printf("  ECC %d: %v\n", i, sortedLabels(c))
	}

	cores := kvcc.KCoreComponents(g, k)
	fmt.Printf("\n%d-core components (%d):\n", k, len(cores))
	for i, c := range cores {
		fmt.Printf("  core %d: %v\n", i, sortedLabels(c))
	}

	fmt.Println("\nThe k-VCC model is the only one that separates all four blocks.")
}

// figure1 builds the qualitative structure of the paper's Fig. 1: four
// dense blocks where G1,G2 share an edge, G2,G3 share a vertex, and G3,G4
// are joined by two loose edges.
func figure1() *graph.Graph {
	var edges [][2]int
	clique := func(vs []int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, [2]int{vs[i], vs[j]})
			}
		}
	}
	clique([]int{0, 1, 2, 3, 7, 8})                       // G1 (a=7, b=8)
	clique([]int{7, 8, 9, 10, 11, 12})                    // G2: shares edge (7,8) with G1
	clique([]int{12, 13, 14, 15, 16, 17})                 // G3: shares vertex 12 with G2
	clique([]int{18, 19, 20, 21, 22})                     // G4
	edges = append(edges, [2]int{16, 18}, [2]int{17, 19}) // loose G3-G4 ties
	return graph.FromEdges(23, edges)
}

func sortedLabels(g *graph.Graph) []int64 {
	ls := append([]int64(nil), g.Labels()...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	return ls
}
