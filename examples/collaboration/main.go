// Collaboration: the paper's Fig. 14 case study on a synthetic DBLP-style
// ego network. Query all 4-VCCs containing a prolific author and compare
// against the single 4-ECC / 4-core: the k-VCC view reveals the distinct
// research groups, the shared "core authors" who belong to several groups,
// and a bridging author who collaborates across groups without belonging
// to any (present in the 4-ECC, absent from every 4-VCC).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"kvcc"
	"kvcc/gen"
	"kvcc/graphio"
)

func main() {
	dotOut := flag.String("dot", "", "write the ego network with k-VCC clusters as Graphviz DOT")
	flag.Parse()
	net := gen.CollaborationEgoNet(gen.EgoNetConfig{
		Groups: 7, GroupMin: 7, GroupMax: 12, IntraProb: 0.85,
		SharedAuthors: 1, Bridges: 2, Seed: 14,
	})
	g := net.Graph
	const k = 4
	fmt.Printf("ego network of %q: %d authors, %d co-author edges\n\n",
		net.Names[net.Hub], g.NumVertices(), g.NumEdges())

	res, err := kvcc.Enumerate(g, k)
	if err != nil {
		panic(err)
	}
	hubComponents := res.ComponentsContaining(net.Hub)
	fmt.Printf("%d-VCCs containing %q: %d\n", k, net.Names[net.Hub], len(hubComponents))
	for _, i := range hubComponents {
		c := res.Components[i]
		names := make([]string, 0, c.NumVertices())
		for _, l := range c.Labels() {
			if l != net.Hub {
				names = append(names, net.Names[l])
			}
		}
		sort.Strings(names)
		fmt.Printf("  group %d (%d authors): %v\n", i, len(names), names)
	}

	// Core authors appear in more than one group.
	inGroups := map[int64]int{}
	for _, i := range hubComponents {
		for _, l := range res.Components[i].Labels() {
			inGroups[l]++
		}
	}
	fmt.Println("\nauthors in multiple research groups:")
	for l, n := range inGroups {
		if n > 1 && l != net.Hub {
			fmt.Printf("  %s: %d groups\n", net.Names[l], n)
		}
	}

	eccs := kvcc.KECC(g, k)
	fmt.Printf("\n%d-ECCs: %d (all groups merge through the hub)\n", k, len(eccs))

	// The bridging authors are in the big k-ECC but in no k-VCC.
	vccMembers := map[int64]bool{}
	for _, c := range res.Components {
		for _, l := range c.Labels() {
			vccMembers[l] = true
		}
	}
	for _, b := range net.Bridges {
		inECC := false
		for _, e := range eccs {
			for _, l := range e.Labels() {
				if l == b {
					inECC = true
				}
			}
		}
		fmt.Printf("%s: in a %d-ECC: %v, in a %d-VCC: %v\n",
			net.Names[b], k, inECC, k, vccMembers[b])
	}

	if *dotOut != "" {
		groups := make([][]int64, 0, len(hubComponents))
		for _, i := range hubComponents {
			groups = append(groups, res.Components[i].Labels())
		}
		f, err := os.Create(*dotOut)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := graphio.WriteDOT(f, g, graphio.DOTOptions{
			Name: "ego-network", Labels: net.Names, Groups: groups,
		}); err != nil {
			panic(err)
		}
		fmt.Printf("\nwrote Graphviz rendering to %s (render with `dot -Tsvg`)\n", *dotOut)
	}
}
