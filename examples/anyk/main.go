// Any-k serving: build the cohesion hierarchy index once with
// kvcc.BuildHierarchy, then answer every k — enumerations, per-vertex
// cohesion, nesting chains — from the tree without re-running the
// algorithm. Compares the index's build cost against the per-k baseline
// it replaces and shows the nesting property at work.
package main

import (
	"fmt"
	"time"

	"kvcc"
	"kvcc/gen"
)

func main() {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 10, MinSize: 12, MaxSize: 24, IntraProb: 0.75,
		ChainOverlap: 3, ChainEvery: 2, BridgeEdges: 8,
		NoiseVertices: 300, NoiseDegree: 3, Seed: 42,
	})
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// One incremental pass computes every level: level k+1 is enumerated
	// only inside each level-k component (nesting property).
	begin := time.Now()
	tree, err := kvcc.BuildHierarchy(g, kvcc.WithParallelism(4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("hierarchy built in %v: max k=%d, %d components, %d levels\n",
		time.Since(begin).Round(time.Millisecond), tree.MaxK, tree.Size(), tree.Stats.Levels)
	fmt.Printf("enumerated %d vertices total; per-level-from-scratch baseline is %d\n\n",
		tree.Stats.EnumeratedVertices, int64(tree.Stats.Levels)*int64(g.NumVertices()))

	// Any k is now a lookup.
	fmt.Printf("%4s %12s %12s\n", "k", "#k-VCC", "max size")
	for k := 2; k <= tree.MaxK; k++ {
		level := tree.LevelComponents(k)
		maxSize := 0
		for _, c := range level {
			if c.NumVertices() > maxSize {
				maxSize = c.NumVertices()
			}
		}
		fmt.Printf("%4d %12d %12d\n", k, len(level), maxSize)
	}

	// Per-vertex cohesion and nesting chains are O(1)-ish map lookups.
	deepest := tree.Level(tree.MaxK)[0]
	label := deepest.Component.Labels()[0]
	fmt.Printf("\nvertex %d has cohesion %d; its nesting chain:\n", label, tree.Cohesion(label))
	for _, n := range tree.Path(label) {
		fmt.Printf("  %d-VCC with %d vertices\n", n.K, n.Component.NumVertices())
	}
}
