// Communities: detect overlapping social communities in a synthetic social
// network with planted dense groups, and compare the quality of the three
// cohesive-subgraph models with the paper's effectiveness metrics
// (diameter, edge density, clustering coefficient).
package main

import (
	"fmt"

	"kvcc"
	"kvcc/gen"
	"kvcc/metrics"
)

func main() {
	// A social network: 40 dense friend groups of 12-24 members, some
	// chained by 2 shared members, embedded in a sparse follower
	// background of 3000 users.
	g, planted := gen.Planted(gen.PlantedConfig{
		Communities: 40, MinSize: 12, MaxSize: 24, IntraProb: 0.8,
		ChainOverlap: 2, ChainEvery: 4, BridgeEdges: 30,
		NoiseVertices: 3000, NoiseDegree: 3, Seed: 42,
	})
	const k = 7
	fmt.Printf("social network: %d vertices, %d edges (%d planted groups), k = %d\n\n",
		g.NumVertices(), g.NumEdges(), len(planted), k)

	res, err := kvcc.Enumerate(g, k)
	if err != nil {
		panic(err)
	}
	rows := []struct {
		name string
		avg  metrics.Averages
	}{
		{"k-VCC", metrics.Average(res.Components)},
		{"k-ECC", metrics.Average(kvcc.KECC(g, k))},
		{"k-core", metrics.Average(kvcc.KCoreComponents(g, k))},
	}
	fmt.Printf("%-10s %8s %10s %10s %12s %10s\n",
		"model", "count", "avg size", "avg diam", "avg density", "avg cc")
	for _, r := range rows {
		fmt.Printf("%-10s %8d %10.1f %10.2f %12.3f %10.3f\n",
			r.name, r.avg.Count, r.avg.AvgSize, r.avg.AvgDiameter,
			r.avg.AvgDensity, r.avg.AvgClustering)
	}

	// Overlap demonstration: chained groups share members below k.
	overlaps := 0
	m := res.OverlapMatrix()
	for i := range m {
		for j := i + 1; j < len(m); j++ {
			if m[i][j] > 0 {
				overlaps++
			}
		}
	}
	fmt.Printf("\noverlapping k-VCC pairs: %d (every overlap < k, per Property 1)\n", overlaps)
	fmt.Println("k-VCCs isolate each planted friend group; k-core merges groups that")
	fmt.Println("share even a couple of members or loose ties (the free-rider effect).")
}
