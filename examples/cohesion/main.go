// Cohesion: build the full structural-cohesion hierarchy of a social
// network (Moody & White, the paper's reference [20]): the nesting tree of
// k-VCCs for k = 1, 2, 3, ... Every (k+1)-VCC nests inside exactly one
// k-VCC, so the tree assigns each member a cohesion depth — how deeply
// embedded they are in increasingly robust groups.
package main

import (
	"fmt"
	"strings"

	"kvcc/gen"
	"kvcc/hierarchy"
)

func main() {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 8, MinSize: 8, MaxSize: 20, IntraProb: 0.8,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 6,
		NoiseVertices: 250, NoiseDegree: 2, Seed: 33,
	})
	fmt.Printf("network: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	tree, err := hierarchy.Build(g, hierarchy.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cohesion hierarchy: %d components across levels 1..%d\n\n",
		tree.Size(), tree.MaxK)

	fmt.Printf("%5s %12s %14s\n", "k", "#k-VCCs", "largest size")
	for k := 1; k <= tree.MaxK; k++ {
		level := tree.Level(k)
		largest := 0
		if len(level) > 0 {
			largest = level[0].Component.NumVertices()
		}
		fmt.Printf("%5d %12d %14d\n", k, len(level), largest)
	}

	// Cohesion profile of a few vertices: deep members vs periphery.
	fmt.Println("\nper-vertex structural cohesion (deepest containing level):")
	shown := 0
	for _, label := range []int64{0, 5, 40, 100, int64(g.NumVertices() - 1)} {
		if int(label) >= g.NumVertices() {
			continue
		}
		c := tree.Cohesion(label)
		path := tree.Path(label)
		fmt.Printf("  vertex %4d: cohesion %2d, nesting chain of %d components\n",
			label, c, len(path))
		shown++
	}
	if shown == 0 {
		fmt.Println("  (graph too small)")
	}

	fmt.Println("\nhierarchy outline (truncated to a screenful):")
	var sb strings.Builder
	if err := tree.Write(&sb); err != nil {
		panic(err)
	}
	out := sb.String()
	if len(out) > 2000 {
		out = out[:2000] + "... (truncated)\n"
	}
	fmt.Print(out)
}
