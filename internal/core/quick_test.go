package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kvcc/graph"
	"kvcc/internal/flow"
)

// Property-based sweep with testing/quick: for arbitrary seeds, the
// enumeration output on a random graph satisfies every structural
// invariant, and the four variants agree.
func TestEnumerationInvariantsQuick(t *testing.T) {
	property := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(25)
		p := 0.15 + rng.Float64()*0.35
		var edges [][2]int
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{rng.Intn(i), i})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		g := graph.FromEdges(n, edges)
		k := 2 + int(kRaw)%4

		base, _, err := Enumerate(g, k, Options{Algorithm: VCCE})
		if err != nil {
			return false
		}
		for _, algo := range []Algorithm{VCCEN, VCCEG, VCCEStar} {
			comps, _, err := Enumerate(g, k, Options{Algorithm: algo})
			if err != nil || len(comps) != len(base) {
				return false
			}
		}
		// Invariants on the canonical result.
		if int64(len(base)) > int64(n)/2 {
			return false
		}
		sets := make([]map[int64]bool, len(base))
		for i, c := range base {
			if c.NumVertices() <= k {
				return false
			}
			if kappa, _ := flow.GlobalVertexConnectivity(c, k); kappa < k {
				return false
			}
			sets[i] = map[int64]bool{}
			for _, l := range c.Labels() {
				sets[i][l] = true
			}
		}
		for i := range sets {
			for j := i + 1; j < len(sets); j++ {
				shared := 0
				for l := range sets[j] {
					if sets[i][l] {
						shared++
					}
				}
				if shared >= k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: enumeration is invariant under vertex relabeling (running on
// an isomorphic copy yields the same component sizes).
func TestRelabelingInvarianceQuick(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		var edges [][2]int
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{rng.Intn(i), i})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		g := graph.FromEdges(n, edges)
		perm := rng.Perm(n)
		permuted := make([][2]int, len(edges))
		for i, e := range edges {
			permuted[i] = [2]int{perm[e[0]], perm[e[1]]}
		}
		h := graph.FromEdges(n, permuted)

		k := 3
		a, _, err := Enumerate(g, k, Options{Algorithm: VCCEStar})
		if err != nil {
			return false
		}
		b, _, err := Enumerate(h, k, Options{Algorithm: VCCEStar})
		if err != nil {
			return false
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].NumVertices() != b[i].NumVertices() ||
				a[i].NumEdges() != b[i].NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
