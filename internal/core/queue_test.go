package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"kvcc/graph"
)

// The task queue must deliver every pushed task exactly once, never block
// a producer, and close only after the last in-flight task finishes.
func TestTaskQueueDrainsRecursiveWork(t *testing.T) {
	q := newTaskQueue()
	marker := graph.FromEdges(1, nil)

	// Seed one task; every popped task fans out into children until a
	// budget is exhausted — the shape of the enumeration recursion.
	var budget atomic.Int64
	budget.Store(500)
	var processed atomic.Int64
	q.push(task{g: marker})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, ok := q.pop()
				if !ok {
					return
				}
				processed.Add(1)
				for c := 0; c < 3; c++ {
					if budget.Add(-1) >= 0 {
						q.push(task{g: marker})
					}
				}
				q.finish()
			}
		}()
	}
	wg.Wait()
	if got := processed.Load(); got != 501 {
		t.Fatalf("processed %d tasks, want 501 (1 seed + 500 budget)", got)
	}
	if q.pending != 0 || len(q.items) != 0 || !q.done {
		t.Fatalf("queue not drained: pending=%d items=%d done=%v", q.pending, len(q.items), q.done)
	}
	// A pop after completion must return immediately with ok=false.
	if _, ok := q.pop(); ok {
		t.Fatal("pop on a finished queue returned a task")
	}
}

// The parallel driver must not allocate its frontier proportionally to
// the graph: the old implementation made a channel of capacity n+4. The
// deque's backing array only ever reaches the live frontier width.
func TestTaskQueueFrontierStaysSmall(t *testing.T) {
	// A long path has no k-core for k=2... use chained triangles instead
	// so the recursion actually runs on a sizable graph.
	var edges [][2]int
	const chain = 300
	for i := 0; i < chain; i++ {
		base := 2 * i
		edges = append(edges, [2]int{base, base + 1}, [2]int{base, base + 2}, [2]int{base + 1, base + 2})
	}
	g := graph.FromEdges(2*chain+1, edges)
	res, _, err := Enumerate(g, 2, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != chain {
		t.Fatalf("chained triangles: got %d 2-VCCs, want %d", len(res), chain)
	}
}
