package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"kvcc/graph"
	"kvcc/internal/flow"
	"kvcc/internal/verify"
)

var allAlgorithms = []Algorithm{VCCE, VCCEN, VCCEG, VCCEStar}

func enumerate(t *testing.T, g *graph.Graph, k int, algo Algorithm) []*graph.Graph {
	t.Helper()
	comps, _, err := Enumerate(g, k, Options{Algorithm: algo})
	if err != nil {
		t.Fatalf("Enumerate(k=%d, %v): %v", k, algo, err)
	}
	return comps
}

// labelSets converts components to sorted label slices, sorted overall, for
// comparison.
func labelSets(comps []*graph.Graph) [][]int64 {
	out := make([][]int64, 0, len(comps))
	for _, c := range comps {
		ls := append([]int64(nil), c.Labels()...)
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return out
}

func equalSets(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

// twoCliquesSharing builds two K_size cliques overlapping in `shared`
// vertices (the paper's Fig. 2 shape).
func twoCliquesSharing(size, shared int) *graph.Graph {
	n := 2*size - shared
	var edges [][2]int
	add := func(vs []int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, [2]int{vs[i], vs[j]})
			}
		}
	}
	c1 := make([]int, size)
	for i := range c1 {
		c1[i] = i
	}
	c2 := make([]int, size)
	for i := range c2 {
		if i < shared {
			c2[i] = size - shared + i // overlap vertices
		} else {
			c2[i] = size + i - shared
		}
	}
	add(c1)
	add(c2)
	return graph.FromEdges(n, edges)
}

func randomConnectedGraph(n int, p float64, rng *rand.Rand) *graph.Graph {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{rng.Intn(i), i})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// plantedGraph builds several dense communities chained with small vertex
// overlaps plus background noise — the structure KVCC-ENUM is designed for.
func plantedGraph(rng *rand.Rand, communities, size int, p float64, overlap int) *graph.Graph {
	var edges [][2]int
	base := 0
	var prev []int
	n := 0
	for c := 0; c < communities; c++ {
		vs := make([]int, size)
		for i := range vs {
			if i < overlap && prev != nil {
				vs[i] = prev[len(prev)-overlap+i]
			} else {
				vs[i] = base
				base++
			}
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < p {
					edges = append(edges, [2]int{vs[i], vs[j]})
				}
			}
		}
		prev = vs
		if vs[size-1] >= n {
			n = vs[size-1] + 1
		}
	}
	// Background noise: sparse random edges.
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			edges = append(edges, [2]int{i, rng.Intn(n)})
		}
	}
	return graph.FromEdges(n, edges)
}

func TestEnumerateErrors(t *testing.T) {
	if _, _, err := Enumerate(nil, 3, Options{}); err == nil {
		t.Fatal("nil graph must error")
	}
	if _, _, err := Enumerate(complete(3), 0, Options{}); err == nil {
		t.Fatal("k=0 must error")
	}
}

func TestCompleteGraphSingleVCC(t *testing.T) {
	for _, algo := range allAlgorithms {
		comps := enumerate(t, complete(6), 4, algo)
		if len(comps) != 1 || comps[0].NumVertices() != 6 {
			t.Fatalf("%v: K6 with k=4: got %d components", algo, len(comps))
		}
	}
}

func TestKTooLargeGivesNothing(t *testing.T) {
	for _, algo := range allAlgorithms {
		comps := enumerate(t, complete(5), 5, algo)
		if len(comps) != 0 {
			t.Fatalf("%v: K5 with k=5 should have no k-VCC (needs >5 vertices)", algo)
		}
	}
}

func TestKEqualsOneGivesComponents(t *testing.T) {
	// Components of size >= 2 are exactly the 1-VCCs.
	g := graph.FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}, {5, 5}})
	for _, algo := range allAlgorithms {
		comps := enumerate(t, g, 1, algo)
		got := labelSets(comps)
		want := canonical([][]int64{{0, 1, 2}, {3, 4}})
		if !equalSets(got, want) {
			t.Fatalf("%v: 1-VCCs = %v, want %v", algo, got, want)
		}
	}
}

func TestTwoOverlappingCliques(t *testing.T) {
	// Two K5s sharing 2 vertices: with k=3 the shared pair is a cut, so
	// the two cliques are separate 3-VCCs that overlap in the pair.
	g := twoCliquesSharing(5, 2)
	for _, algo := range allAlgorithms {
		comps := enumerate(t, g, 3, algo)
		if len(comps) != 2 {
			t.Fatalf("%v: got %d 3-VCCs, want 2 (%v)", algo, len(comps), labelSets(comps))
		}
		for _, c := range comps {
			if c.NumVertices() != 5 {
				t.Fatalf("%v: component sizes %v", algo, labelSets(comps))
			}
		}
		// With k=2 the union stays 2-connected: one 2-VCC.
		comps2 := enumerate(t, g, 2, algo)
		if len(comps2) != 1 || comps2[0].NumVertices() != 8 {
			t.Fatalf("%v: 2-VCCs = %v", algo, labelSets(comps2))
		}
	}
}

// paperFigure1 reproduces the qualitative structure of the paper's Fig. 1:
// G1 and G2 are dense blocks sharing one edge (a,b); G2 and G3 share one
// vertex c; G3 and G4 are joined by two independent edges.
func paperFigure1() (*graph.Graph, [][]int64) {
	var edges [][2]int
	clique := func(vs []int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, [2]int{vs[i], vs[j]})
			}
		}
	}
	// G1: vertices 0-8 with a=7, b=8. Use K6 on {0,1,2,3,7,8}.
	g1 := []int{0, 1, 2, 3, 7, 8}
	// G2: {7,8,9,10,11,12} — shares the edge (7,8) with G1.
	g2 := []int{7, 8, 9, 10, 11, 12}
	// G3: {12,13,14,15,16,17} — shares vertex c=12 with G2.
	g3 := []int{12, 13, 14, 15, 16, 17}
	// G4: {18,19,20,21,22}.
	g4 := []int{18, 19, 20, 21, 22}
	clique(g1)
	clique(g2)
	clique(g3)
	clique(g4)
	// Two loose edges joining G3 and G4 (no shared vertices).
	edges = append(edges, [2]int{16, 18}, [2]int{17, 19})
	g := graph.FromEdges(23, edges)
	want := canonical([][]int64{
		{0, 1, 2, 3, 7, 8},
		{7, 8, 9, 10, 11, 12},
		{12, 13, 14, 15, 16, 17},
		{18, 19, 20, 21, 22},
	})
	return g, want
}

func TestPaperFigure1(t *testing.T) {
	g, want := paperFigure1()
	for _, algo := range allAlgorithms {
		comps := enumerate(t, g, 4, algo)
		got := labelSets(comps)
		if !equalSets(got, want) {
			t.Fatalf("%v: 4-VCCs = %v, want %v", algo, got, want)
		}
	}
}

func TestAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(7) // up to 12 vertices
		g := randomConnectedGraph(n, 0.25+rng.Float64()*0.45, rng)
		for k := 2; k <= 4; k++ {
			want := canonical(verify.KVCCBrute(g, k))
			for _, algo := range allAlgorithms {
				comps := enumerate(t, g, k, algo)
				got := labelSets(comps)
				if !equalSets(got, want) {
					t.Fatalf("seed %d k %d %v:\n got %v\nwant %v\nedges %v",
						seed, k, algo, got, want, g.Edges(nil))
				}
			}
		}
	}
}

func canonical(sets [][]int64) [][]int64 {
	for _, s := range sets {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return sets
}

// All four variants must produce identical results on larger structured
// graphs (cross-validation without an oracle).
func TestVariantsAgreeOnPlantedGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := plantedGraph(rng, 4+rng.Intn(3), 12+rng.Intn(6), 0.75, 2)
		k := 5 + rng.Intn(3)
		base := labelSets(enumerate(t, g, k, VCCE))
		for _, algo := range []Algorithm{VCCEN, VCCEG, VCCEStar} {
			got := labelSets(enumerate(t, g, k, algo))
			if !equalSets(base, got) {
				t.Fatalf("seed %d k %d: %v disagrees with VCCE\nVCCE: %v\n%v:   %v",
					seed, k, algo, base, algo, got)
			}
		}
	}
}

// Structural invariants from Section 2.2 hold for every output.
func TestOutputInvariants(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := plantedGraph(rng, 5, 14, 0.7, 2)
		k := 6
		comps := enumerate(t, g, k, VCCEStar)
		if int64(len(comps)) > int64(g.NumVertices())/2 {
			t.Fatalf("seed %d: %d components exceeds n/2 bound", seed, len(comps))
		}
		for ci, c := range comps {
			if c.NumVertices() <= k {
				t.Fatalf("seed %d: component %d has %d <= k vertices", seed, ci, c.NumVertices())
			}
			// k-connected: no cut below k.
			kappa, _ := flow.GlobalVertexConnectivity(c, k)
			if kappa < k {
				t.Fatalf("seed %d: component %d has connectivity %d < %d", seed, ci, kappa, k)
			}
			// Minimum degree >= k (nested in a k-core).
			if _, d := c.MinDegreeVertex(); d < k {
				t.Fatalf("seed %d: component %d has min degree %d < %d", seed, ci, d, k)
			}
		}
		// Pairwise overlap < k (Property 1).
		for i := 0; i < len(comps); i++ {
			li := map[int64]bool{}
			for _, l := range comps[i].Labels() {
				li[l] = true
			}
			for j := i + 1; j < len(comps); j++ {
				shared := 0
				for _, l := range comps[j].Labels() {
					if li[l] {
						shared++
					}
				}
				if shared >= k {
					t.Fatalf("seed %d: components %d,%d overlap in %d >= k vertices", seed, i, j, shared)
				}
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := plantedGraph(rng, 6, 13, 0.75, 2)
		k := 6
		serial, _, err := Enumerate(g, k, Options{Algorithm: VCCEStar})
		if err != nil {
			t.Fatal(err)
		}
		parallel, _, err := Enumerate(g, k, Options{Algorithm: VCCEStar, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !equalSets(labelSets(serial), labelSets(parallel)) {
			t.Fatalf("seed %d: parallel result differs", seed)
		}
	}
}

func TestSSVDegreeCapStillCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := plantedGraph(rng, 5, 14, 0.7, 2)
	k := 6
	uncapped := labelSets(enumerate(t, g, k, VCCEStar))
	capped, _, err := Enumerate(g, k, Options{Algorithm: VCCEStar, SSVDegreeCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(uncapped, labelSets(capped)) {
		t.Fatal("SSV degree cap changed the result")
	}
}

func TestStatsPlausibility(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := plantedGraph(rng, 6, 14, 0.75, 2)
	k := 6
	_, st, err := Enumerate(g, k, Options{Algorithm: VCCEStar})
	if err != nil {
		t.Fatal(err)
	}
	if st.GlobalCutCalls == 0 {
		t.Fatal("expected at least one GLOBAL-CUT call")
	}
	if st.CutFallbacks != 0 {
		t.Fatalf("defensive fallback fired %d times; sparse certificate bug?", st.CutFallbacks)
	}
	if st.PeakBytes <= 0 {
		t.Fatal("peak bytes not tracked")
	}
	// The optimized variant must test far fewer vertices than the basic one.
	_, stBasic, err := Enumerate(g, k, Options{Algorithm: VCCE})
	if err != nil {
		t.Fatal(err)
	}
	if st.LocCutTests > stBasic.LocCutTests {
		t.Fatalf("VCCE* ran more LOC-CUT tests (%d) than VCCE (%d)",
			st.LocCutTests, stBasic.LocCutTests)
	}
}

func TestStatsSweepAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := plantedGraph(rng, 6, 15, 0.8, 2)
	k := 7
	_, st, err := Enumerate(g, k, Options{Algorithm: VCCEStar})
	if err != nil {
		t.Fatal(err)
	}
	swept := st.SweptNS1 + st.SweptNS2 + st.SweptGS
	if swept == 0 {
		t.Fatal("expected some vertices to be swept on a planted community graph")
	}
	if st.TestedNonPrune == 0 {
		t.Fatal("some vertices must still be tested")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		VCCE: "VCCE", VCCEN: "VCCE-N", VCCEG: "VCCE-G", VCCEStar: "VCCE*",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
	if got := Algorithm(99).String(); got != "Algorithm(99)" {
		t.Fatalf("unknown algorithm string = %q", got)
	}
}

func TestDisconnectedInput(t *testing.T) {
	// Two disjoint K5s: each a 3-VCC.
	var edges [][2]int
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int{i, j}, [2]int{i + 5, j + 5})
		}
	}
	g := graph.FromEdges(10, edges)
	for _, algo := range allAlgorithms {
		comps := enumerate(t, g, 3, algo)
		if len(comps) != 2 {
			t.Fatalf("%v: got %d components, want 2", algo, len(comps))
		}
	}
}

func TestDeterministicOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := plantedGraph(rng, 5, 12, 0.8, 2)
	first := fmt.Sprint(labelSets(enumerate(t, g, 5, VCCEStar)))
	for i := 0; i < 3; i++ {
		again := fmt.Sprint(labelSets(enumerate(t, g, 5, VCCEStar)))
		if first != again {
			t.Fatal("non-deterministic output ordering")
		}
	}
}
