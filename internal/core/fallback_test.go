package core

import (
	"strings"
	"testing"

	"kvcc/graph"
)

// findCutRaw is the defensive path used if a certificate cut ever failed
// to disconnect; exercise it directly.
func TestFindCutRaw(t *testing.T) {
	e := &enumerator{k: 3, opts: Options{}}
	stats := &Stats{}
	var ws workspace

	// Two K4s sharing two vertices: raw search must find the 2-cut.
	var edges [][2]int
	for _, c := range [][]int{{0, 1, 2, 3}, {2, 3, 4, 5}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				edges = append(edges, [2]int{c[i], c[j]})
			}
		}
	}
	g := graph.FromEdges(6, edges)
	cut := e.findCutRaw(g, stats, &ws)
	if len(cut) != 2 {
		t.Fatalf("raw cut = %v, want size 2", cut)
	}
	avoid := map[int]bool{}
	for _, v := range cut {
		avoid[v] = true
	}
	if g.ConnectedAvoiding(avoid) {
		t.Fatalf("raw cut %v does not disconnect", cut)
	}

	// A k-connected graph yields no cut.
	k4 := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if cut := e.findCutRaw(k4, stats, &ws); cut != nil {
		t.Fatalf("K4 raw cut = %v, want nil at k=3", cut)
	}
}

func TestStatsString(t *testing.T) {
	s := &Stats{GlobalCutCalls: 3, Partitions: 2, LocCutTests: 40, FlowRuns: 11}
	out := s.String()
	for _, want := range []string{"global-cuts=3", "partitions=2", "loc-cut=40", "flows=11"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Stats.String() = %q missing %q", out, want)
		}
	}
}
