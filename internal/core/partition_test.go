package core

import (
	"math/rand"
	"testing"

	"kvcc/graph"
	"kvcc/metrics"
)

// OVERLAP-PARTITION unit behaviour (Algorithm 1, lines 13-18).

func TestOverlapPartitionDuplicatesCut(t *testing.T) {
	// Two K4s sharing two cut vertices {3,4}: partition by that cut.
	var edges [][2]int
	for _, c := range [][]int{{0, 1, 2, 3, 4}, {3, 4, 5, 6, 7}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				edges = append(edges, [2]int{c[i], c[j]})
			}
		}
	}
	g := graph.FromEdges(8, edges)
	parts := overlapPartition(g, []int{3, 4}, &graph.Scratch{})
	if len(parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(parts))
	}
	for _, p := range parts {
		if p.NumVertices() != 5 {
			t.Fatalf("part size %d, want 5 (3 own + 2 cut)", p.NumVertices())
		}
		// Cut vertices and their induced edge must be present in each part.
		idx := p.LabelIndex()
		i3, ok3 := idx[3]
		i4, ok4 := idx[4]
		if !ok3 || !ok4 {
			t.Fatal("cut vertices not duplicated into part")
		}
		if !p.HasEdge(i3, i4) {
			t.Fatal("induced cut edge lost")
		}
	}
}

func TestOverlapPartitionInvalidCut(t *testing.T) {
	// Removing a non-cut leaves one component: the caller treats a single
	// part as an invalid cut (defensive fallback).
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	parts := overlapPartition(g, []int{1}, &graph.Scratch{})
	if len(parts) != 1 {
		t.Fatalf("parts = %d, want 1 for a non-disconnecting set", len(parts))
	}
}

func TestOverlapPartitionLemma8Bound(t *testing.T) {
	// Each part gains at most |cut| extra vertices relative to its own
	// component (Lemma 8).
	rng := rand.New(rand.NewSource(12))
	g := plantedGraph(rng, 4, 12, 0.8, 2)
	k := 5
	comps, _, err := Enumerate(g, k, Options{Algorithm: VCCEStar})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range comps {
		total += c.NumVertices()
	}
	// Total duplication across all k-VCCs is bounded: sum of sizes is at
	// most n + partitions*(k-1) (Lemma 8 applied along the recursion).
	_, stats, err := Enumerate(g, k, Options{Algorithm: VCCEStar})
	if err != nil {
		t.Fatal(err)
	}
	bound := int64(g.NumVertices()) + stats.Partitions*int64(k-1)*2
	if int64(total) > bound {
		t.Fatalf("component vertex total %d exceeds duplication bound %d", total, bound)
	}
}

// Lemma 10: the number of overlapped partitions is below n/2.
func TestPartitionCountLemma10(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := plantedGraph(rng, 5, 12, 0.8, 2)
		for k := 3; k <= 7; k += 2 {
			_, stats, err := Enumerate(g, k, Options{Algorithm: VCCEStar})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Partitions > int64(g.NumVertices())/2 {
				t.Fatalf("seed %d k %d: %d partitions exceeds n/2 = %d",
					seed, k, stats.Partitions, g.NumVertices()/2)
			}
		}
	}
}

// Theorem 2: diam(G_i) <= (|V(G_i)|-2)/κ(G_i) + 1 <= (|V|-2)/k + 1.
func TestDiameterBoundTheorem2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := plantedGraph(rng, 6, 14, 0.75, 2)
	k := 6
	comps, _, err := Enumerate(g, k, Options{Algorithm: VCCEStar})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) == 0 {
		t.Skip("no components")
	}
	for i, c := range comps {
		bound := (c.NumVertices()-2)/k + 1
		if d := metrics.Diameter(c); d > bound {
			t.Fatalf("component %d: diameter %d exceeds Theorem 2 bound %d", i, d, bound)
		}
	}
}

// Stats consistency: attribution categories partition the phase-1 work.
func TestStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := plantedGraph(rng, 6, 14, 0.8, 2)
	_, st, err := Enumerate(g, 6, Options{Algorithm: VCCEStar})
	if err != nil {
		t.Fatal(err)
	}
	if st.LocCutTests != st.TestedNonPrune+st.Phase2Pairs {
		t.Fatalf("LocCutTests %d != tested %d + phase2 %d",
			st.LocCutTests, st.TestedNonPrune, st.Phase2Pairs)
	}
	if st.FlowRuns > st.LocCutTests {
		t.Fatalf("flow runs %d exceed LOC-CUT tests %d", st.FlowRuns, st.LocCutTests)
	}
	if st.SweptNS1 < 0 || st.SweptNS2 < 0 || st.SweptGS < 0 {
		t.Fatal("negative sweep counters")
	}
}

// The basic algorithm must produce zero sweep attribution.
func TestBasicHasNoSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := plantedGraph(rng, 4, 12, 0.8, 2)
	_, st, err := Enumerate(g, 5, Options{Algorithm: VCCE})
	if err != nil {
		t.Fatal(err)
	}
	if st.SweptNS1+st.SweptNS2+st.SweptGS != 0 {
		t.Fatalf("VCCE performed sweeps: %+v", st)
	}
	if st.SSVDetected+st.SSVInherited != 0 {
		t.Fatalf("VCCE detected SSVs: %+v", st)
	}
}

// VCCE-N must not use group sweeps and VCCE-G must not use neighbor
// sweeps.
func TestVariantAttributionIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := plantedGraph(rng, 6, 14, 0.8, 2)
	_, stN, err := Enumerate(g, 6, Options{Algorithm: VCCEN})
	if err != nil {
		t.Fatal(err)
	}
	if stN.SweptGS != 0 || stN.Phase2Skipped != 0 {
		t.Fatalf("VCCE-N used group sweep: %+v", stN)
	}
	_, stG, err := Enumerate(g, 6, Options{Algorithm: VCCEG})
	if err != nil {
		t.Fatal(err)
	}
	if stG.SweptNS1 != 0 && stG.SweptNS2 != 0 {
		// GS1 uses SSVs but never attributes NS causes.
		t.Fatalf("VCCE-G attributed neighbor sweeps: %+v", stG)
	}
}
