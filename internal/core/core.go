// Package core implements KVCC-ENUM, the paper's algorithm for enumerating
// all k-vertex connected components of a graph (Algorithms 1-4).
//
// The framework recursively partitions the graph: reduce to the k-core,
// split into connected components, and for each component search for a
// vertex cut with fewer than k vertices (GLOBAL-CUT). A component with no
// such cut is a k-VCC; otherwise the cut is duplicated into every side
// (overlapped partition) and the sides are processed recursively.
//
// Four algorithm variants are provided, matching the paper's evaluation:
//
//	VCCE      - basic GLOBAL-CUT (Algorithm 2)
//	VCCE-N    - basic + neighbor sweep (Section 5.1)
//	VCCE-G    - basic + group sweep (Section 5.2)
//	VCCE-Star - both sweep strategies (GLOBAL-CUT*, Algorithm 3)
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kvcc/graph"
	"kvcc/internal/flow"
	"kvcc/internal/kcore"
	"kvcc/internal/sparse"
)

// Algorithm selects the GLOBAL-CUT variant used by Enumerate.
type Algorithm int

const (
	// VCCE is the basic algorithm without sweep optimizations.
	VCCE Algorithm = iota
	// VCCEN adds the neighbor-sweep pruning rules (strong side-vertices
	// and vertex deposits).
	VCCEN
	// VCCEG adds the group-sweep pruning rules (side-groups and group
	// deposits).
	VCCEG
	// VCCEStar enables both sweep strategies; this is GLOBAL-CUT*.
	VCCEStar
)

// String returns the paper's name for the variant.
func (a Algorithm) String() string {
	switch a {
	case VCCE:
		return "VCCE"
	case VCCEN:
		return "VCCE-N"
	case VCCEG:
		return "VCCE-G"
	case VCCEStar:
		return "VCCE*"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

func (a Algorithm) neighborSweep() bool { return a == VCCEN || a == VCCEStar }
func (a Algorithm) groupSweep() bool    { return a == VCCEG || a == VCCEStar }

// FlowEngine selects the max-flow engine behind the LOC-CUT queries.
// Every engine returns identical results — the choice is purely a
// performance knob — so any value is safe with any Algorithm.
type FlowEngine int

const (
	// FlowAuto (default) picks per component: LocalVC when k is small
	// and the component large (local cut search beats whole-graph
	// max-flow exactly there), Dinic otherwise.
	FlowAuto FlowEngine = iota
	// FlowDinic forces the blocking-flow engine everywhere.
	FlowDinic
	// FlowEdmondsKarp forces the shortest-augmenting-path engine
	// (cross-validation / ablation baseline).
	FlowEdmondsKarp
	// FlowLocalVC forces the randomized local cut engine with its
	// deterministic Dinic fallback.
	FlowLocalVC
)

// The FlowAuto thresholds: LocalVC pays off when the volume around a
// seed is much smaller than the component (large n) and few augmenting
// rounds are needed (small k). Below either threshold Dinic's global
// BFS already touches little, so the local engine is pure overhead.
const (
	autoLocalMaxK        = 8
	autoLocalMinVertices = 128
)

// selectEngine resolves the configured FlowEngine for a component with n
// vertices. Explicit choices pass through; FlowAuto applies the
// small-k/large-component heuristic above.
func (e *enumerator) selectEngine(n int) flow.Engine {
	switch e.opts.FlowEngine {
	case FlowDinic:
		return flow.Dinic
	case FlowEdmondsKarp:
		return flow.EdmondsKarp
	case FlowLocalVC:
		return flow.LocalVC
	default:
		if e.k <= autoLocalMaxK && n >= autoLocalMinVertices {
			return flow.LocalVC
		}
		return flow.Dinic
	}
}

// Options configures Enumerate.
type Options struct {
	// Algorithm selects the GLOBAL-CUT variant. Default VCCEStar.
	Algorithm Algorithm
	// SSVDegreeCap skips the strong-side-vertex test for vertices whose
	// degree exceeds the cap (0 = no cap). Skipping is a sound
	// under-approximation: it can only reduce pruning, never correctness.
	SSVDegreeCap int
	// Parallelism is the number of workers processing independent
	// partitioned subgraphs. Values below 2 select the deterministic
	// serial loop.
	Parallelism int
	// FlowEngine selects the max-flow engine behind LOC-CUT (default
	// FlowAuto). All engines return identical results.
	FlowEngine FlowEngine
	// Seed seeds the randomized LocalVC engine (0 = a fixed default, so
	// the zero value is already reproducible). Every flow network reseeds
	// from this value, which makes the engine's behavior on a component a
	// function of (component, seed) alone — independent of worker
	// scheduling — and seeds never change results, only which queries
	// fall back from the local engine to Dinic.
	Seed uint64
}

// Stats reports the work performed by one Enumerate call. Counters follow
// the paper's measurements: sweep-rule attribution feeds Table 2, the
// partition and memory counters feed Figs. 11-12. The JSON tags define the
// wire form used by the kvccd server's enumerate responses.
type Stats struct {
	GlobalCutCalls int64 `json:"global_cut_calls"` // components examined for a cut
	Partitions     int64 `json:"partitions"`       // overlapped partitions performed
	KCorePeeled    int64 `json:"kcore_peeled"`     // vertices removed by k-core reduction
	FlowRuns       int64 `json:"flow_runs"`        // max-flow computations (non-shortcut LOC-CUT)
	LocCutTests    int64 `json:"loc_cut_tests"`    // LOC-CUT invocations (phase 1 + phase 2)

	// Phase-1 vertex attribution (Table 2). For every vertex visited in
	// the phase-1 loop of GLOBAL-CUT*: either it was already swept by one
	// of the rules, or its local connectivity was tested.
	SweptNS1       int64 `json:"swept_ns1"` // neighbor sweep rule 1 (strong side-vertex)
	SweptNS2       int64 `json:"swept_ns2"` // neighbor sweep rule 2 (vertex deposit)
	SweptGS        int64 `json:"swept_gs"`  // group sweep (side-group rules)
	TestedNonPrune int64 `json:"tested"`    // vertices actually tested

	Phase2Pairs   int64 `json:"phase2_pairs"`   // neighbor pairs tested in phase 2
	Phase2Skipped int64 `json:"phase2_skipped"` // pairs skipped by group sweep rule 3

	SSVDetected  int64 `json:"ssv_detected"`  // strong side-vertices found by the pairwise test
	SSVInherited int64 `json:"ssv_inherited"` // SSVs carried across a partition (Lemmas 15-16)

	CutFallbacks int64 `json:"cut_fallbacks"` // defensive re-computations of an invalid cut (expect 0)
	PeakBytes    int64 `json:"peak_bytes"`    // peak structural bytes held by queued subgraphs + results

	// LocalVC engine accounting: queries attempted by the local cut
	// engine, and how many of those exhausted their repetition budget and
	// fell back to Dinic. Fallbacks cost extra work but never change
	// results. Both are 0 unless the LocalVC engine was selected.
	LocalCutAttempts  int64 `json:"local_cut_attempts,omitempty"`
	LocalCutFallbacks int64 `json:"local_cut_fallbacks,omitempty"`

	// ColdPages counts major page faults taken while this enumeration
	// ran — pages that had to come from disk, i.e. the beyond-RAM cost
	// of the query. The serving layer measures it as a process-wide
	// fault delta around the computation, so attribution is approximate
	// under concurrency; 0 on platforms without fault counters.
	ColdPages int64 `json:"cold_pages,omitempty"`

	// Per-component accounting for the incremental maintenance path
	// (internal/incr): of the k-core connected components of the input,
	// how many were recomputed versus served verbatim from a previous
	// result. A from-scratch run recomputes every component; a single-edge
	// update typically recomputes one.
	ComponentsRecomputed int64 `json:"components_recomputed,omitempty"`
	ComponentsReused     int64 `json:"components_reused,omitempty"`
}

// String summarizes the statistics in one line.
func (s *Stats) String() string {
	return fmt.Sprintf(
		"global-cuts=%d partitions=%d peeled=%d loc-cut=%d flows=%d swept(ns1/ns2/gs)=%d/%d/%d tested=%d",
		s.GlobalCutCalls, s.Partitions, s.KCorePeeled, s.LocCutTests,
		s.FlowRuns, s.SweptNS1, s.SweptNS2, s.SweptGS, s.TestedNonPrune)
}

// Add accumulates s2 into s. Counters sum; PeakBytes takes the maximum,
// matching how independent subproblems contribute to a whole run.
func (s *Stats) Add(s2 *Stats) {
	s.GlobalCutCalls += s2.GlobalCutCalls
	s.Partitions += s2.Partitions
	s.KCorePeeled += s2.KCorePeeled
	s.FlowRuns += s2.FlowRuns
	s.LocCutTests += s2.LocCutTests
	s.SweptNS1 += s2.SweptNS1
	s.SweptNS2 += s2.SweptNS2
	s.SweptGS += s2.SweptGS
	s.TestedNonPrune += s2.TestedNonPrune
	s.Phase2Pairs += s2.Phase2Pairs
	s.Phase2Skipped += s2.Phase2Skipped
	s.SSVDetected += s2.SSVDetected
	s.SSVInherited += s2.SSVInherited
	s.CutFallbacks += s2.CutFallbacks
	s.ColdPages += s2.ColdPages
	s.LocalCutAttempts += s2.LocalCutAttempts
	s.LocalCutFallbacks += s2.LocalCutFallbacks
	s.ComponentsRecomputed += s2.ComponentsRecomputed
	s.ComponentsReused += s2.ComponentsReused
	if s2.PeakBytes > s.PeakBytes {
		s.PeakBytes = s2.PeakBytes
	}
}

// task is one unit of recursive work: a subgraph to decompose, plus the
// strong side-vertex hint inherited from its parent (Lemmas 15-16).
type task struct {
	g    *graph.Graph
	hint *ssvHint
}

// Enumerate computes all k-VCCs of g. The result graphs preserve the
// vertex labels of g; overlapping components share labels. Components are
// returned in a canonical order (largest first, ties by labels).
func Enumerate(g *graph.Graph, k int, opts Options) ([]*graph.Graph, *Stats, error) {
	return EnumerateContext(context.Background(), g, k, opts)
}

// EnumerateContext is Enumerate with cancellation: the recursion checks
// the context between partition steps and returns ctx.Err() once it is
// done, discarding partial results.
func EnumerateContext(ctx context.Context, g *graph.Graph, k int, opts Options) ([]*graph.Graph, *Stats, error) {
	return EnumerateComponentContext(ctx, g, k, opts)
}

// EnumerateComponentContext is the component-scoped entry point of the
// enumeration engine: it decomposes one subgraph — typically a single
// connected component of the k-core, as produced by internal/incr's
// partition step — and returns its k-VCCs in canonical order. The engine
// itself is general (it re-peels and re-splits defensively, so an
// arbitrary graph is also accepted; EnumerateContext is exactly this
// function on the whole graph), but the contract matters for incremental
// maintenance: the k-VCCs of a graph are the disjoint union of the k-VCCs
// of its k-core connected components, so callers may enumerate components
// independently, cache per-component results, and merge.
func EnumerateComponentContext(ctx context.Context, g *graph.Graph, k int, opts Options) ([]*graph.Graph, *Stats, error) {
	if g == nil {
		return nil, nil, errors.New("core: nil graph")
	}
	return EnumerateComponentsContext(ctx, []*graph.Graph{g}, k, opts)
}

// EnumerateComponentsContext decomposes a batch of vertex-disjoint
// subgraphs — typically the k-core connected components an incremental
// update needs to recompute — through one shared driver: every batch
// member seeds the same task queue, so WithParallelism workers balance
// across all components exactly as a whole-graph run would, instead of
// draining one component at a time. The returned k-VCCs cover the whole
// batch in canonical order (components are label-disjoint, so callers
// can attribute each k-VCC to its batch member by any one label).
func EnumerateComponentsContext(ctx context.Context, comps []*graph.Graph, k int, opts Options) ([]*graph.Graph, *Stats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	tasks := make([]task, 0, len(comps))
	for _, g := range comps {
		if g == nil {
			return nil, nil, errors.New("core: nil graph")
		}
		tasks = append(tasks, task{g: g})
	}
	if len(tasks) == 0 {
		// Nothing to do — and the parallel driver must not start: with an
		// empty seed the task queue would never close and the workers
		// would block in pop() forever.
		return nil, &Stats{}, ctx.Err()
	}
	e := &enumerator{k: k, opts: opts, ctx: ctx}
	var results []*graph.Graph
	stats := &Stats{}
	if opts.Parallelism >= 2 {
		results = e.runParallel(tasks, stats)
	} else {
		results = e.runSerial(tasks, stats)
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	SortComponents(results)
	return results, stats, nil
}

type enumerator struct {
	k    int
	opts Options
	ctx  context.Context
}

// workspace bundles the per-worker scratch arenas threaded through the
// recursion: the graph renumbering scratch (subgraph extraction, k-core
// peeling, BFS ordering), the pooled flow network, the sparse-certificate
// buffers, and the reusable per-component cut-finder state. One workspace
// serves a whole driver (or one worker of the parallel pool), so the
// steady-state recursion allocates only what it returns: result
// subgraphs, certificates, cuts, and hints.
type workspace struct {
	graph  graph.Scratch
	flow   flow.Scratch
	sparse sparse.Scratch
	cf     cutFinder

	// Trivial-certificate state for components the CKT construction
	// cannot shrink (see certificate in globalcut.go).
	trivGroupID []int
	trivCert    sparse.Certificate
}

// certificate returns the sparse certificate used for the flow tests on
// component g. When m <= k(n-1) — the CKT edge bound — the certificate
// cannot be asymptotically smaller than the component itself, so the k
// rounds of scan-first search are pure overhead: the component doubles
// as its own certificate (GLOBAL-CUT on the raw graph is always correct;
// the certificate is strictly a flow-size optimization). The trivial
// certificate carries no side groups, so the group sweep degrades
// gracefully to no pruning on such components.
func (ws *workspace) certificate(g *graph.Graph, k int) *sparse.Certificate {
	n := g.NumVertices()
	if g.NumEdges() > sparse.EdgeBound(k, n) {
		return sparse.ComputeScratch(g, k, &ws.sparse)
	}
	if cap(ws.trivGroupID) < n {
		ws.trivGroupID = make([]int, n)
		for i := range ws.trivGroupID {
			ws.trivGroupID[i] = -1
		}
	}
	// The buffer only ever holds -1: nothing writes through GroupID.
	ws.trivCert = sparse.Certificate{SC: g, GroupID: ws.trivGroupID[:n]}
	return &ws.trivCert
}

// runSerial is the deterministic single-threaded driver.
func (e *enumerator) runSerial(seed []task, stats *Stats) []*graph.Graph {
	var results []*graph.Graph
	var ws workspace
	ws.flow.SetSeed(e.opts.Seed)
	// The queue pops LIFO, so load the seeds reversed: batch members are
	// then processed in their given (ascending component) order, which on
	// a mapped snapshot keeps the first pass over each component moving
	// forward through the edges array instead of starting from the back.
	queue := make([]task, len(seed))
	for i, t := range seed {
		queue[len(seed)-1-i] = t
	}
	var liveBytes, resultBytes int64
	for _, t := range seed {
		liveBytes += t.g.Bytes()
	}
	for len(queue) > 0 {
		if e.ctx.Err() != nil {
			return nil
		}
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		liveBytes -= t.g.Bytes()
		children, vccs := e.step(t, stats, &ws)
		for _, c := range children {
			liveBytes += c.g.Bytes()
		}
		for _, v := range vccs {
			resultBytes += v.Bytes()
		}
		if liveBytes+resultBytes > stats.PeakBytes {
			stats.PeakBytes = liveBytes + resultBytes
		}
		queue = append(queue, children...)
		results = append(results, vccs...)
	}
	return results
}

// runParallel processes independent subgraphs with a worker pool. The
// result set is identical to the serial driver; only discovery order
// differs (and is then canonicalized). Live/result byte tracking mirrors
// runSerial but uses atomics: each worker settles its task's byte delta
// and races the observed total against the shared peak, so parallel runs
// report a PeakBytes comparable to (not byte-equal with) the serial one.
func (e *enumerator) runParallel(seed []task, stats *Stats) []*graph.Graph {
	var (
		mu      sync.Mutex
		results []*graph.Graph

		liveBytes, resultBytes, peakBytes atomic.Int64
	)
	// Mirror runSerial: the input starts as live bytes, and the peak is
	// observed at task settlement points only, so a run that peels
	// everything in one step reports 0 in both drivers.
	var seedBytes int64
	for _, t := range seed {
		seedBytes += t.g.Bytes()
	}
	liveBytes.Store(seedBytes)
	q := newTaskQueue()
	for _, t := range seed {
		q.push(t)
	}
	var workers sync.WaitGroup
	for w := 0; w < e.opts.Parallelism; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			var ws workspace
			ws.flow.SetSeed(e.opts.Seed)
			for {
				t, ok := q.pop()
				if !ok {
					return
				}
				if e.ctx.Err() != nil {
					q.finish() // drain without processing
					continue
				}
				local := &Stats{}
				children, vccs := e.step(t, local, &ws)
				delta := -t.g.Bytes()
				for _, c := range children {
					delta += c.g.Bytes()
				}
				var resDelta int64
				for _, v := range vccs {
					resDelta += v.Bytes()
				}
				total := liveBytes.Add(delta) + resultBytes.Add(resDelta)
				for {
					peak := peakBytes.Load()
					if total <= peak || peakBytes.CompareAndSwap(peak, total) {
						break
					}
				}
				mu.Lock()
				stats.Add(local)
				results = append(results, vccs...)
				mu.Unlock()
				// Children go in before finish so the queue cannot observe
				// a zero in-flight count while work remains.
				for _, c := range children {
					q.push(c)
				}
				q.finish()
			}
		}()
	}
	workers.Wait()
	if peak := peakBytes.Load(); peak > stats.PeakBytes {
		stats.PeakBytes = peak
	}
	return results
}

// step performs one level of Algorithm 1 on a queued subgraph: k-core
// reduction, component split, cut search, and overlapped partition. It
// returns the child tasks and any k-VCCs found. The workspace is reused
// for every subgraph extraction, certificate, and flow network in this
// step (and across the caller's steps), which keeps the hot recursion at
// a constant number of allocations per extracted subgraph.
func (e *enumerator) step(t task, stats *Stats, ws *workspace) (children []task, vccs []*graph.Graph) {
	scratch := &ws.graph
	cored, peeled := kcore.ReduceScratch(t.g, e.k, scratch)
	stats.KCorePeeled += int64(peeled)
	if cored.NumVertices() == 0 {
		return nil, nil
	}
	comps := cored.ConnectedComponents()
	for ci, comp := range comps {
		// On a mapped graph, overlap I/O with compute: while this
		// component is extracted and decomposed, the next one's byte range
		// is already faulting in. (External() gates the min/max scan; the
		// hint itself is a no-op without an advisor.)
		if cored.External() && ci+1 < len(comps) {
			adviseRange(cored, comps[ci+1])
		}
		var sub *graph.Graph
		if len(comps) == 1 && cored.NumVertices() == len(comp) {
			// Whole graph survived reduction in one piece. Materialize
			// copies it off a mapped snapshot before the cut search's
			// random-access flow probes; for heap graphs it is the
			// identity, preserving the zero-copy fast path.
			sub = cored.Materialize()
		} else {
			sub = cored.InducedSubgraphScratch(comp, scratch)
		}
		if sub.NumVertices() <= e.k {
			// Cannot satisfy Definition 2; unreachable after k-core
			// reduction (min degree >= k implies n >= k+1) but kept as a
			// guard.
			continue
		}
		stats.GlobalCutCalls++
		cut, childHint := e.findCut(sub, t.hint, stats, ws)
		if cut == nil {
			vccs = append(vccs, sub)
			continue
		}
		parts := overlapPartition(sub, cut, scratch)
		if len(parts) < 2 {
			// The cut failed to disconnect the component. With a correct
			// sparse certificate this cannot happen; recompute the cut on
			// the raw graph as a defensive fallback.
			stats.CutFallbacks++
			cut = e.findCutRaw(sub, stats, ws)
			if cut == nil {
				vccs = append(vccs, sub)
				continue
			}
			parts = overlapPartition(sub, cut, scratch)
			if len(parts) < 2 {
				panic("core: vertex cut does not disconnect component")
			}
		}
		stats.Partitions++
		for _, p := range parts {
			children = append(children, task{g: p, hint: childHint})
		}
	}
	return children, vccs
}

// adviseRange forwards a WillNeed hint covering the vertex-id span of
// comp (a connected-component vertex list in g's id space). The span may
// overestimate — components interleave — but readahead over a superset
// only prefetches bytes a later component needs anyway.
func adviseRange(g *graph.Graph, comp []int) {
	if len(comp) == 0 {
		return
	}
	lo, hi := comp[0], comp[0]
	for _, v := range comp {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	g.AdviseWillNeed(lo, hi)
}

// overlapPartition implements OVERLAP-PARTITION (Algorithm 1, lines 13-18):
// remove the cut, and return for every remaining connected component the
// subgraph induced by the component plus the whole cut.
func overlapPartition(g *graph.Graph, cut []int, scratch *graph.Scratch) []*graph.Graph {
	inCut := make([]bool, g.NumVertices())
	for _, v := range cut {
		inCut[v] = true
	}
	n := g.NumVertices()
	seen := make([]bool, n)
	var parts []*graph.Graph
	stack := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if seen[s] || inCut[s] {
			continue
		}
		seen[s] = true
		stack = append(stack[:0], s)
		comp := []int{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(v) {
				if !seen[w] && !inCut[w] {
					seen[w] = true
					comp = append(comp, w)
					stack = append(stack, w)
				}
			}
		}
		comp = append(comp, cut...)
		// Ascending vertex lists hit InducedSubgraphScratch's monotone
		// fast path: the renumbering preserves run order, so no adjacency
		// run is ever re-sorted. One small sort here replaces one sort
		// per vertex there.
		sort.Ints(comp)
		parts = append(parts, g.InducedSubgraphScratch(comp, scratch))
	}
	return parts
}

// SortComponents puts components in a canonical order: by descending
// vertex count, then lexicographically by sorted label sequence. Every
// Enumerate result is in this order; the hierarchy package applies the
// same ordering to its levels so that an index-served level is
// indistinguishable from a direct enumeration.
func SortComponents(comps []*graph.Graph) {
	keys := make(map[*graph.Graph][]int64, len(comps))
	for _, c := range comps {
		keys[c] = SortedLabels(c)
	}
	sort.Slice(comps, func(i, j int) bool {
		return LabelsLess(keys[comps[i]], keys[comps[j]])
	})
}

// SortedLabels returns the component's vertex labels in ascending order.
func SortedLabels(c *graph.Graph) []int64 {
	labels := append([]int64(nil), c.Labels()...)
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	return labels
}

// LabelsLess is the canonical component order on sorted label slices:
// larger components first, ties broken lexicographically.
func LabelsLess(a, b []int64) bool {
	if len(a) != len(b) {
		return len(a) > len(b)
	}
	for x := range a {
		if a[x] != b[x] {
			return a[x] < b[x]
		}
	}
	return false
}
