package core

import "kvcc/graph"

// Strong side-vertex (SSV) handling, Theorem 8 and Lemmas 14-16.
//
// A vertex u is a strong side-vertex if every pair of its neighbors is
// adjacent or shares at least k common neighbors; such a vertex cannot
// belong to any qualified vertex cut, which powers neighbor sweep rule 1,
// group sweep rule 1, source selection, and the phase-2 skip.
//
// Resolution is lazy and memoized: GLOBAL-CUT* on a component that is not
// k-connected typically finds a cut after testing one or two far vertices,
// so only the handful of SSV statuses actually queried by the sweeps are
// ever computed. Terminal (k-connected) components resolve more statuses,
// but they are exactly the components where the answers pay for themselves
// by sweeping phase 1 and skipping phase 2.

const (
	ssvUnknown int8 = iota
	ssvYes
	ssvNo
)

// ssvHint carries resolved SSV knowledge from a parent component to the
// subgraphs created by partitioning it:
//
//   - Lemma 15: a non-SSV of the parent cannot be an SSV of any child, so
//     a resolved "no" propagates as "no".
//   - Lemma 16 (strengthened to survive the k-core reduction between
//     partitions): a parent SSV whose own degree and all of whose
//     neighbors' degrees are unchanged in the child has an identical
//     two-hop structure there and remains an SSV without rechecking.
//     Children only ever remove vertices and edges, so equal degree means
//     equal neighborhood.
//
// Unresolved vertices stay unknown and are rechecked on the child graph if
// ever queried, which is intrinsically sound.
type ssvHint struct {
	ssv map[int64]bool // resolved statuses by label (true = SSV)
	deg map[int64]int  // parent degrees of SSVs and of their neighbors
}

// isSSV resolves the strong side-vertex status of v, memoized.
func (cf *cutFinder) isSSV(v int) bool {
	switch cf.ssvMemo[v] {
	case ssvYes:
		return true
	case ssvNo:
		return false
	}
	res := cf.resolveSSV(v)
	if res {
		cf.ssvMemo[v] = ssvYes
	} else {
		cf.ssvMemo[v] = ssvNo
	}
	return res
}

func (cf *cutFinder) resolveSSV(v int) bool {
	if h := cf.hint; h != nil {
		lab := cf.g.Label(v)
		if known, resolved := h.ssv[lab]; resolved {
			if !known {
				return false // Lemma 15
			}
			if h.preserved(cf.g, v) {
				cf.stats.SSVInherited++
				return true // Lemma 16
			}
		}
	}
	if cf.checkSSV(v) {
		cf.stats.SSVDetected++
		return true
	}
	return false
}

// buildHint snapshots the resolved part of the memo for the child tasks.
func (cf *cutFinder) buildHint() *ssvHint {
	h := &ssvHint{ssv: make(map[int64]bool), deg: make(map[int64]int)}
	for v, st := range cf.ssvMemo {
		switch st {
		case ssvYes:
			lab := cf.g.Label(v)
			h.ssv[lab] = true
			h.deg[lab] = cf.g.Degree(v)
			for _, w := range cf.g.Neighbors(v) {
				h.deg[cf.g.Label(w)] = cf.g.Degree(w)
			}
		case ssvNo:
			h.ssv[cf.g.Label(v)] = false
		}
	}
	return h
}

// preserved reports whether vertex v of g kept its parent degree and all
// its neighbors kept theirs (the Lemma 16 shortcut condition).
func (h *ssvHint) preserved(g *graph.Graph, v int) bool {
	if d, ok := h.deg[g.Label(v)]; !ok || d != g.Degree(v) {
		return false
	}
	for _, w := range g.Neighbors(v) {
		if d, ok := h.deg[g.Label(w)]; !ok || d != g.Degree(w) {
			return false
		}
	}
	return true
}

// checkSSV runs the Theorem 8 test: v is a strong side-vertex if every
// pair of its neighbors is adjacent or shares at least k common neighbors.
// Vertices above the degree cap are reported non-SSV (a sound
// under-approximation). The common-neighbor count stops as soon as it
// reaches k.
//
// The pairwise tests used to dominate enumeration profiles as binary
// searches (adjacency) and sorted merges (common neighbors). Instead, the
// outer loop stamps N(a) into a generation-stamped membership array once
// per neighbor a; adjacency then is one O(1) lookup and the common count
// one early-exiting scan of N(b).
func (cf *cutFinder) checkSSV(v int) bool {
	g := cf.g
	nbrs := g.Neighbors(v)
	if cf.ssvDegreeCap > 0 && len(nbrs) > cf.ssvDegreeCap {
		return false
	}
	for i := 0; i < len(nbrs); i++ {
		a := nbrs[i]
		cf.nbGen++
		gen := cf.nbGen
		for _, w := range g.Neighbors(a) {
			cf.nbStamp[w] = gen
		}
		for _, b := range nbrs[i+1:] {
			if cf.nbStamp[b] == gen {
				continue // a and b adjacent
			}
			count := 0
			for _, w := range g.Neighbors(b) {
				if cf.nbStamp[w] == gen {
					count++
					if count >= cf.k {
						break
					}
				}
			}
			if count < cf.k {
				return false
			}
		}
	}
	return true
}
