package core

import (
	"testing"

	"kvcc/graph"
)

// Boundary behaviour of the overlap size: two dense blocks sharing
// exactly s vertices separate at k = s+1 and merge at k <= s (if the
// union is k-connected).

func blocksSharing(blockSize, shared int) *graph.Graph {
	n := 2*blockSize - shared
	var edges [][2]int
	addClique := func(vs []int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, [2]int{vs[i], vs[j]})
			}
		}
	}
	a := make([]int, blockSize)
	for i := range a {
		a[i] = i
	}
	b := make([]int, blockSize)
	for i := range b {
		b[i] = blockSize - shared + i
	}
	addClique(a)
	addClique(b)
	return graph.FromEdges(n, edges)
}

func TestOverlapBoundaryExactlyKMinusOne(t *testing.T) {
	// Shared set of size 3: at k=4 the shared set is a qualified cut
	// (|S| = 3 < 4), so the blocks separate and overlap in exactly k-1
	// vertices — the maximum Property 1 allows.
	g := blocksSharing(8, 3)
	for _, algo := range allAlgorithms {
		comps := enumerate(t, g, 4, algo)
		if len(comps) != 2 {
			t.Fatalf("%v: %d components, want 2", algo, len(comps))
		}
		shared := overlapCount(comps[0], comps[1])
		if shared != 3 {
			t.Fatalf("%v: overlap = %d, want 3", algo, shared)
		}
	}
}

func TestOverlapBoundaryExactlyK(t *testing.T) {
	// Shared set of size 4: at k=4 no cut smaller than k separates the
	// blocks, so the union is one 4-VCC.
	g := blocksSharing(8, 4)
	for _, algo := range allAlgorithms {
		comps := enumerate(t, g, 4, algo)
		if len(comps) != 1 {
			t.Fatalf("%v: %d components, want 1 (blocks must merge)", algo, len(comps))
		}
		if comps[0].NumVertices() != g.NumVertices() {
			t.Fatalf("%v: merged component has %d vertices", algo, comps[0].NumVertices())
		}
	}
}

func TestMinimalQualifyingGraph(t *testing.T) {
	// K_{k+1} is the smallest possible k-VCC.
	for k := 1; k <= 5; k++ {
		g := complete(k + 1)
		for _, algo := range allAlgorithms {
			comps := enumerate(t, g, k, algo)
			if len(comps) != 1 || comps[0].NumVertices() != k+1 {
				t.Fatalf("k=%d %v: comps=%d", k, algo, len(comps))
			}
		}
	}
}

func TestStarGraphHasNoKVCC(t *testing.T) {
	// A star has κ = 1; for k >= 2 nothing qualifies.
	var edges [][2]int
	for i := 1; i < 10; i++ {
		edges = append(edges, [2]int{0, i})
	}
	g := graph.FromEdges(10, edges)
	for _, algo := range allAlgorithms {
		if comps := enumerate(t, g, 2, algo); len(comps) != 0 {
			t.Fatalf("%v: star produced %d 2-VCCs", algo, len(comps))
		}
	}
}

// A long chain of blocks forces deep partition recursion; the result must
// still be exact and the partition count within Lemma 10's bound.
func TestDeepPartitionChain(t *testing.T) {
	const blocks = 20
	var edges [][2]int
	addClique := func(vs []int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, [2]int{vs[i], vs[j]})
			}
		}
	}
	n := 0
	prevTail := -1
	for b := 0; b < blocks; b++ {
		vs := make([]int, 6)
		for i := range vs {
			if i == 0 && prevTail >= 0 {
				vs[i] = prevTail // single shared vertex between blocks
			} else {
				vs[i] = n
				n++
			}
		}
		addClique(vs)
		prevTail = vs[5]
	}
	g := graph.FromEdges(n, edges)
	for _, algo := range allAlgorithms {
		comps, stats, err := Enumerate(g, 2, Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if len(comps) != blocks {
			t.Fatalf("%v: %d components, want %d", algo, len(comps), blocks)
		}
		if stats.Partitions > int64(n)/2 {
			t.Fatalf("%v: %d partitions exceeds Lemma 10 bound", algo, stats.Partitions)
		}
	}
}

func overlapCount(a, b *graph.Graph) int {
	set := map[int64]bool{}
	for _, l := range a.Labels() {
		set[l] = true
	}
	count := 0
	for _, l := range b.Labels() {
		if set[l] {
			count++
		}
	}
	return count
}
