package core

import "sync"

// taskQueue is the shared work frontier of the parallel driver: an
// unbounded mutex-guarded deque. The previous implementation was a
// channel of capacity NumVertices()+4, allocated up front — O(n) memory
// per Enumerate call on multi-million-vertex graphs. The deque instead
// grows with the actual frontier (bounded by the total partition count,
// < n/2 by Lemma 10, but in practice a handful of tasks) while keeping
// the invariant the channel capacity existed to provide: a producer
// never blocks, so a worker holding the only runnable task can always
// hand its children over and terminate.
type taskQueue struct {
	mu      sync.Mutex
	cond    sync.Cond
	items   []task
	pending int  // tasks pushed and not yet finished
	done    bool // pending hit zero: the recursion is complete
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond.L = &q.mu
	return q
}

// push enqueues t. It never blocks; the backing slice grows as needed.
func (q *taskQueue) push(t task) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop dequeues a task, blocking while the queue is empty but tasks are
// still in flight (an in-flight task may push children). ok = false
// means every pushed task has been finished and the queue is closed for
// good. LIFO order keeps the frontier depth-first and therefore narrow,
// mirroring the serial driver's stack.
func (q *taskQueue) pop() (t task, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.done {
		q.cond.Wait()
	}
	if q.done {
		return task{}, false
	}
	last := len(q.items) - 1
	t = q.items[last]
	q.items[last] = task{} // drop the reference so the subgraph can be freed
	q.items = q.items[:last]
	return t, true
}

// finish marks one popped task complete. Workers must push a task's
// children before calling finish, so pending can only reach zero when no
// task is queued or in flight anywhere; that zero crossing closes the
// queue and wakes every blocked pop.
func (q *taskQueue) finish() {
	q.mu.Lock()
	q.pending--
	if q.pending == 0 {
		q.done = true
		q.mu.Unlock()
		q.cond.Broadcast()
		return
	}
	q.mu.Unlock()
}
