package core

import (
	"sort"
	"testing"

	"kvcc/graph"
	"kvcc/internal/verify"
)

// FuzzEnumerateMatchesBrute decodes a byte string into a small graph (each
// byte contributes one edge of K9) and checks all four algorithm variants
// against the brute-force oracle.
func FuzzEnumerateMatchesBrute(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x34, 0x45}, 2)
	f.Add([]byte{0x01, 0x02, 0x12, 0x34, 0x35, 0x45, 0x03}, 2)
	f.Add([]byte{0xff, 0x80, 0x42, 0x17, 0x29, 0x3a, 0x4b, 0x5c}, 3)
	f.Fuzz(func(t *testing.T, data []byte, kRaw int) {
		if len(data) > 24 {
			data = data[:24]
		}
		const n = 9
		var edges [][2]int
		for _, b := range data {
			u := int(b>>4) % n
			v := int(b&0x0f) % n
			if u != v {
				edges = append(edges, [2]int{u, v})
			}
		}
		g := graph.FromEdges(n, edges)
		k := 2 + abs(kRaw)%3 // k in 2..4

		want := canonicalSets(verify.KVCCBrute(g, k))
		for _, algo := range []Algorithm{VCCE, VCCEN, VCCEG, VCCEStar} {
			comps, _, err := Enumerate(g, k, Options{Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			got := canonicalSets(componentLabels(comps))
			if !setsEqual(got, want) {
				t.Fatalf("%v k=%d: got %v, want %v (edges %v)",
					algo, k, got, want, edges)
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // MinInt
			return 0
		}
		return -v
	}
	return v
}

func componentLabels(comps []*graph.Graph) [][]int64 {
	out := make([][]int64, 0, len(comps))
	for _, c := range comps {
		out = append(out, append([]int64(nil), c.Labels()...))
	}
	return out
}

func canonicalSets(sets [][]int64) [][]int64 {
	for _, s := range sets {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return sets
}

func setsEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
