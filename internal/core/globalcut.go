package core

import (
	"kvcc/graph"
	"kvcc/internal/flow"
	"kvcc/internal/sparse"
)

// findCut searches a connected component for a vertex cut with fewer than
// k vertices. It returns nil if the component is k-connected. The returned
// hint carries this component's strong side-vertex set to its children.
func (e *enumerator) findCut(g *graph.Graph, hint *ssvHint, stats *Stats, ws *workspace) ([]int, *ssvHint) {
	if e.opts.Algorithm == VCCE {
		return e.findCutBasic(g, stats, ws), nil
	}
	return e.findCutOptimized(g, hint, stats, ws)
}

// findCutBasic is GLOBAL-CUT (Algorithm 2): sparse certificate, then local
// connectivity tests from a minimum-degree source against every vertex
// (phase 1) and between every pair of the source's neighbors (phase 2,
// Lemma 4).
func (e *enumerator) findCutBasic(g *graph.Graph, stats *Stats, ws *workspace) []int {
	cert := ws.certificate(g, e.k)
	sc := cert.SC
	nw := flow.NewNetworkScratch(sc, e.k, &ws.flow)
	nw.SetEngine(e.selectEngine(sc.NumVertices()))
	defer func() {
		stats.FlowRuns += nw.FlowRuns
		stats.LocalCutAttempts += nw.LocalAttempts
		stats.LocalCutFallbacks += nw.LocalFallbacks
	}()

	u, _ := sc.MinDegreeVertex()
	for v := 0; v < sc.NumVertices(); v++ {
		if v == u {
			continue
		}
		stats.LocCutTests++
		stats.TestedNonPrune++
		if g.HasEdge(u, v) {
			continue // Lemma 5: adjacent vertices are k-local connected
		}
		if cut, _, atLeast := nw.MinVertexCut(u, v); !atLeast {
			return cut
		}
	}
	nbrs := sc.Neighbors(u)
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			stats.LocCutTests++
			stats.Phase2Pairs++
			if g.HasEdge(nbrs[i], nbrs[j]) {
				continue
			}
			if cut, _, atLeast := nw.MinVertexCut(nbrs[i], nbrs[j]); !atLeast {
				return cut
			}
		}
	}
	return nil
}

// findCutRaw is the defensive fallback: the basic two-phase search run on
// the raw component without a sparse certificate, so any cut it finds is a
// cut of the component by construction.
func (e *enumerator) findCutRaw(g *graph.Graph, stats *Stats, ws *workspace) []int {
	// Deliberately stays on Dinic: this path only runs after a cut
	// validation failure, where predictable, engine-independent behavior
	// matters more than speed.
	nw := flow.NewNetworkScratch(g, e.k, &ws.flow)
	defer func() { stats.FlowRuns += nw.FlowRuns }()
	u, _ := g.MinDegreeVertex()
	for v := 0; v < g.NumVertices(); v++ {
		stats.LocCutTests++
		if cut, _, atLeast := nw.MinVertexCut(u, v); !atLeast {
			return cut
		}
	}
	nbrs := g.Neighbors(u)
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			stats.LocCutTests++
			if cut, _, atLeast := nw.MinVertexCut(nbrs[i], nbrs[j]); !atLeast {
				return cut
			}
		}
	}
	return nil
}

// sweep causes recorded per vertex for Table 2 attribution.
const (
	causeNone   uint8 = iota
	causeSeed         // the source vertex itself
	causeTested       // swept after its own successful test
	causeNS1          // neighbor sweep rule 1: neighbor of a strong side-vertex
	causeNS2          // neighbor sweep rule 2: vertex deposit reached k
	causeGS           // group sweep rules 1-2
)

// cutFinder holds the per-component state of GLOBAL-CUT* (Algorithm 3).
// One cutFinder lives in each workspace and is re-primed per component by
// reset, so its buffers warm up to the largest component a worker sees
// and the per-component cost is clearing, not allocating.
type cutFinder struct {
	g  *graph.Graph // the component (sweeps, deposits, SSV tests)
	sc *graph.Graph // sparse certificate (flow tests, phase-2 neighbors)
	k  int
	nw *flow.Network

	useNS, useGS bool

	hint         *ssvHint
	ssvMemo      []int8
	ssvDegreeCap int
	stats        *Stats

	groupID []int
	groups  [][]int

	pru        []bool
	cause      []uint8
	deposit    []int
	gDeposit   []int
	gProcessed []bool

	stack  []int // scratch for iterative sweep
	order  []int // phase-1 vertex ordering
	counts []int // counting-sort buckets for the ordering

	// Neighborhood membership stamps for the SSV pairwise test. Stamps
	// only ever hold generations already issued, so growing the buffer
	// within capacity across components is safe: a strictly increasing
	// counter can never collide with a re-exposed stale stamp.
	nbStamp []int64
	nbGen   int64
}

// growClear reslices s to length n with every element zeroed,
// reallocating only when the capacity is insufficient.
func growClear[T bool | int | int8 | uint8](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// reset primes cf for a new component.
func (cf *cutFinder) reset(e *enumerator, g *graph.Graph, cert *sparse.Certificate, hint *ssvHint, stats *Stats, ws *workspace) {
	n := g.NumVertices()
	cf.g = g
	cf.sc = cert.SC
	cf.k = e.k
	cf.nw = flow.NewNetworkScratch(cert.SC, e.k, &ws.flow)
	cf.nw.SetEngine(e.selectEngine(cert.SC.NumVertices()))
	cf.useNS = e.opts.Algorithm.neighborSweep()
	cf.useGS = e.opts.Algorithm.groupSweep()
	cf.hint = hint
	cf.ssvDegreeCap = e.opts.SSVDegreeCap
	cf.stats = stats
	cf.ssvMemo = growClear(cf.ssvMemo, n)
	cf.pru = growClear(cf.pru, n)
	cf.cause = growClear(cf.cause, n)
	cf.deposit = growClear(cf.deposit, n)
	if cap(cf.nbStamp) < n {
		cf.nbStamp = make([]int64, n)
	} else {
		cf.nbStamp = cf.nbStamp[:n]
	}
	if cf.useGS {
		cf.groupID = cert.GroupID
		cf.groups = cert.SideGroups
		cf.gDeposit = growClear(cf.gDeposit, len(cf.groups))
		cf.gProcessed = growClear(cf.gProcessed, len(cf.groups))
	} else {
		cf.groupID, cf.groups = nil, nil
	}
}

// findCutOptimized is GLOBAL-CUT* (Algorithm 3) with the sweep strategies
// selected by the algorithm variant.
func (e *enumerator) findCutOptimized(g *graph.Graph, hint *ssvHint, stats *Stats, ws *workspace) ([]int, *ssvHint) {
	cert := ws.certificate(g, e.k)
	cf := &ws.cf
	cf.reset(e, g, cert, hint, stats, ws)
	defer func() {
		stats.FlowRuns += cf.nw.FlowRuns
		stats.LocalCutAttempts += cf.nw.LocalAttempts
		stats.LocalCutFallbacks += cf.nw.LocalFallbacks
	}()

	n := g.NumVertices()

	// Source selection (Algorithm 3, lines 4-7): prefer a strong
	// side-vertex, since the source then cannot belong to any qualified
	// cut and phase 2 can be skipped entirely. SSV statuses resolve
	// lazily, so the scan is bounded; if no SSV turns up quickly, fall
	// back to the minimum-degree vertex as in Algorithm 2.
	u := -1
	scan := n
	if scan > ssvSourceScanLimit {
		scan = ssvSourceScanLimit
	}
	for v := 0; v < scan; v++ {
		if cf.isSSV(v) {
			u = v
			break
		}
	}
	if u == -1 {
		// Minimum degree in the sparse certificate: phase 2 enumerates
		// pairs of N_SC(u), so the certificate degree is the quantity to
		// minimize.
		u, _ = cf.sc.MinDegreeVertex()
	}
	cf.sweep(u, causeSeed)

	// Phase 1: process vertices in non-ascending distance from u
	// (Algorithm 3, line 11) — remote vertices are the most likely to be
	// separated from the source.
	order := cf.orderByDistance(g.BFSDistancesScratch(u, &ws.graph), u)
	for _, v := range order {
		if cf.pru[v] {
			switch cf.cause[v] {
			case causeNS1:
				stats.SweptNS1++
			case causeNS2:
				stats.SweptNS2++
			case causeGS:
				stats.SweptGS++
			}
			continue
		}
		stats.LocCutTests++
		stats.TestedNonPrune++
		if !cf.g.HasEdge(u, v) { // Lemma 5 shortcut on the full component
			if cut, _, atLeast := cf.nw.MinVertexCut(u, v); !atLeast {
				return cut, cf.buildHint()
			}
		}
		cf.sweep(v, causeTested)
	}

	// Phase 2 (Algorithm 3, lines 16-21): only needed if the source could
	// itself belong to a cut.
	if !cf.isSSV(u) {
		nbrs := cf.sc.Neighbors(u)
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				va, vb := nbrs[i], nbrs[j]
				if cf.useGS && cf.groupID[va] >= 0 && cf.groupID[va] == cf.groupID[vb] {
					stats.Phase2Skipped++ // group sweep rule 3
					continue
				}
				stats.LocCutTests++
				stats.Phase2Pairs++
				if cf.g.HasEdge(va, vb) {
					continue
				}
				if cut, _, atLeast := cf.nw.MinVertexCut(va, vb); !atLeast {
					return cut, cf.buildHint()
				}
			}
		}
	}
	// No cut: the component is a k-VCC and will never be partitioned, so
	// there are no children to hand a hint to — skip building one. This
	// matters: terminal components resolve the most SSV statuses (full
	// phase-1 and phase-2 scans), which made their discarded hints the
	// most expensive ones.
	return nil, nil
}

// orderByDistance lays out the vertices other than u in non-ascending
// BFS distance from u, ties broken by ascending vertex id. Distances are
// small integers, so a counting sort bucketed by distance replaces the
// closure-based comparison sort that used to show up on profiles of
// large components; a single ascending placement scan keeps ties in
// ascending id order, so the result is identical to the old sort.
// Unreachable vertices (distance -1 — impossible for a connected
// component, but the +1 bucket shift keeps them well-defined) come last,
// as they did under the old comparator. The returned slice is owned by
// cf and valid until its next use.
func (cf *cutFinder) orderByDistance(dist []int, u int) []int {
	n := len(dist)
	maxD := 0
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	counts := growClear(cf.counts, maxD+2)
	for v := 0; v < n; v++ {
		if v != u {
			counts[dist[v]+1]++
		}
	}
	// Rewrite counts into write cursors for a descending-bucket layout:
	// the bucket of the largest distance starts at 0.
	start := 0
	for b := maxD + 1; b >= 0; b-- {
		c := counts[b]
		counts[b] = start
		start += c
	}
	cf.counts = counts
	if cap(cf.order) < n-1 {
		cf.order = make([]int, n-1)
	}
	order := cf.order[:n-1]
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		b := dist[v] + 1
		order[counts[b]] = v
		counts[b]++
	}
	cf.order = order
	return order
}

// ssvSourceScanLimit bounds the lazy scan for a strong side-vertex source.
const ssvSourceScanLimit = 64

// sweep marks v as swept (u ≡k v is established) and propagates the
// neighbor-sweep and group-sweep rules iteratively (Algorithm 4).
func (cf *cutFinder) sweep(v int, cause uint8) {
	if cf.pru[v] {
		return
	}
	cf.pru[v] = true
	cf.cause[v] = cause
	cf.stack = append(cf.stack[:0], v)
	for len(cf.stack) > 0 {
		x := cf.stack[len(cf.stack)-1]
		cf.stack = cf.stack[:len(cf.stack)-1]

		if cf.useNS {
			xIsSSV := cf.isSSV(x)
			for _, w := range cf.g.Neighbors(x) {
				if cf.pru[w] {
					continue
				}
				cf.deposit[w]++
				switch {
				case xIsSSV: // neighbor sweep rule 1 (Theorem 8 + Lemma 11)
					cf.mark(w, causeNS1)
				case cf.deposit[w] >= cf.k: // neighbor sweep rule 2 (Theorem 9)
					cf.mark(w, causeNS2)
				}
			}
		}
		if cf.useGS {
			gid := cf.groupID[x]
			if gid >= 0 && !cf.gProcessed[gid] {
				cf.gDeposit[gid]++
				// Group sweep rule 1 (strong side-vertex member) or
				// rule 2 (group deposit reached k, Theorem 11).
				if cf.isSSV(x) || cf.gDeposit[gid] >= cf.k {
					cf.gProcessed[gid] = true
					for _, w := range cf.groups[gid] {
						if !cf.pru[w] {
							cf.mark(w, causeGS)
						}
					}
				}
			}
		}
	}
}

func (cf *cutFinder) mark(w int, cause uint8) {
	cf.pru[w] = true
	cf.cause[w] = cause
	cf.stack = append(cf.stack, w)
}
