package core

import (
	"sort"

	"kvcc/graph"
	"kvcc/internal/flow"
	"kvcc/internal/sparse"
)

// findCut searches a connected component for a vertex cut with fewer than
// k vertices. It returns nil if the component is k-connected. The returned
// hint carries this component's strong side-vertex set to its children.
func (e *enumerator) findCut(g *graph.Graph, hint *ssvHint, stats *Stats) ([]int, *ssvHint) {
	if e.opts.Algorithm == VCCE {
		return e.findCutBasic(g, stats), nil
	}
	return e.findCutOptimized(g, hint, stats)
}

// findCutBasic is GLOBAL-CUT (Algorithm 2): sparse certificate, then local
// connectivity tests from a minimum-degree source against every vertex
// (phase 1) and between every pair of the source's neighbors (phase 2,
// Lemma 4).
func (e *enumerator) findCutBasic(g *graph.Graph, stats *Stats) []int {
	cert := sparse.Compute(g, e.k)
	sc := cert.SC
	nw := flow.NewNetwork(sc, e.k)
	defer func() { stats.FlowRuns += nw.FlowRuns }()

	u, _ := sc.MinDegreeVertex()
	for v := 0; v < sc.NumVertices(); v++ {
		if v == u {
			continue
		}
		stats.LocCutTests++
		stats.TestedNonPrune++
		if g.HasEdge(u, v) {
			continue // Lemma 5: adjacent vertices are k-local connected
		}
		if cut, _, atLeast := nw.MinVertexCut(u, v); !atLeast {
			return cut
		}
	}
	nbrs := sc.Neighbors(u)
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			stats.LocCutTests++
			stats.Phase2Pairs++
			if g.HasEdge(nbrs[i], nbrs[j]) {
				continue
			}
			if cut, _, atLeast := nw.MinVertexCut(nbrs[i], nbrs[j]); !atLeast {
				return cut
			}
		}
	}
	return nil
}

// findCutRaw is the defensive fallback: the basic two-phase search run on
// the raw component without a sparse certificate, so any cut it finds is a
// cut of the component by construction.
func (e *enumerator) findCutRaw(g *graph.Graph, stats *Stats) []int {
	nw := flow.NewNetwork(g, e.k)
	defer func() { stats.FlowRuns += nw.FlowRuns }()
	u, _ := g.MinDegreeVertex()
	for v := 0; v < g.NumVertices(); v++ {
		stats.LocCutTests++
		if cut, _, atLeast := nw.MinVertexCut(u, v); !atLeast {
			return cut
		}
	}
	nbrs := g.Neighbors(u)
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			stats.LocCutTests++
			if cut, _, atLeast := nw.MinVertexCut(nbrs[i], nbrs[j]); !atLeast {
				return cut
			}
		}
	}
	return nil
}

// sweep causes recorded per vertex for Table 2 attribution.
const (
	causeNone   uint8 = iota
	causeSeed         // the source vertex itself
	causeTested       // swept after its own successful test
	causeNS1          // neighbor sweep rule 1: neighbor of a strong side-vertex
	causeNS2          // neighbor sweep rule 2: vertex deposit reached k
	causeGS           // group sweep rules 1-2
)

// cutFinder holds the per-component state of GLOBAL-CUT* (Algorithm 3).
type cutFinder struct {
	g  *graph.Graph // the component (sweeps, deposits, SSV tests)
	sc *graph.Graph // sparse certificate (flow tests, phase-2 neighbors)
	k  int
	nw *flow.Network

	useNS, useGS bool

	hint         *ssvHint
	ssvMemo      []int8
	ssvDegreeCap int
	stats        *Stats

	groupID []int
	groups  [][]int

	pru        []bool
	cause      []uint8
	deposit    []int
	gDeposit   []int
	gProcessed []bool

	stack []int // scratch for iterative sweep
}

// findCutOptimized is GLOBAL-CUT* (Algorithm 3) with the sweep strategies
// selected by the algorithm variant.
func (e *enumerator) findCutOptimized(g *graph.Graph, hint *ssvHint, stats *Stats) ([]int, *ssvHint) {
	k := e.k
	cert := sparse.Compute(g, k)
	cf := &cutFinder{
		g:            g,
		sc:           cert.SC,
		k:            k,
		nw:           flow.NewNetwork(cert.SC, k),
		useNS:        e.opts.Algorithm.neighborSweep(),
		useGS:        e.opts.Algorithm.groupSweep(),
		hint:         hint,
		ssvDegreeCap: e.opts.SSVDegreeCap,
		stats:        stats,
	}
	defer func() { stats.FlowRuns += cf.nw.FlowRuns }()

	n := g.NumVertices()
	cf.ssvMemo = make([]int8, n)
	if cf.useGS {
		cf.groupID = cert.GroupID
		cf.groups = cert.SideGroups
		cf.gDeposit = make([]int, len(cf.groups))
		cf.gProcessed = make([]bool, len(cf.groups))
	}
	cf.pru = make([]bool, n)
	cf.cause = make([]uint8, n)
	cf.deposit = make([]int, n)

	// Source selection (Algorithm 3, lines 4-7): prefer a strong
	// side-vertex, since the source then cannot belong to any qualified
	// cut and phase 2 can be skipped entirely. SSV statuses resolve
	// lazily, so the scan is bounded; if no SSV turns up quickly, fall
	// back to the minimum-degree vertex as in Algorithm 2.
	u := -1
	scan := n
	if scan > ssvSourceScanLimit {
		scan = ssvSourceScanLimit
	}
	for v := 0; v < scan; v++ {
		if cf.isSSV(v) {
			u = v
			break
		}
	}
	if u == -1 {
		// Minimum degree in the sparse certificate: phase 2 enumerates
		// pairs of N_SC(u), so the certificate degree is the quantity to
		// minimize.
		u, _ = cf.sc.MinDegreeVertex()
	}
	cf.sweep(u, causeSeed)

	// Phase 1: process vertices in non-ascending distance from u
	// (Algorithm 3, line 11) — remote vertices are the most likely to be
	// separated from the source.
	dist := g.BFSDistances(u)
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if v != u {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if dist[a] != dist[b] {
			return dist[a] > dist[b]
		}
		return a < b
	})
	for _, v := range order {
		if cf.pru[v] {
			switch cf.cause[v] {
			case causeNS1:
				stats.SweptNS1++
			case causeNS2:
				stats.SweptNS2++
			case causeGS:
				stats.SweptGS++
			}
			continue
		}
		stats.LocCutTests++
		stats.TestedNonPrune++
		if !cf.g.HasEdge(u, v) { // Lemma 5 shortcut on the full component
			if cut, _, atLeast := cf.nw.MinVertexCut(u, v); !atLeast {
				return cut, cf.buildHint()
			}
		}
		cf.sweep(v, causeTested)
	}

	// Phase 2 (Algorithm 3, lines 16-21): only needed if the source could
	// itself belong to a cut.
	if !cf.isSSV(u) {
		nbrs := cf.sc.Neighbors(u)
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				va, vb := nbrs[i], nbrs[j]
				if cf.useGS && cf.groupID[va] >= 0 && cf.groupID[va] == cf.groupID[vb] {
					stats.Phase2Skipped++ // group sweep rule 3
					continue
				}
				stats.LocCutTests++
				stats.Phase2Pairs++
				if cf.g.HasEdge(va, vb) {
					continue
				}
				if cut, _, atLeast := cf.nw.MinVertexCut(va, vb); !atLeast {
					return cut, cf.buildHint()
				}
			}
		}
	}
	return nil, cf.buildHint()
}

// ssvSourceScanLimit bounds the lazy scan for a strong side-vertex source.
const ssvSourceScanLimit = 64

// sweep marks v as swept (u ≡k v is established) and propagates the
// neighbor-sweep and group-sweep rules iteratively (Algorithm 4).
func (cf *cutFinder) sweep(v int, cause uint8) {
	if cf.pru[v] {
		return
	}
	cf.pru[v] = true
	cf.cause[v] = cause
	cf.stack = append(cf.stack[:0], v)
	for len(cf.stack) > 0 {
		x := cf.stack[len(cf.stack)-1]
		cf.stack = cf.stack[:len(cf.stack)-1]

		if cf.useNS {
			xIsSSV := cf.isSSV(x)
			for _, w := range cf.g.Neighbors(x) {
				if cf.pru[w] {
					continue
				}
				cf.deposit[w]++
				switch {
				case xIsSSV: // neighbor sweep rule 1 (Theorem 8 + Lemma 11)
					cf.mark(w, causeNS1)
				case cf.deposit[w] >= cf.k: // neighbor sweep rule 2 (Theorem 9)
					cf.mark(w, causeNS2)
				}
			}
		}
		if cf.useGS {
			gid := cf.groupID[x]
			if gid >= 0 && !cf.gProcessed[gid] {
				cf.gDeposit[gid]++
				// Group sweep rule 1 (strong side-vertex member) or
				// rule 2 (group deposit reached k, Theorem 11).
				if cf.isSSV(x) || cf.gDeposit[gid] >= cf.k {
					cf.gProcessed[gid] = true
					for _, w := range cf.groups[gid] {
						if !cf.pru[w] {
							cf.mark(w, causeGS)
						}
					}
				}
			}
		}
	}
}

func (cf *cutFinder) mark(w int, cause uint8) {
	cf.pru[w] = true
	cf.cause[w] = cause
	cf.stack = append(cf.stack, w)
}
