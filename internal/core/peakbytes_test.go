package core_test

import (
	"testing"

	"kvcc/internal/core"
	"kvcc/internal/difftest"
)

// TestParallelPeakBytesTracked is the regression guard for the parallel
// memory accounting bug: runParallel never touched Stats.PeakBytes, so
// every WithParallelism>=2 run reported 0 — turning the Fig. 12 memory
// experiment and the server's stats endpoint into lies under parallelism.
// Parallel task interleaving differs from the serial DFS order, so the two
// peaks need not be equal, but both track the same queued-subgraphs +
// results total and must land within 2x of each other.
func TestParallelPeakBytesTracked(t *testing.T) {
	for _, tc := range difftest.Corpus() {
		for k := 2; k <= tc.MaxK; k++ {
			serialComps, serialStats, err := core.Enumerate(tc.G, k, core.Options{})
			if err != nil {
				t.Fatalf("%s k=%d serial: %v", tc.Name, k, err)
			}
			_, parStats, err := core.Enumerate(tc.G, k, core.Options{Parallelism: 4})
			if err != nil {
				t.Fatalf("%s k=%d parallel: %v", tc.Name, k, err)
			}
			if serialStats.PeakBytes == 0 {
				// A run that peels everything in its first step holds no
				// queued subgraphs or results at any settlement point;
				// both drivers report 0 for it.
				if len(serialComps) != 0 {
					t.Fatalf("%s k=%d: serial PeakBytes = 0 with %d components",
						tc.Name, k, len(serialComps))
				}
				continue
			}
			if parStats.PeakBytes <= 0 {
				t.Fatalf("%s k=%d: parallel PeakBytes = %d, want > 0 (parallel accounting regressed)",
					tc.Name, k, parStats.PeakBytes)
			}
			if parStats.PeakBytes > 2*serialStats.PeakBytes ||
				serialStats.PeakBytes > 2*parStats.PeakBytes {
				t.Errorf("%s k=%d: parallel PeakBytes %d vs serial %d (beyond 2x)",
					tc.Name, k, parStats.PeakBytes, serialStats.PeakBytes)
			}
		}
	}
}
