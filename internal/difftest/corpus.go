package difftest

import (
	"kvcc/gen"
	"kvcc/graph"
)

// Case is one corpus entry: a graph plus the k range worth diffing on it.
type Case struct {
	Name string
	G    *graph.Graph
	// MaxK bounds the per-k variant comparisons.
	MaxK int
}

// Corpus returns the generator-driven graph set for the full differential
// suite: random models, planted community structure, and adversarial
// shapes that pin down cut behavior.
func Corpus() []Case {
	planted, _ := gen.Planted(gen.PlantedConfig{
		Communities: 6, MinSize: 8, MaxSize: 14, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 4,
		NoiseVertices: 50, NoiseDegree: 2, Seed: 11,
	})
	plantedDense, _ := gen.Planted(gen.PlantedConfig{
		Communities: 4, MinSize: 10, MaxSize: 16, IntraProb: 0.95,
		ChainOverlap: 3, ChainEvery: 1, BridgeEdges: 6,
		NoiseVertices: 20, NoiseDegree: 3, Seed: 23,
	})
	return []Case{
		// Random models.
		{"gnp-sparse", gen.GNP(50, 0.10, 1), 4},
		{"gnp-dense", gen.GNP(40, 0.30, 2), 8},
		{"gnm", gen.GNM(60, 240, 3), 6},
		{"barabasi-albert", gen.BarabasiAlbert(80, 5, 3, 4), 5},
		{"web-copying", gen.WebGraph(80, 4, 0.5, 5), 5},
		// Planted community structure (the paper's workload).
		{"planted", planted, 7},
		{"planted-dense", plantedDense, 9},
		// Adversarial shapes.
		{"clique-chain-subk-overlap", CliqueChain(5, 8, 3), 6},    // overlaps < k stay separate
		{"two-cliques-exact-overlap", TwoCliquesSharing(8, 4), 6}, // overlap = k must merge at k
		{"two-cliques-cut-vertex", TwoCliquesSharing(6, 1), 6},    // articulation point
		{"cycle", Cycle(30), 3},                                   // one 2-VCC, nothing deeper
		{"complete-bipartite", CompleteBipartite(5, 9), 6},        // κ = min side
		{"barbell", Barbell(7, 5), 7},                             // cliques joined by a path
		{"hypercube", Hypercube(4), 5},                            // 4-regular, 4-connected
		{"wheel", Wheel(12), 4},                                   // hub + cycle, κ = 3
		{"grid", Grid(6, 7), 3},                                   // planar, κ = 2
		{"disconnected-scraps", DisconnectedScraps(), 5},          // components + isolated vertices
		{"star", Star(20), 2},                                     // no 2-VCC at all
		// LocalVC-adversarial shapes: dense volume behind tiny cuts
		// (barbell above, lollipop), no small cut at all (expander), and
		// one shared cut serving many sides (star of cliques).
		{"lollipop", Lollipop(8, 6), 7},                     // clique + dangling path
		{"harary-expander", Harary(40, 8), 9},               // 8-regular, κ = 8, no local exit
		{"star-of-cliques", StarOfCliques(4, 8, 3), 6},      // hub set is every minimum cut
		{"star-of-cliques-deep", StarOfCliques(6, 7, 2), 6}, // more arms, thinner hub
	}
}

// OracleCorpus returns tiny graphs for the exponential brute-force
// comparison (n <= OracleVertexLimit).
func OracleCorpus() []Case {
	return []Case{
		{"oracle-gnp-1", gen.GNP(8, 0.4, 31), 4},
		{"oracle-gnp-2", gen.GNP(9, 0.5, 32), 5},
		{"oracle-gnp-3", gen.GNP(10, 0.35, 33), 4},
		{"oracle-gnm", gen.GNM(9, 18, 34), 4},
		{"oracle-two-k4s", TwoCliquesSharing(4, 1), 3},
		{"oracle-two-k5s-overlap-3", TwoCliquesSharing(5, 3), 4},
		{"oracle-cycle", Cycle(9), 3},
		{"oracle-bipartite", CompleteBipartite(3, 5), 4},
		{"oracle-wheel", Wheel(8), 4},
		{"oracle-star", Star(9), 2},
	}
}

// CliqueChain chains `blocks` cliques of the given size, consecutive
// blocks sharing `overlap` vertices. With overlap below k every block is
// its own k-VCC; the chain tempts the partitioner into bad cuts.
func CliqueChain(blocks, size, overlap int) *graph.Graph {
	if overlap >= size {
		panic("difftest: overlap must be below block size")
	}
	n := size + (blocks-1)*(size-overlap)
	var edges [][2]int
	start := 0
	for b := 0; b < blocks; b++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{start + i, start + j})
			}
		}
		start += size - overlap
	}
	return graph.FromEdges(n, edges)
}

// TwoCliquesSharing joins two cliques of the given size on `shared`
// common vertices. For k <= shared the union is one k-VCC (the shared set
// is the unique minimum cut, of size exactly `shared`); for k > shared
// the cliques separate.
func TwoCliquesSharing(size, shared int) *graph.Graph {
	if shared >= size {
		panic("difftest: shared must be below clique size")
	}
	n := 2*size - shared
	var edges [][2]int
	for i := 0; i < size; i++ {
		for j := i + 1; j < size; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	off := size - shared
	for i := 0; i < size; i++ {
		for j := i + 1; j < size; j++ {
			edges = append(edges, [2]int{off + i, off + j})
		}
	}
	return graph.FromEdges(n, edges)
}

// Cycle returns the n-cycle: 2-connected everywhere, 3-connected nowhere.
func Cycle(n int) *graph.Graph {
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	return graph.FromEdges(n, edges)
}

// CompleteBipartite returns K_{a,b}, whose connectivity is min(a, b) with
// every minimum cut one full side — the worst case for neighbor sweeps.
func CompleteBipartite(a, b int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			edges = append(edges, [2]int{i, a + j})
		}
	}
	return graph.FromEdges(a+b, edges)
}

// Barbell joins two cliques of the given size by a path of pathLen extra
// vertices: the path survives no 2-core of interest, the cliques are deep.
func Barbell(size, pathLen int) *graph.Graph {
	n := 2*size + pathLen
	var edges [][2]int
	for c := 0; c < 2; c++ {
		off := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{off + i, off + j})
			}
		}
	}
	prev := size - 1 // last vertex of the first clique
	for p := 0; p < pathLen; p++ {
		edges = append(edges, [2]int{prev, 2*size + p})
		prev = 2*size + p
	}
	edges = append(edges, [2]int{prev, size}) // first vertex of the second clique
	return graph.FromEdges(n, edges)
}

// Lollipop attaches a path of pathLen vertices to one vertex of a
// clique: the classic lollipop graph. The path peels away under any
// k-core with k >= 2, but before that the attachment vertex is an
// articulation point — a size-1 cut guarding a dense far side, the shape
// a local cut search should resolve without exploring the clique.
func Lollipop(cliqueSize, pathLen int) *graph.Graph {
	n := cliqueSize + pathLen
	var edges [][2]int
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	prev := 0
	for p := 0; p < pathLen; p++ {
		edges = append(edges, [2]int{prev, cliqueSize + p})
		prev = cliqueSize + p
	}
	return graph.FromEdges(n, edges)
}

// Harary returns the circulant Harary graph H_{d,n} for even d: every
// vertex adjacent to its d/2 nearest neighbors on each side of a ring.
// It is d-regular and exactly d-connected — an expander-like shape with
// no small cut anywhere, so a budget-bounded local search can never
// exhaust and must fall back on every query below the bound.
func Harary(n, d int) *graph.Graph {
	if d%2 != 0 || d >= n {
		panic("difftest: Harary wants even d < n")
	}
	var edges [][2]int
	for v := 0; v < n; v++ {
		for off := 1; off <= d/2; off++ {
			edges = append(edges, [2]int{v, (v + off) % n})
		}
	}
	return graph.FromEdges(n, edges)
}

// StarOfCliques joins `arms` cliques of the given size through one shared
// hub set of `shared` vertices common to all of them. The hub is the
// unique minimum cut between any two arms, so every partition step must
// rediscover the same `shared`-sized cut, and for k <= shared all arms
// merge into a single k-VCC.
func StarOfCliques(arms, size, shared int) *graph.Graph {
	if shared >= size {
		panic("difftest: shared must be below clique size")
	}
	own := size - shared
	n := shared + arms*own
	var edges [][2]int
	for a := 0; a < arms; a++ {
		// The clique = hub vertices 0..shared-1 plus this arm's own block.
		vs := make([]int, 0, size)
		for h := 0; h < shared; h++ {
			vs = append(vs, h)
		}
		for i := 0; i < own; i++ {
			vs = append(vs, shared+a*own+i)
		}
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, [2]int{vs[i], vs[j]})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// Hypercube returns the dim-dimensional hypercube: dim-regular and
// exactly dim-connected, with no cut smaller than a full neighborhood.
func Hypercube(dim int) *graph.Graph {
	n := 1 << dim
	var edges [][2]int
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << b)
			if v < w {
				edges = append(edges, [2]int{v, w})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// Wheel returns the wheel on n vertices: a hub adjacent to an (n-1)-cycle.
func Wheel(n int) *graph.Graph {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
		next := i + 1
		if next == n {
			next = 1
		}
		edges = append(edges, [2]int{i, next})
	}
	return graph.FromEdges(n, edges)
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return graph.FromEdges(rows*cols, edges)
}

// Star returns K_{1,n-1}: connected but with no 2-VCC (no cycle at all).
func Star(n int) *graph.Graph {
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return graph.FromEdges(n, edges)
}

// DisconnectedScraps combines a K5, a K4, a triangle, a path and isolated
// vertices in one graph — the component-split and k-core paths must keep
// them straight.
func DisconnectedScraps() *graph.Graph {
	var edges [][2]int
	addClique := func(vs []int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, [2]int{vs[i], vs[j]})
			}
		}
	}
	addClique([]int{0, 1, 2, 3, 4})
	addClique([]int{5, 6, 7, 8})
	addClique([]int{9, 10, 11})
	edges = append(edges, [2]int{12, 13}, [2]int{13, 14}) // path
	return graph.FromEdges(17, edges)                     // 15, 16 isolated
}
