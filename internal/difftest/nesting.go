package difftest

import (
	"context"
	"testing"

	"kvcc/cohesion"
	"kvcc/graph"
	"kvcc/hierarchy"
	"kvcc/internal/core"
)

// CheckNesting makes the nesting property k-core ⊇ k-ECC ⊇ k-VCC
// (Whitney: κ <= λ <= δ) executable on one (g, k): it enumerates all
// three measures through cohesion.EnumerateContext and asserts that every
// k-VCC lies wholly inside one k-ECC and every k-ECC wholly inside one
// connected component of the k-core. Each result is also checked to be in
// the canonical core.SortComponents order, since the shared serving path
// (cache byte-equality, index levels) depends on it for every measure.
func CheckNesting(t testing.TB, g *graph.Graph, k, parallelism int) {
	t.Helper()
	opts := cohesion.Options{Parallelism: parallelism}
	enumerate := func(m cohesion.Measure) []*graph.Graph {
		comps, _, err := cohesion.EnumerateContext(context.Background(), g, k, m, opts)
		if err != nil {
			t.Fatalf("%s k=%d: %v", m, k, err)
		}
		checkCanonicalOrder(t, m, k, comps)
		return comps
	}
	kvccs := enumerate(cohesion.KVCC)
	keccs := enumerate(cohesion.KECC)
	kcores := enumerate(cohesion.KCore)

	checkContained(t, k, "k-VCC", kvccs, "k-ECC", keccs)
	checkContained(t, k, "k-ECC", keccs, "k-core component", kcores)
}

// checkCanonicalOrder asserts comps are already in core.SortComponents
// order — the contract every measure engine promises.
func checkCanonicalOrder(t testing.TB, m cohesion.Measure, k int, comps []*graph.Graph) {
	t.Helper()
	sorted := append([]*graph.Graph(nil), comps...)
	core.SortComponents(sorted)
	got, want := Signatures(comps), Signatures(sorted)
	if !equal(got, want) {
		t.Fatalf("%s k=%d: result not in canonical order:\n  got  %v\n  want %v", m, k, got, want)
	}
}

// checkContained asserts every inner component's vertex set lies inside a
// single outer component. The outer measures (k-ECC, k-core) partition
// their vertices, so a label-to-component map decides containment.
func checkContained(t testing.TB, k int, innerName string, inner []*graph.Graph, outerName string, outer []*graph.Graph) {
	t.Helper()
	owner := make(map[int64]int)
	for i, c := range outer {
		for _, l := range c.Labels() {
			owner[l] = i
		}
	}
	for i, c := range inner {
		labels := core.SortedLabels(c)
		home, ok := owner[labels[0]]
		if !ok {
			t.Fatalf("k=%d: vertex %d of %s %d is in no %s", k, labels[0], innerName, i, outerName)
		}
		for _, l := range labels[1:] {
			o, ok := owner[l]
			if !ok {
				t.Fatalf("k=%d: vertex %d of %s %d is in no %s", k, l, innerName, i, outerName)
			}
			if o != home {
				t.Fatalf("k=%d: %s %d straddles %ss %d and %d (vertices %d and %d)",
					k, innerName, i, outerName, home, o, labels[0], l)
			}
		}
	}
}

// measureVariants is the option battery for the measures that have no
// algorithm variants of their own. cohesion.Options documents that only
// KVCC consults parallelism, flow engine and seed — so under k-ECC and
// k-core every one of these must produce the identical component
// sequence, pinning that contract.
var measureVariants = []struct {
	name string
	opts cohesion.Options
}{
	{"serial", cohesion.Options{}},
	{"parallel", cohesion.Options{Parallelism: 4}},
	{"ek-engine", cohesion.Options{FlowEngine: core.FlowEdmondsKarp}},
	{"seeded", cohesion.Options{Seed: 0xfeedface}},
}

// CheckMeasureVariantsAgree enumerates (g, k) under measure m with every
// option battery entry and fails on any divergence. It returns the agreed
// signatures for reuse.
func CheckMeasureVariantsAgree(t testing.TB, g *graph.Graph, k int, m cohesion.Measure) []string {
	t.Helper()
	var want []string
	for i, v := range measureVariants {
		comps, _, err := cohesion.Enumerate(g, k, m, v.opts)
		if err != nil {
			t.Fatalf("%s %s k=%d: %v", m, v.name, k, err)
		}
		got := Signatures(comps)
		if i == 0 {
			want = got
			continue
		}
		if !equal(want, got) {
			t.Fatalf("%s k=%d: %s disagrees with %s:\n  %v\nvs\n  %v",
				m, k, v.name, measureVariants[0].name, got, want)
		}
	}
	return want
}

// CheckMeasureHierarchy builds the incremental hierarchy for measure m —
// serial and with sibling parallelism — and compares every level, plus
// one level past MaxK for completeness, against a direct enumeration of
// the whole graph, including the canonical order.
func CheckMeasureHierarchy(t testing.TB, g *graph.Graph, m cohesion.Measure) {
	t.Helper()
	for _, workers := range []int{0, 4} {
		tree, err := hierarchy.Build(g, hierarchy.Options{Measure: m, Parallelism: workers})
		if err != nil {
			t.Fatalf("%s hierarchy build (parallelism %d): %v", m, workers, err)
		}
		if tree.Measure != m {
			t.Fatalf("hierarchy built for %s reports measure %s", m, tree.Measure)
		}
		for k := 1; k <= tree.MaxK+1; k++ {
			direct, _, err := cohesion.Enumerate(g, k, m, cohesion.Options{})
			if err != nil {
				t.Fatalf("%s enumerate k=%d: %v", m, k, err)
			}
			level := Signatures(tree.LevelComponents(k))
			want := Signatures(direct)
			if !equal(level, want) {
				t.Fatalf("%s hierarchy level %d (parallelism %d) diverges from direct enumeration:\n  tree   %v\n  direct %v",
					m, k, workers, level, want)
			}
		}
	}
}
