package difftest

import (
	"context"
	"math/rand"
	"testing"

	"kvcc"
	"kvcc/graph"
	"kvcc/internal/core"
)

// EditBatch is one round of an edit script: labels to connect and labels
// to disconnect, applied atomically.
type EditBatch struct {
	Inserts [][2]int64
	Deletes [][2]int64
}

// EditScript derives a deterministic sequence of edit batches for g: a
// mix of deletions of current edges, insertions of absent ones, and the
// occasional brand-new vertex, spread over `rounds` batches of `perRound`
// edits. The script tracks its own view of the evolving edge set so
// deletions mostly hit edges that exist and insertions mostly create
// edges — the interesting regime for incremental maintenance.
func EditScript(g *graph.Graph, rounds, perRound int, seed int64) []EditBatch {
	rng := rand.New(rand.NewSource(seed))
	labels := append([]int64(nil), g.Labels()...)
	edges := make(map[[2]int64]bool)
	key := func(a, b int64) [2]int64 {
		if a > b {
			a, b = b, a
		}
		return [2]int64{a, b}
	}
	for _, e := range g.Edges(nil) {
		edges[key(g.Label(e[0]), g.Label(e[1]))] = true
	}
	maxLabel := int64(0)
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	var script []EditBatch
	for r := 0; r < rounds; r++ {
		var batch EditBatch
		for i := 0; i < perRound; i++ {
			switch {
			case rng.Intn(3) == 0 && len(edges) > 0:
				// Delete a random existing edge.
				n := rng.Intn(len(edges))
				for e := range edges {
					if n == 0 {
						batch.Deletes = append(batch.Deletes, [2]int64{e[0], e[1]})
						delete(edges, e)
						break
					}
					n--
				}
			case rng.Intn(8) == 0:
				// Wire in a brand-new vertex.
				maxLabel++
				anchor := labels[rng.Intn(len(labels))]
				batch.Inserts = append(batch.Inserts, [2]int64{maxLabel, anchor})
				edges[key(maxLabel, anchor)] = true
				labels = append(labels, maxLabel)
			default:
				a := labels[rng.Intn(len(labels))]
				b := labels[rng.Intn(len(labels))]
				if a == b {
					continue
				}
				batch.Inserts = append(batch.Inserts, [2]int64{a, b})
				edges[key(a, b)] = true
			}
		}
		script = append(script, batch)
	}
	return script
}

// CheckIncremental replays an edit script through a kvcc.Dynamic handle
// and fails the test unless, after every batch, the incrementally
// maintained result is identical — same component label sets, same
// canonical order — to a from-scratch enumeration of the edited graph at
// the same version. This is the differential guarantee of the dynamic
// layer: an observer cannot tell whether a result was maintained or
// recomputed.
func CheckIncremental(t testing.TB, g *graph.Graph, k int, script []EditBatch) {
	t.Helper()
	d, err := kvcc.NewDynamic(g, k)
	if err != nil {
		t.Fatalf("NewDynamic k=%d: %v", k, err)
	}
	for round, batch := range script {
		res, err := d.ApplyEdits(context.Background(), batch.Inserts, batch.Deletes)
		if err != nil {
			t.Fatalf("round %d k=%d: %v", round, k, err)
		}
		cold, _, err := core.Enumerate(d.Graph(), k, core.Options{})
		if err != nil {
			t.Fatalf("round %d k=%d cold: %v", round, k, err)
		}
		got := Signatures(res.Components)
		want := Signatures(cold)
		if !equal(got, want) {
			t.Fatalf("round %d k=%d: incremental diverges from from-scratch:\n  incremental %v\n  cold        %v",
				round, k, got, want)
		}
	}
}
