package difftest

import (
	"testing"

	"kvcc/internal/flow"
	"kvcc/internal/verify"
)

// TestVariantsAgree diffs all four algorithm variants (and the parallel
// driver) against each other on every corpus graph and every k up to the
// case's MaxK.
func TestVariantsAgree(t *testing.T) {
	for _, c := range Corpus() {
		t.Run(c.Name, func(t *testing.T) {
			for k := 2; k <= c.MaxK; k++ {
				CheckVariantsAgree(t, c.G, k)
			}
		})
	}
}

// TestOracle diffs the default enumeration against the exponential
// brute-force oracle on tiny graphs — ground truth per Definition 2.
func TestOracle(t *testing.T) {
	for _, c := range OracleCorpus() {
		t.Run(c.Name, func(t *testing.T) {
			if c.G.NumVertices() > OracleVertexLimit {
				t.Fatalf("oracle case has %d vertices, limit %d", c.G.NumVertices(), OracleVertexLimit)
			}
			for k := 2; k <= c.MaxK; k++ {
				CheckOracle(t, c.G, k)
			}
		})
	}
}

// TestHierarchyMatchesEnumeration diffs every level of the incremental
// hierarchy build against direct per-k enumeration on the full corpus.
func TestHierarchyMatchesEnumeration(t *testing.T) {
	for _, c := range Corpus() {
		t.Run(c.Name, func(t *testing.T) {
			CheckHierarchy(t, c.G)
		})
	}
}

// TestIncrementalEquivalence replays deterministic random edit scripts
// over the full corpus and diffs the incrementally maintained result
// against a from-scratch enumeration after every batch — the dynamic
// layer's differential guarantee.
func TestIncrementalEquivalence(t *testing.T) {
	for _, c := range Corpus() {
		t.Run(c.Name, func(t *testing.T) {
			for k := 2; k <= c.MaxK; k++ {
				script := EditScript(c.G, 3, 6, int64(1000+17*k))
				CheckIncremental(t, c.G, k, script)
			}
		})
	}
}

// TestAdversarialShapes pins the known connectivity structure of the
// hand-built graphs, so a generator bug cannot silently weaken the suite.
func TestAdversarialShapes(t *testing.T) {
	if got := len(CliqueChain(5, 8, 3).ConnectedComponents()); got != 1 {
		t.Fatalf("clique chain has %d components", got)
	}
	// K_{a,b} has connectivity min(a,b).
	if kappa := verify.VertexConnectivityBrute(CompleteBipartite(3, 5)); kappa != 3 {
		t.Fatalf("K_{3,5} connectivity = %d, want 3", kappa)
	}
	// The d-hypercube has connectivity d.
	if kappa := verify.VertexConnectivityBrute(Hypercube(3)); kappa != 3 {
		t.Fatalf("Q3 connectivity = %d, want 3", kappa)
	}
	// A wheel has connectivity 3.
	if kappa := verify.VertexConnectivityBrute(Wheel(8)); kappa != 3 {
		t.Fatalf("wheel connectivity = %d, want 3", kappa)
	}
	// Two cliques sharing s vertices separate exactly above k = s.
	g := TwoCliquesSharing(5, 3)
	if kappa := verify.VertexConnectivityBrute(g); kappa != 3 {
		t.Fatalf("shared-3 connectivity = %d, want 3", kappa)
	}
	// The lollipop's attachment vertex is an articulation point.
	if kappa := verify.VertexConnectivityBrute(Lollipop(6, 3)); kappa != 1 {
		t.Fatalf("lollipop connectivity = %d, want 1", kappa)
	}
	// H_{d,n} is exactly d-connected. The corpus instance is too large for
	// the exponential oracle, so pin it with the polynomial flow-based
	// computation and brute-check a small instance alongside.
	if kappa := verify.VertexConnectivityBrute(Harary(10, 4)); kappa != 4 {
		t.Fatalf("H_{4,10} connectivity = %d, want 4", kappa)
	}
	if kappa, _ := flow.GlobalVertexConnectivity(Harary(40, 8), 16); kappa != 8 {
		t.Fatalf("H_{8,40} connectivity = %d, want 8", kappa)
	}
	// The star of cliques is exactly `shared`-connected (the hub set).
	if kappa := verify.VertexConnectivityBrute(StarOfCliques(3, 4, 2)); kappa != 2 {
		t.Fatalf("star-of-cliques connectivity = %d, want 2", kappa)
	}
}
