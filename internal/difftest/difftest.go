// Package difftest is the differential-testing harness for the k-VCC
// enumeration stack. It cross-checks every production path against an
// independent reference:
//
//   - the four algorithm variants (VCCE, VCCE-N, VCCE-G, VCCE*) against
//     each other, serial and parallel — they must produce identical
//     component sets because the sweeps only prune work, never results;
//   - the three max-flow engines (Dinic, Edmonds-Karp, LocalVC with and
//     without an explicit seed) under VCCE* — all exact, so engine and
//     seed choices must never change a component set either;
//   - VCCE* against the exponential brute-force oracle of internal/verify
//     on tiny graphs — ground truth by Definition 2;
//   - every level of the incremental hierarchy build against a direct
//     per-k enumeration — the nesting property made executable.
//
// The corpus (see corpus.go) mixes random generators, planted community
// structure, and adversarial shapes chosen to stress cut placement:
// cliques chained by sub-k overlaps, exact-k overlaps that must merge,
// cycles, bipartite and barbell graphs, hypercubes, and disconnected
// scraps. The harness functions take testing.TB so both tests and fuzz
// targets can drive them.
package difftest

import (
	"strconv"
	"strings"
	"testing"

	"kvcc/graph"
	"kvcc/hierarchy"
	"kvcc/internal/core"
	"kvcc/internal/verify"
)

// OracleVertexLimit bounds the graphs fed to the exponential brute-force
// oracle: subset enumeration squared makes n above ~10 unreasonably slow.
const OracleVertexLimit = 10

// Signature renders one component as its sorted label list — the
// canonical identity used for all equality checks.
func Signature(labels []int64) string {
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(l, 10))
	}
	return sb.String()
}

// Signatures renders an enumeration result as its component signatures in
// result order. Results in canonical order with equal component sets are
// therefore slice-equal.
func Signatures(comps []*graph.Graph) []string {
	out := make([]string, len(comps))
	for i, c := range comps {
		out[i] = Signature(core.SortedLabels(c))
	}
	return out
}

// variants pairs every production configuration with a name for failure
// messages. Parallelism rides along on the star variant so the worker
// pool driver is diffed too.
var variants = []struct {
	name string
	opts core.Options
}{
	{"VCCE", core.Options{Algorithm: core.VCCE}},
	{"VCCE-N", core.Options{Algorithm: core.VCCEN}},
	{"VCCE-G", core.Options{Algorithm: core.VCCEG}},
	{"VCCE*", core.Options{Algorithm: core.VCCEStar}},
	{"VCCE*-parallel", core.Options{Algorithm: core.VCCEStar, Parallelism: 4}},
	// Flow-engine variants: every engine is exact, so forcing any of them
	// (or reseeding the randomized one) must never change a component set.
	{"VCCE*-ek", core.Options{Algorithm: core.VCCEStar, FlowEngine: core.FlowEdmondsKarp}},
	{"VCCE*-localvc", core.Options{Algorithm: core.VCCEStar, FlowEngine: core.FlowLocalVC}},
	{"VCCE*-localvc-seeded", core.Options{Algorithm: core.VCCEStar, FlowEngine: core.FlowLocalVC, Seed: 0xfeedface}},
	{"VCCE*-localvc-parallel", core.Options{Algorithm: core.VCCEStar, FlowEngine: core.FlowLocalVC, Parallelism: 4}},
}

// CheckVariantsAgree enumerates (g, k) with every variant and fails the
// test on any divergence. It returns the agreed signatures for reuse.
func CheckVariantsAgree(t testing.TB, g *graph.Graph, k int) []string {
	t.Helper()
	var want []string
	for i, v := range variants {
		comps, _, err := core.Enumerate(g, k, v.opts)
		if err != nil {
			t.Fatalf("%s k=%d: %v", v.name, k, err)
		}
		got := Signatures(comps)
		if i == 0 {
			want = got
			continue
		}
		if !equal(want, got) {
			t.Fatalf("k=%d: %s disagrees with %s:\n  %v\nvs\n  %v",
				k, v.name, variants[0].name, got, want)
		}
	}
	return want
}

// CheckOracle compares the default enumeration against the brute-force
// oracle. Both sides are canonicalized, so failure means a real semantic
// divergence from Definition 2, not an ordering artifact.
func CheckOracle(t testing.TB, g *graph.Graph, k int) {
	t.Helper()
	if g.NumVertices() > OracleVertexLimit {
		t.Fatalf("oracle check on %d vertices; limit is %d", g.NumVertices(), OracleVertexLimit)
	}
	comps, _, err := core.Enumerate(g, k, core.Options{})
	if err != nil {
		t.Fatalf("enumerate k=%d: %v", k, err)
	}
	got := Signatures(comps)
	truth := verify.KVCCBrute(g, k)
	want := make([]string, len(truth))
	for i, labels := range truth {
		want[i] = Signature(labels)
	}
	// The oracle returns maximal sets in mask order; compare as sets.
	if !equalAsSets(got, want) {
		t.Fatalf("k=%d: enumeration disagrees with brute-force oracle:\n  got  %v\n  want %v", k, got, want)
	}
}

// CheckHierarchy builds the full incremental hierarchy and compares every
// level — plus one level past MaxK, confirming completeness — against a
// direct enumeration of the whole graph, including the canonical order.
func CheckHierarchy(t testing.TB, g *graph.Graph) {
	t.Helper()
	tree, err := hierarchy.Build(g, hierarchy.Options{})
	if err != nil {
		t.Fatalf("hierarchy build: %v", err)
	}
	for k := 1; k <= tree.MaxK+1; k++ {
		direct, _, err := core.Enumerate(g, k, core.Options{})
		if err != nil {
			t.Fatalf("enumerate k=%d: %v", k, err)
		}
		level := Signatures(tree.LevelComponents(k))
		want := Signatures(direct)
		if !equal(level, want) {
			t.Fatalf("hierarchy level %d diverges from direct enumeration:\n  tree   %v\n  direct %v",
				k, level, want)
		}
	}
	// No universal work bound is asserted here: overlapped partitioning
	// duplicates cut vertices into every side, so on graphs whose k-VCCs
	// barely shrink (e.g. two cliques sharing one vertex) a level can sum
	// to more than |V| and the incremental build can slightly exceed the
	// per-level-from-scratch baseline. The strict "fewer vertices" claim
	// is asserted on a representative community workload in the hierarchy
	// package's tests, where the narrowing that motivates the index
	// actually occurs.
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalAsSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		if !set[s] {
			return false
		}
	}
	return true
}
