package difftest

import (
	"testing"

	"kvcc/cohesion"
	"kvcc/graph"
)

// TestNesting runs the k-core ⊇ k-ECC ⊇ k-VCC containment oracle over
// the full corpus at every k up to the case's MaxK, serial and parallel.
func TestNesting(t *testing.T) {
	for _, c := range Corpus() {
		t.Run(c.Name, func(t *testing.T) {
			for k := 2; k <= c.MaxK; k++ {
				CheckNesting(t, c.G, k, 0)
				CheckNesting(t, c.G, k, 4)
			}
		})
	}
}

// TestMeasureVariantsAgree runs k-ECC and k-core through the option
// battery: the non-kvcc measures ignore parallelism, flow engine and
// seed, so every configuration must produce the identical sequence.
func TestMeasureVariantsAgree(t *testing.T) {
	for _, m := range []cohesion.Measure{cohesion.KECC, cohesion.KCore} {
		t.Run(m.String(), func(t *testing.T) {
			for _, c := range Corpus() {
				t.Run(c.Name, func(t *testing.T) {
					for k := 2; k <= c.MaxK; k++ {
						CheckMeasureVariantsAgree(t, c.G, k, m)
					}
				})
			}
		})
	}
}

// TestMeasureHierarchy diffs the measure-parametric incremental
// hierarchy build against direct per-level enumeration for the two new
// measures (the kvcc build is covered by TestHierarchyMatchesEnumeration).
func TestMeasureHierarchy(t *testing.T) {
	for _, m := range []cohesion.Measure{cohesion.KECC, cohesion.KCore} {
		t.Run(m.String(), func(t *testing.T) {
			for _, c := range Corpus() {
				t.Run(c.Name, func(t *testing.T) {
					CheckMeasureHierarchy(t, c.G, m)
				})
			}
		})
	}
}

// nestingFuzzGraph decodes a byte string into a small graph: the first
// byte picks the vertex count (2..13), every following pair of bytes is
// one edge. Self-loops and duplicates are dropped by the builder, so
// every input is valid.
func nestingFuzzGraph(data []byte) *graph.Graph {
	if len(data) == 0 {
		return graph.FromEdges(2, nil)
	}
	n := 2 + int(data[0])%12
	var edges [][2]int
	for i := 1; i+1 < len(data); i += 2 {
		edges = append(edges, [2]int{int(data[i]) % n, int(data[i+1]) % n})
	}
	return graph.FromEdges(n, edges)
}

// FuzzNesting checks the containment chain k-core ⊇ k-ECC ⊇ k-VCC on
// arbitrary small graphs at k = 2..4 — the nesting property has no
// corpus blind spots this way.
func FuzzNesting(f *testing.F) {
	f.Add([]byte{7, 0, 1, 1, 2, 2, 0, 2, 3, 3, 4, 4, 2})       // triangles sharing vertices
	f.Add([]byte{5, 0, 1, 0, 2, 0, 3, 0, 4, 1, 2, 3, 4})       // star plus chords
	f.Add([]byte{9, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 0}) // cycle
	f.Add([]byte{4, 0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3})       // K4
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := nestingFuzzGraph(data)
		for k := 2; k <= 4; k++ {
			CheckNesting(t, g, k, 0)
		}
	})
}
