// Package incr maintains k-VCC enumeration results incrementally across
// graph mutations.
//
// The load-bearing fact is the paper's containment theorem: every k-VCC
// lies inside the k-core (Theorem 3), and — being k-vertex connected,
// hence connected — inside exactly one connected component of it. The
// k-VCC set of a graph is therefore the disjoint union of the k-VCC sets
// of its k-core connected components, and two structurally identical
// components (same vertex labels, same edge set) have identical k-VCCs.
//
// Run exploits this by storing results per component, keyed by a
// structural fingerprint of the component's labeled vertex and edge sets.
// After an edit, only the components whose structure changed — the ones
// the mutated endpoints merged, grew, shrank or split — miss the store
// and are re-enumerated; everything disjoint from the affected region is
// served verbatim from the previous result. The fingerprint is
// self-validating: there is no separate bookkeeping of which edits
// touched which component, because any structural difference (however it
// arose) changes the key.
package incr

import (
	"context"
	"errors"
	"fmt"

	"kvcc/graph"
	"kvcc/internal/core"
	"kvcc/internal/kcore"
)

// ComponentKey fingerprints one k-core connected component by its labeled
// structure: vertex count, edge count, and order-independent 64-bit
// hashes of the label set and the label-pair edge set. Two components
// compare equal exactly when they have the same vertices (by label) and
// the same edges (up to the negligible probability of a 128-bit-effective
// hash collision); ids are deliberately excluded, so a component keeps
// its key when unrelated edits renumber the surrounding graph.
type ComponentKey struct {
	N, M       int
	VertexHash uint64
	EdgeHash   uint64
}

// mix64 is the splitmix64 finalizer: a cheap bijective scramble whose
// sums stay well distributed, which is what the order-independent
// accumulation below needs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeyOf computes the structural fingerprint of a component subgraph.
// Hashes accumulate by summation, so the key is independent of vertex
// numbering and edge iteration order.
func KeyOf(g *graph.Graph) ComponentKey {
	labels := g.Labels()
	var vh, eh uint64
	for _, l := range labels {
		vh += mix64(uint64(l) + 0x9e3779b97f4a7c15)
	}
	offsets, edges := g.Adjacency()
	for u := 0; u < len(labels); u++ {
		for _, w := range edges[offsets[u]:offsets[u+1]] {
			if u < w {
				a, b := labels[u], labels[w]
				if a > b {
					a, b = b, a
				}
				eh += mix64(mix64(uint64(a)) + 0x9e3779b97f4a7c15*uint64(b))
			}
		}
	}
	return ComponentKey{N: g.NumVertices(), M: g.NumEdges(), VertexHash: vh, EdgeHash: eh}
}

// ComponentResult is the enumeration outcome for one k-core connected
// component: its k-VCCs in canonical order (possibly none — "this
// component holds no k-VCC" is as reusable a fact as any). Results are
// immutable once stored and may be shared across store generations.
type ComponentResult struct {
	Key  ComponentKey
	VCCs []*graph.Graph
}

// Store holds the per-component results of one enumeration at a fixed k.
// It is the unit of reuse between runs: Run consults a previous store by
// fingerprint and carries matching entries over untouched.
type Store struct {
	// K is the connectivity parameter the store was built for. Reuse
	// across different k is never valid; Run enforces the match.
	K int
	// Components holds one entry per k-core connected component, in
	// partition order.
	Components []*ComponentResult

	byKey map[ComponentKey]*ComponentResult
}

func newStore(k int, capacity int) *Store {
	return &Store{K: k, byKey: make(map[ComponentKey]*ComponentResult, capacity)}
}

func (s *Store) add(cr *ComponentResult) {
	s.Components = append(s.Components, cr)
	if _, dup := s.byKey[cr.Key]; !dup {
		s.byKey[cr.Key] = cr
	}
}

// Lookup returns the stored result for a component fingerprint.
func (s *Store) Lookup(key ComponentKey) (*ComponentResult, bool) {
	if s == nil {
		return nil, false
	}
	cr, ok := s.byKey[key]
	return cr, ok
}

// Flatten merges every component's k-VCCs into one slice in the global
// canonical order (core.SortComponents), exactly as a monolithic
// enumeration would return them.
func (s *Store) Flatten() []*graph.Graph {
	var out []*graph.Graph
	for _, cr := range s.Components {
		out = append(out, cr.VCCs...)
	}
	core.SortComponents(out)
	return out
}

// Partition reduces g to its k-core and splits the result into connected
// components, returning each component's subgraph (labels preserved)
// alongside its fingerprint, plus the number of vertices peeled away.
// Components with at most k vertices cannot satisfy Definition 2 and are
// dropped (after k-core reduction they cannot occur for k >= 1; the
// filter is a guard).
func Partition(g *graph.Graph, k int) (comps []*graph.Graph, keys []ComponentKey, peeled int) {
	cored, peeled := kcore.Reduce(g, k)
	if cored.NumVertices() == 0 {
		return nil, nil, peeled
	}
	ccs := cored.ConnectedComponents()
	for ci, cc := range ccs {
		if len(cc) <= k {
			continue
		}
		// Prefetch the next component's byte range off a mapped snapshot
		// while this one is being copied out (no-op on heap graphs).
		if cored.External() && ci+1 < len(ccs) {
			lo, hi := ccs[ci+1][0], ccs[ci+1][0]
			for _, v := range ccs[ci+1] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			cored.AdviseWillNeed(lo, hi)
		}
		var sub *graph.Graph
		if len(ccs) == 1 && cored.NumVertices() == len(cc) {
			// Copy the surviving whole graph off a mapped snapshot: the
			// extracted components below are heap copies already, and the
			// enumeration engine's flow probes must not random-access the
			// mapping. Identity for heap graphs.
			sub = cored.Materialize()
		} else {
			sub = cored.InducedSubgraph(cc)
		}
		comps = append(comps, sub)
		keys = append(keys, KeyOf(sub))
	}
	return comps, keys, peeled
}

// Run enumerates the k-VCCs of g component by component, reusing from
// prev (which may be nil, or from any earlier version of the graph —
// staleness is impossible because fingerprints encode the full labeled
// structure) every component whose fingerprint matches. It returns the
// new store and the aggregate statistics of the work actually performed:
// reused components contribute nothing but a ComponentsReused tick, so
// Stats measures the cost of the update, not of the answer.
func Run(ctx context.Context, g *graph.Graph, k int, opts core.Options, prev *Store) (*Store, *core.Stats, error) {
	if g == nil {
		return nil, nil, errors.New("incr: nil graph")
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("incr: k must be >= 1, got %d", k)
	}
	if prev != nil && prev.K != k {
		prev = nil
	}
	comps, keys, peeled := Partition(g, k)
	stats := &core.Stats{KCorePeeled: int64(peeled)}

	// Split the partition into reusable and to-recompute components.
	slots := make([]*ComponentResult, len(comps))
	var batch []*graph.Graph
	var batchIdx []int
	for i := range comps {
		if cr, ok := prev.Lookup(keys[i]); ok {
			stats.ComponentsReused++
			slots[i] = cr
			continue
		}
		batch = append(batch, comps[i])
		batchIdx = append(batchIdx, i)
	}

	// Recompute the touched components through one shared driver, so
	// WithParallelism workers balance across all of them exactly as a
	// cold whole-graph run would.
	if len(batch) > 0 {
		vccs, cstats, err := core.EnumerateComponentsContext(ctx, batch, k, opts)
		if err != nil {
			return nil, stats, err
		}
		stats.Add(cstats)
		stats.ComponentsRecomputed += int64(len(batch))
		for _, i := range batchIdx {
			slots[i] = &ComponentResult{Key: keys[i]}
		}
		// Components are label-disjoint, so any one label attributes a
		// k-VCC to its component; the flat result is in canonical order,
		// so per-component orders stay canonical after bucketing.
		byLabel := make(map[int64]int, len(batch))
		for _, i := range batchIdx {
			for _, l := range comps[i].Labels() {
				byLabel[l] = i
			}
		}
		for _, c := range vccs {
			i := byLabel[c.Label(0)]
			slots[i].VCCs = append(slots[i].VCCs, c)
		}
	}
	store := newStore(k, len(comps))
	for _, cr := range slots {
		store.add(cr)
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	return store, stats, nil
}
