package incr

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"kvcc/gen"
	"kvcc/graph"
	"kvcc/internal/core"
)

// signatures canonicalizes components for equality checks.
func signatures(comps []*graph.Graph) []string {
	out := make([]string, len(comps))
	for i, c := range comps {
		var sb strings.Builder
		for j, l := range core.SortedLabels(c) {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatInt(l, 10))
		}
		out[i] = sb.String()
	}
	return out
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 5, MinSize: 8, MaxSize: 12, IntraProb: 0.9,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 3,
		NoiseVertices: 30, NoiseDegree: 2, Seed: 42,
	})
	return g
}

func TestRunMatchesMonolithicEnumeration(t *testing.T) {
	g := testGraph(t)
	for k := 2; k <= 6; k++ {
		store, stats, err := Run(context.Background(), g, k, core.Options{}, nil)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		direct, _, err := core.Enumerate(g, k, core.Options{})
		if err != nil {
			t.Fatalf("k=%d direct: %v", k, err)
		}
		got, want := signatures(store.Flatten()), signatures(direct)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d components vs %d direct", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d component %d: %s vs %s", k, i, got[i], want[i])
			}
		}
		if stats.ComponentsReused != 0 {
			t.Fatalf("k=%d: cold run reports %d reused components", k, stats.ComponentsReused)
		}
		if int(stats.ComponentsRecomputed) != len(store.Components) {
			t.Fatalf("k=%d: recomputed %d of %d components on a cold run",
				k, stats.ComponentsRecomputed, len(store.Components))
		}
	}
}

func TestRunReusesUntouchedComponents(t *testing.T) {
	// Two disjoint cliques: editing inside one must not recompute the other.
	var edges [][2]int
	addClique := func(off, size int) {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{off + i, off + j})
			}
		}
	}
	addClique(0, 8)
	addClique(8, 8)
	g := graph.FromEdges(16, edges)

	const k = 4
	prev, _, err := Run(context.Background(), g, k, core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.Components) != 2 {
		t.Fatalf("want 2 k-core components, got %d", len(prev.Components))
	}

	// Delete one edge inside the first clique (it stays a k-VCC at k=4).
	d := graph.NewDelta(g)
	if !d.DeleteEdge(0, 1) {
		t.Fatal("delete failed")
	}
	g2 := d.Compact()
	next, stats, err := Run(context.Background(), g2, k, core.Options{}, prev)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ComponentsReused != 1 || stats.ComponentsRecomputed != 1 {
		t.Fatalf("reused=%d recomputed=%d, want 1/1", stats.ComponentsReused, stats.ComponentsRecomputed)
	}
	direct, _, err := core.Enumerate(g2, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, want := signatures(next.Flatten()), signatures(direct)
	if len(got) != len(want) {
		t.Fatalf("%d components vs %d direct", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("component %d: %s vs %s", i, got[i], want[i])
		}
	}
}

func TestKeyOfStructuralIdentity(t *testing.T) {
	// Same labeled structure under a different vertex numbering.
	a := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	b := a.InducedSubgraph([]int{2, 3, 0, 1})
	if KeyOf(a) != KeyOf(b) {
		t.Fatal("renumbering changed the fingerprint")
	}
	// Same vertex set, different edges.
	c := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 1}})
	if KeyOf(a) == KeyOf(c) {
		t.Fatal("different edge sets share a fingerprint")
	}
	// Different vertex labels, same shape.
	d := graph.FromEdges(5, [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 1}}).InducedSubgraph([]int{1, 2, 3, 4})
	if KeyOf(a) == KeyOf(d) {
		t.Fatal("different label sets share a fingerprint")
	}
	// An edge swap that preserves degree sums must still change the key.
	e := graph.FromEdges(4, [][2]int{{0, 2}, {1, 2}, {0, 3}, {1, 3}})
	if KeyOf(a) == KeyOf(e) {
		t.Fatal("edge swap preserved the fingerprint")
	}
}

// TestRunEmptyCoreParallel guards the empty-batch path: a graph whose
// k-core is empty must terminate (not deadlock the worker pool) under
// parallelism and return an empty store.
func TestRunEmptyCoreParallel(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}) // a path: no 2-core beyond cycles
	done := make(chan struct{})
	go func() {
		defer close(done)
		store, _, err := Run(context.Background(), g, 3, core.Options{Parallelism: 4}, nil)
		if err != nil {
			t.Errorf("Run: %v", err)
			return
		}
		if len(store.Components) != 0 {
			t.Errorf("empty 3-core produced %d components", len(store.Components))
		}
		// The exported batch entry must survive an explicitly empty batch
		// too — the parallel driver must not be started with no seeds.
		vccs, _, err := core.EnumerateComponentsContext(context.Background(), nil, 3, core.Options{Parallelism: 4})
		if err != nil || len(vccs) != 0 {
			t.Errorf("empty batch: vccs=%d err=%v", len(vccs), err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked on an empty k-core with parallelism")
	}
}

func TestRunStoreKMismatchIgnored(t *testing.T) {
	g := testGraph(t)
	s3, _, err := Run(context.Background(), g, 3, core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A store built at k=3 must not satisfy lookups for a k=4 run even
	// when some component happens to be structurally identical.
	s4, stats, err := Run(context.Background(), g, 4, core.Options{}, s3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ComponentsReused != 0 {
		t.Fatalf("k-mismatched store leaked %d reused components", stats.ComponentsReused)
	}
	if s4.K != 4 {
		t.Fatalf("store K = %d, want 4", s4.K)
	}
}
