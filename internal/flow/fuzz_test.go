package flow

import (
	"testing"

	"kvcc/graph"
	"kvcc/internal/verify"
)

// FuzzMinVertexCut cross-validates the zero-reset engines on arbitrary
// small graphs: Dinic and Edmonds-Karp, each on a pooled network reused
// across every pair (exercising the undo-log path) and on a fresh
// network per query (exercising a clean build), must agree on the
// connectivity value, and every returned cut must have size equal to the
// flow value, avoid both endpoints, and actually disconnect the pair.
// Small instances are additionally checked against the brute-force
// oracle.
// fuzzGraph decodes the shared fuzz-input graph shape: a path backbone
// keeping n = 3..10 vertices connected, plus chord edges toggled by bits.
func fuzzGraph(nRaw uint8, bits uint16) *graph.Graph {
	n := 3 + int(nRaw)%8
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{i - 1, i})
	}
	b := uint32(bits)
	for u := 0; u < n && len(edges) < n+16; u++ {
		for v := u + 2; v < n; v++ {
			if b&1 == 1 {
				edges = append(edges, [2]int{u, v})
			}
			b = b>>1 | b<<15&0xffff // rotate for more than 16 pairs
		}
	}
	return graph.FromEdges(n, edges)
}

// FuzzLocalVC cross-validates the randomized LocalVC engine against
// Dinic, Edmonds-Karp, and the brute-force oracle on fuzzer-chosen
// graphs, (u,v,bound) queries, seeds, and arc budgets. The budget choice
// deliberately includes 1 (every nontrivial round overruns, forcing the
// fake-sink reversal and Dinic fallback paths) and the production
// heuristic. Every engine must agree on the connectivity value, and every
// cut LocalVC returns must have size κ, avoid both endpoints, and
// actually disconnect the pair.
func FuzzLocalVC(f *testing.F) {
	f.Add(uint8(6), uint16(0xffff), uint8(3), uint64(1), uint8(0))
	f.Add(uint8(9), uint16(0x1234), uint8(2), uint64(0xdead), uint8(1))
	f.Add(uint8(12), uint16(0xbeef), uint8(7), uint64(42), uint8(2))
	f.Add(uint8(5), uint16(0x0f0f), uint8(4), uint64(0), uint8(3))
	f.Fuzz(func(t *testing.T, nRaw uint8, bits uint16, boundRaw uint8, seed uint64, budgetSel uint8) {
		g := fuzzGraph(nRaw, bits)
		n := g.NumVertices()
		bound := 1 + int(boundRaw)%n
		budget := []int{0, 1, 4, 16}[budgetSel%4]

		dinic := NewNetwork(g, bound)
		ek := NewNetwork(g, bound)
		ek.SetEngine(EdmondsKarp)
		local := NewNetwork(g, bound)
		local.SetEngine(LocalVC)
		local.SetSeed(seed)
		local.SetLocalBudget(budget)

		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				cutD, cD, atLeastD := dinic.MinVertexCut(u, v)
				_, cE, atLeastE := ek.MinVertexCut(u, v)
				cutL, cL, atLeastL := local.MinVertexCut(u, v)
				if cD != cL || atLeastD != atLeastL || cD != cE || atLeastD != atLeastE {
					t.Fatalf("(%d,%d): dinic (%d,%v), ek (%d,%v), localvc (%d,%v)",
						u, v, cD, atLeastD, cE, atLeastE, cL, atLeastL)
				}
				// A fresh local network (clean build, same seed) must agree
				// with the pooled one that has query history.
				fresh := NewNetwork(g, bound)
				fresh.SetEngine(LocalVC)
				fresh.SetSeed(seed)
				fresh.SetLocalBudget(budget)
				if _, cF, atLeastF := fresh.MinVertexCut(u, v); cF != cL || atLeastF != atLeastL {
					t.Fatalf("(%d,%d): pooled localvc (%d,%v) vs fresh (%d,%v)", u, v, cL, atLeastL, cF, atLeastF)
				}
				if atLeastL {
					continue
				}
				for _, cut := range [][]int{cutD, cutL} {
					if len(cut) != cL {
						t.Fatalf("(%d,%d): cut %v size != κ %d", u, v, cut, cL)
					}
					avoid := map[int]bool{}
					for _, w := range cut {
						if w == u || w == v {
							t.Fatalf("(%d,%d): cut %v contains an endpoint", u, v, cut)
						}
						avoid[w] = true
					}
					if sameComp(g, u, v, avoid) {
						t.Fatalf("(%d,%d): cut %v does not separate", u, v, cut)
					}
				}
				if !g.HasEdge(u, v) {
					if want := verify.LocalConnectivityBrute(g, u, v); want != cL {
						t.Fatalf("(%d,%d): κ = %d, brute %d", u, v, cL, want)
					}
				}
			}
		}
	})
}

func FuzzMinVertexCut(f *testing.F) {
	f.Add(uint8(6), uint16(0xffff), uint8(3))
	f.Add(uint8(9), uint16(0x1234), uint8(2))
	f.Add(uint8(12), uint16(0xbeef), uint8(7))
	f.Fuzz(func(t *testing.T, nRaw uint8, bits uint16, boundRaw uint8) {
		n := 3 + int(nRaw)%8 // 3..10 vertices
		var edges [][2]int
		// Path backbone keeps the graph connected; bits toggle extras.
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{i - 1, i})
		}
		b := uint32(bits)
		for u := 0; u < n && len(edges) < n+16; u++ {
			for v := u + 2; v < n; v++ {
				if b&1 == 1 {
					edges = append(edges, [2]int{u, v})
				}
				b = b>>1 | b<<15&0xffff // rotate for more than 16 pairs
			}
		}
		g := graph.FromEdges(n, edges)
		bound := 1 + int(boundRaw)%n

		dinic := NewNetwork(g, bound)
		ek := NewNetwork(g, bound)
		ek.SetEngine(EdmondsKarp)

		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				cutD, cD, atLeastD := dinic.MinVertexCut(u, v)
				cutE, cE, atLeastE := ek.MinVertexCut(u, v)
				if cD != cE || atLeastD != atLeastE {
					t.Fatalf("(%d,%d): dinic (%d,%v) vs ek (%d,%v)", u, v, cD, atLeastD, cE, atLeastE)
				}
				fresh := NewNetwork(g, bound)
				_, cF, atLeastF := fresh.MinVertexCut(u, v)
				if cD != cF || atLeastD != atLeastF {
					t.Fatalf("(%d,%d): pooled (%d,%v) vs fresh (%d,%v)", u, v, cD, atLeastD, cF, atLeastF)
				}
				if atLeastD {
					continue
				}
				for _, cut := range [][]int{cutD, cutE} {
					if len(cut) != cD {
						t.Fatalf("(%d,%d): cut %v size != κ %d", u, v, cut, cD)
					}
					avoid := map[int]bool{}
					for _, w := range cut {
						if w == u || w == v {
							t.Fatalf("(%d,%d): cut %v contains an endpoint", u, v, cut)
						}
						avoid[w] = true
					}
					if sameComp(g, u, v, avoid) {
						t.Fatalf("(%d,%d): cut %v does not separate", u, v, cut)
					}
				}
				if !g.HasEdge(u, v) {
					if want := verify.LocalConnectivityBrute(g, u, v); want != cD {
						t.Fatalf("(%d,%d): κ = %d, brute %d", u, v, cD, want)
					}
				}
			}
		}
	})
}
