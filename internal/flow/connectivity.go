package flow

import "kvcc/graph"

// LocalConnectivity returns min(κ(u,v), bound) for two distinct vertices,
// building a one-shot network. Adjacent vertices cannot be separated by
// vertex removal, so their connectivity is reported as bound.
func LocalConnectivity(g *graph.Graph, u, v, bound int) int {
	nw := NewNetwork(g, bound)
	_, c, atLeast := nw.MinVertexCut(u, v)
	if atLeast {
		return bound
	}
	return c
}

// GlobalVertexConnectivity computes min(κ(G), bound) for a connected graph
// and, when the value is below bound, a witness minimum vertex cut.
//
// It follows the two-phase structure of GLOBAL-CUT (Algorithm 2) without
// the sparse-certificate and sweep optimizations: pick a minimum-degree
// source u, test u against every other vertex, then test every pair of
// neighbors of u (Lemma 4 covers the case u ∈ S).
//
// Degenerate cases per Definition 1: a complete graph on n vertices has
// connectivity n-1; graphs with fewer than two vertices have connectivity 0.
func GlobalVertexConnectivity(g *graph.Graph, bound int) (int, []int) {
	n := g.NumVertices()
	if n <= 1 {
		return 0, nil
	}
	if !g.IsConnected() {
		// A disconnected graph has connectivity 0 with the empty cut.
		return 0, []int{}
	}
	if bound > n-1 {
		bound = n - 1
	}
	if bound < 1 {
		bound = 1
	}
	u, _ := g.MinDegreeVertex()
	nw := NewNetwork(g, bound)

	// The early-termination limit shrinks to the best cut found so far:
	// once a cut of size c < bound is known, later pairs only need to
	// answer "is κ(a,b) < c?", so their queries stop augmenting after c
	// units instead of running to the original bound. A connected graph
	// has κ(a,b) >= 1 for every pair, so best = 1 cannot be improved and
	// the remaining tests are skipped outright.
	best := bound
	var bestCut []int
	consider := func(a, b int) {
		if best == 1 {
			return
		}
		cut, c, atLeast := nw.MinVertexCutLimit(a, b, best)
		if !atLeast && c < best {
			best, bestCut = c, cut
		}
	}
	for v := 0; v < n; v++ {
		consider(u, v)
	}
	nbrs := g.Neighbors(u)
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			consider(nbrs[i], nbrs[j])
		}
	}
	if bestCut == nil {
		// No separable pair was found below bound. Either the graph is
		// bound-connected or it is complete (κ = n-1 <= bound).
		return bound, nil
	}
	return best, bestCut
}
