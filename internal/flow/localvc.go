package flow

// LocalVC-style local cut engine, after Nanongkai, Saranurak and
// Yingchareonthawornchai (arXiv:1904.04453, arXiv:1905.05329), adapted to
// the bounded min-vertex-cut queries of LOC-CUT.
//
// The idea: a query "is κ(u,v) >= k?" whose answer is a small cut near the
// seed does not need to look at the whole graph. Instead of Dinic's global
// BFS phases, the engine grows depth-first augmenting paths from the
// source with a per-round arc budget of O(ν·k). Three things can happen in
// a round:
//
//   - the DFS reaches the sink: augment one unit, exactly as Ford-Fulkerson
//     would;
//   - the DFS exhausts the residual-reachable set within budget: the
//     boundary of the reached set is a saturated vertex cut, and (when no
//     fake unit crossed it — see below) its size equals the current real
//     flow value, so the answer is exact;
//   - the DFS hits the budget: it wandered into the far side of a small
//     cut. Following LocalEC, the round is converted into one unit of
//     "fake flow" by reversing the DFS-tree path to a uniformly random
//     visited node. If a small local cut exists, the random endpoint lands
//     beyond it with good probability and the fake unit consumes one unit
//     of cut capacity, so after < k such rounds the reachable set
//     collapses and the cut is found.
//
// Unlike the paper's decision procedure, this engine is EXACT: randomness
// never affects answers, only work. The one-sided error of LocalEC (a
// missed cut after the k-repetition bound) and the rare non-minimum
// boundary (a fake unit ending beyond the final cut) are both resolved by
// rolling the query back via the touched-arc undo log and rerunning it on
// the pooled deterministic Dinic path. docs/DESIGN.md ("The LocalVC local
// cut engine") derives the two exactness cases and records the deviations
// from arXiv:1904.04453.

// LocalVC selects the randomized local cut engine with deterministic
// Dinic fallback. Results are identical to Dinic and EdmondsKarp on every
// query; only the work profile (and the LocalAttempts / LocalFallbacks
// counters) depends on the PRNG seed.
const LocalVC Engine = 2

// defaultLocalSeed seeds the engine PRNG when no explicit seed is set
// (the golden-ratio constant; any nonzero value works).
const defaultLocalSeed = 0x9E3779B97F4A7C15

// minLocalArcBudget floors the per-round arc budget so tiny networks are
// always explored exhaustively (a DFS that cannot finish a 100-arc
// network does nothing but trigger fallbacks).
const minLocalArcBudget = 256

// SetSeed seeds the LocalVC PRNG. Seed 0 selects the fixed default, so a
// zero-valued configuration is still fully reproducible. Seeding never
// changes query results — every answer is exact — only which rounds
// reverse to which fake sinks, and therefore how often the engine falls
// back to Dinic.
func (nw *Network) SetSeed(seed uint64) {
	if seed == 0 {
		seed = defaultLocalSeed
	}
	nw.rngState = seed
}

// SetLocalBudget overrides the per-round DFS arc budget of the LocalVC
// engine. Values <= 0 restore the default heuristic (max(256, m/(4·limit))
// arcs). Tests use tiny budgets to force the fake-sink and fallback paths
// on graphs far below the default floor.
func (nw *Network) SetLocalBudget(arcs int) {
	if arcs < 0 {
		arcs = 0
	}
	nw.localBudget = arcs
}

// localArcBudget is the ν·k-style volume bound of one DFS round. The
// default targets o(m) local work per query on large networks — at most
// 2·limit rounds of m/(4·limit) arcs each is half an arc sweep — while
// the floor keeps small networks exhaustively explorable (no budget hits,
// no randomness, pure depth-first Ford-Fulkerson).
func (nw *Network) localArcBudget(limit int) int {
	if nw.localBudget > 0 {
		return nw.localBudget
	}
	b := len(nw.arcHead) / (4 * limit)
	if b < minLocalArcBudget {
		b = minLocalArcBudget
	}
	return b
}

// rand is a xorshift64 step: allocation-free, deterministic from the seed.
func (nw *Network) rand() uint64 {
	x := nw.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	nw.rngState = x
	return x
}

// localDFS outcome per round.
type localStatus int

const (
	localReached   localStatus = iota // dst found; parent path is an augmenting path
	localExhausted                    // residual-reachable set fully explored, dst absent
	localOverrun                      // arc budget hit before either of the above
)

// maxFlowLocal runs the local augmentation engine. It returns the flow
// value and whether the answer is complete: done=false means the local
// phase gave up (budget exceeded past the repetition bound, or the
// exhaustion boundary was not provably minimum) and the caller must roll
// the query back and rerun it with Dinic.
//
// Exactness of the done=true cases:
//
//   - value == limit: the pseudo-flow decomposes into `value` arc-disjoint
//     src→dst paths plus one path per fake sink; unit vertex arcs make the
//     src→dst paths internally vertex-disjoint, so κ(u,v) >= limit.
//   - exhausted with every fake endpoint inside the reached set T: no flow
//     enters T (a flow-carrying arc into T would leave its reverse
//     residual arc open, putting its tail in T), so the net outflow —
//     `value` real units, the interior fakes cancelling — crosses the
//     saturated boundary one unit per vertex arc. The boundary is a
//     vertex cut of size exactly `value`, and κ >= value by the
//     decomposition above, so κ = value and the cut is minimum.
//
// A fake endpoint outside T adds one crossing unit, making the boundary a
// valid cut of size value+fakesOutside that is not provably minimum; the
// engine reports done=false and lets Dinic recompute exactly.
func (nw *Network) maxFlowLocal(src, dst int32, limit int) (value int, done bool) {
	nw.LocalAttempts++
	nw.parent = growUint64(nw.parent, len(nw.level))
	budget := nw.localArcBudget(limit)
	nw.fakeEnds = nw.fakeEnds[:0]
	for value < limit {
		status, pgen, pick := nw.localDFS(src, dst, budget)
		switch status {
		case localReached:
			nw.reverseParentPath(dst, src)
			value++
		case localExhausted:
			for _, y := range nw.fakeEnds {
				if !stamped(nw.parent[y], pgen) {
					// A fake unit ended beyond the boundary: the cut is
					// valid but possibly not minimum. Let Dinic decide.
					return value, false
				}
			}
			return value, true
		default: // localOverrun
			// Repetition bound: after `limit` fake reversals a small
			// local cut would have been saturated with high probability,
			// so further rounds are wasted work — fall back. pick < 0
			// means the round stalled without visiting a single new node
			// (every scanned arc saturated or already stamped), leaving
			// nothing to reverse to.
			if len(nw.fakeEnds) >= limit || pick < 0 {
				return value, false
			}
			nw.reverseParentPath(pick, src)
			nw.fakeEnds = append(nw.fakeEnds, pick)
		}
	}
	return value, true
}

// reverseParentPath pushes one unit along the parent-arc path from src to
// node (recorded by localDFS or the EK BFS), updating residual capacities
// and the undo log. Shared by real augmentations, fake-sink reversals,
// and the Edmonds-Karp backtrace.
func (nw *Network) reverseParentPath(node, src int32) {
	for node != src {
		a := int32(uint32(nw.parent[node]))
		rev := nw.arcRev[a]
		nw.touch(a)
		nw.touch(rev)
		nw.arcCap[a]--
		nw.arcCap[rev]++
		node = nw.arcHead[rev]
	}
}

// localDFS grows one depth-first search from src in the residual graph,
// spending at most `budget` arc inspections. It reports how the round
// ended, the parent-array generation of this round (whose stamps identify
// the visited set), and a uniformly random visited node (-1 if none) for
// the fake-sink reversal of an overrun round. The per-node current-arc
// cursor makes re-expansion of a node resume where it left off, so the
// budget bounds genuine work, not rescans.
func (nw *Network) localDFS(src, dst int32, budget int) (status localStatus, gen uint32, pick int32) {
	arcCap, arcHead, arcStart, parent, iter := nw.arcCap, nw.arcHead, nw.arcStart, nw.parent, nw.iter
	pgen := nextGen(&nw.parentGen, parent)
	igen := nextGen(&nw.iterGen, iter)
	parent[src] = pack(pgen, ^uint32(0))
	stack := append(nw.queue[:0], src)
	defer func() { nw.queue = stack[:0] }()
	pick = -1
	var visited uint64
	steps := 0
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		e := iter[node]
		it := uint32(arcStart[node])
		if stamped(e, igen) {
			it = uint32(e)
		}
		end := uint32(arcStart[node+1])
		pushed := false
		for ; it < end; it++ {
			steps++
			if steps > budget {
				iter[node] = pack(igen, it)
				return localOverrun, pgen, pick
			}
			if arcCap[it] <= 0 {
				continue
			}
			to := arcHead[it]
			if stamped(parent[to], pgen) {
				continue
			}
			parent[to] = pack(pgen, it)
			iter[node] = pack(igen, it)
			if to == dst {
				return localReached, pgen, pick
			}
			// Reservoir-sample the visited nodes so an overrun round can
			// reverse to a uniformly random one (the fake sink of
			// LocalEC; sampling nodes instead of traversed edges is a
			// documented deviation).
			visited++
			if nw.rand()%visited == 0 {
				pick = to
			}
			stack = append(stack, to)
			pushed = true
			break
		}
		if !pushed {
			iter[node] = pack(igen, it)
			stack = stack[:len(stack)-1]
		}
	}
	return localExhausted, pgen, pick
}
