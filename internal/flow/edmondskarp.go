package flow

// Alternative augmenting engine: Edmonds-Karp (one shortest augmenting
// path per BFS) instead of Dinic's blocking flows. Both are exact; Dinic
// amortizes one BFS over many augmentations, which is why it is the
// default (see BenchmarkEngines and the ablation note in DESIGN.md).

// Engine selects the max-flow augmentation strategy of a Network.
type Engine int

const (
	// Dinic computes blocking flows per BFS level graph (default; the
	// Even-Tarjan bound for unit-capacity split graphs).
	Dinic Engine = iota
	// EdmondsKarp augments one shortest path per BFS. Simpler, with the
	// same answers; kept as a cross-validation engine and ablation
	// baseline.
	EdmondsKarp
)

// SetEngine selects the augmentation strategy for subsequent queries.
func (nw *Network) SetEngine(e Engine) { nw.engine = e }

// maxFlowEK pushes one unit along a BFS-shortest augmenting path until
// either `limit` units flow or no path remains. Returns the flow value.
func (nw *Network) maxFlowEK(src, dst int32, limit int) int {
	// parentArc[v] is the arc used to reach v in the current BFS.
	if nw.parentArc == nil {
		nw.parentArc = make([]int32, len(nw.level))
	}
	value := 0
	for value < limit {
		for i := range nw.parentArc {
			nw.parentArc[i] = -1
		}
		nw.parentArc[src] = -2 // mark visited without a parent
		nw.queue = append(nw.queue[:0], src)
		found := false
	search:
		for head := 0; head < len(nw.queue); head++ {
			node := nw.queue[head]
			for _, a := range nw.arcs(node) {
				to := nw.arcHead[a]
				if nw.arcCap[a] > 0 && nw.parentArc[to] == -1 {
					nw.parentArc[to] = a
					if to == dst {
						found = true
						break search
					}
					nw.queue = append(nw.queue, to)
				}
			}
		}
		if !found {
			break
		}
		// Trace back and push one unit (every path crosses a unit vertex
		// arc, so the bottleneck is 1).
		for node := dst; node != src; {
			a := nw.parentArc[node]
			nw.arcCap[a]--
			nw.arcCap[a^1]++
			node = nw.arcHead[a^1]
		}
		value++
	}
	return value
}
