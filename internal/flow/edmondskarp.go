package flow

// Alternative augmenting engine: Edmonds-Karp (one shortest augmenting
// path per BFS) instead of Dinic's blocking flows. Both are exact; Dinic
// amortizes one BFS over many augmentations, which is why it is the
// default (see BenchmarkEngines and the ablation note in docs/DESIGN.md).

// Engine selects the max-flow augmentation strategy of a Network.
type Engine int

const (
	// Dinic computes blocking flows per BFS level graph (default; the
	// Even-Tarjan bound for unit-capacity split graphs).
	Dinic Engine = iota
	// EdmondsKarp augments one shortest path per BFS. Simpler, with the
	// same answers; kept as a cross-validation engine and ablation
	// baseline.
	EdmondsKarp

	// LocalVC (declared in localvc.go) is the randomized local cut
	// engine with deterministic Dinic fallback; same answers again.
)

// SetEngine selects the augmentation strategy for subsequent queries.
func (nw *Network) SetEngine(e Engine) { nw.engine = e }

// maxFlowEK pushes one unit along a BFS-shortest augmenting path until
// either `limit` units flow or no path remains. Returns the flow value.
// The per-round visited set is the stamp half of the packed parent-arc
// array — bumping the generation replaces the O(n) parentArc wipe the
// engine used to pay before every BFS.
func (nw *Network) maxFlowEK(src, dst int32, limit int) int {
	nw.parent = growUint64(nw.parent, len(nw.level))
	value := 0
	for value < limit {
		gen := nextGen(&nw.parentGen, nw.parent)
		// Mark src visited; its parent arc is never read.
		nw.parent[src] = pack(gen, ^uint32(0))
		nw.queue = append(nw.queue[:0], src)
		found := false
	search:
		for head := 0; head < len(nw.queue); head++ {
			node := nw.queue[head]
			for a := nw.arcStart[node]; a < nw.arcStart[node+1]; a++ {
				to := nw.arcHead[a]
				if nw.arcCap[a] > 0 && !stamped(nw.parent[to], gen) {
					nw.parent[to] = pack(gen, uint32(a))
					if to == dst {
						found = true
						break search
					}
					nw.queue = append(nw.queue, to)
				}
			}
		}
		if !found {
			break
		}
		// Trace back and push one unit (every path crosses a unit vertex
		// arc, so the bottleneck is 1).
		nw.reverseParentPath(dst, src)
		value++
	}
	return value
}
