package flow

import (
	"math/rand"
	"testing"

	"kvcc/graph"
	"kvcc/internal/verify"
)

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

func cycle(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return graph.FromEdges(n, edges)
}

// petersen returns the Petersen graph: 3-regular, vertex connectivity 3.
func petersen() *graph.Graph {
	var edges [][2]int
	for i := 0; i < 5; i++ {
		edges = append(edges,
			[2]int{i, (i + 1) % 5},     // outer cycle
			[2]int{i + 5, (i+2)%5 + 5}, // inner pentagram
			[2]int{i, i + 5},           // spokes
		)
	}
	return graph.FromEdges(10, edges)
}

// wheel returns a wheel W_n: a hub connected to an n-cycle. κ = 3.
func wheel(n int) *graph.Graph {
	var edges [][2]int
	for i := 1; i <= n; i++ {
		edges = append(edges, [2]int{0, i})
		next := i + 1
		if next > n {
			next = 1
		}
		edges = append(edges, [2]int{i, next})
	}
	return graph.FromEdges(n+1, edges)
}

func randomConnectedGraph(n int, p float64, rng *rand.Rand) *graph.Graph {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{rng.Intn(i), i}) // random spanning tree
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

func TestMinVertexCutAdjacentAndSelf(t *testing.T) {
	g := cycle(4)
	nw := NewNetwork(g, 2)
	if _, _, atLeast := nw.MinVertexCut(0, 1); !atLeast {
		t.Fatal("adjacent pair must report atLeastBound")
	}
	if _, _, atLeast := nw.MinVertexCut(2, 2); !atLeast {
		t.Fatal("identical pair must report atLeastBound")
	}
}

func TestMinVertexCutCycle(t *testing.T) {
	g := cycle(6)
	nw := NewNetwork(g, 5)
	cut, c, atLeast := nw.MinVertexCut(0, 3)
	if atLeast || c != 2 || len(cut) != 2 {
		t.Fatalf("cycle cut = %v (κ=%d, atLeast=%v), want size 2", cut, c, atLeast)
	}
	// Verify the cut really separates.
	avoid := map[int]bool{}
	for _, v := range cut {
		avoid[v] = true
	}
	if g.ConnectedAvoiding(avoid) {
		t.Fatalf("returned cut %v does not disconnect the cycle", cut)
	}
}

func TestMinVertexCutEarlyTermination(t *testing.T) {
	g := complete(8) // κ(u,v) = n-1 but no non-adjacent pairs exist...
	// use a complete bipartite-ish structure instead: K4 minus an edge has
	// κ(0,1)=2 when (0,1) removed.
	g = graph.FromEdges(4, [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	nw := NewNetwork(g, 2)
	_, _, atLeast := nw.MinVertexCut(0, 1)
	if !atLeast {
		t.Fatal("κ(0,1)=2 should report atLeastBound at bound=2")
	}
	nw3 := NewNetwork(g, 3)
	cut, c, atLeast := nw3.MinVertexCut(0, 1)
	if atLeast || c != 2 {
		t.Fatalf("κ(0,1) = %d (atLeast=%v), want 2", c, atLeast)
	}
	if len(cut) != 2 || !((cut[0] == 2 && cut[1] == 3) || (cut[0] == 3 && cut[1] == 2)) {
		t.Fatalf("cut = %v, want {2,3}", cut)
	}
}

func TestNetworkReuse(t *testing.T) {
	g := cycle(8)
	nw := NewNetwork(g, 8)
	for trial := 0; trial < 3; trial++ {
		_, c, atLeast := nw.MinVertexCut(0, 4)
		if atLeast || c != 2 {
			t.Fatalf("trial %d: κ = %d atLeast=%v, want 2", trial, c, atLeast)
		}
	}
	if nw.FlowRuns != 3 {
		t.Fatalf("FlowRuns = %d, want 3", nw.FlowRuns)
	}
}

func TestLocalConnectivityKnownGraphs(t *testing.T) {
	p := petersen()
	if c := LocalConnectivity(p, 0, 7, 10); c != 3 {
		t.Fatalf("petersen κ(0,7) = %d, want 3", c)
	}
	w := wheel(6)
	if c := LocalConnectivity(w, 1, 4, 10); c != 3 {
		t.Fatalf("wheel κ(1,4) = %d, want 3", c)
	}
}

func TestLocalConnectivityAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(6)
		g := randomConnectedGraph(n, 0.35, rng)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if g.HasEdge(u, v) {
					continue
				}
				want := verify.LocalConnectivityBrute(g, u, v)
				got := LocalConnectivity(g, u, v, n)
				if got != want {
					t.Fatalf("seed %d: κ(%d,%d) = %d, want %d\ngraph: %v",
						seed, u, v, got, want, g.Edges(nil))
				}
			}
		}
	}
}

func TestCutSizesMatchFlowValue(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(6)
		g := randomConnectedGraph(n, 0.3, rng)
		nw := NewNetwork(g, n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				cut, c, atLeast := nw.MinVertexCut(u, v)
				if atLeast {
					continue
				}
				if len(cut) != c {
					t.Fatalf("seed %d: cut %v has size %d but flow value %d", seed, cut, len(cut), c)
				}
				avoid := map[int]bool{}
				for _, w := range cut {
					avoid[w] = true
					if w == u || w == v {
						t.Fatalf("cut %v contains an endpoint (%d,%d)", cut, u, v)
					}
				}
				if sameComp(g, u, v, avoid) {
					t.Fatalf("seed %d: cut %v fails to separate %d and %d", seed, cut, u, v)
				}
			}
		}
	}
}

func sameComp(g *graph.Graph, u, v int, avoid map[int]bool) bool {
	seen := make([]bool, g.NumVertices())
	seen[u] = true
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		for _, w := range g.Neighbors(x) {
			if !seen[w] && !avoid[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

func TestGlobalVertexConnectivityKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K5", complete(5), 4},
		{"C6", cycle(6), 2},
		{"petersen", petersen(), 3},
		{"wheel8", wheel(8), 3},
		{"path", graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}), 1},
		{"single", graph.FromEdges(1, nil), 0},
		{"two-isolated", graph.FromEdges(2, nil), 0},
	}
	for _, tc := range cases {
		got, cut := GlobalVertexConnectivity(tc.g, tc.g.NumVertices())
		if got != tc.want {
			t.Errorf("%s: κ = %d, want %d", tc.name, got, tc.want)
		}
		if got < tc.g.NumVertices()-1 && tc.g.IsConnected() && got > 0 {
			if len(cut) != got {
				t.Errorf("%s: witness cut %v has wrong size", tc.name, cut)
			}
		}
	}
}

func TestGlobalVertexConnectivityAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		g := randomConnectedGraph(n, 0.4, rng)
		want := verify.VertexConnectivityBrute(g)
		got, _ := GlobalVertexConnectivity(g, n)
		if got != want {
			t.Fatalf("seed %d: κ = %d, want %d (edges %v)", seed, got, want, g.Edges(nil))
		}
	}
}

func TestGlobalVertexConnectivityBounded(t *testing.T) {
	g := complete(10)
	got, cut := GlobalVertexConnectivity(g, 4)
	if got != 4 || cut != nil {
		t.Fatalf("bounded κ(K10) = %d cut=%v, want 4 nil", got, cut)
	}
}

func TestNewNetworkPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(cycle(3), 0)
}
