package flow

import (
	"math/rand"
	"testing"
)

// A pooled network rebuilt across many graphs must answer exactly like a
// fresh network built for each graph — the in-place rebuild may leave
// stale bytes in the hidden capacity of its buffers, and none of them may
// leak into answers.
func TestNetworkScratchReuseAcrossGraphs(t *testing.T) {
	var s Scratch
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Alternate sizes so the scratch both grows and shrinks.
		n := 5 + rng.Intn(12)
		g := randomConnectedGraph(n, 0.3, rng)
		bound := 1 + rng.Intn(n-1)
		pooled := NewNetworkScratch(g, bound, &s)
		fresh := NewNetwork(g, bound)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				cutP, cP, atLeastP := pooled.MinVertexCut(u, v)
				cutF, cF, atLeastF := fresh.MinVertexCut(u, v)
				if cP != cF || atLeastP != atLeastF || len(cutP) != len(cutF) {
					t.Fatalf("seed %d bound %d (%d,%d): pooled (%v,%d,%v) vs fresh (%v,%d,%v)",
						seed, bound, u, v, cutP, cP, atLeastP, cutF, cF, atLeastF)
				}
				for i := range cutP {
					if cutP[i] != cutF[i] {
						t.Fatalf("seed %d (%d,%d): cut %v vs %v", seed, u, v, cutP, cutF)
					}
				}
			}
		}
	}
}

// The undo log must restore the residual capacities exactly: after any
// query sequence, the next query's undo leaves arcCap identical to
// arcInit.
func TestUndoLogRestoresCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomConnectedGraph(20, 0.25, rng)
	nw := NewNetwork(g, 4)
	for trial := 0; trial < 50; trial++ {
		u, v := rng.Intn(20), rng.Intn(20)
		nw.MinVertexCut(u, v)
		nw.undo()
		for a := range nw.arcCap {
			if nw.arcCap[a] != nw.arcInit[a] {
				t.Fatalf("trial %d after (%d,%d): arc %d cap %d != init %d",
					trial, u, v, a, nw.arcCap[a], nw.arcInit[a])
			}
		}
	}
}

// Steady-state MinVertexCut must not allocate: the undo log, generation
// stamps, and pooled buffers make a warm query heap-free. This is the
// allocation-regression guard for the zero-reset engine.
func TestMinVertexCutZeroAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnectedGraph(120, 0.1, rng)
	var s Scratch
	nw := NewNetworkScratch(g, 5, &s)
	// Warm up every buffer (undo log, queue, DFS stack) across a mix of
	// separable and non-separable pairs.
	for u := 0; u < 30; u++ {
		nw.MinVertexCut(u, 119-u)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, atLeast := nw.MinVertexCut(3, 97); !atLeast {
			// κ >= bound here; the cut-returning path allocates exactly
			// the returned slice and is guarded separately below.
			t.Fatal("expected atLeastBound pair")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm MinVertexCut allocated %.1f times per run, want 0", allocs)
	}

	// A cut-returning query may allocate only the cut it hands back.
	cycle8 := cycle(8)
	nwc := NewNetworkScratch(cycle8, 7, &s)
	nwc.MinVertexCut(0, 4) // warm
	allocs = testing.AllocsPerRun(200, func() {
		cut, c, atLeast := nwc.MinVertexCut(0, 4)
		if atLeast || c != 2 || len(cut) != 2 {
			t.Fatalf("cycle cut = %v (κ=%d, atLeast=%v)", cut, c, atLeast)
		}
	})
	if allocs > 1 {
		t.Fatalf("cut-returning MinVertexCut allocated %.1f times per run, want <= 1", allocs)
	}
}

// Rebuilding a pooled network for graphs it has already seen must be
// allocation-free.
func TestNetworkScratchRebuildZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomConnectedGraph(60, 0.15, rng)
	b := randomConnectedGraph(40, 0.3, rng)
	var s Scratch
	NewNetworkScratch(a, 4, &s)
	NewNetworkScratch(b, 4, &s)
	allocs := testing.AllocsPerRun(100, func() {
		nw := NewNetworkScratch(a, 4, &s)
		nw.MinVertexCut(0, 30)
		nw = NewNetworkScratch(b, 4, &s)
		nw.MinVertexCut(0, 20)
	})
	if allocs != 0 {
		t.Fatalf("warm rebuild allocated %.1f times per run, want 0", allocs)
	}
}

// MinVertexCutLimit must honor limits tighter than the build bound and
// reject out-of-range ones.
func TestMinVertexCutLimit(t *testing.T) {
	g := cycle(10) // κ = 2 between antipodal vertices
	nw := NewNetwork(g, 8)
	if _, c, atLeast := nw.MinVertexCutLimit(0, 5, 2); !atLeast || c != 2 {
		t.Fatalf("limit 2: got (%d,%v), want atLeastLimit at 2", c, atLeast)
	}
	cut, c, atLeast := nw.MinVertexCutLimit(0, 5, 3)
	if atLeast || c != 2 || len(cut) != 2 {
		t.Fatalf("limit 3: got (%v,%d,%v), want the 2-cut", cut, c, atLeast)
	}
	for _, bad := range []int{0, -1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("limit %d: expected panic", bad)
				}
			}()
			nw.MinVertexCutLimit(0, 5, bad)
		}()
	}
}
