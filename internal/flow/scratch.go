package flow

import "kvcc/graph"

// Scratch owns a pooled Network and the construction buffer used to
// rebuild it. The enumeration recursion builds one flow network per
// component at every level; routing those builds through one Scratch per
// worker makes every steady-state rebuild allocation-free — the arc
// arrays, node scratch, and undo log are resliced in place and only grow
// when a component exceeds every previous one.
//
// The zero value is ready to use. A Scratch (and the Network it hands
// out) is not safe for concurrent use; give each worker its own. The
// Network returned by NewNetworkScratch is valid until the next
// NewNetworkScratch call with the same Scratch.
type Scratch struct {
	nw   Network
	fill []int32 // next free arcList slot per node during construction
	seed uint64  // LocalVC PRNG seed applied to every rebuilt network
}

// SetSeed fixes the LocalVC PRNG seed applied to every network this
// Scratch rebuilds (0 = the fixed default). Because each rebuild reseeds
// the PRNG, the local engine's behavior on a component depends only on
// the component and the seed — never on which worker processed it or in
// what order — so parallel runs are as reproducible as serial ones.
func (s *Scratch) SetSeed(seed uint64) { s.seed = seed }

// growInt32 / growUint64 reslice s to length n, reallocating only when
// the capacity is insufficient. Newly allocated memory is zero; memory
// re-exposed by growing within capacity may hold stale values, which is
// safe for every caller here: stamped arrays only ever hold generations
// already issued (so a strictly increasing generation counter can never
// collide with them), and all other arrays are fully rewritten before
// use.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// NewNetworkScratch builds the directed flow graph of g with
// early-termination bound `bound` (normally k), reusing s's buffers. The
// layout comes straight from the graph's CSR degrees: arc counts per
// split node are known up front, so the five arc arrays and the node
// scratch are rebuilt in place with zero allocations once the scratch has
// warmed up to the largest component seen. bound must be >= 1.
func NewNetworkScratch(g *graph.Graph, bound int, s *Scratch) *Network {
	if bound < 1 {
		panic("flow: bound must be >= 1")
	}
	if s == nil {
		s = &Scratch{}
	}
	n := g.NumVertices()
	numNodes := 2 * n
	numArcs := 2 * (n + 2*g.NumEdges())

	nw := &s.nw
	nw.g = g
	nw.bound = bound
	nw.engine = Dinic
	nw.FlowRuns = 0
	nw.LocalAttempts = 0
	nw.LocalFallbacks = 0
	nw.localBudget = 0
	nw.fakeEnds = nw.fakeEnds[:0]
	nw.SetSeed(s.seed)

	nw.arcHead = growInt32(nw.arcHead, numArcs)
	nw.arcCap = growInt32(nw.arcCap, numArcs)
	nw.arcInit = growInt32(nw.arcInit, numArcs)
	nw.arcRev = growInt32(nw.arcRev, numArcs)
	nw.arcStamp = growInt32(nw.arcStamp, numArcs)
	nw.arcStart = growInt32(nw.arcStart, numNodes+1)
	nw.level = growUint64(nw.level, numNodes)
	nw.iter = growUint64(nw.iter, numNodes)
	// parent is grown lazily by the Edmonds-Karp engine.
	nw.queue = nw.queue[:0]
	// The capacities below are rebuilt from scratch, so there is nothing
	// to undo; the per-query undo() opens a fresh touch epoch.
	nw.undoLog = nw.undoLog[:0]

	// Arc counts per node follow directly from the CSR degrees: every
	// split node carries its vertex arc (or its reverse) plus one arc per
	// incident edge, so the tail-grouped layout is computable up front
	// and the arc arrays fill in place with one cursor per node.
	nw.arcStart[0] = 0
	for v := 0; v < n; v++ {
		d := int32(g.Degree(v))
		nw.arcStart[inNode(v)+1] = 1 + d  // vertex arc + reverses of adjacency arcs
		nw.arcStart[outNode(v)+1] = 1 + d // reverse of vertex arc + adjacency arcs
	}
	for node := 0; node < numNodes; node++ {
		nw.arcStart[node+1] += nw.arcStart[node]
	}
	s.fill = growInt32(s.fill, numNodes)
	fill := s.fill
	copy(fill, nw.arcStart[:numNodes])

	addArc := func(from, to, capacity int32) {
		a, b := fill[from], fill[to]
		fill[from] = a + 1
		fill[to] = b + 1
		nw.arcHead[a] = to
		nw.arcCap[a] = capacity
		nw.arcRev[a] = b
		nw.arcHead[b] = from
		nw.arcCap[b] = 0
		nw.arcRev[b] = a
	}
	for v := 0; v < n; v++ {
		addArc(inNode(v), outNode(v), 1)
	}
	adjCap := int32(bound)
	offsets, edges := g.Adjacency()
	for u := 0; u < n; u++ {
		from := outNode(u)
		// Each undirected edge is visited twice; add the out(u)→in(v)
		// arc on each visit, covering both directions exactly once.
		for _, v := range edges[offsets[u]:offsets[u+1]] {
			addArc(from, inNode(v), adjCap)
		}
	}
	copy(nw.arcInit, nw.arcCap)
	return nw
}
