package flow

import (
	"math/rand"
	"testing"

	"kvcc/graph"
)

func benchGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{rng.Intn(i), i})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// BenchmarkNetworkBuild measures split-graph construction (done once per
// GLOBAL-CUT call).
func BenchmarkNetworkBuild(b *testing.B) {
	g := benchGraph(500, 0.05, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewNetwork(g, 20)
	}
}

// BenchmarkMinVertexCut measures one LOC-CUT test on a reused network,
// the innermost hot path of the enumeration.
func BenchmarkMinVertexCut(b *testing.B) {
	g := benchGraph(500, 0.05, 1)
	nw := NewNetwork(g, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.MinVertexCut(0, 250+i%200)
	}
}

// BenchmarkMinVertexCutCold measures the worst case for the zero-reset
// engine: a fresh network built from a cold scratch for every query, so
// nothing is pooled and nothing amortizes.
func BenchmarkMinVertexCutCold(b *testing.B) {
	g := benchGraph(500, 0.05, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := NewNetwork(g, 20)
		nw.MinVertexCut(0, 250+i%200)
	}
}

// BenchmarkMinVertexCutWarm measures the steady state of the enumeration
// recursion: a pooled scratch rebuilds the network in place and the
// query undoes only what the previous one touched. Allocs/op must be 0
// (guarded by TestMinVertexCutZeroAllocsSteadyState and
// TestNetworkScratchRebuildZeroAllocs).
func BenchmarkMinVertexCutWarm(b *testing.B) {
	g := benchGraph(500, 0.05, 1)
	var s Scratch
	nw := NewNetworkScratch(g, 20, &s)
	nw.MinVertexCut(0, 250)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := NewNetworkScratch(g, 20, &s)
		nw.MinVertexCut(0, 250+i%200)
	}
}

// BenchmarkMinVertexCutDense exercises the early-termination path where
// κ(u,v) >= bound and all bound augmenting paths are found.
func BenchmarkMinVertexCutDense(b *testing.B) {
	g := benchGraph(200, 0.3, 2)
	nw := NewNetwork(g, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.MinVertexCut(0, 100+i%90)
	}
}

// BenchmarkGlobalVertexConnectivity measures the unoptimized global κ
// computation used by the public facade.
func BenchmarkGlobalVertexConnectivity(b *testing.B) {
	g := benchGraph(150, 0.1, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GlobalVertexConnectivity(g, 10)
	}
}
