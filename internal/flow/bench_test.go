package flow

import (
	"math/rand"
	"testing"

	"kvcc/graph"
)

func benchGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{rng.Intn(i), i})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// BenchmarkNetworkBuild measures split-graph construction (done once per
// GLOBAL-CUT call).
func BenchmarkNetworkBuild(b *testing.B) {
	g := benchGraph(500, 0.05, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewNetwork(g, 20)
	}
}

// BenchmarkMinVertexCut measures one LOC-CUT test on a reused network,
// the innermost hot path of the enumeration.
func BenchmarkMinVertexCut(b *testing.B) {
	g := benchGraph(500, 0.05, 1)
	nw := NewNetwork(g, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.MinVertexCut(0, 250+i%200)
	}
}

// BenchmarkMinVertexCutCold measures the worst case for the zero-reset
// engine: a fresh network built from a cold scratch for every query, so
// nothing is pooled and nothing amortizes.
func BenchmarkMinVertexCutCold(b *testing.B) {
	g := benchGraph(500, 0.05, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := NewNetwork(g, 20)
		nw.MinVertexCut(0, 250+i%200)
	}
}

// BenchmarkMinVertexCutWarm measures the steady state of the enumeration
// recursion: a pooled scratch rebuilds the network in place and the
// query undoes only what the previous one touched. Allocs/op must be 0
// (guarded by TestMinVertexCutZeroAllocsSteadyState and
// TestNetworkScratchRebuildZeroAllocs).
func BenchmarkMinVertexCutWarm(b *testing.B) {
	g := benchGraph(500, 0.05, 1)
	var s Scratch
	nw := NewNetworkScratch(g, 20, &s)
	nw.MinVertexCut(0, 250)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := NewNetworkScratch(g, 20, &s)
		nw.MinVertexCut(0, 250+i%200)
	}
}

// BenchmarkMinVertexCutDense exercises the early-termination path where
// κ(u,v) >= bound and all bound augmenting paths are found.
func BenchmarkMinVertexCutDense(b *testing.B) {
	g := benchGraph(200, 0.3, 2)
	nw := NewNetwork(g, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.MinVertexCut(0, 100+i%90)
	}
}

// bridgedBenchGraph is the LocalVC best case: a small clique (vertices
// 0..small-1) joined to a large random graph through `bridge` middle
// vertices, each adjacent to several vertices on both sides. A query from
// the clique into the far side has a size-`bridge` cut right next to the
// source, so the local DFS exhausts after exploring the clique while a
// global engine scans the whole big side every BFS.
func bridgedBenchGraph(small, big, bridge int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := small + bridge + big
	var edges [][2]int
	for i := 0; i < small; i++ {
		for j := i + 1; j < small; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	bigAt := func(i int) int { return small + bridge + i }
	for i := 1; i < big; i++ {
		edges = append(edges, [2]int{bigAt(rng.Intn(i)), bigAt(i)})
	}
	for i := 0; i < big; i++ {
		for d := 0; d < 3; d++ {
			if j := rng.Intn(big); j != i {
				edges = append(edges, [2]int{bigAt(i), bigAt(j)})
			}
		}
	}
	for t := 0; t < bridge; t++ {
		mid := small + t
		for d := 0; d < 4; d++ {
			edges = append(edges, [2]int{mid, rng.Intn(small)})
			edges = append(edges, [2]int{mid, bigAt(rng.Intn(big))})
		}
	}
	return graph.FromEdges(n, edges)
}

// broomBenchGraph is the local engine's textbook win: a small clique
// (src side), `bridge` mid vertices joining it to a hub, and the hub
// fanning out to a large leaf ring. A (clique, hub) query has its
// size-`bridge` cut right next to the source and its sink right across
// it, so every local DFS dive resolves in O(clique) steps and the final
// round exhausts inside the clique — the engine never touches the leaves
// a global BFS must level every phase.
func broomBenchGraph(cliqueSize, bridge, leaves int) *graph.Graph {
	hub := cliqueSize + bridge
	n := hub + 1 + leaves
	var edges [][2]int
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	for t := 0; t < bridge; t++ {
		mid := cliqueSize + t
		for i := 0; i < cliqueSize; i++ {
			edges = append(edges, [2]int{i, mid})
		}
		edges = append(edges, [2]int{mid, hub})
	}
	for l := 0; l < leaves; l++ {
		leaf := hub + 1 + l
		edges = append(edges, [2]int{hub, leaf})
		edges = append(edges, [2]int{leaf, hub + 1 + (l+1)%leaves})
	}
	return graph.FromEdges(n, edges)
}

// nonAdjacentPair returns a vertex pair of g with no edge between it, so
// a MinVertexCut query on the pair cannot take the Lemma 5 shortcut.
func nonAdjacentPair(b *testing.B, g *graph.Graph) (int, int) {
	b.Helper()
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for v := n - 1; v > u; v-- {
			if !g.HasEdge(u, v) {
				return u, v
			}
		}
	}
	b.Fatal("graph is complete")
	return 0, 0
}

// BenchmarkLocalVCvsDinic is the engine A/B across the local engine's
// operating range. "hit": a (clique, hub) query on broomBenchGraph — a
// small cut next to the source with the sink right across it, where the
// local DFS exhausts inside the clique and never touches the graph's
// large far side. "atleast": a non-adjacent pair of a dense graph with
// κ >= bound, the dominant outcome of the phase-1 sweep — here the
// budget-bounded dives rarely stumble onto the one true sink, so the
// engine burns its repetition budget and falls back, paying local
// overhead on top of the full Dinic cost. "miss": a cross-bridge query
// whose source-side DFS escapes into a large far side before overrunning
// — fallback again, with the biggest wasted budget. The fallbacks/op
// metric records the rate; it is the measured basis for keeping FlowAuto
// conservative (small k only). Warm reuses one network across queries
// (the enumeration steady state, undo-log path); cold builds fresh each
// time.
func BenchmarkLocalVCvsDinic(b *testing.B) {
	hit := broomBenchGraph(12, 3, 2000)
	dense := benchGraph(200, 0.3, 2)
	denseU, denseV := nonAdjacentPair(b, dense)
	miss := bridgedBenchGraph(12, 2000, 3, 7)
	shapes := []struct {
		name     string
		g        *graph.Graph
		bound    int
		src, dst int
	}{
		{"hit-k5", hit, 5, 0, 12 + 3},
		{"atleast-k5", dense, 5, denseU, denseV},
		{"atleast-k20", dense, 20, denseU, denseV},
		{"miss-k5", miss, 5, 0, miss.NumVertices() - 1},
	}
	engines := []struct {
		name string
		e    Engine
	}{
		{"dinic", Dinic},
		{"localvc", LocalVC},
	}
	for _, sh := range shapes {
		bound := sh.bound
		for _, eng := range engines {
			b.Run(sh.name+"/"+eng.name+"/warm", func(b *testing.B) {
				// Reused network, one query per iteration: the per-query
				// cost including the undo of the previous query's touched
				// arcs — the quantity the engines actually differ on (the
				// shared rebuild cost would otherwise swamp it).
				var s Scratch
				nw := NewNetworkScratch(sh.g, bound, &s)
				nw.SetEngine(eng.e)
				nw.MinVertexCut(sh.src, sh.dst)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nw.MinVertexCut(sh.src, sh.dst)
				}
				if eng.e == LocalVC {
					b.ReportMetric(float64(nw.LocalFallbacks)/float64(b.N), "fallbacks/op")
				}
			})
			b.Run(sh.name+"/"+eng.name+"/cold", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					nw := NewNetwork(sh.g, bound)
					nw.SetEngine(eng.e)
					nw.MinVertexCut(sh.src, sh.dst)
				}
			})
		}
	}
}

// BenchmarkGlobalVertexConnectivity measures the unoptimized global κ
// computation used by the public facade.
func BenchmarkGlobalVertexConnectivity(b *testing.B) {
	g := benchGraph(150, 0.1, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GlobalVertexConnectivity(g, 10)
	}
}
