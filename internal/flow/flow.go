// Package flow implements local vertex-connectivity testing by maximum flow
// on the directed flow graph of an undirected graph (Section 4.1 of the
// paper).
//
// Every vertex v of the input graph is split into an arc in(v) → out(v) of
// capacity one; every undirected edge (u,v) becomes the arcs
// out(u) → in(v) and out(v) → in(u). The maximum flow from out(u) to in(v)
// then equals the local vertex connectivity κ(u,v) for non-adjacent u,v
// (Menger's theorem).
//
// Deviation from the paper's description, documented in DESIGN.md: the
// paper assigns capacity one to all arcs; we assign capacity `bound` to the
// adjacency arcs instead. Flow values below `bound` are unchanged (an
// adjacency arc can never carry more than one unit anyway, because its tail
// out(u) receives at most one unit through in(u) → out(u)), but every cut
// of value < bound now consists purely of vertex arcs, which makes
// extracting the vertex cut from the residual graph unambiguous.
//
// Augmentation stops as soon as the flow value reaches `bound`
// (the algorithm only ever asks "is κ(u,v) ≥ k?"), which keeps each test in
// O(min(n^1/2, k) · m) in the spirit of Even–Tarjan.
package flow

import "kvcc/graph"

// Network is a reusable max-flow network over the split graph of one
// undirected graph. A single Network serves many source/sink pairs; each
// query resets the flow in O(arcs).
type Network struct {
	g     *graph.Graph
	bound int

	// CSR arc storage. Arc i and i^1 are a forward/reverse residual pair.
	arcHead []int32 // head node of each arc
	arcCap  []int32 // residual capacity (mutated by queries)
	arcInit []int32 // initial capacity (for reset)
	// Per-node arc index, itself in CSR form: the arcs out of node are
	// arcList[arcStart[node]:arcStart[node+1]]. One flat array instead of
	// 2n per-node slices; the counts come straight from the graph's CSR
	// degrees, so building the index allocates exactly twice.
	arcStart []int32
	arcList  []int32

	// Scratch buffers reused across queries.
	level     []int32
	iter      []int32
	queue     []int32
	reach     []bool
	parentArc []int32 // Edmonds-Karp predecessor arcs

	engine Engine

	// FlowRuns counts the number of max-flow computations executed
	// (LOC-CUT invocations that were not short-circuited).
	FlowRuns int64
}

func inNode(v int) int32  { return int32(2 * v) }
func outNode(v int) int32 { return int32(2*v + 1) }

// NewNetwork builds the directed flow graph of g with early-termination
// bound `bound` (normally k). bound must be >= 1.
func NewNetwork(g *graph.Graph, bound int) *Network {
	if bound < 1 {
		panic("flow: bound must be >= 1")
	}
	n := g.NumVertices()
	numNodes := 2 * n
	numArcs := 2 * (n + 2*g.NumEdges())

	nw := &Network{
		g:       g,
		bound:   bound,
		arcHead: make([]int32, 0, numArcs),
		arcCap:  make([]int32, 0, numArcs),
		level:   make([]int32, numNodes),
		iter:    make([]int32, numNodes),
		queue:   make([]int32, 0, numNodes),
		reach:   make([]bool, numNodes),
	}

	// Arc counts per node follow directly from the CSR degrees: every
	// split node carries its vertex arc (or its reverse) plus one arc per
	// incident edge, so the index offsets are computable up front and the
	// arc lists fill into one flat array.
	nw.arcStart = make([]int32, numNodes+1)
	for v := 0; v < n; v++ {
		d := int32(g.Degree(v))
		nw.arcStart[inNode(v)+1] = 1 + d  // vertex arc + reverses of adjacency arcs
		nw.arcStart[outNode(v)+1] = 1 + d // reverse of vertex arc + adjacency arcs
	}
	for node := 0; node < numNodes; node++ {
		nw.arcStart[node+1] += nw.arcStart[node]
	}
	nw.arcList = make([]int32, numArcs)
	fill := make([]int32, numNodes) // next free slot per node
	copy(fill, nw.arcStart[:numNodes])

	addArc := func(from, to int32, capacity int32) {
		id := int32(len(nw.arcHead))
		nw.arcHead = append(nw.arcHead, to, from)
		nw.arcCap = append(nw.arcCap, capacity, 0)
		nw.arcList[fill[from]] = id
		fill[from]++
		nw.arcList[fill[to]] = id + 1
		fill[to]++
	}

	for v := 0; v < n; v++ {
		addArc(inNode(v), outNode(v), 1)
	}
	adjCap := int32(bound)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			// Each undirected edge is visited twice; add the out(u)→in(v)
			// arc on each visit, covering both directions exactly once.
			addArc(outNode(u), inNode(v), adjCap)
		}
	}
	nw.arcInit = append([]int32(nil), nw.arcCap...)
	return nw
}

// Bound returns the early-termination bound the network was built with.
func (nw *Network) Bound() int { return nw.bound }

// arcs returns the ids of the arcs leaving node.
func (nw *Network) arcs(node int32) []int32 {
	return nw.arcList[nw.arcStart[node]:nw.arcStart[node+1]]
}

func (nw *Network) reset() {
	copy(nw.arcCap, nw.arcInit)
}

// MinVertexCut returns a minimum u-v vertex cut if κ(u,v) < bound.
// If u == v, (u,v) is an edge, or κ(u,v) >= bound, it returns
// (nil, bound, true): the pair cannot be separated by fewer than `bound`
// vertices. Otherwise it returns the cut (vertex ids of g), its size, and
// false.
func (nw *Network) MinVertexCut(u, v int) (cut []int, connectivity int, atLeastBound bool) {
	if u == v || nw.g.HasEdge(u, v) {
		return nil, nw.bound, true
	}
	nw.FlowRuns++
	nw.reset()
	src, dst := outNode(u), inNode(v)
	value := 0
	if nw.engine == EdmondsKarp {
		value = nw.maxFlowEK(src, dst, nw.bound)
	} else {
		for value < nw.bound && nw.bfsLevels(src, dst) {
			value += nw.blockingFlow(src, dst, nw.bound-value)
		}
	}
	if value >= nw.bound {
		return nil, nw.bound, true
	}
	cut = nw.extractCut(src)
	return cut, value, false
}

// bfsLevels builds the Dinic level graph; reports whether dst is reachable.
func (nw *Network) bfsLevels(src, dst int32) bool {
	for i := range nw.level {
		nw.level[i] = -1
	}
	nw.level[src] = 0
	nw.queue = append(nw.queue[:0], src)
	for head := 0; head < len(nw.queue); head++ {
		node := nw.queue[head]
		for _, a := range nw.arcs(node) {
			to := nw.arcHead[a]
			if nw.arcCap[a] > 0 && nw.level[to] == -1 {
				nw.level[to] = nw.level[node] + 1
				if to == dst {
					return true
				}
				nw.queue = append(nw.queue, to)
			}
		}
	}
	return false
}

// blockingFlow augments along the level graph until no augmenting path
// remains or `limit` units have been sent.
func (nw *Network) blockingFlow(src, dst int32, limit int) int {
	for i := range nw.iter {
		nw.iter[i] = 0
	}
	total := 0
	for total < limit {
		if nw.dfsAugment(src, dst) == 0 {
			break
		}
		total++
	}
	return total
}

// dfsAugment finds one unit augmenting path in the level graph (all paths
// here carry exactly one unit because every path crosses a unit vertex
// arc). Iterative DFS with the standard current-arc optimization.
func (nw *Network) dfsAugment(src, dst int32) int {
	type frame struct {
		node int32
		arc  int32 // arc taken from this node (valid once advanced)
	}
	stack := []frame{{node: src}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		node := f.node
		if node == dst {
			// Found a path; saturate the minimum residual along it (=1 on
			// some vertex arc, but compute it for safety).
			bottleneck := int32(1 << 30)
			for i := 0; i+1 < len(stack); i++ {
				a := stack[i].arc
				if nw.arcCap[a] < bottleneck {
					bottleneck = nw.arcCap[a]
				}
			}
			for i := 0; i+1 < len(stack); i++ {
				a := stack[i].arc
				nw.arcCap[a] -= bottleneck
				nw.arcCap[a^1] += bottleneck
			}
			return int(bottleneck)
		}
		advanced := false
		arcs := nw.arcs(node)
		for nw.iter[node] < int32(len(arcs)) {
			a := arcs[nw.iter[node]]
			to := nw.arcHead[a]
			if nw.arcCap[a] > 0 && nw.level[to] == nw.level[node]+1 {
				f.arc = a
				stack = append(stack, frame{node: to})
				advanced = true
				break
			}
			nw.iter[node]++
		}
		if !advanced {
			// Dead end: remove node from the level graph and backtrack.
			nw.level[node] = -1
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				nw.iter[stack[len(stack)-1].node]++
			}
		}
	}
	return 0
}

// extractCut computes the source side of the min cut in the residual graph
// and maps saturated crossing vertex arcs back to vertices of g.
func (nw *Network) extractCut(src int32) []int {
	for i := range nw.reach {
		nw.reach[i] = false
	}
	nw.reach[src] = true
	nw.queue = append(nw.queue[:0], src)
	for head := 0; head < len(nw.queue); head++ {
		node := nw.queue[head]
		for _, a := range nw.arcs(node) {
			to := nw.arcHead[a]
			if nw.arcCap[a] > 0 && !nw.reach[to] {
				nw.reach[to] = true
				nw.queue = append(nw.queue, to)
			}
		}
	}
	var cut []int
	for v := 0; v < nw.g.NumVertices(); v++ {
		if nw.reach[inNode(v)] && !nw.reach[outNode(v)] {
			cut = append(cut, v)
		}
	}
	return cut
}
