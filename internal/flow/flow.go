// Package flow implements local vertex-connectivity testing by maximum flow
// on the directed flow graph of an undirected graph (Section 4.1 of the
// paper).
//
// Every vertex v of the input graph is split into an arc in(v) → out(v) of
// capacity one; every undirected edge (u,v) becomes the arcs
// out(u) → in(v) and out(v) → in(u). The maximum flow from out(u) to in(v)
// then equals the local vertex connectivity κ(u,v) for non-adjacent u,v
// (Menger's theorem).
//
// Deviation from the paper's description, documented in docs/DESIGN.md: the
// paper assigns capacity one to all arcs; we assign capacity `bound` to the
// adjacency arcs instead. Flow values below `bound` are unchanged (an
// adjacency arc can never carry more than one unit anyway, because its tail
// out(u) receives at most one unit through in(u) → out(u)), but every cut
// of value < bound now consists purely of vertex arcs, which makes
// extracting the vertex cut from the residual graph unambiguous.
//
// Augmentation stops as soon as the flow value reaches `bound`
// (the algorithm only ever asks "is κ(u,v) ≥ k?"), which keeps each test in
// O(min(n^1/2, k) · m) in the spirit of Even–Tarjan.
//
// # Zero-reset queries
//
// A bounded query pushes at most `bound` units of flow and touches only
// the arcs on its ≤ bound augmenting paths, so the per-query cost must be
// proportional to that work — not to the size of the network. Two
// mechanisms enforce this (docs/DESIGN.md, "The zero-reset flow engine"):
//
//   - residual capacities are restored by replaying a touched-arc undo
//     log (each arc is recorded once per query, deduplicated by an epoch
//     stamp) instead of copying the whole capacity array;
//   - the per-node level, current-arc, and parent-arc scratch is
//     generation-stamped: each entry packs a 32-bit generation next to
//     its 32-bit value in one uint64, so bumping a counter invalidates
//     the whole array in O(1) and reading an entry costs a single memory
//     access.
package flow

import (
	"sort"

	"kvcc/graph"
)

// Network is a reusable max-flow network over the split graph of one
// undirected graph. A single Network serves many source/sink pairs; a
// query's cost is proportional to the flow work it performs, not to the
// network size, because all mutable state is epoch-stamped or undo-logged
// (see the package comment). Obtain a heap-free pooled Network with
// NewNetworkScratch. A Network is not safe for concurrent use.
type Network struct {
	g     *graph.Graph
	bound int

	// CSR arc storage, grouped by tail node: the arcs out of node are
	// arcHead[arcStart[node]:arcStart[node+1]] (and the parallel slices
	// of arcCap/arcInit/arcRev). Grouping by tail makes every adjacency
	// scan a sequential walk over the arc arrays — no per-arc index
	// indirection — at the cost of an explicit reverse-arc table, which
	// only augmentations (not scans) consult.
	arcHead  []int32 // head node of each arc
	arcCap   []int32 // residual capacity (mutated by queries)
	arcInit  []int32 // initial capacity (undo target)
	arcRev   []int32 // the paired reverse arc
	arcStart []int32

	// Touched-arc undo log: every arc whose residual capacity changes is
	// recorded once per query (first touch wins, deduplicated by
	// arcStamp), and the next query restores exactly those arcs from
	// arcInit instead of copying the whole capacity array.
	undoLog  []int32
	arcStamp []int32
	arcGen   int32

	// Per-node scratch. Each entry packs (generation << 32) | value; an
	// entry is valid iff its generation half equals the current counter,
	// so none of these arrays is ever cleared.
	level  []uint64 // BFS level of the Dinic level graph
	iter   []uint64 // current-arc cursor, an absolute arc id (an unstamped read means arcStart[node])
	parent []uint64 // Edmonds-Karp predecessor arc (stamped = visited)

	levelGen  uint32
	iterGen   uint32
	parentGen uint32

	queue    []int32
	dfsStack []dfsFrame

	engine Engine

	// LocalVC engine state: the xorshift PRNG (see SetSeed), the
	// per-round arc budget override (0 = heuristic), and the fake-sink
	// endpoints of the current query's path reversals.
	rngState    uint64
	localBudget int
	fakeEnds    []int32

	// FlowRuns counts the number of max-flow computations executed
	// (LOC-CUT invocations that were not short-circuited).
	FlowRuns int64
	// LocalAttempts counts queries the LocalVC engine started;
	// LocalFallbacks counts the subset it handed to Dinic (budget overrun
	// past the repetition bound, or a boundary it could not certify as
	// minimum). Both stay 0 under the other engines.
	LocalAttempts  int64
	LocalFallbacks int64
}

type dfsFrame struct {
	node int32
	arc  int32 // arc taken from this node (valid once advanced)
}

func inNode(v int) int32  { return int32(2 * v) }
func outNode(v int) int32 { return int32(2*v + 1) }

// pack builds a stamped scratch entry; stamped tests an entry's stamp.
func pack(gen, val uint32) uint64       { return uint64(gen)<<32 | uint64(val) }
func stamped(e uint64, gen uint32) bool { return uint32(e>>32) == gen }

// deadLevel is the packed level value of a node removed from the level
// graph by a dead-ended DFS; it can never equal a real level + 1.
const deadLevel = ^uint32(0)

// NewNetwork builds the directed flow graph of g with early-termination
// bound `bound` (normally k). bound must be >= 1. For a pooled network
// with zero steady-state build allocations use NewNetworkScratch.
func NewNetwork(g *graph.Graph, bound int) *Network {
	return NewNetworkScratch(g, bound, &Scratch{})
}

// Bound returns the early-termination bound the network was built with.
func (nw *Network) Bound() int { return nw.bound }

// nextGen advances a packed-scratch generation counter, invalidating every
// entry of the array it guards in O(1). On the (astronomically rare)
// wraparound the full array — including capacity hidden by earlier
// reslicing — is zeroed so stale stamps can never collide with a recycled
// generation.
func nextGen(gen *uint32, packed []uint64) uint32 {
	*gen++
	if *gen == 0 {
		clear(packed[:cap(packed)])
		*gen = 1
	}
	return *gen
}

// undo rolls the residual capacities of the arcs touched by the previous
// query back to their initial values and opens a new touch epoch. Cost:
// O(arcs actually modified since the last undo).
func (nw *Network) undo() {
	for _, a := range nw.undoLog {
		nw.arcCap[a] = nw.arcInit[a]
	}
	nw.undoLog = nw.undoLog[:0]
	if nw.arcGen == int32(^uint32(0)>>1) { // MaxInt32: recycle stamps
		clear(nw.arcStamp[:cap(nw.arcStamp)])
		nw.arcGen = 0
	}
	nw.arcGen++
}

// touch records arc a in the undo log the first time its residual
// capacity changes within the current query.
func (nw *Network) touch(a int32) {
	if nw.arcStamp[a] != nw.arcGen {
		nw.arcStamp[a] = nw.arcGen
		nw.undoLog = append(nw.undoLog, a)
	}
}

// MinVertexCut returns a minimum u-v vertex cut if κ(u,v) < bound.
// If u == v, (u,v) is an edge, or κ(u,v) >= bound, it returns
// (nil, bound, true): the pair cannot be separated by fewer than `bound`
// vertices. Otherwise it returns the cut (vertex ids of g, ascending), its
// size, and false.
func (nw *Network) MinVertexCut(u, v int) (cut []int, connectivity int, atLeastBound bool) {
	return nw.MinVertexCutLimit(u, v, nw.bound)
}

// MinVertexCutLimit is MinVertexCut with a per-query early-termination
// limit that may be tighter than the network's bound: augmentation stops
// as soon as `limit` units flow, so a caller that already holds a cut of
// size c can probe further pairs with limit = c and pay nothing for flow
// beyond a known-worse answer. limit must be in [1, Bound()]; the upper
// restriction keeps every cut below the limit vertex-only (the adjacency
// arcs carry capacity Bound()).
func (nw *Network) MinVertexCutLimit(u, v, limit int) (cut []int, connectivity int, atLeastLimit bool) {
	if limit < 1 || limit > nw.bound {
		panic("flow: limit must be in [1, bound]")
	}
	if u == v || nw.g.HasEdge(u, v) {
		return nil, limit, true
	}
	nw.FlowRuns++
	nw.undo()
	src, dst := outNode(u), inNode(v)
	var value int
	switch nw.engine {
	case EdmondsKarp:
		value = nw.maxFlowEK(src, dst, limit)
	case LocalVC:
		var done bool
		value, done = nw.maxFlowLocal(src, dst, limit)
		if !done {
			// Deterministic fallback: roll the local phase's residual
			// mutations back through the undo log and rerun the query
			// on the exact Dinic path. Answers therefore never depend
			// on the PRNG.
			nw.LocalFallbacks++
			nw.undo()
			value = nw.maxFlowDinic(src, dst, limit)
		}
	default:
		value = nw.maxFlowDinic(src, dst, limit)
	}
	if value >= limit {
		return nil, limit, true
	}
	cut = nw.extractCut(src, value)
	return cut, value, false
}

// maxFlowDinic augments by blocking flows over BFS level graphs until
// `limit` units flow or no augmenting path remains.
func (nw *Network) maxFlowDinic(src, dst int32, limit int) int {
	value := 0
	for value < limit && nw.bfsLevels(src, dst) {
		value += nw.blockingFlow(src, dst, limit-value)
	}
	return value
}

// bfsLevels builds the Dinic level graph; reports whether dst is reachable.
func (nw *Network) bfsLevels(src, dst int32) bool {
	// Hoist the hot arrays into locals: the queue append below would
	// otherwise force a reload of every nw field each iteration.
	arcStart, arcCap, arcHead, level := nw.arcStart, nw.arcCap, nw.arcHead, nw.level
	gen := nextGen(&nw.levelGen, level)
	level[src] = pack(gen, 0)
	queue := append(nw.queue[:0], src)
	defer func() { nw.queue = queue }()
	for head := 0; head < len(queue); head++ {
		node := queue[head]
		next := uint32(level[node]) + 1
		for a, end := arcStart[node], arcStart[node+1]; a < end; a++ {
			if arcCap[a] <= 0 {
				continue
			}
			to := arcHead[a]
			if !stamped(level[to], gen) {
				level[to] = pack(gen, next)
				if to == dst {
					return true
				}
				queue = append(queue, to)
			}
		}
	}
	return false
}

// blockingFlow augments along the level graph until no augmenting path
// remains or `limit` units have been sent.
func (nw *Network) blockingFlow(src, dst int32, limit int) int {
	nw.iterGen = nextGen(&nw.iterGen, nw.iter)
	total := 0
	for total < limit {
		if nw.dfsAugment(src, dst) == 0 {
			break
		}
		total++
	}
	return total
}

// curArc returns the current-arc cursor of node (an absolute arc id),
// materializing the lazy reset to the node's first arc on its first read
// in this blocking phase. Callers must write the advanced cursor back to
// nw.iter[node] themselves.
func (nw *Network) curArc(node int32) uint32 {
	e := nw.iter[node]
	if !stamped(e, nw.iterGen) {
		return uint32(nw.arcStart[node])
	}
	return uint32(e)
}

// dfsAugment finds one unit augmenting path in the level graph (all paths
// here carry exactly one unit because every path crosses a unit vertex
// arc). Iterative DFS with the standard current-arc optimization; the
// cursor lives in a register during the advance scan and is stored back
// once per frame visit.
func (nw *Network) dfsAugment(src, dst int32) int {
	arcCap, arcHead, level, iter := nw.arcCap, nw.arcHead, nw.level, nw.iter
	levelGen, iterGen := nw.levelGen, nw.iterGen
	stack := append(nw.dfsStack[:0], dfsFrame{node: src})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		node := f.node
		if node == dst {
			// Found a path; saturate the minimum residual along it (=1 on
			// some vertex arc, but compute it for safety).
			bottleneck := int32(1 << 30)
			for i := 0; i+1 < len(stack); i++ {
				a := stack[i].arc
				if arcCap[a] < bottleneck {
					bottleneck = arcCap[a]
				}
			}
			for i := 0; i+1 < len(stack); i++ {
				a := stack[i].arc
				rev := nw.arcRev[a]
				nw.touch(a)
				nw.touch(rev)
				arcCap[a] -= bottleneck
				arcCap[rev] += bottleneck
			}
			nw.dfsStack = stack
			return int(bottleneck)
		}
		it := nw.curArc(node)
		end := uint32(nw.arcStart[node+1])
		target := pack(levelGen, uint32(level[node])+1)
		for ; it < end; it++ {
			if arcCap[it] > 0 && level[arcHead[it]] == target {
				break
			}
		}
		iter[node] = pack(iterGen, it)
		if it < end {
			f.arc = int32(it)
			stack = append(stack, dfsFrame{node: arcHead[it]})
			continue
		}
		// Dead end: remove node from the level graph and backtrack.
		level[node] = pack(levelGen, deadLevel)
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			iter[stack[len(stack)-1].node]++
		}
	}
	nw.dfsStack = stack
	return 0
}

// extractCut computes the source side of the min cut in the residual graph
// and maps saturated crossing vertex arcs back to vertices of g. size is
// the max-flow value, which by max-flow/min-cut is exactly the number of
// crossing vertex arcs, so the returned slice is allocated at its final
// capacity. The scan is over residual-reachable nodes only; the whole
// extraction never looks at the unreachable side of the network.
func (nw *Network) extractCut(src int32, size int) []int {
	gen := nextGen(&nw.levelGen, nw.level)
	nw.level[src] = pack(gen, 0)
	nw.queue = append(nw.queue[:0], src)
	for head := 0; head < len(nw.queue); head++ {
		node := nw.queue[head]
		for a := nw.arcStart[node]; a < nw.arcStart[node+1]; a++ {
			to := nw.arcHead[a]
			if nw.arcCap[a] > 0 && !stamped(nw.level[to], gen) {
				nw.level[to] = pack(gen, 0)
				nw.queue = append(nw.queue, to)
			}
		}
	}
	if size == 0 {
		return nil
	}
	cut := make([]int, 0, size)
	for _, node := range nw.queue {
		// node is residual-reachable. A reachable in(v) = 2v whose out(v)
		// is unreachable is a saturated vertex arc crossing the cut.
		if node&1 == 0 && !stamped(nw.level[node+1], gen) {
			cut = append(cut, int(node)/2)
		}
	}
	sort.Ints(cut)
	return cut
}
