package flow

import (
	"math/rand"
	"testing"

	"kvcc/graph"
)

// localBudgets is the budget sweep used by the differential tests below:
// 0 is the production heuristic, 1 forces a budget overrun (and therefore
// fake-sink reversals and Dinic fallbacks) on every nontrivial round, and
// the middle values exercise mixed rounds.
var localBudgets = []int{0, 1, 4, 32}

// barbell joins two cliques of the given size by a path of pathLen extra
// vertices — the classic "small cut far from the seed" shape for a local
// search.
func barbell(size, pathLen int) *graph.Graph {
	n := 2*size + pathLen
	var edges [][2]int
	for c := 0; c < 2; c++ {
		off := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{off + i, off + j})
			}
		}
	}
	prev := size - 1
	for p := 0; p < pathLen; p++ {
		edges = append(edges, [2]int{prev, 2*size + p})
		prev = 2*size + p
	}
	edges = append(edges, [2]int{prev, size})
	return graph.FromEdges(n, edges)
}

// lollipop is a clique with a path tail: every tail vertex is an
// articulation point, so κ(clique vertex, tail tip) = 1 while the clique
// side has large volume.
func lollipop(cliqueSize, pathLen int) *graph.Graph {
	n := cliqueSize + pathLen
	var edges [][2]int
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	prev := cliqueSize - 1
	for p := 0; p < pathLen; p++ {
		edges = append(edges, [2]int{prev, cliqueSize + p})
		prev = cliqueSize + p
	}
	return graph.FromEdges(n, edges)
}

// harary returns the Harary graph H_{d,n} for even d (the circulant with
// offsets 1..d/2): d-regular and exactly d-connected — an expander-like
// worst case with no small cut anywhere.
func harary(n, d int) *graph.Graph {
	var edges [][2]int
	for v := 0; v < n; v++ {
		for off := 1; off <= d/2; off++ {
			edges = append(edges, [2]int{v, (v + off) % n})
		}
	}
	return graph.FromEdges(n, edges)
}

// starOfCliques attaches `arms` cliques of the given size to one shared
// hub set of `shared` vertices: the hub is the unique minimum cut between
// any two arms.
func starOfCliques(arms, size, shared int) *graph.Graph {
	n := shared + arms*(size-shared)
	var edges [][2]int
	for i := 0; i < shared; i++ {
		for j := i + 1; j < shared; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	for a := 0; a < arms; a++ {
		first := shared + a*(size-shared)
		for i := first; i < first+size-shared; i++ {
			for h := 0; h < shared; h++ {
				edges = append(edges, [2]int{h, i})
			}
			for j := i + 1; j < first+size-shared; j++ {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// checkEnginesAgree compares LocalVC against Dinic on every vertex pair
// of g at the given bound and budget, and validates every cut LocalVC
// returns: correct size, no endpoints, and actual separation.
func checkEnginesAgree(t *testing.T, name string, g *graph.Graph, bound, budget int, seed uint64) {
	t.Helper()
	n := g.NumVertices()
	dinic := NewNetwork(g, bound)
	local := NewNetwork(g, bound)
	local.SetEngine(LocalVC)
	local.SetSeed(seed)
	local.SetLocalBudget(budget)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			cutD, cD, atLeastD := dinic.MinVertexCut(u, v)
			cutL, cL, atLeastL := local.MinVertexCut(u, v)
			if cD != cL || atLeastD != atLeastL {
				t.Fatalf("%s budget=%d (%d,%d): dinic (%d,%v) vs localvc (%d,%v)",
					name, budget, u, v, cD, atLeastD, cL, atLeastL)
			}
			if atLeastL {
				continue
			}
			if len(cutL) != cL || len(cutD) != cD {
				t.Fatalf("%s budget=%d (%d,%d): cut %v size != κ %d", name, budget, u, v, cutL, cL)
			}
			avoid := map[int]bool{}
			for _, w := range cutL {
				if w == u || w == v {
					t.Fatalf("%s budget=%d (%d,%d): cut %v contains an endpoint", name, budget, u, v, cutL)
				}
				avoid[w] = true
			}
			if cL > 0 && sameComp(g, u, v, avoid) {
				t.Fatalf("%s budget=%d (%d,%d): cut %v does not separate", name, budget, u, v, cutL)
			}
		}
	}
}

// TestLocalVCAdversarialShapes diffs LocalVC against Dinic on the shapes
// the local search is most likely to get wrong: cuts far from the seed
// (barbell, lollipop), no cut at all (Harary expander), and a hub cut
// shared by many sides (star-of-cliques) — across the whole budget sweep.
func TestLocalVCAdversarialShapes(t *testing.T) {
	shapes := []struct {
		name  string
		g     *graph.Graph
		bound int
	}{
		{"barbell", barbell(6, 4), 5},
		{"lollipop", lollipop(7, 5), 6},
		{"harary-16-4", harary(16, 4), 5},
		{"harary-24-6", harary(24, 6), 7},
		{"star-of-cliques", starOfCliques(3, 6, 2), 5},
		{"cycle", cycle(12), 3},
		{"petersen", petersen(), 4},
	}
	for _, s := range shapes {
		for _, budget := range localBudgets {
			checkEnginesAgree(t, s.name, s.g, s.bound, budget, 0)
		}
	}
}

// TestLocalVCRandomGraphs sweeps random connected graphs, bounds, budgets
// and seeds; the pooled-scratch variant additionally exercises the
// undo-log and rebuild paths under the local engine.
func TestLocalVCRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var s Scratch
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(14)
		g := randomConnectedGraph(n, 0.25, rng)
		bound := 1 + rng.Intn(n-1)
		budget := localBudgets[trial%len(localBudgets)]
		seed := rng.Uint64()
		checkEnginesAgree(t, "random", g, bound, budget, seed)

		// Pooled network rebuilt across trials must agree with Dinic too.
		s.SetSeed(seed)
		pooled := NewNetworkScratch(g, bound, &s)
		pooled.SetEngine(LocalVC)
		pooled.SetLocalBudget(budget)
		fresh := NewNetwork(g, bound)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				_, cP, atLeastP := pooled.MinVertexCut(u, v)
				_, cF, atLeastF := fresh.MinVertexCut(u, v)
				if cP != cF || atLeastP != atLeastF {
					t.Fatalf("trial %d (%d,%d): pooled localvc (%d,%v) vs fresh dinic (%d,%v)",
						trial, u, v, cP, atLeastP, cF, atLeastF)
				}
			}
		}
	}
}

// TestLocalVCSeedDeterminism: the same seed reproduces the exact work
// profile (fallback counts included), and different seeds change only the
// work profile, never an answer.
func TestLocalVCSeedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnectedGraph(40, 0.15, rng)
	run := func(seed uint64) (answers []int, attempts, fallbacks int64) {
		nw := NewNetwork(g, 4)
		nw.SetEngine(LocalVC)
		nw.SetSeed(seed)
		nw.SetLocalBudget(6) // small: plenty of overruns and reversals
		for u := 0; u < 40; u += 3 {
			for v := u + 1; v < 40; v += 5 {
				_, c, atLeast := nw.MinVertexCut(u, v)
				if atLeast {
					c = -c
				}
				answers = append(answers, c)
			}
		}
		return answers, nw.LocalAttempts, nw.LocalFallbacks
	}
	a1, at1, fb1 := run(12345)
	a2, at2, fb2 := run(12345)
	if at1 != at2 || fb1 != fb2 {
		t.Fatalf("same seed, different work profile: attempts %d/%d fallbacks %d/%d", at1, at2, fb1, fb2)
	}
	a3, _, _ := run(67890)
	for i := range a1 {
		if a1[i] != a2[i] || a1[i] != a3[i] {
			t.Fatalf("answer %d differs across runs/seeds: %d %d %d", i, a1[i], a2[i], a3[i])
		}
	}
	if fb1 == 0 {
		t.Fatal("budget 6 on a 40-vertex graph should force at least one fallback")
	}
}

// TestLocalVCCounters pins the counter semantics: attempts tick per
// local query, fallbacks only when Dinic had to finish the job, and a
// scratch rebuild resets both.
func TestLocalVCCounters(t *testing.T) {
	g := harary(20, 4)
	var s Scratch
	nw := NewNetworkScratch(g, 3, &s)
	nw.SetEngine(LocalVC)
	nw.MinVertexCut(0, 10)
	if nw.LocalAttempts != 1 {
		t.Fatalf("LocalAttempts = %d, want 1", nw.LocalAttempts)
	}
	if nw.LocalFallbacks != 0 {
		t.Fatalf("default budget covers this network; LocalFallbacks = %d, want 0", nw.LocalFallbacks)
	}
	nw.SetLocalBudget(1)
	nw.MinVertexCut(0, 10)
	if nw.LocalAttempts != 2 || nw.LocalFallbacks != 1 {
		t.Fatalf("after forced overrun: attempts=%d fallbacks=%d, want 2/1", nw.LocalAttempts, nw.LocalFallbacks)
	}
	nw = NewNetworkScratch(g, 3, &s)
	if nw.LocalAttempts != 0 || nw.LocalFallbacks != 0 {
		t.Fatalf("rebuild must reset counters: attempts=%d fallbacks=%d", nw.LocalAttempts, nw.LocalFallbacks)
	}
}

// TestLocalVCBudgetOverride pins the budget knob: non-positive restores
// the heuristic, which floors at minLocalArcBudget.
func TestLocalVCBudgetOverride(t *testing.T) {
	nw := NewNetwork(cycle(8), 2)
	if b := nw.localArcBudget(2); b != minLocalArcBudget {
		t.Fatalf("small-network budget = %d, want floor %d", b, minLocalArcBudget)
	}
	nw.SetLocalBudget(7)
	if b := nw.localArcBudget(2); b != 7 {
		t.Fatalf("override budget = %d, want 7", b)
	}
	nw.SetLocalBudget(-3)
	if b := nw.localArcBudget(2); b != minLocalArcBudget {
		t.Fatalf("negative override must restore the heuristic, got %d", b)
	}
}

// TestLocalVCZeroAllocsSteadyState mirrors the PR 4 zero-alloc guarantees
// for the new engine: warm local queries — including rounds with fake
// reversals and full Dinic fallbacks — must not allocate, and a
// cut-returning query may allocate only the cut it hands back.
func TestLocalVCZeroAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomConnectedGraph(120, 0.1, rng)
	var s Scratch
	nw := NewNetworkScratch(g, 5, &s)
	nw.SetEngine(LocalVC)
	for u := 0; u < 30; u++ { // warm every buffer, parent array included
		nw.MinVertexCut(u, 119-u)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, atLeast := nw.MinVertexCut(3, 97); !atLeast {
			t.Fatal("expected atLeastBound pair")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm LocalVC query allocated %.1f times per run, want 0", allocs)
	}

	// Force the overrun → fake-reversal → Dinic-fallback path; still 0.
	nw.SetLocalBudget(2)
	nw.MinVertexCut(3, 97)
	if nw.LocalFallbacks == 0 {
		t.Fatal("budget 2 must force a fallback")
	}
	allocs = testing.AllocsPerRun(200, func() {
		nw.MinVertexCut(3, 97)
	})
	if allocs != 0 {
		t.Fatalf("warm fallback query allocated %.1f times per run, want 0", allocs)
	}

	// A cut-returning local query may allocate only the returned slice.
	nwc := NewNetworkScratch(barbell(8, 3), 5, &s)
	nwc.SetEngine(LocalVC)
	nwc.MinVertexCut(0, 8) // warm
	allocs = testing.AllocsPerRun(200, func() {
		cut, c, atLeast := nwc.MinVertexCut(0, 8)
		if atLeast || c != 1 || len(cut) != 1 {
			t.Fatalf("barbell cut = %v (κ=%d, atLeast=%v)", cut, c, atLeast)
		}
	})
	if allocs > 1 {
		t.Fatalf("cut-returning LocalVC query allocated %.1f times per run, want <= 1", allocs)
	}
}
