package flow

import (
	"math/rand"
	"testing"

	"kvcc/graph"
	"kvcc/internal/verify"
)

// Both engines must agree with each other and with brute force on every
// pair of every random graph.
func TestEnginesAgree(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(7)
		g := randomConnectedGraph(n, 0.35, rng)
		dinic := NewNetwork(g, n)
		ek := NewNetwork(g, n)
		ek.SetEngine(EdmondsKarp)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if g.HasEdge(u, v) {
					continue
				}
				cutD, cd, atLeastD := dinic.MinVertexCut(u, v)
				cutE, ce, atLeastE := ek.MinVertexCut(u, v)
				if atLeastD != atLeastE || cd != ce {
					t.Fatalf("seed %d (%d,%d): dinic (%d,%v) vs ek (%d,%v)",
						seed, u, v, cd, atLeastD, ce, atLeastE)
				}
				if !atLeastD {
					if len(cutD) != len(cutE) {
						t.Fatalf("seed %d (%d,%d): cut sizes %d vs %d",
							seed, u, v, len(cutD), len(cutE))
					}
					want := verify.LocalConnectivityBrute(g, u, v)
					if cd != want {
						t.Fatalf("seed %d (%d,%d): κ = %d, brute %d", seed, u, v, cd, want)
					}
				}
			}
		}
	}
}

// The Edmonds-Karp engine must respect the early-termination bound.
func TestEdmondsKarpEarlyTermination(t *testing.T) {
	g := complete(10)
	// K10 minus an edge: κ(0,1) = 8.
	var edges [][2]int
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if !(i == 0 && j == 1) {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	g = graph.FromEdges(10, edges)
	nw := NewNetwork(g, 3)
	nw.SetEngine(EdmondsKarp)
	if _, _, atLeast := nw.MinVertexCut(0, 1); !atLeast {
		t.Fatal("κ=8 >= bound 3 must report atLeastBound")
	}
	nwFull := NewNetwork(g, 9)
	nwFull.SetEngine(EdmondsKarp)
	if _, c, atLeast := nwFull.MinVertexCut(0, 1); atLeast || c != 8 {
		t.Fatalf("κ(0,1) = %d atLeast=%v, want 8", c, atLeast)
	}
}

// BenchmarkEngines is the ablation for the Dinic-vs-Edmonds-Karp design
// choice called out in docs/DESIGN.md.
func BenchmarkEngines(b *testing.B) {
	g := benchGraph(400, 0.08, 5)
	for _, tc := range []struct {
		name   string
		engine Engine
	}{{"dinic", Dinic}, {"edmonds-karp", EdmondsKarp}} {
		b.Run(tc.name, func(b *testing.B) {
			nw := NewNetwork(g, 15)
			nw.SetEngine(tc.engine)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nw.MinVertexCut(0, 200+i%150)
			}
		})
	}
}
