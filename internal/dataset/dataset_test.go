package dataset

import (
	"fmt"
	"path/filepath"
	"testing"

	"kvcc/graphio"
	"kvcc/internal/kcore"
)

func TestNamesAndDescribe(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("names = %v, want 7 datasets", names)
	}
	for _, n := range names {
		meta, err := Describe(n)
		if err != nil {
			t.Fatalf("Describe(%s): %v", n, err)
		}
		if meta.PaperVertices <= 0 || meta.PaperEdges <= 0 {
			t.Fatalf("%s: paper stats missing: %+v", n, meta)
		}
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("Describe must reject unknown names")
	}
	if _, err := Load("nope", 1); err == nil {
		t.Fatal("Load must reject unknown names")
	}
}

func TestLoadDeterministic(t *testing.T) {
	a := MustLoad("DBLP", 0.2)
	b := MustLoad("DBLP", 0.2)
	if fmt.Sprint(a.Edges(nil)) != fmt.Sprint(b.Edges(nil)) {
		t.Fatal("dataset generation not deterministic")
	}
}

func TestLoadScales(t *testing.T) {
	small := MustLoad("Google", 0.1)
	big := MustLoad("Google", 0.3)
	if small.NumVertices() >= big.NumVertices() {
		t.Fatalf("scale not monotone: %d vs %d vertices", small.NumVertices(), big.NumVertices())
	}
}

// Every dataset must have non-trivial k-core structure in the k range its
// experiments use — otherwise the efficiency figures would measure noise.
func TestDatasetsHaveStructureInKRange(t *testing.T) {
	krange := map[string][2]int{
		"Youtube":  {6, 9},
		"DBLP":     {15, 30},
		"Google":   {18, 30},
		"Cnr":      {17, 30},
		"Stanford": {20, 30},
		"ND":       {20, 30},
		"Cit":      {20, 30},
	}
	for _, name := range Names() {
		g := MustLoad(name, 0.15)
		r := krange[name]
		for _, k := range []int{r[0], r[1]} {
			core, _ := kcore.Reduce(g, k)
			if core.NumVertices() == 0 {
				t.Errorf("%s: empty %d-core; generator profile too weak", name, k)
			}
		}
	}
}

func TestCommunitiesGroundTruth(t *testing.T) {
	comms, err := Communities("DBLP", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) < 2 {
		t.Fatalf("communities = %d", len(comms))
	}
	g := MustLoad("DBLP", 0.2)
	idx := g.LabelIndex()
	for _, c := range comms {
		for _, l := range c {
			if _, ok := idx[l]; !ok {
				t.Fatalf("community label %d missing from graph", l)
			}
		}
	}
	if _, err := Communities("nope", 1); err == nil {
		t.Fatal("Communities must reject unknown names")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(0.1)
	if len(rows) != 7 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Vertices == 0 || r.Edges == 0 || r.MaxDegree == 0 {
			t.Fatalf("%s: empty row %+v", r.Meta.Name, r)
		}
		if r.Density <= 0 {
			t.Fatalf("%s: density %v", r.Meta.Name, r.Density)
		}
	}
	// Web datasets must show hubbier degree profiles than collaboration.
	byName := map[string]Stats{}
	for _, r := range rows {
		byName[r.Meta.Name] = r
	}
	if byName["Cnr"].Density <= byName["DBLP"].Density {
		t.Errorf("expected Cnr (web) denser than DBLP: %.2f vs %.2f",
			byName["Cnr"].Density, byName["DBLP"].Density)
	}
}

func TestLoadFileStreamsSNAPFormat(t *testing.T) {
	// Write a generated graph as a SNAP-style edge list and ingest it
	// back through the streaming loader.
	g := MustLoad("Youtube", 0.1)
	path := filepath.Join(t.TempDir(), "snap.txt")
	if err := graphio.WriteEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip: n=%d->%d m=%d->%d",
			g.NumVertices(), back.NumVertices(), g.NumEdges(), back.NumEdges())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file must error")
	}
}
