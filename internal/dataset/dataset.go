// Package dataset builds the seven synthetic stand-ins for the paper's
// SNAP evaluation corpus (Table 1: Stanford, DBLP, Cnr, ND, Google, Cit,
// plus Youtube used in Figs. 7-9). The module is offline, so each dataset
// is generated deterministically with a structure calibrated to the
// original's character: overall density and hub profile from Table 1, and
// planted dense communities whose vertex connectivities span the k ranges
// the paper evaluates on that dataset (6-9 for Youtube, 15-21 for the
// effectiveness figures, 20-40 for the efficiency figures).
//
// The generated graphs are laptop-sized (≈10⁴ vertices at scale 1.0); the
// scale knob grows or shrinks the corpus proportionally. See docs/DESIGN.md
// ("Substitutions") for why this preserves the paper's observable
// behaviour.
package dataset

import (
	"fmt"
	"math/rand"

	"kvcc/gen"
	"kvcc/graph"
	"kvcc/graphio"
)

// Meta describes one dataset: the paper's reported statistics and the
// flavour of the synthetic stand-in.
type Meta struct {
	Name           string
	PaperVertices  int
	PaperEdges     int
	PaperDensity   float64
	PaperMaxDegree int
	Kind           string // "web", "social", "citation", "collaboration"
}

// blockSpec describes one tier of planted communities. Vertex
// connectivity of a block spans roughly [prob*(minSize-1),
// prob*(maxSize-1)].
type blockSpec struct {
	count   int
	minSize int
	maxSize int
	prob    float64
	overlap int // chained vertex overlap (every 4th block)
	bridges int
}

type profile struct {
	meta Meta

	// Two community tiers. Real k-cores mix large, relatively sparse
	// k-connected regions (where group sweep and vertex deposits do the
	// pruning and the basic algorithm pays hundreds of flow tests) with
	// small near-clique blocks (where strong side-vertices fire). The mix
	// ratio shapes the dataset's Table 2 profile.
	sparse blockSpec
	dense  blockSpec

	// Optional "mega core": one large G(n,p) block with average degree
	// megaDeg, modelling the single huge dense core region of web and
	// citation graphs. Its average degree stays above 2k across the
	// paper's k range, so the k-th scan-first forest spans it and the
	// group sweep prunes it wholesale — the structure behind the paper's
	// largest VCCE-vs-VCCE* gaps (Stanford, Cnr, Cit). megaSize 0
	// disables the tier; the size scales with the dataset scale.
	megaSize int
	megaDeg  int

	// Background graph providing the global degree profile.
	background    string // "web", "ba"
	backgroundN   int
	backgroundDeg int
	copyProb      float64

	attachments int // random community<->background edges
	seed        int64
}

var profiles = []profile{
	{
		meta: Meta{Name: "Stanford", PaperVertices: 281903, PaperEdges: 2312497,
			PaperDensity: 8.20, PaperMaxDegree: 38625, Kind: "web"},
		sparse:   blockSpec{count: 40, minSize: 55, maxSize: 135, prob: 0.28, overlap: 3, bridges: 40},
		dense:    blockSpec{count: 30, minSize: 20, maxSize: 52, prob: 0.90, overlap: 3, bridges: 20},
		megaSize: 1600, megaDeg: 50,
		background: "web", backgroundN: 5200, backgroundDeg: 8, copyProb: 0.72,
		attachments: 350, seed: 101,
	},
	{
		meta: Meta{Name: "DBLP", PaperVertices: 317080, PaperEdges: 1049866,
			PaperDensity: 3.31, PaperMaxDegree: 343, Kind: "collaboration"},
		// Co-authorship is cliquey: the dense tier dominates, matching
		// DBLP's strong NS1 share in Table 2.
		sparse:     blockSpec{count: 18, minSize: 50, maxSize: 125, prob: 0.30, overlap: 3, bridges: 16},
		dense:      blockSpec{count: 60, minSize: 18, maxSize: 52, prob: 0.88, overlap: 3, bridges: 40},
		background: "ba", backgroundN: 6500, backgroundDeg: 2,
		attachments: 400, seed: 102,
	},
	{
		meta: Meta{Name: "Cnr", PaperVertices: 325557, PaperEdges: 3216152,
			PaperDensity: 9.88, PaperMaxDegree: 18236, Kind: "web"},
		// Cnr is the paper's group-sweep-heavy dataset: mostly large
		// sparse blocks.
		sparse:   blockSpec{count: 45, minSize: 55, maxSize: 140, prob: 0.28, overlap: 4, bridges: 44},
		dense:    blockSpec{count: 14, minSize: 20, maxSize: 52, prob: 0.90, overlap: 3, bridges: 10},
		megaSize: 1500, megaDeg: 52,
		background: "web", backgroundN: 4600, backgroundDeg: 10, copyProb: 0.75,
		attachments: 300, seed: 103,
	},
	{
		meta: Meta{Name: "ND", PaperVertices: 325729, PaperEdges: 1497134,
			PaperDensity: 4.60, PaperMaxDegree: 10721, Kind: "web"},
		sparse:     blockSpec{count: 36, minSize: 55, maxSize: 130, prob: 0.28, overlap: 3, bridges: 32},
		dense:      blockSpec{count: 22, minSize: 20, maxSize: 52, prob: 0.90, overlap: 3, bridges: 14},
		background: "web", backgroundN: 5200, backgroundDeg: 4, copyProb: 0.62,
		attachments: 280, seed: 104,
	},
	{
		meta: Meta{Name: "Google", PaperVertices: 875713, PaperEdges: 5105039,
			PaperDensity: 5.83, PaperMaxDegree: 6332, Kind: "web"},
		sparse:   blockSpec{count: 45, minSize: 55, maxSize: 135, prob: 0.28, overlap: 3, bridges: 48},
		dense:    blockSpec{count: 34, minSize: 20, maxSize: 52, prob: 0.90, overlap: 3, bridges: 22},
		megaSize: 1000, megaDeg: 48,
		background: "web", backgroundN: 8800, backgroundDeg: 5, copyProb: 0.66,
		attachments: 500, seed: 105,
	},
	{
		meta: Meta{Name: "Youtube", PaperVertices: 1134890, PaperEdges: 2987624,
			PaperDensity: 2.63, PaperMaxDegree: 28754, Kind: "social"},
		sparse:     blockSpec{count: 30, minSize: 20, maxSize: 60, prob: 0.30, overlap: 2, bridges: 24},
		dense:      blockSpec{count: 45, minSize: 10, maxSize: 22, prob: 0.80, overlap: 2, bridges: 28},
		background: "ba", backgroundN: 5200, backgroundDeg: 2,
		attachments: 380, seed: 106,
	},
	{
		meta: Meta{Name: "Cit", PaperVertices: 3774768, PaperEdges: 16518948,
			PaperDensity: 4.38, PaperMaxDegree: 793, Kind: "citation"},
		sparse:   blockSpec{count: 50, minSize: 50, maxSize: 130, prob: 0.28, overlap: 3, bridges: 44},
		dense:    blockSpec{count: 40, minSize: 18, maxSize: 52, prob: 0.88, overlap: 3, bridges: 26},
		megaSize: 1700, megaDeg: 48,
		background: "ba", backgroundN: 13000, backgroundDeg: 4,
		attachments: 650, seed: 107,
	},
}

// Names lists the datasets in the paper's Table 1 order (plus Youtube).
func Names() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.meta.Name
	}
	return names
}

// Describe returns the metadata for a dataset.
func Describe(name string) (Meta, error) {
	for _, p := range profiles {
		if p.meta.Name == name {
			return p.meta, nil
		}
	}
	return Meta{}, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
}

// Load generates a dataset stand-in at the given scale (1.0 = default
// size; 0.5 = half the communities and background). Generation is
// deterministic per (name, scale).
func Load(name string, scale float64) (*graph.Graph, error) {
	for _, p := range profiles {
		if p.meta.Name == name {
			return build(p, scale), nil
		}
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
}

// MustLoad is Load for tests and benchmarks with known-good names.
func MustLoad(name string, scale float64) *graph.Graph {
	g, err := Load(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}

// LoadFile ingests a real SNAP-format edge list (the datasets of Table 1,
// downloadable from snap.stanford.edu) through the streaming two-pass
// loader, so even the billion-edge originals the paper evaluates are read
// with bounded memory: the finished CSR arrays plus the label intern map,
// never an intermediate edge slice. This is the bridge from the synthetic
// stand-ins above to the paper's actual corpus. Non-seekable paths
// (pipes, /dev/stdin) fall back to the one-pass reader.
func LoadFile(path string) (*graph.Graph, error) {
	return graphio.ReadEdgeListFile(path)
}

func scaleInt(v int, scale float64, min int) int {
	s := int(float64(v)*scale + 0.5)
	if s < min {
		return min
	}
	return s
}

func plantedConfig(b blockSpec, scale float64, seed int64) gen.PlantedConfig {
	return gen.PlantedConfig{
		Communities: scaleInt(b.count, scale, 2),
		MinSize:     b.minSize, MaxSize: b.maxSize, IntraProb: b.prob,
		ChainOverlap: b.overlap, ChainEvery: 4,
		BridgeEdges: scaleInt(b.bridges, scale, 0), Seed: seed,
	}
}

func build(p profile, scale float64) *graph.Graph {
	if scale <= 0 {
		scale = 1
	}
	sparseG, sparseComms := gen.Planted(plantedConfig(p.sparse, scale, p.seed))
	denseG, denseComms := gen.Planted(plantedConfig(p.dense, scale, p.seed+10))
	mega := megaBlock(p, scale)
	backgroundN := scaleInt(p.backgroundN, scale, 16)
	var bg *graph.Graph
	switch p.background {
	case "web":
		bg = gen.WebGraph(backgroundN, p.backgroundDeg, p.copyProb, p.seed+1)
	case "ba":
		m0 := p.backgroundDeg + 2
		bg = gen.BarabasiAlbert(backgroundN, m0, p.backgroundDeg, p.seed+1)
	default:
		panic("dataset: unknown background kind " + p.background)
	}

	// Merge the layers with disjoint label ranges.
	b := graph.NewBuilder(sparseG.NumVertices() + denseG.NumVertices() + bg.NumVertices())
	for _, e := range sparseG.Edges(nil) {
		b.AddEdge(sparseG.Label(e[0]), sparseG.Label(e[1]))
	}
	denseOffset := int64(sparseG.NumVertices())
	for _, e := range denseG.Edges(nil) {
		b.AddEdge(denseOffset+denseG.Label(e[0]), denseOffset+denseG.Label(e[1]))
	}
	megaOffset := denseOffset + int64(denseG.NumVertices())
	var bgOffset int64 = megaOffset
	if mega != nil {
		for _, e := range mega.Edges(nil) {
			b.AddEdge(megaOffset+mega.Label(e[0]), megaOffset+mega.Label(e[1]))
		}
		bgOffset += int64(mega.NumVertices())
	}
	for _, e := range bg.Edges(nil) {
		b.AddEdge(bgOffset+bg.Label(e[0]), bgOffset+bg.Label(e[1]))
	}
	// Attachment edges tie the layers together so the graph is one
	// loosely connected whole (k-core strips them during enumeration).
	rng := rand.New(rand.NewSource(p.seed + 2))
	pick := func() int64 {
		if rng.Intn(2) == 0 && len(denseComms) > 0 {
			c := denseComms[rng.Intn(len(denseComms))]
			return denseOffset + c[rng.Intn(len(c))]
		}
		c := sparseComms[rng.Intn(len(sparseComms))]
		return c[rng.Intn(len(c))]
	}
	for i := 0; i < scaleInt(p.attachments, scale, 1); i++ {
		b.AddEdge(pick(), bgOffset+int64(rng.Intn(bg.NumVertices())))
	}
	if mega != nil {
		for i := 0; i < 10; i++ {
			b.AddEdge(megaOffset+int64(rng.Intn(mega.NumVertices())),
				bgOffset+int64(rng.Intn(bg.NumVertices())))
		}
	}
	return b.Build()
}

// megaBlock builds the optional dense core tier as an "onion": nested
// vertex layers of increasing density, so the block's k-core shrinks
// smoothly as k grows instead of dying all at once — the behaviour of the
// big dense core regions of real web and citation graphs. The outermost
// layer has average degree ≈ 0.55*megaDeg and each inner layer adds more,
// giving core numbers that span roughly [0.5*megaDeg, 1.9*megaDeg].
func megaBlock(p profile, scale float64) *graph.Graph {
	if p.megaSize == 0 {
		return nil
	}
	size := scaleInt(p.megaSize, scale, 200)
	rng := rand.New(rand.NewSource(p.seed + 20))
	b := graph.NewBuilder(size)
	for v := 0; v < size; v++ {
		b.AddVertex(int64(v))
	}
	layerFrac := []float64{1.0, 0.55, 0.30, 0.17}
	degFrac := []float64{0.55, 0.40, 0.45, 0.90}
	for li, lf := range layerFrac {
		s := int(float64(size) * lf)
		if s < 10 {
			break
		}
		q := float64(p.megaDeg) * degFrac[li] / float64(s-1)
		if q > 1 {
			q = 1
		}
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				if rng.Float64() < q {
					b.AddEdge(int64(i), int64(j))
				}
			}
		}
	}
	return b.Build()
}

// Communities regenerates the planted community label sets of a dataset
// (ground truth for recovery measurements), sparse tier first.
func Communities(name string, scale float64) ([][]int64, error) {
	for _, p := range profiles {
		if p.meta.Name == name {
			if scale <= 0 {
				scale = 1
			}
			_, sparseComms := gen.Planted(plantedConfig(p.sparse, scale, p.seed))
			sparseG, _ := gen.Planted(plantedConfig(p.sparse, scale, p.seed))
			_, denseComms := gen.Planted(plantedConfig(p.dense, scale, p.seed+10))
			offset := int64(sparseG.NumVertices())
			out := append([][]int64(nil), sparseComms...)
			for _, c := range denseComms {
				shifted := make([]int64, len(c))
				for i, l := range c {
					shifted[i] = l + offset
				}
				out = append(out, shifted)
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Stats summarizes a generated graph next to the paper's reported numbers
// for the Table 1 reproduction.
type Stats struct {
	Meta      Meta
	Vertices  int
	Edges     int
	Density   float64
	MaxDegree int
}

// Table1 generates every dataset at the given scale and reports the
// Table 1 statistics (generated vs. paper).
func Table1(scale float64) []Stats {
	out := make([]Stats, 0, len(profiles))
	for _, p := range profiles {
		g := build(p, scale)
		out = append(out, Stats{
			Meta:      p.meta,
			Vertices:  g.NumVertices(),
			Edges:     g.NumEdges(),
			Density:   float64(g.NumEdges()) / float64(g.NumVertices()), // m/n, as in Table 1
			MaxDegree: g.MaxDegree(),
		})
	}
	return out
}
