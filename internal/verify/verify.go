// Package verify provides exponential-time brute-force oracles used by
// tests as ground truth for the polynomial algorithms: exact vertex
// connectivity by cut enumeration, exact k-VCC enumeration by maximal
// subset search, and exact edge connectivity by bipartition enumeration.
// All functions are intended for tiny graphs only (n ≲ 16).
package verify

import (
	"math/bits"

	"kvcc/graph"
)

// LocalConnectivityBrute returns min(κ(u,v), n) computed by enumerating all
// vertex subsets not containing u or v, smallest first. Adjacent vertices
// get n (cannot be separated).
func LocalConnectivityBrute(g *graph.Graph, u, v int) int {
	n := g.NumVertices()
	if g.HasEdge(u, v) || u == v {
		return n
	}
	others := make([]int, 0, n-2)
	for w := 0; w < n; w++ {
		if w != u && w != v {
			others = append(others, w)
		}
	}
	best := n
	for mask := 0; mask < 1<<len(others); mask++ {
		size := bits.OnesCount(uint(mask))
		if size >= best {
			continue
		}
		avoid := make(map[int]bool, size)
		for i, w := range others {
			if mask&(1<<i) != 0 {
				avoid[w] = true
			}
		}
		if !sameComponentAvoiding(g, u, v, avoid) {
			best = size
		}
	}
	return best
}

// VertexConnectivityBrute returns κ(G) per Definition 1: the minimum number
// of vertices whose removal disconnects the graph or leaves a single
// vertex. For a complete graph K_n it returns n-1.
func VertexConnectivityBrute(g *graph.Graph) int {
	n := g.NumVertices()
	if n <= 1 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	best := n - 1
	for mask := 0; mask < 1<<n; mask++ {
		size := bits.OnesCount(uint(mask))
		if size >= best {
			continue
		}
		avoid := make(map[int]bool, size)
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				avoid[v] = true
			}
		}
		if n-size >= 2 && !g.ConnectedAvoiding(avoid) {
			best = size
		}
	}
	return best
}

// IsKConnectedBrute reports whether g is k-vertex connected per
// Definition 2: more than k vertices and κ(G) >= k.
func IsKConnectedBrute(g *graph.Graph, k int) bool {
	if g.NumVertices() <= k {
		return false
	}
	if !g.IsConnected() {
		return k <= 0
	}
	return VertexConnectivityBrute(g) >= k
}

// KVCCBrute enumerates all k-VCCs of g by checking every vertex subset:
// a subset qualifies if its induced subgraph is k-connected with more than
// k vertices, and no strict superset qualifies. Subsets are returned as
// sorted label slices in deterministic order.
func KVCCBrute(g *graph.Graph, k int) [][]int64 {
	n := g.NumVertices()
	type candidate struct {
		mask uint
		size int
	}
	var cands []candidate
	for mask := uint(1); mask < 1<<n; mask++ {
		size := bits.OnesCount(mask)
		if size <= k {
			continue
		}
		vs := verticesOf(mask, n)
		sub := g.InducedSubgraph(vs)
		if sub.IsConnected() && VertexConnectivityBrute(sub) >= k {
			cands = append(cands, candidate{mask, size})
		}
	}
	var out [][]int64
	for _, c := range cands {
		maximal := true
		for _, d := range cands {
			if d.mask != c.mask && d.mask&c.mask == c.mask {
				maximal = false
				break
			}
		}
		if maximal {
			labels := make([]int64, 0, c.size)
			for _, v := range verticesOf(c.mask, n) {
				labels = append(labels, g.Label(v))
			}
			out = append(out, labels)
		}
	}
	return out
}

// KECCBrute enumerates all k-ECCs of g by subset search: a vertex subset
// qualifies if it has at least two vertices and its induced subgraph has
// edge connectivity >= k; maximal qualifying subsets are returned as
// sorted label slices.
func KECCBrute(g *graph.Graph, k int) [][]int64 {
	n := g.NumVertices()
	type candidate struct {
		mask uint
		size int
	}
	var cands []candidate
	for mask := uint(1); mask < 1<<n; mask++ {
		size := bits.OnesCount(mask)
		if size < 2 {
			continue
		}
		sub := g.InducedSubgraph(verticesOf(mask, n))
		if EdgeConnectivityBrute(sub) >= k {
			cands = append(cands, candidate{mask, size})
		}
	}
	var out [][]int64
	for _, c := range cands {
		maximal := true
		for _, d := range cands {
			if d.mask != c.mask && d.mask&c.mask == c.mask {
				maximal = false
				break
			}
		}
		if maximal {
			labels := make([]int64, 0, c.size)
			for _, v := range verticesOf(c.mask, n) {
				labels = append(labels, g.Label(v))
			}
			out = append(out, labels)
		}
	}
	return out
}

// EdgeConnectivityBrute returns the global edge connectivity λ(G): the
// minimum number of edges crossing any proper vertex bipartition. Returns 0
// for disconnected or trivial graphs.
func EdgeConnectivityBrute(g *graph.Graph) int {
	n := g.NumVertices()
	if n <= 1 || !g.IsConnected() {
		return 0
	}
	best := g.NumEdges()
	// Fix vertex 0 on one side; enumerate the rest.
	for mask := 0; mask < 1<<(n-1); mask++ {
		if mask == (1<<(n-1))-1 {
			continue // all vertices on side A: not a proper bipartition
		}
		crossing := 0
		sideA := func(v int) bool { return v == 0 || mask&(1<<(v-1)) != 0 }
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if u < v && sideA(u) != sideA(v) {
					crossing++
				}
			}
		}
		if crossing < best {
			best = crossing
		}
	}
	return best
}

func verticesOf(mask uint, n int) []int {
	vs := make([]int, 0, bits.OnesCount(mask))
	for v := 0; v < n; v++ {
		if mask&(1<<v) != 0 {
			vs = append(vs, v)
		}
	}
	return vs
}

func sameComponentAvoiding(g *graph.Graph, u, v int, avoid map[int]bool) bool {
	if avoid[u] || avoid[v] {
		return false
	}
	seen := make([]bool, g.NumVertices())
	seen[u] = true
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		for _, w := range g.Neighbors(x) {
			if !seen[w] && !avoid[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}
