package verify

import (
	"reflect"
	"sort"
	"testing"

	"kvcc/graph"
)

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

func cycle(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return graph.FromEdges(n, edges)
}

// The oracles themselves are validated on graphs with textbook answers.

func TestVertexConnectivityBruteKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K4", complete(4), 3},
		{"C5", cycle(5), 2},
		{"path3", graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}}), 1},
		{"disconnected", graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}}), 0},
		{"single", graph.FromEdges(1, nil), 0},
	}
	for _, tc := range cases {
		if got := VertexConnectivityBrute(tc.g); got != tc.want {
			t.Errorf("%s: κ = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestLocalConnectivityBruteKnown(t *testing.T) {
	c6 := cycle(6)
	if got := LocalConnectivityBrute(c6, 0, 3); got != 2 {
		t.Errorf("C6 κ(0,3) = %d, want 2", got)
	}
	if got := LocalConnectivityBrute(c6, 0, 1); got != 6 {
		t.Errorf("adjacent pair should be n, got %d", got)
	}
	// Two triangles joined at one vertex: κ(0,4) = 1 through the hinge.
	bowtie := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}})
	if got := LocalConnectivityBrute(bowtie, 0, 4); got != 1 {
		t.Errorf("bowtie κ(0,4) = %d, want 1", got)
	}
}

func TestIsKConnectedBrute(t *testing.T) {
	if !IsKConnectedBrute(complete(5), 4) {
		t.Error("K5 is 4-connected")
	}
	if IsKConnectedBrute(complete(5), 5) {
		t.Error("K5 is not 5-connected (needs > 5 vertices)")
	}
	if IsKConnectedBrute(cycle(4), 3) {
		t.Error("C4 is not 3-connected")
	}
}

func TestKVCCBruteKnown(t *testing.T) {
	// Two K4s sharing one vertex: with k=2 the whole graph is one 2-VCC
	// minus... the shared vertex is a cut vertex, so each K4 is a 2-VCC.
	var edges [][2]int
	for _, c := range [][]int{{0, 1, 2, 3}, {3, 4, 5, 6}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				edges = append(edges, [2]int{c[i], c[j]})
			}
		}
	}
	g := graph.FromEdges(7, edges)
	got := KVCCBrute(g, 2)
	for _, s := range got {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
	want := [][]int64{{0, 1, 2, 3}, {3, 4, 5, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("2-VCCs = %v, want %v", got, want)
	}
	// k=3: each K4 alone (and they share < 3 vertices).
	if got := KVCCBrute(g, 3); len(got) != 2 {
		t.Fatalf("3-VCCs = %v", got)
	}
	// k=4: nothing has > 4 vertices with κ >= 4.
	if got := KVCCBrute(g, 4); len(got) != 0 {
		t.Fatalf("4-VCCs = %v", got)
	}
}

func TestEdgeConnectivityBruteKnown(t *testing.T) {
	if got := EdgeConnectivityBrute(complete(4)); got != 3 {
		t.Errorf("λ(K4) = %d, want 3", got)
	}
	if got := EdgeConnectivityBrute(cycle(5)); got != 2 {
		t.Errorf("λ(C5) = %d, want 2", got)
	}
	if got := EdgeConnectivityBrute(graph.FromEdges(2, nil)); got != 0 {
		t.Errorf("λ(disconnected) = %d, want 0", got)
	}
}

func TestKECCBruteKnown(t *testing.T) {
	// Two triangles joined by one edge: each triangle is a 2-ECC.
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
		{2, 3},
	})
	got := KECCBrute(g, 2)
	if len(got) != 2 {
		t.Fatalf("2-ECCs = %v, want two triangles", got)
	}
}
