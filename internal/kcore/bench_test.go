package kcore

import (
	"math/rand"
	"testing"

	"kvcc/graph"
)

func benchGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddVertex(int64(v))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(int64(rng.Intn(n)), int64(rng.Intn(n)))
	}
	return b.Build()
}

// BenchmarkCoreNumbers measures the full O(n+m) decomposition.
func BenchmarkCoreNumbers(b *testing.B) {
	g := benchGraph(20000, 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoreNumbers(g)
	}
}

// BenchmarkReduce measures the k-core reduction applied at every level of
// KVCC-ENUM.
func BenchmarkReduce(b *testing.B) {
	g := benchGraph(20000, 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reduce(g, 8)
	}
}
