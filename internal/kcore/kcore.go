// Package kcore implements k-core decomposition and reduction.
//
// A k-core is a maximal subgraph in which every vertex has degree at least
// k. By Whitney's theorem (Theorem 3 in the paper) every k-VCC and every
// k-ECC is contained in a k-core, so reducing a graph to its k-core is the
// first pruning step of KVCC-ENUM (Algorithm 1, line 2) and of the k-ECC
// baseline.
package kcore

import (
	"sort"

	"kvcc/graph"
)

// CoreNumbers computes the core number of every vertex with the
// Batagelj–Zaversnik bucket-peeling algorithm in O(n + m) time. The core
// number of v is the largest k such that v belongs to a k-core.
func CoreNumbers(g *graph.Graph) []int {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		count := bin[d]
		bin[d] = start
		start += count
	}
	vert := make([]int, n) // vertices in ascending degree order
	pos := make([]int, n)  // position of each vertex in vert
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = v
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := deg // reuse: after peeling, deg[v] is the core number
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, w := range g.Neighbors(v) {
			if core[w] > core[v] {
				// Move w to the front of its degree bucket, then shrink
				// its degree by one.
				dw := core[w]
				pw := pos[w]
				ps := bin[dw]
				s := vert[ps]
				if s != w {
					vert[ps], vert[pw] = w, s
					pos[w], pos[s] = ps, pw
				}
				bin[dw]++
				core[w]--
			}
		}
	}
	return core
}

// Reduce returns the subgraph induced by all vertices of core number >= k
// (the union of all k-cores), along with the number of vertices peeled
// away. The result may be empty or disconnected.
func Reduce(g *graph.Graph, k int) (*graph.Graph, int) {
	return ReduceScratch(g, k, nil)
}

// ReduceScratch is Reduce reusing the given subgraph-extraction scratch
// (nil is allowed), for callers that peel in a hot loop.
//
// Peeling proceeds in waves, each wave processed in ascending vertex id:
// the k-core is unique whatever the removal order (peeling is confluent),
// so the result is identical to the classic stack-driven loop, but every
// adjacency read walks the flat edges array forward. On a graph adopted
// from a cold mmap'd snapshot this turns the first reduction — the one
// pass that must touch the whole graph — into a sequential scan instead
// of a page-cache-thrashing recursion, and the AdviseSequential hint
// below lets the mapping's owner raise readahead for exactly that scan.
func ReduceScratch(g *graph.Graph, k int, s *graph.Scratch) (*graph.Graph, int) {
	if k <= 0 {
		return g, 0
	}
	g.AdviseSequential() // no-op unless g is a mapped snapshot with an advisor
	n := g.NumVertices()
	deg := make([]int, n)
	removed := make([]bool, n)
	var wave, next []int
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v) // offsets-only read: sequential, cheap
		if deg[v] < k {
			removed[v] = true
			wave = append(wave, v) // ascending by construction
		}
	}
	peeled := len(wave)
	for len(wave) > 0 {
		next = next[:0]
		for _, v := range wave {
			for _, w := range g.Neighbors(v) {
				if removed[w] {
					continue
				}
				deg[w]--
				if deg[w] < k {
					removed[w] = true
					next = append(next, w)
					peeled++
				}
			}
		}
		// Cascade waves are tiny compared to the first one; sorting keeps
		// their reads forward-moving too.
		sort.Ints(next)
		wave, next = next, wave
	}
	if peeled == 0 {
		return g, 0
	}
	kept := make([]int, 0, n-peeled)
	for v := 0; v < n; v++ {
		if !removed[v] {
			kept = append(kept, v)
		}
	}
	if s == nil {
		return g.InducedSubgraph(kept), peeled
	}
	return g.InducedSubgraphScratch(kept, s), peeled
}

// Components returns the connected components of the k-core of g, each as
// its own graph (labels preserved). Components with k or fewer vertices are
// still returned; callers that need the "more than k vertices" guarantee of
// Definition 2 filter themselves (a component of a k-core automatically has
// at least k+1 vertices when k >= 1).
func Components(g *graph.Graph, k int) []*graph.Graph {
	core, _ := Reduce(g, k)
	var out []*graph.Graph
	for _, comp := range core.ConnectedComponents() {
		out = append(out, core.InducedSubgraph(comp))
	}
	return out
}
