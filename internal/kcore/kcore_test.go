package kcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kvcc/graph"
)

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

func randomGraph(n int, p float64, rng *rand.Rand) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// bruteCoreNumbers peels greedily, one minimum-degree vertex at a time.
func bruteCoreNumbers(g *graph.Graph) []int {
	n := g.NumVertices()
	deg := make([]int, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		alive[v] = true
	}
	core := make([]int, n)
	current := 0
	for remaining := n; remaining > 0; remaining-- {
		best := -1
		for v := 0; v < n; v++ {
			if alive[v] && (best == -1 || deg[v] < deg[best]) {
				best = v
			}
		}
		if deg[best] > current {
			current = deg[best]
		}
		core[best] = current
		alive[best] = false
		for _, w := range g.Neighbors(best) {
			if alive[w] {
				deg[w]--
			}
		}
	}
	return core
}

func TestCoreNumbersKnown(t *testing.T) {
	// A triangle with a pendant: triangle vertices have core 2, pendant 1.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	core := CoreNumbers(g)
	want := []int{2, 2, 2, 1}
	for v, c := range core {
		if c != want[v] {
			t.Fatalf("core[%d] = %d, want %d (all: %v)", v, c, want[v], core)
		}
	}
}

func TestCoreNumbersComplete(t *testing.T) {
	g := complete(6)
	for v, c := range CoreNumbers(g) {
		if c != 5 {
			t.Fatalf("core[%d] = %d, want 5", v, c)
		}
	}
}

func TestCoreNumbersEmpty(t *testing.T) {
	if CoreNumbers(graph.FromEdges(0, nil)) != nil {
		t.Fatal("empty graph should give nil cores")
	}
	g := graph.FromEdges(3, nil)
	for _, c := range CoreNumbers(g) {
		if c != 0 {
			t.Fatalf("isolated vertices must have core 0")
		}
	}
}

func TestCoreNumbersAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(4+rng.Intn(30), 0.2+rng.Float64()*0.3, rng)
		got := CoreNumbers(g)
		want := bruteCoreNumbers(g)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("seed %d: core[%d] = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestReduceMinDegreeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(5+rng.Intn(40), 0.15, rng)
		k := 1 + rng.Intn(5)
		red, peeled := Reduce(g, k)
		if red.NumVertices()+0 > g.NumVertices() {
			return false
		}
		if peeled != g.NumVertices()-red.NumVertices() {
			return false
		}
		for v := 0; v < red.NumVertices(); v++ {
			if red.Degree(v) < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Reduce must keep exactly the vertices with core number >= k.
func TestReduceMatchesCoreNumbers(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(10+rng.Intn(30), 0.2, rng)
		core := CoreNumbers(g)
		for k := 1; k <= 4; k++ {
			red, _ := Reduce(g, k)
			want := make(map[int64]bool)
			for v, c := range core {
				if c >= k {
					want[g.Label(v)] = true
				}
			}
			if red.NumVertices() != len(want) {
				t.Fatalf("seed %d k %d: kept %d vertices, want %d", seed, k, red.NumVertices(), len(want))
			}
			for v := 0; v < red.NumVertices(); v++ {
				if !want[red.Label(v)] {
					t.Fatalf("seed %d k %d: kept unexpected vertex %d", seed, k, red.Label(v))
				}
			}
		}
	}
}

func TestReduceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomGraph(40, 0.2, rng)
	r1, _ := Reduce(g, 3)
	r2, peeled := Reduce(r1, 3)
	if peeled != 0 || r2.NumVertices() != r1.NumVertices() {
		t.Fatalf("Reduce not idempotent: peeled %d", peeled)
	}
}

func TestReduceKZero(t *testing.T) {
	g := complete(4)
	r, peeled := Reduce(g, 0)
	if peeled != 0 || r != g {
		t.Fatal("Reduce with k<=0 must be the identity")
	}
}

func TestComponents(t *testing.T) {
	// Two disjoint triangles joined by a path of degree-2 vertices: the
	// 2-core is everything, the 3-core... nothing (triangles have degree 2).
	g := graph.FromEdges(7, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
		{2, 6}, {6, 3},
	})
	comps := Components(g, 2)
	if len(comps) != 1 {
		t.Fatalf("2-core components = %d, want 1", len(comps))
	}
	comps = Components(g, 3)
	if len(comps) != 0 {
		t.Fatalf("3-core components = %d, want 0", len(comps))
	}
	// Two disjoint K4s.
	var edges [][2]int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]int{i, j}, [2]int{i + 4, j + 4})
		}
	}
	g2 := graph.FromEdges(8, edges)
	comps = Components(g2, 3)
	if len(comps) != 2 || comps[0].NumVertices() != 4 || comps[1].NumVertices() != 4 {
		t.Fatalf("K4+K4 3-core components wrong: %v", comps)
	}
}
