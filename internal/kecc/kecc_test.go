package kecc

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"kvcc/graph"
	"kvcc/internal/verify"
)

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

func cycle(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return graph.FromEdges(n, edges)
}

func randomConnectedGraph(n int, p float64, rng *rand.Rand) *graph.Graph {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{rng.Intn(i), i})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

func TestEdgeConnectivityKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K5", complete(5), 4},
		{"C7", cycle(7), 2},
		{"path", graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}}), 1},
		{"single", graph.FromEdges(1, nil), 0},
		{"disconnected", graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}}), 0},
	}
	for _, tc := range cases {
		if got := EdgeConnectivity(tc.g); got != tc.want {
			t.Errorf("%s: λ = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestEdgeConnectivityAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7)
		g := randomConnectedGraph(n, 0.35, rng)
		want := verify.EdgeConnectivityBrute(g)
		if got := EdgeConnectivity(g); got != want {
			t.Fatalf("seed %d: λ = %d, want %d (edges %v)", seed, got, want, g.Edges(nil))
		}
	}
}

func labelSets(comps []*graph.Graph) [][]int64 {
	out := make([][]int64, 0, len(comps))
	for _, c := range comps {
		ls := append([]int64(nil), c.Labels()...)
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return out
}

func canonical(sets [][]int64) [][]int64 {
	for _, s := range sets {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return sets
}

func equalSets(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestEnumerateAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(6)
		g := randomConnectedGraph(n, 0.3+rng.Float64()*0.3, rng)
		for k := 2; k <= 3; k++ {
			want := canonical(verify.KECCBrute(g, k))
			got := labelSets(Enumerate(g, k))
			if !equalSets(got, want) {
				t.Fatalf("seed %d k %d:\n got %v\nwant %v\nedges %v",
					seed, k, got, want, g.Edges(nil))
			}
		}
	}
}

func TestEnumeratePaperFigure1Shape(t *testing.T) {
	// Fig. 1: with k=4, the 4-ECCs are {G1 ∪ G2 ∪ G3} and {G4}: blocks
	// sharing an edge or vertex merge under edge connectivity, while the
	// block pair joined by only two edges separates.
	var edges [][2]int
	clique := func(vs []int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, [2]int{vs[i], vs[j]})
			}
		}
	}
	clique([]int{0, 1, 2, 3, 7, 8})       // G1 (a=7, b=8)
	clique([]int{7, 8, 9, 10, 11, 12})    // G2 shares edge (7,8)
	clique([]int{12, 13, 14, 15, 16, 17}) // G3 shares vertex 12
	clique([]int{18, 19, 20, 21, 22})     // G4
	edges = append(edges, [2]int{16, 18}, [2]int{17, 19})
	g := graph.FromEdges(23, edges)

	comps := Enumerate(g, 4)
	if len(comps) != 2 {
		t.Fatalf("4-ECCs = %v, want 2 components", labelSets(comps))
	}
	// G1 ∪ G2 ∪ G3 = 6+6+6 vertices minus the shared pair {7,8} and the
	// shared vertex 12 = 15 vertices; G4 has 5.
	sizes := []int{comps[0].NumVertices(), comps[1].NumVertices()}
	sort.Ints(sizes)
	if sizes[0] != 5 || sizes[1] != 15 {
		t.Fatalf("4-ECC sizes = %v, want [5 15]", sizes)
	}
}

func TestEnumerateDisjointCliques(t *testing.T) {
	var edges [][2]int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]int{i, j}, [2]int{i + 4, j + 4})
		}
	}
	g := graph.FromEdges(8, edges)
	comps := Enumerate(g, 3)
	if len(comps) != 2 {
		t.Fatalf("got %d 3-ECCs, want 2", len(comps))
	}
}

func TestEnumerateEveryOutputIsKEdgeConnected(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(20+rng.Intn(20), 0.25, rng)
		for k := 2; k <= 4; k++ {
			for _, c := range Enumerate(g, k) {
				if got := EdgeConnectivity(c); got < k {
					t.Fatalf("seed %d k %d: output has λ = %d", seed, k, got)
				}
			}
		}
	}
}

func TestEnumeratePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Enumerate(complete(3), 0)
}

// k-VCC ⊆ k-ECC ⊆ k-core nesting is checked in the facade integration
// tests; here we only verify that k-ECC vertex sets never overlap.
func TestKECCsAreDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnectedGraph(40, 0.2, rng)
	comps := Enumerate(g, 3)
	seen := map[int64]bool{}
	for _, c := range comps {
		for _, l := range c.Labels() {
			if seen[l] {
				t.Fatalf("vertex %d appears in two k-ECCs", l)
			}
			seen[l] = true
		}
	}
}

// TestEnumerateContextCancel checks the cancellation contract: a
// cancelled context surfaces as ctx.Err() with partial results discarded,
// both when cancelled up front and when cancelled mid-run from a Stoer–
// Wagner progress check.
func TestEnumerateContextCancel(t *testing.T) {
	g := randomConnectedGraph(60, 0.2, rand.New(rand.NewSource(7)))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	comps, _, err := EnumerateContext(ctx, g, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled enumerate: err = %v, want context.Canceled", err)
	}
	if comps != nil {
		t.Fatalf("pre-cancelled enumerate returned %d components, want none", len(comps))
	}

	// A deadline that expires mid-run must also surface: retry with ever
	// larger budgets until one run finishes, checking every timed-out
	// attempt reported the context error.
	for budget := time.Microsecond; ; budget *= 4 {
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		comps, _, err := EnumerateContext(ctx, g, 3)
		cancel()
		if err == nil {
			if len(comps) == 0 {
				t.Fatal("completed run found no 3-ECCs in a dense random graph")
			}
			return
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("mid-run timeout: err = %v, want context.DeadlineExceeded", err)
		}
	}
}
