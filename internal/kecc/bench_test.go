package kecc

import (
	"testing"

	"kvcc/gen"
)

// BenchmarkEnumerate measures the full k-ECC baseline on a planted
// community graph (the Figs. 7-9 workload).
func BenchmarkEnumerate(b *testing.B) {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 10, MinSize: 15, MaxSize: 30, IntraProb: 0.6,
		ChainOverlap: 2, ChainEvery: 3, BridgeEdges: 8,
		NoiseVertices: 300, NoiseDegree: 2, Seed: 4,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Enumerate(g, 6)
	}
}

// BenchmarkEdgeConnectivity measures one full Stoer-Wagner run.
func BenchmarkEdgeConnectivity(b *testing.B) {
	g := gen.GNP(300, 0.1, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeConnectivity(g)
	}
}
