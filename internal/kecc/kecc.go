// Package kecc enumerates k-edge connected components (k-ECCs), the
// comparison model used throughout the paper's effectiveness evaluation
// (Figs. 7-9 and the Fig. 14 case study).
//
// A k-ECC is a maximal vertex set whose induced subgraph cannot be
// disconnected by removing fewer than k edges. Enumeration mirrors the
// cut-based KVCC framework, but with edge cuts and non-overlapping
// partitions: reduce to the k-core (λ <= δ by Whitney's theorem), split
// into connected components, find any global edge cut with weight < k
// (Stoer–Wagner, early-terminated), remove the crossing edges and recurse.
package kecc

import (
	"container/heap"
	"context"

	"kvcc/graph"
	"kvcc/internal/core"
	"kvcc/internal/kcore"
)

// Enumerate returns all k-ECCs of g (k >= 1) as induced subgraphs with
// labels preserved, in the canonical core.SortComponents order.
func Enumerate(g *graph.Graph, k int) []*graph.Graph {
	comps, _, err := EnumerateContext(context.Background(), g, k)
	if err != nil {
		// Only cancellation can fail, and the background context never
		// cancels.
		panic("kecc: " + err.Error())
	}
	return comps
}

// EnumerateContext is Enumerate with cancellation and a work report,
// matching the contract of the other cohesion engines: the queue loop and
// every Stoer–Wagner phase check the context, and cancellation returns
// ctx.Err() discarding partial results. Stats counts k-core peeling,
// global cut searches (GlobalCutCalls) and edge-cut partitions
// (Partitions).
func EnumerateContext(ctx context.Context, g *graph.Graph, k int) ([]*graph.Graph, *core.Stats, error) {
	if k < 1 {
		panic("kecc: k must be >= 1")
	}
	stats := &core.Stats{}
	var results []*graph.Graph
	queue := []*graph.Graph{g}
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		h := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		cored, peeled := kcore.Reduce(h, k)
		stats.KCorePeeled += int64(peeled)
		if cored.NumVertices() == 0 {
			continue
		}
		for _, comp := range cored.ConnectedComponents() {
			sub := cored.InducedSubgraph(comp)
			if sub.NumVertices() <= 1 {
				continue
			}
			stats.GlobalCutCalls++
			side, found, err := globalEdgeCutBelow(ctx, sub, k)
			if err != nil {
				return nil, nil, err
			}
			if !found {
				results = append(results, sub)
				continue
			}
			stats.Partitions++
			inSide := make([]bool, sub.NumVertices())
			for _, v := range side {
				inSide[v] = true
			}
			var crossing [][2]int
			for u := 0; u < sub.NumVertices(); u++ {
				for _, v := range sub.Neighbors(u) {
					if u < v && inSide[u] != inSide[v] {
						crossing = append(crossing, [2]int{u, v})
					}
				}
			}
			queue = append(queue, sub.RemoveEdges(crossing))
		}
	}
	core.SortComponents(results)
	return results, stats, nil
}

// EdgeConnectivity returns λ(G): the weight of the global minimum edge
// cut, computed by a full Stoer–Wagner run. Returns 0 for disconnected or
// trivial graphs.
func EdgeConnectivity(g *graph.Graph) int {
	lambda, err := EdgeConnectivityContext(context.Background(), g)
	if err != nil {
		panic("kecc: " + err.Error())
	}
	return lambda
}

// EdgeConnectivityContext is EdgeConnectivity with cancellation, checked
// once per Stoer–Wagner phase (each phase is one maximum-adjacency
// ordering, O(m log n) — previously a full run was uncancellable).
func EdgeConnectivityContext(ctx context.Context, g *graph.Graph) (int, error) {
	if g.NumVertices() <= 1 || !g.IsConnected() {
		return 0, nil
	}
	sw := newContracted(g)
	best := g.NumEdges() + 1
	for sw.size() > 1 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		_, cutWeight := sw.phase()
		if cutWeight < best {
			best = cutWeight
		}
	}
	return best, nil
}

// globalEdgeCutBelow looks for any global edge cut of weight < k in a
// connected graph. It returns one side of the first qualifying
// cut-of-the-phase (every cut-of-the-phase is a valid global cut, so the
// search may stop before the true minimum is known). The context is
// checked once per phase.
func globalEdgeCutBelow(ctx context.Context, g *graph.Graph, k int) (side []int, found bool, err error) {
	if g.NumVertices() <= 1 {
		return nil, false, nil
	}
	sw := newContracted(g)
	for sw.size() > 1 {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		t, cutWeight := sw.phase()
		if cutWeight < k {
			return t, true, nil
		}
	}
	return nil, false, nil
}

// contracted is the weighted multigraph state of Stoer–Wagner. Supernodes
// accumulate the original vertices merged into them.
type contracted struct {
	adj     []map[int]int // adj[a][b] = total weight between supernodes
	members [][]int       // original vertex ids merged into each supernode
	alive   []bool
	n       int // live supernode count

	// Per-phase scratch, reset lazily with a generation stamp.
	inA    []bool
	weight []int
	stamp  []int
	gen    int
}

func newContracted(g *graph.Graph) *contracted {
	n := g.NumVertices()
	c := &contracted{
		adj:     make([]map[int]int, n),
		members: make([][]int, n),
		alive:   make([]bool, n),
		n:       n,
		inA:     make([]bool, n),
		weight:  make([]int, n),
		stamp:   make([]int, n),
	}
	for v := 0; v < n; v++ {
		c.adj[v] = make(map[int]int, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			c.adj[v][w] = 1
		}
		c.members[v] = []int{v}
		c.alive[v] = true
	}
	return c
}

func (c *contracted) size() int { return c.n }

// phase runs one minimum-cut phase (maximum adjacency ordering). It
// returns the members of the last-added supernode t and the weight of the
// cut separating t from the rest, then merges t into the second-to-last
// supernode.
func (c *contracted) phase() (tMembers []int, cutWeight int) {
	start := -1
	for v := range c.alive {
		if c.alive[v] {
			start = v
			break
		}
	}
	c.gen++
	touch := func(v int) {
		if c.stamp[v] != c.gen {
			c.stamp[v] = c.gen
			c.inA[v] = false
			c.weight[v] = 0
		}
	}
	touch(start)
	c.inA[start] = true
	pq := &maxHeap{}
	for nb, w := range c.adj[start] {
		touch(nb)
		c.weight[nb] = w
		heap.Push(pq, heapItem{nb, w})
	}
	prev, last := start, start
	lastWeight := 0
	added := 1
	for added < c.n {
		// Pop the most tightly connected vertex, skipping stale entries.
		var v int
		for {
			item := heap.Pop(pq).(heapItem)
			if !c.inA[item.v] && c.weight[item.v] == item.w {
				v = item.v
				break
			}
		}
		c.inA[v] = true
		added++
		prev, last = last, v
		lastWeight = c.weight[v]
		for nb, w := range c.adj[v] {
			touch(nb)
			if !c.inA[nb] {
				c.weight[nb] += w
				heap.Push(pq, heapItem{nb, c.weight[nb]})
			}
		}
	}
	tMembers = append([]int(nil), c.members[last]...)
	c.merge(prev, last)
	return tMembers, lastWeight
}

// merge folds supernode t into s.
func (c *contracted) merge(s, t int) {
	for nb, w := range c.adj[t] {
		if nb == s {
			continue
		}
		c.adj[s][nb] += w
		c.adj[nb][s] += w
		delete(c.adj[nb], t)
	}
	delete(c.adj[s], t)
	c.members[s] = append(c.members[s], c.members[t]...)
	c.adj[t] = nil
	c.members[t] = nil
	c.alive[t] = false
	c.n--
}

type heapItem struct {
	v, w int
}

type maxHeap []heapItem

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].w > h[j].w }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
