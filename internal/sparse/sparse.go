// Package sparse computes sparse certificates for k-vertex connectivity via
// scan-first search (Cheriyan–Kao–Thurimella; Theorem 5 of the paper) and
// extracts the side-groups used by the group-sweep optimization
// (Theorem 10).
//
// A sparse certificate SC is a spanning subgraph with at most k(n-1) edges
// that preserves k-vertex connectivity: SC is k-connected iff G is. The CKT
// construction has a stronger property this implementation relies on: every
// edge of G absent from SC joins two vertices with local connectivity >= k
// inside SC. Consequently removing any vertex set S with |S| < k splits SC
// and G into identical vertex partitions, so a (<k)-cut found on SC is a
// (<k)-cut of G, and local connectivities below k agree between the two
// graphs. GLOBAL-CUT therefore runs entirely on SC.
package sparse

import "kvcc/graph"

// Certificate bundles the sparse certificate of a graph with the artifacts
// of its construction that the sweep optimizations reuse.
type Certificate struct {
	// SC is the certificate: same vertex ids and labels as the input graph,
	// edge set F_1 ∪ ... ∪ F_k.
	SC *graph.Graph
	// SideGroups are the vertex sets of the connected components of the
	// k-th scan-first forest F_k that have more than k vertices. Any two
	// vertices in one side-group are k-locally connected (Theorem 10), so
	// the group sweep may skip connectivity tests inside a group.
	SideGroups [][]int
	// GroupID maps each vertex to its side-group index, or -1.
	GroupID []int
}

// EdgeBound returns k(n-1), the CKT certificate edge bound: a sparse
// certificate never has more edges than this, so a graph at or below the
// bound cannot be shrunk and doubles as its own certificate. Centralizing
// the formula keeps the skip heuristic in internal/core and the
// certificate property tests agreeing on the same expression.
func EdgeBound(k, n int) int {
	if n <= 0 {
		return 0
	}
	return k * (n - 1)
}

// Scratch carries the construction buffers of ComputeScratch across
// calls: the per-edge id table and its fill cursors, the forest/BFS state
// of the scan-first rounds, and the union-find plus flat member storage
// behind the side groups. The enumeration recursion computes one
// certificate per component at every level, so reusing one Scratch per
// worker removes every per-call allocation except the certificate graph
// itself. The zero value is ready to use; a Scratch is not safe for
// concurrent use.
type Scratch struct {
	eids      []int32
	cursor    []int
	used      []bool
	marked    []bool
	queue     []int
	certEdges [][2]int

	// sideGroups state. groupID, members and groups back the returned
	// Certificate, which therefore stays valid only until the next
	// ComputeScratch call with this Scratch.
	parent  []int
	count   []int
	groupID []int
	members []int
	groups  [][]int
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// Compute builds the sparse certificate of g for parameter k with
// one-shot buffers; see ComputeScratch.
func Compute(g *graph.Graph, k int) *Certificate {
	return ComputeScratch(g, k, nil)
}

// ComputeScratch builds the sparse certificate of g for parameter k by
// running k rounds of scan-first search, reusing s's buffers (a nil s
// uses fresh ones). Round i builds a spanning forest F_i of the graph
// G_{i-1} = (V, E - F_1 - ... - F_{i-1}); the certificate is the union of
// the k forests.
//
// All per-round scratch (the BFS queue, the forest edge accumulator) is
// carried across rounds, and edge ids live in one flat array parallel to
// the graph's CSR edge array, so the whole construction performs a
// constant number of allocations regardless of round count — and, with a
// warmed-up Scratch, none beyond the certificate graph itself.
//
// The returned Certificate's SideGroups and GroupID are backed by s and
// are valid only until the next ComputeScratch call with the same s; the
// SC graph is independently allocated and unrestricted.
func ComputeScratch(g *graph.Graph, k int, s *Scratch) *Certificate {
	if k < 1 {
		panic("sparse: k must be >= 1")
	}
	if s == nil {
		s = &Scratch{}
	}
	n := g.NumVertices()
	offsets, adj := g.Adjacency()

	// Assign every undirected edge an id so forests can mark edges used.
	// eids is parallel to the flat CSR edge array: eids[offsets[v]+i] is
	// the id of the edge to g.Neighbors(v)[i].
	if cap(s.eids) < len(adj) {
		s.eids = make([]int32, len(adj))
	}
	eids := s.eids[:len(adj)]
	cursor := growInts(s.cursor, n)
	s.cursor = cursor
	copy(cursor, offsets[:n])
	next := int32(0)
	// Two-pointer pass: for u < v assign a fresh id and record it on both
	// endpoints. The position of u in v's run is found by walking v's
	// cursor once across the whole pass (runs are sorted, and u visits v
	// in increasing order).
	for u := 0; u < n; u++ {
		for i, v := range adj[offsets[u]:offsets[u+1]] {
			if u < v {
				id := next
				next++
				eids[offsets[u]+i] = id
				for adj[cursor[v]] != u {
					cursor[v]++
				}
				eids[cursor[v]] = id
			}
		}
	}

	used := growBools(s.used, g.NumEdges())
	s.used = used
	clear(used)
	marked := growBools(s.marked, n)
	s.marked = marked
	queue := s.queue[:0]
	certEdges := s.certEdges[:0]
	lastStart := -1 // start of F_k within certEdges, or -1 if never built

	for round := 0; round < k; round++ {
		roundStart := len(certEdges)
		certEdges, queue = scanFirstForest(g, offsets, adj, eids, used, marked, queue, certEdges)
		if len(certEdges) == roundStart {
			break // remaining graph has no edges; later forests are empty
		}
		if round == k-1 {
			lastStart = roundStart
		}
	}
	s.queue = queue
	s.certEdges = certEdges
	var lastForest [][2]int
	if lastStart >= 0 {
		lastForest = certEdges[lastStart:]
	}
	sc := g.SpanningSubgraph(certEdges)
	groups, groupID := sideGroups(n, lastForest, k, s)
	return &Certificate{SC: sc, SideGroups: groups, GroupID: groupID}
}

// scanFirstForest performs one scan-first search over the edges not yet
// used, marking the forest edges it takes as used and appending them to
// forest. It returns the grown forest and queue slices so their capacity
// carries over to the next round. A BFS scan order is used (BFS is a
// scan-first search).
func scanFirstForest(g *graph.Graph, offsets, adj []int, eids []int32, used, marked []bool, queue []int, forest [][2]int) ([][2]int, []int) {
	n := g.NumVertices()
	clear(marked)
	for root := 0; root < n; root++ {
		if marked[root] {
			continue
		}
		marked[root] = true
		queue = append(queue[:0], root)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			base := offsets[v]
			for i, w := range adj[base:offsets[v+1]] {
				if used[eids[base+i]] || marked[w] {
					continue
				}
				marked[w] = true
				used[eids[base+i]] = true
				forest = append(forest, [2]int{v, w})
				queue = append(queue, w)
			}
		}
	}
	return forest, queue
}

// sideGroups groups vertices by connected component of the k-th forest and
// keeps components with more than k vertices (smaller groups cannot trigger
// the group-deposit rule, Theorem 11, and are ignored as in Section 5.3).
// The returned slices are backed by s.
func sideGroups(n int, forest [][2]int, k int, s *Scratch) ([][]int, []int) {
	groupID := growInts(s.groupID, n)
	s.groupID = groupID
	for i := range groupID {
		groupID[i] = -1
	}
	if len(forest) == 0 {
		return nil, groupID
	}
	parent := growInts(s.parent, n)
	s.parent = parent
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range forest {
		ra, rb := find(e[0]), find(e[1])
		if ra != rb {
			parent[ra] = rb
		}
	}
	// Bucket members by root without a map: count component sizes, then
	// assign group ids in one ascending scan (so groups come out ordered
	// by smallest member, members ascending). A root's count is flipped to
	// -(id+1) once its group is allocated, which lets the scan distinguish
	// "qualifying, unassigned" from "assigned" with no extra array.
	//
	// Member lists live in one flat buffer: every qualifying root's size
	// is known when its group is allocated, so each group receives a
	// capacity-exact subslice and appends never reallocate.
	count := growInts(s.count, n)
	s.count = count
	clear(count)
	for v := 0; v < n; v++ {
		count[find(v)]++
	}
	members := growInts(s.members, n)
	s.members = members
	nextMember := 0
	groups := s.groups[:0]
	for v := 0; v < n; v++ {
		r := find(v)
		switch c := count[r]; {
		case c > k:
			id := len(groups)
			groups = append(groups, members[nextMember:nextMember:nextMember+c])
			nextMember += c
			count[r] = -(id + 1)
			groupID[v] = id
			groups[id] = append(groups[id], v)
		case c < 0:
			id := -c - 1
			groupID[v] = id
			groups[id] = append(groups[id], v)
		}
	}
	s.groups = groups
	return groups, groupID
}
