package sparse

import (
	"math/rand"
	"testing"

	"kvcc/graph"
)

func benchGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{rng.Intn(i), i})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// BenchmarkCompute measures certificate construction (k scan-first
// passes), paid once per GLOBAL-CUT call.
func BenchmarkCompute(b *testing.B) {
	for _, k := range []int{5, 20} {
		b.Run(map[int]string{5: "k=5", 20: "k=20"}[k], func(b *testing.B) {
			g := benchGraph(2000, 0.02, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Compute(g, k)
			}
		})
	}
}
