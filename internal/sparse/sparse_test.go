package sparse

import (
	"math/rand"
	"testing"

	"kvcc/graph"
	"kvcc/internal/flow"
)

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

func randomConnectedGraph(n int, p float64, rng *rand.Rand) *graph.Graph {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{rng.Intn(i), i})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

func TestCertificateEdgeBound(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		g := randomConnectedGraph(n, 0.3, rng)
		for k := 1; k <= 5; k++ {
			cert := Compute(g, k)
			if cert.SC.NumEdges() > k*(n-1) {
				t.Fatalf("seed %d k %d: %d edges > k(n-1) = %d",
					seed, k, cert.SC.NumEdges(), k*(n-1))
			}
			if cert.SC.NumVertices() != n {
				t.Fatalf("certificate changed vertex count")
			}
		}
	}
}

func TestCertificateIsSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnectedGraph(30, 0.3, rng)
	cert := Compute(g, 3)
	for _, e := range cert.SC.Edges(nil) {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("certificate edge %v not in original graph", e)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if cert.SC.Label(v) != g.Label(v) {
			t.Fatal("labels not preserved")
		}
	}
}

func TestCertificateSmallGraphExact(t *testing.T) {
	// With k >= max degree the certificate must keep every edge.
	g := complete(5)
	cert := Compute(g, 4)
	if cert.SC.NumEdges() != g.NumEdges() {
		t.Fatalf("K5 with k=4: %d edges, want %d", cert.SC.NumEdges(), g.NumEdges())
	}
}

// Core CKT property: local connectivity capped at k is preserved.
func TestCertificatePreservesCappedConnectivity(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		g := randomConnectedGraph(n, 0.4, rng)
		for k := 1; k <= 4; k++ {
			cert := Compute(g, k)
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if g.HasEdge(u, v) {
						continue
					}
					inG := flow.LocalConnectivity(g, u, v, k)
					if cert.SC.HasEdge(u, v) {
						// Edge retained: connectivity in SC is infinite-ish.
						continue
					}
					inSC := flow.LocalConnectivity(cert.SC, u, v, k)
					if inG != inSC {
						t.Fatalf("seed %d k %d: min(κ(%d,%d),k) differs: G=%d SC=%d",
							seed, k, u, v, inG, inSC)
					}
				}
			}
		}
	}
}

// Every edge dropped from the certificate joins vertices that are still
// k-connected inside the certificate (the property that makes cuts of SC
// cuts of G).
func TestDroppedEdgesAreKConnectedInCertificate(t *testing.T) {
	for seed := int64(50); seed < 70; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		g := randomConnectedGraph(n, 0.5, rng)
		for k := 1; k <= 4; k++ {
			cert := Compute(g, k)
			for _, e := range g.Edges(nil) {
				if cert.SC.HasEdge(e[0], e[1]) {
					continue
				}
				c := flow.LocalConnectivity(cert.SC, e[0], e[1], k)
				if c < k {
					t.Fatalf("seed %d k %d: dropped edge %v has κ_SC = %d < k",
						seed, k, e, c)
				}
			}
		}
	}
}

// A (<k)-vertex cut of the certificate must disconnect the original graph.
func TestCertificateCutsApplyToOriginal(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		g := randomConnectedGraph(n, 0.25, rng)
		k := 2 + rng.Intn(3)
		cert := Compute(g, k)
		kappa, cut := flow.GlobalVertexConnectivity(cert.SC, k)
		if kappa >= k || cut == nil {
			continue // certificate (hence g) is k-connected
		}
		avoid := map[int]bool{}
		for _, v := range cut {
			avoid[v] = true
		}
		if g.ConnectedAvoiding(avoid) {
			t.Fatalf("seed %d: cut %v of SC does not disconnect G", seed, cut)
		}
	}
}

func TestSideGroupsPairwiseKConnected(t *testing.T) {
	tested := 0
	for seed := int64(0); seed < 40 && tested < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(10)
		g := randomConnectedGraph(n, 0.5, rng)
		k := 3
		cert := Compute(g, k)
		for _, group := range cert.SideGroups {
			tested++
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					u, v := group[i], group[j]
					if g.HasEdge(u, v) {
						continue
					}
					if c := flow.LocalConnectivity(g, u, v, k); c < k {
						t.Fatalf("seed %d: side-group pair (%d,%d) has κ = %d < %d",
							seed, u, v, c, k)
					}
				}
			}
		}
	}
	if tested == 0 {
		t.Skip("no side-groups generated; loosen generator parameters")
	}
}

func TestSideGroupInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(40, 0.4, rng)
	k := 3
	cert := Compute(g, k)
	seen := make(map[int]int)
	for id, group := range cert.SideGroups {
		if len(group) <= k {
			t.Fatalf("side-group %d has %d <= k members", id, len(group))
		}
		for _, v := range group {
			if cert.GroupID[v] != id {
				t.Fatalf("GroupID[%d] = %d, want %d", v, cert.GroupID[v], id)
			}
			if prev, dup := seen[v]; dup {
				t.Fatalf("vertex %d in groups %d and %d", v, prev, id)
			}
			seen[v] = id
		}
	}
	for v, id := range cert.GroupID {
		if id == -1 {
			if _, in := seen[v]; in {
				t.Fatalf("vertex %d marked -1 but in a group", v)
			}
		}
	}
}

func TestComputePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compute(complete(3), 0)
}

func TestCertificateEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.FromEdges(0, nil)
	cert := Compute(empty, 2)
	if cert.SC.NumVertices() != 0 || len(cert.SideGroups) != 0 {
		t.Fatal("empty graph certificate wrong")
	}
	single := graph.FromEdges(1, nil)
	cert = Compute(single, 3)
	if cert.SC.NumVertices() != 1 || cert.SC.NumEdges() != 0 {
		t.Fatal("single vertex certificate wrong")
	}
}

// TestComputeScratchCarriesAcrossRounds is the allocation-regression guard
// for the per-round scratch: edge ids live in one flat array parallel to
// the graph's CSR edges, and the BFS queue and forest accumulator survive
// from round to round, so the allocation count of Compute must stay
// essentially flat as k (the round count) grows. The old implementation
// allocated a fresh eid slice per vertex and a fresh forest per round.
func TestComputeScratchCarriesAcrossRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomConnectedGraph(300, 0.1, rng)
	allocsAt := func(k int) float64 {
		return testing.AllocsPerRun(10, func() { Compute(g, k) })
	}
	low, high := allocsAt(2), allocsAt(10)
	// Five times the rounds may not cost more than a small additive
	// overhead (side-group bookkeeping shrinks as forests thin out, and
	// certEdges may re-grow once past the heuristic cap).
	if high > low+20 {
		t.Fatalf("allocations grow with rounds: k=2 -> %.0f, k=10 -> %.0f", low, high)
	}
	// And the total must be far below one allocation per vertex.
	if low > 60 {
		t.Fatalf("Compute allocates %.0f times on a 300-vertex graph", low)
	}
}
