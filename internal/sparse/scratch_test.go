package sparse

import (
	"math/rand"
	"testing"
)

// A shared Scratch reused across many graphs must produce certificates
// identical to one-shot Compute calls, including side groups.
func TestComputeScratchMatchesCompute(t *testing.T) {
	var s Scratch
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(30)
		g := randomConnectedGraph(n, 0.25, rng)
		k := 1 + rng.Intn(5)
		got := ComputeScratch(g, k, &s)
		want := Compute(g, k)
		if gn, wn := got.SC.NumEdges(), want.SC.NumEdges(); gn != wn {
			t.Fatalf("seed %d k=%d: SC edges %d != %d", seed, k, gn, wn)
		}
		for v := 0; v < n; v++ {
			for i, w := range want.SC.Neighbors(v) {
				if got.SC.Neighbors(v)[i] != w {
					t.Fatalf("seed %d k=%d: SC adjacency differs at %d", seed, k, v)
				}
			}
			if got.GroupID[v] != want.GroupID[v] {
				t.Fatalf("seed %d k=%d: GroupID[%d] = %d != %d",
					seed, k, v, got.GroupID[v], want.GroupID[v])
			}
		}
		if len(got.SideGroups) != len(want.SideGroups) {
			t.Fatalf("seed %d k=%d: %d side groups != %d",
				seed, k, len(got.SideGroups), len(want.SideGroups))
		}
		for i, grp := range want.SideGroups {
			if len(got.SideGroups[i]) != len(grp) {
				t.Fatalf("seed %d k=%d: group %d size differs", seed, k, i)
			}
			for j, v := range grp {
				if got.SideGroups[i][j] != v {
					t.Fatalf("seed %d k=%d: group %d member %d differs", seed, k, i, j)
				}
			}
		}
	}
}

// With a warmed-up Scratch, the only remaining allocations are the
// certificate graph itself (and its wrapper struct) — the eids table,
// cursors, round state, union-find, and group member storage must all be
// reused.
func TestComputeScratchSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnectedGraph(200, 0.08, rng)
	var s Scratch
	ComputeScratch(g, 4, &s) // warm
	allocs := testing.AllocsPerRun(50, func() { ComputeScratch(g, 4, &s) })
	// SpanningSubgraph builds the SC graph (struct, offsets, edges,
	// labels, plus buildCSR internals) and the Certificate struct is
	// returned by pointer; allow a small constant budget for exactly
	// that. The point is the bound does not scale with n, m, or k.
	if allocs > 10 {
		t.Fatalf("warm ComputeScratch allocates %.1f times per run, want <= 10", allocs)
	}
}
