// Package failpoint is the fault-injection switchboard for the chaos
// harness. Production code marks the places where the outside world can
// fail — a WAL write, an fsync, an mmap, the start of an expensive
// computation — with a named Eval call; the chaos suite then activates
// those points with deterministic error terms and proves that recovery,
// shedding and degradation behave as specified while they fire.
//
// The package has two personalities selected by the `failpoint` build
// tag:
//
//   - Without the tag (every production build, the default test run),
//     Eval is a constant no-op that the compiler inlines away: no map
//     lookup, no atomic load, no branch on a global. Activate returns an
//     error so a misconfigured deployment cannot silently believe it is
//     injecting faults.
//
//   - With `-tags failpoint`, Eval consults a registry of active points.
//     Points are activated programmatically (Activate, from tests) or at
//     process start from the KVCC_FAILPOINTS environment variable, e.g.
//
//     KVCC_FAILPOINTS='store/wal-sync=error;store/mmap=error(0.1)'
//
// Term grammar (one term per point):
//
//	error        fire on every evaluation
//	error(p)     fire with probability p in [0,1], from a deterministic
//	             per-point PRNG (seeded by SeedAll, default fixed)
//	off          registered but inert (counts evaluations, never fires)
//
// Every firing increments a per-point trip counter surfaced through
// Snapshot and TotalTrips; the server exposes the totals in its stats
// endpoint so an operator (or the chaos driver) can confirm the faults
// actually happened.
//
// Naming convention: points are "<package>/<site>" — the catalog lives
// in docs/ARCHITECTURE.md ("Overload & failure model").
package failpoint

import "fmt"

// Error is the injected failure returned by a tripped failpoint. It
// wraps no underlying cause — the whole point is that the fault is
// synthetic — but carries the point name so logs and assertions can
// attribute it.
type Error struct {
	Point string
}

func (e *Error) Error() string {
	return fmt.Sprintf("failpoint: injected fault at %q", e.Point)
}

// IsInjected reports whether err (or anything it wraps) is a synthetic
// failpoint fault rather than a real failure.
func IsInjected(err error) bool {
	for err != nil {
		if _, ok := err.(*Error); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
