//go:build failpoint

package failpoint

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// registry holds the active points. enabled is a fast-path gate: with no
// points active, Eval costs one atomic load — still cheap enough that a
// chaos binary serving clean traffic is representative.
var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  = map[string]*point{}
	trips   atomic.Int64
)

// point is one activated failpoint.
type point struct {
	prob  float64 // firing probability; 1 = always, 0 = registered but inert
	rng   uint64  // xorshift64 state, deterministic per point
	evals atomic.Int64
	fired atomic.Int64
}

// Compiled reports whether the failpoint machinery is in this binary.
func Compiled() bool { return true }

func init() {
	if spec := os.Getenv("KVCC_FAILPOINTS"); spec != "" {
		if err := ActivateSpec(spec); err != nil {
			fmt.Fprintln(os.Stderr, "failpoint: KVCC_FAILPOINTS:", err)
			os.Exit(2)
		}
	}
}

// Eval returns an injected *Error when the named point is active and its
// term fires, nil otherwise. Marked sites call it unconditionally; the
// enabled gate keeps the clean path to a single atomic load.
func Eval(name string) error {
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	p := points[name]
	if p == nil {
		mu.Unlock()
		return nil
	}
	p.evals.Add(1)
	fire := false
	switch {
	case p.prob >= 1:
		fire = true
	case p.prob > 0:
		// xorshift64: deterministic per point, so a seeded chaos run
		// replays the same fault schedule.
		x := p.rng
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p.rng = x
		fire = float64(x>>11)/(1<<53) < p.prob
	}
	mu.Unlock()
	if !fire {
		return nil
	}
	p.fired.Add(1)
	trips.Add(1)
	return &Error{Point: name}
}

// Activate arms one point with a term: "error", "error(p)" or "off".
// Re-activating replaces the previous term and resets the point's PRNG,
// keeping its counters.
func Activate(name, term string) error {
	if name == "" {
		return fmt.Errorf("failpoint: empty point name")
	}
	prob, err := parseTerm(term)
	if err != nil {
		return fmt.Errorf("failpoint: %s: %w", name, err)
	}
	mu.Lock()
	p := points[name]
	if p == nil {
		p = &point{}
		points[name] = p
	}
	p.prob = prob
	p.rng = seedFor(name, baseSeed)
	enabled.Store(true)
	mu.Unlock()
	return nil
}

// ActivateSpec arms a semicolon-separated list of name=term pairs — the
// KVCC_FAILPOINTS grammar.
func ActivateSpec(spec string) error {
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, term, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("failpoint: term %q is not name=term", part)
		}
		if err := Activate(strings.TrimSpace(name), strings.TrimSpace(term)); err != nil {
			return err
		}
	}
	return nil
}

func parseTerm(term string) (prob float64, err error) {
	switch {
	case term == "error":
		return 1, nil
	case term == "off":
		return 0, nil
	case strings.HasPrefix(term, "error(") && strings.HasSuffix(term, ")"):
		p, err := strconv.ParseFloat(term[len("error("):len(term)-1], 64)
		if err != nil || p < 0 || p > 1 {
			return 0, fmt.Errorf("bad probability in term %q", term)
		}
		return p, nil
	}
	return 0, fmt.Errorf("unknown term %q (want error | error(p) | off)", term)
}

// Deactivate disarms one point, keeping its counters visible in Snapshot.
func Deactivate(name string) {
	mu.Lock()
	if p := points[name]; p != nil {
		p.prob = 0
	}
	mu.Unlock()
}

// Reset disarms and forgets every point and zeroes the trip counters.
func Reset() {
	mu.Lock()
	points = map[string]*point{}
	enabled.Store(false)
	trips.Store(0)
	mu.Unlock()
}

// baseSeed feeds every point's PRNG; SeedAll changes it for subsequent
// activations so chaos runs can explore different fault schedules while
// staying reproducible.
var baseSeed uint64 = 0x9e3779b97f4a7c15

// SeedAll sets the seed mixed into every subsequently activated point's
// PRNG and re-seeds the already-active ones.
func SeedAll(seed uint64) {
	mu.Lock()
	baseSeed = seed | 1
	for name, p := range points {
		p.rng = seedFor(name, baseSeed)
	}
	mu.Unlock()
}

// seedFor mixes the point name into the base seed (FNV-1a) so distinct
// points fire on decorrelated schedules.
func seedFor(name string, seed uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= seed
	if h == 0 {
		h = 1
	}
	return h
}

// TotalTrips returns the number of injected faults since the last Reset.
func TotalTrips() int64 { return trips.Load() }

// Snapshot returns per-point trip counts (fired evaluations) for every
// point that has been activated since the last Reset.
func Snapshot() map[string]int64 {
	mu.Lock()
	defer mu.Unlock()
	if len(points) == 0 {
		return nil
	}
	out := make(map[string]int64, len(points))
	for name, p := range points {
		out[name] = p.fired.Load()
	}
	return out
}
