//go:build !failpoint

package failpoint

import "errors"

// Compiled reports whether the failpoint machinery is in this binary.
func Compiled() bool { return false }

// Eval is the inactive no-op: a constant-false build makes the call
// vanish at every marked site, so production binaries pay nothing for
// carrying the markers.
func Eval(name string) error { return nil }

// Activate fails loudly in builds without the machinery: a test or chaos
// driver that believes it is injecting faults must find out it is not.
func Activate(name, term string) error {
	return errors.New("failpoint: not compiled in (build with -tags failpoint)")
}

// ActivateSpec fails for the same reason as Activate.
func ActivateSpec(spec string) error {
	return errors.New("failpoint: not compiled in (build with -tags failpoint)")
}

// Deactivate is a no-op without the machinery.
func Deactivate(name string) {}

// Reset is a no-op without the machinery.
func Reset() {}

// SeedAll is a no-op without the machinery.
func SeedAll(seed uint64) {}

// TotalTrips is always zero without the machinery.
func TotalTrips() int64 { return 0 }

// Snapshot is always empty without the machinery.
func Snapshot() map[string]int64 { return nil }
