//go:build !linux

package residency

import "errors"

const residentSupported = false

var errUnsupported = errors.New("residency: mincore not supported on this platform")

func residentPages(b []byte) (resident, total int, err error) {
	return 0, 0, errUnsupported
}
