//go:build linux || darwin || freebsd || netbsd || openbsd

package residency

import "syscall"

func faultCounts() (major, minor int64, ok bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0, false
	}
	return int64(ru.Majflt), int64(ru.Minflt), true
}
