//go:build !linux && !darwin && !freebsd && !netbsd && !openbsd

package residency

func faultCounts() (major, minor int64, ok bool) { return 0, 0, false }
