// Package residency probes how much of a byte region is actually backed
// by resident physical pages, and how many page faults the process has
// taken — the two observables that make beyond-RAM serving measurable.
// The snapshot store uses Resident to report what fraction of a mapped
// snapshot is in memory, and the server brackets each enumeration with
// Faults deltas to attribute cold-page cost to individual queries.
//
// Everything here is best-effort instrumentation: on platforms without
// mincore or getrusage the probes report themselves unsupported and
// callers degrade to zeros. Results never feed back into behavior.
package residency

import "os"

// PageSize returns the system page size, the unit Resident counts in.
func PageSize() int { return os.Getpagesize() }

// Supported reports whether Resident works on this platform (mincore is
// Linux-only here; the fault counters are available on all Unixes).
func Supported() bool { return residentSupported }

// Resident reports how many of the pages spanned by b are resident in
// physical memory, along with the total page count of the span. An empty
// region is (0, 0). On unsupported platforms it returns an error and
// (0, 0); callers treat that as "unknown", not "cold".
func Resident(b []byte) (resident, total int, err error) {
	return residentPages(b)
}

// Faults returns the process's cumulative major and minor page fault
// counts, and whether the platform provides them. Callers measure deltas
// across a region of interest; under concurrency the attribution is
// approximate (faults from overlapping work are counted too).
func Faults() (major, minor int64, ok bool) {
	return faultCounts()
}
