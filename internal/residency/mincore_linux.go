package residency

import (
	"syscall"
	"unsafe"
)

const residentSupported = true

// residentPages counts resident pages with mincore(2). The kernel
// requires a page-aligned start address, so the probe widens the span to
// page boundaries; for the mmap'd snapshots this package exists for, the
// region is a whole mapping and already aligned.
func residentPages(b []byte) (resident, total int, err error) {
	if len(b) == 0 {
		return 0, 0, nil
	}
	page := uintptr(PageSize())
	start := uintptr(unsafe.Pointer(&b[0]))
	end := start + uintptr(len(b))
	alignedStart := start &^ (page - 1)
	length := end - alignedStart
	total = int((length + page - 1) / page)
	vec := make([]byte, total)
	// mincore has no wrapper in the syscall package; the raw number is
	// portable across linux architectures via the generated constant.
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		alignedStart, length, uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, total, errno
	}
	for _, v := range vec {
		if v&1 != 0 {
			resident++
		}
	}
	return resident, total, nil
}
