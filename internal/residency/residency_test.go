package residency

import "testing"

func TestPageSize(t *testing.T) {
	if ps := PageSize(); ps <= 0 || ps&(ps-1) != 0 {
		t.Fatalf("PageSize() = %d, want a positive power of two", ps)
	}
}

// TestResidentTouchedRegion probes a heap region the test has just
// written: every spanned page must report resident. On platforms without
// mincore the probe must fail loudly (error), never report zeros as if
// it had measured.
func TestResidentTouchedRegion(t *testing.T) {
	buf := make([]byte, 8*PageSize())
	for i := 0; i < len(buf); i += 64 {
		buf[i] = byte(i)
	}
	resident, total, err := Resident(buf)
	if !Supported() {
		if err == nil {
			t.Fatal("unsupported platform returned a measurement")
		}
		return
	}
	if err != nil {
		t.Fatalf("Resident: %v", err)
	}
	// The slice may straddle one extra page boundary.
	if total < 8 || total > 9 {
		t.Fatalf("total = %d pages for %d bytes", total, len(buf))
	}
	if resident != total {
		t.Fatalf("freshly written region: %d/%d pages resident", resident, total)
	}
}

func TestResidentEmpty(t *testing.T) {
	if r, total, err := Resident(nil); r != 0 || total != 0 || err != nil {
		t.Fatalf("Resident(nil) = (%d, %d, %v), want (0, 0, nil)", r, total, err)
	}
}

// TestFaults asserts the counters are monotone and that forcing fresh
// page faults (touching a new large allocation) moves the minor count.
func TestFaults(t *testing.T) {
	maj1, min1, ok := Faults()
	if !ok {
		t.Skip("fault counters unsupported on this platform")
	}
	if maj1 < 0 || min1 <= 0 {
		t.Fatalf("implausible initial counts: major=%d minor=%d", maj1, min1)
	}
	buf := make([]byte, 64*PageSize())
	for i := 0; i < len(buf); i += PageSize() {
		buf[i] = 1
	}
	maj2, min2, ok := Faults()
	if !ok {
		t.Fatal("fault counters disappeared mid-process")
	}
	if maj2 < maj1 || min2 < min1 {
		t.Fatalf("counters moved backwards: major %d->%d minor %d->%d", maj1, maj2, min1, min2)
	}
}
