// Package cohesion unifies the repository's three cohesion measures —
// k-core, k-edge connected components and k-vertex connected components —
// behind one measure-parametric enumeration entry point.
//
// The three measures nest (Whitney's theorem: κ(G) <= λ(G) <= δ(G)): every
// k-VCC lies inside a k-ECC, and every k-ECC inside a connected component
// of the k-core. All three engines honor the same component contract:
// results are induced subgraphs with labels preserved, returned in the
// canonical core.SortComponents order (largest first, ties by sorted label
// sequence), with context cancellation and a shared Stats report. That
// shared contract is what lets one hierarchy index, one cache and one
// serving ladder work for any measure.
package cohesion

import (
	"context"
	"fmt"
	"strings"

	"kvcc/graph"
	"kvcc/internal/core"
	"kvcc/internal/kcore"
	"kvcc/internal/kecc"
)

// Measure selects the cohesion measure to enumerate. The zero value is
// KVCC so that every existing k-VCC code path — cache keys, singleflight
// keys, persisted index headers, wire requests that omit the field — keeps
// its exact pre-refactor behavior.
type Measure uint8

const (
	// KVCC enumerates k-vertex connected components (vertex cuts,
	// overlapping components) — the paper's subject.
	KVCC Measure = iota
	// KECC enumerates k-edge connected components (edge cuts, disjoint
	// partitions).
	KECC
	// KCore enumerates the connected components of the k-core (degree
	// threshold, disjoint partitions).
	KCore
)

// String returns the lowercase wire name of the measure.
func (m Measure) String() string {
	switch m {
	case KVCC:
		return "kvcc"
	case KECC:
		return "kecc"
	case KCore:
		return "kcore"
	default:
		return fmt.Sprintf("measure(%d)", uint8(m))
	}
}

// Valid reports whether m is one of the three defined measures.
func (m Measure) Valid() bool { return m <= KCore }

// ParseMeasure maps a wire name to a Measure. The empty string parses as
// KVCC so requests that omit the field keep their old meaning.
func ParseMeasure(name string) (Measure, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "kvcc", "k-vcc", "vcc":
		return KVCC, nil
	case "kecc", "k-ecc", "ecc":
		return KECC, nil
	case "kcore", "k-core", "core":
		return KCore, nil
	default:
		return KVCC, fmt.Errorf("unknown cohesion measure %q (want kvcc, kecc or kcore)", name)
	}
}

// Measures lists the defined measures from weakest to strongest
// (k-core ⊇ k-ECC ⊇ k-VCC).
func Measures() []Measure { return []Measure{KCore, KECC, KVCC} }

// Options re-exports the engine options. Only KVCC consults Algorithm,
// Parallelism, FlowEngine and Seed; the other measures accept and ignore
// them, so one option set can drive any measure.
type Options = core.Options

// Stats re-exports the shared work report.
type Stats = core.Stats

// Enumerate computes all components of g under measure m for the given k.
// See EnumerateContext.
func Enumerate(g *graph.Graph, k int, m Measure, opts Options) ([]*graph.Graph, *Stats, error) {
	return EnumerateContext(context.Background(), g, k, m, opts)
}

// EnumerateContext enumerates the measure-m components of g (k >= 1):
// k-VCCs, k-ECCs, or connected components of the k-core. Results preserve
// vertex labels and are returned in the canonical core.SortComponents
// order; cancellation returns ctx.Err() and discards partial results.
func EnumerateContext(ctx context.Context, g *graph.Graph, k int, m Measure, opts Options) ([]*graph.Graph, *Stats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("cohesion: k must be >= 1, got %d", k)
	}
	switch m {
	case KVCC:
		return core.EnumerateContext(ctx, g, k, opts)
	case KECC:
		return kecc.EnumerateContext(ctx, g, k)
	case KCore:
		return enumerateKCore(ctx, g, k)
	default:
		return nil, nil, fmt.Errorf("cohesion: unknown measure %d", uint8(m))
	}
}

// enumerateKCore returns the connected components of the k-core of g with
// more than one vertex, in canonical order. For k >= 1 every such
// component has at least k+1 vertices (each vertex keeps degree >= k), so
// no further size filter is needed; singleton components cannot appear
// because a degree->=1 vertex has a neighbor.
func enumerateKCore(ctx context.Context, g *graph.Graph, k int) ([]*graph.Graph, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	stats := &Stats{}
	cored, peeled := kcore.Reduce(g, k)
	stats.KCorePeeled = int64(peeled)
	if cored.NumVertices() == 0 {
		return nil, stats, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	var out []*graph.Graph
	for _, comp := range cored.ConnectedComponents() {
		if len(comp) <= 1 {
			continue
		}
		out = append(out, cored.InducedSubgraph(comp))
	}
	core.SortComponents(out)
	return out, stats, nil
}
