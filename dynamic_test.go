package kvcc_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
)

// editScript drives a deterministic random edit sequence over the label
// range of g: a mix of deletions of existing edges and insertions of new
// ones (occasionally touching brand-new vertices).
func editScript(g *graph.Graph, steps int, seed int64) (inserts, deletes [][2]int64) {
	rng := rand.New(rand.NewSource(seed))
	labels := g.Labels()
	n := int64(len(labels))
	edges := g.Edges(nil)
	for i := 0; i < steps; i++ {
		if rng.Intn(2) == 0 && len(edges) > 0 {
			e := edges[rng.Intn(len(edges))]
			deletes = append(deletes, [2]int64{g.Label(e[0]), g.Label(e[1])})
		} else {
			a := rng.Int63n(n + 3) // labels just past the range create vertices
			b := rng.Int63n(n + 3)
			inserts = append(inserts, [2]int64{a, b})
		}
	}
	return inserts, deletes
}

func communityGraph(seed int64) *graph.Graph {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 6, MinSize: 8, MaxSize: 14, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 2, BridgeEdges: 4,
		NoiseVertices: 40, NoiseDegree: 2, Seed: seed,
	})
	return g
}

// checkSameComponents fails unless the two results hold identical
// component label sets in identical canonical order.
func checkSameComponents(t *testing.T, got, want *kvcc.Result) {
	t.Helper()
	if len(got.Components) != len(want.Components) {
		t.Fatalf("%d components, want %d", len(got.Components), len(want.Components))
	}
	for i := range got.Components {
		a := got.Components[i].Labels()
		b := want.Components[i].Labels()
		set := map[int64]bool{}
		for _, l := range a {
			set[l] = true
		}
		if len(a) != len(b) {
			t.Fatalf("component %d: %d vertices, want %d", i, len(a), len(b))
		}
		for _, l := range b {
			if !set[l] {
				t.Fatalf("component %d: missing label %d", i, l)
			}
		}
	}
}

func TestDynamicIncrementalEqualsCold(t *testing.T) {
	g := communityGraph(9)
	const k = 5
	d, err := kvcc.NewDynamic(g, k)
	if err != nil {
		t.Fatal(err)
	}
	cur := d.Graph()
	for round := 0; round < 6; round++ {
		inserts, deletes := editScript(cur, 8, int64(100+round))
		res, err := d.ApplyEdits(context.Background(), inserts, deletes)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		cur = d.Graph()
		cold, err := kvcc.Enumerate(cur, k)
		if err != nil {
			t.Fatalf("round %d cold: %v", round, err)
		}
		checkSameComponents(t, res, cold)
		if res.Version != d.Version() {
			t.Fatalf("round %d: result version %d, handle version %d", round, res.Version, d.Version())
		}
	}
}

func TestDynamicSingleEditRecomputesOneComponent(t *testing.T) {
	// Two far-apart cliques: an edit inside one must reuse the other.
	var edges [][2]int
	for c := 0; c < 2; c++ {
		off := c * 10
		for i := 0; i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				edges = append(edges, [2]int{off + i, off + j})
			}
		}
	}
	g := graph.FromEdges(20, edges)
	d, err := kvcc.NewDynamic(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.ApplyEdits(context.Background(), nil, [][2]int64{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ComponentsReused != 1 {
		t.Fatalf("ComponentsReused = %d, want 1", res.Stats.ComponentsReused)
	}
	if res.Stats.ComponentsRecomputed != 1 {
		t.Fatalf("ComponentsRecomputed = %d, want 1", res.Stats.ComponentsRecomputed)
	}
	if len(res.Components) != 2 {
		t.Fatalf("%d components, want 2", len(res.Components))
	}
}

func TestDynamicNoOpBatchKeepsResult(t *testing.T) {
	g := communityGraph(3)
	d, err := kvcc.NewDynamic(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Result()
	v := d.Version()
	// Deleting an absent edge and re-inserting an existing one change nothing.
	existing := g.Edges(nil)[0]
	res, err := d.ApplyEdits(context.Background(),
		[][2]int64{{g.Label(existing[0]), g.Label(existing[1])}},
		[][2]int64{{-5, -6}})
	if err != nil {
		t.Fatal(err)
	}
	if res != before {
		t.Fatal("no-op batch must return the current result unchanged")
	}
	if d.Version() != v {
		t.Fatalf("no-op batch moved the version %d -> %d", v, d.Version())
	}
}

func TestDynamicCancelledUpdateConverges(t *testing.T) {
	g := communityGraph(5)
	d, err := kvcc.NewDynamic(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.ApplyEdits(cancelled, [][2]int64{{100000, 100001}, {100001, 0}}, nil); err == nil {
		t.Fatal("cancelled update must fail")
	}
	// The edits are recorded; an empty retry converges to the new version.
	res, err := d.ApplyEdits(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != d.Version() {
		t.Fatalf("result version %d lags handle version %d after retry", res.Version, d.Version())
	}
	cold, err := kvcc.Enumerate(d.Graph(), 4)
	if err != nil {
		t.Fatal(err)
	}
	checkSameComponents(t, res, cold)
}

// TestDynamicConcurrentEditsAndQueries hammers ApplyEdits against reads
// on the same handle. Run under -race this is the data-race guard for the
// whole dynamic layer: mutation batches serialize on the handle's lock
// while readers keep serving the previous immutable snapshot.
func TestDynamicConcurrentEditsAndQueries(t *testing.T) {
	g := communityGraph(7)
	const k = 4
	d, err := kvcc.NewDynamic(g, k)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: streams of small random batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 30; i++ {
			var ins, del [][2]int64
			for j := 0; j < 3; j++ {
				a, b := rng.Int63n(120), rng.Int63n(120)
				if rng.Intn(2) == 0 {
					ins = append(ins, [2]int64{a, b})
				} else {
					del = append(del, [2]int64{a, b})
				}
			}
			if _, err := d.ApplyEdits(context.Background(), ins, del); err != nil {
				t.Errorf("ApplyEdits: %v", err)
				return
			}
		}
		close(stop)
	}()

	// Readers: enumerate-equivalent queries against whatever snapshot is
	// current, exercising the Result's lazy label index concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := d.Result()
				_ = res.ComponentsContaining(rng.Int63n(120))
				_ = res.VertexLabels()
				snap := d.Graph()
				_ = snap.NumEdges()
			}
		}(int64(r))
	}
	wg.Wait()

	// After the dust settles the handle must agree with a cold run.
	res, err := d.ApplyEdits(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := kvcc.Enumerate(d.Graph(), k)
	if err != nil {
		t.Fatal(err)
	}
	checkSameComponents(t, res, cold)
}
