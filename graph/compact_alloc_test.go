package graph

import (
	"math/rand"
	"testing"
)

// TestDeltaCompactAllocsBounded guards the single-pass Compact: it
// allocates the offsets array, the edges array, and the Graph value — a
// small constant number of allocations, independent of graph size.
// Regressing to append-doubling of the edge array fails the larger size
// immediately.
func TestDeltaCompactAllocsBounded(t *testing.T) {
	count := func(n int) float64 {
		base := GNPForTest(n, 4/float64(n), rand.New(rand.NewSource(7)))
		const runs = 10
		// One fresh delta per call: Compact memoizes, so a re-run on the
		// same delta would measure the cache, not the compaction.
		deltas := make([]*Delta, runs+1)
		for i := range deltas {
			d := NewDelta(base)
			d.InsertEdge(900_001, 900_002)
			d.InsertEdge(900_002, 900_003)
			deltas[i] = d
		}
		i := 0
		return testing.AllocsPerRun(runs, func() { deltas[i].Compact(); i++ })
	}
	small, big := count(500), count(5000)
	const bound = 12
	if small > bound || big > bound {
		t.Fatalf("Compact allocations grew with graph size: n=500 -> %.0f, n=5000 -> %.0f (bound %d)",
			small, big, bound)
	}
}
