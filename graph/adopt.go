package graph

import "fmt"

// AdoptCSR wraps pre-built CSR arrays as a Graph without copying them.
// This is the zero-copy entry point for the on-disk snapshot store: the
// arrays may live in a read-only mmap'd region, so the Graph (and every
// subgraph extracted from it) must never write to them — which holds for
// the whole package, since a built Graph is immutable.
//
// Only O(1) structural invariants are checked here, so adopting a
// mmap'd billion-edge snapshot does not fault in the file; callers that
// adopt untrusted arrays run ValidateCSR afterwards (the snapshot store
// does, behind a checksum, in its Verify path). The caller keeps
// ownership of whatever backs the slices and must keep it alive (and
// mapped) for the lifetime of the returned Graph.
//
// The returned graph reports External() true: enumeration code treats it
// as demand-paged — sequential scans read it in place, anything with a
// random access pattern copies out first (Materialize), and the owner may
// attach a paging Advisor (SetAdvisor) to receive access hints.
func AdoptCSR(offsets, edges []int, labels []int64, m int) (*Graph, error) {
	n := len(labels)
	switch {
	case len(offsets) != n+1:
		return nil, fmt.Errorf("graph: adopt: %d offsets for %d vertices (want n+1)", len(offsets), n)
	case offsets[0] != 0:
		return nil, fmt.Errorf("graph: adopt: offsets[0] = %d, want 0", offsets[0])
	case offsets[n] != len(edges):
		return nil, fmt.Errorf("graph: adopt: offsets[n] = %d but %d edge entries", offsets[n], len(edges))
	case len(edges) != 2*m:
		return nil, fmt.Errorf("graph: adopt: %d edge entries for m = %d (want 2m)", len(edges), m)
	}
	return &Graph{offsets: offsets, edges: edges, labels: labels, m: m, external: true}, nil
}

// ValidateCSR exhaustively checks the CSR invariants of g in O(n + m):
// monotone offsets, every adjacency run sorted strictly ascending (no
// duplicates), no self-loops, every neighbor in range, and edge symmetry
// (w in N(v) iff v in N(w)). It exists for consumers of AdoptCSR that
// cannot trust their arrays — a snapshot file that passed its checksum
// but was written by a different implementation, say.
func ValidateCSR(g *Graph) error {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: validate: offsets not monotone at vertex %d", v)
		}
		run := g.Neighbors(v)
		prev := -1
		for _, w := range run {
			if w < 0 || w >= n {
				return fmt.Errorf("graph: validate: vertex %d has out-of-range neighbor %d", v, w)
			}
			if w == v {
				return fmt.Errorf("graph: validate: self-loop at vertex %d", v)
			}
			if w <= prev {
				return fmt.Errorf("graph: validate: adjacency of vertex %d not strictly ascending at %d", v, w)
			}
			prev = w
		}
	}
	// Symmetry: every directed entry must have its reverse. Each side is
	// a binary search in a sorted run, so the check is O(m log degree).
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: validate: edge (%d,%d) has no reverse entry", v, w)
			}
		}
	}
	return nil
}
