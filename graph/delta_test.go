package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// modelGraph is a naive adjacency-set reference the Delta is diffed
// against: labels in first-mention order, edges as a set of label pairs.
type modelGraph struct {
	labels []int64
	index  map[int64]int
	edges  map[[2]int64]bool
}

func newModel(base *Graph) *modelGraph {
	m := &modelGraph{index: map[int64]int{}, edges: map[[2]int64]bool{}}
	for _, l := range base.Labels() {
		m.addVertex(l)
	}
	for _, e := range base.Edges(nil) {
		m.edges[labelKey(base.Label(e[0]), base.Label(e[1]))] = true
	}
	return m
}

func labelKey(a, b int64) [2]int64 {
	if a > b {
		a, b = b, a
	}
	return [2]int64{a, b}
}

func (m *modelGraph) addVertex(l int64) {
	if _, ok := m.index[l]; !ok {
		m.index[l] = len(m.labels)
		m.labels = append(m.labels, l)
	}
}

func (m *modelGraph) insert(a, b int64) bool {
	if a == b {
		return false
	}
	_, hadA := m.index[a]
	_, hadB := m.index[b]
	m.addVertex(a)
	m.addVertex(b)
	key := labelKey(a, b)
	if m.edges[key] {
		return !hadA || !hadB
	}
	m.edges[key] = true
	return true
}

func (m *modelGraph) delete(a, b int64) bool {
	key := labelKey(a, b)
	if !m.edges[key] {
		return false
	}
	delete(m.edges, key)
	return true
}

// checkAgainstModel verifies every read of the overlay against the model.
func checkAgainstModel(t *testing.T, d *Delta, m *modelGraph) {
	t.Helper()
	if d.NumVertices() != len(m.labels) {
		t.Fatalf("NumVertices = %d, model has %d", d.NumVertices(), len(m.labels))
	}
	if d.NumEdges() != len(m.edges) {
		t.Fatalf("NumEdges = %d, model has %d", d.NumEdges(), len(m.edges))
	}
	for v, l := range m.labels {
		if d.Label(v) != l {
			t.Fatalf("Label(%d) = %d, model says %d", v, d.Label(v), l)
		}
		if d.IndexOfLabel(l) != v {
			t.Fatalf("IndexOfLabel(%d) = %d, want %d", l, d.IndexOfLabel(l), v)
		}
	}
	for v := range m.labels {
		var wantAdj []int
		wantDeg := 0
		for w, lw := range m.labels {
			if v == w {
				continue
			}
			has := m.edges[labelKey(m.labels[v], lw)]
			if has != d.HasEdge(v, w) {
				t.Fatalf("HasEdge(%d,%d) = %v, model says %v", v, w, d.HasEdge(v, w), has)
			}
			if has {
				wantAdj = append(wantAdj, w)
				wantDeg++
			}
		}
		if got := d.Degree(v); got != wantDeg {
			t.Fatalf("Degree(%d) = %d, want %d", v, got, wantDeg)
		}
		got := d.Neighbors(v)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, wantAdj) {
			t.Fatalf("Neighbors(%d) = %v, want %v", v, got, wantAdj)
		}
	}
}

func TestDeltaRandomEditsMatchModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := GNPForTest(14, 0.3, rng)
	d := NewDelta(base)
	m := newModel(base)
	checkAgainstModel(t, d, m)

	lastVersion := d.Version()
	for step := 0; step < 400; step++ {
		a := int64(rng.Intn(20))
		b := int64(rng.Intn(20))
		var changedD, changedM bool
		if rng.Intn(2) == 0 {
			changedD = d.InsertEdge(a, b)
			changedM = m.insert(a, b)
		} else {
			changedD = d.DeleteEdge(a, b)
			changedM = m.delete(a, b)
		}
		if changedD != changedM {
			t.Fatalf("step %d: delta changed=%v, model changed=%v", step, changedD, changedM)
		}
		if v := d.Version(); changedD && v <= lastVersion {
			t.Fatalf("step %d: version did not increase on a change (%d -> %d)", step, lastVersion, v)
		} else if !changedD && v != lastVersion {
			t.Fatalf("step %d: version moved on a no-op (%d -> %d)", step, lastVersion, v)
		}
		lastVersion = d.Version()
		if step%37 == 0 {
			checkAgainstModel(t, d, m)
		}
		if step%83 == 0 {
			g := d.Compact()
			checkCompactMatchesModel(t, g, m)
			checkAgainstModel(t, d, m) // reads must survive the rebase
		}
	}
	checkAgainstModel(t, d, m)
	checkCompactMatchesModel(t, d.Compact(), m)
}

// GNPForTest builds a small random graph with labels 0..n-1.
func GNPForTest(n int, p float64, rng *rand.Rand) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return FromEdges(n, edges)
}

func checkCompactMatchesModel(t *testing.T, g *Graph, m *modelGraph) {
	t.Helper()
	if g.NumVertices() != len(m.labels) {
		t.Fatalf("compact: NumVertices = %d, want %d", g.NumVertices(), len(m.labels))
	}
	if g.NumEdges() != len(m.edges) {
		t.Fatalf("compact: NumEdges = %d, want %d", g.NumEdges(), len(m.edges))
	}
	got := map[[2]int64]bool{}
	for _, e := range g.Edges(nil) {
		got[labelKey(g.Label(e[0]), g.Label(e[1]))] = true
	}
	if !reflect.DeepEqual(got, m.edges) {
		t.Fatalf("compact: edge set %v, want %v", got, m.edges)
	}
	// CSR invariants: sorted runs, no self-loops or duplicates.
	for v := 0; v < g.NumVertices(); v++ {
		run := g.Neighbors(v)
		for i, w := range run {
			if w == v {
				t.Fatalf("compact: self-loop at %d", v)
			}
			if i > 0 && run[i-1] >= w {
				t.Fatalf("compact: run of %d not strictly ascending: %v", v, run)
			}
		}
	}
}

func TestDeltaCompactIdentityWhenClean(t *testing.T) {
	base := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	d := NewDelta(base)
	if d.Compact() != base {
		t.Fatal("clean overlay must compact to its base")
	}
	if !d.InsertEdge(0, 2) {
		t.Fatal("insert of a missing edge must report a change")
	}
	g1 := d.Compact()
	if g1 == base {
		t.Fatal("compact after a mutation must rebuild")
	}
	if g2 := d.Compact(); g2 != g1 {
		t.Fatal("compact without an intervening mutation must be cached")
	}
	if d.Base() != g1 {
		t.Fatal("compact must rebase the overlay")
	}
	if ins, del := d.Pending(); ins != 0 || del != 0 {
		t.Fatalf("compact must drain pending edits, got %d/%d", ins, del)
	}
}

func TestDeltaCancelAndRestore(t *testing.T) {
	base := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	d := NewDelta(base)

	// Deleting a pending insert cancels it entirely.
	if !d.InsertEdge(0, 2) || !d.DeleteEdge(0, 2) {
		t.Fatal("insert+delete of a new edge must both be changes")
	}
	if ins, del := d.Pending(); ins != 0 || del != 0 {
		t.Fatalf("cancelled insert left pending edits %d/%d", ins, del)
	}
	if d.HasEdge(0, 2) {
		t.Fatal("cancelled insert still visible")
	}

	// Re-inserting a deleted base edge restores it.
	if !d.DeleteEdge(0, 1) || !d.InsertEdge(0, 1) {
		t.Fatal("delete+insert of a base edge must both be changes")
	}
	if ins, del := d.Pending(); ins != 0 || del != 0 {
		t.Fatalf("restored base edge left pending edits %d/%d", ins, del)
	}
	if !d.HasEdge(0, 1) {
		t.Fatal("restored base edge missing")
	}
	if d.NumEdges() != base.NumEdges() {
		t.Fatalf("edge count drifted: %d vs %d", d.NumEdges(), base.NumEdges())
	}
}

func TestDeltaNewVertices(t *testing.T) {
	base := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	d := NewDelta(base)
	v, added := d.AddVertex(99)
	if !added || v != 3 {
		t.Fatalf("AddVertex(99) = (%d,%v), want (3,true)", v, added)
	}
	if _, added := d.AddVertex(99); added {
		t.Fatal("re-adding a vertex must be a no-op")
	}
	if !d.InsertEdge(99, 0) || !d.InsertEdge(99, 100) {
		t.Fatal("edges on new vertices must insert")
	}
	if d.Degree(3) != 2 {
		t.Fatalf("Degree(new) = %d, want 2", d.Degree(3))
	}
	g := d.Compact()
	if g.NumVertices() != 5 || g.NumEdges() != 5 {
		t.Fatalf("compacted to n=%d m=%d, want n=5 m=5", g.NumVertices(), g.NumEdges())
	}
	if g.Label(3) != 99 || g.Label(4) != 100 {
		t.Fatalf("appended labels = %d,%d, want 99,100", g.Label(3), g.Label(4))
	}
	if !g.HasEdge(3, 0) || !g.HasEdge(3, 4) {
		t.Fatal("compacted graph missing inserted edges")
	}
}
