package graph

import (
	"fmt"
	"sort"
)

// Delta is a mutation overlay on an immutable base Graph: pending edge
// insertions and deletions plus appended vertices, with a monotonically
// increasing version stamp. The base CSR is never touched; reads
// (Neighbors, HasEdge, Degree) merge the overlay on the fly, and Compact
// materializes a fresh normalized CSR through the same counting-sort
// skeleton the static builders use, rebasing the overlay onto it.
//
// Vertex ids are stable across the overlay's lifetime: base vertices keep
// their ids, new vertices are appended after them, and Compact preserves
// the numbering. Labels remain the external identity, so edits are
// addressed by label (creating vertices on first mention) and every
// subgraph extracted from a compacted snapshot lines up with earlier ones.
//
// A Delta is not safe for concurrent use; callers that share one (the
// kvcc.Dynamic handle, the server's edit path) serialize access
// themselves. Compacted snapshots are plain immutable Graphs and may be
// read concurrently with further mutations of the Delta.
type Delta struct {
	base    *Graph
	version uint64

	labels []int64       // all labels: base labels + appended vertices
	index  map[int64]int // label -> vertex id over base+new

	// Pending insertions, as normalized (u<v) pairs. insPos is the
	// membership index into insList; insList keeps a deterministic
	// iteration order for Compact's two-pass counting sort (map iteration
	// order would desynchronize the passes).
	insPos  map[[2]int]int
	insList [][2]int

	// Pending deletions of base edges, as normalized (u<v) pairs.
	del map[[2]int]bool

	// insAdj holds each vertex's inserted neighbors in ascending order,
	// so merged Neighbors reads stay sorted without re-sorting per call.
	insAdj map[int][]int

	// degDelta is the per-vertex degree adjustment from pending edits.
	degDelta map[int]int

	m int // current undirected edge count (base +inserts -deletes)

	// compacted caches the last Compact result until the next mutation.
	compacted *Graph
}

// NewDelta returns an overlay on base with no pending edits, at version 1.
// A nil base is treated as the empty graph.
func NewDelta(base *Graph) *Delta {
	return NewDeltaAt(base, 1)
}

// NewDeltaAt returns an overlay on base whose version stamp starts at
// version (clamped to at least 1). The snapshot store uses it on
// recovery: a graph restored at version v must hand out v+1, v+2, ... for
// subsequent edits exactly as the pre-crash overlay would have, so that
// replayed write-ahead-log records and client-visible version stamps
// stay aligned across restarts.
func NewDeltaAt(base *Graph, version uint64) *Delta {
	if base == nil {
		base = &Graph{}
	}
	if version < 1 {
		version = 1
	}
	d := &Delta{
		base:     base,
		version:  version,
		labels:   append([]int64(nil), base.labels...),
		index:    base.LabelIndex(),
		insPos:   make(map[[2]int]int),
		del:      make(map[[2]int]bool),
		insAdj:   make(map[int][]int),
		degDelta: make(map[int]int),
		m:        base.m,
	}
	d.compacted = base
	return d
}

// Base returns the graph the overlay currently rebases onto. Compact
// replaces it with the materialized snapshot.
func (d *Delta) Base() *Graph { return d.base }

// Version returns the overlay's version stamp. It starts at 1 and
// increases by one for every effective mutation (an insert, delete or
// vertex addition that changed the graph); no-op edits do not bump it.
func (d *Delta) Version() uint64 { return d.version }

// NumVertices returns the vertex count including appended vertices.
func (d *Delta) NumVertices() int { return len(d.labels) }

// NumEdges returns the undirected edge count of base plus the overlay.
func (d *Delta) NumEdges() int { return d.m }

// Pending returns the number of pending edge insertions and deletions.
func (d *Delta) Pending() (inserts, deletes int) {
	return len(d.insList), len(d.del)
}

// Label returns the label of vertex v.
func (d *Delta) Label(v int) int64 { return d.labels[v] }

// Labels returns the label slice indexed by vertex id. The slice is shared
// with the overlay and must not be modified.
func (d *Delta) Labels() []int64 { return d.labels }

// IndexOfLabel returns the vertex id of the given label, or -1 if absent.
func (d *Delta) IndexOfLabel(l int64) int {
	if v, ok := d.index[l]; ok {
		return v
	}
	return -1
}

// AddVertex ensures a vertex labeled l exists and returns its id, plus
// whether it was newly created (which bumps the version).
func (d *Delta) AddVertex(l int64) (v int, added bool) {
	if v, ok := d.index[l]; ok {
		return v, false
	}
	v = len(d.labels)
	d.index[l] = v
	d.labels = append(d.labels, l)
	d.mutated()
	return v, true
}

// baseN returns the number of vertices in the base graph.
func (d *Delta) baseN() int { return len(d.base.labels) }

// edgeKey normalizes an edge to its (min,max) id pair.
func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// hasEffective reports whether edge (u,v) exists in base+overlay.
func (d *Delta) hasEffective(u, v int) bool {
	key := edgeKey(u, v)
	if _, ok := d.insPos[key]; ok {
		return true
	}
	if d.del[key] {
		return false
	}
	return u < d.baseN() && v < d.baseN() && d.base.HasEdge(u, v)
}

// InsertEdge records the undirected edge between the vertices labeled lu
// and lv, creating either vertex on first mention. It returns true when
// the graph changed (the edge was absent), false for self-loops and
// already-present edges. A vertex created for a no-op insert still counts
// as a change.
func (d *Delta) InsertEdge(lu, lv int64) bool {
	if lu == lv {
		return false
	}
	u, addedU := d.AddVertex(lu)
	v, addedV := d.AddVertex(lv)
	if d.hasEffective(u, v) {
		return addedU || addedV
	}
	key := edgeKey(u, v)
	if d.del[key] {
		// Re-inserting a deleted base edge restores it.
		delete(d.del, key)
	} else {
		d.insPos[key] = len(d.insList)
		d.insList = append(d.insList, key)
		d.insertAdj(key[0], key[1])
		d.insertAdj(key[1], key[0])
	}
	d.degDelta[u]++
	d.degDelta[v]++
	d.m++
	d.mutated()
	return true
}

// DeleteEdge removes the undirected edge between the vertices labeled lu
// and lv. It returns true when the graph changed; unknown labels, absent
// edges and self-loops are no-ops. Vertices are never removed — deleting
// a vertex's last edge leaves it isolated (the k-core reduction of any
// downstream enumeration discards it anyway).
func (d *Delta) DeleteEdge(lu, lv int64) bool {
	if lu == lv {
		return false
	}
	u, okU := d.index[lu]
	v, okV := d.index[lv]
	if !okU || !okV || !d.hasEffective(u, v) {
		return false
	}
	key := edgeKey(u, v)
	if pos, ok := d.insPos[key]; ok {
		// Deleting a pending insert cancels it. Swap-delete keeps insList
		// compact; the order only needs to be stable within one Compact.
		last := len(d.insList) - 1
		moved := d.insList[last]
		d.insList[pos] = moved
		d.insPos[moved] = pos
		d.insList = d.insList[:last]
		delete(d.insPos, key)
		d.removeAdj(key[0], key[1])
		d.removeAdj(key[1], key[0])
	} else {
		d.del[key] = true
	}
	d.degDelta[u]--
	d.degDelta[v]--
	d.m--
	d.mutated()
	return true
}

// mutated bumps the version and invalidates the compacted snapshot.
func (d *Delta) mutated() {
	d.version++
	d.compacted = nil
}

// insertAdj places w into v's sorted inserted-neighbor list.
func (d *Delta) insertAdj(v, w int) {
	list := d.insAdj[v]
	i := sort.SearchInts(list, w)
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = w
	d.insAdj[v] = list
}

// removeAdj removes w from v's inserted-neighbor list.
func (d *Delta) removeAdj(v, w int) {
	list := d.insAdj[v]
	i := sort.SearchInts(list, w)
	if i < len(list) && list[i] == w {
		list = append(list[:i], list[i+1:]...)
	}
	if len(list) == 0 {
		delete(d.insAdj, v)
	} else {
		d.insAdj[v] = list
	}
}

// Degree returns the degree of vertex v over base+overlay.
func (d *Delta) Degree(v int) int {
	deg := 0
	if v < d.baseN() {
		deg = d.base.Degree(v)
	}
	return deg + d.degDelta[v]
}

// HasEdge reports whether the undirected edge (u,v) exists over
// base+overlay.
func (d *Delta) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= len(d.labels) || v >= len(d.labels) {
		return false
	}
	return d.hasEffective(u, v)
}

// Neighbors returns the sorted adjacency of v over base+overlay. Unlike
// Graph.Neighbors it allocates a fresh slice per call (the merged view has
// no contiguous backing); enumeration-grade reads should Compact first.
func (d *Delta) Neighbors(v int) []int {
	return d.MergedNeighbors(v, nil)
}

// MergedNeighbors appends the sorted adjacency of v over base+overlay to
// buf (reusing its storage; buf may be nil) and returns the result. It is
// the streaming read behind Neighbors, Compact and the snapshot spill
// path: one ascending-v sweep of MergedNeighbors reads the base CSR
// strictly sequentially, which is what keeps compaction of an mmap'd base
// paging-friendly. The merged run's length always equals Degree(v).
func (d *Delta) MergedNeighbors(v int, buf []int) []int {
	buf = buf[:0]
	var baseRun []int
	if v < d.baseN() {
		baseRun = d.base.Neighbors(v)
	}
	ins := d.insAdj[v]
	if len(ins) == 0 && len(d.del) == 0 {
		// Untouched vertex in a deletion-free overlay: one bulk copy.
		return append(buf, baseRun...)
	}
	i, j := 0, 0
	for i < len(baseRun) || j < len(ins) {
		switch {
		case j == len(ins) || (i < len(baseRun) && baseRun[i] < ins[j]):
			w := baseRun[i]
			i++
			if len(d.del) == 0 || !d.del[edgeKey(v, w)] {
				buf = append(buf, w)
			}
		default:
			buf = append(buf, ins[j])
			j++
		}
	}
	return buf
}

// Compact materializes the overlay into a fresh normalized CSR Graph,
// rebases the overlay onto it (pending edits drain into the new base),
// and returns it. The version stamp is preserved, and the result is
// cached: compacting twice without an intervening mutation returns the
// same *Graph, so downstream consumers can use pointer identity as a
// cheap "nothing changed" test.
//
// Unlike the static builders' counting-sort skeleton, Compact never
// re-sorts or deduplicates: the overlay's invariants (base runs sorted,
// inserted neighbors kept sorted, inserts guaranteed absent from base)
// let the merged degree come from Degree(v) in O(1) and each adjacency
// run merge-write directly into its final slot. The pass allocates
// exactly the result arrays — offsets and edges — so peak memory is the
// old graph plus the new one, with no intermediate copies, and the base
// CSR is read once, sequentially (it may be a cold mmap). The label
// table and the overlay's bookkeeping maps are reused across compactions
// whenever capacities suffice.
func (d *Delta) Compact() *Graph {
	if d.compacted != nil {
		return d.compacted
	}
	n := len(d.labels)
	offsets := make([]int, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + d.Degree(v)
	}
	edges := make([]int, offsets[n])
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		run := d.MergedNeighbors(v, edges[lo:lo:hi])
		if len(run) != hi-lo {
			panic("graph: Delta degree bookkeeping diverged from merged adjacency")
		}
	}
	g := &Graph{
		offsets: offsets,
		edges:   edges,
		// The label table is aliased, not copied: a Graph never reads
		// past len, and Delta only ever appends to d.labels (the full
		// slice expression forces any append past n to reallocate).
		labels: d.labels[:n:n],
		m:      d.m,
	}
	d.rebase(g)
	return g
}

// rebase installs g as the overlay's new base and drains the pending
// edits into it, reusing the bookkeeping maps' storage.
func (d *Delta) rebase(g *Graph) {
	d.base = g
	clear(d.insPos)
	d.insList = d.insList[:0]
	clear(d.del)
	clear(d.insAdj)
	clear(d.degDelta)
	d.m = g.m
	d.compacted = g
}

// Rebase replaces the overlay's base with g, which must be structurally
// identical to what Compact() would return — same vertex count, labels
// and edges. The snapshot store uses it after spilling a compaction
// straight to disk (CompactToStore): the re-mapped adoption of the
// written file takes the compacted heap graph's place, pending edits
// drain exactly as Compact would have drained them, and the version
// stamp is untouched. Only the O(1) invariants are checked; the caller
// vouches for the deep equality (the store does, behind a checksum).
func (d *Delta) Rebase(g *Graph) error {
	if g == nil {
		return fmt.Errorf("graph: rebase onto nil graph")
	}
	if g.NumVertices() != len(d.labels) {
		return fmt.Errorf("graph: rebase: %d vertices, overlay has %d", g.NumVertices(), len(d.labels))
	}
	if g.NumEdges() != d.m {
		return fmt.Errorf("graph: rebase: %d edges, overlay has %d", g.NumEdges(), d.m)
	}
	d.rebase(g)
	return nil
}
