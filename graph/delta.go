package graph

import "sort"

// Delta is a mutation overlay on an immutable base Graph: pending edge
// insertions and deletions plus appended vertices, with a monotonically
// increasing version stamp. The base CSR is never touched; reads
// (Neighbors, HasEdge, Degree) merge the overlay on the fly, and Compact
// materializes a fresh normalized CSR through the same counting-sort
// skeleton the static builders use, rebasing the overlay onto it.
//
// Vertex ids are stable across the overlay's lifetime: base vertices keep
// their ids, new vertices are appended after them, and Compact preserves
// the numbering. Labels remain the external identity, so edits are
// addressed by label (creating vertices on first mention) and every
// subgraph extracted from a compacted snapshot lines up with earlier ones.
//
// A Delta is not safe for concurrent use; callers that share one (the
// kvcc.Dynamic handle, the server's edit path) serialize access
// themselves. Compacted snapshots are plain immutable Graphs and may be
// read concurrently with further mutations of the Delta.
type Delta struct {
	base    *Graph
	version uint64

	labels []int64       // all labels: base labels + appended vertices
	index  map[int64]int // label -> vertex id over base+new

	// Pending insertions, as normalized (u<v) pairs. insPos is the
	// membership index into insList; insList keeps a deterministic
	// iteration order for Compact's two-pass counting sort (map iteration
	// order would desynchronize the passes).
	insPos  map[[2]int]int
	insList [][2]int

	// Pending deletions of base edges, as normalized (u<v) pairs.
	del map[[2]int]bool

	// insAdj holds each vertex's inserted neighbors in ascending order,
	// so merged Neighbors reads stay sorted without re-sorting per call.
	insAdj map[int][]int

	// degDelta is the per-vertex degree adjustment from pending edits.
	degDelta map[int]int

	m int // current undirected edge count (base +inserts -deletes)

	// compacted caches the last Compact result until the next mutation.
	compacted *Graph
}

// NewDelta returns an overlay on base with no pending edits, at version 1.
// A nil base is treated as the empty graph.
func NewDelta(base *Graph) *Delta {
	return NewDeltaAt(base, 1)
}

// NewDeltaAt returns an overlay on base whose version stamp starts at
// version (clamped to at least 1). The snapshot store uses it on
// recovery: a graph restored at version v must hand out v+1, v+2, ... for
// subsequent edits exactly as the pre-crash overlay would have, so that
// replayed write-ahead-log records and client-visible version stamps
// stay aligned across restarts.
func NewDeltaAt(base *Graph, version uint64) *Delta {
	if base == nil {
		base = &Graph{}
	}
	if version < 1 {
		version = 1
	}
	d := &Delta{
		base:     base,
		version:  version,
		labels:   append([]int64(nil), base.labels...),
		index:    base.LabelIndex(),
		insPos:   make(map[[2]int]int),
		del:      make(map[[2]int]bool),
		insAdj:   make(map[int][]int),
		degDelta: make(map[int]int),
		m:        base.m,
	}
	d.compacted = base
	return d
}

// Base returns the graph the overlay currently rebases onto. Compact
// replaces it with the materialized snapshot.
func (d *Delta) Base() *Graph { return d.base }

// Version returns the overlay's version stamp. It starts at 1 and
// increases by one for every effective mutation (an insert, delete or
// vertex addition that changed the graph); no-op edits do not bump it.
func (d *Delta) Version() uint64 { return d.version }

// NumVertices returns the vertex count including appended vertices.
func (d *Delta) NumVertices() int { return len(d.labels) }

// NumEdges returns the undirected edge count of base plus the overlay.
func (d *Delta) NumEdges() int { return d.m }

// Pending returns the number of pending edge insertions and deletions.
func (d *Delta) Pending() (inserts, deletes int) {
	return len(d.insList), len(d.del)
}

// Label returns the label of vertex v.
func (d *Delta) Label(v int) int64 { return d.labels[v] }

// Labels returns the label slice indexed by vertex id. The slice is shared
// with the overlay and must not be modified.
func (d *Delta) Labels() []int64 { return d.labels }

// IndexOfLabel returns the vertex id of the given label, or -1 if absent.
func (d *Delta) IndexOfLabel(l int64) int {
	if v, ok := d.index[l]; ok {
		return v
	}
	return -1
}

// AddVertex ensures a vertex labeled l exists and returns its id, plus
// whether it was newly created (which bumps the version).
func (d *Delta) AddVertex(l int64) (v int, added bool) {
	if v, ok := d.index[l]; ok {
		return v, false
	}
	v = len(d.labels)
	d.index[l] = v
	d.labels = append(d.labels, l)
	d.mutated()
	return v, true
}

// baseN returns the number of vertices in the base graph.
func (d *Delta) baseN() int { return len(d.base.labels) }

// edgeKey normalizes an edge to its (min,max) id pair.
func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// hasEffective reports whether edge (u,v) exists in base+overlay.
func (d *Delta) hasEffective(u, v int) bool {
	key := edgeKey(u, v)
	if _, ok := d.insPos[key]; ok {
		return true
	}
	if d.del[key] {
		return false
	}
	return u < d.baseN() && v < d.baseN() && d.base.HasEdge(u, v)
}

// InsertEdge records the undirected edge between the vertices labeled lu
// and lv, creating either vertex on first mention. It returns true when
// the graph changed (the edge was absent), false for self-loops and
// already-present edges. A vertex created for a no-op insert still counts
// as a change.
func (d *Delta) InsertEdge(lu, lv int64) bool {
	if lu == lv {
		return false
	}
	u, addedU := d.AddVertex(lu)
	v, addedV := d.AddVertex(lv)
	if d.hasEffective(u, v) {
		return addedU || addedV
	}
	key := edgeKey(u, v)
	if d.del[key] {
		// Re-inserting a deleted base edge restores it.
		delete(d.del, key)
	} else {
		d.insPos[key] = len(d.insList)
		d.insList = append(d.insList, key)
		d.insertAdj(key[0], key[1])
		d.insertAdj(key[1], key[0])
	}
	d.degDelta[u]++
	d.degDelta[v]++
	d.m++
	d.mutated()
	return true
}

// DeleteEdge removes the undirected edge between the vertices labeled lu
// and lv. It returns true when the graph changed; unknown labels, absent
// edges and self-loops are no-ops. Vertices are never removed — deleting
// a vertex's last edge leaves it isolated (the k-core reduction of any
// downstream enumeration discards it anyway).
func (d *Delta) DeleteEdge(lu, lv int64) bool {
	if lu == lv {
		return false
	}
	u, okU := d.index[lu]
	v, okV := d.index[lv]
	if !okU || !okV || !d.hasEffective(u, v) {
		return false
	}
	key := edgeKey(u, v)
	if pos, ok := d.insPos[key]; ok {
		// Deleting a pending insert cancels it. Swap-delete keeps insList
		// compact; the order only needs to be stable within one Compact.
		last := len(d.insList) - 1
		moved := d.insList[last]
		d.insList[pos] = moved
		d.insPos[moved] = pos
		d.insList = d.insList[:last]
		delete(d.insPos, key)
		d.removeAdj(key[0], key[1])
		d.removeAdj(key[1], key[0])
	} else {
		d.del[key] = true
	}
	d.degDelta[u]--
	d.degDelta[v]--
	d.m--
	d.mutated()
	return true
}

// mutated bumps the version and invalidates the compacted snapshot.
func (d *Delta) mutated() {
	d.version++
	d.compacted = nil
}

// insertAdj places w into v's sorted inserted-neighbor list.
func (d *Delta) insertAdj(v, w int) {
	list := d.insAdj[v]
	i := sort.SearchInts(list, w)
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = w
	d.insAdj[v] = list
}

// removeAdj removes w from v's inserted-neighbor list.
func (d *Delta) removeAdj(v, w int) {
	list := d.insAdj[v]
	i := sort.SearchInts(list, w)
	if i < len(list) && list[i] == w {
		list = append(list[:i], list[i+1:]...)
	}
	if len(list) == 0 {
		delete(d.insAdj, v)
	} else {
		d.insAdj[v] = list
	}
}

// Degree returns the degree of vertex v over base+overlay.
func (d *Delta) Degree(v int) int {
	deg := 0
	if v < d.baseN() {
		deg = d.base.Degree(v)
	}
	return deg + d.degDelta[v]
}

// HasEdge reports whether the undirected edge (u,v) exists over
// base+overlay.
func (d *Delta) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= len(d.labels) || v >= len(d.labels) {
		return false
	}
	return d.hasEffective(u, v)
}

// Neighbors returns the sorted adjacency of v over base+overlay. Unlike
// Graph.Neighbors it allocates a fresh slice per call (the merged view has
// no contiguous backing); enumeration-grade reads should Compact first.
func (d *Delta) Neighbors(v int) []int {
	var baseRun []int
	if v < d.baseN() {
		baseRun = d.base.Neighbors(v)
	}
	ins := d.insAdj[v]
	out := make([]int, 0, len(baseRun)+len(ins))
	i, j := 0, 0
	for i < len(baseRun) || j < len(ins) {
		switch {
		case j == len(ins) || (i < len(baseRun) && baseRun[i] < ins[j]):
			w := baseRun[i]
			i++
			if !d.del[edgeKey(v, w)] {
				out = append(out, w)
			}
		default:
			out = append(out, ins[j])
			j++
		}
	}
	return out
}

// Compact materializes the overlay into a fresh normalized CSR Graph —
// via the same counting-sort skeleton the static builders use — rebases
// the overlay onto it (pending edits drain into the new base), and
// returns it. The version stamp is preserved, and the result is cached:
// compacting twice without an intervening mutation returns the same
// *Graph, so downstream consumers can use pointer identity as a cheap
// "nothing changed" test.
func (d *Delta) Compact() *Graph {
	if d.compacted != nil {
		return d.compacted
	}
	n := len(d.labels)
	base := d.base
	offsets, flat, m := buildCSR(n, func(pair func(u, v int)) {
		for u := 0; u < len(base.labels); u++ {
			for _, w := range base.Neighbors(u) {
				if u < w && !d.del[[2]int{u, w}] {
					pair(u, w)
				}
			}
		}
		for _, e := range d.insList {
			pair(e[0], e[1])
		}
	})
	g := &Graph{
		offsets: offsets,
		edges:   flat,
		labels:  append([]int64(nil), d.labels...),
		m:       m,
	}
	d.base = g
	d.insPos = make(map[[2]int]int)
	d.insList = nil
	d.del = make(map[[2]int]bool)
	d.insAdj = make(map[int][]int)
	d.degDelta = make(map[int]int)
	d.m = m
	d.compacted = g
	return g
}
