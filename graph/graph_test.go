package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return FromEdges(n, edges)
}

func cycle(n int) *Graph {
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return FromEdges(n, edges)
}

func complete(n int) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return FromEdges(n, edges)
}

func randomGraph(n int, p float64, rng *rand.Rand) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return FromEdges(n, edges)
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.IsConnected() {
		t.Fatal("empty graph must not be connected")
	}
	if v, _ := g.MinDegreeVertex(); v != -1 {
		t.Fatalf("MinDegreeVertex on empty graph = %d, want -1", v)
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("MaxDegree on empty graph = %d", g.MaxDegree())
	}
}

func TestSingleVertex(t *testing.T) {
	g := FromEdges(1, nil)
	if !g.IsConnected() {
		t.Fatal("single vertex must be connected")
	}
	if got := g.ConnectedComponents(); len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("components = %v", got)
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(10, 20)
	b.AddEdge(20, 10) // duplicate, reversed
	b.AddEdge(10, 20) // duplicate
	b.AddEdge(10, 10) // self-loop
	b.AddEdge(20, 30)
	g := b.Build()
	if g.NumVertices() != 3 {
		t.Fatalf("n = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatalf("unexpected adjacency: %v %v %v", g.Neighbors(0), g.Neighbors(1), g.Neighbors(2))
	}
	if g.Label(0) != 10 || g.Label(1) != 20 || g.Label(2) != 30 {
		t.Fatalf("labels = %v", g.Labels())
	}
}

func TestFromEdgesPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	FromEdges(2, [][2]int{{0, 5}})
}

func TestDegreesAndStats(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	if g.Degree(0) != 3 || g.Degree(3) != 1 {
		t.Fatalf("degrees: %d %d", g.Degree(0), g.Degree(3))
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if v, d := g.MinDegreeVertex(); v != 3 || d != 1 {
		t.Fatalf("MinDegreeVertex = (%d,%d)", v, d)
	}
	if got := g.AverageDegree(); got != 2.0 {
		t.Fatalf("AverageDegree = %v", got)
	}
}

func TestHasEdgeSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(30, 0.2, rng)
	for u := 0; u < g.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			if g.HasEdge(u, v) != g.HasEdge(v, u) {
				t.Fatalf("asymmetric HasEdge(%d,%d)", u, v)
			}
		}
		if g.HasEdge(u, u) {
			t.Fatalf("self-loop reported at %d", u)
		}
	}
}

func TestAdjacencySortedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(50, 0.15, rng)
	sub := g.InducedSubgraph([]int{40, 3, 17, 25, 8, 2, 33})
	for _, gr := range []*Graph{g, sub, gr(sub)} {
		for v := 0; v < gr.NumVertices(); v++ {
			if !sort.IntsAreSorted(gr.Neighbors(v)) {
				t.Fatalf("adjacency of %d not sorted: %v", v, gr.Neighbors(v))
			}
		}
	}
}

func gr(g *Graph) *Graph { return g.Clone() }

func TestCommonNeighborCount(t *testing.T) {
	g := FromEdges(6, [][2]int{{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 5}})
	if got := g.CommonNeighborCount(0, 1, 0); got != 2 {
		t.Fatalf("common(0,1) = %d, want 2", got)
	}
	if got := g.CommonNeighborCount(0, 1, 1); got != 1 {
		t.Fatalf("common(0,1,limit 1) = %d, want 1", got)
	}
	if got := g.CommonNeighborCount(4, 5, 0); got != 0 {
		t.Fatalf("common(4,5) = %d, want 0", got)
	}
}

func TestInducedSubgraphLabels(t *testing.T) {
	g := complete(5)
	sub := g.InducedSubgraph([]int{4, 1, 3})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("sub = %v", sub)
	}
	want := []int64{4, 1, 3}
	if !reflect.DeepEqual(sub.Labels(), want) {
		t.Fatalf("labels = %v, want %v", sub.Labels(), want)
	}
	// Nested induction keeps the original labels.
	sub2 := sub.InducedSubgraph([]int{2, 0})
	if sub2.Label(0) != 3 || sub2.Label(1) != 4 {
		t.Fatalf("nested labels = %v", sub2.Labels())
	}
	if !sub2.HasEdge(0, 1) {
		t.Fatal("edge (3,4) lost in nested induction")
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate vertices")
		}
	}()
	complete(4).InducedSubgraph([]int{1, 1})
}

func TestSpanningSubgraph(t *testing.T) {
	g := complete(4)
	sp := g.SpanningSubgraph([][2]int{{0, 1}, {1, 2}, {2, 2}, {0, 1}})
	if sp.NumVertices() != 4 {
		t.Fatalf("n = %d", sp.NumVertices())
	}
	if sp.NumEdges() != 2 {
		t.Fatalf("m = %d", sp.NumEdges())
	}
	if sp.Label(3) != g.Label(3) {
		t.Fatal("labels not preserved")
	}
}

func TestRemoveVertices(t *testing.T) {
	g := cycle(6)
	sub, kept := g.RemoveVertices(map[int]bool{0: true, 3: true})
	if sub.NumVertices() != 4 {
		t.Fatalf("n = %d", sub.NumVertices())
	}
	if sub.IsConnected() {
		t.Fatal("cycle minus two opposite vertices must be disconnected")
	}
	if len(kept) != 4 {
		t.Fatalf("kept = %v", kept)
	}
}

func TestRemoveEdges(t *testing.T) {
	g := cycle(5)
	h := g.RemoveEdges([][2]int{{1, 0}, {2, 3}})
	if h.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3", h.NumEdges())
	}
	if h.HasEdge(0, 1) || h.HasEdge(2, 3) {
		t.Fatal("removed edge still present")
	}
	if !h.HasEdge(1, 2) {
		t.Fatal("unrelated edge dropped")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles and an isolated vertex.
	g := FromEdges(7, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if !reflect.DeepEqual(comps[0], []int{0, 1, 2}) ||
		!reflect.DeepEqual(comps[1], []int{3, 4, 5}) ||
		!reflect.DeepEqual(comps[2], []int{6}) {
		t.Fatalf("components = %v", comps)
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(5)
	d := g.BFSDistances(0)
	if !reflect.DeepEqual(d, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("distances = %v", d)
	}
	// Disconnected vertex gets -1.
	g2 := FromEdges(3, [][2]int{{0, 1}})
	if d := g2.BFSDistances(0); d[2] != -1 {
		t.Fatalf("distances = %v", d)
	}
}

func TestEccentricity(t *testing.T) {
	if e := path(6).Eccentricity(0); e != 5 {
		t.Fatalf("path ecc = %d", e)
	}
	if e := path(6).Eccentricity(3); e != 3 {
		t.Fatalf("path mid ecc = %d", e)
	}
	if e := complete(5).Eccentricity(2); e != 1 {
		t.Fatalf("complete ecc = %d", e)
	}
}

func TestConnectedAvoiding(t *testing.T) {
	g := cycle(6)
	if !g.ConnectedAvoiding(map[int]bool{0: true}) {
		t.Fatal("cycle minus one vertex stays connected")
	}
	if g.ConnectedAvoiding(map[int]bool{0: true, 3: true}) {
		t.Fatal("cycle minus opposite vertices disconnects")
	}
	if g.ConnectedAvoiding(map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true}) {
		t.Fatal("no vertices left counts as disconnected")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := cycle(4)
	c := g.Clone()
	if c.NumVertices() != 4 || c.NumEdges() != 4 {
		t.Fatalf("clone = %v", c)
	}
	c.edges[0] = 99
	if g.edges[0] == 99 {
		t.Fatal("clone shares adjacency storage")
	}
}

func TestEdges(t *testing.T) {
	g := complete(4)
	es := g.Edges(nil)
	if len(es) != 6 {
		t.Fatalf("edges = %v", es)
	}
	for _, e := range es {
		if e[0] >= e[1] {
			t.Fatalf("edge not canonical: %v", e)
		}
	}
}

func TestLabelIndex(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(100, 200)
	b.AddEdge(200, 300)
	g := b.Build()
	idx := g.LabelIndex()
	for v := 0; v < g.NumVertices(); v++ {
		if idx[g.Label(v)] != v {
			t.Fatalf("label index mismatch at %d", v)
		}
	}
	if g.IndexOfLabel(200) != 1 || g.IndexOfLabel(999) != -1 {
		t.Fatal("IndexOfLabel wrong")
	}
}

func TestBytesAccounting(t *testing.T) {
	small := path(2)
	big := complete(50)
	if small.Bytes() >= big.Bytes() {
		t.Fatalf("Bytes not monotone: %d vs %d", small.Bytes(), big.Bytes())
	}
	if small.Bytes() <= 0 {
		t.Fatal("Bytes must be positive for non-empty graph")
	}
}

// Property: the induced subgraph of a random vertex subset has exactly the
// edges with both endpoints inside the subset.
func TestInducedSubgraphProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(5+r.Intn(20), 0.3, r)
		var vs []int
		for v := 0; v < g.NumVertices(); v++ {
			if r.Float64() < 0.5 {
				vs = append(vs, v)
			}
		}
		sub := g.InducedSubgraph(vs)
		want := 0
		for i, u := range vs {
			for j := i + 1; j < len(vs); j++ {
				if g.HasEdge(u, vs[j]) {
					want++
					if !sub.HasEdge(i, j) {
						return false
					}
				} else if sub.HasEdge(i, j) {
					return false
				}
			}
		}
		return sub.NumEdges() == want
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: handshake lemma — the sum of degrees is 2m.
func TestHandshakeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(3+r.Intn(40), 0.25, r)
		sum := 0
		for v := 0; v < g.NumVertices(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: components partition the vertex set.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(2+r.Intn(30), 0.08, r)
		seen := make(map[int]bool)
		total := 0
		for _, comp := range g.ConnectedComponents() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
			total += len(comp)
		}
		return total == g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphByLabels(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(100, 200)
	b.AddEdge(200, 300)
	b.AddEdge(300, 100)
	b.AddEdge(300, 400)
	g := b.Build()
	sub := g.InducedSubgraphByLabels([]int64{100, 300, 400, 999, 100})
	if sub.NumVertices() != 3 {
		t.Fatalf("n = %d, want 3 (unknown and duplicate labels ignored)", sub.NumVertices())
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", sub.NumEdges())
	}
	idx := sub.LabelIndex()
	if !sub.HasEdge(idx[100], idx[300]) || !sub.HasEdge(idx[300], idx[400]) {
		t.Fatal("induced edges wrong")
	}
}
