package graph

import "sort"

// InducedSubgraph returns the subgraph induced by the given vertex ids.
// Vertices are renumbered 0..len(vs)-1 in the order given; labels carry
// over, so identity is preserved across nested inductions. Duplicate ids in
// vs are rejected by panic (they would corrupt the renumbering).
func (g *Graph) InducedSubgraph(vs []int) *Graph {
	remap := make(map[int]int, len(vs))
	labels := make([]int64, len(vs))
	for i, v := range vs {
		if _, dup := remap[v]; dup {
			panic("graph: duplicate vertex in InducedSubgraph")
		}
		remap[v] = i
		labels[i] = g.labels[v]
	}
	adj := make([][]int, len(vs))
	m := 0
	for i, v := range vs {
		var nbrs []int
		for _, w := range g.adj[v] {
			if j, ok := remap[w]; ok {
				nbrs = append(nbrs, j)
			}
		}
		// Source lists are sorted by old id; renumbering is not monotone,
		// so re-sort.
		adj[i] = nbrs
		m += len(nbrs)
	}
	sg := &Graph{adj: adj, labels: labels, m: m / 2}
	sortAdjacency(sg.adj)
	return sg
}

// InducedSubgraphByLabels returns the subgraph induced by the vertices
// with the given labels, ignoring labels not present in the graph. Useful
// for re-extracting a component (e.g. a community returned by an
// enumeration) from the original graph.
func (g *Graph) InducedSubgraphByLabels(labels []int64) *Graph {
	idx := g.LabelIndex()
	vs := make([]int, 0, len(labels))
	seen := make(map[int]bool, len(labels))
	for _, l := range labels {
		if v, ok := idx[l]; ok && !seen[v] {
			seen[v] = true
			vs = append(vs, v)
		}
	}
	return g.InducedSubgraph(vs)
}

// SpanningSubgraph returns a graph on the same vertex set (same ids, same
// labels) containing exactly the given edges. Edges must reference valid
// vertices; duplicates and self-loops are dropped.
func (g *Graph) SpanningSubgraph(edges [][2]int) *Graph {
	adj := make([][]int, len(g.adj))
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	m := normalize(adj)
	labels := append([]int64(nil), g.labels...)
	return &Graph{adj: adj, labels: labels, m: m}
}

// RemoveVertices returns the subgraph induced by all vertices not in the
// set, along with the slice of kept original ids (parallel to the new
// numbering).
func (g *Graph) RemoveVertices(remove map[int]bool) (*Graph, []int) {
	kept := make([]int, 0, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		if !remove[v] {
			kept = append(kept, v)
		}
	}
	return g.InducedSubgraph(kept), kept
}

// RemoveEdges returns a graph on the same vertex set with the given edges
// removed. Each edge may be listed in either orientation.
func (g *Graph) RemoveEdges(edges [][2]int) *Graph {
	drop := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		drop[[2]int{u, v}] = true
	}
	adj := make([][]int, len(g.adj))
	m := 0
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if !drop[[2]int{a, b}] {
				adj[u] = append(adj[u], v)
				m++
			}
		}
	}
	labels := append([]int64(nil), g.labels...)
	return &Graph{adj: adj, labels: labels, m: m / 2}
}

func sortAdjacency(adj [][]int) {
	for _, nbrs := range adj {
		sort.Ints(nbrs)
	}
}
