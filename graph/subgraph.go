package graph

// InducedSubgraph returns the subgraph induced by the given vertex ids.
// Vertices are renumbered 0..len(vs)-1 in the order given; labels carry
// over, so identity is preserved across nested inductions. Duplicate ids in
// vs are rejected by panic (they would corrupt the renumbering).
//
// Callers extracting many subgraphs in a loop should reuse a Scratch via
// InducedSubgraphScratch to amortize the renumbering buffers.
func (g *Graph) InducedSubgraph(vs []int) *Graph {
	// A fresh Scratch zeroes two parent-sized arrays; when the subset is
	// far smaller than the parent that dominates the cost of the
	// extraction itself, so renumber through a map instead.
	if 8*len(vs) < g.NumVertices() {
		return g.inducedSubgraphMap(vs)
	}
	var s Scratch
	return g.InducedSubgraphScratch(vs, &s)
}

// inducedSubgraphMap is the extraction path for subsets far smaller than
// the parent: O(len(vs)) auxiliary space instead of O(parent n).
func (g *Graph) inducedSubgraphMap(vs []int) *Graph {
	remap := make(map[int]int, len(vs))
	labels := make([]int64, len(vs))
	ascending := true
	prev := -1
	for i, v := range vs {
		if _, dup := remap[v]; dup {
			panic("graph: duplicate vertex in InducedSubgraph")
		}
		remap[v] = i
		labels[i] = g.labels[v]
		if v < prev {
			ascending = false
		}
		prev = v
	}
	offsets := make([]int, len(vs)+1)
	for i, v := range vs {
		count := 0
		for _, w := range g.edges[g.offsets[v]:g.offsets[v+1]] {
			if _, ok := remap[w]; ok {
				count++
			}
		}
		offsets[i+1] = count
	}
	for i := 0; i < len(vs); i++ {
		offsets[i+1] += offsets[i]
	}
	edges := make([]int, offsets[len(vs)])
	for i, v := range vs {
		out := offsets[i]
		for _, w := range g.edges[g.offsets[v]:g.offsets[v+1]] {
			if j, ok := remap[w]; ok {
				edges[out] = j
				out++
			}
		}
	}
	sg := &Graph{offsets: offsets, edges: edges, labels: labels, m: offsets[len(vs)] / 2}
	if !ascending {
		sg.sortRuns()
	}
	return sg
}

// InducedSubgraphByLabels returns the subgraph induced by the vertices
// with the given labels, ignoring labels not present in the graph. Useful
// for re-extracting a component (e.g. a community returned by an
// enumeration) from the original graph.
func (g *Graph) InducedSubgraphByLabels(labels []int64) *Graph {
	idx := g.LabelIndex()
	vs := make([]int, 0, len(labels))
	seen := make(map[int]bool, len(labels))
	for _, l := range labels {
		if v, ok := idx[l]; ok && !seen[v] {
			seen[v] = true
			vs = append(vs, v)
		}
	}
	return g.InducedSubgraph(vs)
}

// SpanningSubgraph returns a graph on the same vertex set (same ids, same
// labels) containing exactly the given edges. Edges must reference valid
// vertices; duplicates and self-loops are dropped.
func (g *Graph) SpanningSubgraph(edges [][2]int) *Graph {
	offsets, flat, m := buildCSR(g.NumVertices(), func(pair func(u, v int)) {
		for _, e := range edges {
			if e[0] == e[1] {
				continue
			}
			pair(e[0], e[1])
		}
	})
	labels := append([]int64(nil), g.labels...)
	return &Graph{offsets: offsets, edges: flat, labels: labels, m: m}
}

// RemoveVertices returns the subgraph induced by all vertices not in the
// set, along with the slice of kept original ids (parallel to the new
// numbering).
func (g *Graph) RemoveVertices(remove map[int]bool) (*Graph, []int) {
	kept := make([]int, 0, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		if !remove[v] {
			kept = append(kept, v)
		}
	}
	return g.InducedSubgraph(kept), kept
}

// RemoveEdges returns a graph on the same vertex set with the given edges
// removed. Each edge may be listed in either orientation.
func (g *Graph) RemoveEdges(edges [][2]int) *Graph {
	drop := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		drop[[2]int{u, v}] = true
	}
	n := g.NumVertices()
	offsets := make([]int, n+1)
	flat := make([]int, 0, 2*g.m)
	for u := 0; u < n; u++ {
		offsets[u] = len(flat)
		for _, v := range g.Neighbors(u) {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if !drop[[2]int{a, b}] {
				flat = append(flat, v)
			}
		}
	}
	offsets[n] = len(flat)
	labels := append([]int64(nil), g.labels...)
	return &Graph{offsets: offsets, edges: flat, labels: labels, m: len(flat) / 2}
}
