package graph

import "fmt"

// CSRBuilder assembles a Graph directly into CSR form from two passes over
// an edge stream, without ever materializing an intermediate edge slice:
// the counting pass (CountEdge) sizes every vertex's run, then the
// placement pass (PlaceEdge) writes each endpoint straight into its final
// slot. Between the passes, BeginPlacement performs the only two large
// allocations (offsets and the flat edge array). This is the construction
// path for streaming ingestion of multi-million-edge files, where holding
// a [][2]int edge list alongside the graph would double peak memory.
//
// Vertices are interned in first-mention order of the counting pass,
// matching Builder, so a CSRBuilder-built graph is identical to a
// Builder-built graph over the same stream. Self-loops are dropped by both
// passes; duplicate edges are dropped by Build.
type CSRBuilder struct {
	index   map[int64]int
	labels  []int64
	deg     []int // counting pass: per-vertex degree; placement pass: write cursor
	offsets []int
	edges   []int
	placing bool
	counted int // edges accepted by the counting pass
	placed  int // edges accepted by the placement pass
}

// NewCSRBuilder returns an empty CSRBuilder in its counting pass.
func NewCSRBuilder() *CSRBuilder {
	return &CSRBuilder{index: make(map[int64]int, 1024)}
}

func (b *CSRBuilder) intern(l int64) int {
	if v, ok := b.index[l]; ok {
		return v
	}
	v := len(b.labels)
	b.index[l] = v
	b.labels = append(b.labels, l)
	b.deg = append(b.deg, 0)
	return v
}

// InternVertex assigns the next vertex id to label l (a no-op for labels
// already seen) during the counting pass. Generators use it to fix the
// id order up front — e.g. community blocks contiguous in id space, so
// CSR neighbor runs stay local — instead of inheriting the first-mention
// order of a randomized edge stream. Isolated vertices can be added the
// same way.
func (b *CSRBuilder) InternVertex(l int64) int {
	if b.placing {
		panic("graph: InternVertex after BeginPlacement")
	}
	return b.intern(l)
}

// CountEdge records one undirected edge during the counting pass.
// Self-loops are dropped, matching Builder.AddEdge.
func (b *CSRBuilder) CountEdge(lu, lv int64) {
	if b.placing {
		panic("graph: CountEdge after BeginPlacement")
	}
	if lu == lv {
		return
	}
	u := b.intern(lu)
	v := b.intern(lv)
	b.deg[u]++
	b.deg[v]++
	b.counted++
}

// NumVertices returns the number of vertices interned so far.
func (b *CSRBuilder) NumVertices() int { return len(b.labels) }

// BeginPlacement ends the counting pass: it allocates the CSR arrays sized
// by the counted degrees and switches the builder to the placement pass.
func (b *CSRBuilder) BeginPlacement() {
	if b.placing {
		panic("graph: BeginPlacement called twice")
	}
	n := len(b.labels)
	b.offsets = make([]int, n+1)
	for v := 0; v < n; v++ {
		b.offsets[v+1] = b.offsets[v] + b.deg[v]
	}
	b.edges = make([]int, b.offsets[n])
	copy(b.deg, b.offsets[:n]) // deg becomes the per-vertex write cursor
	b.placing = true
}

// PlaceEdge writes one undirected edge into its counted slots during the
// placement pass. It fails if the edge stream diverged from the counting
// pass: an endpoint never interned, or more edges than were counted.
func (b *CSRBuilder) PlaceEdge(lu, lv int64) error {
	if !b.placing {
		return fmt.Errorf("graph: PlaceEdge before BeginPlacement")
	}
	if lu == lv {
		return nil
	}
	u, ok := b.index[lu]
	if !ok {
		return fmt.Errorf("graph: placement pass saw uncounted vertex %d", lu)
	}
	v, ok := b.index[lv]
	if !ok {
		return fmt.Errorf("graph: placement pass saw uncounted vertex %d", lv)
	}
	if b.deg[u] >= b.offsets[u+1] {
		return fmt.Errorf("graph: placement pass overflows vertex %d (stream changed between passes?)", lu)
	}
	if b.deg[v] >= b.offsets[v+1] {
		return fmt.Errorf("graph: placement pass overflows vertex %d (stream changed between passes?)", lv)
	}
	b.edges[b.deg[u]] = v
	b.deg[u]++
	b.edges[b.deg[v]] = u
	b.deg[v]++
	b.placed++
	return nil
}

// Build normalizes the placed edges (sorting runs, dropping duplicates)
// into a Graph. It fails if the placement pass delivered fewer edges than
// the counting pass promised. The builder must not be used afterwards.
func (b *CSRBuilder) Build() (*Graph, error) {
	if !b.placing {
		return nil, fmt.Errorf("graph: Build before BeginPlacement")
	}
	if b.placed != b.counted {
		return nil, fmt.Errorf("graph: placement pass delivered %d edges, counting pass saw %d", b.placed, b.counted)
	}
	flat, m := normalizeCSR(b.offsets, b.edges)
	g := &Graph{offsets: b.offsets, edges: flat, labels: b.labels, m: m}
	b.index, b.labels, b.deg, b.offsets, b.edges = nil, nil, nil, nil, nil
	return g, nil
}
