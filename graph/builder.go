package graph

// Builder accumulates labeled edges and produces a normalized Graph.
// Vertices are created on first mention (by AddEdge or AddVertex) and are
// numbered in first-mention order. Duplicate edges and self-loops are
// silently dropped at Build time, matching how raw edge lists (e.g. SNAP
// exports) are normally cleaned.
//
// Internally the Builder keeps a flat endpoint list instead of per-vertex
// adjacency slices, so accumulation costs amortized O(1) per edge with no
// per-vertex allocation, and Build assembles the CSR arrays with one
// counting-sort pass.
type Builder struct {
	index  map[int64]int
	labels []int64
	eu, ev []int // endpoints of the accumulated edges (parallel slices)
}

// NewBuilder returns a Builder with capacity hints for n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{
		index:  make(map[int64]int, n),
		labels: make([]int64, 0, n),
	}
}

// AddVertex ensures a vertex labeled l exists and returns its id.
func (b *Builder) AddVertex(l int64) int {
	if v, ok := b.index[l]; ok {
		return v
	}
	v := len(b.labels)
	b.index[l] = v
	b.labels = append(b.labels, l)
	return v
}

// AddEdge records the undirected edge between the vertices labeled lu and lv.
// Self-loops are ignored.
func (b *Builder) AddEdge(lu, lv int64) {
	if lu == lv {
		return
	}
	u := b.AddVertex(lu)
	v := b.AddVertex(lv)
	b.eu = append(b.eu, u)
	b.ev = append(b.ev, v)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.labels) }

// Build normalizes the accumulated data into a Graph. The Builder must not
// be used afterwards.
func (b *Builder) Build() *Graph {
	offsets, flat, m := buildCSR(len(b.labels), func(pair func(u, v int)) {
		for i := range b.eu {
			pair(b.eu[i], b.ev[i])
		}
	})
	g := &Graph{offsets: offsets, edges: flat, labels: b.labels, m: m}
	b.eu, b.ev, b.labels, b.index = nil, nil, nil, nil
	return g
}
