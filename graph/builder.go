package graph

// Builder accumulates labeled edges and produces a normalized Graph.
// Vertices are created on first mention (by AddEdge or AddVertex) and are
// numbered in first-mention order. Duplicate edges and self-loops are
// silently dropped at Build time, matching how raw edge lists (e.g. SNAP
// exports) are normally cleaned.
type Builder struct {
	index  map[int64]int
	labels []int64
	adj    [][]int
}

// NewBuilder returns a Builder with capacity hints for n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{
		index:  make(map[int64]int, n),
		labels: make([]int64, 0, n),
		adj:    make([][]int, 0, n),
	}
}

// AddVertex ensures a vertex labeled l exists and returns its id.
func (b *Builder) AddVertex(l int64) int {
	if v, ok := b.index[l]; ok {
		return v
	}
	v := len(b.labels)
	b.index[l] = v
	b.labels = append(b.labels, l)
	b.adj = append(b.adj, nil)
	return v
}

// AddEdge records the undirected edge between the vertices labeled lu and lv.
// Self-loops are ignored.
func (b *Builder) AddEdge(lu, lv int64) {
	if lu == lv {
		return
	}
	u := b.AddVertex(lu)
	v := b.AddVertex(lv)
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.labels) }

// Build normalizes the accumulated data into a Graph. The Builder must not
// be used afterwards.
func (b *Builder) Build() *Graph {
	m := normalize(b.adj)
	g := &Graph{adj: b.adj, labels: b.labels, m: m}
	b.adj, b.labels, b.index = nil, nil, nil
	return g
}
