package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// checkCSRInvariants verifies the structural contract of the CSR layout:
// monotone offsets, sorted duplicate-free runs, symmetry, and no
// self-loops.
func checkCSRInvariants(t *testing.T, g *Graph) {
	t.Helper()
	offsets, edges := g.Adjacency()
	n := g.NumVertices()
	if len(offsets) != n+1 && !(n == 0 && offsets == nil) {
		t.Fatalf("offsets length %d, want %d", len(offsets), n+1)
	}
	total := 0
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			t.Fatalf("offsets not monotone at %d", v)
		}
		run := edges[offsets[v]:offsets[v+1]]
		total += len(run)
		prev := -1
		for _, w := range run {
			if w <= prev {
				t.Fatalf("run of %d not strictly ascending: %v", v, run)
			}
			if w == v {
				t.Fatalf("self-loop survived at %d", v)
			}
			if w < 0 || w >= n {
				t.Fatalf("neighbor %d of %d out of range", w, v)
			}
			if !g.HasEdge(w, v) {
				t.Fatalf("edge (%d,%d) not symmetric", v, w)
			}
			prev = w
		}
	}
	if total != 2*g.NumEdges() {
		t.Fatalf("entry count %d != 2m = %d", total, 2*g.NumEdges())
	}
}

func TestCSRInvariantsAcrossConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var edges [][2]int
	const n = 60
	for i := 0; i < 400; i++ {
		edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)}) // dups + self-loops
	}
	g := FromEdges(n, edges)
	checkCSRInvariants(t, g)

	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(int64(e[0]), int64(e[1]))
	}
	fromBuilder := b.Build()
	checkCSRInvariants(t, fromBuilder)
	if fromBuilder.NumEdges() != g.NumEdges() {
		t.Fatalf("builder m=%d, FromEdges m=%d", fromBuilder.NumEdges(), g.NumEdges())
	}

	vs := rng.Perm(n)[:n/2]
	checkCSRInvariants(t, g.InducedSubgraph(vs))
	checkCSRInvariants(t, g.SpanningSubgraph(edges[:100]))
	checkCSRInvariants(t, g.RemoveEdges(edges[:50]))
	checkCSRInvariants(t, g.Clone())
}

func TestCSRBuilderMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	type edge struct{ u, v int64 }
	edges := make([]edge, 500)
	for i := range edges {
		edges[i] = edge{rng.Int63n(100), rng.Int63n(100)}
	}

	b := NewBuilder(100)
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	want := b.Build()

	cb := NewCSRBuilder()
	for _, e := range edges {
		cb.CountEdge(e.u, e.v)
	}
	cb.BeginPlacement()
	for _, e := range edges {
		if err := cb.PlaceEdge(e.u, e.v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cb.Build()
	if err != nil {
		t.Fatal(err)
	}

	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape %v vs %v", got, want)
	}
	for v := 0; v < want.NumVertices(); v++ {
		if got.Label(v) != want.Label(v) {
			t.Fatalf("label mismatch at %d: %d vs %d", v, got.Label(v), want.Label(v))
		}
		a, bN := got.Neighbors(v), want.Neighbors(v)
		if len(a) != len(bN) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != bN[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
	checkCSRInvariants(t, got)
}

func TestCSRBuilderStreamDivergence(t *testing.T) {
	cb := NewCSRBuilder()
	cb.CountEdge(1, 2)
	cb.BeginPlacement()
	if err := cb.PlaceEdge(1, 3); err == nil {
		t.Fatal("placement of uncounted vertex must fail")
	}

	cb = NewCSRBuilder()
	cb.CountEdge(1, 2)
	cb.BeginPlacement()
	if err := cb.PlaceEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := cb.PlaceEdge(1, 2); err == nil {
		t.Fatal("placing more edges than counted must fail")
	}

	cb = NewCSRBuilder()
	cb.CountEdge(1, 2)
	cb.CountEdge(2, 3)
	cb.BeginPlacement()
	if err := cb.PlaceEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Build(); err == nil {
		t.Fatal("short placement pass must fail Build")
	}
}

func TestInducedSubgraphScratchReuse(t *testing.T) {
	g := benchGraph(300, 0.05, 21)
	var s Scratch
	rng := rand.New(rand.NewSource(22))
	for round := 0; round < 20; round++ {
		vs := rng.Perm(300)[:50+rng.Intn(200)]
		got := g.InducedSubgraphScratch(vs, &s)
		want := g.InducedSubgraph(vs)
		if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
			t.Fatalf("round %d: scratch %v vs fresh %v", round, got, want)
		}
		checkCSRInvariants(t, got)
		for v := 0; v < got.NumVertices(); v++ {
			if got.Label(v) != want.Label(v) {
				t.Fatalf("round %d: label mismatch at %d", round, v)
			}
		}
	}
}

// TestInducedSubgraphAllocs is the allocation-regression guard for the
// overlapped-partition hot path: one extraction must cost a constant
// number of allocations (labels, offsets, edges — plus the warm-up-free
// scratch), not one per vertex as the slice-of-slices layout did.
func TestInducedSubgraphAllocs(t *testing.T) {
	g := benchGraph(2000, 0.01, 1)
	vs := make([]int, 0, 1000)
	for v := 0; v < 1000; v++ {
		vs = append(vs, v*2)
	}
	var s Scratch
	g.InducedSubgraphScratch(vs, &s) // warm the scratch
	withScratch := testing.AllocsPerRun(20, func() {
		g.InducedSubgraphScratch(vs, &s)
	})
	if withScratch > 4 {
		t.Fatalf("scratch extraction allocates %.0f times, want <= 4", withScratch)
	}
	fresh := testing.AllocsPerRun(20, func() {
		g.InducedSubgraph(vs)
	})
	if fresh > 7 {
		t.Fatalf("fresh extraction allocates %.0f times, want <= 7", fresh)
	}
}

// TestBuilderBuildAllocs guards the single-allocation construction of
// Build: the CSR assembly itself may allocate only the offsets and edge
// arrays (plus the Graph header).
func TestBuilderBuildAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	type edge struct{ u, v int64 }
	edges := make([]edge, 20000)
	for i := range edges {
		edges[i] = edge{rng.Int63n(5000), rng.Int63n(5000)}
	}
	allocs := testing.AllocsPerRun(5, func() {
		b := NewBuilder(5000)
		for _, e := range edges {
			b.AddEdge(e.u, e.v)
		}
		b.Build()
	})
	// Builder accumulation (map + labels + endpoint slices with amortized
	// doubling) plus the three Build allocations; the slice-of-slices
	// layout cost ~47k allocations on this input.
	if allocs > 100 {
		t.Fatalf("builder path allocates %.0f times, want <= 100", allocs)
	}
}

func TestAdjacencySharedView(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	offsets, edges := g.Adjacency()
	if len(offsets) != 6 {
		t.Fatalf("offsets len %d", len(offsets))
	}
	for v := 0; v < 5; v++ {
		run := edges[offsets[v]:offsets[v+1]]
		nbrs := g.Neighbors(v)
		if len(run) != len(nbrs) {
			t.Fatalf("vertex %d: flat run %v vs Neighbors %v", v, run, nbrs)
		}
		for i := range run {
			if run[i] != nbrs[i] {
				t.Fatalf("vertex %d: flat run %v vs Neighbors %v", v, run, nbrs)
			}
		}
	}
}

func TestNeighborsAppendSafe(t *testing.T) {
	// Appending to a Neighbors slice must never clobber the next vertex's
	// run (the subslice is capacity-capped).
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	before := append([]int(nil), g.Neighbors(2)...)
	_ = append(g.Neighbors(1), 99)
	after := g.Neighbors(2)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("append through Neighbors corrupted the shared edge array")
		}
	}
}

func TestInducedSubgraphAscendingFastPath(t *testing.T) {
	// Ascending vs shuffled vertex orders must agree up to renumbering:
	// compare adjacency by label.
	g := benchGraph(120, 0.08, 31)
	vs := make([]int, 0, 60)
	for v := 0; v < 120; v += 2 {
		vs = append(vs, v)
	}
	asc := g.InducedSubgraph(vs)
	shuffled := append([]int(nil), vs...)
	rand.New(rand.NewSource(32)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	shuf := g.InducedSubgraph(shuffled)
	checkCSRInvariants(t, asc)
	checkCSRInvariants(t, shuf)
	if asc.NumEdges() != shuf.NumEdges() {
		t.Fatalf("m=%d vs %d", asc.NumEdges(), shuf.NumEdges())
	}
	edgeSet := func(sg *Graph) map[[2]int64]bool {
		set := map[[2]int64]bool{}
		for _, e := range sg.Edges(nil) {
			a, b := sg.Label(e[0]), sg.Label(e[1])
			if a > b {
				a, b = b, a
			}
			set[[2]int64{a, b}] = true
		}
		return set
	}
	sa, sb := edgeSet(asc), edgeSet(shuf)
	if len(sa) != len(sb) {
		t.Fatal("edge sets differ")
	}
	for e := range sa {
		if !sb[e] {
			t.Fatalf("edge %v missing from shuffled extraction", e)
		}
	}
	// The ascending extraction must preserve sorted runs without help.
	offsets, edges := asc.Adjacency()
	for v := 0; v < asc.NumVertices(); v++ {
		if !sort.IntsAreSorted(edges[offsets[v]:offsets[v+1]]) {
			t.Fatalf("ascending fast path left run of %d unsorted", v)
		}
	}
}
