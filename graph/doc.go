// Package graph provides the undirected simple-graph substrate used by all
// k-VCC algorithms: compact adjacency-list storage, label tracking across
// subgraph operations, traversals, and connected components.
//
// A Graph has vertices identified by contiguous ints 0..N-1. Every vertex
// additionally carries an int64 label. Labels preserve vertex identity when
// subgraphs are carved out of larger graphs: the overlapped partition at
// the heart of KVCC-ENUM (Algorithm 1, Section 4 of the paper) repeatedly
// induces subgraphs and duplicates cut vertices on both sides of a
// partition, so the label is the only stable name for a vertex across
// recursion levels — and the reason two k-VCCs can report overlapping
// vertex sets (Property 1: any two k-VCCs share fewer than k vertices).
//
// Invariants maintained by every constructor in this package:
//   - adjacency lists are sorted ascending,
//   - no self-loops,
//   - no duplicate edges,
//   - the graph is simple and undirected ((u,v) stored in both lists).
//
// Sorted adjacency makes neighborhood intersection a linear merge, which
// the sweep optimizations (Section 5) and the metrics package rely on.
//
// Construct graphs with Builder (labels assigned on first use), FromEdges
// (contiguous vertices), or the subgraph operations InducedSubgraph,
// InducedSubgraphByLabels, and SpanningSubgraph; parse them from edge
// lists with the graphio package. A Graph is immutable once built; to
// mutate one over time, wrap it in a Delta — a versioned overlay of edge
// insertions, deletions and new vertices whose Compact method materializes
// fresh immutable snapshots.
package graph
