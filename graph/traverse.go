package graph

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted ascending. Components are ordered by their smallest vertex.
// One labeling pass plus one ascending layout scan produce both orderings
// for free — no per-component sort.
func (g *Graph) ConnectedComponents() [][]int {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	comp := make([]int, n) // component id per vertex, ids by ascending seed
	for i := range comp {
		comp[i] = -1
	}
	stack := make([]int, 0, n)
	var sizes []int
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(sizes)
		comp[s] = id
		size := 1
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = id
					size++
					stack = append(stack, w)
				}
			}
		}
		sizes = append(sizes, size)
	}
	// Lay the members out in one flat array: an ascending vertex scan
	// fills every component in ascending order, and capacity-capped
	// subslices keep the returned sets independent.
	members := make([]int, n)
	starts := make([]int, len(sizes)+1)
	for i, sz := range sizes {
		starts[i+1] = starts[i] + sz
	}
	cursor := append([]int(nil), starts[:len(sizes)]...)
	for v := 0; v < n; v++ {
		id := comp[v]
		members[cursor[id]] = v
		cursor[id]++
	}
	comps := make([][]int, len(sizes))
	for i := range comps {
		comps[i] = members[starts[i]:starts[i+1]:starts[i+1]]
	}
	return comps
}

// IsConnected reports whether the graph is connected. The empty graph is
// not connected; a single vertex is.
func (g *Graph) IsConnected() bool {
	n := g.NumVertices()
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	seen[0] = true
	stack := []int{0}
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// BFSDistances returns the unweighted shortest-path distance from src to
// every vertex (-1 for unreachable vertices).
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Eccentricity returns the greatest BFS distance from src to any reachable
// vertex.
func (g *Graph) Eccentricity(src int) int {
	ecc := 0
	for _, d := range g.BFSDistances(src) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// ConnectedAvoiding reports whether the graph with the vertices in avoid
// removed is still connected (considering only the remaining vertices; a
// remainder of zero vertices counts as disconnected, one vertex as
// connected). This is the defensive check used to validate vertex cuts.
func (g *Graph) ConnectedAvoiding(avoid map[int]bool) bool {
	n := g.NumVertices()
	remaining := n - len(avoid)
	if remaining <= 0 {
		return false
	}
	start := -1
	for v := 0; v < n; v++ {
		if !avoid[v] {
			start = v
			break
		}
	}
	seen := make([]bool, n)
	seen[start] = true
	stack := []int{start}
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if !seen[w] && !avoid[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == remaining
}
