package graph

import "sort"

// Scratch holds the renumbering buffers used by repeated subgraph
// extraction so that a hot loop (k-core peeling, overlapped partition)
// reuses one pair of arrays instead of rebuilding a map per call. The
// buffers are generation-stamped: resetting between calls is O(1), not
// O(n). The zero value is ready to use. A Scratch is not safe for
// concurrent use; give each worker its own.
type Scratch struct {
	remap []int   // remap[old] = new vertex id, valid iff stamp[old] == gen
	stamp []int64 // generation stamp per original vertex
	gen   int64

	// BFS state for BFSDistancesScratch.
	dist  []int
	queue []int
}

// grow ensures the buffers cover n original vertices. Growing replaces the
// arrays, which implicitly invalidates all stamps.
func (s *Scratch) grow(n int) {
	if len(s.remap) < n {
		s.remap = make([]int, n)
		s.stamp = make([]int64, n)
		s.gen = 0
	}
}

// InducedSubgraphScratch is InducedSubgraph using s for the old→new vertex
// renumbering, so one extraction costs exactly three allocations (offsets,
// edges, labels) once the scratch has warmed up to the parent graph size.
func (g *Graph) InducedSubgraphScratch(vs []int, s *Scratch) *Graph {
	s.grow(g.NumVertices())
	s.gen++
	labels := make([]int64, len(vs))
	ascending := true
	prev := -1
	for i, v := range vs {
		if s.stamp[v] == s.gen {
			panic("graph: duplicate vertex in InducedSubgraph")
		}
		s.stamp[v] = s.gen
		s.remap[v] = i
		labels[i] = g.labels[v]
		if v < prev {
			ascending = false
		}
		prev = v
	}
	offsets := make([]int, len(vs)+1)
	for i, v := range vs {
		count := 0
		for _, w := range g.edges[g.offsets[v]:g.offsets[v+1]] {
			if s.stamp[w] == s.gen {
				count++
			}
		}
		offsets[i+1] = count
	}
	for i := 0; i < len(vs); i++ {
		offsets[i+1] += offsets[i]
	}
	edges := make([]int, offsets[len(vs)])
	for i, v := range vs {
		out := offsets[i]
		for _, w := range g.edges[g.offsets[v]:g.offsets[v+1]] {
			if s.stamp[w] == s.gen {
				edges[out] = s.remap[w]
				out++
			}
		}
	}
	sg := &Graph{offsets: offsets, edges: edges, labels: labels, m: offsets[len(vs)] / 2}
	if !ascending {
		// Source runs are sorted by old id; a non-monotone renumbering
		// breaks that order, so re-sort each run. When vs is ascending the
		// renumbering is monotone and the runs are already sorted.
		sg.sortRuns()
	}
	return sg
}

func (g *Graph) sortRuns() {
	for v := 0; v < len(g.labels); v++ {
		sort.Ints(g.edges[g.offsets[v]:g.offsets[v+1]])
	}
}

// BFSDistancesScratch is BFSDistances using s's buffers: the returned
// distance slice is owned by the scratch and valid only until the next
// BFSDistancesScratch call with the same s. Hot loops that order vertices
// by distance once per component use this to avoid one O(n) allocation
// per call.
func (g *Graph) BFSDistancesScratch(src int, s *Scratch) []int {
	n := g.NumVertices()
	if cap(s.dist) < n {
		s.dist = make([]int, n)
	}
	dist := s.dist[:n]
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	if cap(s.queue) < n {
		s.queue = make([]int, 0, n)
	}
	queue := append(s.queue[:0], src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	s.queue = queue
	return dist
}
