package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected simple graph. Construct one with a
// Builder, FromEdges, or by inducing a subgraph of an existing Graph.
// The zero value is an empty graph.
type Graph struct {
	adj    [][]int // sorted adjacency lists
	labels []int64 // labels[v] = stable external identity of vertex v
	m      int     // number of undirected edges
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Label returns the stable label of vertex v.
func (g *Graph) Label(v int) int64 { return g.labels[v] }

// Labels returns the label slice indexed by vertex. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Labels() []int64 { return g.labels }

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	// Search the shorter list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	list := g.adj[a]
	i := sort.SearchInts(list, b)
	return i < len(list) && list[i] == b
}

// IndexOfLabel returns the vertex whose label is l, or -1 if absent.
// It is a linear scan; callers needing many lookups should build a map once.
func (g *Graph) IndexOfLabel(l int64) int {
	for v, lab := range g.labels {
		if lab == l {
			return v
		}
	}
	return -1
}

// LabelIndex returns a map from label to vertex id.
func (g *Graph) LabelIndex() map[int64]int {
	idx := make(map[int64]int, len(g.labels))
	for v, lab := range g.labels {
		idx[lab] = v
	}
	return idx
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// MinDegreeVertex returns the vertex of minimum degree and its degree.
// It returns (-1, 0) for an empty graph.
func (g *Graph) MinDegreeVertex() (v, degree int) {
	if len(g.adj) == 0 {
		return -1, 0
	}
	v = 0
	degree = len(g.adj[0])
	for u := 1; u < len(g.adj); u++ {
		if len(g.adj[u]) < degree {
			v, degree = u, len(g.adj[u])
		}
	}
	return v, degree
}

// AverageDegree returns 2m/n, or 0 for an empty graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// CommonNeighborCount returns |N(u) ∩ N(v)|, stopping early once the count
// reaches limit (limit <= 0 means unbounded). Used by the strong side-vertex
// test (Theorem 8), which only needs to know whether the count reaches k.
func (g *Graph) CommonNeighborCount(u, v, limit int) int {
	a, b := g.adj[u], g.adj[v]
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			if limit > 0 && count >= limit {
				return count
			}
			i++
			j++
		}
	}
	return count
}

// Edges appends every undirected edge (u,v) with u < v to dst and returns it.
func (g *Graph) Edges(dst [][2]int) [][2]int {
	if dst == nil {
		dst = make([][2]int, 0, g.m)
	}
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				dst = append(dst, [2]int{u, v})
			}
		}
	}
	return dst
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	adj := make([][]int, len(g.adj))
	for v, nbrs := range g.adj {
		adj[v] = append([]int(nil), nbrs...)
	}
	labels := append([]int64(nil), g.labels...)
	return &Graph{adj: adj, labels: labels, m: g.m}
}

// Bytes returns a structural estimate of the memory held by the graph:
// adjacency entries, slice headers and labels. It is deterministic (unlike
// runtime heap measurements) and is the unit reported by the Fig. 12 memory
// experiment.
func (g *Graph) Bytes() int64 {
	const (
		intSize    = 8
		headerSize = 24
	)
	b := int64(len(g.adj)) * (headerSize + intSize) // slice headers + labels
	b += int64(2*g.m) * intSize                     // adjacency entries
	return b
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumVertices(), g.NumEdges())
}

// FromEdges builds a graph with vertices 0..n-1 (labels equal to vertex ids)
// from an edge list. Self-loops and duplicate edges are discarded. It panics
// if an endpoint is outside [0,n).
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddVertex(int64(v)) // ensure id == label for all n vertices
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) outside [0,%d)", e[0], e[1], n))
		}
		b.AddEdge(int64(e[0]), int64(e[1]))
	}
	return b.Build()
}

// normalize sorts adjacency lists and removes duplicates; it returns the
// resulting edge count.
func normalize(adj [][]int) int {
	m := 0
	for v := range adj {
		nbrs := adj[v]
		sort.Ints(nbrs)
		out := nbrs[:0]
		prev := -1
		for _, w := range nbrs {
			if w != prev && w != v {
				out = append(out, w)
				prev = w
			}
		}
		adj[v] = out
		m += len(out)
	}
	return m / 2
}
