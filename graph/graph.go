package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected simple graph in compressed sparse row
// (CSR) form: one offsets array and one shared flat neighbor array, so a
// graph costs three heap allocations regardless of vertex count and a
// subgraph extraction never allocates per vertex. Construct one with a
// Builder, CSRBuilder, FromEdges, or by inducing a subgraph of an existing
// Graph. The zero value is an empty graph.
type Graph struct {
	offsets []int   // len n+1; the adjacency of v is edges[offsets[v]:offsets[v+1]]
	edges   []int   // flat neighbor storage; every per-vertex run is sorted
	labels  []int64 // labels[v] = stable external identity of vertex v
	m       int     // number of undirected edges

	// external marks arrays adopted from an externally managed region
	// (a read-only mmap); advisor, when set, receives paging hints for
	// that region. See paging.go. Both are zero for heap-built graphs,
	// including every subgraph extracted from an external one.
	external bool
	advisor  Advisor
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.offsets[v+1] - g.offsets[v] }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// a subslice of the graph's shared edge array and must not be modified.
func (g *Graph) Neighbors(v int) []int {
	return g.edges[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]]
}

// Adjacency exposes the raw CSR arrays: offsets of length n+1 and the flat
// neighbor array it indexes (the adjacency of v is
// edges[offsets[v]:offsets[v+1]]). Both slices are shared with the graph
// and must not be modified. Flat access lets algorithm packages index
// per-edge side arrays (edge ids, marks) without nested slices.
func (g *Graph) Adjacency() (offsets, edges []int) { return g.offsets, g.edges }

// Label returns the stable label of vertex v.
func (g *Graph) Label(v int) int64 { return g.labels[v] }

// Labels returns the label slice indexed by vertex. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Labels() []int64 { return g.labels }

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	// Search the shorter list.
	a, b := u, v
	if g.Degree(a) > g.Degree(b) {
		a, b = b, a
	}
	list := g.Neighbors(a)
	i := sort.SearchInts(list, b)
	return i < len(list) && list[i] == b
}

// IndexOfLabel returns the vertex whose label is l, or -1 if absent.
// It is a linear scan; callers needing many lookups should build a map once.
func (g *Graph) IndexOfLabel(l int64) int {
	for v, lab := range g.labels {
		if lab == l {
			return v
		}
	}
	return -1
}

// LabelIndex returns a map from label to vertex id.
func (g *Graph) LabelIndex() map[int64]int {
	idx := make(map[int64]int, len(g.labels))
	for v, lab := range g.labels {
		idx[lab] = v
	}
	return idx
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < len(g.labels); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// MinDegreeVertex returns the vertex of minimum degree and its degree.
// It returns (-1, 0) for an empty graph.
func (g *Graph) MinDegreeVertex() (v, degree int) {
	if len(g.labels) == 0 {
		return -1, 0
	}
	v = 0
	degree = g.Degree(0)
	for u := 1; u < len(g.labels); u++ {
		if d := g.Degree(u); d < degree {
			v, degree = u, d
		}
	}
	return v, degree
}

// AverageDegree returns 2m/n, or 0 for an empty graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.labels) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.labels))
}

// CommonNeighborCount returns |N(u) ∩ N(v)|, stopping early once the count
// reaches limit (limit <= 0 means unbounded). Used by the strong side-vertex
// test (Theorem 8), which only needs to know whether the count reaches k.
func (g *Graph) CommonNeighborCount(u, v, limit int) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			if limit > 0 && count >= limit {
				return count
			}
			i++
			j++
		}
	}
	return count
}

// Edges appends every undirected edge (u,v) with u < v to dst and returns it.
func (g *Graph) Edges(dst [][2]int) [][2]int {
	if dst == nil {
		dst = make([][2]int, 0, g.m)
	}
	for u := 0; u < len(g.labels); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				dst = append(dst, [2]int{u, v})
			}
		}
	}
	return dst
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	return &Graph{
		offsets: append([]int(nil), g.offsets...),
		edges:   append([]int(nil), g.edges...),
		labels:  append([]int64(nil), g.labels...),
		m:       g.m,
	}
}

// Bytes returns a structural estimate of the memory held by the graph:
// CSR offsets, adjacency entries and labels. It is deterministic (unlike
// runtime heap measurements) and is the unit reported by the Fig. 12 memory
// experiment.
func (g *Graph) Bytes() int64 {
	const intSize = 8
	b := int64(len(g.labels)) * (2 * intSize) // labels + offsets entries
	b += int64(2*g.m) * intSize               // adjacency entries
	return b
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumVertices(), g.NumEdges())
}

// FromEdges builds a graph with vertices 0..n-1 (labels equal to vertex ids)
// from an edge list. Self-loops and duplicate edges are discarded. It panics
// if an endpoint is outside [0,n).
func FromEdges(n int, edges [][2]int) *Graph {
	labels := make([]int64, n)
	for v := range labels {
		labels[v] = int64(v)
	}
	offsets, flat, m := buildCSR(n, func(pair func(u, v int)) {
		for _, e := range edges {
			if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
				panic(fmt.Sprintf("graph: edge (%d,%d) outside [0,%d)", e[0], e[1], n))
			}
			if e[0] == e[1] {
				continue
			}
			pair(e[0], e[1])
		}
	})
	return &Graph{offsets: offsets, edges: flat, labels: labels, m: m}
}

// buildCSR assembles normalized CSR arrays for n vertices with one
// counting-sort: count degrees, prefix-sum into offsets, place both
// endpoints of every pair using offsets as the write cursor, then
// normalize (sort runs, drop duplicates and self-loops, compact). forEach
// must replay the identical (u,v) sequence on both invocations; it is the
// one construction skeleton shared by Builder.Build, FromEdges and
// SpanningSubgraph.
func buildCSR(n int, forEach func(pair func(u, v int))) (offsets, edges []int, m int) {
	offsets = make([]int, n+1)
	forEach(func(u, v int) {
		offsets[u+1]++
		offsets[v+1]++
	})
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	edges = make([]int, offsets[n])
	forEach(func(u, v int) {
		edges[offsets[u]] = v
		offsets[u]++
		edges[offsets[v]] = u
		offsets[v]++
	})
	restoreOffsets(offsets)
	edges, m = normalizeCSR(offsets, edges)
	return offsets, edges, m
}

// restoreOffsets undoes the fill-cursor mutation: after a counting-sort
// fill that advanced offsets[v] to the end of v's run, every offsets[v]
// holds the correct value of offsets[v+1], so one overlapping copy shifts
// the array back into place.
func restoreOffsets(offsets []int) {
	n := len(offsets) - 1
	copy(offsets[1:], offsets[:n])
	offsets[0] = 0
}

// normalizeCSR sorts each vertex's run, removes duplicates and self-loops
// in place (compacting the shared edge array), rewrites offsets, and
// returns the compacted edge array and the undirected edge count.
func normalizeCSR(offsets, edges []int) ([]int, int) {
	n := len(offsets) - 1
	write := 0
	for v := 0; v < n; v++ {
		run := edges[offsets[v]:offsets[v+1]]
		sort.Ints(run)
		newStart := write
		prev := -1
		for _, w := range run {
			if w != prev && w != v {
				edges[write] = w
				write++
				prev = w
			}
		}
		offsets[v] = newStart
	}
	offsets[n] = write
	return edges[:write], write / 2
}
