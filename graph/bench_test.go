package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return FromEdges(n, edges)
}

// BenchmarkInducedSubgraph measures the operation at the heart of the
// overlapped partition.
func BenchmarkInducedSubgraph(b *testing.B) {
	g := benchGraph(2000, 0.01, 1)
	vs := make([]int, 0, 1000)
	for v := 0; v < 1000; v++ {
		vs = append(vs, v*2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.InducedSubgraph(vs)
	}
}

// BenchmarkInducedSubgraphScratch is the extraction as the enumeration hot
// loop runs it: renumbering buffers reused across calls.
func BenchmarkInducedSubgraphScratch(b *testing.B) {
	g := benchGraph(2000, 0.01, 1)
	vs := make([]int, 0, 1000)
	for v := 0; v < 1000; v++ {
		vs = append(vs, v*2)
	}
	var s Scratch
	g.InducedSubgraphScratch(vs, &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.InducedSubgraphScratch(vs, &s)
	}
}

// BenchmarkConnectedComponents measures the per-level component split.
func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(5000, 0.001, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}

// BenchmarkBFSDistances measures the phase-1 ordering pass.
func BenchmarkBFSDistances(b *testing.B) {
	g := benchGraph(5000, 0.002, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSDistances(0)
	}
}

// BenchmarkCommonNeighborCount measures the Theorem 8 inner loop.
func BenchmarkCommonNeighborCount(b *testing.B) {
	g := benchGraph(500, 0.2, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CommonNeighborCount(i%400, (i+37)%400, 10)
	}
}

// BenchmarkBuilder measures graph construction from scratch.
func BenchmarkBuilder(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	type edge struct{ u, v int64 }
	edges := make([]edge, 50000)
	for i := range edges {
		edges[i] = edge{rng.Int63n(10000), rng.Int63n(10000)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(10000)
		for _, e := range edges {
			bl.AddEdge(e.u, e.v)
		}
		bl.Build()
	}
}
