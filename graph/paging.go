package graph

// Paging hooks for graphs whose CSR arrays live in an externally managed
// region — in practice the store package's read-only mmap of a snapshot
// file. A heap-built Graph ignores everything here; an adopted one can be
// given an Advisor, and the enumeration layers volunteer their access
// intent (sequential reduction scan, next component's range) through the
// Advise methods without knowing whether anything is listening. The
// advisor translates those hints into madvise calls on the mapping.
//
// The second half of the contract is Materialize: the flow engines issue
// random, repeated reads (residual BFS/DFS over split-graph arcs), the
// exact access pattern that thrashes a cold page cache. Every consumer
// that hands a graph to a flow network therefore materializes it first —
// subgraph extraction already copies into fresh heap arrays, and the
// whole-graph-survives-reduction case calls Materialize explicitly — so
// the shared mapping is only ever read by sequential scans.

// Advisor receives paging hints for an adopted Graph. Implementations
// must be safe for concurrent use: parallel enumeration workers may
// advise overlapping ranges. Hints are best-effort — they never affect
// results, only page-cache behavior.
type Advisor interface {
	// Sequential hints that the adjacency array is about to be scanned
	// once in ascending vertex order (a k-core reduction pass).
	Sequential()
	// WillNeed hints that the adjacency runs of vertices lo..hi
	// (inclusive) are about to be read — the byte range backing
	// edges[offsets[lo]:offsets[hi+1]] should be faulted in ahead of the
	// scan.
	WillNeed(lo, hi int)
}

// External reports whether the graph's CSR arrays were adopted from an
// externally managed region (AdoptCSR) rather than built on the heap.
// Subgraphs extracted from an external graph are heap-built and report
// false: extraction is exactly the copy-out boundary.
func (g *Graph) External() bool { return g.external }

// SetAdvisor attaches a paging advisor to an adopted graph. It is a no-op
// on heap-built graphs: there is no mapping to advise. Call it once,
// before the graph is shared; the advisor itself must be concurrency-safe.
func (g *Graph) SetAdvisor(a Advisor) {
	if g.external {
		g.advisor = a
	}
}

// AdviseSequential forwards the sequential-scan hint to the advisor, if
// any. Safe (and free) on any graph.
func (g *Graph) AdviseSequential() {
	if g.advisor != nil {
		g.advisor.Sequential()
	}
}

// AdviseWillNeed forwards a vertex-range readahead hint to the advisor,
// if any. lo..hi is inclusive and is clamped by the advisor; out-of-range
// values are tolerated. Safe (and free) on any graph.
func (g *Graph) AdviseWillNeed(lo, hi int) {
	if g.advisor != nil {
		g.advisor.WillNeed(lo, hi)
	}
}

// Materialize returns g itself for heap-built graphs, and a heap copy for
// adopted (externally backed) graphs. It is the copy-out step for code
// about to issue random repeated reads — flow networks, principally —
// that must not fault on the shared mapping; the copy also detaches the
// result's lifetime from the mapping's.
func (g *Graph) Materialize() *Graph {
	if !g.external {
		return g
	}
	return g.Clone()
}
