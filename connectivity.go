package kvcc

import (
	"kvcc/graph"
	"kvcc/internal/flow"
)

// VertexConnectivity returns κ(g) per the paper's Definition 1: the
// minimum number of vertices whose removal disconnects g or leaves a
// single vertex. Disconnected graphs (and graphs with fewer than two
// vertices) have connectivity 0; the complete graph K_n has n-1.
func VertexConnectivity(g *graph.Graph) int {
	k, _ := flow.GlobalVertexConnectivity(g, g.NumVertices())
	return k
}

// MinimumVertexCut returns a minimum vertex cut of g, or nil if g is
// complete or has fewer than two vertices (no cut exists). For a
// disconnected graph the cut is empty but non-nil.
func MinimumVertexCut(g *graph.Graph) []int {
	k, cut := flow.GlobalVertexConnectivity(g, g.NumVertices())
	if cut == nil && k > 0 {
		return nil
	}
	return cut
}

// LocalConnectivity returns κ(u,v,g): the size of a minimum u-v vertex
// cut. Adjacent or identical vertices cannot be separated; the function
// then returns n-1 as a finite stand-in for the paper's +infinity.
func LocalConnectivity(g *graph.Graph, u, v int) int {
	n := g.NumVertices()
	if n < 2 {
		return 0
	}
	if u == v || g.HasEdge(u, v) {
		return n - 1
	}
	return flow.LocalConnectivity(g, u, v, n)
}

// IsKVertexConnected reports whether g is k-vertex connected per
// Definition 2: more than k vertices and κ(g) >= k.
func IsKVertexConnected(g *graph.Graph, k int) bool {
	if g.NumVertices() <= k {
		return false
	}
	if k <= 0 {
		return g.IsConnected()
	}
	kappa, _ := flow.GlobalVertexConnectivity(g, k)
	return kappa >= k
}
