package kvcc_test

import (
	"sort"
	"testing"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
)

func TestEnumerateContaining(t *testing.T) {
	// Three disjoint K5s plus noise: query a vertex of the second clique.
	var edges [][2]int
	for c := 0; c < 3; c++ {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				edges = append(edges, [2]int{c*5 + i, c*5 + j})
			}
		}
	}
	edges = append(edges, [2]int{4, 5}, [2]int{9, 10}) // weak chain links
	g := graph.FromEdges(15, edges)

	res, err := kvcc.EnumerateContaining(g, 3, []int64{7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 1 {
		t.Fatalf("components = %d, want 1", len(res.Components))
	}
	labels := append([]int64(nil), res.Components[0].Labels()...)
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	want := []int64{5, 6, 7, 8, 9}
	for i, l := range labels {
		if l != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestEnumerateContainingMatchesFull(t *testing.T) {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 6, MinSize: 10, MaxSize: 14, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 3, BridgeEdges: 4,
		NoiseVertices: 80, NoiseDegree: 2, Seed: 55,
	})
	full, err := kvcc.Enumerate(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Components) == 0 {
		t.Skip("no components at this k")
	}
	// Query the first vertex of the largest component: local enumeration
	// must find exactly the full enumeration's components holding it.
	target := full.Components[0].Label(0)
	wantIdx := full.ComponentsContaining(target)

	local, err := kvcc.EnumerateContaining(g, 5, []int64{target})
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Components) != len(wantIdx) {
		t.Fatalf("local found %d components, full enumeration has %d containing %d",
			len(local.Components), len(wantIdx), target)
	}
	for _, c := range local.Components {
		found := false
		for _, l := range c.Labels() {
			if l == target {
				found = true
			}
		}
		if !found {
			t.Fatal("local result does not contain the queried label")
		}
	}
}

func TestEnumerateContainingAbsentLabel(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	res, err := kvcc.EnumerateContaining(g, 2, []int64{999})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 0 {
		t.Fatalf("absent label should yield no components, got %d", len(res.Components))
	}
}

func TestOverlapGraph(t *testing.T) {
	// Chain of three K6s, consecutive pairs sharing 2 vertices: the
	// overlap graph at k=4 is a path of three meta-vertices.
	var edges [][2]int
	blocks := [][]int{
		{0, 1, 2, 3, 4, 5},
		{4, 5, 6, 7, 8, 9},
		{8, 9, 10, 11, 12, 13},
	}
	for _, c := range blocks {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				edges = append(edges, [2]int{c[i], c[j]})
			}
		}
	}
	g := graph.FromEdges(14, edges)
	res, err := kvcc.Enumerate(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 3 {
		t.Fatalf("components = %d, want 3", len(res.Components))
	}
	og := res.OverlapGraph()
	if og.NumVertices() != 3 {
		t.Fatalf("overlap graph n = %d", og.NumVertices())
	}
	if og.NumEdges() != 2 {
		t.Fatalf("overlap graph m = %d, want 2 (a path)", og.NumEdges())
	}
	degrees := []int{og.Degree(0), og.Degree(1), og.Degree(2)}
	sort.Ints(degrees)
	if degrees[0] != 1 || degrees[2] != 2 {
		t.Fatalf("overlap graph degrees = %v, want path shape", degrees)
	}
}
