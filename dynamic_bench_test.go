package kvcc_test

// Benchmarks for the dynamic layer. BenchmarkIncrementalVsCold is the
// acceptance benchmark of the incremental maintenance path: a single-edge
// edit on a planted community graph must recompute only the k-core
// component containing the edge, so the incremental update beats a cold
// enumeration by roughly the number of untouched communities. The
// comps_reused/op and speedup metrics make that visible in the output.

import (
	"context"
	"testing"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
)

// benchCommunity is the community-structured workload: dense blocks tied
// together only by low-degree noise, so the benchEditK-core splits into
// one connected component per community. That is the regime the
// component-granularity incremental layer targets — reuse happens per
// k-core component, so the blocks must be k-core-disjoint for an edit in
// one to leave the others reusable (blocks chained by shared vertices or
// bridge edges form one connected k-core and would all recompute
// together; see the Dynamic docs).
func benchCommunity(b *testing.B) *graph.Graph {
	b.Helper()
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 12, MinSize: 24, MaxSize: 36, IntraProb: 0.6,
		NoiseVertices: 200, NoiseDegree: 3, Seed: 77,
	})
	return g
}

// benchEditK is chosen so the workload's k-core splits into one
// connected component per planted community (the noise still glues the
// 5-core together; by k=7 the twelve blocks stand alone).
const benchEditK = 7

// toggleEdge alternates inserting and deleting one intra-community edge,
// so every iteration is an effective single-edge edit and the graph
// returns to its base state every second iteration.
func toggleEdge(i int) (ins, del []kvcc.Edge) {
	e := kvcc.Edge{0, 1}
	if i%2 == 0 {
		return nil, []kvcc.Edge{e}
	}
	return []kvcc.Edge{e}, nil
}

// BenchmarkApplyEditsSmall measures one single-edge ApplyEdits round
// trip: overlay mutation, CSR compaction, core-number diff, and the
// incremental re-enumeration of the one affected component.
func BenchmarkApplyEditsSmall(b *testing.B) {
	g := benchCommunity(b)
	d, err := kvcc.NewDynamic(g, benchEditK)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var reused, recomputed int64
	for i := 0; i < b.N; i++ {
		ins, del := toggleEdge(i)
		res, err := d.ApplyEdits(ctx, ins, del)
		if err != nil {
			b.Fatal(err)
		}
		reused += res.Stats.ComponentsReused
		recomputed += res.Stats.ComponentsRecomputed
	}
	b.ReportMetric(float64(reused)/float64(b.N), "comps_reused/op")
	b.ReportMetric(float64(recomputed)/float64(b.N), "comps_recomputed/op")
}

// BenchmarkIncrementalVsCold runs the same single-edge edit two ways —
// incrementally through a Dynamic handle, and as a from-scratch
// enumeration of the edited snapshot — and reports the speedup. The
// incremental path must recompute only the affected component
// (comps_recomputed/op ≈ 1) while the cold path re-enumerates every
// community.
func BenchmarkIncrementalVsCold(b *testing.B) {
	g := benchCommunity(b)

	var incNS, coldNS float64

	b.Run("incremental", func(b *testing.B) {
		d, err := kvcc.NewDynamic(g, benchEditK)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		var reused, recomputed int64
		for i := 0; i < b.N; i++ {
			ins, del := toggleEdge(i)
			res, err := d.ApplyEdits(ctx, ins, del)
			if err != nil {
				b.Fatal(err)
			}
			reused += res.Stats.ComponentsReused
			recomputed += res.Stats.ComponentsRecomputed
		}
		b.StopTimer()
		incNS = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(reused)/float64(b.N), "comps_reused/op")
		b.ReportMetric(float64(recomputed)/float64(b.N), "comps_recomputed/op")
	})

	b.Run("cold", func(b *testing.B) {
		// The same edit applied to a fresh snapshot, then enumerated from
		// scratch — what a static server would do per update.
		d := graph.NewDelta(g)
		d.DeleteEdge(0, 1)
		edited := d.Compact()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap := edited
			if i%2 == 1 {
				snap = g
			}
			if _, err := kvcc.Enumerate(snap, benchEditK); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		coldNS = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if incNS > 0 {
			b.ReportMetric(coldNS/incNS, "speedup_vs_incremental")
		}
	})
}
