package graphio

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kvcc/graph"
)

// graphsEqual reports whether two graphs are structurally identical:
// same vertex numbering, same labels, same adjacency.
func graphsEqual(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(v) != b.Label(v) {
			return false
		}
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestStreamEdgeListMatchesReadEdgeList(t *testing.T) {
	inputs := []string{
		"1 2\n2 3\n3 1\n",
		"# comment\n\n10\t20\n20\t30 ignored extra fields\n",
		"5 5\n1 2\n2 1\n1 2\n",             // self-loop + duplicates both orientations
		"9223372036854775807 -42\n-42 0\n", // 64-bit labels, negative ids
		"7 8\r\n8 9\r\n",                   // CRLF endings
		"",
	}
	for i, input := range inputs {
		want, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			t.Fatalf("case %d: one-pass: %v", i, err)
		}
		got, err := StreamEdgeList(strings.NewReader(input))
		if err != nil {
			t.Fatalf("case %d: streaming: %v", i, err)
		}
		if !graphsEqual(want, got) {
			t.Fatalf("case %d: streaming graph %v differs from one-pass %v", i, got, want)
		}
	}
}

func TestStreamEdgeListMalformed(t *testing.T) {
	cases := []struct {
		name, input string
		line        string // substring the error must cite
	}{
		{"one-field", "1 2\n3\n", "line 2"},
		{"non-numeric", "a b\n", "line 1"},
		{"bad-second", "1 x\n", "line 1"},
		{"overflow", "1 9223372036854775808\n", "line 1"},
		{"bare-sign", "1 -\n", "line 1"},
	}
	for _, tc := range cases {
		_, err := StreamEdgeList(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.line) {
			t.Errorf("%s: error should cite %s: %v", tc.name, tc.line, err)
		}
		// The one-pass reader must reject the same inputs.
		if _, err := ReadEdgeList(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: one-pass reader accepted what streaming rejected", tc.name)
		}
	}
}

func TestStreamEdgeListOversizedLine(t *testing.T) {
	// Two good lines, then a line past the scanner's buffer: the error
	// must cite the offending line and the limit, not bufio's bare
	// "token too long".
	input := "1 2\n2 3\n# " + strings.Repeat("x", maxLineBytes+1) + "\n"
	_, err := StreamEdgeList(strings.NewReader(input))
	if err == nil {
		t.Fatal("expected error for an oversized line")
	}
	for _, want := range []string{"line 3", fmt.Sprintf("%d-byte", maxLineBytes)} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should cite %q: %v", want, err)
		}
	}
}

func TestStreamEdgeListDuplicatesAndSelfLoops(t *testing.T) {
	input := "1 1\n1 2\n2 1\n1 2\n2 3\n3 3\n"
	g, err := StreamEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d, want 3 and 2", g.NumVertices(), g.NumEdges())
	}
	idx := g.LabelIndex()
	if !g.HasEdge(idx[1], idx[2]) || !g.HasEdge(idx[2], idx[3]) || g.HasEdge(idx[1], idx[3]) {
		t.Fatal("wrong edge set after dedup")
	}
}

func TestStreamEdgeList64BitLabels(t *testing.T) {
	const big = int64(1) << 62
	input := fmt.Sprintf("%d %d\n%d 7\n", big, big+1, big+1)
	g, err := StreamEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	idx := g.LabelIndex()
	if _, ok := idx[big]; !ok {
		t.Fatalf("label %d lost", big)
	}
	if !g.HasEdge(idx[big], idx[big+1]) {
		t.Fatal("64-bit labeled edge lost")
	}
}

func TestStreamEdgeListFileLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-edge ingestion in -short mode")
	}
	// A ring over 200k vertices plus random chords: >= 1M edges total,
	// written with duplicates and comments sprinkled in.
	const n = 200_000
	const chords = 800_000
	path := filepath.Join(t.TempDir(), "big.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	fmt.Fprintln(w, "# synthetic 1M-edge ingestion corpus")
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d\t%d\n", i, (i+1)%n)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < chords; i++ {
		fmt.Fprintf(w, "%d %d\n", rng.Intn(n), rng.Intn(n))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := StreamEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n {
		t.Fatalf("n = %d, want %d", g.NumVertices(), n)
	}
	// Dedup and self-loop dropping make the exact count data-dependent,
	// but the ring alone guarantees n edges and the chords push it near
	// n + chords.
	if g.NumEdges() < n || g.NumEdges() > n+chords {
		t.Fatalf("m = %d outside [%d, %d]", g.NumEdges(), n, n+chords)
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) < 2 {
			t.Fatalf("ring vertex %d degree %d", v, g.Degree(v))
		}
	}
}

// FuzzStreamEdgeList cross-validates the two-pass streaming loader against
// the one-pass builder loader on arbitrary bytes: both must agree on
// accept/reject, and accepted inputs must produce structurally identical
// graphs.
func FuzzStreamEdgeList(f *testing.F) {
	f.Add([]byte("1 2\n2 3\n"))
	f.Add([]byte("# comment\n\n10\t20\n"))
	f.Add([]byte("a b\n"))
	f.Add([]byte("1\n"))
	f.Add([]byte("9223372036854775807 -9223372036854775808\n"))
	f.Add([]byte("1 2 3 4 extra\n"))
	f.Add([]byte("5 5\n1 2\n2 1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		want, errWant := ReadEdgeList(bytes.NewReader(data))
		got, errGot := StreamEdgeList(bytes.NewReader(data))
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("loaders disagree: one-pass err=%v, streaming err=%v", errWant, errGot)
		}
		if errWant != nil {
			return
		}
		if !graphsEqual(want, got) {
			t.Fatalf("streaming graph %v differs from one-pass %v", got, want)
		}
	})
}
