package graphio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"kvcc/graph"
)

// This file is the streaming SNAP/edge-list ingestion path: a buffered,
// tab/space/comment-tolerant scanner feeding graph.CSRBuilder in two
// passes, so a multi-million-edge file is loaded with bounded memory —
// the CSR arrays plus the label intern map — and never materializes an
// intermediate [][2]int edge slice. All loaders in this package share one
// line parser (parseEdgeLine), so the streaming and one-pass paths accept
// byte-identical inputs and build identical graphs.

// maxLineBytes bounds one input line; SNAP exports are two short integers
// per line, so a megabyte is already absurdly generous.
const maxLineBytes = 1024 * 1024

// StreamEdgeList builds a graph from a seekable edge-list stream in two
// passes: the first counts degrees and interns labels, the second places
// every edge directly into its final CSR slot. Peak memory is the finished
// graph plus the label map; no intermediate edge list is ever built.
// Malformed lines (a lone field, a non-integer id, an id overflowing
// int64) are reported as errors with their line number; blank lines and
// #-comments are skipped; self-loops and duplicate edges are dropped as in
// SNAP preprocessing.
func StreamEdgeList(rs io.ReadSeeker) (*graph.Graph, error) {
	b := graph.NewCSRBuilder()
	if err := scanEdges(rs, func(u, v int64) error {
		b.CountEdge(u, v)
		return nil
	}); err != nil {
		return nil, err
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("graphio: rewind for placement pass: %w", err)
	}
	b.BeginPlacement()
	if err := scanEdges(rs, b.PlaceEdge); err != nil {
		return nil, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graphio: input changed between passes: %w", err)
	}
	return g, nil
}

// StreamEdgeListFile loads an edge list from a file path with the two-pass
// streaming reader.
func StreamEdgeListFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return StreamEdgeList(f)
}

// scanEdges drives one pass: it parses every line of r and hands each edge
// to visit. It allocates nothing per line beyond the scanner's one buffer.
func scanEdges(r io.Reader, visit func(u, v int64) error) error {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, maxLineBytes), maxLineBytes)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		u, v, skip, err := parseEdgeLine(scanner.Bytes(), lineNo)
		if err != nil {
			return err
		}
		if skip {
			continue
		}
		if err := visit(u, v); err != nil {
			return err
		}
	}
	if err := scanner.Err(); err != nil {
		// bufio's bare "token too long" names neither the offending line
		// nor the limit; on a multi-gigabyte ingest that is undebuggable.
		// The scanner stopped before consuming the oversized line, so it
		// is the one after the last line counted.
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("graphio: line %d: line exceeds the %d-byte limit", lineNo+1, maxLineBytes)
		}
		return fmt.Errorf("graphio: read: %v", err)
	}
	return nil
}

// parseEdgeLine parses one edge-list line: two whitespace-separated vertex
// ids (any further fields are ignored). It reports skip for blank lines
// and #-comments, and an error for a line with fewer than two fields or a
// field that is not a base-10 int64. Self-loops are NOT filtered here —
// the builders drop them — so both passes of the streaming loader see the
// same edge stream.
func parseEdgeLine(line []byte, lineNo int) (u, v int64, skip bool, err error) {
	f1, rest := nextField(line)
	if len(f1) == 0 || f1[0] == '#' {
		return 0, 0, true, nil
	}
	f2, _ := nextField(rest)
	if len(f2) == 0 {
		return 0, 0, false, fmt.Errorf("graphio: line %d: want two vertex ids, got %q", lineNo, string(line))
	}
	u, ok := parseVertexID(f1)
	if !ok {
		return 0, 0, false, fmt.Errorf("graphio: line %d: bad vertex id %q", lineNo, string(f1))
	}
	v, ok = parseVertexID(f2)
	if !ok {
		return 0, 0, false, fmt.Errorf("graphio: line %d: bad vertex id %q", lineNo, string(f2))
	}
	return u, v, false, nil
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}

// nextField returns the first whitespace-delimited field of b and the
// remainder after it, without allocating.
func nextField(b []byte) (field, rest []byte) {
	i := 0
	for i < len(b) && isSpace(b[i]) {
		i++
	}
	j := i
	for j < len(b) && !isSpace(b[j]) {
		j++
	}
	return b[i:j], b[j:]
}

// parseVertexID parses a base-10 int64 (optional +/- sign) from b without
// allocating, with the same accept set and overflow behaviour as
// strconv.ParseInt(s, 10, 64).
func parseVertexID(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	switch b[0] {
	case '+':
		i++
	case '-':
		neg = true
		i++
	}
	if i == len(b) {
		return 0, false
	}
	limit := uint64(1) << 63 // |MinInt64|; positive max is one less
	if !neg {
		limit--
	}
	var n uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (limit-d)/10 {
			return 0, false // overflow
		}
		n = n*10 + d
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}
