package graphio

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"kvcc/graph"
)

// DOTOptions controls WriteDOT rendering.
type DOTOptions struct {
	// Name is the graph name in the DOT header (default "G").
	Name string
	// Labels maps vertex labels to display names; missing entries render
	// as the numeric label.
	Labels map[int64]string
	// Groups assigns vertices to clusters: Groups[i] is a set of vertex
	// labels rendered as subgraph cluster_i. A vertex appearing in
	// several groups (overlapping k-VCCs) is drawn in the first and
	// highlighted.
	Groups [][]int64
}

// WriteDOT renders g in Graphviz DOT format — the way the paper draws its
// Fig. 14 case study, with each k-VCC as a cluster and shared vertices
// highlighted.
func WriteDOT(w io.Writer, g *graph.Graph, opts DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opts.Name
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "graph %q {\n  node [shape=circle];\n", name)

	display := func(l int64) string {
		if s, ok := opts.Labels[l]; ok && s != "" {
			return s
		}
		return fmt.Sprintf("%d", l)
	}

	// Count group membership so overlap vertices can be highlighted.
	membership := map[int64]int{}
	for _, grp := range opts.Groups {
		for _, l := range grp {
			membership[l]++
		}
	}
	drawn := map[int64]bool{}
	for gi, grp := range opts.Groups {
		fmt.Fprintf(bw, "  subgraph cluster_%d {\n    label=\"group %d\";\n", gi, gi)
		sorted := append([]int64(nil), grp...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, l := range sorted {
			if drawn[l] {
				continue
			}
			drawn[l] = true
			attr := ""
			if membership[l] > 1 {
				attr = ", style=filled, fillcolor=gray"
			}
			fmt.Fprintf(bw, "    %d [label=%q%s];\n", l, display(l), attr)
		}
		fmt.Fprint(bw, "  }\n")
	}
	// Vertices outside every group.
	for v := 0; v < g.NumVertices(); v++ {
		l := g.Label(v)
		if !drawn[l] {
			fmt.Fprintf(bw, "  %d [label=%q];\n", l, display(l))
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fmt.Fprintf(bw, "  %d -- %d;\n", g.Label(u), g.Label(v))
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
