package graphio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"

	"kvcc/graph"
)

// ReadEdgeList parses an edge list from r in one pass. It accumulates the
// edges in a graph.Builder, so peak memory includes the flat endpoint
// list; prefer StreamEdgeList for seekable multi-million-edge inputs,
// which builds the CSR arrays directly. Both accept the same format (see
// parseEdgeLine) and produce identical graphs.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	b := graph.NewBuilder(1024)
	if err := scanEdges(r, func(u, v int64) error {
		b.AddEdge(u, v)
		return nil
	}); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// ReadEdgeListFile loads an edge list from a file path. Regular files are
// seekable, so those go through the two-pass streaming reader and never
// hold an intermediate edge list; anything else a path can name (a FIFO,
// /dev/stdin, a process substitution) cannot rewind and falls back to the
// one-pass reader.
func ReadEdgeListFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil && fi.Mode().IsRegular() {
		return StreamEdgeList(f)
	}
	return ReadEdgeList(f)
}

// WriteEdgeList writes g as an edge list using vertex labels, one edge per
// line, preceded by a summary comment.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices: %d edges: %d\n", g.NumVertices(), g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fmt.Fprintf(bw, "%d\t%d\n", g.Label(u), g.Label(v))
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile writes g to a file path.
func WriteEdgeListFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteComponents writes a set of components: one header line per
// component followed by its sorted vertex labels.
func WriteComponents(w io.Writer, comps []*graph.Graph) error {
	bw := bufio.NewWriter(w)
	for i, c := range comps {
		labels := append([]int64(nil), c.Labels()...)
		sort.Slice(labels, func(a, b int) bool { return labels[a] < labels[b] })
		fmt.Fprintf(bw, "# component %d: %d vertices %d edges\n", i, c.NumVertices(), c.NumEdges())
		for j, l := range labels {
			if j > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprintf(bw, "%d", l)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
