package graphio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"kvcc/graph"
)

// ReadEdgeList parses an edge list from r.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	b := graph.NewBuilder(1024)
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graphio: line %d: want two vertex ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad vertex id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad vertex id %q: %v", lineNo, fields[1], err)
		}
		if u == v {
			continue // self-loop: drop silently like SNAP preprocessing
		}
		b.AddEdge(u, v)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graphio: read: %v", err)
	}
	return b.Build(), nil
}

// ReadEdgeListFile loads an edge list from a file path.
func ReadEdgeListFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes g as an edge list using vertex labels, one edge per
// line, preceded by a summary comment.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices: %d edges: %d\n", g.NumVertices(), g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fmt.Fprintf(bw, "%d\t%d\n", g.Label(u), g.Label(v))
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile writes g to a file path.
func WriteEdgeListFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteComponents writes a set of components: one header line per
// component followed by its sorted vertex labels.
func WriteComponents(w io.Writer, comps []*graph.Graph) error {
	bw := bufio.NewWriter(w)
	for i, c := range comps {
		labels := append([]int64(nil), c.Labels()...)
		sort.Slice(labels, func(a, b int) bool { return labels[a] < labels[b] })
		fmt.Fprintf(bw, "# component %d: %d vertices %d edges\n", i, c.NumVertices(), c.NumEdges())
		for j, l := range labels {
			if j > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprintf(bw, "%d", l)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
