//go:build unix

package graphio

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestReadEdgeListFileNonSeekable guards the fallback for paths that
// cannot rewind: a FIFO must load through the one-pass reader instead of
// failing the streaming loader's seek after consuming the whole stream.
func TestReadEdgeListFileNonSeekable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pipe")
	if err := syscall.Mkfifo(path, 0o600); err != nil {
		t.Skipf("mkfifo: %v", err)
	}
	go func() {
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return
		}
		defer f.Close()
		f.WriteString("1 2\n2 3\n3 1\n")
	}()
	g, err := ReadEdgeListFile(path)
	if err != nil {
		t.Fatalf("FIFO load failed: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("FIFO graph %v, want 3 vertices 3 edges", g)
	}
}
