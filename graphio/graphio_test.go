package graphio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kvcc/gen"
	"kvcc/graph"
)

func TestReadEdgeListBasic(t *testing.T) {
	input := `# a comment
1 2
2	3

# trailing comment
3 1
4 4
`
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d, want 3 and 3 (self-loop dropped)", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"one-field", "1\n"},
		{"non-numeric", "a b\n"},
		{"bad-second", "1 x\n"},
	}
	for _, tc := range cases {
		if _, err := ReadEdgeList(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error should cite the line: %v", tc.name, err)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Fatalf("n = %d", g.NumVertices())
	}
}

func TestRoundTrip(t *testing.T) {
	g := gen.GNM(80, 300, 4)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip: n=%d->%d m=%d->%d",
			g.NumVertices(), back.NumVertices(), g.NumEdges(), back.NumEdges())
	}
	// Same edge set by label.
	idx := back.LabelIndex()
	for _, e := range g.Edges(nil) {
		bu, bv := idx[g.Label(e[0])], idx[g.Label(e[1])]
		if !back.HasEdge(bu, bv) {
			t.Fatalf("edge (%d,%d) lost in roundtrip", g.Label(e[0]), g.Label(e[1]))
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := gen.GNM(40, 100, 9)
	if err := WriteEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("file roundtrip m=%d, want %d", back.NumEdges(), g.NumEdges())
	}
	if _, err := ReadEdgeListFile(filepath.Join(dir, "missing.txt")); !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v", err)
	}
}

func TestWriteComponents(t *testing.T) {
	g1 := gen.GNM(5, 6, 1)
	g2 := gen.GNM(3, 3, 2)
	var buf bytes.Buffer
	if err := WriteComponents(&buf, []*graph.Graph{g1, g2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# component 0:") || !strings.Contains(out, "# component 1:") {
		t.Fatalf("missing headers:\n%s", out)
	}
}
