package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList feeds arbitrary bytes to the parser: it must never
// panic, and whatever parses successfully must survive a write/read
// round-trip unchanged.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("1 2\n2 3\n"))
	f.Add([]byte("# comment\n\n10\t20\n"))
	f.Add([]byte("a b\n"))
	f.Add([]byte("1\n"))
	f.Add([]byte("9223372036854775807 -9223372036854775808\n"))
	f.Add([]byte("1 2 3 4 extra\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf strings.Builder
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write failed on parsed graph: %v", err)
		}
		back, err := ReadEdgeList(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip changed shape: %v -> %v", g, back)
		}
	})
}
