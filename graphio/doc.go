// Package graphio reads and writes graphs in the SNAP-style text
// edge-list format used by the paper's datasets (Table 1): one "u<sep>v"
// pair per line, '#' comments, blank lines ignored. Whitespace (spaces or
// tabs) separates the endpoints. Self-loops and duplicate edges are
// dropped during load, as the paper's preprocessing does, so every loaded
// graph satisfies the graph package's simple-graph invariants.
//
// Reading: ReadEdgeList / ReadEdgeListFile parse into a graph.Graph whose
// vertex labels are the original ids from the file; all results reported
// by the kvcc package refer back to those labels.
//
// Writing: WriteEdgeList round-trips a graph (labels preserved),
// WriteComponents emits an enumeration result as one labeled vertex set
// per component, and WriteDOT renders small graphs for Graphviz.
//
// The kvccd server loads its named graphs through this package
// (Server.LoadGraphFile), as do the kvcc and gengraph commands.
package graphio
