package graphio

import (
	"strings"
	"testing"

	"kvcc/graph"
)

func TestWriteDOTBasic(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	var sb strings.Builder
	if err := WriteDOT(&sb, g, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`graph "G" {`, "0 -- 1;", "1 -- 2;", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "2 -- 1") {
		t.Fatal("edges must be written once in canonical orientation")
	}
}

func TestWriteDOTGroupsAndNames(t *testing.T) {
	// Two triangles sharing vertex 2.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}})
	var sb strings.Builder
	err := WriteDOT(&sb, g, DOTOptions{
		Name:   "casestudy",
		Labels: map[int64]string{0: "alice", 2: "shared"},
		Groups: [][]int64{{0, 1, 2}, {2, 3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"subgraph cluster_0", "subgraph cluster_1",
		`label="alice"`, `label="shared"`,
		"style=filled", // the shared vertex is highlighted
		`graph "casestudy"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The shared vertex must be declared once, in the first cluster.
	if strings.Count(out, `label="shared"`) != 1 {
		t.Fatalf("shared vertex drawn more than once:\n%s", out)
	}
}

func TestWriteDOTUngroupedVertices(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	var sb strings.Builder
	if err := WriteDOT(&sb, g, DOTOptions{Groups: [][]int64{{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `2 [label="2"]`) || !strings.Contains(out, `3 [label="3"]`) {
		t.Fatalf("ungrouped vertices missing:\n%s", out)
	}
}
