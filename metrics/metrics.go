// Package metrics computes the subgraph quality measures used in the
// paper's effectiveness evaluation (Section 6.1): diameter (Eq. 1), edge
// density (Eq. 4), and clustering coefficient (Eqs. 5-6).
package metrics

import (
	"sort"

	"kvcc/graph"
)

// Diameter returns the longest shortest path between any pair of vertices
// (Eq. 1), computed exactly with a BFS from every vertex. Disconnected or
// empty graphs return -1; a single vertex returns 0.
func Diameter(g *graph.Graph) int {
	n := g.NumVertices()
	if n == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < n; v++ {
		reached := 0
		for _, d := range g.BFSDistances(v) {
			if d < 0 {
				return -1 // disconnected
			}
			reached++
			if d > diam {
				diam = d
			}
		}
		if reached != n {
			return -1
		}
	}
	return diam
}

// EdgeDensity returns 2m / (n(n-1)) (Eq. 4): the fraction of possible
// edges present. Graphs with fewer than two vertices have density 0.
func EdgeDensity(g *graph.Graph) float64 {
	n := g.NumVertices()
	if n < 2 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / (float64(n) * float64(n-1))
}

// LocalClustering returns c(u) (Eq. 5): the fraction of pairs of u's
// neighbors that are themselves adjacent. Vertices of degree < 2 have
// local clustering 0.
func LocalClustering(g *graph.Graph, u int) float64 {
	nbrs := g.Neighbors(u)
	d := len(nbrs)
	if d < 2 {
		return 0
	}
	triangles := 0
	for i := 0; i < d; i++ {
		// Count neighbors of nbrs[i] that are also neighbors of u and
		// come after nbrs[i]; sorted adjacency makes this a merge.
		triangles += countAdjacentAfter(g, nbrs, i)
	}
	return float64(triangles) / (float64(d) * float64(d-1) / 2)
}

func countAdjacentAfter(g *graph.Graph, nbrs []int, i int) int {
	a := g.Neighbors(nbrs[i])
	b := nbrs[i+1:]
	count, x, y := 0, 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			count++
			x++
			y++
		}
	}
	return count
}

// ClusteringCoefficient returns C(G) (Eq. 6): the average local
// clustering coefficient over all vertices. The sum runs in vertex-label
// order so the value is a pure function of the labeled graph, not of the
// internal vertex numbering — the same component reached through
// different subgraph-induction chains (direct enumeration vs the
// hierarchy index) must report a bit-identical coefficient.
func ClusteringCoefficient(g *graph.Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return g.Label(order[i]) < g.Label(order[j]) })
	sum := 0.0
	for _, v := range order {
		sum += LocalClustering(g, v)
	}
	return sum / float64(n)
}

// TriangleCount returns the total number of triangles in g.
func TriangleCount(g *graph.Graph) int {
	total := 0
	for u := 0; u < g.NumVertices(); u++ {
		nbrs := g.Neighbors(u)
		for i, v := range nbrs {
			if v < u {
				continue
			}
			// Count w > v adjacent to both u and v.
			_ = i
			total += countCommonAfter(g, u, v)
		}
	}
	return total
}

func countCommonAfter(g *graph.Graph, u, v int) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	count, x, y := 0, 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			if a[x] > v {
				count++
			}
			x++
			y++
		}
	}
	return count
}

// Summary bundles the three quality measures of one subgraph. The JSON
// tags define the wire form used by the kvccd server's metrics option.
type Summary struct {
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Diameter   int     `json:"diameter"`
	Density    float64 `json:"density"`
	Clustering float64 `json:"clustering"`
}

// Summarize computes all measures for one graph.
func Summarize(g *graph.Graph) Summary {
	return Summary{
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Diameter:   Diameter(g),
		Density:    EdgeDensity(g),
		Clustering: ClusteringCoefficient(g),
	}
}

// Averages holds per-component averages over a set of subgraphs, as
// plotted in Figs. 7-9.
type Averages struct {
	Count         int     `json:"count"`
	AvgDiameter   float64 `json:"avg_diameter"`
	AvgDensity    float64 `json:"avg_density"`
	AvgClustering float64 `json:"avg_clustering"`
	AvgSize       float64 `json:"avg_size"`
}

// Average computes the mean quality measures over a component set.
// Components that are disconnected (diameter -1, which cannot happen for
// k-VCC/k-ECC/k-core outputs) are skipped in the diameter average.
func Average(comps []*graph.Graph) Averages {
	a := Averages{Count: len(comps)}
	if len(comps) == 0 {
		return a
	}
	diamCount := 0
	for _, c := range comps {
		if d := Diameter(c); d >= 0 {
			a.AvgDiameter += float64(d)
			diamCount++
		}
		a.AvgDensity += EdgeDensity(c)
		a.AvgClustering += ClusteringCoefficient(c)
		a.AvgSize += float64(c.NumVertices())
	}
	if diamCount > 0 {
		a.AvgDiameter /= float64(diamCount)
	}
	a.AvgDensity /= float64(len(comps))
	a.AvgClustering /= float64(len(comps))
	a.AvgSize /= float64(len(comps))
	return a
}
