package metrics

import (
	"math"
	"math/rand"
	"testing"

	"kvcc/graph"
)

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

func cycle(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return graph.FromEdges(n, edges)
}

func path(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return graph.FromEdges(n, edges)
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDiameter(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path5", path(5), 4},
		{"cycle6", cycle(6), 3},
		{"cycle7", cycle(7), 3},
		{"K4", complete(4), 1},
		{"single", graph.FromEdges(1, nil), 0},
		{"empty", graph.FromEdges(0, nil), -1},
		{"disconnected", graph.FromEdges(3, [][2]int{{0, 1}}), -1},
	}
	for _, tc := range cases {
		if got := Diameter(tc.g); got != tc.want {
			t.Errorf("%s: diameter = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestEdgeDensity(t *testing.T) {
	if d := EdgeDensity(complete(5)); !almostEqual(d, 1.0) {
		t.Errorf("K5 density = %v", d)
	}
	if d := EdgeDensity(cycle(4)); !almostEqual(d, 4.0/6.0) {
		t.Errorf("C4 density = %v", d)
	}
	if d := EdgeDensity(graph.FromEdges(1, nil)); d != 0 {
		t.Errorf("single vertex density = %v", d)
	}
}

func TestLocalClustering(t *testing.T) {
	// Triangle with a pendant on vertex 0.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	if c := LocalClustering(g, 1); !almostEqual(c, 1.0) {
		t.Errorf("c(1) = %v, want 1", c)
	}
	// Vertex 0 has neighbors {1,2,3}; only (1,2) adjacent of 3 pairs.
	if c := LocalClustering(g, 0); !almostEqual(c, 1.0/3.0) {
		t.Errorf("c(0) = %v, want 1/3", c)
	}
	if c := LocalClustering(g, 3); c != 0 {
		t.Errorf("pendant clustering = %v", c)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	if c := ClusteringCoefficient(complete(6)); !almostEqual(c, 1.0) {
		t.Errorf("K6 clustering = %v", c)
	}
	if c := ClusteringCoefficient(cycle(5)); c != 0 {
		t.Errorf("C5 clustering = %v", c)
	}
	if c := ClusteringCoefficient(graph.FromEdges(0, nil)); c != 0 {
		t.Errorf("empty clustering = %v", c)
	}
}

func TestTriangleCount(t *testing.T) {
	if n := TriangleCount(complete(5)); n != 10 {
		t.Errorf("K5 triangles = %d, want 10", n)
	}
	if n := TriangleCount(cycle(6)); n != 0 {
		t.Errorf("C6 triangles = %d, want 0", n)
	}
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	if n := TriangleCount(g); n != 1 {
		t.Errorf("triangle+pendant = %d, want 1", n)
	}
}

// Cross-check: sum of local clustering numerators equals 3 * triangles.
func TestClusteringTriangleConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var edges [][2]int
	n := 30
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	g := graph.FromEdges(n, edges)
	sumTri := 0
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		if d < 2 {
			continue
		}
		sumTri += int(math.Round(LocalClustering(g, v) * float64(d) * float64(d-1) / 2))
	}
	if sumTri != 3*TriangleCount(g) {
		t.Fatalf("local numerators %d != 3*triangles %d", sumTri, 3*TriangleCount(g))
	}
}

func TestDiameterBoundTheorem2(t *testing.T) {
	// Theorem 2: diam <= floor((n-2)/κ) + 1 for a κ-connected graph.
	// For the cycle (κ=2): diam(C_n) = floor(n/2) <= floor((n-2)/2)+1. Tight.
	for n := 4; n <= 12; n++ {
		g := cycle(n)
		bound := (n-2)/2 + 1
		if d := Diameter(g); d > bound {
			t.Fatalf("C%d: diameter %d exceeds Theorem 2 bound %d", n, d, bound)
		}
	}
}

func TestSummarizeAndAverage(t *testing.T) {
	s := Summarize(complete(4))
	if s.Vertices != 4 || s.Edges != 6 || s.Diameter != 1 ||
		!almostEqual(s.Density, 1) || !almostEqual(s.Clustering, 1) {
		t.Fatalf("K4 summary = %+v", s)
	}
	avg := Average([]*graph.Graph{complete(4), cycle(4)})
	if avg.Count != 2 {
		t.Fatalf("count = %d", avg.Count)
	}
	if !almostEqual(avg.AvgDiameter, 1.5) { // (1 + 2) / 2
		t.Fatalf("avg diameter = %v", avg.AvgDiameter)
	}
	if !almostEqual(avg.AvgDensity, (1.0+4.0/6.0)/2) {
		t.Fatalf("avg density = %v", avg.AvgDensity)
	}
	if !almostEqual(avg.AvgSize, 4) {
		t.Fatalf("avg size = %v", avg.AvgSize)
	}
	empty := Average(nil)
	if empty.Count != 0 || empty.AvgDiameter != 0 {
		t.Fatalf("empty average = %+v", empty)
	}
}
