package kvcc_test

import (
	"strings"
	"testing"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
)

func TestValidateAcceptsRealResults(t *testing.T) {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 6, MinSize: 10, MaxSize: 16, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 3, BridgeEdges: 4,
		NoiseVertices: 100, NoiseDegree: 2, Seed: 8,
	})
	for _, k := range []int{3, 5, 7} {
		res, err := kvcc.Enumerate(g, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := kvcc.Validate(g, res); err != nil {
			t.Fatalf("k=%d: valid result rejected: %v", k, err)
		}
	}
}

func TestValidateRejectsCorruptions(t *testing.T) {
	g := complete(8)
	res, err := kvcc.Enumerate(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := kvcc.Validate(g, res); err != nil {
		t.Fatalf("baseline result invalid: %v", err)
	}

	t.Run("nil result", func(t *testing.T) {
		if err := kvcc.Validate(g, nil); err == nil {
			t.Fatal("nil result accepted")
		}
	})
	t.Run("bad k", func(t *testing.T) {
		bad := &kvcc.Result{K: 0, Components: res.Components}
		if err := kvcc.Validate(g, bad); err == nil {
			t.Fatal("k=0 result accepted")
		}
	})
	t.Run("too small component", func(t *testing.T) {
		tri := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
		bad := &kvcc.Result{K: 4, Components: []*graph.Graph{tri}}
		if err := kvcc.Validate(g, bad); err == nil ||
			!strings.Contains(err.Error(), "<= k vertices") {
			t.Fatalf("undersized component accepted: %v", err)
		}
	})
	t.Run("foreign label", func(t *testing.T) {
		b := graph.NewBuilder(6)
		for _, c := range [][]int64{{90, 91, 92, 93, 94}} {
			for i := 0; i < len(c); i++ {
				for j := i + 1; j < len(c); j++ {
					b.AddEdge(c[i], c[j])
				}
			}
		}
		bad := &kvcc.Result{K: 4, Components: []*graph.Graph{b.Build()}}
		if err := kvcc.Validate(g, bad); err == nil ||
			!strings.Contains(err.Error(), "absent from the input") {
			t.Fatalf("foreign labels accepted: %v", err)
		}
	})
	t.Run("not induced", func(t *testing.T) {
		// A 5-cycle inside K8 misses induced chords and is not 4-connected.
		cyc := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
		bad := &kvcc.Result{K: 4, Components: []*graph.Graph{cyc}}
		if err := kvcc.Validate(g, bad); err == nil {
			t.Fatal("non-induced component accepted")
		}
	})
	t.Run("duplicated component", func(t *testing.T) {
		bad := &kvcc.Result{K: 4, Components: []*graph.Graph{
			res.Components[0], res.Components[0],
		}}
		if err := kvcc.Validate(g, bad); err == nil {
			t.Fatal("duplicate components accepted")
		}
	})
	t.Run("too many components", func(t *testing.T) {
		many := make([]*graph.Graph, 0, 5)
		for i := 0; i < 5; i++ {
			many = append(many, res.Components[0])
		}
		bad := &kvcc.Result{K: 4, Components: many}
		if err := kvcc.Validate(g, bad); err == nil ||
			!strings.Contains(err.Error(), "Theorem 6") {
			t.Fatalf("component count bound not enforced: %v", err)
		}
	})
}

func TestValidateOverlapBound(t *testing.T) {
	// Two K6s overlapping in exactly k-1=3 vertices: legal.
	var edges [][2]int
	for _, c := range [][]int{{0, 1, 2, 3, 4, 5}, {3, 4, 5, 6, 7, 8}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				edges = append(edges, [2]int{c[i], c[j]})
			}
		}
	}
	g := graph.FromEdges(9, edges)
	res, err := kvcc.Enumerate(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(res.Components))
	}
	if err := kvcc.Validate(g, res); err != nil {
		t.Fatalf("k-1 overlap rejected: %v", err)
	}
}
