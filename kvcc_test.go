package kvcc_test

import (
	"context"
	"sort"
	"testing"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
)

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

func plantedTestGraph() (*graph.Graph, [][]int64) {
	g, comms := gen.Planted(gen.PlantedConfig{
		Communities: 8, MinSize: 12, MaxSize: 18, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 3, BridgeEdges: 6,
		NoiseVertices: 100, NoiseDegree: 2, Seed: 31,
	})
	return g, comms
}

func TestEnumerateDefault(t *testing.T) {
	g, _ := plantedTestGraph()
	res, err := kvcc.Enumerate(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 6 {
		t.Fatalf("K = %d", res.K)
	}
	if len(res.Components) == 0 {
		t.Fatal("expected components on a planted graph")
	}
	// Largest first.
	for i := 1; i < len(res.Components); i++ {
		if res.Components[i].NumVertices() > res.Components[i-1].NumVertices() {
			t.Fatal("components not sorted largest-first")
		}
	}
}

func TestEnumerateOptionVariantsAgree(t *testing.T) {
	g, _ := plantedTestGraph()
	var base []string
	for _, algo := range []kvcc.Algorithm{kvcc.VCCE, kvcc.VCCEN, kvcc.VCCEG, kvcc.VCCEStar} {
		res, err := kvcc.Enumerate(g, 6, kvcc.WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		var repr []string
		for _, c := range res.Components {
			labels := append([]int64(nil), c.Labels()...)
			sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
			repr = append(repr, intsToString(labels))
		}
		sort.Strings(repr)
		if base == nil {
			base = repr
			continue
		}
		if len(base) != len(repr) {
			t.Fatalf("%v: %d components, want %d", algo, len(repr), len(base))
		}
		for i := range base {
			if base[i] != repr[i] {
				t.Fatalf("%v: component %d differs", algo, i)
			}
		}
	}
}

func intsToString(ls []int64) string {
	out := ""
	for _, l := range ls {
		out += ","
		out += string(rune('a' + l%26))
		out += string(rune('0' + (l/26)%10))
	}
	return out
}

// The paper's containment hierarchy (Theorem 3): every k-VCC is inside
// some k-ECC, and every k-ECC is inside the k-core.
func TestNestingHierarchy(t *testing.T) {
	g, _ := plantedTestGraph()
	k := 6
	res, err := kvcc.Enumerate(g, k)
	if err != nil {
		t.Fatal(err)
	}
	eccs := kvcc.KECC(g, k)
	coreLabels := map[int64]bool{}
	for _, l := range kvcc.KCore(g, k).Labels() {
		coreLabels[l] = true
	}
	eccSets := make([]map[int64]bool, len(eccs))
	for i, e := range eccs {
		eccSets[i] = map[int64]bool{}
		for _, l := range e.Labels() {
			eccSets[i][l] = true
			if !coreLabels[l] {
				t.Fatalf("k-ECC vertex %d outside the k-core", l)
			}
		}
	}
	for _, vcc := range res.Components {
		found := false
		for _, es := range eccSets {
			inside := true
			for _, l := range vcc.Labels() {
				if !es[l] {
					inside = false
					break
				}
			}
			if inside {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("a k-VCC is not nested in any k-ECC")
		}
	}
}

func TestComponentsContainingAndOverlap(t *testing.T) {
	// Two K6s sharing two vertices; k=4 separates them.
	var edges [][2]int
	c1 := []int{0, 1, 2, 3, 4, 5}
	c2 := []int{4, 5, 6, 7, 8, 9}
	for _, c := range [][]int{c1, c2} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				edges = append(edges, [2]int{c[i], c[j]})
			}
		}
	}
	g := graph.FromEdges(10, edges)
	res, err := kvcc.Enumerate(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(res.Components))
	}
	if got := res.ComponentsContaining(4); len(got) != 2 {
		t.Fatalf("vertex 4 should be in both components, got %v", got)
	}
	if got := res.ComponentsContaining(0); len(got) != 1 {
		t.Fatalf("vertex 0 should be in one component, got %v", got)
	}
	if got := res.ComponentsContaining(99); got != nil {
		t.Fatalf("missing vertex should yield nil, got %v", got)
	}
	m := res.OverlapMatrix()
	if m[0][1] != 2 || m[1][0] != 2 {
		t.Fatalf("overlap = %d, want 2", m[0][1])
	}
	if m[0][0] != 6 || m[1][1] != 6 {
		t.Fatalf("diagonal = %d,%d, want 6,6", m[0][0], m[1][1])
	}
	labels := res.VertexLabels()
	if len(labels) != 10 {
		t.Fatalf("vertex labels = %v", labels)
	}
}

func TestVertexConnectivityFacade(t *testing.T) {
	if got := kvcc.VertexConnectivity(complete(5)); got != 4 {
		t.Fatalf("κ(K5) = %d", got)
	}
	cyc := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if got := kvcc.VertexConnectivity(cyc); got != 2 {
		t.Fatalf("κ(C5) = %d", got)
	}
	cut := kvcc.MinimumVertexCut(cyc)
	if len(cut) != 2 {
		t.Fatalf("min cut = %v", cut)
	}
	if kvcc.MinimumVertexCut(complete(4)) != nil {
		t.Fatal("complete graph has no vertex cut")
	}
}

func TestLocalConnectivityFacade(t *testing.T) {
	cyc := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if got := kvcc.LocalConnectivity(cyc, 0, 3); got != 2 {
		t.Fatalf("κ(0,3) = %d", got)
	}
	if got := kvcc.LocalConnectivity(cyc, 0, 1); got != 5 {
		t.Fatalf("adjacent κ = %d, want n-1", got)
	}
	if got := kvcc.LocalConnectivity(graph.FromEdges(1, nil), 0, 0); got != 0 {
		t.Fatalf("trivial κ = %d", got)
	}
}

func TestIsKVertexConnected(t *testing.T) {
	if !kvcc.IsKVertexConnected(complete(5), 4) {
		t.Fatal("K5 is 4-connected")
	}
	if kvcc.IsKVertexConnected(complete(5), 5) {
		t.Fatal("K5 is not 5-connected (needs > 5 vertices)")
	}
	if !kvcc.IsKVertexConnected(complete(5), 0) {
		t.Fatal("connected graph is 0-connected")
	}
	disconnected := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if kvcc.IsKVertexConnected(disconnected, 1) {
		t.Fatal("disconnected graph is not 1-connected")
	}
}

func TestEnumerateParallelOption(t *testing.T) {
	g, _ := plantedTestGraph()
	serial, err := kvcc.Enumerate(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	par, err := kvcc.Enumerate(g, 6, kvcc.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Components) != len(par.Components) {
		t.Fatalf("parallel found %d components, serial %d",
			len(par.Components), len(serial.Components))
	}
	for i := range serial.Components {
		if serial.Components[i].NumVertices() != par.Components[i].NumVertices() {
			t.Fatal("canonical ordering differs between serial and parallel")
		}
	}
}

func TestEnumerateErrorPropagation(t *testing.T) {
	if _, err := kvcc.Enumerate(nil, 3); err == nil {
		t.Fatal("nil graph must error")
	}
	if _, err := kvcc.Enumerate(complete(3), 0); err == nil {
		t.Fatal("k = 0 must error")
	}
}

// Planted communities should be recovered as k-VCCs when k is inside the
// community connectivity band.
func TestPlantedCommunityRecovery(t *testing.T) {
	g, comms := plantedTestGraph()
	res, err := kvcc.Enumerate(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Every planted community of size >= 10 should be mostly covered by
	// one recovered component.
	covered := 0
	for _, comm := range comms {
		if len(comm) < 10 {
			continue
		}
		commSet := map[int64]bool{}
		for _, l := range comm {
			commSet[l] = true
		}
		for _, c := range res.Components {
			inside := 0
			for _, l := range c.Labels() {
				if commSet[l] {
					inside++
				}
			}
			if float64(inside) >= 0.8*float64(len(comm)) {
				covered++
				break
			}
		}
	}
	if covered < len(comms)/2 {
		t.Fatalf("only %d/%d planted communities recovered", covered, len(comms))
	}
}

func TestEnumerateContextCancellation(t *testing.T) {
	g, _ := plantedTestGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before starting
	if _, err := kvcc.EnumerateContext(ctx, g, 5); err == nil {
		t.Fatal("cancelled context must abort enumeration")
	}
	// A live context behaves like Enumerate.
	res, err := kvcc.EnumerateContext(context.Background(), g, 6)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := kvcc.Enumerate(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != len(direct.Components) {
		t.Fatal("context and plain enumeration differ")
	}
	// Cancellation also aborts the parallel driver.
	if _, err := kvcc.EnumerateContext(ctx, g, 5, kvcc.WithParallelism(4)); err == nil {
		t.Fatal("cancelled context must abort parallel enumeration")
	}
}

// TestLabelIndexMatchesScan pits the Result's inverted label index (the
// serving path of /api/v1/components-containing and /api/v1/overlap)
// against the naive per-component scans it replaced, on a planted
// community graph whose chained overlaps exercise multi-membership.
func TestLabelIndexMatchesScan(t *testing.T) {
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 6, MinSize: 10, MaxSize: 16, IntraProb: 0.9,
		ChainOverlap: 3, ChainEvery: 1, BridgeEdges: 5,
		NoiseVertices: 30, NoiseDegree: 2, Seed: 77,
	})
	res, err := kvcc.Enumerate(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) < 2 {
		t.Fatalf("want several components, got %d", len(res.Components))
	}

	scanContaining := func(label int64) []int {
		var out []int
		for i, c := range res.Components {
			for _, l := range c.Labels() {
				if l == label {
					out = append(out, i)
					break
				}
			}
		}
		return out
	}
	overlapped := 0
	for _, l := range res.VertexLabels() {
		want := scanContaining(l)
		got := res.ComponentsContaining(l)
		if len(got) != len(want) {
			t.Fatalf("label %d: index %v vs scan %v", l, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("label %d: index %v vs scan %v", l, got, want)
			}
		}
		if len(got) > 1 {
			overlapped++
		}
	}
	if overlapped == 0 {
		t.Fatal("corpus has no overlapping vertices; test is vacuous")
	}
	if res.ComponentsContaining(-12345) != nil {
		t.Fatal("absent label must return nil")
	}

	m := res.OverlapMatrix()
	for i, ci := range res.Components {
		seti := map[int64]bool{}
		for _, l := range ci.Labels() {
			seti[l] = true
		}
		if m[i][i] != len(seti) {
			t.Fatalf("diagonal [%d] = %d, want %d", i, m[i][i], len(seti))
		}
		for j, cj := range res.Components {
			if i == j {
				continue
			}
			shared := 0
			for _, l := range cj.Labels() {
				if seti[l] {
					shared++
				}
			}
			if m[i][j] != shared {
				t.Fatalf("overlap [%d][%d] = %d, want %d", i, j, m[i][j], shared)
			}
		}
	}

	// The lazy index must be safe under concurrent first use (run with
	// -race in CI).
	res2, err := kvcc.Enumerate(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for _, l := range []int64{0, 1, 2, 3} {
				res2.ComponentsContaining(l)
			}
			res2.OverlapMatrix()
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
