package kvcc

import (
	"context"
	"sync"

	"kvcc/graph"
	"kvcc/internal/core"
	"kvcc/internal/incr"
)

// Edge is one undirected edit target, addressed by vertex label (the
// stable external identity — the ids from the input edge list). Order of
// the endpoints does not matter.
type Edge = [2]int64

// EnumerateIncremental computes the k-VCCs of g, reusing from prev every
// per-component result whose k-core connected component is structurally
// unchanged. See EnumerateIncrementalContext.
func EnumerateIncremental(g *graph.Graph, k int, prev *Result, opts ...Option) (*Result, error) {
	return EnumerateIncrementalContext(context.Background(), g, k, prev, opts...)
}

// EnumerateIncrementalContext computes the k-VCCs of g the way
// EnumerateContext does — per k-core connected component — but first
// consults prev: any component whose structural fingerprint (labeled
// vertex set + edge set) matches one enumerated for prev is served
// verbatim from it, so the run pays only for the components an edit
// actually touched. prev may be nil (a cold run), may come from any
// earlier version of the graph, and may even belong to an unrelated graph
// — reuse is keyed purely by structure, so a stale or mismatched prev
// costs nothing and corrupts nothing. The Result is byte-equal (canonical
// component order, identical label sets) to a from-scratch enumeration of
// g at the same k.
func EnumerateIncrementalContext(ctx context.Context, g *graph.Graph, k int, prev *Result, opts ...Option) (*Result, error) {
	options := core.Options{Algorithm: core.VCCEStar}
	for _, opt := range opts {
		opt(&options)
	}
	if prev != nil {
		return enumerateWithStore(ctx, g, k, options, prev.store)
	}
	return enumerateWithStore(ctx, g, k, options, nil)
}

// Dynamic maintains the k-VCCs of a mutable graph. It owns a graph.Delta
// overlay and the current enumeration Result; ApplyEdits applies a batch
// of edge edits and brings the Result up to date incrementally,
// recomputing only the k-core components the edits touched. All methods
// are safe for concurrent use. Edit batches serialize on their own lock
// and run the re-enumeration outside the state lock, so reads (Result,
// Graph, Version) block at most for an overlay mutation plus one CSR
// compaction — never for an in-flight recomputation; a reader during an
// update simply sees the previous Result.
type Dynamic struct {
	k    int
	opts core.Options

	// editMu serializes ApplyEdits batches end to end; mu guards the
	// overlay and current-result state and is never held across an
	// enumeration.
	editMu sync.Mutex
	mu     sync.Mutex
	delta  *graph.Delta
	cur    *Result
}

// NewDynamic wraps g in a mutation overlay and computes the initial
// Result. The options (algorithm, parallelism) apply to the initial run
// and to every subsequent ApplyEdits.
func NewDynamic(g *graph.Graph, k int, opts ...Option) (*Dynamic, error) {
	return NewDynamicContext(context.Background(), g, k, opts...)
}

// NewDynamicContext is NewDynamic with cancellation of the initial
// enumeration.
func NewDynamicContext(ctx context.Context, g *graph.Graph, k int, opts ...Option) (*Dynamic, error) {
	options := core.Options{Algorithm: core.VCCEStar}
	for _, opt := range opts {
		opt(&options)
	}
	delta := graph.NewDelta(g)
	res, err := enumerateWithStore(ctx, delta.Compact(), k, options, nil)
	if err != nil {
		return nil, err
	}
	res.Version = delta.Version()
	return &Dynamic{k: k, opts: options, delta: delta, cur: res}, nil
}

// K returns the connectivity parameter the handle maintains.
func (d *Dynamic) K() int { return d.k }

// Version returns the current graph version. It increases with every
// effective mutation and is stamped onto each Result.
func (d *Dynamic) Version() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.delta.Version()
}

// Graph returns the current compacted snapshot of the mutable graph.
// The returned Graph is immutable and safe to read concurrently with
// further edits.
func (d *Dynamic) Graph() *graph.Graph {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.delta.Compact()
}

// Result returns the most recent enumeration Result. Its Version tells
// which graph version it reflects; it can lag the handle's Version only
// if a previous ApplyEdits failed (e.g. was cancelled) after its edits
// were recorded — a later ApplyEdits (even with no edits) re-converges.
func (d *Dynamic) Result() *Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cur
}

// ApplyEdits applies a batch of edge insertions and deletions (addressed
// by vertex label; inserts create vertices on first mention) and returns
// the updated Result. Only the k-core connected components whose
// structure the batch touched are re-enumerated; everything else is
// served verbatim from the previous Result, and the returned
// Stats.ComponentsReused / ComponentsRecomputed report the split. No-op
// batches (edges already present or already absent) return the current
// Result unchanged.
//
// Concurrent ApplyEdits calls serialize; concurrent readers keep the
// previous Result until the swap (the recomputation itself runs outside
// the state lock). If ctx is cancelled mid-recomputation, the edits
// remain recorded but the Result stays at its previous version — retry
// (or call with empty batches) to converge.
func (d *Dynamic) ApplyEdits(ctx context.Context, inserts, deletes []Edge) (*Result, error) {
	d.editMu.Lock()
	defer d.editMu.Unlock()

	d.mu.Lock()
	for _, e := range inserts {
		d.delta.InsertEdge(e[0], e[1])
	}
	for _, e := range deletes {
		d.delta.DeleteEdge(e[0], e[1])
	}
	if d.cur != nil && d.cur.Version == d.delta.Version() {
		res := d.cur
		d.mu.Unlock()
		return res, nil
	}
	version := d.delta.Version()
	snap := d.delta.Compact()
	var prevStore *incr.Store
	if d.cur != nil {
		prevStore = d.cur.store
	}
	d.mu.Unlock()

	res, err := enumerateWithStore(ctx, snap, d.k, d.opts, prevStore)
	if err != nil {
		return nil, err
	}
	res.Version = version
	d.mu.Lock()
	d.cur = res
	d.mu.Unlock()
	return res, nil
}
