package kvcc_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
)

// seedTestGraph is a planted-community graph large enough (> 128
// vertices) that the FlowAuto heuristic would also pick the local engine
// on its components; the tests below force FlowLocalVC so the randomized
// path runs regardless.
func seedTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _ := gen.Planted(gen.PlantedConfig{
		Communities: 8, MinSize: 12, MaxSize: 18, IntraProb: 0.85,
		ChainOverlap: 2, ChainEvery: 3, BridgeEdges: 6,
		NoiseVertices: 100, NoiseDegree: 2, Seed: 31,
	})
	if g.NumVertices() < 128 {
		t.Fatalf("seed test graph has only %d vertices", g.NumVertices())
	}
	return g
}

// canonicalBytes serializes an enumeration result completely — every
// component's sorted labels and its full edge list as label pairs — so
// two byte-equal serializations mean structurally identical results, not
// just equal vertex sets.
func canonicalBytes(res *kvcc.Result) []byte {
	var buf bytes.Buffer
	for _, c := range res.Components {
		labels := c.Labels()
		sorted := append([]int64(nil), labels...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		fmt.Fprintf(&buf, "component %v\n", sorted)
		var edges [][2]int64
		for v := 0; v < c.NumVertices(); v++ {
			for _, w := range c.Neighbors(v) {
				a, b := labels[v], labels[w]
				if a < b {
					edges = append(edges, [2]int64{a, b})
				}
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		fmt.Fprintf(&buf, "edges %v\n", edges)
	}
	return buf.Bytes()
}

// TestLocalVCSeedReproducible pins the end-to-end determinism contract of
// the randomized engine: same seed, byte-identical results and identical
// work counters; different seed, still identical results (LocalVC is
// exact — the seed only moves work between the local path and the Dinic
// fallback).
func TestLocalVCSeedReproducible(t *testing.T) {
	g := seedTestGraph(t)
	const k = 5

	run := func(seed uint64, extra ...kvcc.Option) *kvcc.Result {
		t.Helper()
		opts := append([]kvcc.Option{
			kvcc.WithFlowEngine(kvcc.FlowLocalVC), kvcc.WithSeed(seed),
		}, extra...)
		res, err := kvcc.Enumerate(g, k, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run(7)
	second := run(7)
	if first.Stats.LocalCutAttempts == 0 {
		t.Fatal("forced local engine reported zero attempts")
	}
	if !bytes.Equal(canonicalBytes(first), canonicalBytes(second)) {
		t.Fatal("two runs with the same seed produced different serialized results")
	}
	if first.Stats.LocalCutAttempts != second.Stats.LocalCutAttempts ||
		first.Stats.LocalCutFallbacks != second.Stats.LocalCutFallbacks {
		t.Fatalf("same seed, different work profile: attempts %d/%d, fallbacks %d/%d",
			first.Stats.LocalCutAttempts, second.Stats.LocalCutAttempts,
			first.Stats.LocalCutFallbacks, second.Stats.LocalCutFallbacks)
	}

	reseeded := run(0xdecafbad)
	if !bytes.Equal(canonicalBytes(first), canonicalBytes(reseeded)) {
		t.Fatal("changing the seed changed the enumeration result")
	}

	// Per-component reseeding makes the engine's work a function of
	// (component, seed) alone, so a parallel run must report the same
	// result bytes and the same local-engine counter sums as the serial
	// one — worker scheduling cannot leak into either.
	parallel := run(7, kvcc.WithParallelism(4))
	if !bytes.Equal(canonicalBytes(first), canonicalBytes(parallel)) {
		t.Fatal("parallel run with the same seed produced different serialized results")
	}
	if first.Stats.LocalCutAttempts != parallel.Stats.LocalCutAttempts ||
		first.Stats.LocalCutFallbacks != parallel.Stats.LocalCutFallbacks {
		t.Fatalf("parallel run changed the work profile: attempts %d/%d, fallbacks %d/%d",
			first.Stats.LocalCutAttempts, parallel.Stats.LocalCutAttempts,
			first.Stats.LocalCutFallbacks, parallel.Stats.LocalCutFallbacks)
	}
}
