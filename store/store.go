package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"kvcc/cohesion"
	"kvcc/graph"
	"kvcc/hierarchy"
)

// Options tunes Open.
type Options struct {
	// VerifyOnOpen runs the full payload checksum and CSR validation on
	// the snapshot before serving it — O(n+m), so it trades the O(1)
	// startup guarantee for end-to-end certainty. Tests and paranoid
	// operators set it; the default trusts the header checksum plus the
	// atomic-rename write protocol.
	VerifyOnOpen bool
	// PagingPolicy controls madvise on snapshot mappings: PagingAuto
	// (zero value) forwards enumeration access hints and releases
	// retired mappings; PagingOff never advises. See paging.go.
	PagingPolicy PagingPolicy
}

// Store is the durability handle for one graph: its snapshot, WAL and
// persisted index inside a single directory. All methods are safe for
// concurrent use; in practice the owning server serializes mutations
// (Append, Checkpoint) on its edit path and only SaveIndex arrives from
// another goroutine.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	snap     *Snapshot // mapping backing the recovered graph (nil if none)
	wal      *wal
	g        *graph.Graph // recovered graph: snapshot's or the replayed compaction
	version  uint64
	hasGraph bool

	replayed      int  // WAL batches applied during Open
	pending       int  // batches in the WAL since the last checkpoint
	truncatedTail bool // Open dropped a torn/corrupt WAL tail
	destroyed     bool

	// retired holds mappings replaced by CompactToStore. They stay open
	// — readers recovered before the swap may still hold their graphs —
	// with resident pages released; Close unmaps them all.
	retired []*Snapshot
	// paging accumulates madvise activity; openMS is the cost of the
	// last OpenSnapshot (header read + CRC + map), the measured price of
	// the O(1) startup claim.
	paging PagingCounters
	openMS float64

	// idemKeys maps each known applied idempotency key to the overlay
	// version its batch produced (see idem.go).
	idemKeys map[string]uint64
}

// Open opens (creating if necessary) the store directory, recovers its
// graph — map the last snapshot, replay the WAL tail — and leaves the
// WAL ready for appends. A directory with no snapshot yet (a store that
// crashed before its first Checkpoint, or a fresh one) opens with no
// graph: Graph reports ok=false and the caller checkpoints an initial
// snapshot.
//
// Recovery tolerates exactly the damage a crash can cause: a leftover
// snapshot temp file (removed), and a torn final WAL record (dropped and
// truncated away). Damage a crash cannot cause — checksum mismatches in
// the snapshot header or in a non-final WAL record — is an error.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A crash mid-checkpoint leaves snapshot.kvcc.tmp (never renamed, so
	// never visible as the snapshot); clean it and the index temps up.
	os.Remove(filepath.Join(dir, snapshotName+tmpSuffix))
	os.Remove(filepath.Join(dir, idemName+tmpSuffix))
	for _, m := range cohesion.Measures() {
		os.Remove(filepath.Join(dir, indexFileName(m)+tmpSuffix))
	}

	s := &Store{dir: dir, opts: opts}
	snapPath := filepath.Join(dir, snapshotName)
	if _, err := os.Stat(snapPath); err == nil {
		start := time.Now()
		snap, err := OpenSnapshot(snapPath)
		if err != nil {
			return nil, err
		}
		s.openMS = float64(time.Since(start)) / float64(time.Millisecond)
		if opts.VerifyOnOpen {
			if err := snap.Verify(); err != nil {
				snap.Close()
				return nil, err
			}
		}
		if opts.PagingPolicy != PagingOff {
			snap.EnablePaging(&s.paging)
		}
		s.snap = snap
		s.g = snap.Graph()
		s.version = snap.Version()
		s.hasGraph = true
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	// Seed the idempotency-key set from the retention file before replay:
	// replay then layers on the keys of every WAL record that survived the
	// last checkpoint.
	s.loadIdem()

	walPath := filepath.Join(dir, walName)
	batches, goodSize, err := readWAL(walPath)
	if err != nil {
		s.closeLocked(true)
		return nil, err
	}
	if info, err := os.Stat(walPath); err == nil && info.Size() > goodSize {
		s.truncatedTail = true
	}
	if err := s.replay(batches); err != nil {
		s.closeLocked(true)
		return nil, err
	}
	s.wal, err = openWAL(walPath, goodSize)
	if err != nil {
		s.closeLocked(true)
		return nil, err
	}
	return s, nil
}

// replay applies the clean WAL prefix on top of the snapshot. Records at
// or below the snapshot version were already folded into it by the
// checkpoint that crashed before truncating the log; they are skipped.
func (s *Store) replay(batches []Batch) error {
	var delta *graph.Delta
	for i, b := range batches {
		// Keys are learned from every intact record, including ones the
		// snapshot already covers: a checkpoint that crashed between the
		// snapshot write and the retention write would otherwise forget
		// the keys of the records it folded in.
		s.rememberKey(b.Key, b.NewVersion)
		if b.NewVersion <= s.version {
			continue
		}
		if !s.hasGraph {
			return &corruptError{path: filepath.Join(s.dir, walName),
				msg: fmt.Sprintf("record %d precedes any snapshot", i)}
		}
		if b.PrevVersion != s.version {
			return &corruptError{path: filepath.Join(s.dir, walName),
				msg: fmt.Sprintf("record %d expects version %d, store is at %d", i, b.PrevVersion, s.version)}
		}
		if delta == nil {
			delta = graph.NewDeltaAt(s.g, s.version)
		}
		for _, e := range b.Inserts {
			delta.InsertEdge(e[0], e[1])
		}
		for _, e := range b.Deletes {
			delta.DeleteEdge(e[0], e[1])
		}
		if delta.Version() != b.NewVersion {
			return &corruptError{path: filepath.Join(s.dir, walName),
				msg: fmt.Sprintf("record %d replayed to version %d, log claims %d", i, delta.Version(), b.NewVersion)}
		}
		s.version = b.NewVersion
		s.replayed++
		s.pending++
	}
	if delta != nil {
		s.g = delta.Compact()
	}
	return nil
}

// Graph returns the recovered graph and its overlay version. ok is false
// for a store that has never been checkpointed.
func (s *Store) Graph() (g *graph.Graph, version uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g, s.version, s.hasGraph
}

// Replayed reports recovery work done by Open: how many WAL batches were
// applied on top of the snapshot, and whether a torn tail was dropped.
func (s *Store) Replayed() (batches int, tornTail bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed, s.truncatedTail
}

// Pending returns the number of WAL batches accumulated since the last
// checkpoint — the checkpoint policy's input.
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// Append durably logs one edit batch: the record is written and fsync'd
// before Append returns, so a batch acknowledged to a client survives
// any crash after this point.
//
// The chain guard refuses a batch whose PrevVersion is not the store's
// current version. That happens when an earlier append failed but the
// caller kept serving (persistence degrades, never blocks): logging the
// out-of-chain batch would plant a gap that recovery must reject, turning
// one transient write failure into a permanently unopenable store. The
// caller heals instead by checkpointing the current snapshot.
func (s *Store) Append(b Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.destroyed {
		return fmt.Errorf("store: %s: destroyed", s.dir)
	}
	if b.PrevVersion != s.version {
		return fmt.Errorf("store: %s: batch chains from version %d, store is at %d",
			s.dir, b.PrevVersion, s.version)
	}
	if err := s.wal.append(b); err != nil {
		return err
	}
	s.pending++
	s.version = b.NewVersion
	s.rememberKey(b.Key, b.NewVersion)
	return nil
}

// Checkpoint writes g (the current compacted snapshot at the given
// overlay version) as the new on-disk snapshot and truncates the WAL,
// whose records are now redundant. Crash-ordering: the snapshot lands
// atomically first; a crash before the truncate leaves WAL records whose
// versions the new snapshot already covers, and replay skips those.
//
// The mapping behind any previously recovered graph stays valid — only
// Close releases it — so readers still holding the old graph are safe.
func (s *Store) Checkpoint(g *graph.Graph, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.destroyed {
		return fmt.Errorf("store: %s: destroyed", s.dir)
	}
	if err := WriteSnapshot(filepath.Join(s.dir, snapshotName), g, version); err != nil {
		return err
	}
	// Retain the keys the truncate below is about to erase from the WAL.
	// Best-effort by design (see idem.go); ordering before the reset keeps
	// the crash window to "retention written, WAL not yet truncated", which
	// replay handles by re-learning keys from the redundant records.
	s.saveIdemLocked()
	if err := s.wal.reset(); err != nil {
		return err
	}
	// The heap graph g replaces whatever the old mapping was backing;
	// release the mapping's resident pages (it stays valid for readers
	// that still hold the previous recovered graph — reads re-fault).
	if s.snap != nil && s.opts.PagingPolicy != PagingOff {
		s.snap.ReleasePages()
	}
	s.g = g
	s.version = version
	s.hasGraph = true
	s.pending = 0
	return nil
}

// CompactToStore folds the overlay d straight into a new on-disk
// snapshot and rebases d onto the re-mapped result — a checkpoint that
// never builds the compacted CSR on the heap. Where Compact+Checkpoint
// peaks at roughly two graphs of memory (the old base plus the fresh
// heap CSR), this path streams the merge to disk (O(max degree) writer
// state), maps the file back, and serves the graph from the page cache;
// peak heap cost is the overlay itself, O(delta).
//
// Crash-ordering is identical to Checkpoint: the snapshot lands
// atomically first, then the idempotency keys, then the WAL truncate —
// every intermediate crash state recovers. On any error d is left
// unmodified and the caller can fall back to Compact+Checkpoint.
//
// The previous mapping (if any) is retired, not closed: graphs
// recovered from it may still be serving. Its resident pages are
// released; Close unmaps every retired mapping.
//
// key, when non-empty, is the idempotency key of the edit batch this
// spill makes durable: the WAL record that would have carried it is
// never written, so the key is retained directly.
func (s *Store) CompactToStore(d *graph.Delta, key string) (*graph.Graph, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.destroyed {
		return nil, fmt.Errorf("store: %s: destroyed", s.dir)
	}
	path := filepath.Join(s.dir, snapshotName)
	version := d.Version()
	if err := WriteSnapshotStream(path, DeltaStream(d)); err != nil {
		return nil, err
	}
	start := time.Now()
	snap, err := OpenSnapshot(path)
	if err != nil {
		return nil, err
	}
	s.openMS = float64(time.Since(start)) / float64(time.Millisecond)
	if s.opts.PagingPolicy != PagingOff {
		snap.EnablePaging(&s.paging)
	}
	g := snap.Graph()
	if err := d.Rebase(g); err != nil {
		// Impossible unless the stream callbacks disagreed with the
		// overlay's own counts; surface it rather than serve a mismatch.
		snap.Close()
		return nil, err
	}
	s.rememberKey(key, version)
	s.saveIdemLocked()
	if err := s.wal.reset(); err != nil {
		return nil, err
	}
	if s.snap != nil {
		if s.opts.PagingPolicy != PagingOff {
			s.snap.ReleasePages()
		}
		s.retired = append(s.retired, s.snap)
	}
	s.snap = snap
	s.g = g
	s.version = version
	s.hasGraph = true
	s.pending = 0
	return g, nil
}

// Snapshot returns the live snapshot backing the recovered graph, or nil
// for a store that has never been checkpointed (or whose last checkpoint
// installed a heap graph). Tests and benchmarks use it to evict or probe
// the mapping.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// PagingStats reports the store's paging activity, live-mapping size and
// residency, and the cost of the last snapshot open.
func (s *Store) PagingStats() PagingStats {
	s.mu.Lock()
	snap := s.snap
	retired := len(s.retired)
	openMS := s.openMS
	s.mu.Unlock()
	ps := PagingStats{
		Policy:          s.opts.PagingPolicy.String(),
		SequentialHints: s.paging.SequentialHints.Load(),
		WillNeedHints:   s.paging.WillNeedHints.Load(),
		Releases:        s.paging.Releases.Load(),
		Evictions:       s.paging.Evictions.Load(),
		SnapshotOpenMS:  openMS,
		RetiredMappings: retired,
	}
	if snap != nil {
		ps.MappedBytes = snap.MappedBytes()
		if r, t, ok := snap.Residency(); ok {
			ps.ResidentPages, ps.TotalPages = r, t
		}
	}
	return ps
}

// SaveIndex persists a finished hierarchy index stamped with the overlay
// version it was built from, into the index file of the tree's measure.
// A later load only uses it if the recovered graph is at exactly that
// version.
func (s *Store) SaveIndex(t *hierarchy.Tree, version uint64, buildMS float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.destroyed {
		return fmt.Errorf("store: %s: destroyed", s.dir)
	}
	return writeIndex(filepath.Join(s.dir, indexFileName(t.Measure)), t, version, buildMS)
}

// LoadIndex loads the persisted hierarchy index of the given measure if
// one exists and was built from the store's recovered version. ok=false
// with a nil error means "no usable index" (absent or stale); an error
// means the file matched but is damaged.
func (s *Store) LoadIndex(m cohesion.Measure) (t *hierarchy.Tree, buildMS float64, ok bool, err error) {
	s.mu.Lock()
	version := s.version
	s.mu.Unlock()
	return readIndex(filepath.Join(s.dir, indexFileName(m)), version, m)
}

// DropIndex removes the persisted indexes of every measure (if any) —
// called when the graph they describe is replaced wholesale.
func (s *Store) DropIndex() error {
	for _, m := range cohesion.Measures() {
		err := os.Remove(filepath.Join(s.dir, indexFileName(m)))
		if err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Destroy removes the store's files and closes the WAL, but deliberately
// does NOT unmap the snapshot: requests already holding the recovered
// graph may still be reading it, and on every supported platform an
// unlinked mapped file stays readable until the mapping is released at
// process exit. Use it when the graph is removed from serving while the
// process lives on.
func (s *Store) Destroy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.destroyed {
		return nil
	}
	s.destroyed = true
	if s.wal != nil {
		s.wal.close()
		s.wal = nil
	}
	return os.RemoveAll(s.dir)
}

// Close releases everything, including the snapshot mapping. Every graph
// recovered from this store becomes invalid; call Close only once the
// owning server has stopped serving.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked(false)
}

func (s *Store) closeLocked(ignoreErr bool) error {
	var first error
	if s.wal != nil {
		if err := s.wal.close(); err != nil && first == nil {
			first = err
		}
		s.wal = nil
	}
	if s.snap != nil {
		if err := s.snap.Close(); err != nil && first == nil {
			first = err
		}
		s.snap = nil
	}
	for _, old := range s.retired {
		if err := old.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.retired = nil
	if ignoreErr {
		return nil
	}
	return first
}
