//go:build !linux

package store

func madviseSequential(b []byte) {}
func madviseWillNeed(b []byte)   {}
func madviseDontNeed(b []byte)   {}
