//go:build !linux

package store

import "os"

// dropFileCache is linux-only; elsewhere eviction falls back to the
// madvise release alone (pages may re-fault minor instead of major).
func dropFileCache(f *os.File) error { return nil }
