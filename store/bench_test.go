package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kvcc/gen"
	"kvcc/graph"
	"kvcc/graphio"
)

// The startup pair: what a restart costs with and without the snapshot
// store. Cold ingest re-parses the text edge list into a fresh CSR;
// snapshot open maps the on-disk CSR and adopts it in place. Run with
// -bench 'Startup' to see both on the same generated graph.

func benchStartupGraph(tb testing.TB) *graph.Graph {
	tb.Helper()
	return gen.GNM(20000, 120000, 7)
}

func writeEdgeList(tb testing.TB, path string, g *graph.Graph) {
	tb.Helper()
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	for _, e := range g.Edges(nil) {
		fmt.Fprintf(w, "%d\t%d\n", g.Label(e[0]), g.Label(e[1]))
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
}

func BenchmarkStartupColdIngest(b *testing.B) {
	g := benchStartupGraph(b)
	path := filepath.Join(b.TempDir(), "edges.txt")
	writeEdgeList(b, path, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := graphio.ReadEdgeListFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if got.NumEdges() != g.NumEdges() {
			b.Fatalf("ingested %d edges, want %d", got.NumEdges(), g.NumEdges())
		}
	}
}

func BenchmarkStartupSnapshotOpen(b *testing.B) {
	g := benchStartupGraph(b)
	path := filepath.Join(b.TempDir(), snapshotName)
	if err := WriteSnapshot(path, g, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := OpenSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		if snap.Graph().NumEdges() != g.NumEdges() {
			b.Fatalf("mapped %d edges, want %d", snap.Graph().NumEdges(), g.NumEdges())
		}
		snap.Close()
	}
}
