package store

import (
	"encoding/binary"
	"fmt"
	"io"

	"kvcc/graph"
)

// Streaming snapshot spill: write a merged CSR straight to disk without
// ever materializing it on the heap. The classic checkpoint path is
// Delta.Compact (build the full heap CSR: O(n+m) fresh allocations) then
// WriteSnapshot; for a graph near or beyond RAM that doubles peak memory
// exactly when memory is the scarce resource. WriteSnapshotStream
// instead pulls the snapshot one vertex at a time from callbacks —
// offsets fold into a running prefix sum, adjacency runs are merged into
// one reused max-degree buffer — so the writer's heap footprint is O(max
// degree) + one 64 KiB scratch buffer regardless of graph size.

// SnapshotStream describes a CSR to be written vertex by vertex. The
// callbacks must be pure: each is called once per vertex in ascending
// order, and the writer cross-checks that the degrees sum to 2M and that
// every run has exactly Degree(v) entries.
type SnapshotStream struct {
	N       int    // vertex count
	M       int    // undirected edge count
	Version uint64 // overlay version stamp for the header

	// Label returns the label of vertex v.
	Label func(v int) int64
	// Degree returns the degree of vertex v; must be O(1)-cheap, it is
	// called twice per vertex (offsets pass + run check).
	Degree func(v int) int
	// Run appends the sorted merged adjacency of v to buf[:0] and
	// returns it. The same buffer is handed back on every call.
	Run func(v int, buf []int) []int
}

// WriteSnapshotStream writes src as a snapshot file at path with the
// same format, atomicity and failpoints as WriteSnapshot. A degree/run
// mismatch aborts before the rename, so a bad stream can never replace a
// good snapshot.
func WriteSnapshotStream(path string, src *SnapshotStream) error {
	n, m := int64(src.N), int64(src.M)
	return writeSnapshotAtomic(path, n, m, src.Version, func(w io.Writer, buf []byte) error {
		// Offsets: running prefix sum, no array.
		var b8 [8]byte
		off := int64(0)
		for v := 0; v <= src.N; v++ {
			binary.LittleEndian.PutUint64(b8[:], uint64(off))
			if _, err := w.Write(b8[:]); err != nil {
				return err
			}
			if v < src.N {
				off += int64(src.Degree(v))
			}
		}
		if off != 2*m {
			return fmt.Errorf("store: stream: degrees sum to %d, want 2m = %d", off, 2*m)
		}
		// Edges: one merged run at a time through a reused buffer.
		var run []int
		for v := 0; v < src.N; v++ {
			run = src.Run(v, run[:0])
			if len(run) != src.Degree(v) {
				return fmt.Errorf("store: stream: vertex %d run has %d entries, degree says %d", v, len(run), src.Degree(v))
			}
			if err := writeInts(w, run, buf); err != nil {
				return err
			}
		}
		// Labels.
		for v := 0; v < src.N; v++ {
			binary.LittleEndian.PutUint64(b8[:], uint64(src.Label(v)))
			if _, err := w.Write(b8[:]); err != nil {
				return err
			}
		}
		return nil
	})
}

// DeltaStream adapts a mutation overlay to the streaming writer: the
// merged (base + overlay) adjacency is generated per vertex, so the
// compacted CSR never exists on the heap.
func DeltaStream(d *graph.Delta) *SnapshotStream {
	return &SnapshotStream{
		N:       d.NumVertices(),
		M:       d.NumEdges(),
		Version: d.Version(),
		Label:   d.Label,
		Degree:  d.Degree,
		Run:     d.MergedNeighbors,
	}
}
