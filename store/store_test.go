package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kvcc/cohesion"
	"kvcc/graph"
	"kvcc/hierarchy"
	"kvcc/internal/difftest"
)

// sameGraph asserts two graphs carry identical CSR arrays and labels.
func sameGraph(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("size mismatch: got n=%d m=%d, want n=%d m=%d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	gotOff, gotEdges := got.Adjacency()
	wantOff, wantEdges := want.Adjacency()
	if !reflect.DeepEqual(gotOff, wantOff) {
		t.Fatalf("offsets differ")
	}
	if len(gotEdges) != len(wantEdges) {
		t.Fatalf("edge arrays differ in length: %d vs %d", len(gotEdges), len(wantEdges))
	}
	if len(gotEdges) > 0 && !reflect.DeepEqual(gotEdges, wantEdges) {
		t.Fatalf("edge arrays differ")
	}
	if len(got.Labels()) > 0 && !reflect.DeepEqual(got.Labels(), want.Labels()) {
		t.Fatalf("labels differ")
	}
}

// TestSnapshotRoundTrip writes and reopens every corpus graph, asserting
// the adopted CSR is bit-identical and survives full verification.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range difftest.Corpus() {
		t.Run(tc.Name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), snapshotName)
			if err := WriteSnapshot(path, tc.G, 7); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			snap, err := OpenSnapshot(path)
			if err != nil {
				t.Fatalf("OpenSnapshot: %v", err)
			}
			defer snap.Close()
			if snap.Version() != 7 {
				t.Fatalf("version = %d, want 7", snap.Version())
			}
			if err := snap.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			sameGraph(t, snap.Graph(), tc.G)
		})
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	empty := graph.FromEdges(0, nil)
	path := filepath.Join(t.TempDir(), snapshotName)
	if err := WriteSnapshot(path, empty, 1); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer snap.Close()
	if err := snap.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if snap.Graph().NumVertices() != 0 || snap.Graph().NumEdges() != 0 {
		t.Fatalf("empty graph round-tripped as n=%d m=%d",
			snap.Graph().NumVertices(), snap.Graph().NumEdges())
	}
}

// TestSnapshotDamage distinguishes the two checksum tiers: header damage
// fails the O(1) open; payload damage passes open (deliberately — the
// payload is not read) but fails Verify.
func TestSnapshotDamage(t *testing.T) {
	g := difftest.Corpus()[0].G
	dir := t.TempDir()
	path := filepath.Join(dir, snapshotName)
	if err := WriteSnapshot(path, g, 3); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	flip := func(t *testing.T, off int64) string {
		t.Helper()
		damaged := filepath.Join(t.TempDir(), snapshotName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0xff
		if err := os.WriteFile(damaged, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return damaged
	}

	t.Run("header", func(t *testing.T) {
		_, err := OpenSnapshot(flip(t, 20)) // inside the n field
		if !IsCorrupt(err) {
			t.Fatalf("open with damaged header: err = %v, want corruption", err)
		}
	})
	t.Run("payload", func(t *testing.T) {
		snap, err := OpenSnapshot(flip(t, snapshotHeader+int64(8*g.NumVertices())))
		if err != nil {
			// Payload damage may break a CSR invariant AdoptCSR's O(1)
			// checks happen to see; that is also a corruption report.
			if !IsCorrupt(err) {
				t.Fatalf("open with damaged payload: err = %v, want nil or corruption", err)
			}
			return
		}
		defer snap.Close()
		if err := snap.Verify(); !IsCorrupt(err) {
			t.Fatalf("Verify on damaged payload: err = %v, want corruption", err)
		}
	})
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path, 0)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	want := []Batch{
		{PrevVersion: 1, NewVersion: 3, Inserts: [][2]int64{{1, 2}, {2, 3}}},
		{PrevVersion: 3, NewVersion: 4, Deletes: [][2]int64{{1, 2}}},
		{PrevVersion: 4, NewVersion: 4}, // empty batch is legal on the wire
	}
	for _, b := range want {
		if err := w.append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	w.close()

	got, goodSize, err := readWAL(path)
	if err != nil {
		t.Fatalf("readWAL: %v", err)
	}
	info, _ := os.Stat(path)
	if goodSize != info.Size() {
		t.Fatalf("goodSize = %d, file is %d", goodSize, info.Size())
	}
	if len(got) != len(want) {
		t.Fatalf("read %d batches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].PrevVersion != want[i].PrevVersion || got[i].NewVersion != want[i].NewVersion {
			t.Fatalf("batch %d versions: got %d->%d, want %d->%d",
				i, got[i].PrevVersion, got[i].NewVersion, want[i].PrevVersion, want[i].NewVersion)
		}
		if len(got[i].Inserts) != len(want[i].Inserts) || len(got[i].Deletes) != len(want[i].Deletes) {
			t.Fatalf("batch %d edit counts differ", i)
		}
		for j, e := range want[i].Inserts {
			if got[i].Inserts[j] != e {
				t.Fatalf("batch %d insert %d: got %v, want %v", i, j, got[i].Inserts[j], e)
			}
		}
	}
}

// TestWALTornTail simulates a crash mid-append at every possible cut
// point inside the final record: the clean prefix must always come back,
// and opening for append must truncate the tail away.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walName)
	w, err := openWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(Batch{PrevVersion: 1, NewVersion: 2, Inserts: [][2]int64{{10, 20}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.append(Batch{PrevVersion: 2, NewVersion: 3, Inserts: [][2]int64{{20, 30}}}); err != nil {
		t.Fatal(err)
	}
	w.close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	batches, _, err := readWAL(path)
	if err != nil || len(batches) != 2 {
		t.Fatalf("intact log: %d batches, err %v", len(batches), err)
	}
	// The second record starts where the first one ends.
	recStart := int64(len(encodeBatch(Batch{PrevVersion: 1, NewVersion: 2, Inserts: [][2]int64{{10, 20}}})))

	for cut := recStart + 1; cut < int64(len(whole)); cut += 7 {
		torn := filepath.Join(t.TempDir(), walName)
		if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		batches, goodSize, err := readWAL(torn)
		if err != nil {
			t.Fatalf("cut at %d: readWAL: %v", cut, err)
		}
		if len(batches) != 1 || goodSize != recStart {
			t.Fatalf("cut at %d: %d batches, goodSize %d (want 1, %d)", cut, len(batches), goodSize, recStart)
		}
		w, err := openWAL(torn, goodSize)
		if err != nil {
			t.Fatalf("cut at %d: openWAL: %v", cut, err)
		}
		w.close()
		if info, _ := os.Stat(torn); info.Size() != recStart {
			t.Fatalf("cut at %d: tail not truncated: size %d", cut, info.Size())
		}
	}
}

// TestWALCorruptRecord flips one payload byte of the final record: its
// CRC must reject it and the scan must keep the prefix.
func TestWALCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.append(Batch{PrevVersion: 1, NewVersion: 2, Inserts: [][2]int64{{1, 2}}})
	w.append(Batch{PrevVersion: 2, NewVersion: 3, Inserts: [][2]int64{{3, 4}}})
	w.close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	batches, goodSize, err := readWAL(path)
	if err != nil {
		t.Fatalf("readWAL: %v", err)
	}
	if len(batches) != 1 {
		t.Fatalf("corrupt final record not dropped: %d batches survive", len(batches))
	}
	if goodSize >= int64(len(data)) {
		t.Fatalf("goodSize %d includes the corrupt record", goodSize)
	}
}

// TestStoreRecovery drives the full cycle on a corpus graph: checkpoint,
// durable edits, crash (no clean shutdown), reopen, and asserts the
// recovered graph is the exact compaction of snapshot + WAL.
func TestStoreRecovery(t *testing.T) {
	base := difftest.Corpus()[0].G
	dir := t.TempDir()
	st, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, ok := st.Graph(); ok {
		t.Fatal("fresh store claims to hold a graph")
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	// Apply two batches through a real overlay so the logged versions are
	// exactly what replay must reproduce.
	delta := graph.NewDeltaAt(base, 1)
	v0 := delta.Version()
	ins1 := [][2]int64{{9001, 9002}, {9002, 9003}, {9001, 9003}}
	for _, e := range ins1 {
		delta.InsertEdge(e[0], e[1])
	}
	if err := st.Append(Batch{PrevVersion: v0, NewVersion: delta.Version(), Inserts: ins1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	v1 := delta.Version()
	del2 := [][2]int64{{9001, 9002}}
	for _, e := range del2 {
		delta.DeleteEdge(e[0], e[1])
	}
	if err := st.Append(Batch{PrevVersion: v1, NewVersion: delta.Version(), Deletes: del2}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	want := delta.Compact()
	wantVersion := delta.Version()
	// No st.Close(): the crash keeps the mapping alive and the WAL as-is.

	st2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	g, version, ok := st2.Graph()
	if !ok {
		t.Fatal("recovered store has no graph")
	}
	if version != wantVersion {
		t.Fatalf("recovered version %d, want %d", version, wantVersion)
	}
	if replayed, torn := st2.Replayed(); replayed != 2 || torn {
		t.Fatalf("replayed=%d torn=%v, want 2, false", replayed, torn)
	}
	sameGraph(t, g, want)

	// A checkpoint folds the WAL: the next open replays nothing.
	if err := st2.Checkpoint(g, version); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if st2.Pending() != 0 {
		t.Fatalf("pending = %d after checkpoint", st2.Pending())
	}
	st2.Close()
	st3, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer st3.Close()
	if replayed, _ := st3.Replayed(); replayed != 0 {
		t.Fatalf("replayed %d batches after checkpoint", replayed)
	}
	g3, v3, _ := st3.Graph()
	if v3 != wantVersion {
		t.Fatalf("version after checkpointed reopen: %d, want %d", v3, wantVersion)
	}
	sameGraph(t, g3, want)
}

// TestStoreCrashBetweenSnapshotAndTruncate covers the checkpoint's
// in-between state: the new snapshot landed (rename succeeded) but the
// process died before the WAL reset. Replay must skip every record the
// snapshot already folded in.
func TestStoreCrashBetweenSnapshotAndTruncate(t *testing.T) {
	base := difftest.Corpus()[1].G
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}
	delta := graph.NewDeltaAt(base, 1)
	ins := [][2]int64{{7001, 7002}, {7002, 7003}}
	v0 := delta.Version()
	for _, e := range ins {
		delta.InsertEdge(e[0], e[1])
	}
	if err := st.Append(Batch{PrevVersion: v0, NewVersion: delta.Version(), Inserts: ins}); err != nil {
		t.Fatal(err)
	}
	want := delta.Compact()
	wantVersion := delta.Version()

	// Simulate the torn checkpoint: write the new snapshot directly,
	// leaving the WAL untouched.
	if err := WriteSnapshot(filepath.Join(dir, snapshotName), want, wantVersion); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	g, version, _ := st2.Graph()
	if version != wantVersion {
		t.Fatalf("version = %d, want %d", version, wantVersion)
	}
	if replayed, _ := st2.Replayed(); replayed != 0 {
		t.Fatalf("replayed %d batches the snapshot already covers", replayed)
	}
	sameGraph(t, g, want)
}

// TestStoreStaleTmpCleanup: a crash mid-checkpoint leaves a temp file
// that must never shadow the real snapshot and must be swept at open.
func TestStoreStaleTmpCleanup(t *testing.T) {
	base := difftest.Corpus()[2].G
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, snapshotName+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("reopen with stale tmp: %v", err)
	}
	defer st2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale %s survived open", tmp)
	}
	g, _, ok := st2.Graph()
	if !ok {
		t.Fatal("graph lost")
	}
	sameGraph(t, g, base)
}

// TestStoreRejectsBrokenChain: a WAL record whose PrevVersion does not
// chain onto the store is damage a crash cannot produce. Append refuses
// to write one in the first place, and Open fails on a log that holds one
// anyway (planted directly on disk here, bypassing the guard).
func TestStoreRejectsBrokenChain(t *testing.T) {
	base := difftest.Corpus()[0].G
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}
	bad := Batch{PrevVersion: 5, NewVersion: 6, Inserts: [][2]int64{{1, 2}}}
	if err := st.Append(bad); err == nil {
		t.Fatal("Append accepted a batch that does not chain onto the store")
	}
	st.Close()

	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeBatch(bad)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); !IsCorrupt(err) {
		t.Fatalf("open with non-chaining WAL: err = %v, want corruption", err)
	}
}

// TestIndexRoundTrip persists and reloads a real hierarchy, asserting the
// reassembled tree serves the same levels, and that a version mismatch is
// silently ignored rather than served.
func TestIndexRoundTrip(t *testing.T) {
	tc := difftest.Corpus()[0]
	tree, err := hierarchy.Build(tc.G, hierarchy.Options{})
	if err != nil {
		t.Fatalf("hierarchy.Build: %v", err)
	}
	path := filepath.Join(t.TempDir(), indexName)
	if err := writeIndex(path, tree, 42, 12.5); err != nil {
		t.Fatalf("writeIndex: %v", err)
	}

	got, buildMS, ok, err := readIndex(path, 42, cohesion.KVCC)
	if err != nil || !ok {
		t.Fatalf("readIndex: ok=%v err=%v", ok, err)
	}
	if buildMS != 12.5 {
		t.Fatalf("buildMS = %v, want 12.5", buildMS)
	}
	if got.MaxK != tree.MaxK || got.BuiltMaxK != tree.BuiltMaxK || got.Size() != tree.Size() {
		t.Fatalf("tree shape: got (maxK=%d built=%d size=%d), want (%d, %d, %d)",
			got.MaxK, got.BuiltMaxK, got.Size(), tree.MaxK, tree.BuiltMaxK, tree.Size())
	}
	for k := 1; k <= tree.MaxK; k++ {
		wantSigs := difftest.Signatures(tree.LevelComponents(k))
		gotSigs := difftest.Signatures(got.LevelComponents(k))
		if !reflect.DeepEqual(gotSigs, wantSigs) {
			t.Fatalf("level %d differs after round trip", k)
		}
	}

	if _, _, ok, err := readIndex(path, 41, cohesion.KVCC); err != nil || ok {
		t.Fatalf("stale-version index: ok=%v err=%v, want ignored", ok, err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := readIndex(path, 42, cohesion.KVCC); !IsCorrupt(err) {
		t.Fatalf("damaged index: err = %v, want corruption", err)
	}
}
