package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"kvcc/graph"
	"kvcc/internal/failpoint"
)

// Snapshot header layout (little-endian, 64 bytes):
//
//	[ 0: 8)  magic "KVCCSNP1"
//	[ 8:12)  format version (u32)
//	[12:16)  flags (u32, reserved)
//	[16:24)  n  — vertex count (u64)
//	[24:32)  m  — undirected edge count (u64)
//	[32:40)  graph version stamp (u64)
//	[40:48)  payload CRC64-ECMA over everything after the header
//	[48:56)  header CRC64-ECMA over bytes [0:48)
//	[56:64)  reserved
//
// Payload, in order, each section a multiple of 8 bytes so the mmap'd
// regions stay 8-aligned for in-place aliasing:
//
//	offsets  (n+1) x int64   CSR offsets
//	edges    2m    x int64   flat neighbor array
//	labels   n     x int64   vertex labels
//
// Opening a snapshot reads and verifies only the 64-byte header plus the
// file size — O(1) — and trusts the payload to the page cache until
// Verify is called (full CRC + CSR invariant validation).

// Snapshot is one opened on-disk CSR snapshot. The Graph it exposes
// shares memory with the mapping, so the Snapshot must stay open for as
// long as the Graph (or any Delta rebased on it) is reachable.
type Snapshot struct {
	path       string
	g          *graph.Graph
	version    uint64
	payloadCRC uint64
	data       []byte // whole file, mmap'd (or heap on non-mmap platforms)
	unmap      func() error
	closed     bool

	// counters, when set by EnablePaging, receives release/eviction
	// accounting; see paging.go.
	counters *PagingCounters
}

// snapshotSize returns the exact file size a well-formed snapshot with
// the given counts must have.
func snapshotSize(n, m int64) int64 {
	return snapshotHeader + 8*((n+1)+2*m+n)
}

// WriteSnapshot atomically writes g (stamped with the given overlay
// version) as a snapshot file at path: the bytes land in path+".tmp"
// first and are fsync'd before a rename makes them visible, so a crash
// mid-write can never leave a half-written file under the real name.
func WriteSnapshot(path string, g *graph.Graph, version uint64) error {
	offsets, edges := g.Adjacency()
	labels := g.Labels()
	return writeSnapshotAtomic(path, int64(g.NumVertices()), int64(g.NumEdges()), version,
		func(w io.Writer, buf []byte) error {
			if err := writeInts(w, offsets, buf); err != nil {
				return err
			}
			if err := writeInts(w, edges, buf); err != nil {
				return err
			}
			return writeInt64s(w, labels, buf)
		})
}

// writeSnapshotAtomic is the shared write skeleton behind WriteSnapshot
// and WriteSnapshotStream: temp file, zeroed header placeholder, payload
// streamed through the CRC by writePayload (which receives a 64 KiB
// scratch buffer), real header written in place, fsync, rename, dirsync.
// Both failpoints fire here, so the streaming writer inherits exactly
// the crash windows the snapshot tests probe.
func writeSnapshotAtomic(path string, n, m int64, version uint64, writePayload func(w io.Writer, buf []byte) error) error {
	if err := failpoint.Eval("store/snapshot-write"); err != nil {
		return err
	}
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}

	// Single pass: a zeroed header placeholder, then the payload streamed
	// through the CRC, then the real header written in place.
	crc := crc64.New(crcTable)
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)
	var header [snapshotHeader]byte
	if _, err := w.Write(header[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := writePayload(w, make([]byte, 64*1024)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}

	// The stored payload CRC is defined over (64 zero bytes ++ payload):
	// the hash ran while the header placeholder was still zeroed, which
	// keeps the writer single-pass, and Verify replays the same
	// construction.
	copy(header[0:8], snapshotMagic)
	binary.LittleEndian.PutUint32(header[8:12], formatVersion)
	binary.LittleEndian.PutUint32(header[12:16], 0)
	binary.LittleEndian.PutUint64(header[16:24], uint64(n))
	binary.LittleEndian.PutUint64(header[24:32], uint64(m))
	binary.LittleEndian.PutUint64(header[32:40], version)
	binary.LittleEndian.PutUint64(header[40:48], crc.Sum64())
	binary.LittleEndian.PutUint64(header[48:56], crc64.Checksum(header[0:48], crcTable))
	if _, err := f.WriteAt(header[:], 0); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := failpoint.Eval("store/snapshot-sync"); err != nil {
		// Simulated crash between writing the temp file and the rename:
		// the temp stays behind exactly as a dead process would leave it,
		// and the next Open must sweep it without ever serving it.
		f.Close()
		return err
	}
	return atomicReplace(f, tmp, path)
}

// OpenSnapshot maps the snapshot at path and adopts its CSR arrays as a
// Graph. Work done here is O(1) in the graph size: the 64-byte header is
// read and checksum-verified, the file size is checked against the
// header's counts, and the payload is mapped — not read. On hosts that
// cannot alias little-endian int64 arrays in place the payload is
// decoded into the heap instead.
func OpenSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var header [snapshotHeader]byte
	if _, err := io.ReadFull(f, header[:]); err != nil {
		return nil, &corruptError{path: path, msg: fmt.Sprintf("short header: %v", err)}
	}
	if string(header[0:8]) != snapshotMagic {
		return nil, &corruptError{path: path, msg: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(header[8:12]); v != formatVersion {
		return nil, &corruptError{path: path, msg: fmt.Sprintf("unsupported format version %d", v)}
	}
	if got, want := crc64.Checksum(header[0:48], crcTable), binary.LittleEndian.Uint64(header[48:56]); got != want {
		return nil, &corruptError{path: path, msg: "header checksum mismatch"}
	}
	n := int64(binary.LittleEndian.Uint64(header[16:24]))
	m := int64(binary.LittleEndian.Uint64(header[24:32]))
	version := binary.LittleEndian.Uint64(header[32:40])
	if n < 0 || m < 0 {
		return nil, &corruptError{path: path, msg: "negative counts"}
	}
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if info.Size() != snapshotSize(n, m) {
		return nil, &corruptError{path: path,
			msg: fmt.Sprintf("size %d does not match header (want %d for n=%d m=%d)", info.Size(), snapshotSize(n, m), n, m)}
	}

	if err := failpoint.Eval("store/mmap"); err != nil {
		return nil, fmt.Errorf("store: map %s: %w", path, err)
	}
	data, unmap, err := mapFile(f, int(info.Size()))
	if err != nil {
		return nil, fmt.Errorf("store: map %s: %w", path, err)
	}

	var offsets, edges []int
	var labels []int64
	off := int64(snapshotHeader)
	offBytes := data[off : off+8*(n+1)]
	edgeBytes := data[off+8*(n+1) : off+8*(n+1)+16*m]
	labelBytes := data[off+8*(n+1)+16*m:]
	if aliasable {
		offsets = aliasInts(offBytes, int(n+1))
		edges = aliasInts(edgeBytes, int(2*m))
		labels = aliasInt64s(labelBytes, int(n))
	} else {
		offsets = decodeInts(offBytes, int(n+1))
		edges = decodeInts(edgeBytes, int(2*m))
		labels = decodeInt64s(labelBytes, int(n))
	}
	g, err := graph.AdoptCSR(offsets, edges, labels, int(m))
	if err != nil {
		unmap()
		return nil, &corruptError{path: path, msg: err.Error()}
	}
	return &Snapshot{
		path:       path,
		g:          g,
		version:    version,
		payloadCRC: binary.LittleEndian.Uint64(header[40:48]),
		data:       data,
		unmap:      unmap,
	}, nil
}

// Graph returns the adopted graph. It shares memory with the snapshot's
// mapping: the Snapshot must not be Closed while the Graph is in use.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Version returns the overlay version the snapshot was checkpointed at.
func (s *Snapshot) Version() uint64 { return s.version }

// Verify reads the entire payload, checks it against the header's CRC64,
// and validates the full set of CSR invariants. This is the deep check
// deliberately left out of OpenSnapshot's O(1) path; tests, the kvccd
// selftest and suspicious operators call it.
func (s *Snapshot) Verify() error {
	crc := crc64.New(crcTable)
	var zero [snapshotHeader]byte
	crc.Write(zero[:]) // the stored CRC covers (zero header ++ payload)
	if s.data != nil {
		crc.Write(s.data[snapshotHeader:])
	} else {
		f, err := os.Open(s.path)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.Seek(snapshotHeader, io.SeekStart); err != nil {
			return err
		}
		if _, err := io.Copy(crc, f); err != nil {
			return err
		}
	}
	if crc.Sum64() != s.payloadCRC {
		return &corruptError{path: s.path, msg: "payload checksum mismatch"}
	}
	if err := graph.ValidateCSR(s.g); err != nil {
		return &corruptError{path: s.path, msg: err.Error()}
	}
	return nil
}

// Close releases the mapping. Every Graph (and subgraph, Delta, or
// enumeration result sharing its arrays) obtained from this snapshot
// becomes invalid: call Close only when the graph is unreachable, i.e.
// when the owning server has stopped serving it.
func (s *Snapshot) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.unmap()
}
