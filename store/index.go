package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"kvcc/cohesion"
	"kvcc/graph"
	"kvcc/hierarchy"
)

// indexFileName maps a measure to its index file inside a store
// directory. The k-VCC name predates the measure abstraction.
func indexFileName(m cohesion.Measure) string {
	switch m {
	case cohesion.KECC:
		return indexNameKECC
	case cohesion.KCore:
		return indexNameKCore
	default:
		return indexName
	}
}

// Persisted hierarchy index: a small checksummed header followed by a
// gob-encoded flattening of the tree. Unlike the graph snapshot the
// index is always decoded into the heap — it is a pointer structure, not
// a flat array — so the format optimizes for simplicity. The header's
// version stamp ties the index to the exact overlay version it was built
// from; a loader whose recovered graph is at any other version discards
// the file, because an index of a different graph state must never serve.
//
// Header layout (little-endian, 40 bytes):
//
//	[ 0: 8)  magic "KVCCIDX1"
//	[ 8:12)  format version (u32)
//	[12:16)  cohesion measure id (u32; 0 = kvcc, 1 = kecc, 2 = kcore)
//	[16:24)  graph version stamp (u64)
//	[24:32)  payload CRC64-ECMA
//	[32:40)  header CRC64-ECMA over bytes [0:32)
//
// The measure field was the reserved word until the measure abstraction
// existed; pre-measure files wrote 0 there, which reads back as kvcc —
// exactly what those files contain.

const indexHeader = 40

// indexPayload is the gob image of one hierarchy.Tree.
type indexPayload struct {
	BuiltMaxK int
	BuildMS   float64
	Stats     hierarchy.Stats
	// LevelCounts[k-1] is the node count of level k; Nodes concatenates
	// the levels in order, each level in canonical order.
	LevelCounts []int
	Nodes       []indexNode
}

// indexNode is one flattened hierarchy node: its component's exact CSR
// arrays (so the reassembled subgraph is bit-identical to the enumerated
// one) and the global index of its parent node (-1 for level-1 roots).
type indexNode struct {
	Parent  int
	M       int
	Offsets []int
	Edges   []int
	Labels  []int64
}

// flattenTree renders a finished tree into its gob image.
func flattenTree(t *hierarchy.Tree, buildMS float64) (*indexPayload, error) {
	p := &indexPayload{
		BuiltMaxK: t.BuiltMaxK,
		BuildMS:   buildMS,
		Stats:     t.Stats,
	}
	nodeIdx := make(map[*hierarchy.Node]int)
	for k := 1; k <= t.MaxK; k++ {
		level := t.Level(k)
		p.LevelCounts = append(p.LevelCounts, len(level))
		for _, n := range level {
			parent := -1
			if n.Parent != nil {
				idx, ok := nodeIdx[n.Parent]
				if !ok {
					return nil, fmt.Errorf("store: index flatten: level-%d node with unflattened parent", k)
				}
				parent = idx
			}
			offsets, edges := n.Component.Adjacency()
			nodeIdx[n] = len(p.Nodes)
			p.Nodes = append(p.Nodes, indexNode{
				Parent:  parent,
				M:       n.Component.NumEdges(),
				Offsets: offsets,
				Edges:   edges,
				Labels:  n.Component.Labels(),
			})
		}
	}
	return p, nil
}

// reassembleTree inverts flattenTree.
func (p *indexPayload) reassembleTree() (*hierarchy.Tree, error) {
	nodes := make([]*hierarchy.Node, 0, len(p.Nodes))
	levels := make([][]*hierarchy.Node, 0, len(p.LevelCounts))
	i := 0
	for k := 1; k <= len(p.LevelCounts); k++ {
		count := p.LevelCounts[k-1]
		if i+count > len(p.Nodes) {
			return nil, fmt.Errorf("store: index: level counts exceed %d nodes", len(p.Nodes))
		}
		level := make([]*hierarchy.Node, 0, count)
		for j := 0; j < count; j++ {
			in := p.Nodes[i]
			g, err := graph.AdoptCSR(in.Offsets, in.Edges, in.Labels, in.M)
			if err != nil {
				return nil, fmt.Errorf("store: index: node %d: %w", i, err)
			}
			n := &hierarchy.Node{K: k, Component: g}
			if in.Parent >= 0 {
				if in.Parent >= len(nodes) {
					return nil, fmt.Errorf("store: index: node %d: forward parent %d", i, in.Parent)
				}
				n.Parent = nodes[in.Parent]
			}
			nodes = append(nodes, n)
			level = append(level, n)
			i++
		}
		levels = append(levels, level)
	}
	if i != len(p.Nodes) {
		return nil, fmt.Errorf("store: index: %d nodes not covered by level counts", len(p.Nodes)-i)
	}
	return hierarchy.FromLevels(levels, p.BuiltMaxK, p.Stats), nil
}

// writeIndex atomically persists a finished tree stamped with the graph
// version it was built from.
func writeIndex(path string, t *hierarchy.Tree, version uint64, buildMS float64) error {
	payload, err := flattenTree(t, buildMS)
	if err != nil {
		return err
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return err
	}
	var header [indexHeader]byte
	copy(header[0:8], indexMagic)
	binary.LittleEndian.PutUint32(header[8:12], formatVersion)
	binary.LittleEndian.PutUint32(header[12:16], uint32(t.Measure))
	binary.LittleEndian.PutUint64(header[16:24], version)
	binary.LittleEndian.PutUint64(header[24:32], crc64.Checksum(body.Bytes(), crcTable))
	binary.LittleEndian.PutUint64(header[32:40], crc64.Checksum(header[0:32], crcTable))

	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(header[:]); err == nil {
		_, err = f.Write(body.Bytes())
	} else {
		f.Close()
		os.Remove(tmp)
		return err
	}
	return atomicReplace(f, tmp, path)
}

// readIndex loads a persisted index, requiring its stamp to equal the
// recovered graph version and its measure id to equal the measure the
// caller expects for this file. It returns ok=false — not an error — when
// the file is missing or stamped with a different version (stale after a
// crash that lost the index but replayed newer WAL records, say); errors
// are reserved for a present, matching file that is damaged.
func readIndex(path string, wantVersion uint64, wantMeasure cohesion.Measure) (t *hierarchy.Tree, buildMS float64, ok bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()

	var header [indexHeader]byte
	if _, err := io.ReadFull(f, header[:]); err != nil {
		return nil, 0, false, &corruptError{path: path, msg: fmt.Sprintf("short header: %v", err)}
	}
	if string(header[0:8]) != indexMagic {
		return nil, 0, false, &corruptError{path: path, msg: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(header[8:12]); v != formatVersion {
		return nil, 0, false, &corruptError{path: path, msg: fmt.Sprintf("unsupported format version %d", v)}
	}
	if got, want := crc64.Checksum(header[0:32], crcTable), binary.LittleEndian.Uint64(header[32:40]); got != want {
		return nil, 0, false, &corruptError{path: path, msg: "header checksum mismatch"}
	}
	if m := binary.LittleEndian.Uint32(header[12:16]); m != uint32(wantMeasure) {
		// A measure file holding some other measure's tree cannot serve;
		// it is damage, not staleness (the file name determines the
		// expected measure).
		return nil, 0, false, &corruptError{path: path, msg: fmt.Sprintf("measure id %d, want %d", m, uint32(wantMeasure))}
	}
	if binary.LittleEndian.Uint64(header[16:24]) != wantVersion {
		return nil, 0, false, nil // index of another graph state: ignore
	}
	body, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, false, err
	}
	if crc64.Checksum(body, crcTable) != binary.LittleEndian.Uint64(header[24:32]) {
		return nil, 0, false, &corruptError{path: path, msg: "payload checksum mismatch"}
	}
	var payload indexPayload
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&payload); err != nil {
		return nil, 0, false, &corruptError{path: path, msg: fmt.Sprintf("gob: %v", err)}
	}
	tree, err := payload.reassembleTree()
	if err != nil {
		return nil, 0, false, err
	}
	tree.Measure = wantMeasure
	return tree, payload.BuildMS, true, nil
}
