package store

import "syscall"

// madvise wrappers; all best-effort (errors discarded — advice that the
// kernel refuses is advice not taken). Callers pass page-aligned regions
// (a whole mapping, or pageSpan output). The standard syscall package
// only wraps madvise on linux, which is also the only platform the
// serving fleet pages on; the BSDs/darwin keep their mmap support but
// take the no-advice path.

func madviseSequential(b []byte) {
	if len(b) > 0 {
		syscall.Madvise(b, syscall.MADV_SEQUENTIAL)
	}
}

func madviseWillNeed(b []byte) {
	if len(b) > 0 {
		syscall.Madvise(b, syscall.MADV_WILLNEED)
	}
}

func madviseDontNeed(b []byte) {
	if len(b) > 0 {
		syscall.Madvise(b, syscall.MADV_DONTNEED)
	}
}
