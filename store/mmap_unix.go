//go:build linux || darwin || freebsd || netbsd || openbsd

package store

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform serves snapshots straight
// from the page cache. Where false, openSnapshotBytes reads the file
// into the heap instead — same bytes, no O(1) startup.
const mmapSupported = true

// mapFile maps size bytes of f read-only and returns the mapping plus
// its releaser. The mapping outlives f being closed; pages fault in on
// first access, so mapping a huge snapshot is O(1).
func mapFile(f *os.File, size int) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
