package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"kvcc"
	"kvcc/gen"
	"kvcc/graph"
	"kvcc/internal/difftest"
)

// TestAdoptEvictRoundTrip maps every corpus graph, evicts its pages (a
// hard MADV_DONTNEED plus page-cache drop on Linux), and asserts the
// re-faulted adjacency is byte-identical to both the pre-eviction copy
// and the original heap graph. This is the core safety property of the
// paging layer: advice and eviction may only ever cost time.
func TestAdoptEvictRoundTrip(t *testing.T) {
	var counters PagingCounters
	for _, tc := range difftest.Corpus() {
		t.Run(tc.Name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), snapshotName)
			if err := WriteSnapshot(path, tc.G, 5); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			snap, err := OpenSnapshot(path)
			if err != nil {
				t.Fatalf("OpenSnapshot: %v", err)
			}
			defer snap.Close()
			snap.EnablePaging(&counters)
			g := snap.Graph()

			// Copy the adopted arrays while they are warm, then evict and
			// force every page to re-fault through the comparison.
			warmOff, warmEdges := g.Adjacency()
			offCopy := append([]int(nil), warmOff...)
			edgeCopy := append([]int(nil), warmEdges...)
			labelCopy := append([]int64(nil), g.Labels()...)

			if err := snap.Evict(); err != nil {
				t.Fatalf("Evict: %v", err)
			}

			coldOff, coldEdges := g.Adjacency()
			if !reflect.DeepEqual(coldOff, offCopy) {
				t.Fatal("offsets changed across eviction")
			}
			if len(coldEdges) > 0 && !reflect.DeepEqual(coldEdges, edgeCopy) {
				t.Fatal("edges changed across eviction")
			}
			if len(g.Labels()) > 0 && !reflect.DeepEqual(g.Labels(), labelCopy) {
				t.Fatal("labels changed across eviction")
			}
			sameGraph(t, g, tc.G)
			if err := snap.Verify(); err != nil {
				t.Fatalf("Verify after eviction: %v", err)
			}
		})
	}
	if mmapSupported && counters.Evictions.Load() == 0 {
		t.Fatal("evictions were not counted on an mmap platform")
	}
}

// TestThreePathDifferential enumerates every corpus graph three ways —
// heap-resident, mmap-adopted, and evicted-then-re-faulted — and
// requires identical component signatures. The adopted and cold paths
// exercise the copy-out boundary: flow engines must never read the
// mapping directly, so advice and eviction cannot perturb results.
func TestThreePathDifferential(t *testing.T) {
	var counters PagingCounters
	for _, tc := range difftest.Corpus() {
		t.Run(tc.Name, func(t *testing.T) {
			k := 3
			if k > tc.MaxK {
				k = tc.MaxK
			}
			heap, err := kvcc.Enumerate(tc.G, k)
			if err != nil {
				t.Fatalf("heap enumerate: %v", err)
			}
			want := difftest.Signatures(heap.Components)

			path := filepath.Join(t.TempDir(), snapshotName)
			if err := WriteSnapshot(path, tc.G, 1); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			snap, err := OpenSnapshot(path)
			if err != nil {
				t.Fatalf("OpenSnapshot: %v", err)
			}
			defer snap.Close()
			snap.EnablePaging(&counters)
			g := snap.Graph()

			adopted, err := kvcc.Enumerate(g, k)
			if err != nil {
				t.Fatalf("adopted enumerate: %v", err)
			}
			if got := difftest.Signatures(adopted.Components); !reflect.DeepEqual(got, want) {
				t.Fatalf("mmap-adopted path diverged at k=%d:\n  got  %v\n  want %v", k, got, want)
			}

			if err := snap.Evict(); err != nil {
				t.Fatalf("Evict: %v", err)
			}
			cold, err := kvcc.Enumerate(g, k)
			if err != nil {
				t.Fatalf("cold enumerate: %v", err)
			}
			if got := difftest.Signatures(cold.Components); !reflect.DeepEqual(got, want) {
				t.Fatalf("evict-then-re-fault path diverged at k=%d:\n  got  %v\n  want %v", k, got, want)
			}
		})
	}
	// The mapped runs must actually have advised: every reduction opens
	// with a sequential hint. (WILLNEED prefetches fire only when the
	// reduction peels nothing — otherwise the k-core is already a heap
	// copy — so they get their own test below.)
	if mmapSupported && aliasable && counters.SequentialHints.Load() == 0 {
		t.Fatal("no sequential hints issued across the mapped corpus runs")
	}
}

// TestWillNeedPrefetch pins the next-component prefetch on the one
// shape where it can fire: a mapped graph whose whole k-core survives
// reduction (zero peeled — any peeling copies the graph to the heap)
// in several components, so the component loop iterates the mapping
// directly and advises each next range.
func TestWillNeedPrefetch(t *testing.T) {
	if !mmapSupported || !aliasable {
		t.Skip("prefetch hints require in-place mmap adoption")
	}
	// Five disjoint K8 blocks: every degree is 7, so the 3-core is the
	// whole graph and the five components are visited off the mapping.
	const blocks, size = 5, 8
	var edges [][2]int
	for b := 0; b < blocks; b++ {
		lo := b * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{lo + i, lo + j})
			}
		}
	}
	g := graph.FromEdges(blocks*size, edges)

	path := filepath.Join(t.TempDir(), snapshotName)
	if err := WriteSnapshot(path, g, 1); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	var counters PagingCounters
	snap.EnablePaging(&counters)

	res, err := kvcc.Enumerate(snap.Graph(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != blocks {
		t.Fatalf("got %d components, want %d", len(res.Components), blocks)
	}
	// One hint per component that has a successor.
	if got := counters.WillNeedHints.Load(); got != blocks-1 {
		t.Fatalf("WILLNEED hints = %d, want %d", got, blocks-1)
	}
}

// TestWriteSnapshotStreamMatchesHeap: the streaming writer must produce
// the byte-identical file the heap writer produces for the same logical
// graph — same header, same CRCs, same payload — so every snapshot
// reader and recovery path is automatically shared.
func TestWriteSnapshotStreamMatchesHeap(t *testing.T) {
	base := difftest.Corpus()[0].G
	edits := [][2]int64{{9001, 9002}, {9002, 9003}, {9001, 9003}, {0, 9001}}

	mkDelta := func() *graph.Delta {
		d := graph.NewDeltaAt(base, 1)
		for _, e := range edits {
			d.InsertEdge(e[0], e[1])
		}
		d.DeleteEdge(9002, 9003)
		return d
	}
	dStream, dHeap := mkDelta(), mkDelta()

	dir := t.TempDir()
	streamPath := filepath.Join(dir, "stream.kvcc")
	heapPath := filepath.Join(dir, "heap.kvcc")
	if err := WriteSnapshotStream(streamPath, DeltaStream(dStream)); err != nil {
		t.Fatalf("WriteSnapshotStream: %v", err)
	}
	if err := WriteSnapshot(heapPath, dHeap.Compact(), dHeap.Version()); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	streamed, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	heaped, err := os.ReadFile(heapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, heaped) {
		t.Fatalf("streamed snapshot differs from heap-written snapshot (%d vs %d bytes)",
			len(streamed), len(heaped))
	}
}

// TestCompactToStoreRoundTrip drives the spill path end to end: a WAL'd
// batch plus a pending one folded straight to disk, the mmap'd result
// adopted as the serving snapshot, the idempotency key retained without
// a WAL record, old readers kept valid on the retired mapping, and the
// whole state recovered after a crash.
func TestCompactToStoreRoundTrip(t *testing.T) {
	base := difftest.Corpus()[5].G // planted communities
	dir := t.TempDir()
	st, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}
	// Reopen so the base graph is served from the mapped snapshot — the
	// spill must retire that mapping, not unmap it under old readers.
	st.Close()
	st, err = Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	oldG, _, _ := st.Graph()

	ins1 := [][2]int64{{8001, 8002}, {8002, 8003}}
	ins2 := [][2]int64{{8001, 8003}, {8003, 8004}}
	apply := func(d *graph.Delta) {
		for _, e := range append(append([][2]int64(nil), ins1...), ins2...) {
			d.InsertEdge(e[0], e[1])
		}
	}

	delta := graph.NewDeltaAt(base, 1)
	v0 := delta.Version()
	for _, e := range ins1 {
		delta.InsertEdge(e[0], e[1])
	}
	if err := st.Append(Batch{PrevVersion: v0, NewVersion: delta.Version(), Inserts: ins1}); err != nil {
		t.Fatal(err)
	}
	for _, e := range ins2 {
		delta.InsertEdge(e[0], e[1])
	}

	ref := graph.NewDeltaAt(base, 1)
	apply(ref)
	want := ref.Compact()
	wantVersion := ref.Version()
	if wantVersion != delta.Version() {
		t.Fatalf("reference delta diverged: %d vs %d", wantVersion, delta.Version())
	}

	g, err := st.CompactToStore(delta, "spill-key-1")
	if err != nil {
		t.Fatalf("CompactToStore: %v", err)
	}
	sameGraph(t, g, want)
	if _, v, _ := st.Graph(); v != wantVersion {
		t.Fatalf("store version %d after spill, want %d", v, wantVersion)
	}
	if st.Pending() != 0 {
		t.Fatalf("pending = %d after spill, want 0", st.Pending())
	}
	if got := st.IdempotencyKeys()["spill-key-1"]; got != wantVersion {
		t.Fatalf("idempotency key maps to %d, want %d", got, wantVersion)
	}
	if mmapSupported && aliasable && !g.External() {
		t.Fatal("spilled graph is not externally backed on an mmap platform")
	}
	if ps := st.PagingStats(); ps.RetiredMappings != 1 {
		t.Fatalf("retired mappings = %d, want 1", ps.RetiredMappings)
	}

	// The pre-spill snapshot was retired, not unmapped: readers that
	// captured it keep seeing the old bytes.
	sameGraph(t, oldG, base)

	// The delta was rebased onto the adopted graph: the next edit chains
	// forward from the spilled version and lands on the mapped base.
	if delta.InsertEdge(8001, 8004); delta.Version() <= wantVersion {
		t.Fatalf("post-spill edit left version at %d, want > %d", delta.Version(), wantVersion)
	}

	// Crash (no Close) and recover: the snapshot alone carries the state.
	st2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	g2, v2, ok := st2.Graph()
	if !ok || v2 != wantVersion {
		t.Fatalf("recovered version %d (ok=%v), want %d", v2, ok, wantVersion)
	}
	if replayed, torn := st2.Replayed(); replayed != 0 || torn {
		t.Fatalf("replayed=%d torn=%v after spill, want 0, false", replayed, torn)
	}
	if got := st2.IdempotencyKeys()["spill-key-1"]; got != wantVersion {
		t.Fatalf("recovered idempotency key maps to %d, want %d", got, wantVersion)
	}
	sameGraph(t, g2, want)
	st.Close()
}

// TestCompactToStoreCrashWindow simulates dying inside the spill's only
// in-between state: the streamed snapshot has been renamed into place
// but the WAL was not reset. Recovery must serve the snapshot and skip
// every WAL record it already folds in — the same invariant the
// checkpoint path guarantees, inherited because both writers share
// writeSnapshotAtomic.
func TestCompactToStoreCrashWindow(t *testing.T) {
	base := difftest.Corpus()[1].G
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}
	delta := graph.NewDeltaAt(base, 1)
	v0 := delta.Version()
	ins := [][2]int64{{6001, 6002}, {6002, 6003}}
	for _, e := range ins {
		delta.InsertEdge(e[0], e[1])
	}
	if err := st.Append(Batch{PrevVersion: v0, NewVersion: delta.Version(), Inserts: ins}); err != nil {
		t.Fatal(err)
	}
	ref := graph.NewDeltaAt(base, 1)
	for _, e := range ins {
		ref.InsertEdge(e[0], e[1])
	}
	want := ref.Compact()
	wantVersion := ref.Version()

	// The spill's snapshot landed; the process dies before wal.reset.
	if err := WriteSnapshotStream(filepath.Join(dir, snapshotName), DeltaStream(delta)); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	g, version, _ := st2.Graph()
	if version != wantVersion {
		t.Fatalf("recovered version %d, want %d", version, wantVersion)
	}
	if replayed, _ := st2.Replayed(); replayed != 0 {
		t.Fatalf("replayed %d batches the spilled snapshot already covers", replayed)
	}
	sameGraph(t, g, want)
}

// TestCompactToStoreMemory pins the spill's reason to exist: folding a
// small delta over a large base allocates O(delta) + constant buffers,
// never the compacted CSR. The bound is far below the ~20 MB the heap
// Compact of this graph would allocate, so a regression to heap
// materialization fails immediately.
func TestCompactToStoreMemory(t *testing.T) {
	if !aliasable {
		t.Skip("heap-fallback platforms copy the payload; the O(delta) bound only holds with in-place adoption")
	}
	base := gen.Community(100_000, 1_100_000, 42)
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}
	delta := graph.NewDeltaAt(base, 1)
	for i := 0; i < 64; i++ {
		delta.InsertEdge(int64(1_000_000+i), int64(1_000_001+i))
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	g, err := st.CompactToStore(delta, "mem-key")
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatalf("CompactToStore: %v", err)
	}
	if !g.External() {
		t.Fatal("spilled graph not mmap-backed")
	}

	allocDelta := after.TotalAlloc - before.TotalAlloc
	offsets, edges := g.Adjacency()
	heapBytes := uint64(8 * (len(offsets) + len(edges) + len(g.Labels())))
	// Stream buffer (1 MB) + per-vertex run buffer + idempotency/WAL
	// bookkeeping. 4 MB leaves slack while staying well under the CSR.
	const bound = 4 << 20
	if allocDelta > bound {
		t.Fatalf("CompactToStore allocated %d bytes (bound %d; heap CSR would be %d)",
			allocDelta, uint64(bound), heapBytes)
	}
	if heapBytes < 4*bound {
		t.Fatalf("test graph too small to be meaningful: CSR is only %d bytes", heapBytes)
	}
}
