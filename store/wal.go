package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"kvcc/internal/failpoint"
)

// Batch is one durably logged edit batch: the raw insert/delete lists a
// client submitted, bracketed by the overlay version before and after
// applying them. Application is deterministic (effectiveness of each
// edit is a pure function of graph state), so replaying the same batch
// onto the same base always reproduces NewVersion — recovery checks
// exactly that.
type Batch struct {
	PrevVersion uint64
	NewVersion  uint64
	Inserts     [][2]int64
	Deletes     [][2]int64
	// Key is the client's idempotency key, when the batch carried one.
	// Logging it makes replay protection survive restarts: recovery
	// re-learns every applied key from the records it replays.
	Key string
}

// WAL record layout (little-endian):
//
//	[ 0: 4)  record magic "KVWA" (u32)
//	[ 4: 8)  payload length (u32)
//	[ 8:16)  payload CRC64-ECMA
//	[16:  )  payload:
//	          prev version (u64), new version (u64)
//	          insert count (u32), delete count (u32)
//	          inserts, then deletes: two int64 labels each
//	          optionally: key length (u32), idempotency key bytes
//
// The idempotency-key suffix is backward compatible both ways: a keyless
// batch encodes in the original layout (payload length is exactly the
// edit section), and the decoder accepts such records from logs written
// before keys existed.
//
// Appends are a single Write followed by fsync. A crash mid-append
// leaves a torn final record; replay detects it (short payload, bad
// magic, or CRC mismatch), drops it, and the next open truncates the
// file back to the last intact record.

// encodeBatch renders one record.
func encodeBatch(b Batch) []byte {
	payload := 24 + 16*(len(b.Inserts)+len(b.Deletes))
	if b.Key != "" {
		payload += 4 + len(b.Key)
	}
	rec := make([]byte, walHeader+payload)
	p := rec[walHeader:]
	binary.LittleEndian.PutUint64(p[0:8], b.PrevVersion)
	binary.LittleEndian.PutUint64(p[8:16], b.NewVersion)
	binary.LittleEndian.PutUint32(p[16:20], uint32(len(b.Inserts)))
	binary.LittleEndian.PutUint32(p[20:24], uint32(len(b.Deletes)))
	off := 24
	for _, e := range b.Inserts {
		binary.LittleEndian.PutUint64(p[off:], uint64(e[0]))
		binary.LittleEndian.PutUint64(p[off+8:], uint64(e[1]))
		off += 16
	}
	for _, e := range b.Deletes {
		binary.LittleEndian.PutUint64(p[off:], uint64(e[0]))
		binary.LittleEndian.PutUint64(p[off+8:], uint64(e[1]))
		off += 16
	}
	if b.Key != "" {
		binary.LittleEndian.PutUint32(p[off:], uint32(len(b.Key)))
		copy(p[off+4:], b.Key)
	}
	binary.LittleEndian.PutUint32(rec[0:4], walRecordMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(payload))
	binary.LittleEndian.PutUint64(rec[8:16], crc64.Checksum(p, crcTable))
	return rec
}

// decodeBatchPayload parses a record payload already validated by CRC.
func decodeBatchPayload(p []byte) (Batch, error) {
	if len(p) < 24 {
		return Batch{}, fmt.Errorf("payload too short (%d bytes)", len(p))
	}
	b := Batch{
		PrevVersion: binary.LittleEndian.Uint64(p[0:8]),
		NewVersion:  binary.LittleEndian.Uint64(p[8:16]),
	}
	nIns := int(binary.LittleEndian.Uint32(p[16:20]))
	nDel := int(binary.LittleEndian.Uint32(p[20:24]))
	editsEnd := 24 + 16*(nIns+nDel)
	switch {
	case editsEnd == len(p):
		// Legacy / keyless record.
	case editsEnd+4 <= len(p):
		keyLen := int(binary.LittleEndian.Uint32(p[editsEnd : editsEnd+4]))
		if editsEnd+4+keyLen != len(p) {
			return Batch{}, fmt.Errorf("payload length %d does not match %d+%d edits and key length %d",
				len(p), nIns, nDel, keyLen)
		}
		b.Key = string(p[editsEnd+4:])
	default:
		return Batch{}, fmt.Errorf("payload length %d does not match %d+%d edits", len(p), nIns, nDel)
	}
	off := 24
	b.Inserts = make([][2]int64, nIns)
	for i := range b.Inserts {
		b.Inserts[i][0] = int64(binary.LittleEndian.Uint64(p[off:]))
		b.Inserts[i][1] = int64(binary.LittleEndian.Uint64(p[off+8:]))
		off += 16
	}
	b.Deletes = make([][2]int64, nDel)
	for i := range b.Deletes {
		b.Deletes[i][0] = int64(binary.LittleEndian.Uint64(p[off:]))
		b.Deletes[i][1] = int64(binary.LittleEndian.Uint64(p[off+8:]))
		off += 16
	}
	return b, nil
}

// readWAL scans the log at path and returns every intact record plus the
// byte offset of the clean prefix. A torn or corrupt record ends the
// scan: everything from it onward is the tail a crash was allowed to
// mangle, and the caller truncates it away. A missing file is an empty
// log.
func readWAL(path string) (batches []Batch, goodSize int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < walHeader {
			break // torn header
		}
		if binary.LittleEndian.Uint32(rest[0:4]) != walRecordMagic {
			break // garbage — treat as tear, keep the clean prefix
		}
		payloadLen := int(binary.LittleEndian.Uint32(rest[4:8]))
		if payloadLen < 24 || walHeader+payloadLen > len(rest) {
			break // torn payload
		}
		payload := rest[walHeader : walHeader+payloadLen]
		if crc64.Checksum(payload, crcTable) != binary.LittleEndian.Uint64(rest[8:16]) {
			break // bit rot or tear inside the payload
		}
		b, err := decodeBatchPayload(payload)
		if err != nil {
			break
		}
		batches = append(batches, b)
		off += walHeader + payloadLen
	}
	return batches, int64(off), nil
}

// wal is the append handle for one log file, opened after recovery has
// already truncated any torn tail. good tracks the byte length of the
// clean record prefix: a failed append (partial write, failed fsync)
// rewinds the file to good so the failure can never leave garbage
// between records — without the rewind, every later append would land
// behind the tear and be silently dropped by the next recovery scan even
// though it was acknowledged. If the rewind itself fails the log is
// marked broken and refuses further appends: serving continues in
// memory, but no record that might be unrecoverable is ever acknowledged.
type wal struct {
	f      *os.File
	path   string
	good   int64
	broken bool
}

// openWAL opens (creating if needed) the log for appending, first
// truncating it to goodSize so a torn tail from the previous process
// can never sit between old and new records.
func openWAL(path string, goodSize int64) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() > goodSize {
		if err := f.Truncate(goodSize); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(goodSize, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, path: path, good: goodSize}, nil
}

// append durably adds one record: write, then fsync, before returning.
//
// Failpoints (chaos builds only) model the three ways a real append dies:
// store/wal-append fails before any byte lands (a clean rejection — the
// batch is provably not on disk), store/wal-torn writes a partial record
// and then "crashes" (recovery must detect and truncate the tear), and
// store/wal-sync writes the full record but fails the fsync (the
// ambiguous case: the unacknowledged batch may still be recovered).
func (w *wal) append(b Batch) error {
	if w.broken {
		return fmt.Errorf("store: wal %s: broken by an earlier failed append", w.path)
	}
	if err := failpoint.Eval("store/wal-append"); err != nil {
		return err
	}
	rec := encodeBatch(b)
	if err := failpoint.Eval("store/wal-torn"); err != nil {
		// Simulated crash mid-write: leave a partial record on disk and
		// mark the log broken — the "process" owning it is about to die,
		// and recovery must find and truncate the tear.
		cut := walHeader + (len(rec)-walHeader)/2
		w.f.Write(rec[:cut])
		w.f.Sync()
		w.broken = true
		return err
	}
	if _, err := w.f.Write(rec); err != nil {
		w.rewind()
		return err
	}
	if err := failpoint.Eval("store/wal-sync"); err != nil {
		w.rewind()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.rewind()
		return err
	}
	w.good += int64(len(rec))
	return nil
}

// rewind truncates the log back to the clean prefix after a failed
// append, turning "maybe on disk" into "definitely not on disk" so an
// unacknowledged batch can never be recovered. A rewind that itself
// fails breaks the log: appending past potential garbage would strand
// every later record behind the tear.
func (w *wal) rewind() {
	if w.f.Truncate(w.good) != nil {
		w.broken = true
		return
	}
	if _, err := w.f.Seek(w.good, io.SeekStart); err != nil {
		w.broken = true
		return
	}
	if err := w.f.Sync(); err != nil {
		w.broken = true
	}
}

// reset empties the log after a checkpoint made its records redundant.
// A successful reset also clears the broken state: the garbage a failed
// append may have left is gone with everything else.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.good = 0
	w.broken = false
	return nil
}

func (w *wal) close() error { return w.f.Close() }
