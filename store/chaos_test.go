//go:build failpoint

package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"kvcc/graph"
	"kvcc/internal/difftest"
	"kvcc/internal/failpoint"
)

// Chaos battery for the durability layer: every test arms one or more of
// the store's failpoints, drives the store through the fault, then
// "crashes" (reopens without Close) and asserts the recovered graph is
// byte-identical to the acknowledged state. Build with -tags failpoint.

// armFailpoints activates a spec and guarantees a clean slate afterwards,
// so later tests (chaos or not) observe zero trips.
func armFailpoints(t *testing.T, spec string) {
	t.Helper()
	if err := failpoint.ActivateSpec(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.Reset)
}

// TestChaosWALSyncFailureRetry injects probabilistic fsync failures into
// the WAL and retries each refused batch. The rewind after a failed sync
// makes every failure clean — the batch is provably not on disk, the
// chain is intact — so a retry of the same batch must eventually land,
// and recovery must reproduce exactly the acknowledged sequence.
func TestChaosWALSyncFailureRetry(t *testing.T) {
	base := difftest.Corpus()[0].G
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}

	failpoint.SeedAll(0x5eed)
	armFailpoints(t, "store/wal-sync=error(0.4)")

	delta := graph.NewDeltaAt(base, 1)
	injected := 0
	for i := 0; i < 30; i++ {
		prev := delta.Version()
		ins := [][2]int64{{int64(9000 + i), int64(9100 + i)}}
		delta.InsertEdge(ins[0][0], ins[0][1])
		b := Batch{PrevVersion: prev, NewVersion: delta.Version(), Inserts: ins}
		landed := false
		for attempt := 0; attempt < 200; attempt++ {
			err := st.Append(b)
			if err == nil {
				landed = true
				break
			}
			if !failpoint.IsInjected(err) {
				t.Fatalf("batch %d: non-injected append failure: %v", i, err)
			}
			injected++
		}
		if !landed {
			t.Fatalf("batch %d never landed in 200 attempts", i)
		}
	}
	if injected == 0 {
		t.Fatal("failpoint never fired: the test exercised nothing")
	}
	want := delta.Compact()
	wantVersion := delta.Version()
	failpoint.Reset()
	// Crash: no Close.

	st2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("recovery after %d injected sync failures: %v", injected, err)
	}
	defer st2.Close()
	g, version, ok := st2.Graph()
	if !ok || version != wantVersion {
		t.Fatalf("recovered version %d (ok=%v), want %d", version, ok, wantVersion)
	}
	if replayed, torn := st2.Replayed(); replayed != 30 || torn {
		t.Fatalf("replayed=%d torn=%v, want 30, false", replayed, torn)
	}
	sameGraph(t, g, want)
}

// TestChaosTornWALTail crashes mid-append: the torn record must be
// detected, truncated away, and the store must come back at the last
// acknowledged version.
func TestChaosTornWALTail(t *testing.T) {
	base := difftest.Corpus()[1].G
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}
	delta := graph.NewDeltaAt(base, 1)
	prev := delta.Version()
	delta.InsertEdge(7001, 7002)
	if err := st.Append(Batch{PrevVersion: prev, NewVersion: delta.Version(), Inserts: [][2]int64{{7001, 7002}}}); err != nil {
		t.Fatal(err)
	}
	ackedVersion := delta.Version()
	acked := delta.Compact()

	armFailpoints(t, "store/wal-torn=error")
	err = st.Append(Batch{PrevVersion: ackedVersion, NewVersion: ackedVersion + 1, Inserts: [][2]int64{{7002, 7003}}})
	if !failpoint.IsInjected(err) {
		t.Fatalf("torn append: err = %v, want injected", err)
	}
	// The dying process's log is broken; nothing further may be acked.
	if err := st.Append(Batch{PrevVersion: ackedVersion, NewVersion: ackedVersion + 1}); err == nil {
		t.Fatal("append on a broken log succeeded")
	}
	failpoint.Reset()
	// Crash with the partial record on disk.

	st2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("recovery from a torn tail: %v", err)
	}
	defer st2.Close()
	g, version, _ := st2.Graph()
	if version != ackedVersion {
		t.Fatalf("recovered version %d, want %d (the torn batch was never acked)", version, ackedVersion)
	}
	if replayed, torn := st2.Replayed(); replayed != 1 || !torn {
		t.Fatalf("replayed=%d torn=%v, want 1, true", replayed, torn)
	}
	sameGraph(t, g, acked)

	// The truncation must be real: a further append chains cleanly.
	d2 := graph.NewDeltaAt(g, version)
	d2.InsertEdge(7002, 7003)
	if err := st2.Append(Batch{PrevVersion: version, NewVersion: d2.Version(), Inserts: [][2]int64{{7002, 7003}}}); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
}

// TestChaosSnapshotWriteFailure fails a checkpoint before any byte lands:
// the WAL must keep carrying the batches and recovery must replay them.
func TestChaosSnapshotWriteFailure(t *testing.T) {
	base := difftest.Corpus()[2].G
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}
	delta := graph.NewDeltaAt(base, 1)
	prev := delta.Version()
	delta.InsertEdge(8001, 8002)
	if err := st.Append(Batch{PrevVersion: prev, NewVersion: delta.Version(), Inserts: [][2]int64{{8001, 8002}}}); err != nil {
		t.Fatal(err)
	}
	want := delta.Compact()
	wantVersion := delta.Version()

	armFailpoints(t, "store/snapshot-write=error")
	if err := st.Checkpoint(want, wantVersion); !failpoint.IsInjected(err) {
		t.Fatalf("checkpoint with snapshot-write armed: err = %v, want injected", err)
	}
	if st.Pending() != 1 {
		t.Fatalf("failed checkpoint consumed the WAL: pending = %d", st.Pending())
	}
	failpoint.Reset()

	st2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("recovery after failed checkpoint: %v", err)
	}
	defer st2.Close()
	g, version, _ := st2.Graph()
	if version != wantVersion {
		t.Fatalf("recovered version %d, want %d", version, wantVersion)
	}
	sameGraph(t, g, want)
}

// TestChaosSnapshotSyncLeavesTemp crashes a checkpoint between the temp
// write and the rename — exactly what a dead process leaves behind. The
// real snapshot must be untouched and the next open must sweep the temp.
func TestChaosSnapshotSyncLeavesTemp(t *testing.T) {
	base := difftest.Corpus()[3].G
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}
	delta := graph.NewDeltaAt(base, 1)
	prev := delta.Version()
	delta.InsertEdge(8101, 8102)
	if err := st.Append(Batch{PrevVersion: prev, NewVersion: delta.Version(), Inserts: [][2]int64{{8101, 8102}}}); err != nil {
		t.Fatal(err)
	}
	want := delta.Compact()
	wantVersion := delta.Version()

	armFailpoints(t, "store/snapshot-sync=error")
	if err := st.Checkpoint(want, wantVersion); !failpoint.IsInjected(err) {
		t.Fatalf("checkpoint with snapshot-sync armed: err = %v, want injected", err)
	}
	tmp := filepath.Join(dir, snapshotName+tmpSuffix)
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("crashed checkpoint left no temp file: %v", err)
	}
	failpoint.Reset()

	st2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("recovery with a stale temp: %v", err)
	}
	defer st2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("recovery did not sweep the temp snapshot: %v", err)
	}
	g, version, _ := st2.Graph()
	if version != wantVersion {
		t.Fatalf("recovered version %d, want %d", version, wantVersion)
	}
	sameGraph(t, g, want)
}

// TestChaosMmapFailure: a failed snapshot mapping must fail Open loudly —
// serving without the snapshot would silently lose the graph.
func TestChaosMmapFailure(t *testing.T) {
	base := difftest.Corpus()[0].G
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}
	st.Close()

	armFailpoints(t, "store/mmap=error")
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded with the snapshot mapping failing")
	}
	failpoint.Reset()
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after disarming mmap failpoint: %v", err)
	}
	st2.Close()
}

// TestChaosKillRecoverCycles is the randomized end-to-end battery: many
// kill-and-recover cycles under probabilistic WAL and snapshot faults,
// with a deterministic schedule (seeded PRNG on both sides). Invariants
// per cycle: recovery never errors, the recovered version equals the last
// acknowledged one, the graph is byte-identical to the reference overlay,
// and the version chain stays appendable.
func TestChaosKillRecoverCycles(t *testing.T) {
	base := difftest.Corpus()[4].G
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	t.Cleanup(failpoint.Reset)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(base, 1); err != nil {
		t.Fatal(err)
	}

	// The reference overlay lives across cycles: it records exactly the
	// acknowledged batches, nothing else.
	ref := graph.NewDeltaAt(base, 1)
	lastKey := ""
	label := int64(20000)
	injected := 0

	for cycle := 0; cycle < 6; cycle++ {
		failpoint.SeedAll(uint64(1000 + cycle))
		if err := failpoint.ActivateSpec("store/wal-sync=error(0.3);store/snapshot-write=error(0.3)"); err != nil {
			t.Fatal(err)
		}

		for i := 0; i < 8; i++ {
			prev := ref.Version()
			var ins, del [][2]int64
			if rng.Intn(4) == 0 && label > 20001 {
				// Occasionally delete an edge inserted earlier.
				v := 20000 + int64(rng.Intn(int(label-20000-1)))
				del = [][2]int64{{v, v + 1}}
				ref.DeleteEdge(v, v+1)
			} else {
				ins = [][2]int64{{label, label + 1}}
				ref.InsertEdge(label, label+1)
				label += 2
			}
			if ref.Version() == prev {
				continue // no-op batch (delete of an already-deleted edge)
			}
			b := Batch{PrevVersion: prev, NewVersion: ref.Version(), Inserts: ins, Deletes: del}
			if rng.Intn(3) == 0 {
				b.Key = string(rune('a'+cycle)) + "-" + string(rune('0'+i))
			}
			landed := false
			for attempt := 0; attempt < 300; attempt++ {
				err := st.Append(b)
				if err == nil {
					landed = true
					break
				}
				if !failpoint.IsInjected(err) {
					t.Fatalf("cycle %d batch %d: non-injected failure: %v", cycle, i, err)
				}
				injected++
			}
			if !landed {
				t.Fatalf("cycle %d batch %d never landed", cycle, i)
			}
			if b.Key != "" {
				lastKey = b.Key
			}
			// Occasionally checkpoint; an injected snapshot failure is fine
			// — the WAL still carries everything.
			if rng.Intn(4) == 0 {
				if err := st.Checkpoint(ref.Compact(), ref.Version()); err != nil && !failpoint.IsInjected(err) {
					t.Fatalf("cycle %d: non-injected checkpoint failure: %v", cycle, err)
				}
			}
		}

		failpoint.Reset()
		// Kill: reopen without Close.
		st2, err := Open(dir, Options{VerifyOnOpen: true})
		if err != nil {
			t.Fatalf("cycle %d recovery: %v", cycle, err)
		}
		g, version, ok := st2.Graph()
		if !ok || version != ref.Version() {
			t.Fatalf("cycle %d: recovered version %d (ok=%v), want %d", cycle, version, ok, ref.Version())
		}
		sameGraph(t, g, ref.Compact())
		if lastKey != "" {
			if v, found := st2.IdempotencyKeys()[lastKey]; !found || v == 0 {
				t.Fatalf("cycle %d: key %q lost across recovery", cycle, lastKey)
			}
		}
		st = st2
	}
	st.Close()
	if injected == 0 {
		t.Fatal("no fault ever fired across 6 cycles: the battery exercised nothing")
	}
	t.Logf("survived %d injected faults across 6 kill-recover cycles", injected)
}
