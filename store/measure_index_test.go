package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kvcc/cohesion"
	"kvcc/hierarchy"
	"kvcc/internal/difftest"
)

// TestPerMeasureIndexRoundTrip saves one index per cohesion measure into
// the same store and checks they live in separate files, reload
// independently (including across a reopen), and reproduce the exact
// levels of a fresh build for their measure.
func TestPerMeasureIndexRoundTrip(t *testing.T) {
	g := difftest.Corpus()[0].G
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(g, 7); err != nil {
		t.Fatal(err)
	}

	want := map[cohesion.Measure]*hierarchy.Tree{}
	for _, m := range cohesion.Measures() {
		tree, err := hierarchy.Build(g, hierarchy.Options{Measure: m})
		if err != nil {
			t.Fatalf("%s build: %v", m, err)
		}
		if err := st.SaveIndex(tree, 7, 1.5); err != nil {
			t.Fatalf("%s save: %v", m, err)
		}
		want[m] = tree
	}
	for _, name := range []string{indexName, indexNameKECC, indexNameKCore} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("per-measure index file %s: %v", name, err)
		}
	}

	check := func(st *Store) {
		t.Helper()
		for _, m := range cohesion.Measures() {
			got, buildMS, ok, err := st.LoadIndex(m)
			if err != nil || !ok {
				t.Fatalf("%s load: ok=%v err=%v", m, ok, err)
			}
			if buildMS != 1.5 || got.Measure != m {
				t.Fatalf("%s load: buildMS=%v measure=%v", m, buildMS, got.Measure)
			}
			for k := 1; k <= want[m].MaxK; k++ {
				a := difftest.Signatures(got.LevelComponents(k))
				b := difftest.Signatures(want[m].LevelComponents(k))
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s level %d differs after round trip", m, k)
				}
			}
		}
	}
	check(st)
	st.Close()

	st, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	check(st)

	// DropIndex clears every measure's file.
	if err := st.DropIndex(); err != nil {
		t.Fatal(err)
	}
	for _, m := range cohesion.Measures() {
		if _, _, ok, err := st.LoadIndex(m); err != nil || ok {
			t.Fatalf("%s after drop: ok=%v err=%v, want absent", m, ok, err)
		}
	}
}

// TestIndexMeasureMismatchIsCorrupt: a measure file holding another
// measure's tree is damage (the file name fixes the expectation), not
// staleness — it must never be served.
func TestIndexMeasureMismatchIsCorrupt(t *testing.T) {
	g := difftest.Corpus()[0].G
	tree, err := hierarchy.Build(g, hierarchy.Options{}) // kvcc tree
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), indexNameKECC)
	if err := writeIndex(path, tree, 42, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := readIndex(path, 42, cohesion.KECC); !IsCorrupt(err) {
		t.Fatalf("kvcc tree in the kecc file: err = %v, want corruption", err)
	}
}

// TestPreMeasureIndexHeaderCompat pins the on-disk compatibility story:
// a kvcc index writes 0 into the measure field — the byte the pre-measure
// format reserved as zero — so old files read back as kvcc and new kvcc
// files are byte-compatible with old readers' expectations.
func TestPreMeasureIndexHeaderCompat(t *testing.T) {
	g := difftest.Corpus()[0].G
	tree, err := hierarchy.Build(g, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), indexName)
	if err := writeIndex(path, tree, 9, 1); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m := binary.LittleEndian.Uint32(raw[12:16]); m != 0 {
		t.Fatalf("kvcc index header measure field = %d, want 0 (the pre-measure reserved value)", m)
	}
	if _, _, ok, err := readIndex(path, 9, cohesion.KVCC); err != nil || !ok {
		t.Fatalf("measure-0 file as kvcc: ok=%v err=%v", ok, err)
	}
}
