package store

import (
	"os"
	"syscall"
)

const posixFadvDontNeed = 4 // POSIX_FADV_DONTNEED

// dropFileCache asks the kernel to drop f's page cache. Combined with
// MADV_DONTNEED on the mapping this makes the next access a genuine disk
// fault — what the cold-cache benchmarks need — instead of a minor fault
// that re-maps a still-cached page. fadvise has no syscall wrapper; the
// generated SYS_FADVISE64 constant is right on every linux architecture.
func dropFileCache(f *os.File) error {
	_, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64,
		f.Fd(), 0, 0, posixFadvDontNeed, 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}
