package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"unsafe"
)

// On-disk layout constants. Every multi-byte field is little-endian —
// the byte order of every platform the serving fleet runs on — so the
// mmap'd arrays can be adopted without translation; big-endian hosts
// fall back to a decoding copy (see aliasable).
const (
	snapshotMagic  = "KVCCSNP1"
	indexMagic     = "KVCCIDX1"
	formatVersion  = 1
	snapshotHeader = 64         // bytes; keeps the payload 8-aligned for aliasing
	walRecordMagic = 0x4b565741 // "KVWA"
	walHeader      = 16         // magic u32 + payload len u32 + payload crc64
)

// File names inside one store directory. Each cohesion measure persists
// its hierarchy index in its own file; "index.kvcc" predates the measure
// abstraction, which is why the k-VCC index keeps that name.
const (
	snapshotName   = "snapshot.kvcc"
	walName        = "wal.log"
	indexName      = "index.kvcc"
	indexNameKECC  = "index.kecc"
	indexNameKCore = "index.kcore"
	idemName       = "idem.keys"
	tmpSuffix      = ".tmp"
)

// crcTable is the CRC64-ECMA table shared by every checksummed region.
var crcTable = crc64.MakeTable(crc64.ECMA)

// aliasable reports whether mmap'd little-endian int64 arrays can be
// reinterpreted as []int / []int64 in place: the host must be 64-bit and
// little-endian. Anywhere else the loader copies through a decode.
var aliasable = strconv.IntSize == 64 && hostLittleEndian()

func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// aliasInts reinterprets an 8-aligned little-endian byte region as a
// []int without copying. Callers have checked aliasable and the length.
func aliasInts(b []byte, n int) []int {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), n)
}

// aliasInt64s is aliasInts for the label table.
func aliasInt64s(b []byte, n int) []int64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
}

// decodeInts copies a little-endian int64 region into a fresh []int —
// the portable path for hosts that cannot alias.
func decodeInts(b []byte, n int) []int {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}

func decodeInt64s(b []byte, n int) []int64 {
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// writeInts streams vals as little-endian int64 through w (which also
// feeds the running CRC), using buf as scratch.
func writeInts(w io.Writer, vals []int, buf []byte) error {
	for len(vals) > 0 {
		chunk := len(buf) / 8
		if chunk > len(vals) {
			chunk = len(vals)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(int64(vals[i])))
		}
		if _, err := w.Write(buf[:8*chunk]); err != nil {
			return err
		}
		vals = vals[chunk:]
	}
	return nil
}

func writeInt64s(w io.Writer, vals []int64, buf []byte) error {
	for len(vals) > 0 {
		chunk := len(buf) / 8
		if chunk > len(vals) {
			chunk = len(vals)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(vals[i]))
		}
		if _, err := w.Write(buf[:8*chunk]); err != nil {
			return err
		}
		vals = vals[chunk:]
	}
	return nil
}

// atomicReplace makes tmp become path durably: fsync the written file,
// rename over the destination, fsync the directory so the rename itself
// survives a crash. The caller has already written and closed tmp? No —
// f is the still-open tmp file; atomicReplace syncs and closes it.
func atomicReplace(f *os.File, tmp, path string) error {
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// platforms cannot sync directories; that is a durability gap, not a
// correctness one, so the error is only surfaced where it is real.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		// EINVAL: the filesystem cannot fsync a directory handle — a
		// durability gap on exotic mounts, not a correctness failure.
		return err
	}
	return nil
}

// corruptError tags unrecoverable format damage apart from plain IO
// errors, so callers can distinguish "this file is bad" from "the disk
// hiccuped".
type corruptError struct {
	path string
	msg  string
}

func (e *corruptError) Error() string {
	return fmt.Sprintf("store: %s: corrupt: %s", e.path, e.msg)
}

// IsCorrupt reports whether err describes on-disk corruption (bad magic,
// checksum mismatch, impossible sizes) rather than an IO failure.
func IsCorrupt(err error) bool {
	for err != nil {
		if _, ok := err.(*corruptError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
