//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package store

import (
	"io"
	"os"
)

const mmapSupported = false

// mapFile on platforms without a usable mmap reads the region into the
// heap. Correctness is identical; the O(1)-startup and larger-than-RAM
// properties are not available here.
func mapFile(f *os.File, size int) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data = make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(size)), data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
