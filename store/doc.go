// Package store is the durability layer of the serving stack: a
// versioned, checksummed, binary on-disk CSR snapshot format opened via
// mmap, plus a write-ahead log of edit batches on top of it.
//
// A store directory holds one graph:
//
//	snapshot.kvcc   the last checkpointed CSR snapshot (header + offsets
//	                + edges + label table, all little-endian int64,
//	                CRC64-checksummed)
//	wal.log         edit batches applied since that snapshot, each
//	                fsync'd before the server installs the new generation
//	index.kvcc      the graph's hierarchy index at a specific version,
//	                persisted so a restart resumes index-served traffic
//
// Opening a store maps the snapshot read-only and adopts its arrays into
// a graph.Graph without copying (graph.AdoptCSR), so startup cost is
// O(1) in the graph size and capacity is bounded by disk, not RAM; the
// WAL tail is then replayed through a graph.Delta overlay, tolerating a
// torn final record (the batch that was being appended when the process
// died). Checkpointing writes a fresh snapshot atomically (temp file +
// fsync + rename) and truncates the WAL; a crash at any point between
// those steps recovers exactly, because every WAL record carries the
// version range it produced and records at or below the snapshot version
// are skipped on replay.
//
// The package is deliberately independent of the server: it speaks
// graph.Graph, graph.Delta and hierarchy.Tree, and the server package
// wires it into registration, edits and recovery.
package store
